// Quickstart: deploy and invoke a GPU-enabled ML inference function on a
// gFaaS cluster in ~40 lines.
//
// What happens under the hood (paper Fig. 2): the Gateway parses the
// Dockerfile's GPU-enable flag and reroutes the function's model-serving
// calls to the GPU Manager; the Scheduler (LALB + out-of-order dispatch)
// places each invocation on one of 12 virtual RTX 2080 GPUs; the Cache
// Manager keeps the model resident so repeat invocations skip the upload.
#include <cstdio>

#include "cluster/faas_cluster.h"
#include "models/zoo.h"

using namespace gfaas;

int main() {
  // A 3-node x 4-GPU cluster (the paper's testbed), LALB+O3 scheduling,
  // with real (scaled-down) CPU forward passes behind each inference.
  cluster::ClusterConfig config;
  config.execute_real_inference = true;
  cluster::FaasCluster faas(config, models::ModelRegistry::full_catalog());

  // Register a function. The Dockerfile is all a user writes: the
  // GPU-enable flag + which model to serve.
  faas::FunctionSpec spec;
  spec.name = "classify-image";
  spec.dockerfile =
      "FROM gfaas/pytorch-runtime\n"
      "ENV GPU_ENABLED=1\n"
      "ENV GFAAS_MODEL=resnet50\n";
  if (auto status = faas.gateway().register_function(spec); !status.ok()) {
    std::fprintf(stderr, "register failed: %s\n", status.to_string().c_str());
    return 1;
  }
  std::printf("registered function '%s' (GPU-enabled, model resnet50)\n",
              spec.name.c_str());

  // Invoke it three times. The first pays the model upload (cold, ~4s);
  // the rest hit the GPU cache (~1.3s).
  for (int i = 0; i < 3; ++i) {
    faas.gateway().invoke(
        "classify-image", {}, [i](StatusOr<faas::InvocationResult> result) {
          if (!result.ok()) {
            std::fprintf(stderr, "invoke failed: %s\n",
                         result.status().to_string().c_str());
            return;
          }
          std::printf("invocation %d: %.2fs on %s (%s)\n", i,
                      sim_to_seconds(result->latency), result->executed_on.c_str(),
                      i == 0 ? "cache miss: model uploaded" : "cache hit");
        });
    faas.run_to_completion();
  }
  return 0;
}
