// Elastic fleet demo: a 24-minute diurnal trace served by an autoscaled
// cluster (reactive policy, 2..10 GPUs) — watch the fleet breathe with
// the traffic, then compare its GPU-seconds bill against a peak-sized
// fixed fleet.
//
//   ./example_autoscale_demo
#include <cstdio>
#include <memory>

#include "autoscale/autoscaler.h"
#include "cluster/experiment.h"
#include "metrics/fleet.h"
#include "trace/workload.h"

using namespace gfaas;

int main() {
  trace::WorkloadConfig wconfig;
  wconfig.working_set_size = 15;
  trace::DiurnalConfig diurnal;
  diurnal.window_minutes = 24;
  diurnal.period_minutes = 24;
  diurnal.trough_rpm = 30;
  diurnal.peak_rpm = 180;
  auto workload = trace::build_diurnal_workload(wconfig, diurnal);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload build failed: %s\n",
                 workload.status().to_string().c_str());
    return 1;
  }

  autoscale::AutoscalerConfig config;
  config.min_gpus = 2;
  config.max_gpus = 10;
  config.cold_start = sec(15);

  cluster::ClusterConfig cluster_config;
  cluster_config.nodes = static_cast<int>(config.min_gpus);
  cluster_config.gpus_per_node = 1;
  cluster_config.shared_pcie_per_node = false;

  cluster::SimCluster cluster(cluster_config, workload->registry);
  autoscale::Autoscaler scaler(&cluster,
                               std::make_unique<autoscale::ReactivePolicy>(), config);
  for (const core::Request& req : workload->requests) {
    cluster.simulator().schedule_at(req.arrival,
                                    [&cluster, req] { cluster.engine().submit(req); });
  }
  scaler.start(workload->requests.back().arrival);
  cluster.simulator().run();
  scaler.finalize();

  const SimTime end = cluster.simulator().now();
  std::printf("served %zu requests over %.0f min\n",
              cluster.engine().completions().size(), sim_to_seconds(end) / 60.0);
  std::printf("fleet size (powered GPUs) per 2 minutes:\n  ");
  for (SimTime t = 0; t <= end; t += minutes(2)) {
    std::printf("%3.0f", scaler.powered_timeline().value_at(t));
  }
  std::printf("\n");
  std::printf("cold starts completed: %lld, GPUs drained+retired: %lld\n",
              static_cast<long long>(scaler.counters().gpus_added),
              static_cast<long long>(scaler.counters().gpus_retired));

  const metrics::GpuCostModel cost;
  const double elastic = scaler.gpu_seconds(end);
  const double fixed =
      static_cast<double>(config.max_gpus) * sim_to_seconds(end);
  std::printf("GPU-seconds: autoscaled %.0f vs peak-sized fixed %.0f (saving %.0f%%)\n",
              elastic, fixed, (1.0 - elastic / fixed) * 100.0);
  std::printf("cost: $%.2f vs $%.2f at $%.2f/GPU-hour\n", cost.cost(elastic),
              cost.cost(fixed), cost.dollars_per_gpu_hour);
  return 0;
}
