// Deployment-mode demo: the identical elastic stack the simulator
// evaluates, running against the wall clock. A 6-minute diurnal trace is
// replayed onto a RealTimeCluster at 360x compression (~1s of wall time),
// with the Autoscaler + PredictivePolicy growing and shrinking the fleet
// live while requests execute on the worker thread.
//
//   ./example_deployment_demo
#include <cstdio>
#include <memory>

#include "autoscale/deployment.h"
#include "cluster/realtime_cluster.h"
#include "metrics/fleet.h"
#include "trace/workload.h"

using namespace gfaas;

int main() {
  trace::WorkloadConfig wconfig;
  wconfig.working_set_size = 8;
  trace::DiurnalConfig diurnal;
  diurnal.window_minutes = 6;
  diurnal.period_minutes = 6;
  diurnal.trough_rpm = 20;
  diurnal.peak_rpm = 120;
  auto workload = trace::build_diurnal_workload(wconfig, diurnal);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload build failed: %s\n",
                 workload.status().to_string().c_str());
    return 1;
  }

  autoscale::AutoscalerConfig config;
  config.min_gpus = 2;
  config.max_gpus = 8;
  config.cold_start = sec(10);

  cluster::ClusterConfig cluster_config;
  cluster_config.nodes = static_cast<int>(config.min_gpus);
  cluster_config.gpus_per_node = 1;
  cluster_config.shared_pcie_per_node = false;

  // 6 simulated minutes compressed into ~1 wall second. now(), latencies
  // and the timelines below all stay in simulated units.
  cluster::RealTimeCluster cluster(cluster_config, workload->registry,
                                   /*time_scale=*/360.0);
  autoscale::PredictivePolicyConfig policy;
  policy.lead_time = config.cold_start;
  // Short windows so the fleet visibly breathes within a 6-minute trace
  // (the production defaults hold capacity for minutes between bursts).
  policy.history = minutes(2);
  policy.target_hold = sec(45);
  autoscale::Autoscaler scaler(
      &cluster, std::make_unique<autoscale::PredictivePolicy>(policy), config);

  const auto replay =
      autoscale::replay_with_autoscaler(cluster, workload->requests, scaler);

  const SimTime end = cluster.executor().now();
  std::printf("served %zu requests: %.0f simulated seconds in %.2f wall seconds\n",
              replay.completed, sim_to_seconds(end), replay.wall_seconds);
  std::printf("fleet size (powered GPUs) per 30 simulated seconds:\n  ");
  for (SimTime t = 0; t <= end; t += sec(30)) {
    std::printf("%3.0f", scaler.powered_timeline().value_at(t));
  }
  std::printf("\n");
  std::printf("cold starts %lld, retirements %lld, GPU-seconds %.0f\n",
              static_cast<long long>(scaler.counters().gpus_added),
              static_cast<long long>(scaler.counters().gpus_retired),
              scaler.gpu_seconds(end));
  return 0;
}
