// Side-by-side comparison of the three schedulers on the paper's standard
// workload (§V): LB (baseline) vs LALB vs LALB+O3, across working set
// sizes 15/25/35 on 12 virtual GPUs, 6 minutes x 325 requests/min.
//
//   ./example_scheduler_comparison [working_set ...]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "cluster/experiment.h"
#include "metrics/reporter.h"
#include "trace/workload.h"

using namespace gfaas;

int main(int argc, char** argv) {
  std::vector<std::size_t> working_sets = {15, 25, 35};
  if (argc > 1) {
    working_sets.clear();
    for (int i = 1; i < argc; ++i) {
      working_sets.push_back(static_cast<std::size_t>(std::atoi(argv[i])));
    }
  }

  metrics::Table table({"WS", "Scheduler", "AvgLatency(s)", "P99(s)", "MissRatio",
                        "FalseMiss", "SM-Util", "TopDups", "Makespan(s)"});

  for (std::size_t ws : working_sets) {
    trace::WorkloadConfig wconfig;
    wconfig.working_set_size = ws;
    auto workload = trace::build_standard_workload(wconfig);
    if (!workload.ok()) {
      std::fprintf(stderr, "workload build failed: %s\n",
                   workload.status().to_string().c_str());
      return 1;
    }
    for (core::PolicyName policy :
         {core::PolicyName::kLb, core::PolicyName::kLalb, core::PolicyName::kLalbO3}) {
      cluster::ClusterConfig config;
      config.policy = policy;
      const cluster::ExperimentResult r = cluster::run_experiment(config, *workload);
      table.add_row({std::to_string(ws), r.policy, metrics::Table::fmt(r.avg_latency_s),
                     metrics::Table::fmt(r.p99_latency_s),
                     metrics::Table::fmt_percent(r.miss_ratio),
                     metrics::Table::fmt_percent(r.false_miss_ratio),
                     metrics::Table::fmt_percent(r.sm_utilization),
                     metrics::Table::fmt(r.avg_top_duplicates),
                     metrics::Table::fmt(r.makespan_s)});
    }
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
