// Serving-layer demo: live traffic through the Gateway on the wall-clock
// cluster. A bursty 6-minute diurnal envelope drives an open-loop client
// (nothing is pre-materialized — arrivals are generated minute by minute)
// against a RealTimeCluster at 360x compression, with the Autoscaler +
// SloAwarePolicy steering the fleet by the Gateway's own windowed
// serving outcomes while requests execute on the worker thread.
//
//   ./example_gateway_demo
#include <cstdio>
#include <memory>

#include "autoscale/autoscaler.h"
#include "autoscale/slo_policy.h"
#include "cluster/realtime_cluster.h"
#include "gateway/gateway.h"
#include "trace/clients.h"
#include "trace/workload.h"

using namespace gfaas;

int main() {
  // The workload builder only supplies the model registry; the request
  // stream comes from the live client below.
  trace::WorkloadConfig wconfig;
  wconfig.working_set_size = 8;
  auto registry_source = trace::build_standard_workload(wconfig);
  if (!registry_source.ok()) {
    std::fprintf(stderr, "registry build failed: %s\n",
                 registry_source.status().to_string().c_str());
    return 1;
  }

  autoscale::AutoscalerConfig config;
  config.min_gpus = 2;
  config.max_gpus = 8;
  config.cold_start = sec(10);

  cluster::ClusterConfig cluster_config;
  cluster_config.nodes = static_cast<int>(config.min_gpus);
  cluster_config.gpus_per_node = 1;
  cluster_config.shared_pcie_per_node = false;

  // 6 simulated minutes compressed into ~1 wall second; now(), latencies
  // and the serving stats all stay in simulated units.
  cluster::RealTimeCluster cluster(cluster_config, registry_source->registry,
                                   /*time_scale=*/360.0);

  const SimTime slo = sec(10);
  gateway::GatewayConfig gw_config;
  gw_config.max_in_flight = 64;
  gw_config.default_slo = slo;
  gw_config.stats_window = sec(20);
  gateway::Gateway gateway(&cluster, gw_config);

  autoscale::SloAwarePolicyConfig policy;
  policy.slo = slo;
  policy.forecast.lead_time = config.cold_start;
  policy.forecast.history = minutes(2);
  policy.forecast.target_hold = sec(45);
  autoscale::SloProbe probe = [&gateway] {
    const gateway::WindowedOutcomes window = gateway.windowed_outcomes();
    autoscale::SloSignal signal;
    signal.samples = window.completions;
    signal.p99_latency = window.p99_latency;
    signal.deep_wait_fraction = window.deep_wait_fraction();
    signal.shed_fraction = window.shed_fraction();
    return signal;
  };
  autoscale::Autoscaler scaler(
      &cluster, std::make_unique<autoscale::SloAwarePolicy>(probe, policy), config);

  // Bursty diurnal offered load, generated lazily minute by minute.
  trace::DiurnalConfig diurnal;
  diurnal.window_minutes = 6;
  diurnal.period_minutes = 6;
  diurnal.trough_rpm = 20;
  diurnal.peak_rpm = 150;
  diurnal.burst_probability = 0.3;
  diurnal.burst_multiplier = 2.0;
  trace::ClientConfig client_config;
  client_config.model_count = wconfig.working_set_size;
  trace::ClientSink sink = [&gateway](core::Request request,
                                      std::function<void()> done) {
    gateway.submit(std::move(request),
                   [done = std::move(done)](const gateway::GatewayResult&) { done(); });
  };
  trace::OpenLoopClient client(&cluster.executor(), sink, client_config,
                               trace::diurnal_rates(diurnal));

  // Both the controller and the client live on the executor's worker
  // thread; this thread only posts the kickoff events and waits. The
  // client starts first so its horizon is anchored to the live clock.
  client.start();
  const SimTime horizon = client.horizon();
  cluster.realtime().post([&scaler, horizon] { scaler.start(horizon); });
  cluster.run_to_completion();
  scaler.finalize();

  const SimTime end = cluster.executor().now();
  const gateway::GatewayCounters& counters = gateway.counters();
  std::printf("offered %zu requests in %.0f simulated seconds\n",
              client.submitted(), sim_to_seconds(end));
  std::printf("  completed %lld (SLO attainment %.1f%%), shed %lld, expired %lld\n",
              static_cast<long long>(counters.completed),
              gateway.slo_attainment() * 100.0,
              static_cast<long long>(counters.shed),
              static_cast<long long>(counters.expired));
  std::printf("  fleet %.0f..%.0f powered GPUs, %lld cold starts, %lld retired\n",
              scaler.powered_timeline().min_value(),
              scaler.powered_timeline().max_value(),
              static_cast<long long>(scaler.counters().gpus_added),
              static_cast<long long>(scaler.counters().gpus_retired));
  std::printf("per-model serving stats:\n");
  for (const auto& [model, stats] : gateway.model_stats()) {
    std::printf("  model %lld: %lld done, %.0f%% in SLO, mean %.2fs\n",
                static_cast<long long>(model),
                static_cast<long long>(stats.completed),
                stats.slo_attainment() * 100.0, stats.latency_s.mean());
  }
  return counters.completed > 0 ? 0 : 1;
}
