// Image classification service: a multi-model serving scenario with REAL
// computation — every invocation runs an actual forward pass through a
// scaled-down CNN on synthetic CIFAR/MNIST-like images, end to end
// through the FaaS Gateway (CPU functions + Watchdog + container pool).
//
// This mirrors the paper's motivating workload: several models deployed
// as independent functions, invoked by concurrent clients with skewed
// popularity.
#include <cstdio>
#include <map>

#include "common/rng.h"
#include "datastore/keys.h"
#include "datastore/kv_store.h"
#include "faas/gateway.h"
#include "models/zoo.h"
#include "sim/simulator.h"
#include "tensor/dataset.h"
#include "tensor/model_builder.h"

using namespace gfaas;

int main() {
  sim::Simulator sim;
  datastore::KvStore store(&sim);
  faas::Gateway gateway(&store, &sim, /*gpu_backend=*/nullptr);

  // Deploy four classifier functions, each wrapping a real CNN.
  const char* model_names[] = {"squeezenet1.1", "resnet18", "alexnet", "densenet121"};
  std::map<std::string, tensor::ModulePtr> nets;
  for (const char* name : model_names) {
    const auto profile = models::find_model(name);
    tensor::ModulePtr net = tensor::build_cnn(profile->runtime_config);
    nets[name] = net;
    faas::FunctionSpec spec;
    spec.name = std::string("classify-") + name;
    spec.dockerfile = "FROM gfaas/runtime\n";
    spec.handler = [net](const faas::Payload& input) -> StatusOr<faas::Payload> {
      if (input.shape.size() != 4) {
        return Status::InvalidArgument("expected NCHW image batch");
      }
      tensor::Tensor images(
          tensor::Shape(input.shape.begin(), input.shape.end()), input.data);
      const tensor::Tensor probs = net->forward(images);
      faas::Payload out;
      out.content_type = "application/x-class-probabilities";
      out.shape = {probs.dim(0), probs.dim(1)};
      out.data.assign(probs.data(), probs.data() + probs.numel());
      return out;
    };
    if (auto status = gateway.register_function(spec); !status.ok()) {
      std::fprintf(stderr, "register: %s\n", status.to_string().c_str());
      return 1;
    }
  }
  std::printf("deployed %zu classifier functions\n", gateway.list_functions().size());

  // Simulate clients with Zipf-skewed function popularity.
  tensor::SyntheticImageDataset dataset(tensor::DatasetKind::kCifar10Like, 42);
  Rng rng(7);
  ZipfDistribution popularity(4, 1.1);
  std::map<std::string, int> invocations;
  std::map<std::string, double> total_latency_ms;
  int correct_shape = 0;
  const int kRequests = 24;
  for (int i = 0; i < kRequests; ++i) {
    const char* model = model_names[popularity.sample(rng)];
    const std::string fn = std::string("classify-") + model;
    const tensor::Batch batch = dataset.make_batch(2);
    faas::Payload input;
    input.shape = batch.images.shape();
    input.data.assign(batch.images.data(),
                      batch.images.data() + batch.images.numel());
    auto result = gateway.invoke_sync(fn, input);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", fn.c_str(),
                   result.status().to_string().c_str());
      return 1;
    }
    if (result->output.shape == std::vector<std::int64_t>({2, 10})) ++correct_shape;
    ++invocations[fn];
    total_latency_ms[fn] += sim_to_millis(result->latency);
  }

  std::printf("\n%-24s %12s %16s %12s\n", "function", "invocations", "avg latency(ms)",
              "containers");
  for (const auto& [fn, count] : invocations) {
    std::printf("%-24s %12d %16.2f %12zu\n", fn.c_str(), count,
                total_latency_ms[fn] / count, gateway.containers().warm_count(fn));
  }
  std::printf("\n%d/%d responses had the expected [2, 10] probability shape\n",
              correct_shape, kRequests);

  // The Watchdog recorded per-function metrics in the Datastore.
  for (const auto& [fn, count] : invocations) {
    const auto recorded = store.get(datastore::keys::fn_invocations(fn));
    std::printf("datastore %s = %s\n",
                datastore::keys::fn_invocations(fn).c_str(),
                recorded.ok() ? recorded->value.c_str() : "?");
  }
  return 0;
}
