// Azure trace replay: the paper's full evaluation scenario as a single
// runnable program. Synthesizes (or loads) an Azure-schema function
// trace, builds the normalized 6-minute / 325-requests-per-minute
// workload over the top-K functions, replays it on the 12-GPU cluster
// with the LALB+O3 scheduler, and prints a per-minute progress report
// plus the final evaluation metrics.
//
//   ./example_azure_replay [working_set] [o3_limit] [trace.csv]
//
// Passing a real "trace.csv" in the Azure schema (rows = functions,
// columns = per-minute invocation counts) reproduces the paper's exact
// pipeline on the genuine trace.
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "cluster/experiment.h"
#include "metrics/reporter.h"
#include "trace/workload.h"

using namespace gfaas;

int main(int argc, char** argv) {
  const std::size_t working_set =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 35;
  const int o3_limit = argc > 2 ? std::atoi(argv[2]) : 25;

  trace::WorkloadConfig wconfig;
  wconfig.working_set_size = working_set;

  StatusOr<trace::Workload> workload = Status::Internal("unset");
  if (argc > 3) {
    std::ifstream file(argv[3]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[3]);
      return 1;
    }
    auto trace = trace::read_trace_csv(file);
    if (!trace.ok()) {
      std::fprintf(stderr, "trace parse: %s\n", trace.status().to_string().c_str());
      return 1;
    }
    std::printf("loaded Azure trace: %zu functions, %lld minutes\n",
                trace->rows.size(), static_cast<long long>(trace->minutes));
    workload = trace::build_workload(*trace, wconfig);
  } else {
    std::printf("synthesizing calibrated Azure-like trace (top-15 ~ 56%%)\n");
    workload = trace::build_standard_workload(wconfig);
  }
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n", workload.status().to_string().c_str());
    return 1;
  }
  std::printf("workload: %zu requests over 6 minutes, working set %zu models, "
              "top model '%s' (%lld invocations)\n\n",
              workload->requests.size(), working_set,
              workload->registry.get(workload->top_model)->name.c_str(),
              static_cast<long long>(workload->invocations_of_top_model));

  cluster::ClusterConfig config;
  config.policy = o3_limit > 0 ? core::PolicyName::kLalbO3 : core::PolicyName::kLalb;
  config.o3_limit = o3_limit;
  cluster::SimCluster cluster(config, workload->registry);
  cluster.engine().track_duplicates_of(workload->top_model);

  // Per-minute progress reporting from inside the simulation.
  for (int minute = 1; minute <= 6; ++minute) {
    cluster.simulator().schedule_at(minutes(minute), [&cluster, minute] {
      std::printf("  [t=%dmin] completed=%zu  hit/miss so far: %lld/%lld\n", minute,
                  cluster.engine().completions().size(),
                  static_cast<long long>(cluster.cache().stats().hits),
                  static_cast<long long>(cluster.cache().stats().misses));
    });
  }

  const SimTime makespan = cluster.replay(workload->requests);

  metrics::StreamingStats latency;
  for (const auto& record : cluster.engine().completions()) {
    latency.add(sim_to_seconds(record.latency()));
  }
  std::printf("\n=== results (%s, O3 limit %d) ===\n",
              cluster.engine().policy().name().c_str(), o3_limit);
  std::printf("  requests completed:   %zu\n", cluster.engine().completions().size());
  std::printf("  makespan:             %.1f s\n", sim_to_seconds(makespan));
  std::printf("  average latency:      %.2f s (min %.2f, max %.2f)\n", latency.mean(),
              latency.min(), latency.max());
  std::printf("  cache miss ratio:     %.1f%%\n",
              cluster.cache().stats().miss_ratio() * 100);
  std::printf("  false misses:         %lld\n",
              static_cast<long long>(cluster.engine().false_misses()));
  std::printf("  top-model duplicates: %.2f (of %zu GPUs)\n",
              cluster.engine().average_top_duplicates(makespan), cluster.gpu_count());
  double util = 0;
  for (std::size_t g = 0; g < cluster.gpu_count(); ++g) {
    util += cluster.gpu(g).sm_utilization(makespan);
  }
  std::printf("  avg SM utilization:   %.1f%%\n",
              util / static_cast<double>(cluster.gpu_count()) * 100);

  std::printf("\nper-minute series (completions bucketed by finish time):\n");
  std::printf("  minute  completions  avg latency(s)  misses\n");
  const auto& lat = cluster.engine().latency_series();
  const auto& miss = cluster.engine().miss_series();
  for (std::size_t b = 0; b < lat.bucket_count(); ++b) {
    std::printf("  %6zu  %11lld  %14.2f  %6.0f\n", b,
                static_cast<long long>(lat.bucket_samples(b)), lat.bucket_mean(b),
                miss.bucket_sum(b));
  }
  return 0;
}
