#!/usr/bin/env python3
"""Layer-dependency lint: the #include graph must match the CMake graph.

The repo is built as one static library per src/ subdirectory ("layer"),
with the link edges declared by the lalb_add_layer(...) calls in the
top-level CMakeLists.txt. This script recomputes the *actual* dependency
graph from the #include lines of every file under src/ and fails when
the two disagree:

  * an #include of another layer that is not a declared DIRECT
    dependency of the including layer (transitive reachability is not
    enough: the build may still link thanks to PUBLIC propagation, but
    the CMake graph no longer documents the architecture); or
  * a cycle in the declared dependency graph (layers must form a DAG
    rooted at `common`).

Declared edges with no supporting #include are reported as information
only — an edge may exist for a deliberate reason (umbrella layers) and
pruning is a human decision, not a gate.

Exit status: 0 clean, 1 violations, 2 usage/parse errors.

Run from anywhere:   python3 tools/check_layers.py [--root REPO]
Self-test fixture:   python3 tools/check_layers.py --self-test
"""

import argparse
import os
import re
import sys
import tempfile

CMAKE_LAYER_RE = re.compile(r"^\s*lalb_add_layer\(\s*([a-z_0-9]+)([^)]*)\)")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')
SOURCE_EXTS = (".h", ".cc", ".cpp", ".hpp")


def parse_declared_graph(cmake_path):
    """Returns {layer: [direct deps]} from the lalb_add_layer calls."""
    graph = {}
    with open(cmake_path, encoding="utf-8") as f:
        for line in f:
            m = CMAKE_LAYER_RE.match(line)
            if not m:
                continue
            name = m.group(1)
            deps = m.group(2).split()
            graph[name] = deps
    return graph


def parse_include_graph(src_root):
    """Returns ({layer: {dep: [(file, line_no, header)...]}}, layers)."""
    layers = sorted(
        d for d in os.listdir(src_root)
        if os.path.isdir(os.path.join(src_root, d))
    )
    layer_set = set(layers)
    used = {layer: {} for layer in layers}
    for layer in layers:
        layer_dir = os.path.join(src_root, layer)
        for dirpath, _, filenames in os.walk(layer_dir):
            for filename in sorted(filenames):
                if not filename.endswith(SOURCE_EXTS):
                    continue
                path = os.path.join(dirpath, filename)
                rel = os.path.relpath(path, src_root)
                with open(path, encoding="utf-8") as f:
                    for line_no, line in enumerate(f, 1):
                        m = INCLUDE_RE.match(line)
                        if not m:
                            continue
                        header = m.group(1)
                        target = header.split("/", 1)[0]
                        if target not in layer_set or target == layer:
                            continue
                        used[layer].setdefault(target, []).append(
                            (rel, line_no, header))
    return used, layers


def find_cycle(graph):
    """Returns one cycle as [a, b, ..., a], or None when the graph is a DAG."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    stack = []

    def visit(node):
        color[node] = GRAY
        stack.append(node)
        for dep in graph.get(node, []):
            if dep not in color:
                continue  # undeclared dep: reported separately
            if color[dep] == GRAY:
                return stack[stack.index(dep):] + [dep]
            if color[dep] == WHITE:
                cycle = visit(dep)
                if cycle:
                    return cycle
        stack.pop()
        color[node] = BLACK
        return None

    for node in sorted(graph):
        if color[node] == WHITE:
            cycle = visit(node)
            if cycle:
                return cycle
    return None


def check(root):
    cmake_path = os.path.join(root, "CMakeLists.txt")
    src_root = os.path.join(root, "src")
    if not os.path.isfile(cmake_path) or not os.path.isdir(src_root):
        print(f"error: {root} does not look like the repo root "
              "(need CMakeLists.txt and src/)", file=sys.stderr)
        return 2

    declared = parse_declared_graph(cmake_path)
    used, layers = parse_include_graph(src_root)

    violations = []

    undeclared_layers = [l for l in layers if l not in declared]
    for layer in undeclared_layers:
        violations.append(
            f"layer '{layer}' exists under src/ but has no "
            "lalb_add_layer() declaration in CMakeLists.txt")

    dangling = [
        (layer, dep) for layer, deps in sorted(declared.items())
        for dep in deps if dep not in declared
    ]
    for layer, dep in dangling:
        violations.append(
            f"layer '{layer}' declares dependency on '{dep}', "
            "which is not a declared layer")

    cycle = find_cycle(declared)
    if cycle:
        violations.append(
            "declared dependency graph has a cycle: " + " -> ".join(cycle))

    for layer in layers:
        declared_deps = set(declared.get(layer, ()))
        for target, sites in sorted(used[layer].items()):
            if target in declared_deps:
                continue
            rel, line_no, header = sites[0]
            extra = f" (+{len(sites) - 1} more)" if len(sites) > 1 else ""
            violations.append(
                f"undeclared dependency: layer '{layer}' includes "
                f"\"{header}\" at {rel}:{line_no}{extra} but CMakeLists.txt "
                f"does not declare '{target}' as a direct dependency — "
                f"add '{target}' to lalb_add_layer({layer} ...) or drop "
                "the include")

    unused = [
        (layer, dep) for layer, deps in sorted(declared.items())
        for dep in deps
        if dep in declared and layer in used and dep not in used[layer]
    ]

    if violations:
        print(f"check_layers: {len(violations)} violation(s)")
        for v in violations:
            print(f"  FAIL {v}")
    else:
        print(f"check_layers: OK — {len(layers)} layers, "
              f"{sum(len(d) for d in declared.values())} declared edges, "
              "include graph matches")
    for layer, dep in unused:
        print(f"  info: declared edge {layer} -> {dep} has no supporting "
              "#include (kept: pruning is a human decision)")
    return 1 if violations else 0


def self_test():
    """Builds a synthetic repo with one violation of each class and checks
    that the lint (a) fails on it and (b) passes once fixed."""
    with tempfile.TemporaryDirectory() as tmp:
        src = os.path.join(tmp, "src")
        for layer in ("base", "net", "app", "ui"):
            os.makedirs(os.path.join(src, layer))

        def write(rel, text):
            with open(os.path.join(tmp, rel), "w", encoding="utf-8") as f:
                f.write(text)

        write("src/base/base.h", "#pragma once\n")
        # Violation 1: net includes app/ but does not declare it.
        write("src/net/net.h",
              '#pragma once\n#include "base/base.h"\n#include "app/app.h"\n')
        write("src/app/app.h", '#pragma once\n#include "net/net.h"\n')
        write("src/ui/ui.h", '#pragma once\n#include "app/app.h"\n')
        # Violation 2: declared graph has a cycle app -> ui -> app.
        write("CMakeLists.txt",
              "lalb_add_layer(base)\n"
              "lalb_add_layer(net base)\n"
              "lalb_add_layer(app base net ui)\n"
              "lalb_add_layer(ui base app)\n")

        rc_bad = check(tmp)
        if rc_bad != 1:
            print(f"self-test FAILED: violating fixture returned {rc_bad}, "
                  "expected 1", file=sys.stderr)
            return 1

        # Fix the fixture: break the cycle and drop the stray include.
        write("src/net/net.h", '#pragma once\n#include "base/base.h"\n')
        write("CMakeLists.txt",
              "lalb_add_layer(base)\n"
              "lalb_add_layer(net base)\n"
              "lalb_add_layer(app base net)\n"
              "lalb_add_layer(ui base app)\n")
        rc_good = check(tmp)
        if rc_good != 0:
            print(f"self-test FAILED: clean fixture returned {rc_good}, "
                  "expected 0", file=sys.stderr)
            return 1

        print("self-test OK: violations detected, clean fixture passes")
        return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repo root (default: parent of this script's directory)")
    parser.add_argument(
        "--self-test", action="store_true",
        help="run the built-in violating fixture instead of the tree")
    args = parser.parse_args()
    sys.exit(self_test() if args.self_test else check(args.root))


if __name__ == "__main__":
    main()
