#include "concurrent/callback_executor.h"

#include <utility>
#include <vector>

#include "common/log.h"

namespace gfaas::concurrent {

CallbackExecutor::CallbackExecutor() {
  worker_ = std::thread([this] { loop(); });
}

CallbackExecutor::~CallbackExecutor() {
  {
    common::MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void CallbackExecutor::post(std::function<void()> fn) {
  GFAAS_CHECK(fn != nullptr);
  {
    common::MutexLock lock(&mu_);
    GFAAS_CHECK(!stop_) << "post() on a stopping CallbackExecutor";
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void CallbackExecutor::drain() {
  common::MutexLock lock(&mu_);
  // Explicit predicate loop so the guarded reads stay in this scope.
  while (!(queue_.empty() && !running_)) drained_cv_.wait(lock);
}

std::uint64_t CallbackExecutor::executed() const {
  common::MutexLock lock(&mu_);
  return executed_;
}

std::size_t CallbackExecutor::pending() const {
  common::MutexLock lock(&mu_);
  return queue_.size() + (running_ ? 1 : 0);
}

void CallbackExecutor::loop() {
  common::MutexLock lock(&mu_);
  std::vector<std::function<void()>> batch;
  for (;;) {
    if (queue_.empty()) {
      drained_cv_.notify_all();
      if (stop_) return;  // queue drained before exit, nothing dropped
      while (!(stop_ || !queue_.empty())) cv_.wait(lock);
      continue;
    }
    // Swap the whole backlog out: one lock per pass, FIFO preserved.
    batch.assign(std::make_move_iterator(queue_.begin()),
                 std::make_move_iterator(queue_.end()));
    queue_.clear();
    running_ = true;
    lock.Unlock();
    for (std::function<void()>& fn : batch) fn();
    const std::uint64_t ran = batch.size();
    batch.clear();
    lock.Lock();
    running_ = false;
    executed_ += ran;
  }
}

}  // namespace gfaas::concurrent
