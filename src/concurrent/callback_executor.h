// Dedicated completion-callback thread: the fan-out side of the
// concurrent ingestion path.
//
// The scheduler runs on the executor's single worker thread; a client
// completion callback that blocks (logging, an RPC reply, a slow
// downstream) would stall every dispatch behind it. The Gateway instead
// hands resolved results here (Gateway::set_callback_executor) and the
// worker thread returns to scheduling immediately.
//
// Guarantees:
//   * FIFO: callbacks run in post() order (one consumer thread, one
//     ordered queue), so results delivered by the Gateway keep the
//     engine's completion order — and each request's single resolution
//     stays exactly-once by construction.
//   * post() never blocks on a running callback: the producer takes one
//     uncontended-in-the-common-case mutex push; the consumer swaps the
//     whole backlog out under one lock per pass.
//   * drain() blocks until everything posted so far has finished.
//
// Destruction runs every callback already posted, then joins the thread.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>

#include "common/thread_annotations.h"

namespace gfaas::concurrent {

class CallbackExecutor {
 public:
  CallbackExecutor();
  ~CallbackExecutor();

  CallbackExecutor(const CallbackExecutor&) = delete;
  CallbackExecutor& operator=(const CallbackExecutor&) = delete;

  // Thread-safe; `fn` runs on the callback thread, after everything
  // posted before it.
  void post(std::function<void()> fn);

  // Blocks the calling thread (never the callback thread) until the
  // queue is empty and no callback is mid-flight.
  void drain();

  std::uint64_t executed() const;
  std::size_t pending() const;

 private:
  void loop();

  mutable common::Mutex mu_;
  common::CondVar cv_;
  common::CondVar drained_cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  std::uint64_t executed_ GUARDED_BY(mu_) = 0;
  // A batch of callbacks is executing.
  bool running_ GUARDED_BY(mu_) = false;
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread worker_;
};

}  // namespace gfaas::concurrent
