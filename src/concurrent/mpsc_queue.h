// Bounded lock-free MPSC queue: the submission path between client
// threads and the executor worker (gateway::ConcurrentIngress).
//
// A Vyukov-style bounded ring of cells, each carrying a sequence number
// that encodes its lap: producers claim the tail with an atomic
// compare-exchange (no lock, no syscall on the fast path), write the
// cell, then publish it by bumping the cell's sequence; the single
// consumer walks the head and observes cells strictly in publish order.
// A full ring fails the push immediately — backpressure surfaces to the
// producer as `false`, never as blocking — and a claimed-but-unpublished
// cell pauses the consumer only until its producer finishes the two-word
// write.
//
// Threading contract: any number of producers may call try_push
// concurrently; try_pop/drain must only ever run on ONE thread at a time
// (they are not synchronized against each other). approx_size() is safe
// anywhere and approximate by nature.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/log.h"

namespace gfaas::concurrent {

template <typename T>
class BoundedMpscQueue {
 public:
  // `capacity` must be a power of two (the ring index is a mask).
  explicit BoundedMpscQueue(std::size_t capacity)
      : mask_(capacity - 1), cells_(new Cell[capacity]) {
    GFAAS_CHECK(capacity >= 2 && (capacity & (capacity - 1)) == 0)
        << "MPSC capacity must be a power of two, got " << capacity;
    for (std::size_t i = 0; i < capacity; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  // Multi-producer enqueue. Moves from `value` ONLY on success; on a full
  // queue the caller keeps ownership (retry, shed, or park — producer's
  // choice). Lock-free: the only loop is CAS contention with other
  // producers, never a wait on the consumer.
  bool try_push(T& value) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        // Cell is free this lap: claim it by advancing the tail.
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // Lost the claim race; `pos` was reloaded by compare_exchange.
      } else if (dif < 0) {
        // A full lap behind: the consumer has not freed this cell.
        return false;
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  // Single-consumer dequeue. Returns false when the queue is empty or the
  // head cell is claimed but not yet published (its producer is mid-write;
  // the armed-drain protocol in ConcurrentIngress guarantees a later pass).
  bool try_pop(T& out) {
    const std::size_t pos = head_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1) < 0) {
      return false;
    }
    out = std::move(cell.value);
    cell.value = T();  // release captured resources now, not a lap later
    cell.seq.store(pos + mask_ + 1, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_relaxed);
    return true;
  }

  // Single-consumer bulk drain: pops everything published at call time
  // (and whatever publishes while draining) into `out` in queue order.
  // Returns the number drained.
  std::size_t drain(std::vector<T>& out) {
    std::size_t drained = 0;
    T item;
    while (try_pop(item)) {
      out.push_back(std::move(item));
      ++drained;
    }
    return drained;
  }

  // Published-but-unconsumed count; racy snapshot, for stats only.
  std::size_t approx_size() const {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq;
    T value;
  };

  static constexpr std::size_t kCacheLine = 64;

  const std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  // Producers share tail_; the consumer owns head_ (atomic only so
  // approx_size() can read it from other threads).
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
};

}  // namespace gfaas::concurrent
