#include "shard/sharded_cluster.h"

#include <algorithm>
#include <chrono>

#include "common/log.h"
#include "telemetry/telemetry.h"

namespace gfaas::shard {
namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

ShardedCluster::ShardedCluster(std::vector<cluster::ClusterConfig> configs,
                               const models::ModelRegistry& registry,
                               ShardedOptions options)
    : options_(options), router_(configs.size(), options.router) {
  GFAAS_CHECK(!configs.empty());
  GFAAS_CHECK(options_.epoch >= 2) << "epoch must span >= 2 simulated ticks";
  shards_.reserve(configs.size());
  for (const cluster::ClusterConfig& config : configs) {
    shards_.push_back(std::make_unique<cluster::SimCluster>(config, registry));
  }
  telemetry_.resize(shards_.size());
  epoch_wall_ns_.assign(shards_.size(), 0);
  const auto threads = static_cast<std::size_t>(std::max(1, options_.threads));
  const std::size_t pool = std::min(threads, shards_.size());
  if (pool > 1) {
    workers_.reserve(pool);
    for (std::size_t w = 0; w < pool; ++w) {
      workers_.emplace_back([this, w] { worker_loop(w); });
    }
  }
}

ShardedCluster::~ShardedCluster() {
  {
    common::MutexLock lock(&mu_);
    shutdown_ = true;
    work_cv_.notify_all();
  }
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ShardedCluster::total_gpu_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->gpu_count();
  return total;
}

void ShardedCluster::set_telemetry(std::size_t index,
                                   telemetry::Telemetry* telemetry) {
  GFAAS_CHECK(index < shards_.size());
  ShardTelemetry& slot = telemetry_[index];
  slot.telemetry = telemetry;
  if (telemetry == nullptr) {
    slot.steals_out = nullptr;
    slot.steals_in = nullptr;
    shards_[index]->engine().set_telemetry(nullptr);
    return;
  }
  telemetry->set_shard(static_cast<std::int32_t>(index));
  slot.steals_out =
      telemetry->metrics().counter(telemetry->qualified("engine.steals.out"));
  slot.steals_in =
      telemetry->metrics().counter(telemetry->qualified("engine.steals.in"));
  shards_[index]->engine().set_telemetry(telemetry);
}

std::function<void()> ShardedCluster::membership_hook(std::size_t index) {
  GFAAS_CHECK(index < shards_.size());
  cluster::SchedulerEngine* engine = &shards_[index]->engine();
  ShardRouter* router = &router_;
  return [router, engine, index]() {
    router->set_weight(index,
                       static_cast<double>(engine->schedulable_gpu_count()));
  };
}

ShardedReplayStats ShardedCluster::replay(
    const std::vector<core::Request>& requests) {
  orchestrator_serial_.AssertHeld();
  stats_ = ShardedReplayStats{};
  stats_.shard_work_ns.assign(shards_.size(), 0);
  stats_.stolen_from.assign(shards_.size(), 0);
  stats_.stolen_to.assign(shards_.size(), 0);

  std::size_t next = 0;
  SimTime epoch_start = 0;
  for (;;) {
    // The epoch covers [epoch_start, horizon): arrivals strictly before
    // the horizon are injected up front, then every shard runs its
    // events through horizon - 1. Events at exactly `horizon` wait for
    // the NEXT epoch — after its arrivals are injected — so a same-time
    // (arrival, completion) pair keeps the seed replay's ordering: the
    // arrival lane wins the tie, exactly as upfront-scheduled
    // submissions win it by sequence number.
    const SimTime horizon = epoch_start + options_.epoch;
    auto serial_start = std::chrono::steady_clock::now();
    inject_arrivals(requests, next, horizon);
    stats_.serial_ns += elapsed_ns(serial_start);

    run_shards_until(horizon - 1);
    ++stats_.epochs;

    serial_start = std::chrono::steady_clock::now();
    const std::size_t moved = steal_rebalance(horizon - 1);
    const bool done = next == requests.size() && drained(next, requests.size());
    std::size_t events_pending = 0;
    for (const auto& shard : shards_) {
      events_pending += shard->simulator().pending_events();
    }
    stats_.serial_ns += elapsed_ns(serial_start);
    if (done) break;
    // Stranded-work guard: arrivals are exhausted, no simulator holds a
    // future event, and the balancer moved nothing — the queued work
    // can never run (every holder of it is dead and there is no live
    // shard to evacuate to, or stealing is disabled). Loudly die rather
    // than spin empty epochs forever.
    GFAAS_CHECK(next < requests.size() || events_pending > 0 || moved > 0)
        << "sharded replay stranded: queued requests with no schedulable "
           "GPUs anywhere to steal to";
    epoch_start = horizon;
  }
  return stats_;
}

void ShardedCluster::inject_arrivals(const std::vector<core::Request>& requests,
                                     std::size_t& next, SimTime horizon) {
  while (next < requests.size() && requests[next].arrival < horizon) {
    const core::Request& src = requests[next];
    GFAAS_CHECK(next == 0 || requests[next - 1].arrival <= src.arrival)
        << "workload must be sorted by arrival";
    // Route at injection time (not upfront): membership re-weights from
    // autoscaler hooks apply to future arrivals immediately. The request
    // id salts replica choice for hot (replicated) models.
    const std::size_t target =
        router_.route(src.model, static_cast<std::uint64_t>(src.id.value()));
    cluster::SimCluster* cell = shards_[target].get();
    cluster::SchedulerEngine* engine = &cell->engine();
    cell->simulator().schedule_arrival_at(
        src.arrival, [engine, req = src]() mutable { engine->submit(std::move(req)); });
    ++next;
  }
}

void ShardedCluster::run_one_shard(std::size_t index, SimTime deadline) {
  const auto start = std::chrono::steady_clock::now();
  shards_[index]->simulator().run_until(deadline);
  epoch_wall_ns_[index] = elapsed_ns(start);
}

void ShardedCluster::run_shards_until(SimTime deadline) {
  if (workers_.empty()) {
    for (std::size_t i = 0; i < shards_.size(); ++i) run_one_shard(i, deadline);
  } else {
    // Release the pool for one epoch and wait the barrier out. Shard i
    // is always driven by worker i % pool, so each shard's event loop
    // stays on one thread for the whole replay; the mutex hand-off here
    // orders every worker write before the stats fold below.
    common::MutexLock lock(&mu_);
    epoch_deadline_ = deadline;
    remaining_ = workers_.size();
    ++generation_;
    work_cv_.notify_all();
    while (remaining_ > 0) done_cv_.wait(lock);
  }
  std::uint64_t slowest = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::uint64_t wall = epoch_wall_ns_[i];
    stats_.shard_work_ns[i] += wall;
    stats_.total_work_ns += wall;
    slowest = std::max(slowest, wall);
  }
  stats_.critical_path_ns += slowest;
}

void ShardedCluster::worker_loop(std::size_t worker) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    SimTime deadline = 0;
    {
      common::MutexLock lock(&mu_);
      while (!shutdown_ && generation_ == seen_generation) work_cv_.wait(lock);
      if (shutdown_) return;
      seen_generation = generation_;
      deadline = epoch_deadline_;
    }
    for (std::size_t i = worker; i < shards_.size(); i += workers_.size()) {
      run_one_shard(i, deadline);
    }
    {
      common::MutexLock lock(&mu_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

std::size_t ShardedCluster::steal_rebalance(SimTime at) {
  if (shards_.size() < 2 || !options_.steal.enabled) return 0;
  const std::size_t n = shards_.size();
  std::vector<std::size_t> depth(n), schedulable(n);
  for (std::size_t i = 0; i < n; ++i) {
    cluster::SchedulerEngine& engine = shards_[i]->engine();
    depth[i] = engine.global_queue().size();
    schedulable[i] = engine.schedulable_gpu_count();
  }
  std::vector<std::size_t> sorted = depth;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t median = sorted[n / 2];
  // Per-shard trigger: the fleet-relative term (threshold x median) and
  // the flat floor are shared; the capacity floor scales with each
  // shard's schedulable GPUs so big shards don't donate dispatch jitter.
  std::vector<std::size_t> trigger(n);
  for (std::size_t i = 0; i < n; ++i) {
    trigger[i] = std::max(
        std::max(options_.steal.min_queue,
                 static_cast<std::size_t>(options_.steal.threshold *
                                          static_cast<double>(median))),
        static_cast<std::size_t>(options_.steal.min_queue_per_gpu *
                                 static_cast<double>(schedulable[i])));
  }
  const std::size_t chunk = std::max<std::size_t>(1, options_.steal.max_batch);

  std::size_t moved_total = 0;
  for (std::size_t donor = 0; donor < n; ++donor) {
    const bool dead = schedulable[donor] == 0;
    std::size_t excess = 0;
    if (dead) {
      // Evacuation: nothing can ever run here again; move everything,
      // in max_batch chunks spread over the shallowest live shards.
      excess = depth[donor];
    } else if (depth[donor] > trigger[donor]) {
      excess = std::min(chunk, depth[donor] - trigger[donor]);
    }
    // Selective first: steal only requests whose model is already warm
    // on some qualified target, so the moved work lands on its cached
    // copies and the cold tail keeps its home shard. Fall back to blind
    // stealing only once the donor is more than a whole chunk past its
    // trigger (deep overload: eating a load beats the queue wait) — and
    // immediately for evacuations, where everything must go.
    bool selective = !dead;
    while (excess > 0) {
      // A live target qualifies only while it stays BELOW the steal
      // trigger: filling a shard past the trigger just mints the next
      // barrier's donor and the request ping-pongs back (observed as
      // steal_hops in the tens). Dead-shard evacuation relaxes the
      // trigger bound — the work must land somewhere live.
      auto qualifies = [&](std::size_t t) {
        return t != donor && schedulable[t] != 0 &&
               (dead || depth[t] < trigger[t]);
      };
      bool any_target = false;
      for (std::size_t t = 0; t < n && !any_target; ++t) {
        any_target = qualifies(t);
      }
      if (!any_target) break;
      auto warm_elsewhere = [&](const core::Request& req) {
        for (std::size_t t = 0; t < n; ++t) {
          if (qualifies(t) && shards_[t]->cache().cached_anywhere(req.model)) {
            return true;
          }
        }
        return false;
      };
      std::vector<core::Request> batch =
          shards_[donor]->engine().steal_from_global(
              std::min(excess, chunk),
              selective
                  ? std::function<bool(const core::Request&)>(warm_elsewhere)
                  : nullptr);
      if (batch.empty()) {
        if (selective && depth[donor] > trigger[donor] + chunk) {
          selective = false;
          continue;
        }
        break;
      }
      ++stats_.steal_batches;
      std::int64_t moved = 0;
      for (core::Request& req : batch) {
        // Locality-aware target choice, per request: prefer the
        // shallowest qualified shard that already holds the request's
        // model warm (a blind steal turns exactly the overflow traffic
        // into cache misses); fall back to the shallowest overall when
        // no warm shard exists or every warm queue is max_batch deeper
        // than the shallowest. Ties go to the lowest id, and depths
        // update per request, so one barrier spreads a large batch
        // instead of dogpiling one thief — all deterministic.
        std::size_t shallowest = n, warm = n;
        for (std::size_t t = 0; t < n; ++t) {
          if (!qualifies(t)) continue;
          if (shallowest == n || depth[t] < depth[shallowest]) shallowest = t;
          if (shards_[t]->cache().cached_anywhere(req.model) &&
              (warm == n || depth[t] < depth[warm])) {
            warm = t;
          }
        }
        if (shallowest == n) {
          // Targets saturated mid-batch; the request goes back where it
          // was (uncounted) and this donor stops for the barrier.
          shards_[donor]->engine().submit(std::move(req));
          continue;
        }
        const std::size_t target =
            (warm != n && depth[warm] < depth[shallowest] + chunk) ? warm
                                                                   : shallowest;
        ++moved;
        ++stats_.steals;
        ++stats_.stolen_from[donor];
        ++stats_.stolen_to[target];
        if (dead) ++stats_.evacuations;
        if (telemetry_[donor].steals_out != nullptr) {
          telemetry_[donor].steals_out->add(1);
        }
        if (telemetry_[target].steals_in != nullptr) {
          telemetry_[target].steals_in->add(1);
        }
        ++req.steal_hops;
        if (telemetry_[donor].telemetry != nullptr) {
          telemetry_[donor].telemetry->spans().record(
              req.id.value(), telemetry::SpanEvent::kSteal, at, /*gpu=*/-1,
              static_cast<std::int64_t>(target));
        }
        shards_[target]->engine().submit(std::move(req));
        ++depth[target];
        --depth[donor];
      }
      if (moved == 0) break;
      excess -= std::min(excess, batch.size());
      moved_total += static_cast<std::size_t>(moved);
    }
  }
  return moved_total;
}

bool ShardedCluster::drained(std::size_t requests_injected,
                             std::size_t total) const {
  if (requests_injected < total) return false;
  for (const auto& shard : shards_) {
    if (shard->simulator().pending_events() > 0) return false;
    if (shard->engine().pending() > 0) return false;
  }
  return true;
}

std::vector<core::CompletionRecord> ShardedCluster::completions() const {
  std::vector<core::CompletionRecord> all;
  for (const auto& shard : shards_) {
    const auto& records = shard->engine().completions();
    all.insert(all.end(), records.begin(), records.end());
  }
  return all;
}

std::vector<core::CompletionRecord> ShardedCluster::failures() const {
  std::vector<core::CompletionRecord> all;
  for (const auto& shard : shards_) {
    const auto& records = shard->engine().failures();
    all.insert(all.end(), records.begin(), records.end());
  }
  return all;
}

}  // namespace gfaas::shard
