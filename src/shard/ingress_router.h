// Sharded front door for the deployment-mode (real-time) stack: producer
// threads submit through ONE object, and each submission is routed by
// model affinity to one of N per-shard ConcurrentIngress rings — so N
// independent gateway/engine stacks ingest in parallel with no shared
// producer-side state beyond the router's ring (a read-mostly lock).
//
// This is the multi-shard leg of bench_ingest_throughput: the MPSC ring,
// drain wakeup, and bulk admission all stay per-shard; the only cross-
// shard coupling is route(), a hash plus a binary search.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "gateway/ingress.h"
#include "shard/router.h"

namespace gfaas::shard {

class ShardedIngress {
 public:
  // `ingresses[i]` is shard i's front door; all must outlive this object.
  // `router` must be sized to ingresses.size() and is shared with (not
  // owned by) the caller, so membership re-weighting applies here too.
  ShardedIngress(std::vector<gateway::ConcurrentIngress*> ingresses,
                 ShardRouter* router);

  ShardedIngress(const ShardedIngress&) = delete;
  ShardedIngress& operator=(const ShardedIngress&) = delete;

  // Routes by cell.request.model and enqueues on that shard's ring.
  // Thread-safe; false means THAT shard's ring is full (the cell stays
  // with the caller — model affinity forbids spilling it elsewhere, or
  // the model's warm-copy locality would silently leak across shards).
  bool try_submit(gateway::Submission& cell);

  std::size_t shard_count() const { return ingresses_.size(); }
  // Requests accepted onto shard i's ring through this router.
  std::uint64_t routed(std::size_t shard) const {
    return routed_[shard].load(std::memory_order_relaxed);
  }

 private:
  std::vector<gateway::ConcurrentIngress*> ingresses_;
  ShardRouter* router_;
  // Per-shard accept counters; a deque-of-atomics is non-copyable, so
  // size once at construction.
  std::vector<std::atomic<std::uint64_t>> routed_;
};

}  // namespace gfaas::shard
