// Sharded experiment runner: partitions a fleet config into N per-shard
// ClusterConfigs along whole-node lines, replays a workload through a
// ShardedCluster, and aggregates the SAME ExperimentResult metrics as
// cluster::run_experiment — with identical arithmetic and identical
// iteration order, so a 1-shard sharded run reproduces the direct run's
// hexfloat output and completion digest byte-for-byte
// (bench_seed_digest --sharded=1).
#pragma once

#include <vector>

#include "cluster/config.h"
#include "cluster/experiment.h"
#include "shard/sharded_cluster.h"
#include "trace/workload.h"

namespace gfaas::shard {

// Splits `base` into `shards` partitions along whole-node lines: shard s
// gets nodes/shards nodes (the first nodes%shards shards get one extra),
// carrying its slice of node_specs and every scalar knob unchanged. Dies
// unless 1 <= shards <= base.nodes.
std::vector<cluster::ClusterConfig> partition_config(
    const cluster::ClusterConfig& base, std::size_t shards);

struct ShardedExperimentResult {
  cluster::ExperimentResult result;
  ShardedReplayStats stats;
};

// Runs `workload` through a `shards`-way ShardedCluster built from
// partition_config(config, shards). The completion stream (shard-major)
// lands in `completions_out` when non-null; duplicate tracking of the
// workload's top model is wired to the shard that model routes to.
ShardedExperimentResult run_sharded_experiment(
    const cluster::ClusterConfig& config, std::size_t shards,
    const trace::Workload& workload, ShardedOptions options = {},
    std::vector<core::CompletionRecord>* completions_out = nullptr);

}  // namespace gfaas::shard
