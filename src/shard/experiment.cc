#include "shard/experiment.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/log.h"
#include "metrics/stats.h"

namespace gfaas::shard {

std::vector<cluster::ClusterConfig> partition_config(
    const cluster::ClusterConfig& base, std::size_t shards) {
  GFAAS_CHECK(shards >= 1);
  GFAAS_CHECK(shards <= static_cast<std::size_t>(base.nodes))
      << "cannot split " << base.nodes << " nodes into " << shards
      << " shards (partitions are whole nodes)";
  const auto nodes = static_cast<std::size_t>(base.nodes);
  std::vector<cluster::ClusterConfig> configs;
  configs.reserve(shards);
  std::size_t node_cursor = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t share = nodes / shards + (s < nodes % shards ? 1 : 0);
    cluster::ClusterConfig config = base;
    config.nodes = static_cast<int>(share);
    if (base.node_specs.size() > 1) {
      GFAAS_CHECK(base.node_specs.size() == nodes);
      config.node_specs.assign(
          base.node_specs.begin() + static_cast<std::ptrdiff_t>(node_cursor),
          base.node_specs.begin() +
              static_cast<std::ptrdiff_t>(node_cursor + share));
    }
    node_cursor += share;
    configs.push_back(std::move(config));
  }
  return configs;
}

ShardedExperimentResult run_sharded_experiment(
    const cluster::ClusterConfig& config, std::size_t shards,
    const trace::Workload& workload, ShardedOptions options,
    std::vector<core::CompletionRecord>* completions_out) {
  ShardedCluster sharded(partition_config(config, shards), workload.registry,
                         options);

  // Hot-model spreading: affinity routing caps any one model's service
  // rate at one shard's capacity, so a model whose replay traffic share
  // exceeds its fair slice is replicated over enough ring successors to
  // bring every replica's slice back under it (with headroom, see
  // ShardedOptions::hot_model_spread). The replay runner knows the whole
  // workload upfront; an online deployment would feed observed rates
  // through the same set_replication hook.
  if (shards > 1 && options.hot_model_spread > 0) {
    std::unordered_map<std::int64_t, std::size_t> per_model;
    for (const core::Request& request : workload.requests) {
      ++per_model[request.model.value()];
    }
    const double total = static_cast<double>(workload.requests.size());
    for (const auto& [model, count] : per_model) {
      const double share = static_cast<double>(count) / total;
      const auto copies = static_cast<std::uint32_t>(std::ceil(
          share * static_cast<double>(shards) * options.hot_model_spread));
      if (copies > 1) sharded.router().set_replication(ModelId(model), copies);
    }
  }

  // Offline weight calibration: per-model hashing balances EXPECTED load,
  // but with a few hundred models the realized per-shard shares are
  // binomial — a 1.5-2x-fair hot shard is typical, and that overflow
  // becomes steady-state stealing. The replay is fully known, so iterate:
  // route everything, then damp each shard's ring weight toward the fair
  // share and re-route. sqrt damping keeps the model->shard churn per
  // round small (consistent hashing moves only arcs near the changed
  // weights), and a fixed round count keeps it deterministic.
  if (shards > 1 && options.calibration_rounds > 0) {
    const double fair = static_cast<double>(workload.requests.size()) /
                        static_cast<double>(shards);
    for (int round = 0; round < options.calibration_rounds; ++round) {
      std::vector<double> load(shards, 0.0);
      for (const core::Request& request : workload.requests) {
        load[sharded.route(request.model,
                           static_cast<std::uint64_t>(request.id.value()))] +=
            1.0;
      }
      std::vector<double> weights = sharded.router().weights();
      for (std::size_t s = 0; s < shards; ++s) {
        weights[s] *= std::sqrt(fair / std::max(load[s], 1.0));
        weights[s] = std::clamp(weights[s], 0.2, 5.0);
      }
      sharded.router().set_weights(weights);
    }
  }

  // The paper's duplicate metric follows the hottest model; with model-
  // affinity routing its traffic (and warm copies) live on its replica
  // shards — track its primary.
  sharded.engine(sharded.route(workload.top_model))
      .track_duplicates_of(workload.top_model);

  ShardedExperimentResult out;
  out.stats = sharded.replay(workload.requests);

  // From here down this mirrors cluster::run_experiment's aggregation
  // term for term (same accumulation order, shard-major), which is what
  // makes the 1-shard output float- and digest-identical to the direct
  // runner.
  const std::vector<core::CompletionRecord> completions = sharded.completions();
  GFAAS_CHECK(completions.size() == workload.requests.size())
      << completions.size() << " completions for " << workload.requests.size()
      << " requests";
  SimTime makespan = 0;
  for (const auto& record : completions) {
    makespan = std::max(makespan, record.completed);
  }

  metrics::StreamingStats latency;
  metrics::Histogram latency_hist(/*min=*/100.0, /*max=*/1e10);
  std::int64_t misses = 0;
  for (const auto& record : completions) {
    latency.add(sim_to_seconds(record.latency()));
    latency_hist.add(static_cast<double>(record.latency()));
    if (!record.cache_hit) ++misses;
  }

  cluster::ExperimentResult& result = out.result;
  result.policy = sharded.engine(0).policy().name();
  result.working_set = workload.registry.size();
  result.requests = completions.size();
  result.avg_latency_s = latency.mean();
  result.latency_variance_s2 = latency.sample_variance();
  result.p50_latency_s = latency_hist.p50() / 1e6;
  result.p95_latency_s = latency_hist.p95() / 1e6;
  result.p99_latency_s = latency_hist.p99() / 1e6;
  result.miss_ratio =
      static_cast<double>(misses) / static_cast<double>(completions.size());
  std::int64_t false_misses = 0;
  for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
    false_misses += sharded.engine(s).false_misses();
  }
  result.false_miss_ratio = static_cast<double>(false_misses) /
                            static_cast<double>(completions.size());

  double util = 0;
  std::int64_t evictions = 0, loads = 0;
  std::size_t gpu_count = 0;
  for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
    cluster::SimCluster& cell = sharded.shard(s);
    for (std::size_t g = 0; g < cell.gpu_count(); ++g) {
      util += cell.gpu(g).sm_utilization(makespan);
      evictions += cell.gpu(g).counters().evictions;
      loads += cell.gpu(g).counters().loads;
    }
    gpu_count += cell.gpu_count();
  }
  result.sm_utilization = util / static_cast<double>(gpu_count);
  result.evictions = evictions;
  result.model_loads = loads;
  result.avg_top_duplicates =
      sharded.engine(sharded.route(workload.top_model))
          .average_top_duplicates(makespan);
  result.makespan_s = sim_to_seconds(makespan);
  if (completions_out != nullptr) *completions_out = completions;
  return out;
}

}  // namespace gfaas::shard
