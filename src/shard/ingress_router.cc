#include "shard/ingress_router.h"

#include "common/log.h"

namespace gfaas::shard {

ShardedIngress::ShardedIngress(
    std::vector<gateway::ConcurrentIngress*> ingresses, ShardRouter* router)
    : ingresses_(std::move(ingresses)),
      router_(router),
      routed_(ingresses_.size()) {
  GFAAS_CHECK(!ingresses_.empty());
  GFAAS_CHECK(router_ != nullptr);
  GFAAS_CHECK(router_->shard_count() == ingresses_.size());
  for (gateway::ConcurrentIngress* ingress : ingresses_) {
    GFAAS_CHECK(ingress != nullptr);
  }
}

bool ShardedIngress::try_submit(gateway::Submission& cell) {
  const std::size_t shard = router_->route(
      cell.request.model, static_cast<std::uint64_t>(cell.request.id.value()));
  if (!ingresses_[shard]->try_submit(cell)) return false;
  routed_[shard].fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace gfaas::shard
