// Model-affinity shard router: consistent hashing on model id over a
// weighted ring of scheduler shards.
//
// Why affinity, not round-robin: LALB's whole story (the paper's
// cache-aware placement) depends on a model's requests meeting its warm
// copies. Hashing the MODEL (never the request) to a shard concentrates
// each model's traffic — and therefore its warm copies — on one shard's
// GPU partition, so every shard-local LALB instance keeps the full
// locality signal. Consistent hashing makes membership changes cheap:
// when the Autoscaler grows or shrinks one shard's partition, only the
// ring arcs owned by that shard move, so the other shards' warm models
// are never re-routed (no stranded warm state on rebalance).
//
// Weighted virtual nodes: each shard owns round(virtual_nodes * weight)
// pseudo-random ring points; weight defaults to 1 per shard and the
// rebalancing hooks set it to the shard's schedulable-GPU count, so a
// half-drained shard attracts half the models. Weight 0 removes the
// shard from the ring entirely (a dead partition routes nothing).
//
// Hot-model replication: affinity has a capacity ceiling — a model whose
// traffic share exceeds one shard's fair share CANNOT fit any single
// shard, and steady-state work stealing of its overflow de-localizes
// exactly the requests that most want their warm copies. set_replication
// spreads such a model across its first K DISTINCT ring successors (the
// replica set is as stable under membership changes as single-copy
// routing); route()'s salt — callers pass the request id — picks the
// replica deterministically. A model hot enough to need K shards keeps
// warm copies on all K, so the locality story survives the split.
//
// Threading: route() is called from producer threads (ShardedIngress) and
// from the replay orchestrator; set_weight() from autoscaler callbacks on
// shard worker threads. All ring/weight state is GUARDED_BY(mu_) — the
// negative-compile probe nc_shard_router_guarded pins the contract.
// Determinism: the ring is a pure function of (config, weights), and
// weight updates commute, so any interleaving of per-shard set_weight()
// calls converges to the same ring — routing decisions taken at epoch
// barriers are bit-reproducible.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/id.h"
#include "common/thread_annotations.h"

namespace gfaas::shard {

struct RouterConfig {
  // Ring points per unit of weight. More points = smoother balance on
  // weight changes, at O(points * shards) rebuild cost.
  int virtual_nodes = 64;
  // Perturbs ring-point placement (never consumed as an RNG stream).
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;
};

class ShardRouter {
 public:
  explicit ShardRouter(std::size_t shards, RouterConfig config = {});

  std::size_t shard_count() const { return shard_count_; }

  // Model -> shard. Pure function of (ring, replication, model, salt);
  // O(log points). With replication set for the model, `salt` (pass the
  // request id) picks among its K distinct ring successors; unreplicated
  // models ignore the salt entirely.
  std::size_t route(ModelId model, std::uint64_t salt = 0) const;

  // Spreads `model` over its first `copies` distinct ring successors
  // (clamped to the shard count; <=1 restores single-copy affinity).
  void set_replication(ModelId model, std::uint32_t copies);
  std::uint32_t replication(ModelId model) const;

  // Sets one shard's weight and rebuilds the ring. Per-shard updates
  // commute (each writes a distinct slot), so concurrent autoscaler
  // hooks converge to the same membership regardless of order.
  void set_weight(std::size_t shard, double weight);
  // Replaces all weights at once (initial wiring, tests).
  void set_weights(const std::vector<double>& weights);
  std::vector<double> weights() const;

  // Ring occupancy per shard (diagnostics/tests): how many of the ring's
  // points each shard owns under the current weights.
  std::vector<std::size_t> ring_share() const;

 private:
  // Negative-compile probe seam (tests/negative_compile): pokes at the
  // guarded membership table without the lock; must fail the analysis.
  friend class ThreadSafetyProbe;

  void rebuild() REQUIRES(mu_);

  const std::size_t shard_count_;
  const RouterConfig config_;

  mutable common::Mutex mu_;
  std::vector<double> weights_ GUARDED_BY(mu_);
  // The membership table: sorted (point, shard) ring.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_ GUARDED_BY(mu_);
  // model id -> replica count (absent = 1). Survives ring rebuilds.
  std::unordered_map<std::int64_t, std::uint32_t> replication_ GUARDED_BY(mu_);
};

}  // namespace gfaas::shard
