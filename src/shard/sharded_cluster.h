// Sharded multi-engine serving tier: N independent SchedulerEngine
// shards, each a complete SimCluster (own simulator, GPU partition,
// cache manager, ClusterStateIndex), fronted by a model-affinity
// ShardRouter and balanced by bounded cross-shard work stealing.
//
// Why this scales: a single SchedulerEngine is one event loop — no
// matter how many GPUs or producers exist, every dispatch decision
// serializes through it. Sharding splits the fleet into N partitions
// whose event loops share NOTHING on the hot path: requests are routed
// once at arrival (consistent hashing on model id, so a model's warm
// copies and its traffic concentrate on one shard and the paper's
// cache-locality reasoning survives sharding), and the shards only meet
// at epoch barriers.
//
// Epoch-barrier replay (conservative bulk-synchronous PDES): the
// orchestrator repeatedly (1) routes and injects the next epoch's
// arrivals into their shards' simulators (on the arrival lane, so
// same-time ordering matches an upfront-scheduled replay exactly),
// (2) runs every shard independently — sequentially or on a worker
// pool; the results are bit-identical either way because shards never
// read each other mid-epoch — to the epoch's end, and (3) at the
// barrier runs the steal balancer: a shard whose global-queue depth
// exceeds max(min_queue, threshold x fleet-median depth) donates up to
// max_batch of its NEWEST queued requests to the shallowest shard, and
// a dead shard (no schedulable GPUs — e.g. chaos killed all its
// domains) is evacuated entirely. Stolen requests keep their ids,
// deadlines and completion hooks and carry a steal marker
// (core::Request::steal_hops) for telemetry and the digest guard.
//
// Determinism: with one shard this machinery reproduces the seed engine
// BYTE-IDENTICALLY (bench_seed_digest --sharded=1); with N shards the
// epoch schedule, the routing, and every steal decision are pure
// functions of (configs, workload, options), so repeated runs — and
// sequential vs threaded runs — produce bit-identical completion
// digests, steal decisions included.
#pragma once

#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "cluster/config.h"
#include "cluster/engine.h"
#include "cluster/experiment.h"
#include "common/thread_annotations.h"
#include "common/time.h"
#include "core/request.h"
#include "models/zoo.h"
#include "shard/router.h"

namespace gfaas::telemetry {
class Telemetry;
class Counter;
}  // namespace gfaas::telemetry

namespace gfaas::shard {

struct StealConfig {
  bool enabled = true;
  // A shard donates when its global-queue depth exceeds
  // max(min_queue, threshold x fleet-median depth). The median (not the
  // mean) keeps one pathological shard from dragging the trigger up for
  // everyone.
  double threshold = 1.5;
  std::size_t min_queue = 8;
  // Per-shard trigger floor scales with capacity: a queue worth half the
  // shard's schedulable GPUs is dispatch jitter, not overload — stealing
  // it pays cold-miss cost for no queueing win.
  double min_queue_per_gpu = 0.5;
  // Per-donor, per-barrier steal cap (dead-shard evacuation ignores it
  // in total but still moves chunks of this size, spread over the
  // shallowest targets).
  std::size_t max_batch = 64;
};

struct ShardedOptions {
  // Barrier interval, simulated time. Smaller = tighter steal response
  // and finer-grained arrival routing; larger = less coordination
  // overhead. Must be >= 2 (the epoch runs to its deadline minus one
  // tick so barrier-time events stay ordered after injected arrivals).
  SimTime epoch = msec(500);
  StealConfig steal;
  // Worker threads driving shards each epoch; 1 = run shards inline on
  // the orchestrator thread. Results are identical either way.
  int threads = 1;
  RouterConfig router;
  // Hot-model spread target, consumed by run_sharded_experiment (the
  // cluster itself never reads it): a model whose traffic share exceeds
  // 1/(spread x shards) is replicated over ceil(share x shards x spread)
  // ring successors, keeping every replica's slice under a shard's fair
  // share with 2x headroom at the default. 0 disables spreading.
  double hot_model_spread = 2.0;
  // Offline ring-weight calibration rounds, also runner-only: route the
  // whole (known) replay, damp each shard's weight toward the fair
  // per-shard request share, repeat. Flattens the binomial tail-model
  // imbalance that per-model hashing leaves behind. 0 disables.
  int calibration_rounds = 4;
};

struct ShardedReplayStats {
  std::size_t epochs = 0;
  // Requests moved by the steal balancer (evacuations included), and
  // the number of donor->target batches they moved in.
  std::int64_t steals = 0;
  std::int64_t steal_batches = 0;
  // Steals out of shards with zero schedulable GPUs (domain kills).
  std::int64_t evacuations = 0;
  // Wall-clock decomposition of the replay. critical_path_ns sums, per
  // epoch, the SLOWEST shard's wall time — what the epoch costs when
  // every shard has its own core, measured independently of how many
  // cores this host actually has. serial_ns is the orchestrator-only
  // work between barriers (routing, injection, steal decisions).
  // total_work_ns sums every shard's wall time (= single-loop cost).
  std::uint64_t critical_path_ns = 0;
  std::uint64_t serial_ns = 0;
  std::uint64_t total_work_ns = 0;
  std::vector<std::uint64_t> shard_work_ns;
  std::vector<std::int64_t> stolen_from;
  std::vector<std::int64_t> stolen_to;
};

class ShardedCluster {
 public:
  // One ClusterConfig per shard (its GPU partition); `registry` is the
  // shared model catalog (each shard assembles its own oracle from it).
  ShardedCluster(std::vector<cluster::ClusterConfig> configs,
                 const models::ModelRegistry& registry,
                 ShardedOptions options = {});
  ~ShardedCluster();
  ShardedCluster(const ShardedCluster&) = delete;
  ShardedCluster& operator=(const ShardedCluster&) = delete;

  std::size_t shard_count() const { return shards_.size(); }
  cluster::SimCluster& shard(std::size_t index) { return *shards_[index]; }
  cluster::SchedulerEngine& engine(std::size_t index) {
    return shards_[index]->engine();
  }
  ShardRouter& router() { return router_; }
  const ShardedOptions& options() const { return options_; }
  std::size_t route(ModelId model, std::uint64_t salt = 0) const {
    return router_.route(model, salt);
  }
  std::size_t total_gpu_count() const;

  // Attaches one shard's telemetry: labels every engine.*/cache.*
  // instrument with `{shard=index}` (Telemetry::set_shard), stamps the
  // shard onto its span records, and resolves the steal counters
  // (engine.steals.out / engine.steals.in) the balancer bumps at each
  // barrier. Wire before replay(); nullable.
  void set_telemetry(std::size_t index, telemetry::Telemetry* telemetry);

  // Membership-rebalancing hook for shard `index`'s Autoscaler
  // (AutoscalerConfig::membership_hook): re-weights the router ring to
  // the shard's schedulable-GPU count, so a grown partition attracts
  // proportionally more models and a draining one sheds them — without
  // re-routing any model whose shard did not change (consistent
  // hashing), so warm copies elsewhere are never stranded. Safe to call
  // from the shard's own executor context; per-shard updates commute.
  std::function<void()> membership_hook(std::size_t index);

  // Routes and replays the arrival-sorted request stream to completion.
  // Dies if work strands (every shard dead with requests queued).
  ShardedReplayStats replay(const std::vector<core::Request>& requests);

  const ShardedReplayStats& stats() const {
    orchestrator_serial_.AssertHeld();
    return stats_;
  }
  // Completion/failure records, concatenated shard-major (shard 0's
  // stream first) — deterministic, and with one shard exactly the seed
  // engine's stream.
  std::vector<core::CompletionRecord> completions() const;
  std::vector<core::CompletionRecord> failures() const;

 private:
  // Per-shard telemetry handles resolved at set_telemetry().
  struct ShardTelemetry {
    telemetry::Telemetry* telemetry = nullptr;
    telemetry::Counter* steals_out = nullptr;
    telemetry::Counter* steals_in = nullptr;
  };

  void inject_arrivals(const std::vector<core::Request>& requests,
                       std::size_t& next, SimTime horizon)
      REQUIRES(orchestrator_serial_);
  // Runs every shard's simulator to `deadline` (inline or on the worker
  // pool) and folds the per-shard wall times into the stats.
  void run_shards_until(SimTime deadline) REQUIRES(orchestrator_serial_);
  void run_one_shard(std::size_t index, SimTime deadline);
  // The barrier balancer; returns how many requests moved.
  std::size_t steal_rebalance(SimTime at) REQUIRES(orchestrator_serial_);
  // All arrivals injected, all simulators drained, all engines empty.
  bool drained(std::size_t requests_injected, std::size_t total) const;
  void worker_loop(std::size_t worker);

  const ShardedOptions options_;
  ShardRouter router_;
  std::vector<std::unique_ptr<cluster::SimCluster>> shards_;
  std::vector<ShardTelemetry> telemetry_;

  // Replay-orchestration affinity: replay() and the steal balancer's
  // accounting run on the single orchestrating thread (the shard
  // simulators fan out to workers; this state never does).
  common::ExecutorAffinity orchestrator_serial_;
  ShardedReplayStats stats_ GUARDED_BY(orchestrator_serial_);

  // Per-epoch scratch: slot i is written by the worker running shard i
  // during the epoch and read by the orchestrator after the barrier —
  // the mutex hand-off below orders the accesses (no annotation: the
  // guard is the barrier protocol, not a single capability).
  std::vector<std::uint64_t> epoch_wall_ns_;

  // Worker-pool barrier state (threads > 1 only).
  common::Mutex mu_;
  common::CondVar work_cv_;
  common::CondVar done_cv_;
  SimTime epoch_deadline_ GUARDED_BY(mu_) = 0;
  std::uint64_t generation_ GUARDED_BY(mu_) = 0;
  std::size_t remaining_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace gfaas::shard
