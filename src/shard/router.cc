#include "shard/router.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace gfaas::shard {
namespace {

// SplitMix64 finalizer: the ring-point / routing hash. Stateless, so the
// router consumes no RNG stream (determinism guard).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

ShardRouter::ShardRouter(std::size_t shards, RouterConfig config)
    : shard_count_(shards), config_(config) {
  GFAAS_CHECK(shards > 0);
  GFAAS_CHECK(config.virtual_nodes > 0);
  common::MutexLock lock(&mu_);
  weights_.assign(shards, 1.0);
  rebuild();
}

std::size_t ShardRouter::route(ModelId model, std::uint64_t salt) const {
  common::MutexLock lock(&mu_);
  if (ring_.empty()) return 0;  // every shard weightless: degenerate pick
  const std::uint64_t point =
      mix(static_cast<std::uint64_t>(model.value()) ^ config_.seed);
  // First ring point clockwise from the model's hash (wrapping).
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(point, std::uint32_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  if (it == ring_.end()) it = ring_.begin();

  std::uint32_t copies = 1;
  if (!replication_.empty()) {
    const auto found = replication_.find(model.value());
    if (found != replication_.end()) copies = found->second;
  }
  if (copies <= 1) return it->second;

  // The model's replica set: the first `copies` DISTINCT shards clockwise
  // from its point. A weight change elsewhere on the ring never reorders
  // this walk, so replicas are as sticky as single-copy routing; fewer
  // live shards than copies degrades gracefully to all of them.
  std::vector<std::uint32_t> replicas;
  replicas.reserve(copies);
  auto walk = it;
  for (std::size_t steps = 0;
       steps < ring_.size() && replicas.size() < copies; ++steps) {
    if (std::find(replicas.begin(), replicas.end(), walk->second) ==
        replicas.end()) {
      replicas.push_back(walk->second);
    }
    ++walk;
    if (walk == ring_.end()) walk = ring_.begin();
  }
  return replicas[mix(salt ^ point) % replicas.size()];
}

void ShardRouter::set_replication(ModelId model, std::uint32_t copies) {
  common::MutexLock lock(&mu_);
  if (copies <= 1) {
    replication_.erase(model.value());
    return;
  }
  replication_[model.value()] =
      std::min(copies, static_cast<std::uint32_t>(shard_count_));
}

std::uint32_t ShardRouter::replication(ModelId model) const {
  common::MutexLock lock(&mu_);
  const auto found = replication_.find(model.value());
  return found == replication_.end() ? 1 : found->second;
}

void ShardRouter::set_weight(std::size_t shard, double weight) {
  GFAAS_CHECK(shard < shard_count_);
  GFAAS_CHECK(weight >= 0.0);
  common::MutexLock lock(&mu_);
  if (weights_[shard] == weight) return;
  weights_[shard] = weight;
  rebuild();
}

void ShardRouter::set_weights(const std::vector<double>& weights) {
  GFAAS_CHECK(weights.size() == shard_count_);
  common::MutexLock lock(&mu_);
  weights_ = weights;
  rebuild();
}

std::vector<double> ShardRouter::weights() const {
  common::MutexLock lock(&mu_);
  return weights_;
}

std::vector<std::size_t> ShardRouter::ring_share() const {
  common::MutexLock lock(&mu_);
  std::vector<std::size_t> share(shard_count_, 0);
  for (const auto& [point, shard] : ring_) ++share[shard];
  return share;
}

void ShardRouter::rebuild() {
  ring_.clear();
  for (std::size_t s = 0; s < shard_count_; ++s) {
    const auto points = static_cast<std::size_t>(
        std::llround(weights_[s] * config_.virtual_nodes));
    for (std::size_t k = 0; k < points; ++k) {
      // Point identity depends only on (shard, k, seed): growing a
      // shard's weight ADDS points, shrinking REMOVES its highest-k
      // points, and no other shard's points ever move — the consistent-
      // hashing property the rebalancing hooks rely on. The +1 domain-
      // separates ring points from model points: with a bare s, shard
      // 0's k-th point is mix(k ^ seed) — the model-point formula — so
      // every model id below virtual_nodes would land EXACTLY on a
      // shard-0 point and the whole working set would route there.
      const std::uint64_t point =
          mix(((static_cast<std::uint64_t>(s) + 1) << 32 | k) ^ config_.seed);
      ring_.emplace_back(point, static_cast<std::uint32_t>(s));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

}  // namespace gfaas::shard
