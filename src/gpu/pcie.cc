#include "gpu/pcie.h"

#include <algorithm>

#include "common/log.h"

namespace gfaas::gpu {

PcieLink::PcieLink(double bandwidth_gbps, SimTime latency) : latency_(latency) {
  GFAAS_CHECK(bandwidth_gbps > 0) << "bandwidth must be positive";
  GFAAS_CHECK(latency >= 0);
  // GB/s (decimal) -> bytes per microsecond: 1 GB/s = 1e9 B / 1e6 µs = 1e3 B/µs.
  bytes_per_usec_ = bandwidth_gbps * 1e3;
}

SimTime PcieLink::transfer_duration(Bytes bytes) const {
  GFAAS_CHECK(bytes >= 0);
  const double t = static_cast<double>(bytes) / bytes_per_usec_;
  return latency_ + static_cast<SimTime>(t + 0.5);
}

TransferTiming PcieLink::reserve(SimTime now, Bytes bytes) {
  TransferTiming timing;
  timing.start = std::max(now, busy_until_);
  timing.end = timing.start + transfer_duration(bytes);
  busy_until_ = timing.end;
  ++transfers_;
  bytes_total_ += bytes;
  return timing;
}

void PcieLink::cancel_reservation(const TransferTiming& timing) {
  if (busy_until_ == timing.end) busy_until_ = timing.start;
}

}  // namespace gfaas::gpu
