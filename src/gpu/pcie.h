// PCIe transfer engine.
//
// Models the host<->device link the paper identifies as the bottleneck
// (§II-B: PCIe ~100 GB/s-class aggregate vs ~1 TB/s device memory). A
// link serializes transfers: concurrent requests queue behind each other,
// which matters when multiple GPUs on a node share the host link (the
// contention ablation). Timing: start = max(now, link free), duration =
// latency + bytes/bandwidth.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/time.h"

namespace gfaas::gpu {

struct TransferTiming {
  SimTime start = 0;
  SimTime end = 0;
  SimTime duration() const { return end - start; }
};

class PcieLink {
 public:
  // bandwidth in GB/s (decimal), fixed per-transfer latency.
  PcieLink(double bandwidth_gbps, SimTime latency);

  // Pure duration of a transfer of `bytes`, ignoring queueing.
  SimTime transfer_duration(Bytes bytes) const;

  // Reserves the link for a transfer beginning no earlier than `now`;
  // returns actual start (after any queued transfer) and end.
  TransferTiming reserve(SimTime now, Bytes bytes);

  // Releases a reservation whose transfer was aborted (the GPU died
  // mid-upload). Only the most recent reservation can be rolled back: the
  // link serializes transfers, so once a later transfer has queued behind
  // this one, un-queueing it would double-book the slot — in that case the
  // reservation is forfeited (conservative). transfers_completed() /
  // bytes_transferred() count reservations and are not rolled back.
  void cancel_reservation(const TransferTiming& timing);

  SimTime busy_until() const { return busy_until_; }
  std::int64_t transfers_completed() const { return transfers_; }
  Bytes bytes_transferred() const { return bytes_total_; }

 private:
  double bytes_per_usec_;
  SimTime latency_;
  SimTime busy_until_ = 0;
  std::int64_t transfers_ = 0;
  Bytes bytes_total_ = 0;
};

}  // namespace gfaas::gpu
