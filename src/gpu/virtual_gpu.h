// Virtual GPU device: the testbed substitute for a physical RTX 2080.
//
// The scheduling layers observe exactly what they would observe on real
// hardware through the paper's GPU Manager: which models are resident
// (one GPU process per model, §III-C), how much memory is free, whether
// the device is busy, and when it will finish. Timing comes from the
// Table I profiles via the models::LatencyOracle (scaled by the GpuSpec
// for heterogeneous types); SM utilization integrates occupancy over
// simulated time the same way `nvidia-smi` samples it on the testbed —
// zero while a model uploads, proportional to batch occupancy while a
// kernel runs (§V-C).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/id.h"
#include "common/status.h"
#include "gpu/gpu_spec.h"
#include "gpu/memory_allocator.h"
#include "gpu/pcie.h"
#include "metrics/stats.h"

namespace gfaas::gpu {

enum class GpuPhase { kIdle, kLoading, kInferring };

// One resident model = one GPU process (paper §III-C: "Each GPU process
// uploads an inference model when initiating").
struct GpuProcess {
  ProcessId id;
  ModelId model;
  PagedAllocation memory;
  bool loaded = false;  // false while the model upload is in flight
};

struct GpuCounters {
  std::int64_t loads = 0;
  std::int64_t inferences = 0;
  std::int64_t evictions = 0;
  Bytes bytes_uploaded = 0;
};

class VirtualGpu {
 public:
  // `host_link` is the PCIe link used for uploads; it may be shared by
  // several GPUs on a node (contention) or per-GPU. Not owned.
  VirtualGpu(GpuId id, GpuSpec spec, PcieLink* host_link);

  GpuId id() const { return id_; }
  const GpuSpec& spec() const { return spec_; }

  // --- process / memory management (called by the GPU Manager) ---

  // Creates a process for `model`, reserving `occupation` bytes. Fails
  // with kResourceExhausted if memory does not fit (the caller must evict
  // first — the GPU never OOMs implicitly).
  StatusOr<ProcessId> create_process(ModelId model, Bytes occupation);

  // Kills a process and frees its memory (model eviction, §III-C: "GPU
  // Manager kills the process associated with the evicted model").
  Status kill_process(ProcessId process);

  std::optional<GpuProcess> find_process(ModelId model) const;
  bool has_model(ModelId model) const { return find_process(model).has_value(); }
  std::vector<GpuProcess> processes() const;
  std::size_t process_count() const { return processes_.size(); }

  Bytes free_memory() const { return allocator_.free_total(); }
  Bytes memory_capacity() const { return allocator_.capacity(); }
  const MemoryAllocator& allocator() const { return allocator_; }

  // --- execution timing (called by the GPU Manager's event handlers) ---

  // Begins uploading the model of `process` at `now`; returns the
  // completion time (PCIe transfer of the occupation size, scaled by the
  // spec's load_time_scale around the profiled `load_time`). The GPU is
  // busy and its SMs idle until then.
  StatusOr<SimTime> begin_load(SimTime now, ProcessId process, SimTime load_time);
  // Marks the upload finished; the process becomes usable.
  Status finish_load(SimTime now, ProcessId process);

  // Begins inference at `now` with the given profiled duration and batch
  // size; returns completion time. SM occupancy = min(1, batch/sm_count)
  // while running.
  StatusOr<SimTime> begin_inference(SimTime now, ProcessId process,
                                    SimTime infer_time, std::int64_t batch);
  Status finish_inference(SimTime now, ProcessId process);

  // Aborts the in-flight load or inference at `now` (the GPU died or the
  // request was cancelled, chaos/hedging paths): the device returns to
  // idle and its SMs stop accruing occupancy. An aborted upload releases
  // its PCIe reservation so co-located GPUs stop queueing behind a
  // transfer that will never finish. Resident processes stay; the caller
  // decides their fate (the GPU Manager evicts a half-loaded process, a
  // killed GPU is retired wholesale via CacheManager::remove_gpu).
  Status abort_execution(SimTime now);

  // --- observable state (what the Datastore publishes) ---
  GpuPhase phase() const { return phase_; }
  bool is_busy() const { return phase_ != GpuPhase::kIdle; }
  // Completion time of the in-flight operation (now if idle).
  SimTime busy_until() const { return busy_until_; }

  // Average SM utilization over [0, now].
  double sm_utilization(SimTime now) const { return sm_meter_.average(now); }
  const GpuCounters& counters() const { return counters_; }

 private:
  GpuProcess* mutable_process(ProcessId id);

  GpuId id_;
  GpuSpec spec_;
  PcieLink* host_link_;
  MemoryAllocator allocator_;
  std::unordered_map<std::int64_t, GpuProcess> processes_;  // by process id
  std::int64_t next_process_ = 1;

  GpuPhase phase_ = GpuPhase::kIdle;
  SimTime busy_until_ = 0;
  // The in-flight upload's link reservation (valid while kLoading), so an
  // abort can hand the slot back to the shared host link.
  TransferTiming load_transfer_;
  metrics::TimeWeightedAverage sm_meter_;
  GpuCounters counters_;
};

}  // namespace gfaas::gpu
