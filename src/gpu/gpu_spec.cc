#include "gpu/gpu_spec.h"

namespace gfaas::gpu {

GpuSpec rtx2080() { return GpuSpec{}; }

GpuSpec rtx2080ti() {
  GpuSpec spec;
  spec.name = "rtx2080ti";
  spec.memory_capacity = GiB(11) - MiB(256);
  spec.sm_count = 68;
  spec.load_time_scale = 0.95;   // same PCIe gen, slightly faster init
  spec.infer_time_scale = 0.80;  // ~25% more SMs/bandwidth
  return spec;
}

GpuSpec a100_like() {
  GpuSpec spec;
  spec.name = "a100-like";
  spec.memory_capacity = GiB(40) - MiB(512);
  spec.sm_count = 108;
  spec.pcie_gbps = 25.0;  // PCIe 4.0 x16
  spec.load_time_scale = 0.70;
  spec.infer_time_scale = 0.45;
  return spec;
}

}  // namespace gfaas::gpu
