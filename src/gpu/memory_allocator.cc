#include "gpu/memory_allocator.h"

#include <algorithm>

#include "common/log.h"

namespace gfaas::gpu {

MemoryAllocator::MemoryAllocator(Bytes capacity) : capacity_(capacity) {
  GFAAS_CHECK(capacity > 0) << "allocator capacity must be positive";
  free_blocks_[0] = capacity;
}

StatusOr<Allocation> MemoryAllocator::allocate(Bytes size) {
  if (size <= 0) {
    return Status::InvalidArgument("allocation size must be positive");
  }
  for (auto it = free_blocks_.begin(); it != free_blocks_.end(); ++it) {
    if (it->second >= size) {
      const Bytes offset = it->first;
      const Bytes block_size = it->second;
      free_blocks_.erase(it);
      if (block_size > size) {
        free_blocks_[offset + size] = block_size - size;
      }
      allocated_[offset] = size;
      used_ += size;
      return Allocation{offset, size};
    }
  }
  return Status::ResourceExhausted("no free block of " + format_bytes(size) +
                                   " (largest free: " +
                                   format_bytes(largest_free_block()) + ")");
}

Status MemoryAllocator::free(const Allocation& allocation) {
  auto it = allocated_.find(allocation.offset);
  if (it == allocated_.end() || it->second != allocation.size) {
    return Status::InvalidArgument("free of unknown allocation at offset " +
                                   std::to_string(allocation.offset));
  }
  allocated_.erase(it);
  used_ -= allocation.size;

  Bytes offset = allocation.offset;
  Bytes size = allocation.size;
  // Coalesce with the following free block.
  auto next = free_blocks_.find(offset + size);
  if (next != free_blocks_.end()) {
    size += next->second;
    free_blocks_.erase(next);
  }
  // Coalesce with the preceding free block.
  if (!free_blocks_.empty()) {
    auto prev = free_blocks_.lower_bound(offset);
    if (prev != free_blocks_.begin()) {
      --prev;
      if (prev->first + prev->second == offset) {
        offset = prev->first;
        size += prev->second;
        free_blocks_.erase(prev);
      }
    }
  }
  free_blocks_[offset] = size;
  return Status::Ok();
}

StatusOr<PagedAllocation> MemoryAllocator::allocate_paged(Bytes size) {
  if (size <= 0) {
    return Status::InvalidArgument("allocation size must be positive");
  }
  if (size > free_total()) {
    return Status::ResourceExhausted("paged allocation of " + format_bytes(size) +
                                     " exceeds free space " +
                                     format_bytes(free_total()));
  }
  PagedAllocation paged;
  Bytes remaining = size;
  while (remaining > 0) {
    // Largest free block first minimizes extent count.
    Bytes best_offset = -1, best_size = 0;
    for (const auto& [offset, block] : free_blocks_) {
      if (block > best_size) {
        best_size = block;
        best_offset = offset;
      }
    }
    GFAAS_CHECK(best_size > 0) << "free accounting out of sync";
    const Bytes take = std::min(best_size, remaining);
    free_blocks_.erase(best_offset);
    if (best_size > take) free_blocks_[best_offset + take] = best_size - take;
    allocated_[best_offset] = take;
    used_ += take;
    paged.extents.push_back(Allocation{best_offset, take});
    paged.total += take;
    remaining -= take;
  }
  return paged;
}

Status MemoryAllocator::free_paged(const PagedAllocation& allocation) {
  for (const Allocation& extent : allocation.extents) {
    Status s = free(extent);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Bytes MemoryAllocator::largest_free_block() const {
  Bytes best = 0;
  for (const auto& [offset, size] : free_blocks_) best = std::max(best, size);
  return best;
}

double MemoryAllocator::fragmentation() const {
  const Bytes free = free_total();
  if (free == 0) return 0.0;
  return 1.0 - static_cast<double>(largest_free_block()) / static_cast<double>(free);
}

bool MemoryAllocator::check_invariants() const {
  // Merge all blocks and verify they tile [0, capacity).
  std::vector<std::pair<Bytes, Bytes>> blocks;
  for (const auto& [offset, size] : free_blocks_) blocks.emplace_back(offset, size);
  for (const auto& [offset, size] : allocated_) blocks.emplace_back(offset, size);
  std::sort(blocks.begin(), blocks.end());
  Bytes cursor = 0;
  for (const auto& [offset, size] : blocks) {
    if (offset != cursor || size <= 0) return false;
    cursor += size;
  }
  if (cursor != capacity_) return false;
  // Free map must be coalesced: no two adjacent free blocks.
  Bytes prev_end = -1;
  for (const auto& [offset, size] : free_blocks_) {
    if (offset == prev_end) return false;
    prev_end = offset + size;
  }
  // used_ must match the allocated map.
  Bytes used = 0;
  for (const auto& [offset, size] : allocated_) used += size;
  return used == used_;
}

}  // namespace gfaas::gpu
