// Virtual GPU device specification.
//
// The testbed substitute: the paper's cluster is 3 nodes × 4 GeForce RTX
// 2080. A GpuSpec captures the properties the scheduler and cache manager
// can observe — memory capacity, SM count, PCIe bandwidth — plus scale
// factors used by the heterogeneous-GPU ablation (§VI) to derive per-type
// load/inference times from the base Table I profiles.
#pragma once

#include <string>

#include "common/bytes.h"
#include "common/time.h"

namespace gfaas::gpu {

struct GpuSpec {
  std::string name = "rtx2080";
  // Usable device memory. RTX 2080 has 8 GB; a slice is reserved for the
  // CUDA context, matching the paper's occupation-size accounting.
  Bytes memory_capacity = GiB(8) - MiB(256);
  int sm_count = 46;  // RTX 2080
  // Effective host->device bandwidth (PCIe 3.0 x16 ≈ 12.6 GB/s usable).
  double pcie_gbps = 12.6;
  // Fixed per-transfer setup latency (driver + DMA ring).
  SimTime pcie_latency = usec(20);
  // Multipliers applied to profiled load/inference times for this GPU
  // type (1.0 = the RTX 2080 the paper profiled on).
  double load_time_scale = 1.0;
  double infer_time_scale = 1.0;
};

// Presets. rtx2080() matches the paper's testbed; the *_ti/a100-like
// variants are used by the heterogeneity ablation.
GpuSpec rtx2080();
GpuSpec rtx2080ti();
GpuSpec a100_like();

}  // namespace gfaas::gpu
