#include "gpu/virtual_gpu.h"

#include <algorithm>

#include "common/log.h"

namespace gfaas::gpu {

VirtualGpu::VirtualGpu(GpuId id, GpuSpec spec, PcieLink* host_link)
    : id_(id), spec_(std::move(spec)), host_link_(host_link),
      allocator_(spec_.memory_capacity) {
  GFAAS_CHECK(host_link_ != nullptr);
  GFAAS_CHECK(id_.valid());
}

StatusOr<ProcessId> VirtualGpu::create_process(ModelId model, Bytes occupation) {
  if (!model.valid()) return Status::InvalidArgument("invalid model id");
  if (has_model(model)) {
    return Status::AlreadyExists("model " + std::to_string(model.value()) +
                                 " already has a process on gpu " +
                                 std::to_string(id_.value()));
  }
  auto allocation = allocator_.allocate_paged(occupation);
  if (!allocation.ok()) return allocation.status();
  const ProcessId pid(next_process_++);
  processes_[pid.value()] = GpuProcess{pid, model, *allocation, /*loaded=*/false};
  return pid;
}

Status VirtualGpu::kill_process(ProcessId process) {
  auto it = processes_.find(process.value());
  if (it == processes_.end()) {
    return Status::NotFound("no process " + std::to_string(process.value()));
  }
  GFAAS_CHECK(allocator_.free_paged(it->second.memory).ok());
  processes_.erase(it);
  ++counters_.evictions;
  return Status::Ok();
}

std::optional<GpuProcess> VirtualGpu::find_process(ModelId model) const {
  for (const auto& [pid, proc] : processes_) {
    if (proc.model == model) return proc;
  }
  return std::nullopt;
}

std::vector<GpuProcess> VirtualGpu::processes() const {
  std::vector<GpuProcess> out;
  out.reserve(processes_.size());
  for (const auto& [pid, proc] : processes_) out.push_back(proc);
  std::sort(out.begin(), out.end(),
            [](const GpuProcess& a, const GpuProcess& b) { return a.id < b.id; });
  return out;
}

GpuProcess* VirtualGpu::mutable_process(ProcessId id) {
  auto it = processes_.find(id.value());
  return it == processes_.end() ? nullptr : &it->second;
}

StatusOr<SimTime> VirtualGpu::begin_load(SimTime now, ProcessId process,
                                         SimTime load_time) {
  GpuProcess* proc = mutable_process(process);
  if (proc == nullptr) {
    return Status::NotFound("no process " + std::to_string(process.value()));
  }
  if (phase_ != GpuPhase::kIdle) {
    return Status::FailedPrecondition("gpu busy; cannot start load");
  }
  if (proc->loaded) {
    return Status::FailedPrecondition("process already loaded");
  }
  // The profiled load time includes process start + upload; the PCIe link
  // is additionally reserved so co-located GPUs contend for the host link.
  const SimTime scaled =
      static_cast<SimTime>(static_cast<double>(load_time) * spec_.load_time_scale + 0.5);
  const TransferTiming transfer = host_link_->reserve(now, proc->memory.total);
  const SimTime queue_delay = transfer.start - now;
  const SimTime end = now + queue_delay + std::max(scaled, transfer.duration());
  load_transfer_ = transfer;
  phase_ = GpuPhase::kLoading;
  busy_until_ = end;
  sm_meter_.set(now, 0.0);  // SMs idle during upload (§V-C)
  ++counters_.loads;
  counters_.bytes_uploaded += proc->memory.total;
  return end;
}

Status VirtualGpu::finish_load(SimTime now, ProcessId process) {
  GpuProcess* proc = mutable_process(process);
  if (proc == nullptr) {
    return Status::NotFound("no process " + std::to_string(process.value()));
  }
  if (phase_ != GpuPhase::kLoading) {
    return Status::FailedPrecondition("gpu is not loading");
  }
  proc->loaded = true;
  phase_ = GpuPhase::kIdle;
  busy_until_ = now;
  return Status::Ok();
}

StatusOr<SimTime> VirtualGpu::begin_inference(SimTime now, ProcessId process,
                                              SimTime infer_time, std::int64_t batch) {
  GpuProcess* proc = mutable_process(process);
  if (proc == nullptr) {
    return Status::NotFound("no process " + std::to_string(process.value()));
  }
  if (!proc->loaded) {
    return Status::FailedPrecondition("model not loaded yet");
  }
  if (phase_ != GpuPhase::kIdle) {
    return Status::FailedPrecondition("gpu busy; cannot start inference");
  }
  if (batch < 1) return Status::InvalidArgument("batch must be >= 1");
  const SimTime scaled = static_cast<SimTime>(
      static_cast<double>(infer_time) * spec_.infer_time_scale + 0.5);
  const SimTime end = now + std::max<SimTime>(scaled, 1);
  phase_ = GpuPhase::kInferring;
  busy_until_ = end;
  const double occupancy =
      std::min(1.0, static_cast<double>(batch) / static_cast<double>(spec_.sm_count));
  sm_meter_.set(now, occupancy);
  ++counters_.inferences;
  return end;
}

Status VirtualGpu::abort_execution(SimTime now) {
  if (phase_ == GpuPhase::kIdle) {
    return Status::FailedPrecondition("gpu idle; nothing to abort");
  }
  if (phase_ == GpuPhase::kLoading) {
    host_link_->cancel_reservation(load_transfer_);
  }
  phase_ = GpuPhase::kIdle;
  busy_until_ = now;
  sm_meter_.set(now, 0.0);
  return Status::Ok();
}

Status VirtualGpu::finish_inference(SimTime now, ProcessId process) {
  GpuProcess* proc = mutable_process(process);
  if (proc == nullptr) {
    return Status::NotFound("no process " + std::to_string(process.value()));
  }
  if (phase_ != GpuPhase::kInferring) {
    return Status::FailedPrecondition("gpu is not inferring");
  }
  phase_ = GpuPhase::kIdle;
  busy_until_ = now;
  sm_meter_.set(now, 0.0);
  return Status::Ok();
}

}  // namespace gfaas::gpu
