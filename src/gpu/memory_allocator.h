// First-fit block allocator over a GPU's device memory.
//
// Models cudaMalloc-style suballocation: allocations are offset ranges in
// [0, capacity); frees coalesce with adjacent free blocks. Byte-accurate
// accounting is what the Cache Manager's eviction planning depends on
// ("the available memory space of the GPU", §III-D) — and the allocator
// also exposes fragmentation statistics for the tests that verify a long
// churn of model loads/evictions cannot wedge the device.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace gfaas::gpu {

struct Allocation {
  Bytes offset = 0;
  Bytes size = 0;
};

// A possibly-discontiguous allocation (multiple extents). GPUs address
// per-process memory through virtual page tables, so a model's occupation
// does not need to be physically contiguous; paged allocation succeeds
// whenever total free space suffices.
struct PagedAllocation {
  std::vector<Allocation> extents;
  Bytes total = 0;
};

class MemoryAllocator {
 public:
  explicit MemoryAllocator(Bytes capacity);

  // First-fit allocation; returns kResourceExhausted when no single free
  // block fits (even if total free space would suffice — fragmentation is
  // real and observable).
  StatusOr<Allocation> allocate(Bytes size);

  // Frees a previous allocation; invalid frees are errors.
  Status free(const Allocation& allocation);

  // Paged allocation: grabs as many free blocks (largest-first) as needed
  // to cover `size`; only fails when total free space is insufficient.
  StatusOr<PagedAllocation> allocate_paged(Bytes size);
  Status free_paged(const PagedAllocation& allocation);

  Bytes capacity() const { return capacity_; }
  Bytes used() const { return used_; }
  Bytes free_total() const { return capacity_ - used_; }
  // Largest single allocatable block.
  Bytes largest_free_block() const;
  std::size_t allocation_count() const { return allocated_.size(); }
  // 0 = no fragmentation (one free block or empty), approaching 1 = badly
  // fragmented: 1 - largest_free_block / free_total.
  double fragmentation() const;

  // Invariant checker used by property tests: free + allocated blocks
  // tile [0, capacity) exactly, with no overlap.
  bool check_invariants() const;

 private:
  Bytes capacity_;
  Bytes used_ = 0;
  // offset -> size maps. Free map is kept coalesced.
  std::map<Bytes, Bytes> free_blocks_;
  std::map<Bytes, Bytes> allocated_;
};

}  // namespace gfaas::gpu
