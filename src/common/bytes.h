// Byte-size units and formatting. GPU memory accounting is byte-accurate
// (int64) everywhere; these helpers keep model sizes and capacities legible.
#pragma once

#include <cstdint>
#include <string>

namespace gfaas {

using Bytes = std::int64_t;

constexpr Bytes KiB(std::int64_t n) { return n * 1024; }
constexpr Bytes MiB(std::int64_t n) { return n * 1024 * 1024; }
constexpr Bytes GiB(std::int64_t n) { return n * 1024 * 1024 * 1024; }

// The paper's Table I quotes sizes in MB (decimal); keep a separate helper
// so catalog entries read exactly like the paper.
constexpr Bytes MB(std::int64_t n) { return n * 1'000'000; }

std::string format_bytes(Bytes b);

}  // namespace gfaas
