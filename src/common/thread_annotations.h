// Clang Thread Safety Analysis support: annotation macros plus the
// annotated synchronization vocabulary the whole tree locks with.
//
// Every mutex in src/ is a common::Mutex and every thread-affine
// structure carries a common::ExecutorAffinity, so lock contracts are
// written once, next to the state they protect, and the compiler checks
// them on every build:
//
//   class Gateway {
//     ...
//     common::ExecutorAffinity serial_;
//     FlightMap flights_ GUARDED_BY(serial_);   // worker thread only
//   };
//
//   class KvStore {
//     ...
//     mutable common::Mutex mu_;
//     std::map<std::string, KeyValue> data_ GUARDED_BY(mu_);
//     Revision apply_put_locked(...) REQUIRES(mu_);
//   };
//
// Under Clang, `-Wthread-safety -Werror` (enabled automatically by the
// top-level CMakeLists) turns a violated contract — a GUARDED_BY field
// touched without the lock, a REQUIRES function called lock-free, a
// scope that leaks a lock — into a compile error; the negative-compile
// suite (tests/negative_compile/) pins that behavior. Under GCC the
// attributes expand to nothing and the wrappers compile to the plain
// std primitives, so the contract costs nothing where it cannot be
// checked statically.
//
// The wrappers also carry a cheap runtime shadow of the contract
// (relaxed-atomic owner tracking) so the same violations die loudly at
// run time under every compiler: Mutex::AssertHeld() aborts when the
// calling thread does not hold the lock, and a bound ExecutorAffinity
// aborts when touched from a foreign thread (common_test death-tests
// both).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/log.h"

// ---------------------------------------------------------------------------
// Annotation macros (the standard Clang TSA vocabulary). No-ops unless
// the compiler implements the attributes.
// ---------------------------------------------------------------------------
#if defined(__clang__) && !defined(SWIG)
#define GFAAS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GFAAS_THREAD_ANNOTATION(x)  // no-op
#endif

// Marks a class as a lockable capability ("mutex", "executor", ...).
#define CAPABILITY(x) GFAAS_THREAD_ANNOTATION(capability(x))

// Marks an RAII class that acquires a capability at construction and
// releases it at destruction.
#define SCOPED_CAPABILITY GFAAS_THREAD_ANNOTATION(scoped_lockable)

// Field/variable may only be touched while holding the capability.
#define GUARDED_BY(x) GFAAS_THREAD_ANNOTATION(guarded_by(x))

// Pointer field: the *pointee* may only be touched while holding it.
#define PT_GUARDED_BY(x) GFAAS_THREAD_ANNOTATION(pt_guarded_by(x))

// Function requires the capability (exclusively / shared) on entry.
#define REQUIRES(...) \
  GFAAS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  GFAAS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// Function acquires / releases the capability.
#define ACQUIRE(...) GFAAS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  GFAAS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) GFAAS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  GFAAS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

// Function acquires the capability iff it returns `b`.
#define TRY_ACQUIRE(b, ...) \
  GFAAS_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

// Function must NOT be called while holding the capability (deadlock
// guard for non-reentrant locks).
#define EXCLUDES(...) GFAAS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Tells the analysis the capability is held here (checked dynamically).
#define ASSERT_CAPABILITY(x) GFAAS_THREAD_ANNOTATION(assert_capability(x))

// Function returns a reference to the capability guarding its result.
#define RETURN_CAPABILITY(x) GFAAS_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch: disables the analysis for one function. Use only where
// the contract is real but inexpressible (document why at each site).
#define NO_THREAD_SAFETY_ANALYSIS \
  GFAAS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace gfaas::common {

// ---------------------------------------------------------------------------
// Annotated std::mutex. lock()/unlock() carry the capability transfer
// for the analysis and maintain the runtime owner shadow (two relaxed
// stores per cycle — noise next to the lock itself, so the shadow stays
// on in every build type and AssertHeld() death-tests work everywhere).
// ---------------------------------------------------------------------------
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
    mu_.lock();
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  }

  void unlock() RELEASE() {
    owner_.store(std::thread::id{}, std::memory_order_relaxed);
    mu_.unlock();
  }

  bool try_lock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
    return true;
  }

  // Dies unless the calling thread holds the lock. Statically, tells the
  // analysis the capability is held from here on (the runtime check is
  // what makes that assumption safe to state).
  void AssertHeld() const ASSERT_CAPABILITY(this) {
    GFAAS_CHECK(held_by_current_thread())
        << "common::Mutex contract violated: calling thread does not hold "
           "the lock";
  }

  bool held_by_current_thread() const {
    return owner_.load(std::memory_order_relaxed) == std::this_thread::get_id();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
  std::atomic<std::thread::id> owner_{};
};

// ---------------------------------------------------------------------------
// Scoped lock for Mutex, with mid-scope Unlock()/Lock() for the
// hold-release-around-callback pattern (RealTimeExecutor::worker_loop).
// ---------------------------------------------------------------------------
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->lock(); }

  ~MutexLock() RELEASE() {
    if (held_) mu_->unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Temporarily release / reacquire within the scope.
  void Unlock() RELEASE() {
    GFAAS_CHECK(held_);
    held_ = false;
    mu_->unlock();
  }
  void Lock() ACQUIRE() {
    GFAAS_CHECK(!held_);
    mu_->lock();
    held_ = true;
  }

 private:
  friend class CondVar;
  Mutex* mu_;
  bool held_ = true;
};

// ---------------------------------------------------------------------------
// Condition variable over common::Mutex. wait() atomically releases and
// reacquires the lock internally; from the analysis' point of view the
// capability stays held across the call (matching std semantics: the
// predicate re-check after wakeup runs under the lock). The owner shadow
// is cleared for the blocked stretch and restored on wakeup.
// ---------------------------------------------------------------------------
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) {
    GFAAS_CHECK(lock.held_);
    Mutex* mu = lock.mu_;
    mu->owner_.store(std::thread::id{}, std::memory_order_relaxed);
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
    mu->owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  }

  // Returns false on timeout (like std::cv_status::timeout).
  bool wait_until(MutexLock& lock,
                  std::chrono::steady_clock::time_point deadline) {
    GFAAS_CHECK(lock.held_);
    Mutex* mu = lock.mu_;
    mu->owner_.store(std::thread::id{}, std::memory_order_relaxed);
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    mu->owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
    return status == std::cv_status::no_timeout;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// ---------------------------------------------------------------------------
// Thread-affinity capability for the single-threaded-by-contract
// structures (Gateway, SchedulerEngine, Autoscaler, ChaosInjector, the
// MPSC consumer side): state that is not mutex-protected because every
// touch happens on the executor's worker thread. Annotating that state
// GUARDED_BY(serial_) and asserting the capability at each entry point
// gives the same static discipline a mutex gets — a new code path that
// reaches the state without going through an asserted entry point fails
// to compile under Clang.
//
// Runtime shadow, opt-in: bind_current_thread() pins the capability to
// the calling thread and every later AssertHeld() dies on a foreign
// thread. Unbound (the default — simulation mode runs everything on one
// thread and needs no pin), AssertHeld() is statically meaningful but
// dynamically free.
// ---------------------------------------------------------------------------
class CAPABILITY("executor") ExecutorAffinity {
 public:
  ExecutorAffinity() = default;
  ExecutorAffinity(const ExecutorAffinity&) = delete;
  ExecutorAffinity& operator=(const ExecutorAffinity&) = delete;

  // Pins the capability to the calling thread (call once, from the
  // owning worker). Re-binding is allowed only from the bound thread.
  void bind_current_thread() {
    const std::thread::id self = std::this_thread::get_id();
    const std::thread::id prev = bound_.exchange(self, std::memory_order_relaxed);
    GFAAS_CHECK(prev == std::thread::id{} || prev == self)
        << "ExecutorAffinity re-bound from a foreign thread";
  }

  void AssertHeld() const ASSERT_CAPABILITY(this) {
    const std::thread::id bound = bound_.load(std::memory_order_relaxed);
    GFAAS_CHECK(bound == std::thread::id{} ||
                bound == std::this_thread::get_id())
        << "ExecutorAffinity contract violated: touched from a thread other "
           "than the bound worker";
  }

  bool bound() const {
    return bound_.load(std::memory_order_relaxed) != std::thread::id{};
  }

 private:
  std::atomic<std::thread::id> bound_{};
};

}  // namespace gfaas::common
