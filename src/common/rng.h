// Deterministic random number generation.
//
// Experiments must be exactly reproducible from a (seed, config) pair, so
// gFaaS never touches std::random_device or platform RNGs. SplitMix64 is
// used for seeding; Xoshiro256** is the workhorse generator. Both match
// the published reference outputs (tested).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace gfaas {

// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// Xoshiro256**: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  // Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform in [0, 1).
  double uniform();

  // Uniform in [lo, hi).
  double uniform(double lo, double hi);

  // Standard normal via Marsaglia polar method.
  double normal(double mean = 0.0, double stddev = 1.0);

  // Exponential with the given rate (mean = 1/rate).
  double exponential(double rate);

  // Draws an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = next_below(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  // Forks an independent stream (for per-component RNGs).
  Rng fork();

 private:
  std::array<std::uint64_t, 4> s_;
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

// Zipf(s, n) sampler over ranks {0, .., n-1}: P(k) ∝ 1/(k+1)^s.
// Used by the Azure trace synthesizer to produce skewed popularity.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double s);

  std::size_t sample(Rng& rng) const;

  // Probability mass of rank k.
  double pmf(std::size_t k) const { return weights_[k] / total_; }

 private:
  std::vector<double> weights_;  // cumulative
  double total_;
};

}  // namespace gfaas
