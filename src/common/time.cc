#include "common/time.h"

#include <cmath>
#include <cstdio>

namespace gfaas {

std::string format_sim_time(SimTime t) {
  char buf[64];
  const double abs_t = std::abs(static_cast<double>(t));
  if (abs_t >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(t) / 1e6);
  } else if (abs_t >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(t) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(t));
  }
  return buf;
}

}  // namespace gfaas
