// Lightweight Status / StatusOr error handling (C++20 has no std::expected).
//
// Functions that can fail at runtime for reasons the caller should handle
// (missing key, GPU out of memory, unknown model, ...) return `Status` or
// `StatusOr<T>`. Exceptions are reserved for programmer errors (violated
// preconditions) via GFAAS_CHECK in log.h.
#pragma once

#include <optional>
#include <string>
#include <utility>

namespace gfaas {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kFailedPrecondition,
  kResourceExhausted,
  kUnavailable,
  kInternal,
};

const char* status_code_name(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
  static Status AlreadyExists(std::string m) {
    return {StatusCode::kAlreadyExists, std::move(m)};
  }
  static Status InvalidArgument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status FailedPrecondition(std::string m) {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }
  static Status ResourceExhausted(std::string m) {
    return {StatusCode::kResourceExhausted, std::move(m)};
  }
  static Status Unavailable(std::string m) {
    return {StatusCode::kUnavailable, std::move(m)};
  }
  static Status Internal(std::string m) { return {StatusCode::kInternal, std::move(m)}; }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "NOT_FOUND: no such key".
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Value-or-error wrapper. Construction from T is implicit so `return value;`
// works; access to a missing value is a checked failure.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace gfaas
