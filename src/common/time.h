// Simulated-time primitives.
//
// All of gFaaS measures time in integer microseconds (`SimTime`) so that
// discrete-event experiments are deterministic across platforms: there is
// no floating-point accumulation anywhere on the simulation clock. Helper
// factories (`usec`, `msec`, `sec`) and converters keep call sites
// readable.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace gfaas {

// A point or span of simulated time, in microseconds.
using SimTime = std::int64_t;

inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

constexpr SimTime usec(std::int64_t n) { return n; }
constexpr SimTime msec(std::int64_t n) { return n * 1'000; }
constexpr SimTime sec(std::int64_t n) { return n * 1'000'000; }
constexpr SimTime minutes(std::int64_t n) { return n * 60'000'000; }

// Converts a fractional second count to SimTime, rounding to nearest µs.
// Used when ingesting profiled latencies expressed in seconds (Table I).
constexpr SimTime seconds_to_sim(double s) {
  return static_cast<SimTime>(s * 1e6 + (s >= 0 ? 0.5 : -0.5));
}

constexpr double sim_to_seconds(SimTime t) { return static_cast<double>(t) / 1e6; }
constexpr double sim_to_millis(SimTime t) { return static_cast<double>(t) / 1e3; }

// Renders a SimTime as a human-readable string, e.g. "1.254s" or "83ms".
std::string format_sim_time(SimTime t);

}  // namespace gfaas
