#include "common/log.h"

#include <atomic>

namespace gfaas {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarn: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "?";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

namespace internal {

void log_message(LogLevel level, const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "[%s %s:%d] %s\n", level_tag(level), file, line, msg.c_str());
}

void check_failed(const char* expr, const char* file, int line, const std::string& msg) {
  std::fprintf(stderr, "[FATAL %s:%d] check failed: %s %s\n", file, line, expr,
               msg.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace gfaas
