#include "common/bytes.h"

#include <cstdio>

namespace gfaas {

std::string format_bytes(Bytes b) {
  char buf[64];
  const double v = static_cast<double>(b);
  if (b >= GiB(1)) {
    std::snprintf(buf, sizeof(buf), "%.2fGiB", v / static_cast<double>(GiB(1)));
  } else if (b >= MiB(1)) {
    std::snprintf(buf, sizeof(buf), "%.2fMiB", v / static_cast<double>(MiB(1)));
  } else if (b >= KiB(1)) {
    std::snprintf(buf, sizeof(buf), "%.2fKiB", v / static_cast<double>(KiB(1)));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldB", static_cast<long long>(b));
  }
  return buf;
}

}  // namespace gfaas
