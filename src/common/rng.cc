#include "common/rng.h"

#include <cmath>

#include "common/log.h"

namespace gfaas {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  GFAAS_CHECK(bound > 0) << "next_below(0)";
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  GFAAS_CHECK(lo <= hi) << "uniform_int bounds inverted";
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return mean + stddev * u * factor;
}

double Rng::exponential(double rate) {
  GFAAS_CHECK(rate > 0) << "exponential rate must be positive";
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return -std::log(u) / rate;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  GFAAS_CHECK(!weights.empty());
  double total = 0;
  for (double w : weights) total += w;
  GFAAS_CHECK(total > 0) << "weighted_index requires positive total weight";
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() { return Rng(next()); }

ZipfDistribution::ZipfDistribution(std::size_t n, double s) : total_(0) {
  GFAAS_CHECK(n > 0);
  weights_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    weights_[k] = 1.0 / std::pow(static_cast<double>(k + 1), s);
    total_ += weights_[k];
  }
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
  double r = rng.uniform() * total_;
  for (std::size_t k = 0; k < weights_.size(); ++k) {
    r -= weights_[k];
    if (r < 0) return k;
  }
  return weights_.size() - 1;
}

}  // namespace gfaas
