// Minimal leveled logger + checked assertions.
//
// GFAAS_CHECK aborts with a message on violated invariants — these are
// programmer errors, never workload-dependent conditions. Log level is a
// process-global; experiments default to kWarn so benches stay quiet.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace gfaas {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

namespace internal {
void log_message(LogLevel level, const char* file, int line, const std::string& msg);

class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { log_message(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);

class CheckStream {
 public:
  CheckStream(const char* expr, const char* file, int line)
      : expr_(expr), file_(file), line_(line) {}
  [[noreturn]] ~CheckStream() { check_failed(expr_, file_, line_, stream_.str()); }

  template <typename T>
  CheckStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  const char* expr_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace gfaas

#define GFAAS_LOG(level)                                                  \
  if (::gfaas::log_level() <= ::gfaas::LogLevel::level)                   \
  ::gfaas::internal::LogStream(::gfaas::LogLevel::level, __FILE__, __LINE__)

#define GFAAS_CHECK(cond)                                                  \
  if (cond) {                                                              \
  } else                                                                   \
    ::gfaas::internal::CheckStream(#cond, __FILE__, __LINE__)
