// Strongly-typed integer identifiers.
//
// GpuId, NodeId, ModelId, RequestId etc. are distinct types so the compiler
// rejects e.g. passing a model id where a GPU id is expected — cheap
// insurance in a codebase that juggles four id spaces in every scheduler
// decision.
#pragma once

#include <cstdint>
#include <functional>

namespace gfaas {

template <typename Tag>
class TypedId {
 public:
  constexpr TypedId() : value_(-1) {}
  constexpr explicit TypedId(std::int64_t value) : value_(value) {}

  constexpr std::int64_t value() const { return value_; }
  constexpr bool valid() const { return value_ >= 0; }

  friend constexpr bool operator==(TypedId a, TypedId b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(TypedId a, TypedId b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(TypedId a, TypedId b) { return a.value_ < b.value_; }

 private:
  std::int64_t value_;
};

struct GpuIdTag {};
struct NodeIdTag {};
struct ModelIdTag {};
struct RequestIdTag {};
struct FunctionIdTag {};
struct ProcessIdTag {};

using GpuId = TypedId<GpuIdTag>;
using NodeId = TypedId<NodeIdTag>;
using ModelId = TypedId<ModelIdTag>;
using RequestId = TypedId<RequestIdTag>;
using FunctionId = TypedId<FunctionIdTag>;
using ProcessId = TypedId<ProcessIdTag>;

}  // namespace gfaas

namespace std {
template <typename Tag>
struct hash<gfaas::TypedId<Tag>> {
  size_t operator()(gfaas::TypedId<Tag> id) const noexcept {
    return std::hash<std::int64_t>{}(id.value());
  }
};
}  // namespace std
