// Pluggable cache replacement policies.
//
// The paper's Cache Manager "largely follows the LRU replacement policy"
// (§III-D) and notes in §VI that the design supports other policies by
// swapping the sorted list. This interface is that swap point: a policy
// maintains the eviction ordering for the models resident on ONE GPU.
// LRU is the default everywhere; LFU/FIFO/MRU exist for the replacement-
// policy ablation bench.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/id.h"

namespace gfaas::cache {

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  virtual void on_insert(ModelId model) = 0;
  virtual void on_access(ModelId model) = 0;
  virtual void on_remove(ModelId model) = 0;

  // Models in eviction order: front = evict first.
  virtual std::vector<ModelId> eviction_order() const = 0;

  virtual std::string name() const = 0;
  virtual std::size_t size() const = 0;
};

enum class PolicyKind { kLru, kMru, kFifo, kLfu };

std::string policy_kind_name(PolicyKind kind);
std::unique_ptr<EvictionPolicy> make_policy(PolicyKind kind);

// Least Recently Used: on_access moves to the MRU end.
class LruPolicy final : public EvictionPolicy {
 public:
  void on_insert(ModelId model) override;
  void on_access(ModelId model) override;
  void on_remove(ModelId model) override;
  std::vector<ModelId> eviction_order() const override { return order_; }
  std::string name() const override { return "lru"; }
  std::size_t size() const override { return order_.size(); }

 private:
  std::vector<ModelId> order_;  // front = LRU; N per GPU is small (< 8)
};

// Most Recently Used (pathological for this workload; ablation only).
class MruPolicy final : public EvictionPolicy {
 public:
  void on_insert(ModelId model) override;
  void on_access(ModelId model) override;
  void on_remove(ModelId model) override;
  std::vector<ModelId> eviction_order() const override;
  std::string name() const override { return "mru"; }
  std::size_t size() const override { return order_.size(); }

 private:
  std::vector<ModelId> order_;  // front = LRU end
};

// First-In First-Out: access order is ignored.
class FifoPolicy final : public EvictionPolicy {
 public:
  void on_insert(ModelId model) override;
  void on_access(ModelId /*model*/) override {}
  void on_remove(ModelId model) override;
  std::vector<ModelId> eviction_order() const override { return order_; }
  std::string name() const override { return "fifo"; }
  std::size_t size() const override { return order_.size(); }

 private:
  std::vector<ModelId> order_;  // front = oldest
};

// Least Frequently Used with insertion-order tie-break.
class LfuPolicy final : public EvictionPolicy {
 public:
  void on_insert(ModelId model) override;
  void on_access(ModelId model) override;
  void on_remove(ModelId model) override;
  std::vector<ModelId> eviction_order() const override;
  std::string name() const override { return "lfu"; }
  std::size_t size() const override { return entries_.size(); }

 private:
  struct Entry {
    ModelId model;
    std::int64_t count;
    std::int64_t insert_seq;
  };
  std::vector<Entry> entries_;
  std::int64_t next_seq_ = 0;
};

}  // namespace gfaas::cache
