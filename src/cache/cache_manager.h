// Global Cache Manager (paper §III-D).
//
// Treats the models uploaded to each GPU's memory as cache items. Each
// GPU's memory is managed with a separate replacement list (scalability
// note in §VI); a global model -> GPUs index answers the Scheduler's
// "where is this model cached" query in O(#locations) (also §VI). On a
// miss the manager plans the victim list — enough models, in policy
// order, to make room for the incoming one — and the GPU Manager kills
// those processes. Models currently running a request are pinned and
// skipped by eviction planning.
//
// State is mirrored into the Datastore (gpu/<id>/lru and
// model/<id>/locations) after every mutation, exactly the channel the
// paper routes through etcd.
#pragma once

#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "cache/policy.h"
#include "common/bytes.h"
#include "common/id.h"
#include "common/status.h"
#include "datastore/kv_store.h"

namespace gfaas::cache {

struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;

  double miss_ratio() const {
    const std::int64_t total = hits + misses;
    return total > 0 ? static_cast<double>(misses) / static_cast<double>(total) : 0.0;
  }
};

// Cache bookkeeping for one GPU.
class GpuCacheState {
 public:
  GpuCacheState(GpuId gpu, Bytes capacity, PolicyKind policy);

  GpuId gpu() const { return gpu_; }
  Bytes capacity() const { return capacity_; }
  Bytes used() const { return used_; }
  Bytes free() const { return capacity_ - used_; }

  bool contains(ModelId model) const;
  std::size_t model_count() const { return sizes_.size(); }
  // Replacement order, evict-first first.
  std::vector<ModelId> eviction_order() const { return policy_->eviction_order(); }

  Status insert(ModelId model, Bytes size);
  Status touch(ModelId model);
  Status remove(ModelId model);

  void pin(ModelId model);
  void unpin(ModelId model);
  bool pinned(ModelId model) const;
  bool any_pinned() const { return !pin_counts_.empty(); }

  // Resident models in ascending id order (drain/fence enumeration).
  std::vector<ModelId> models() const;

  // Victims (in policy order, skipping pinned models) whose removal frees
  // at least `needed` bytes beyond current free space. Fails if even
  // evicting everything unpinned would not fit.
  StatusOr<std::vector<ModelId>> plan_eviction(Bytes needed) const;

  Bytes size_of(ModelId model) const;

 private:
  GpuId gpu_;
  Bytes capacity_;
  Bytes used_ = 0;
  std::unique_ptr<EvictionPolicy> policy_;
  std::unordered_map<std::int64_t, Bytes> sizes_;      // model id -> bytes
  std::unordered_map<std::int64_t, int> pin_counts_;   // model id -> pins
};

class CacheManager {
 public:
  // `store` receives LRU-list / location mirrors; may be null in unit
  // tests that exercise the manager standalone.
  CacheManager(PolicyKind policy, datastore::KvStore* store = nullptr);

  // Registers a GPU's memory as a managed cache (called at cluster build,
  // or by the autoscaler when a cold-started GPU joins the fleet).
  void add_gpu(GpuId gpu, Bytes capacity);
  std::size_t gpu_count() const;

  // --- dynamic membership (elastic fleets, src/autoscale) ---
  // Fences a draining GPU: its entries leave the model -> GPUs location
  // index (so the Scheduler stops routing toward its cached models), while
  // the per-GPU state stays live for the in-flight request's pin/unpin and
  // hit bookkeeping. locations()/cached_anywhere()/duplicate_count() never
  // report fenced holders.
  void fence_gpu(GpuId gpu);
  // Reverses fence_gpu (aborted scale-down): entries rejoin the index.
  void unfence_gpu(GpuId gpu);
  // Retires a fenced GPU, evicting all resident models. No model may be
  // pinned (i.e. the GPU must have drained its in-flight work first).
  void remove_gpu(GpuId gpu);
  bool is_fenced(GpuId gpu) const { return fenced_.count(gpu.value()) > 0; }
  bool is_registered(GpuId gpu) const {
    const auto index = static_cast<std::size_t>(gpu.value());
    return gpu.valid() && index < gpus_.size() && gpus_[index] != nullptr;
  }

  // --- queries used by the Scheduler ---
  bool is_cached(GpuId gpu, ModelId model) const;
  // All GPUs that currently hold the model, ascending id. Served by the
  // global model -> GPUs index (§VI): O(#locations), never a GPU scan.
  std::vector<GpuId> locations(ModelId model) const;
  // Whether the model is cached on ANY gpu (false-miss accounting). O(1).
  bool cached_anywhere(ModelId model) const {
    return locations_.count(model.value()) > 0;
  }

  // --- mutations driven by the GPU Manager ---
  // Records a hit: refreshes the replacement order. Fails if not cached.
  Status record_access(GpuId gpu, ModelId model);
  // Plans the victims needed to fit `size` on the GPU (may be empty).
  StatusOr<std::vector<ModelId>> plan_eviction(GpuId gpu, Bytes size) const;
  // Applies an eviction decided by plan_eviction.
  Status record_eviction(GpuId gpu, ModelId model);
  // Records a newly uploaded model.
  Status record_insertion(GpuId gpu, ModelId model, Bytes size);

  // Pins while a request is using the model (in queue or running) so the
  // model under execution can never be chosen as a victim.
  Status pin(GpuId gpu, ModelId model);
  Status unpin(GpuId gpu, ModelId model);

  const GpuCacheState& state(GpuId gpu) const;
  CacheStats& stats() { return stats_; }
  const CacheStats& stats() const { return stats_; }

  // Number of GPUs holding each model, for the duplicate-count metric
  // (Fig. 6 tracks the most popular model's duplicates). O(1) index read.
  std::size_t duplicate_count(ModelId model) const {
    auto it = locations_.find(model.value());
    return it == locations_.end() ? 0 : it->second.size();
  }

 private:
  GpuCacheState& mutable_state(GpuId gpu);
  // Checked locations_ maintenance (insert/erase + datastore mirror); every
  // index mutation funnels through these two.
  void index_location(GpuId gpu, ModelId model);
  void deindex_location(GpuId gpu, ModelId model);
  void mirror_to_store(GpuId gpu);
  void mirror_locations(ModelId model);

  PolicyKind policy_;
  datastore::KvStore* store_;
  // Indexed by GpuId value; removed GPUs leave a null slot (ids are never
  // reused, matching ClusterStateIndex).
  std::vector<std::unique_ptr<GpuCacheState>> gpus_;
  // GPUs currently fenced for drain: excluded from locations_.
  std::set<std::int64_t> fenced_;
  // Global model -> holder-GPU index, maintained on insertion/eviction.
  // Ordered by GPU id so enumerations (and the datastore mirror) match
  // the ascending-id order a full GPU scan would produce. A model with no
  // holders has no entry, making cached_anywhere() a pure lookup.
  std::unordered_map<std::int64_t, std::set<std::int64_t>> locations_;
  CacheStats stats_;
};

}  // namespace gfaas::cache
