#include "cache/cache_manager.h"

#include <algorithm>

#include "common/log.h"
#include "datastore/keys.h"

namespace gfaas::cache {

GpuCacheState::GpuCacheState(GpuId gpu, Bytes capacity, PolicyKind policy)
    : gpu_(gpu), capacity_(capacity), policy_(make_policy(policy)) {
  GFAAS_CHECK(capacity > 0);
}

bool GpuCacheState::contains(ModelId model) const {
  return sizes_.count(model.value()) > 0;
}

Status GpuCacheState::insert(ModelId model, Bytes size) {
  if (contains(model)) {
    return Status::AlreadyExists("model " + std::to_string(model.value()) +
                                 " already cached on gpu " +
                                 std::to_string(gpu_.value()));
  }
  if (size <= 0) return Status::InvalidArgument("model size must be positive");
  if (size > free()) {
    return Status::ResourceExhausted(
        "model " + std::to_string(model.value()) + " (" + format_bytes(size) +
        ") exceeds free space " + format_bytes(free()));
  }
  sizes_[model.value()] = size;
  used_ += size;
  policy_->on_insert(model);
  return Status::Ok();
}

Status GpuCacheState::touch(ModelId model) {
  if (!contains(model)) {
    return Status::NotFound("model " + std::to_string(model.value()) + " not cached");
  }
  policy_->on_access(model);
  return Status::Ok();
}

Status GpuCacheState::remove(ModelId model) {
  auto it = sizes_.find(model.value());
  if (it == sizes_.end()) {
    return Status::NotFound("model " + std::to_string(model.value()) + " not cached");
  }
  if (pinned(model)) {
    return Status::FailedPrecondition("model " + std::to_string(model.value()) +
                                      " is pinned");
  }
  used_ -= it->second;
  sizes_.erase(it);
  policy_->on_remove(model);
  return Status::Ok();
}

void GpuCacheState::pin(ModelId model) { ++pin_counts_[model.value()]; }

void GpuCacheState::unpin(ModelId model) {
  auto it = pin_counts_.find(model.value());
  GFAAS_CHECK(it != pin_counts_.end() && it->second > 0)
      << "unpin without pin for model " << model.value();
  if (--it->second == 0) pin_counts_.erase(it);
}

bool GpuCacheState::pinned(ModelId model) const {
  auto it = pin_counts_.find(model.value());
  return it != pin_counts_.end() && it->second > 0;
}

StatusOr<std::vector<ModelId>> GpuCacheState::plan_eviction(Bytes needed) const {
  if (needed <= free()) return std::vector<ModelId>{};
  Bytes reclaimable = free();
  std::vector<ModelId> victims;
  for (ModelId victim : policy_->eviction_order()) {
    if (pinned(victim)) continue;
    victims.push_back(victim);
    reclaimable += size_of(victim);
    if (reclaimable >= needed) return victims;
  }
  return Status::ResourceExhausted(
      "cannot free " + format_bytes(needed) + " on gpu " + std::to_string(gpu_.value()) +
      " (only " + format_bytes(reclaimable) + " reclaimable)");
}

Bytes GpuCacheState::size_of(ModelId model) const {
  auto it = sizes_.find(model.value());
  return it == sizes_.end() ? 0 : it->second;
}

std::vector<ModelId> GpuCacheState::models() const {
  std::vector<ModelId> out;
  out.reserve(sizes_.size());
  for (const auto& [id, size] : sizes_) out.push_back(ModelId(id));
  std::sort(out.begin(), out.end());
  return out;
}

CacheManager::CacheManager(PolicyKind policy, datastore::KvStore* store)
    : policy_(policy), store_(store) {}

void CacheManager::add_gpu(GpuId gpu, Bytes capacity) {
  GFAAS_CHECK(gpu.valid());
  const auto index = static_cast<std::size_t>(gpu.value());
  if (gpus_.size() <= index) gpus_.resize(index + 1);
  GFAAS_CHECK(gpus_[index] == nullptr) << "gpu " << gpu.value() << " already added";
  gpus_[index] = std::make_unique<GpuCacheState>(gpu, capacity, policy_);
}

std::size_t CacheManager::gpu_count() const {
  std::size_t count = 0;
  for (const auto& state : gpus_) {
    if (state != nullptr) ++count;
  }
  return count;
}

void CacheManager::index_location(GpuId gpu, ModelId model) {
  GFAAS_CHECK(locations_[model.value()].insert(gpu.value()).second)
      << "location index out of sync for model " << model.value();
  mirror_locations(model);
}

void CacheManager::deindex_location(GpuId gpu, ModelId model) {
  auto it = locations_.find(model.value());
  GFAAS_CHECK(it != locations_.end() && it->second.erase(gpu.value()) == 1)
      << "location index out of sync for model " << model.value();
  if (it->second.empty()) locations_.erase(it);
  mirror_locations(model);
}

void CacheManager::fence_gpu(GpuId gpu) {
  GFAAS_CHECK(fenced_.insert(gpu.value()).second)
      << "gpu " << gpu.value() << " already fenced";
  for (ModelId model : state(gpu).models()) deindex_location(gpu, model);
}

void CacheManager::unfence_gpu(GpuId gpu) {
  GFAAS_CHECK(fenced_.erase(gpu.value()) == 1)
      << "gpu " << gpu.value() << " is not fenced";
  for (ModelId model : state(gpu).models()) index_location(gpu, model);
}

void CacheManager::remove_gpu(GpuId gpu) {
  GFAAS_CHECK(is_fenced(gpu)) << "gpu " << gpu.value() << " must be fenced first";
  GpuCacheState& st = mutable_state(gpu);
  GFAAS_CHECK(!st.any_pinned()) << "gpu " << gpu.value() << " removed with pinned model";
  // Resident models are already absent from locations_ (fenced); drop the
  // per-GPU state wholesale. These are decommission drops, not cache
  // pressure, so stats().evictions is not touched.
  for (ModelId model : st.models()) GFAAS_CHECK(st.remove(model).ok());
  fenced_.erase(gpu.value());
  gpus_[static_cast<std::size_t>(gpu.value())] = nullptr;
  if (store_ != nullptr) {
    store_->put(datastore::keys::gpu_lru(gpu), "");
  }
}

const GpuCacheState& CacheManager::state(GpuId gpu) const {
  const auto index = static_cast<std::size_t>(gpu.value());
  GFAAS_CHECK(index < gpus_.size() && gpus_[index] != nullptr)
      << "unknown gpu " << gpu.value();
  return *gpus_[index];
}

GpuCacheState& CacheManager::mutable_state(GpuId gpu) {
  return const_cast<GpuCacheState&>(state(gpu));
}

bool CacheManager::is_cached(GpuId gpu, ModelId model) const {
  return state(gpu).contains(model);
}

std::vector<GpuId> CacheManager::locations(ModelId model) const {
  std::vector<GpuId> out;
  auto it = locations_.find(model.value());
  if (it == locations_.end()) return out;
  out.reserve(it->second.size());
  for (std::int64_t gpu : it->second) out.push_back(GpuId(gpu));
  return out;
}

Status CacheManager::record_access(GpuId gpu, ModelId model) {
  Status s = mutable_state(gpu).touch(model);
  if (!s.ok()) return s;
  ++stats_.hits;
  mirror_to_store(gpu);
  return Status::Ok();
}

StatusOr<std::vector<ModelId>> CacheManager::plan_eviction(GpuId gpu, Bytes size) const {
  return state(gpu).plan_eviction(size);
}

Status CacheManager::record_eviction(GpuId gpu, ModelId model) {
  Status s = mutable_state(gpu).remove(model);
  if (!s.ok()) return s;
  ++stats_.evictions;
  mirror_to_store(gpu);
  // A fenced GPU's entries were already pulled from the location index.
  if (!is_fenced(gpu)) deindex_location(gpu, model);
  return Status::Ok();
}

Status CacheManager::record_insertion(GpuId gpu, ModelId model, Bytes size) {
  GFAAS_CHECK(!is_fenced(gpu))
      << "insertion on fenced gpu " << gpu.value() << " (drain dispatched new work?)";
  Status s = mutable_state(gpu).insert(model, size);
  if (!s.ok()) return s;
  ++stats_.misses;
  mirror_to_store(gpu);
  index_location(gpu, model);
  return Status::Ok();
}

Status CacheManager::pin(GpuId gpu, ModelId model) {
  GpuCacheState& st = mutable_state(gpu);
  if (!st.contains(model)) {
    return Status::NotFound("cannot pin uncached model " + std::to_string(model.value()));
  }
  st.pin(model);
  return Status::Ok();
}

Status CacheManager::unpin(GpuId gpu, ModelId model) {
  GpuCacheState& st = mutable_state(gpu);
  if (!st.contains(model)) {
    return Status::NotFound("cannot unpin uncached model " +
                            std::to_string(model.value()));
  }
  st.unpin(model);
  return Status::Ok();
}

void CacheManager::mirror_to_store(GpuId gpu) {
  if (store_ == nullptr) return;
  std::vector<std::int64_t> ids;
  for (ModelId m : state(gpu).eviction_order()) ids.push_back(m.value());
  store_->put(datastore::keys::gpu_lru(gpu), datastore::keys::encode_id_list(ids));
}

void CacheManager::mirror_locations(ModelId model) {
  if (store_ == nullptr) return;
  std::vector<std::int64_t> ids;
  for (GpuId g : locations(model)) ids.push_back(g.value());
  store_->put(datastore::keys::model_locations(model),
              datastore::keys::encode_id_list(ids));
}

}  // namespace gfaas::cache
