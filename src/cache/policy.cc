#include "cache/policy.h"

#include <algorithm>

#include "common/log.h"

namespace gfaas::cache {

namespace {
void erase_model(std::vector<ModelId>& order, ModelId model) {
  auto it = std::find(order.begin(), order.end(), model);
  GFAAS_CHECK(it != order.end()) << "model " << model.value() << " not tracked";
  order.erase(it);
}
}  // namespace

std::string policy_kind_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLru: return "lru";
    case PolicyKind::kMru: return "mru";
    case PolicyKind::kFifo: return "fifo";
    case PolicyKind::kLfu: return "lfu";
  }
  return "unknown";
}

std::unique_ptr<EvictionPolicy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLru: return std::make_unique<LruPolicy>();
    case PolicyKind::kMru: return std::make_unique<MruPolicy>();
    case PolicyKind::kFifo: return std::make_unique<FifoPolicy>();
    case PolicyKind::kLfu: return std::make_unique<LfuPolicy>();
  }
  GFAAS_CHECK(false) << "unknown policy kind";
  return nullptr;
}

void LruPolicy::on_insert(ModelId model) {
  GFAAS_CHECK(std::find(order_.begin(), order_.end(), model) == order_.end());
  order_.push_back(model);  // inserted = most recently used
}

void LruPolicy::on_access(ModelId model) {
  erase_model(order_, model);
  order_.push_back(model);
}

void LruPolicy::on_remove(ModelId model) { erase_model(order_, model); }

void MruPolicy::on_insert(ModelId model) {
  GFAAS_CHECK(std::find(order_.begin(), order_.end(), model) == order_.end());
  order_.push_back(model);
}

void MruPolicy::on_access(ModelId model) {
  erase_model(order_, model);
  order_.push_back(model);
}

void MruPolicy::on_remove(ModelId model) { erase_model(order_, model); }

std::vector<ModelId> MruPolicy::eviction_order() const {
  std::vector<ModelId> out(order_.rbegin(), order_.rend());
  return out;
}

void FifoPolicy::on_insert(ModelId model) {
  GFAAS_CHECK(std::find(order_.begin(), order_.end(), model) == order_.end());
  order_.push_back(model);
}

void FifoPolicy::on_remove(ModelId model) { erase_model(order_, model); }

void LfuPolicy::on_insert(ModelId model) {
  for (const auto& e : entries_) GFAAS_CHECK(e.model != model);
  entries_.push_back(Entry{model, 1, next_seq_++});
}

void LfuPolicy::on_access(ModelId model) {
  for (auto& e : entries_) {
    if (e.model == model) {
      ++e.count;
      return;
    }
  }
  GFAAS_CHECK(false) << "model " << model.value() << " not tracked";
}

void LfuPolicy::on_remove(ModelId model) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const Entry& e) { return e.model == model; });
  GFAAS_CHECK(it != entries_.end());
  entries_.erase(it);
}

std::vector<ModelId> LfuPolicy::eviction_order() const {
  std::vector<Entry> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count < b.count;
    return a.insert_seq < b.insert_seq;
  });
  std::vector<ModelId> out;
  out.reserve(sorted.size());
  for (const auto& e : sorted) out.push_back(e.model);
  return out;
}

}  // namespace gfaas::cache
