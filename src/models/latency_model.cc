#include "models/latency_model.h"

#include <cmath>

#include "common/log.h"

namespace gfaas::models {

StatusOr<LinearFit> fit_linear(const std::vector<double>& xs,
                               const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    return Status::InvalidArgument("fit_linear: size mismatch");
  }
  if (xs.size() < 2) {
    return Status::InvalidArgument("fit_linear: need at least 2 points");
  }
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0) {
    return Status::InvalidArgument("fit_linear: degenerate x values");
  }
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = ys[i] - fit.predict(xs[i]);
    ss_res += r * r;
  }
  fit.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

BatchLatencyModel::BatchLatencyModel(SimTime infer_time_b32, double alpha) {
  GFAAS_CHECK(infer_time_b32 > 0);
  GFAAS_CHECK(alpha >= 0.0 && alpha <= 1.0);
  const double t32 = static_cast<double>(infer_time_b32);
  fit_.intercept = alpha * t32;
  fit_.slope = (1.0 - alpha) * t32 / 32.0;
  fit_.r_squared = 1.0;
}

StatusOr<BatchLatencyModel> BatchLatencyModel::fit(
    const std::vector<std::int64_t>& batches, const std::vector<SimTime>& latencies) {
  std::vector<double> xs, ys;
  xs.reserve(batches.size());
  ys.reserve(latencies.size());
  for (auto b : batches) xs.push_back(static_cast<double>(b));
  for (auto t : latencies) ys.push_back(static_cast<double>(t));
  auto fit = fit_linear(xs, ys);
  if (!fit.ok()) return fit.status();
  BatchLatencyModel model;
  model.fit_ = *fit;
  return model;
}

SimTime BatchLatencyModel::predict(std::int64_t batch) const {
  GFAAS_CHECK(batch >= 1);
  const double t = fit_.predict(static_cast<double>(batch));
  return t > 0 ? static_cast<SimTime>(t + 0.5) : SimTime{1};
}

StatusOr<LoadTimeModel> LoadTimeModel::fit(const std::vector<ModelProfile>& profiles) {
  std::vector<double> xs, ys;
  for (const auto& p : profiles) {
    xs.push_back(static_cast<double>(p.occupation));
    ys.push_back(static_cast<double>(p.load_time));
  }
  auto fit = fit_linear(xs, ys);
  if (!fit.ok()) return fit.status();
  if (fit->slope <= 0) {
    return Status::InvalidArgument("load time must grow with model size");
  }
  LoadTimeModel model;
  model.fit_ = *fit;
  return model;
}

SimTime LoadTimeModel::predict(Bytes size) const {
  const double t = fit_.predict(static_cast<double>(size));
  return t > 0 ? static_cast<SimTime>(t + 0.5) : SimTime{1};
}

SimTime LoadTimeModel::base_cost() const {
  return static_cast<SimTime>(std::max(0.0, fit_.intercept) + 0.5);
}

double LoadTimeModel::bandwidth_bps() const {
  GFAAS_CHECK(fit_.slope > 0);
  // slope is µs per byte; bandwidth = 1/slope bytes per µs = 1e6/slope B/s.
  return 1e6 / fit_.slope;
}

LatencyOracle::LatencyOracle(const ModelRegistry& registry, double alpha) {
  entries_.reserve(registry.size());
  for (const auto& p : registry.all()) {
    entries_.push_back(
        Entry{p.id, p.load_time, BatchLatencyModel(p.infer_time_b32, alpha)});
  }
}

StatusOr<SimTime> LatencyOracle::load_time(ModelId model) const {
  for (const auto& e : entries_) {
    if (e.id == model) return e.load_time;
  }
  return Status::NotFound("no latency profile for model " +
                          std::to_string(model.value()));
}

StatusOr<SimTime> LatencyOracle::infer_time(ModelId model, std::int64_t batch) const {
  for (const auto& e : entries_) {
    if (e.id == model) return e.batch_model.predict(batch);
  }
  return Status::NotFound("no latency profile for model " +
                          std::to_string(model.value()));
}

}  // namespace gfaas::models
