// The paper's Table I model catalog and per-model profiles.
//
// Table I lists 22 production CNNs with (a) occupation size in GPU memory
// when inference runs at batch 32 — the size the Cache Manager uses for
// replacement decisions, (b) model loading time, and (c) inference latency
// at batch 32. The catalog below reproduces those numbers exactly; they
// parameterize the virtual GPU's load/inference timing so the scheduling
// experiments see the same cost structure the paper measured.
//
// Each profile also carries a scaled-down tensor::CnnConfig so the same
// model identity can be *really executed* on the CPU engine in real-time
// mode.
#pragma once

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/id.h"
#include "common/status.h"
#include "common/time.h"
#include "tensor/model_builder.h"

namespace gfaas::models {

struct ModelProfile {
  ModelId id;
  std::string name;
  tensor::CnnFamily family = tensor::CnnFamily::kResNet;
  // Peak occupation in GPU memory at batch 32 (Table I "Size (MB)").
  Bytes occupation = 0;
  // Model loading (host -> GPU upload + process init) time (Table I).
  SimTime load_time = 0;
  // Inference latency at batch 32 (Table I).
  SimTime infer_time_b32 = 0;
  // Scaled-down architecture for real CPU execution.
  tensor::CnnConfig runtime_config;
};

// The full Table I catalog (22 models), ids 0..21 in the paper's row order.
const std::vector<ModelProfile>& table1_catalog();

// Looks up a catalog entry by name ("resnet50", "vgg16.bn", ...).
StatusOr<ModelProfile> find_model(const std::string& name);

// Registry mapping ModelId -> profile; experiments register the subset of
// the catalog they use (e.g. the top-K working set).
class ModelRegistry {
 public:
  // Registers a profile; id must be unique.
  Status register_model(const ModelProfile& profile);

  StatusOr<ModelProfile> get(ModelId id) const;
  StatusOr<ModelProfile> get_by_name(const std::string& name) const;
  bool contains(ModelId id) const;
  std::size_t size() const { return profiles_.size(); }
  const std::vector<ModelProfile>& all() const { return profiles_; }

  // Convenience: registry preloaded with the whole Table I catalog.
  static ModelRegistry full_catalog();

 private:
  std::vector<ModelProfile> profiles_;  // indexed lookups scan; N <= 22
};

}  // namespace gfaas::models
