#include "models/profiler.h"

#include <algorithm>
#include <chrono>

#include "common/log.h"
#include "tensor/dataset.h"

namespace gfaas::models {

StatusOr<ProfileResult> Profiler::profile(const ModelProfile& profile,
                                          int repeats) const {
  if (batches_.empty() || repeats < 1) {
    return Status::InvalidArgument("profiler needs batches and repeats >= 1");
  }
  const tensor::ModulePtr net = tensor::build_cnn(profile.runtime_config);
  tensor::SyntheticImageDataset dataset(tensor::DatasetKind::kCifar10Like,
                                        /*seed=*/profile.runtime_config.seed);

  ProfileResult result;
  result.model = profile.id;
  for (std::int64_t batch : batches_) {
    tensor::Batch data = dataset.make_batch(batch);
    std::vector<SimTime> samples;
    samples.reserve(static_cast<std::size_t>(repeats));
    for (int r = 0; r < repeats; ++r) {
      const auto start = std::chrono::steady_clock::now();
      const tensor::Tensor out = net->forward(data.images);
      const auto end = std::chrono::steady_clock::now();
      GFAAS_CHECK(out.numel() > 0);
      samples.push_back(std::chrono::duration_cast<std::chrono::microseconds>(end - start)
                            .count());
    }
    std::sort(samples.begin(), samples.end());
    result.points.push_back(
        ProfilePoint{batch, samples[samples.size() / 2]});
  }

  std::vector<double> xs, ys;
  for (const auto& pt : result.points) {
    xs.push_back(static_cast<double>(pt.batch));
    ys.push_back(static_cast<double>(pt.latency));
  }
  auto fit = fit_linear(xs, ys);
  if (!fit.ok()) return fit.status();
  result.fit = *fit;
  return result;
}

}  // namespace gfaas::models
