#include "models/zoo.h"

#include <algorithm>

#include "common/log.h"

namespace gfaas::models {

namespace {

using tensor::CnnFamily;

struct Row {
  const char* name;
  CnnFamily family;
  std::int64_t size_mb;
  double load_s;
  double infer_s;
  std::int64_t depth;  // runtime (scaled-down) depth knob
  std::int64_t width;  // runtime width knob
};

// Table I of the paper, in row order. depth/width describe the scaled-down
// runtime topology only; sizes and latencies are the paper's numbers.
constexpr Row kTable1[] = {
    {"squeezenet1.1", CnnFamily::kSqueezeNet, 1269, 2.41, 1.28, 2, 6},
    {"resnet18", CnnFamily::kResNet, 1313, 2.52, 1.25, 2, 8},
    {"resnet34", CnnFamily::kResNet, 1357, 2.60, 1.25, 3, 8},
    {"squeezenet1.0", CnnFamily::kSqueezeNet, 1435, 2.32, 1.33, 3, 6},
    {"alexnet", CnnFamily::kAlexNet, 1437, 2.81, 1.25, 2, 8},
    {"resnext50.32x4d", CnnFamily::kResNeXt, 1555, 2.64, 1.29, 2, 8},
    {"densenet121", CnnFamily::kDenseNet, 1601, 2.49, 1.28, 2, 6},
    {"densenet169", CnnFamily::kDenseNet, 1631, 2.56, 1.30, 3, 6},
    {"densenet201", CnnFamily::kDenseNet, 1665, 2.67, 1.40, 4, 6},
    {"resnet50", CnnFamily::kResNet, 1701, 2.67, 1.28, 3, 10},
    {"resnet101", CnnFamily::kResNet, 1757, 2.95, 1.30, 4, 10},
    {"resnet152", CnnFamily::kResNet, 1827, 3.10, 1.31, 5, 10},
    {"densenet161", CnnFamily::kDenseNet, 1919, 2.75, 1.32, 3, 8},
    {"inception.v3", CnnFamily::kInception, 2157, 4.42, 1.63, 2, 6},
    {"resnext101.32x8d", CnnFamily::kResNeXt, 2191, 3.51, 1.33, 4, 10},
    {"vgg11", CnnFamily::kVgg, 2903, 3.94, 1.29, 2, 8},
    {"wideresnet502", CnnFamily::kWideResNet, 3611, 3.16, 1.31, 3, 8},
    {"wideresnet1012", CnnFamily::kWideResNet, 3831, 3.91, 1.32, 4, 8},
    {"vgg13", CnnFamily::kVgg, 3887, 3.98, 1.30, 3, 8},
    {"vgg16", CnnFamily::kVgg, 3907, 4.04, 1.27, 3, 10},
    {"vgg16.bn", CnnFamily::kVgg, 3907, 4.03, 1.26, 3, 10},
    {"vgg19", CnnFamily::kVgg, 3947, 4.07, 1.33, 4, 10},
};

std::vector<ModelProfile> build_catalog() {
  std::vector<ModelProfile> out;
  out.reserve(std::size(kTable1));
  std::int64_t id = 0;
  for (const Row& row : kTable1) {
    ModelProfile p;
    p.id = ModelId(id);
    p.name = row.name;
    p.family = row.family;
    p.occupation = MB(row.size_mb);
    p.load_time = seconds_to_sim(row.load_s);
    p.infer_time_b32 = seconds_to_sim(row.infer_s);
    p.runtime_config.family = row.family;
    p.runtime_config.depth = row.depth;
    p.runtime_config.width = row.width;
    p.runtime_config.in_channels = 3;
    p.runtime_config.num_classes = 10;
    p.runtime_config.seed = 0xC0FFEE ^ static_cast<std::uint64_t>(id);
    out.push_back(std::move(p));
    ++id;
  }
  return out;
}

}  // namespace

const std::vector<ModelProfile>& table1_catalog() {
  static const std::vector<ModelProfile> catalog = build_catalog();
  return catalog;
}

StatusOr<ModelProfile> find_model(const std::string& name) {
  for (const auto& p : table1_catalog()) {
    if (p.name == name) return p;
  }
  return Status::NotFound("no catalog model named " + name);
}

Status ModelRegistry::register_model(const ModelProfile& profile) {
  if (!profile.id.valid()) {
    return Status::InvalidArgument("model id is invalid");
  }
  if (contains(profile.id)) {
    return Status::AlreadyExists("model id " + std::to_string(profile.id.value()) +
                                 " already registered");
  }
  profiles_.push_back(profile);
  return Status::Ok();
}

StatusOr<ModelProfile> ModelRegistry::get(ModelId id) const {
  for (const auto& p : profiles_) {
    if (p.id == id) return p;
  }
  return Status::NotFound("model id " + std::to_string(id.value()) + " not registered");
}

StatusOr<ModelProfile> ModelRegistry::get_by_name(const std::string& name) const {
  for (const auto& p : profiles_) {
    if (p.name == name) return p;
  }
  return Status::NotFound("model " + name + " not registered");
}

bool ModelRegistry::contains(ModelId id) const {
  return std::any_of(profiles_.begin(), profiles_.end(),
                     [&](const ModelProfile& p) { return p.id == id; });
}

ModelRegistry ModelRegistry::full_catalog() {
  ModelRegistry registry;
  for (const auto& p : table1_catalog()) {
    GFAAS_CHECK(registry.register_model(p).ok());
  }
  return registry;
}

}  // namespace gfaas::models
