// Latency estimation for scheduling decisions.
//
// §IV-A of the paper: "The latencies of uploading the model and running
// the inference are collected by profiling each unique model ... The
// upload time depends on only the model size; the inference time depends
// on the model and the batch size which can be profiled using simple
// regression methods."
//
// This module provides (a) ordinary least-squares linear regression, (b) a
// per-model batch-size -> inference-time model anchored at the Table I
// batch-32 measurement, and (c) a size -> load-time model fitted across
// the catalog (base process-start cost + effective upload bandwidth).
#pragma once

#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "models/zoo.h"

namespace gfaas::models {

// Ordinary least squares fit of y = intercept + slope * x.
struct LinearFit {
  double intercept = 0;
  double slope = 0;
  double r_squared = 0;

  double predict(double x) const { return intercept + slope * x; }
};

StatusOr<LinearFit> fit_linear(const std::vector<double>& xs,
                               const std::vector<double>& ys);

// Inference latency vs batch size for one model.
//
// GPU inference cost decomposes into a batch-independent part (kernel
// launches, framework overhead) and a batch-proportional part. We anchor
// at the profiled batch-32 latency T32 and split it with base fraction
// `alpha`: t(b) = alpha*T32 + (1-alpha)*T32 * b/32. The default alpha=0.6
// reflects that Table I latencies vary little across models at batch 32
// (launch-dominated on these CNNs).
class BatchLatencyModel {
 public:
  explicit BatchLatencyModel(SimTime infer_time_b32, double alpha = 0.6);

  // Construction by regression over profiled (batch, latency) points.
  static StatusOr<BatchLatencyModel> fit(const std::vector<std::int64_t>& batches,
                                         const std::vector<SimTime>& latencies);

  SimTime predict(std::int64_t batch) const;
  const LinearFit& fit_params() const { return fit_; }

 private:
  BatchLatencyModel() = default;
  LinearFit fit_;  // x = batch size, y = latency in µs
};

// Load time vs model size, fitted across catalog profiles:
// t_load = base + size / bandwidth. Used for models without a profiled
// load time (e.g. heterogeneous-GPU ablation scales these parameters).
class LoadTimeModel {
 public:
  // Fits across the given profiles (needs >= 2 distinct sizes).
  static StatusOr<LoadTimeModel> fit(const std::vector<ModelProfile>& profiles);

  SimTime predict(Bytes size) const;
  // Base cost (process start + context init), µs.
  SimTime base_cost() const;
  // Effective upload bandwidth implied by the fit, bytes/second.
  double bandwidth_bps() const;

 private:
  LinearFit fit_;  // x = size in bytes, y = load time in µs
};

// Bundles per-model latency models for the scheduler's finish-time
// estimation; built from a registry.
class LatencyOracle {
 public:
  explicit LatencyOracle(const ModelRegistry& registry, double alpha = 0.6);

  // Profiled load time for the model (Table I value).
  StatusOr<SimTime> load_time(ModelId model) const;
  // Predicted inference time at the given batch size.
  StatusOr<SimTime> infer_time(ModelId model, std::int64_t batch) const;

 private:
  struct Entry {
    ModelId id;
    SimTime load_time;
    BatchLatencyModel batch_model;
  };
  std::vector<Entry> entries_;
};

}  // namespace gfaas::models
