// Runtime profiler: measures real forward-pass latency of the scaled-down
// CPU models across batch sizes and fits the same regression the paper's
// profiling procedure produces (§IV-A). Used by the real-time executor and
// by the heterogeneous-GPU ablation (per-GPU-type profiles).
#pragma once

#include <vector>

#include "common/status.h"
#include "models/latency_model.h"
#include "models/zoo.h"

namespace gfaas::models {

struct ProfilePoint {
  std::int64_t batch;
  SimTime latency;
};

struct ProfileResult {
  ModelId model;
  std::vector<ProfilePoint> points;
  LinearFit fit;  // latency (µs) vs batch size
};

class Profiler {
 public:
  // Batch sizes to sweep; defaults mirror a typical profiling run.
  explicit Profiler(std::vector<std::int64_t> batches = {1, 2, 4, 8})
      : batches_(std::move(batches)) {}

  // Builds the model's runtime topology and measures wall-clock forward
  // latency per batch size (median of `repeats` runs), then fits the
  // regression.
  StatusOr<ProfileResult> profile(const ModelProfile& profile, int repeats = 3) const;

 private:
  std::vector<std::int64_t> batches_;
};

}  // namespace gfaas::models
