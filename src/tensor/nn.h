// Neural-network layer library (forward pass only — inference).
//
// Layers follow the PyTorch module model: a `Module` owns parameters and
// implements `forward`. `Sequential` composes layers; `ResidualBlock`
// implements the ResNet basic block so the zoo builders can assemble
// realistic CNN topologies. Weight initialization is deterministic from
// the Rng passed to each constructor.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace gfaas::tensor {

class Module {
 public:
  virtual ~Module() = default;
  virtual Tensor forward(const Tensor& input) const = 0;
  virtual std::string name() const = 0;
  // Total parameter count (for size accounting and tests).
  virtual std::int64_t parameter_count() const { return 0; }
};

using ModulePtr = std::shared_ptr<Module>;

// 2-d convolution, NCHW, square kernel, zero padding, no dilation/groups.
class Conv2d final : public Module {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kernel,
         std::int64_t stride, std::int64_t padding, Rng& rng);

  Tensor forward(const Tensor& input) const override;
  std::string name() const override { return "Conv2d"; }
  std::int64_t parameter_count() const override {
    return weight_.numel() + bias_.numel();
  }

  std::int64_t out_channels() const { return out_channels_; }

 private:
  std::int64_t in_channels_, out_channels_, kernel_, stride_, padding_;
  Tensor weight_;  // [out, in, k, k]
  Tensor bias_;    // [out]
};

class Linear final : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng);

  Tensor forward(const Tensor& input) const override;  // [N, in] -> [N, out]
  std::string name() const override { return "Linear"; }
  std::int64_t parameter_count() const override {
    return weight_.numel() + bias_.numel();
  }

 private:
  std::int64_t in_features_, out_features_;
  Tensor weight_;  // [out, in]
  Tensor bias_;    // [out]
};

class ReLU final : public Module {
 public:
  Tensor forward(const Tensor& input) const override;
  std::string name() const override { return "ReLU"; }
};

class MaxPool2d final : public Module {
 public:
  MaxPool2d(std::int64_t kernel, std::int64_t stride);
  Tensor forward(const Tensor& input) const override;
  std::string name() const override { return "MaxPool2d"; }

 private:
  std::int64_t kernel_, stride_;
};

// Pools each channel down to 1x1 (global average pooling).
class AdaptiveAvgPool2d final : public Module {
 public:
  Tensor forward(const Tensor& input) const override;
  std::string name() const override { return "AdaptiveAvgPool2d"; }
};

// Inference-mode batch norm: y = gamma * (x - mean) / sqrt(var + eps) + beta,
// with fixed running statistics (randomized at build, like a trained net).
class BatchNorm2d final : public Module {
 public:
  BatchNorm2d(std::int64_t channels, Rng& rng);
  Tensor forward(const Tensor& input) const override;
  std::string name() const override { return "BatchNorm2d"; }
  std::int64_t parameter_count() const override { return 4 * channels_; }

 private:
  std::int64_t channels_;
  Tensor gamma_, beta_, running_mean_, running_var_;
};

class Flatten final : public Module {
 public:
  Tensor forward(const Tensor& input) const override;  // [N, C, H, W] -> [N, CHW]
  std::string name() const override { return "Flatten"; }
};

class Softmax final : public Module {
 public:
  Tensor forward(const Tensor& input) const override;  // row-wise on [N, K]
  std::string name() const override { return "Softmax"; }
};

class Sequential final : public Module {
 public:
  Sequential() = default;
  explicit Sequential(std::vector<ModulePtr> layers) : layers_(std::move(layers)) {}

  void push_back(ModulePtr layer) { layers_.push_back(std::move(layer)); }

  Tensor forward(const Tensor& input) const override;
  std::string name() const override { return "Sequential"; }
  std::int64_t parameter_count() const override;
  std::size_t size() const { return layers_.size(); }

 private:
  std::vector<ModulePtr> layers_;
};

// ResNet basic block: conv-bn-relu-conv-bn + skip (1x1 conv when shapes
// differ), followed by ReLU.
class ResidualBlock final : public Module {
 public:
  ResidualBlock(std::int64_t in_channels, std::int64_t out_channels,
                std::int64_t stride, Rng& rng);

  Tensor forward(const Tensor& input) const override;
  std::string name() const override { return "ResidualBlock"; }
  std::int64_t parameter_count() const override;

 private:
  Sequential main_;
  ModulePtr shortcut_;  // nullptr = identity
};

}  // namespace gfaas::tensor
