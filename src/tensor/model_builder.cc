#include "tensor/model_builder.h"

#include <algorithm>

#include "common/log.h"

namespace gfaas::tensor {

namespace {

// SqueezeNet fire module: 1x1 squeeze, then parallel 1x1 + 3x3 expands
// concatenated on the channel axis.
class FireModule final : public Module {
 public:
  FireModule(std::int64_t in_channels, std::int64_t squeeze, std::int64_t expand,
             Rng& rng)
      : squeeze_(std::make_shared<Conv2d>(in_channels, squeeze, 1, 1, 0, rng)),
        expand1_(std::make_shared<Conv2d>(squeeze, expand, 1, 1, 0, rng)),
        expand3_(std::make_shared<Conv2d>(squeeze, expand, 3, 1, 1, rng)),
        relu_(std::make_shared<ReLU>()) {}

  Tensor forward(const Tensor& input) const override {
    const Tensor s = relu_->forward(squeeze_->forward(input));
    const Tensor e1 = relu_->forward(expand1_->forward(s));
    const Tensor e3 = relu_->forward(expand3_->forward(s));
    return concat_channels(e1, e3);
  }
  std::string name() const override { return "FireModule"; }
  std::int64_t parameter_count() const override {
    return squeeze_->parameter_count() + expand1_->parameter_count() +
           expand3_->parameter_count();
  }

  static Tensor concat_channels(const Tensor& a, const Tensor& b) {
    GFAAS_CHECK(a.ndim() == 4 && b.ndim() == 4);
    GFAAS_CHECK(a.dim(0) == b.dim(0) && a.dim(2) == b.dim(2) && a.dim(3) == b.dim(3));
    const std::int64_t n = a.dim(0), ca = a.dim(1), cb = b.dim(1), h = a.dim(2),
                       w = a.dim(3);
    Tensor out({n, ca + cb, h, w});
    for (std::int64_t bi = 0; bi < n; ++bi) {
      for (std::int64_t y = 0; y < h; ++y) {
        for (std::int64_t x = 0; x < w; ++x) {
          for (std::int64_t c = 0; c < ca; ++c) out.at4(bi, c, y, x) = a.at4(bi, c, y, x);
          for (std::int64_t c = 0; c < cb; ++c)
            out.at4(bi, ca + c, y, x) = b.at4(bi, c, y, x);
        }
      }
    }
    return out;
  }

 private:
  std::shared_ptr<Conv2d> squeeze_, expand1_, expand3_;
  std::shared_ptr<ReLU> relu_;
};

// DenseNet dense layer: BN-ReLU-Conv3x3 producing `growth` channels,
// concatenated with its input.
class DenseBlock final : public Module {
 public:
  DenseBlock(std::int64_t in_channels, std::int64_t layers, std::int64_t growth,
             Rng& rng) {
    std::int64_t c = in_channels;
    for (std::int64_t i = 0; i < layers; ++i) {
      auto seq = std::make_shared<Sequential>();
      seq->push_back(std::make_shared<BatchNorm2d>(c, rng));
      seq->push_back(std::make_shared<ReLU>());
      seq->push_back(std::make_shared<Conv2d>(c, growth, 3, 1, 1, rng));
      layers_.push_back(seq);
      c += growth;
    }
    out_channels_ = c;
  }

  Tensor forward(const Tensor& input) const override {
    Tensor x = input;
    for (const auto& layer : layers_) {
      const Tensor y = layer->forward(x);
      x = FireModule::concat_channels(x, y);
    }
    return x;
  }
  std::string name() const override { return "DenseBlock"; }
  std::int64_t parameter_count() const override {
    std::int64_t total = 0;
    for (const auto& l : layers_) total += l->parameter_count();
    return total;
  }
  std::int64_t out_channels() const { return out_channels_; }

 private:
  std::vector<std::shared_ptr<Sequential>> layers_;
  std::int64_t out_channels_ = 0;
};

// Inception-style block: parallel 1x1, 3x3, 5x5 branches concatenated.
class InceptionBlock final : public Module {
 public:
  InceptionBlock(std::int64_t in_channels, std::int64_t branch_channels, Rng& rng)
      : b1_(std::make_shared<Conv2d>(in_channels, branch_channels, 1, 1, 0, rng)),
        b3_(std::make_shared<Conv2d>(in_channels, branch_channels, 3, 1, 1, rng)),
        b5_(std::make_shared<Conv2d>(in_channels, branch_channels, 5, 1, 2, rng)),
        relu_(std::make_shared<ReLU>()) {}

  Tensor forward(const Tensor& input) const override {
    const Tensor y1 = relu_->forward(b1_->forward(input));
    const Tensor y3 = relu_->forward(b3_->forward(input));
    const Tensor y5 = relu_->forward(b5_->forward(input));
    return FireModule::concat_channels(FireModule::concat_channels(y1, y3), y5);
  }
  std::string name() const override { return "InceptionBlock"; }
  std::int64_t parameter_count() const override {
    return b1_->parameter_count() + b3_->parameter_count() + b5_->parameter_count();
  }

 private:
  std::shared_ptr<Conv2d> b1_, b3_, b5_;
  std::shared_ptr<ReLU> relu_;
};

std::shared_ptr<Sequential> classifier_head(std::int64_t channels,
                                            std::int64_t num_classes, Rng& rng) {
  auto head = std::make_shared<Sequential>();
  head->push_back(std::make_shared<AdaptiveAvgPool2d>());
  head->push_back(std::make_shared<Flatten>());
  head->push_back(std::make_shared<Linear>(channels, num_classes, rng));
  head->push_back(std::make_shared<Softmax>());
  return head;
}

}  // namespace

std::string family_name(CnnFamily family) {
  switch (family) {
    case CnnFamily::kSqueezeNet: return "squeezenet";
    case CnnFamily::kResNet: return "resnet";
    case CnnFamily::kAlexNet: return "alexnet";
    case CnnFamily::kResNeXt: return "resnext";
    case CnnFamily::kDenseNet: return "densenet";
    case CnnFamily::kInception: return "inception";
    case CnnFamily::kVgg: return "vgg";
    case CnnFamily::kWideResNet: return "wideresnet";
  }
  return "unknown";
}

ModulePtr build_cnn(const CnnConfig& config) {
  GFAAS_CHECK(config.depth >= 1 && config.width >= 1 && config.num_classes >= 2);
  Rng rng(config.seed);
  auto net = std::make_shared<Sequential>();
  const std::int64_t w = config.width;

  switch (config.family) {
    case CnnFamily::kSqueezeNet: {
      net->push_back(std::make_shared<Conv2d>(config.in_channels, w, 3, 2, 1, rng));
      net->push_back(std::make_shared<ReLU>());
      std::int64_t c = w;
      for (std::int64_t i = 0; i < config.depth; ++i) {
        auto fire =
            std::make_shared<FireModule>(c, std::max<std::int64_t>(1, w / 2), w, rng);
        net->push_back(fire);
        c = 2 * w;
      }
      net->push_back(classifier_head(c, config.num_classes, rng));
      break;
    }
    case CnnFamily::kResNet:
    case CnnFamily::kResNeXt:
    case CnnFamily::kWideResNet: {
      // ResNeXt/WideResNet differ from ResNet mainly in width here; the
      // full-size latency differences come from the Table I profiles.
      const std::int64_t base =
          config.family == CnnFamily::kWideResNet ? 2 * w : w;
      net->push_back(std::make_shared<Conv2d>(config.in_channels, base, 3, 1, 1, rng));
      net->push_back(std::make_shared<BatchNorm2d>(base, rng));
      net->push_back(std::make_shared<ReLU>());
      std::int64_t c = base;
      for (std::int64_t i = 0; i < config.depth; ++i) {
        const std::int64_t out_c = i + 1 < config.depth ? c : 2 * c;
        const std::int64_t stride = i == 0 ? 1 : 2;
        net->push_back(std::make_shared<ResidualBlock>(c, out_c, stride, rng));
        c = out_c;
      }
      net->push_back(classifier_head(c, config.num_classes, rng));
      break;
    }
    case CnnFamily::kAlexNet: {
      net->push_back(std::make_shared<Conv2d>(config.in_channels, w, 5, 2, 2, rng));
      net->push_back(std::make_shared<ReLU>());
      net->push_back(std::make_shared<MaxPool2d>(2, 2));
      net->push_back(std::make_shared<Conv2d>(w, 2 * w, 3, 1, 1, rng));
      net->push_back(std::make_shared<ReLU>());
      net->push_back(classifier_head(2 * w, config.num_classes, rng));
      break;
    }
    case CnnFamily::kDenseNet: {
      net->push_back(std::make_shared<Conv2d>(config.in_channels, w, 3, 2, 1, rng));
      net->push_back(std::make_shared<ReLU>());
      auto block = std::make_shared<DenseBlock>(w, config.depth, w / 2 + 1, rng);
      const std::int64_t c = block->out_channels();
      net->push_back(block);
      net->push_back(classifier_head(c, config.num_classes, rng));
      break;
    }
    case CnnFamily::kInception: {
      net->push_back(std::make_shared<Conv2d>(config.in_channels, w, 3, 2, 1, rng));
      net->push_back(std::make_shared<ReLU>());
      std::int64_t c = w;
      for (std::int64_t i = 0; i < config.depth; ++i) {
        net->push_back(std::make_shared<InceptionBlock>(c, w, rng));
        c = 3 * w;
      }
      net->push_back(classifier_head(c, config.num_classes, rng));
      break;
    }
    case CnnFamily::kVgg: {
      std::int64_t c = config.in_channels;
      std::int64_t next = w;
      for (std::int64_t i = 0; i < config.depth; ++i) {
        net->push_back(std::make_shared<Conv2d>(c, next, 3, 1, 1, rng));
        net->push_back(std::make_shared<ReLU>());
        net->push_back(std::make_shared<MaxPool2d>(2, 2));
        c = next;
        next = std::min<std::int64_t>(next * 2, 8 * w);
      }
      net->push_back(classifier_head(c, config.num_classes, rng));
      break;
    }
  }
  return net;
}

}  // namespace gfaas::tensor
