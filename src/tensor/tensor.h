// Dense float32 tensor with row-major (NCHW for images) layout.
//
// This is the compute substrate that stands in for PyTorch: functions in
// the examples and integration tests run real forward passes through the
// layer library in nn.h. The implementation favours clarity and
// determinism over peak throughput; models used at runtime are
// scaled-down versions of the paper's 22 CNNs (see models/zoo.h for the
// full-size catalog used by the latency model).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/rng.h"

namespace gfaas::tensor {

using Shape = std::vector<std::int64_t>;

std::int64_t shape_numel(const Shape& shape);
std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape);
  static Tensor ones(Shape shape);
  static Tensor full(Shape shape, float value);
  // Kaiming-uniform init for conv/linear weights (fan_in provided).
  static Tensor kaiming_uniform(Shape shape, std::int64_t fan_in, Rng& rng);
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.f, float stddev = 1.f);

  const Shape& shape() const { return shape_; }
  std::int64_t dim(std::size_t i) const { return shape_[i]; }
  std::size_t ndim() const { return shape_.size(); }
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

  // 4-d accessor (NCHW); bounds-checked in debug via GFAAS_CHECK.
  float& at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w);
  float at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const;
  // 2-d accessor (rows, cols).
  float& at2(std::int64_t r, std::int64_t c);
  float at2(std::int64_t r, std::int64_t c) const;

  // Returns a tensor with the same data viewed under a new shape
  // (numel must match).
  Tensor reshape(Shape new_shape) const;

  // Elementwise in-place helpers.
  Tensor& add_(const Tensor& other);
  Tensor& mul_(float scalar);

  // Reductions.
  float sum() const;
  float max() const;
  std::int64_t argmax() const;

  // Approximate equality for tests.
  bool allclose(const Tensor& other, float atol = 1e-5f) const;

  std::int64_t byte_size() const {
    return static_cast<std::int64_t>(data_.size() * sizeof(float));
  }

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace gfaas::tensor
