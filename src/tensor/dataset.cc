#include "tensor/dataset.h"

#include <cmath>

#include "common/log.h"

namespace gfaas::tensor {

DatasetSpec dataset_spec(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kCifar10Like:
      return {kind, 3, 32, 32, 10};
    case DatasetKind::kMnistLike:
      return {kind, 1, 28, 28, 10};
    case DatasetKind::kHymenopteraLike:
      return {kind, 3, 64, 64, 2};
  }
  GFAAS_CHECK(false) << "unknown dataset kind";
  return {};
}

std::string dataset_name(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kCifar10Like: return "cifar10-like";
    case DatasetKind::kMnistLike: return "mnist-like";
    case DatasetKind::kHymenopteraLike: return "hymenoptera-like";
  }
  return "unknown";
}

SyntheticImageDataset::SyntheticImageDataset(DatasetKind kind, std::uint64_t seed)
    : spec_(dataset_spec(kind)), rng_(seed) {}

Tensor SyntheticImageDataset::make_image(std::int64_t label) {
  GFAAS_CHECK(label >= 0 && label < spec_.num_classes);
  Tensor img({1, spec_.channels, spec_.height, spec_.width});
  // Class-dependent pattern: stripe angle and frequency vary with label.
  const double angle = 2.0 * M_PI * static_cast<double>(label) /
                       static_cast<double>(spec_.num_classes);
  const double freq = 0.15 + 0.05 * static_cast<double>(label % 5);
  const double cx = std::cos(angle), sx = std::sin(angle);
  for (std::int64_t c = 0; c < spec_.channels; ++c) {
    const double phase = 0.7 * static_cast<double>(c);
    for (std::int64_t y = 0; y < spec_.height; ++y) {
      for (std::int64_t x = 0; x < spec_.width; ++x) {
        const double t =
            freq * (cx * static_cast<double>(x) + sx * static_cast<double>(y));
        const double signal = 0.5 + 0.4 * std::sin(t + phase);
        const double noise = 0.05 * rng_.normal();
        img.at4(0, c, y, x) = static_cast<float>(signal + noise);
      }
    }
  }
  return img;
}

Batch SyntheticImageDataset::make_batch(std::int64_t batch_size) {
  GFAAS_CHECK(batch_size > 0);
  Batch batch;
  batch.images = Tensor({batch_size, spec_.channels, spec_.height, spec_.width});
  batch.labels.reserve(static_cast<std::size_t>(batch_size));
  for (std::int64_t b = 0; b < batch_size; ++b) {
    const std::int64_t label = rng_.uniform_int(0, spec_.num_classes - 1);
    batch.labels.push_back(label);
    const Tensor img = make_image(label);
    for (std::int64_t c = 0; c < spec_.channels; ++c) {
      for (std::int64_t y = 0; y < spec_.height; ++y) {
        for (std::int64_t x = 0; x < spec_.width; ++x) {
          batch.images.at4(b, c, y, x) = img.at4(0, c, y, x);
        }
      }
    }
  }
  return batch;
}

Tensor SyntheticImageDataset::resize(const Tensor& image, std::int64_t out_h,
                                     std::int64_t out_w) {
  GFAAS_CHECK(image.ndim() == 4);
  const std::int64_t n = image.dim(0), c = image.dim(1), h = image.dim(2),
                     w = image.dim(3);
  GFAAS_CHECK(out_h > 0 && out_w > 0);
  Tensor out({n, c, out_h, out_w});
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t y = 0; y < out_h; ++y) {
        const std::int64_t sy = y * h / out_h;
        for (std::int64_t x = 0; x < out_w; ++x) {
          const std::int64_t sxp = x * w / out_w;
          out.at4(b, ch, y, x) = image.at4(b, ch, sy, sxp);
        }
      }
    }
  }
  return out;
}

}  // namespace gfaas::tensor
