// Builders for scaled-down versions of the CNN families in the paper's
// Table I (SqueezeNet, ResNet, AlexNet, ResNeXt, DenseNet, Inception, VGG,
// WideResNet). Each builder assembles a real topology of that family —
// fire modules for SqueezeNet, residual blocks for ResNet, dense blocks
// for DenseNet, parallel branches for Inception — at a width/depth small
// enough for CPU execution, so examples and integration tests run genuine
// forward passes through architecture-faithful graphs.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "tensor/nn.h"

namespace gfaas::tensor {

enum class CnnFamily {
  kSqueezeNet,
  kResNet,
  kAlexNet,
  kResNeXt,
  kDenseNet,
  kInception,
  kVgg,
  kWideResNet,
};

std::string family_name(CnnFamily family);

struct CnnConfig {
  CnnFamily family = CnnFamily::kResNet;
  // Family-specific depth knob: residual/dense/fire/VGG-stage count.
  std::int64_t depth = 2;
  // Base channel width.
  std::int64_t width = 8;
  std::int64_t in_channels = 3;
  std::int64_t num_classes = 10;
  std::uint64_t seed = 1;
};

// Builds a runnable model for the config. The returned module accepts
// NCHW inputs with at least 16x16 spatial extent.
ModulePtr build_cnn(const CnnConfig& config);

}  // namespace gfaas::tensor
