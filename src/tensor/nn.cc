#include "tensor/nn.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.h"

namespace gfaas::tensor {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kernel,
               std::int64_t stride, std::int64_t padding, Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weight_(Tensor::kaiming_uniform({out_channels, in_channels, kernel, kernel},
                                      in_channels * kernel * kernel, rng)),
      bias_(Tensor::zeros({out_channels})) {
  GFAAS_CHECK(stride >= 1 && kernel >= 1 && padding >= 0);
}

Tensor Conv2d::forward(const Tensor& input) const {
  GFAAS_CHECK(input.ndim() == 4) << "Conv2d expects NCHW";
  GFAAS_CHECK(input.dim(1) == in_channels_)
      << "Conv2d channel mismatch: " << input.dim(1) << " vs " << in_channels_;
  const std::int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::int64_t oh = (h + 2 * padding_ - kernel_) / stride_ + 1;
  const std::int64_t ow = (w + 2 * padding_ - kernel_) / stride_ + 1;
  GFAAS_CHECK(oh > 0 && ow > 0) << "Conv2d output collapsed";
  Tensor out({n, out_channels_, oh, ow});

  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t oc = 0; oc < out_channels_; ++oc) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          float acc = bias_[oc];
          const std::int64_t iy0 = oy * stride_ - padding_;
          const std::int64_t ix0 = ox * stride_ - padding_;
          for (std::int64_t ic = 0; ic < in_channels_; ++ic) {
            for (std::int64_t ky = 0; ky < kernel_; ++ky) {
              const std::int64_t iy = iy0 + ky;
              if (iy < 0 || iy >= h) continue;
              for (std::int64_t kx = 0; kx < kernel_; ++kx) {
                const std::int64_t ix = ix0 + kx;
                if (ix < 0 || ix >= w) continue;
                acc += input.at4(b, ic, iy, ix) *
                       weight_[((oc * in_channels_ + ic) * kernel_ + ky) * kernel_ + kx];
              }
            }
          }
          out.at4(b, oc, oy, ox) = acc;
        }
      }
    }
  }
  return out;
}

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(Tensor::kaiming_uniform({out_features, in_features}, in_features, rng)),
      bias_(Tensor::zeros({out_features})) {}

Tensor Linear::forward(const Tensor& input) const {
  GFAAS_CHECK(input.ndim() == 2) << "Linear expects [N, in]";
  GFAAS_CHECK(input.dim(1) == in_features_)
      << "Linear feature mismatch: " << input.dim(1) << " vs " << in_features_;
  const std::int64_t n = input.dim(0);
  Tensor out({n, out_features_});
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t o = 0; o < out_features_; ++o) {
      float acc = bias_[o];
      for (std::int64_t i = 0; i < in_features_; ++i) {
        acc += input.at2(b, i) * weight_.at2(o, i);
      }
      out.at2(b, o) = acc;
    }
  }
  return out;
}

Tensor ReLU::forward(const Tensor& input) const {
  Tensor out = input;
  for (std::int64_t i = 0; i < out.numel(); ++i) out[i] = std::max(0.f, out[i]);
  return out;
}

MaxPool2d::MaxPool2d(std::int64_t kernel, std::int64_t stride)
    : kernel_(kernel), stride_(stride) {
  GFAAS_CHECK(kernel >= 1 && stride >= 1);
}

Tensor MaxPool2d::forward(const Tensor& input) const {
  GFAAS_CHECK(input.ndim() == 4);
  const std::int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                     w = input.dim(3);
  const std::int64_t oh = (h - kernel_) / stride_ + 1;
  const std::int64_t ow = (w - kernel_) / stride_ + 1;
  GFAAS_CHECK(oh > 0 && ow > 0) << "MaxPool2d output collapsed";
  Tensor out({n, c, oh, ow});
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t oy = 0; oy < oh; ++oy) {
        for (std::int64_t ox = 0; ox < ow; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          for (std::int64_t ky = 0; ky < kernel_; ++ky) {
            for (std::int64_t kx = 0; kx < kernel_; ++kx) {
              best = std::max(
                  best, input.at4(b, ch, oy * stride_ + ky, ox * stride_ + kx));
            }
          }
          out.at4(b, ch, oy, ox) = best;
        }
      }
    }
  }
  return out;
}

Tensor AdaptiveAvgPool2d::forward(const Tensor& input) const {
  GFAAS_CHECK(input.ndim() == 4);
  const std::int64_t n = input.dim(0), c = input.dim(1), h = input.dim(2),
                     w = input.dim(3);
  Tensor out({n, c, 1, 1});
  const float inv = 1.f / static_cast<float>(h * w);
  for (std::int64_t b = 0; b < n; ++b) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      double acc = 0;
      for (std::int64_t y = 0; y < h; ++y) {
        for (std::int64_t x = 0; x < w; ++x) acc += input.at4(b, ch, y, x);
      }
      out.at4(b, ch, 0, 0) = static_cast<float>(acc) * inv;
    }
  }
  return out;
}

BatchNorm2d::BatchNorm2d(std::int64_t channels, Rng& rng)
    : channels_(channels),
      gamma_(Tensor::ones({channels})),
      beta_(Tensor::zeros({channels})),
      running_mean_(Tensor::randn({channels}, rng, 0.f, 0.1f)),
      running_var_(Tensor::zeros({channels})) {
  // Positive running variances around 1, as in a trained network.
  for (std::int64_t i = 0; i < channels_; ++i) {
    running_var_[i] = 0.5f + static_cast<float>(rng.uniform());
  }
}

Tensor BatchNorm2d::forward(const Tensor& input) const {
  GFAAS_CHECK(input.ndim() == 4 && input.dim(1) == channels_);
  constexpr float kEps = 1e-5f;
  Tensor out = input;
  const std::int64_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  for (std::int64_t ch = 0; ch < channels_; ++ch) {
    const float scale = gamma_[ch] / std::sqrt(running_var_[ch] + kEps);
    const float shift = beta_[ch] - running_mean_[ch] * scale;
    for (std::int64_t b = 0; b < n; ++b) {
      for (std::int64_t y = 0; y < h; ++y) {
        for (std::int64_t x = 0; x < w; ++x) {
          out.at4(b, ch, y, x) = input.at4(b, ch, y, x) * scale + shift;
        }
      }
    }
  }
  return out;
}

Tensor Flatten::forward(const Tensor& input) const {
  GFAAS_CHECK(input.ndim() >= 2);
  const std::int64_t n = input.dim(0);
  return input.reshape({n, input.numel() / n});
}

Tensor Softmax::forward(const Tensor& input) const {
  GFAAS_CHECK(input.ndim() == 2);
  Tensor out = input;
  const std::int64_t n = input.dim(0), k = input.dim(1);
  for (std::int64_t b = 0; b < n; ++b) {
    float mx = -std::numeric_limits<float>::infinity();
    for (std::int64_t i = 0; i < k; ++i) mx = std::max(mx, input.at2(b, i));
    double total = 0;
    for (std::int64_t i = 0; i < k; ++i) {
      const float e = std::exp(input.at2(b, i) - mx);
      out.at2(b, i) = e;
      total += e;
    }
    const float inv = static_cast<float>(1.0 / total);
    for (std::int64_t i = 0; i < k; ++i) out.at2(b, i) *= inv;
  }
  return out;
}

Tensor Sequential::forward(const Tensor& input) const {
  Tensor x = input;
  for (const auto& layer : layers_) x = layer->forward(x);
  return x;
}

std::int64_t Sequential::parameter_count() const {
  std::int64_t total = 0;
  for (const auto& layer : layers_) total += layer->parameter_count();
  return total;
}

ResidualBlock::ResidualBlock(std::int64_t in_channels, std::int64_t out_channels,
                             std::int64_t stride, Rng& rng) {
  main_.push_back(std::make_shared<Conv2d>(in_channels, out_channels, 3, stride, 1, rng));
  main_.push_back(std::make_shared<BatchNorm2d>(out_channels, rng));
  main_.push_back(std::make_shared<ReLU>());
  main_.push_back(std::make_shared<Conv2d>(out_channels, out_channels, 3, 1, 1, rng));
  main_.push_back(std::make_shared<BatchNorm2d>(out_channels, rng));
  if (stride != 1 || in_channels != out_channels) {
    shortcut_ = std::make_shared<Conv2d>(in_channels, out_channels, 1, stride, 0, rng);
  }
}

Tensor ResidualBlock::forward(const Tensor& input) const {
  Tensor out = main_.forward(input);
  const Tensor skip = shortcut_ ? shortcut_->forward(input) : input;
  out.add_(skip);
  // Final ReLU.
  for (std::int64_t i = 0; i < out.numel(); ++i) out[i] = std::max(0.f, out[i]);
  return out;
}

std::int64_t ResidualBlock::parameter_count() const {
  return main_.parameter_count() + (shortcut_ ? shortcut_->parameter_count() : 0);
}

}  // namespace gfaas::tensor
