// Synthetic image datasets standing in for the paper's inference inputs
// (§V-A2: CIFAR-10 32x32 RGB, MNIST 28x28 grayscale, Hymenoptera variable
// RGB). Images are deterministic procedural patterns plus seeded noise, so
// the inference data path is exercised with class-separable inputs while
// remaining fully reproducible offline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace gfaas::tensor {

enum class DatasetKind { kCifar10Like, kMnistLike, kHymenopteraLike };

struct DatasetSpec {
  DatasetKind kind;
  std::int64_t channels;
  std::int64_t height;
  std::int64_t width;
  std::int64_t num_classes;
};

DatasetSpec dataset_spec(DatasetKind kind);
std::string dataset_name(DatasetKind kind);

// A labeled batch of images, NCHW.
struct Batch {
  Tensor images;
  std::vector<std::int64_t> labels;
};

class SyntheticImageDataset {
 public:
  SyntheticImageDataset(DatasetKind kind, std::uint64_t seed);

  const DatasetSpec& spec() const { return spec_; }

  // Generates one image of the given class: a class-dependent procedural
  // pattern (gradient orientation + stripe frequency) plus noise.
  Tensor make_image(std::int64_t label);

  // Generates a batch with uniformly random labels.
  Batch make_batch(std::int64_t batch_size);

  // Resizes to the model's expected input (nearest-neighbour), standing in
  // for the compression/resizing the paper applies to Hymenoptera images.
  static Tensor resize(const Tensor& image, std::int64_t out_h, std::int64_t out_w);

 private:
  DatasetSpec spec_;
  Rng rng_;
};

}  // namespace gfaas::tensor
