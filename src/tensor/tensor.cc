#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace gfaas::tensor {

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) {
    GFAAS_CHECK(d >= 0) << "negative dimension";
    n *= d;
  }
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::string out = "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(shape[i]);
  }
  return out + "]";
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), 0.f) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  GFAAS_CHECK(shape_numel(shape_) == static_cast<std::int64_t>(data_.size()))
      << "shape " << shape_to_string(shape_) << " != data size " << data_.size();
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::ones(Shape shape) { return full(std::move(shape), 1.f); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  std::fill(t.data_.begin(), t.data_.end(), value);
  return t;
}

Tensor Tensor::kaiming_uniform(Shape shape, std::int64_t fan_in, Rng& rng) {
  GFAAS_CHECK(fan_in > 0);
  Tensor t(std::move(shape));
  const float bound = std::sqrt(6.f / static_cast<float>(fan_in));
  for (auto& v : t.data_) v = static_cast<float>(rng.uniform(-bound, bound));
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

float& Tensor::at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
  GFAAS_CHECK(ndim() == 4);
  return data_[static_cast<std::size_t>(
      ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
}

float Tensor::at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const {
  GFAAS_CHECK(ndim() == 4);
  return data_[static_cast<std::size_t>(
      ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
}

float& Tensor::at2(std::int64_t r, std::int64_t c) {
  GFAAS_CHECK(ndim() == 2);
  return data_[static_cast<std::size_t>(r * shape_[1] + c)];
}

float Tensor::at2(std::int64_t r, std::int64_t c) const {
  GFAAS_CHECK(ndim() == 2);
  return data_[static_cast<std::size_t>(r * shape_[1] + c)];
}

Tensor Tensor::reshape(Shape new_shape) const {
  GFAAS_CHECK(shape_numel(new_shape) == numel())
      << "reshape " << shape_to_string(shape_) << " -> " << shape_to_string(new_shape);
  return Tensor(std::move(new_shape), data_);
}

Tensor& Tensor::add_(const Tensor& other) {
  GFAAS_CHECK(numel() == other.numel()) << "add_ size mismatch";
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::mul_(float scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

float Tensor::sum() const {
  double acc = 0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::max() const {
  GFAAS_CHECK(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

std::int64_t Tensor::argmax() const {
  GFAAS_CHECK(!data_.empty());
  return static_cast<std::int64_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

bool Tensor::allclose(const Tensor& other, float atol) const {
  if (shape_ != other.shape_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - other.data_[i]) > atol) return false;
  }
  return true;
}

}  // namespace gfaas::tensor
