#include "cluster/realtime.h"

#include "common/log.h"

namespace gfaas::cluster {

RealTimeExecutor::RealTimeExecutor(double time_scale)
    : time_scale_(time_scale), start_(std::chrono::steady_clock::now()) {
  GFAAS_CHECK(time_scale > 0);
  worker_ = std::thread([this] { worker_loop(); });
}

RealTimeExecutor::~RealTimeExecutor() {
  {
    common::MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

SimTime RealTimeExecutor::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  const auto usec_elapsed =
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count();
  return static_cast<SimTime>(static_cast<double>(usec_elapsed) * time_scale_);
}

std::chrono::steady_clock::time_point RealTimeExecutor::deadline_for(
    SimTime when) const {
  const auto wall_usec =
      static_cast<std::int64_t>(static_cast<double>(when) / time_scale_);
  return start_ + std::chrono::microseconds(wall_usec);
}

std::uint64_t RealTimeExecutor::schedule_after(SimTime delay, std::function<void()> fn) {
  GFAAS_CHECK(delay >= 0);
  GFAAS_CHECK(fn != nullptr);
  common::MutexLock lock(&mu_);
  const SimTime when = now() + delay;
  const std::uint64_t id = next_id_++;
  const auto key = std::make_pair(when, next_seq_++);
  events_.emplace(key, Scheduled{id, std::move(fn)});
  by_id_.emplace(id, key);
  cv_.notify_all();
  return id;
}

std::uint64_t RealTimeExecutor::post(std::function<void()> fn) {
  GFAAS_CHECK(fn != nullptr);
  common::MutexLock lock(&mu_);
  const std::uint64_t id = next_id_++;
  ready_.push_back(Ready{id, now(), next_seq_++, std::move(fn)});
  ready_live_.insert(id);
  cv_.notify_all();
  return id;
}

bool RealTimeExecutor::cancel(std::uint64_t event_id) {
  common::MutexLock lock(&mu_);
  auto it = by_id_.find(event_id);
  if (it != by_id_.end()) {
    events_.erase(it->second);
    by_id_.erase(it);
    ++cancelled_;
    // Wake the worker: it may be sleeping until this event's deadline (or
    // holding drain() callers hostage to it). It re-evaluates the head and
    // notifies drained_cv_ itself if the queue is now empty.
    cv_.notify_all();
    return true;
  }
  if (ready_live_.erase(event_id) > 0) {
    // The deque entry stays behind as a tombstone; the worker scrubs it
    // (and releases its closure) on its next pass.
    ++cancelled_;
    cv_.notify_all();
    return true;
  }
  return false;
}

std::size_t RealTimeExecutor::pending() const {
  common::MutexLock lock(&mu_);
  return events_.size() + ready_live_.size() + (running_ ? 1 : 0);
}

std::uint64_t RealTimeExecutor::fired_count() const {
  common::MutexLock lock(&mu_);
  return fired_;
}

std::uint64_t RealTimeExecutor::cancelled_count() const {
  common::MutexLock lock(&mu_);
  return cancelled_;
}

void RealTimeExecutor::drain() {
  common::MutexLock lock(&mu_);
  // Explicit predicate loop (not the lambda-predicate overload) so the
  // guarded reads stay inside this annotated scope.
  while (!(events_.empty() && ready_live_.empty() && !running_)) {
    drained_cv_.wait(lock);
  }
}

void RealTimeExecutor::worker_loop() {
  common::MutexLock lock(&mu_);
  while (!stop_) {
    // Scrub cancelled ready tombstones so their closures are released
    // promptly and the emptiness checks below see the true state.
    while (!ready_.empty() && ready_live_.count(ready_.front().id) == 0) {
      ready_.pop_front();
    }
    if (events_.empty() && ready_.empty()) {
      drained_cv_.notify_all();
      while (!(stop_ || !events_.empty() || !ready_.empty())) {
        cv_.wait(lock);
      }
      continue;
    }
    // Pick the earlier of the ready head and the timed head by
    // (when, seq). Ready items are always due (stamped when <= now), so
    // whenever the timed head wins that comparison it is due too
    // (timed.when <= ready.when <= now) — the worker only sleeps when
    // the ready deque is empty.
    std::function<void()> fn;
    const auto timed = events_.begin();
    const bool ready_first =
        !ready_.empty() &&
        (events_.empty() ||
         std::make_pair(ready_.front().when, ready_.front().seq) < timed->first);
    if (ready_first) {
      fn = std::move(ready_.front().fn);
      ready_live_.erase(ready_.front().id);
      ready_.pop_front();
    } else {
      const SimTime fire_at = timed->first.first;
      if (ready_.empty() && now() < fire_at) {
        cv_.wait_until(lock, deadline_for(fire_at));
        continue;  // re-evaluate: an earlier event may have been added
      }
      fn = std::move(timed->second.fn);
      // Keyed erase of the id index: O(log n), matching cancel(). (A
      // value scan here made every fire O(n) and a run quadratic.)
      by_id_.erase(timed->second.id);
      events_.erase(timed);
    }
    ++fired_;
    running_ = true;
    lock.Unlock();
    fn();
    lock.Lock();
    running_ = false;
    if (events_.empty() && ready_live_.empty()) drained_cv_.notify_all();
  }
}

}  // namespace gfaas::cluster
