// FaasCluster: the complete GPU-enabled FaaS deployment — Gateway on top,
// SimCluster (Scheduler + Cache Manager + GPU Managers + Datastore)
// underneath — implementing faas::GpuBackend so GPU-enabled functions
// registered through the Gateway are scheduled onto the virtual GPUs.
// This is the object the examples and integration tests program against:
// the same end-to-end path as the paper's Fig. 2.
#pragma once

#include <memory>
#include <unordered_map>

#include "cluster/experiment.h"
#include "faas/gateway.h"

namespace gfaas::cluster {

class FaasCluster final : public faas::GpuBackend {
 public:
  FaasCluster(const ClusterConfig& config, const models::ModelRegistry& registry);

  faas::Gateway& gateway() { return *gateway_; }
  SimCluster& sim_cluster() { return *cluster_; }
  sim::Simulator& simulator() { return cluster_->simulator(); }
  datastore::KvStore& datastore() { return cluster_->datastore(); }

  // faas::GpuBackend: resolves the function's model by name, builds a
  // scheduler request, and completes the callback when inference is done.
  void submit(const faas::FunctionSpec& spec, const faas::Payload& input,
              std::function<void(StatusOr<faas::InvocationResult>)> done) override;

  // Drives the simulation until all submitted work completes.
  void run_to_completion() { cluster_->simulator().run(); }

 private:
  std::unique_ptr<SimCluster> cluster_;
  std::unique_ptr<faas::Gateway> gateway_;
  models::ModelRegistry registry_;
  std::unordered_map<std::int64_t,
                     std::function<void(StatusOr<faas::InvocationResult>)>>
      pending_;
  std::int64_t next_request_ = 0;
};

}  // namespace gfaas::cluster
