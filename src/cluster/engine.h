// Scheduling engine: owns the global/local queues and the policy, and
// implements the paper's Scheduler component (Fig. 3).
//
// Event flow: the Gateway (src/gateway) submits requests -> global queue
// -> the policy is invoked ("at least one request waiting and at least
// one GPU idle", §IV-A) -> policy actions are applied synchronously
// (dispatch via the owning GPU Manager, or move to a local queue) -> on
// every GPU completion the engine re-invokes the policy and routes the
// per-request completion hook back out to the submitter. The engine is
// also the core::SchedulingContext the policies program against,
// providing finish-time estimates built from the GPU Managers' committed
// finish times plus local-queue work (§IV-A).
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/cache_manager.h"
#include "cluster/cluster_state_index.h"
#include "common/thread_annotations.h"
#include "cluster/gpu_manager.h"
#include "core/queues.h"
#include "core/scheduler.h"
#include "metrics/stats.h"
#include "metrics/timeline.h"

namespace gfaas::telemetry {
class Telemetry;
}  // namespace gfaas::telemetry

namespace gfaas::cluster {

class SchedulerEngine final : public core::SchedulingContext {
 public:
  SchedulerEngine(sim::Executor* executor, cache::CacheManager* cache,
                  const models::LatencyOracle* oracle,
                  std::vector<gpu::VirtualGpu*> gpus,
                  std::vector<GpuManager*> managers,
                  std::unique_ptr<core::SchedulingPolicy> policy);
  ~SchedulerEngine();

  // Attaches the live-telemetry seam: dispatch/completion/failure/
  // cancellation counters, execution-time accumulators, dispatch and
  // model-load lifecycle spans, and a pull probe for queue depths, idle
  // and schedulable GPU counts, and the cache hit ratio. Nullable — the
  // default (detached) hot path records nothing (the
  // bench_seed_digest guard covers both states).
  void set_telemetry(telemetry::Telemetry* telemetry);

  // Submits an arriving request; invokes the policy.
  void submit(core::Request request);

  // --- dynamic fleet membership (src/autoscale) ---
  // Joins a provisioned GPU (fresh, densely numbered id): it enters the
  // idle set and the cache index, and the policy runs immediately so a
  // backed-up global queue can use it at once. `manager` must already
  // manage the GPU; both pointers must outlive the engine.
  void add_gpu(gpu::VirtualGpu* gpu, GpuManager* manager);
  // Begins draining: the GPU leaves the idle/location indexes (no new
  // dispatches, its cached models stop attracting requests), finishes its
  // in-flight work, and serves out its local queue — those requests hold
  // pins on its cached models and would strand anywhere else.
  void fence_gpu(GpuId gpu);
  // Aborts a drain: the GPU rejoins the indexes and the policy runs.
  void unfence_gpu(GpuId gpu);
  // Retires a drained GPU (fenced, idle, empty local queue) permanently.
  void remove_gpu(GpuId gpu);
  // Chaos verb: the GPU dies mid-run. The in-flight request (if any)
  // fails — its completion hooks fire with `failed = true` rather than
  // silence — local-queue requests give back their model pins and rejoin
  // the global queue (keeping their ids, deadlines and hooks), and the
  // GPU is fenced and removed in one step. Must run strictly before the
  // in-flight request's completion instant.
  void kill_gpu(GpuId gpu);
  bool is_fenced(GpuId gpu) const {
    serial_.AssertHeld();
    return index_.is_fenced(gpu);
  }
  // Whether the GPU is currently part of the cluster (false once removed
  // or killed; ids are never reused).
  bool is_registered(GpuId gpu) const {
    serial_.AssertHeld();
    return index_.is_registered(gpu);
  }
  // Whether a fenced GPU has finished all committed work and can be removed.
  bool drained(GpuId gpu) const {
    serial_.AssertHeld();
    return index_.is_fenced(gpu) && index_.is_idle(gpu) &&
           index_.local_pending(gpu) == 0;
  }
  // GPUs the policy may currently target (registered and not fenced).
  std::size_t schedulable_gpu_count() const {
    serial_.AssertHeld();
    return index_.schedulable_count();
  }
  std::size_t idle_gpu_count() const {
    serial_.AssertHeld();
    return index_.idle_count();
  }

  // --- retry / hedging support (src/gateway) ---
  // Cancels a not-yet-completed request wherever it sits: waiting in the
  // global queue, parked in a local queue (its model pin is given back),
  // or executing on a GPU (aborted through the GPU Manager; the wasted
  // GPU-time accrues to cancelled_execution_time()). The request's
  // completion hook is dropped without firing — the caller owns result
  // delivery for cancelled duplicates. Returns false if the request is
  // unknown here (already completed, failed, or never submitted).
  bool cancel_request(RequestId id);
  // Whether the request is still queued (global or local), i.e. has not
  // started executing — the hedging trigger: duplicating a request that
  // is already running buys nothing.
  bool request_waiting(RequestId id) const;
  // Whether the request is currently executing on some GPU.
  bool request_executing(RequestId id) const {
    serial_.AssertHeld();
    return executing_.count(id.value()) > 0;
  }
  // Dispatches a hedge duplicate directly onto an idle schedulable GPU,
  // bypassing the queues: prefers an idle holder of the model (a warm
  // duplicate finishes fastest), else the least-dispatched idle GPU (the
  // classic LB pick). The duplicate only launches when its ETA on the
  // target beats the work still queued ahead of `primary` (the original
  // submission id) — otherwise the parked placement is still the right
  // call and duplicating would waste the idle GPU. Returns the chosen
  // GPU, or an invalid id when no idle GPU exists or the hedge cannot
  // win — the caller re-arms its hedge timer.
  GpuId hedge_dispatch(core::Request request, RequestId primary);
  // Gray-degrades (or, with factor 1, heals) a GPU: executions run
  // `factor`x slower while every estimate the scheduler sees stays at the
  // healthy profile numbers (see GpuManager::set_slowdown). The straggler
  // injection behind the hedging win.
  void degrade_gpu(GpuId gpu, double factor) {
    manager_for(gpu).set_slowdown(gpu, factor);
  }
  // GPU-time thrown away by cancel_request() aborts — the duplicate-work
  // overhead hedging pays for its p99 win — and the cancellation count.
  SimTime cancelled_execution_time() const {
    serial_.AssertHeld();
    return cancelled_execution_time_;
  }
  std::int64_t cancellations() const {
    serial_.AssertHeld();
    return cancellations_;
  }

  // --- cross-shard work stealing (src/shard) ---
  // Removes up to `max_count` requests from the BACK of the global queue
  // — the newest arrivals, which have waited least, hold no O3 skip
  // credit, and whose departure can invalidate no placement already made
  // — and returns them in arrival order with their detached completion
  // hooks re-attached, ready to be submit()ed into another engine. The
  // caller (shard::ShardedCluster's steal balancer) stamps the steal
  // marker; this engine only forgets the requests. Requests parked in
  // local queues or executing are never stolen: they hold model pins and
  // committed GPU state here.
  // `eligible` (when set) filters victims: ineligible requests are
  // skipped during the backward walk and stay queued here — the steal
  // balancer passes "warm on some other shard" so stolen work lands on
  // its cached copies while cold tail-model work keeps its home shard.
  std::vector<core::Request> steal_from_global(
      std::size_t max_count,
      const std::function<bool(const core::Request&)>& eligible = nullptr);

  // Optional per-completion hook (e.g. the Gateway resolving a future).
  void set_completion_hook(std::function<void(const core::CompletionRecord&)> hook) {
    completion_hook_ = std::move(hook);
  }

  // Optionally tracked model for the duplicate meter (Fig. 6).
  void track_duplicates_of(ModelId model) { tracked_model_ = model; }

  // --- results ---
  const std::vector<core::CompletionRecord>& completions() const {
    serial_.AssertHeld();
    return completions_;
  }
  // Requests that died with their GPU (kill_gpu); disjoint from
  // completions() and excluded from every latency/miss metric.
  const std::vector<core::CompletionRecord>& failures() const {
    serial_.AssertHeld();
    return failures_;
  }
  std::size_t pending() const {
    serial_.AssertHeld();
    return global_queue_.size() + local_queues_.total_pending() + in_flight_;
  }
  std::size_t in_flight() const {
    serial_.AssertHeld();
    return in_flight_;
  }
  std::int64_t false_misses() const {
    serial_.AssertHeld();
    return false_misses_;
  }
  double average_top_duplicates(SimTime now) const {
    serial_.AssertHeld();
    return duplicates_meter_.average(now);
  }
  const core::SchedulingPolicy& policy() const { return *policy_; }

  // Per-minute evolution of the run: completion latency samples (seconds)
  // and miss counts, bucketed by completion time.
  const metrics::TimeSeries& latency_series() const {
    serial_.AssertHeld();
    return latency_series_;
  }
  const metrics::TimeSeries& miss_series() const {
    serial_.AssertHeld();
    return miss_series_;
  }

  // Policy-invocation cost counters (bench_cluster_scale): number of times
  // the policy actually ran, cumulative wall-clock spent inside it, and the
  // global-queue length observed at each invocation. Wall timing never
  // feeds back into simulated time, so determinism is unaffected.
  std::uint64_t policy_invocations() const {
    serial_.AssertHeld();
    return policy_invocations_;
  }
  std::uint64_t policy_wall_ns() const {
    serial_.AssertHeld();
    return policy_wall_ns_;
  }
  std::uint64_t policy_queue_len_sum() const {
    serial_.AssertHeld();
    return policy_queue_len_sum_;
  }
  std::size_t policy_queue_len_max() const {
    serial_.AssertHeld();
    return policy_queue_len_max_;
  }

  // --- core::SchedulingContext ---
  SimTime now() const override;
  std::vector<GpuId> idle_gpus() const override;
  std::vector<GpuId> busy_gpus() const override;
  // Fenced GPUs report busy to the policies: they must not be targeted
  // while draining even if physically idle between local-queue requests.
  bool is_idle(GpuId gpu) const override {
    serial_.AssertHeld();
    return index_.is_idle(gpu) && !index_.is_fenced(gpu);
  }
  std::int64_t dispatch_count(GpuId gpu) const override {
    serial_.AssertHeld();
    return index_.dispatch_count(gpu);
  }
  GpuId first_idle_with_local_work() const override {
    serial_.AssertHeld();
    return index_.first_idle_with_local_work();
  }
  const core::GlobalQueue& global_queue() const override {
    serial_.AssertHeld();
    return global_queue_;
  }
  core::GlobalQueue& mutable_global_queue() override {
    serial_.AssertHeld();
    return global_queue_;
  }
  const core::LocalQueues& local_queues() const override {
    serial_.AssertHeld();
    return local_queues_;
  }
  const cache::CacheManager& cache() const override { return *cache_; }
  SimTime estimated_finish_time(GpuId gpu) const override;
  SimTime load_time(ModelId model) const override;
  SimTime infer_time(ModelId model, std::int64_t batch) const override;
  void dispatch_from_global(RequestId request, GpuId gpu, bool false_miss) override;
  void dispatch_from_local(GpuId gpu) override;
  void move_to_local(RequestId request, GpuId gpu) override;

 private:
  GpuManager& manager_for(GpuId gpu);
  // Moves request.on_complete into request_hooks_ (submit/hedge paths).
  void detach_hook(core::Request& request) REQUIRES(serial_);
  void run_policy() REQUIRES(serial_);
  void start_execution(core::Request request, GpuId gpu, bool false_miss,
                       bool via_local_queue) REQUIRES(serial_);
  void on_completion(const core::CompletionRecord& record) REQUIRES(serial_);
  // Fires and discards the request's detached completion hook, if any.
  void notify_request_hook(const core::CompletionRecord& record)
      REQUIRES(serial_);
  void update_duplicates_meter() REQUIRES(serial_);

  // Telemetry instrument handles, resolved once at set_telemetry();
  // null when detached (the hot paths then skip every record).
  struct TelemetryHandles;
  std::unique_ptr<TelemetryHandles> tel_;

  sim::Executor* executor_;
  cache::CacheManager* cache_;
  const models::LatencyOracle* oracle_;
  std::vector<gpu::VirtualGpu*> gpus_;
  std::vector<GpuManager*> managers_;
  std::unique_ptr<core::SchedulingPolicy> policy_;

  // Thread-affinity capability: the engine is a single event-loop by
  // contract (Fig. 3) — every method below runs on the executor worker
  // thread. The scheduler state is GUARDED_BY(serial_) so a code path
  // that reaches it without passing an asserted entry point fails the
  // thread-safety analysis.
  common::ExecutorAffinity serial_;

  core::GlobalQueue global_queue_ GUARDED_BY(serial_);
  core::LocalQueues local_queues_ GUARDED_BY(serial_);
  // Idle/busy sets, dispatch frequencies, committed finish times and
  // local-queue work aggregates, maintained incrementally at dispatch,
  // completion and local-queue push/pop.
  ClusterStateIndex index_ GUARDED_BY(serial_);
  std::size_t in_flight_ GUARDED_BY(serial_) = 0;
  bool policy_running_ GUARDED_BY(serial_) = false;
  std::int64_t false_misses_ GUARDED_BY(serial_) = 0;
  std::uint64_t policy_invocations_ GUARDED_BY(serial_) = 0;
  std::uint64_t policy_wall_ns_ GUARDED_BY(serial_) = 0;
  std::uint64_t policy_queue_len_sum_ GUARDED_BY(serial_) = 0;
  std::size_t policy_queue_len_max_ GUARDED_BY(serial_) = 0;

  std::vector<core::CompletionRecord> completions_ GUARDED_BY(serial_);
  std::vector<core::CompletionRecord> failures_ GUARDED_BY(serial_);
  std::function<void(const core::CompletionRecord&)> completion_hook_;
  // Per-request hooks, detached from the Request at submit() so they ride
  // by id instead of being copied through the queues and GPU Managers.
  std::unordered_map<std::int64_t, core::CompletionHook> request_hooks_
      GUARDED_BY(serial_);
  // Where each executing request runs (request id -> GPU), maintained at
  // dispatch/completion/abort so cancel_request() can find its target
  // without a fleet scan.
  std::unordered_map<std::int64_t, GpuId> executing_ GUARDED_BY(serial_);
  SimTime cancelled_execution_time_ GUARDED_BY(serial_) = 0;
  std::int64_t cancellations_ GUARDED_BY(serial_) = 0;
  ModelId tracked_model_;
  metrics::TimeWeightedAverage duplicates_meter_ GUARDED_BY(serial_);
  metrics::TimeSeries latency_series_ GUARDED_BY(serial_){minutes(1)};
  metrics::TimeSeries miss_series_ GUARDED_BY(serial_){minutes(1)};
};

}  // namespace gfaas::cluster
