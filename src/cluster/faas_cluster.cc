#include "cluster/faas_cluster.h"

#include "common/log.h"

namespace gfaas::cluster {

FaasCluster::FaasCluster(const ClusterConfig& config,
                         const models::ModelRegistry& registry)
    : registry_(registry) {
  cluster_ = std::make_unique<SimCluster>(config, registry);
  gateway_ = std::make_unique<faas::Gateway>(&cluster_->datastore(),
                                             &cluster_->simulator(), this);
  cluster_->engine().set_completion_hook([this](const core::CompletionRecord& record) {
    auto it = pending_.find(record.id.value());
    if (it == pending_.end()) return;
    auto done = std::move(it->second);
    pending_.erase(it);
    // The hook also fires for requests whose GPU died mid-run
    // (SchedulerEngine::kill_gpu): report the failure instead of
    // fabricating a successful invocation.
    if (record.failed) {
      done(Status::Unavailable("gpu-" + std::to_string(record.gpu.value()) +
                               " died while executing request " +
                               std::to_string(record.id.value())));
      return;
    }
    faas::InvocationResult result;
    result.latency = record.latency();
    result.executed_on = "gpu-" + std::to_string(record.gpu.value());
    result.output.content_type = "application/x-gfaas-inference";
    done(std::move(result));
  });
}

void FaasCluster::submit(const faas::FunctionSpec& spec, const faas::Payload& input,
                         std::function<void(StatusOr<faas::InvocationResult>)> done) {
  auto profile = registry_.get_by_name(spec.model_name);
  if (!profile.ok()) {
    done(profile.status());
    return;
  }
  core::Request request;
  request.id = RequestId(next_request_++);
  request.function = FunctionId(request.id.value());
  request.model = profile->id;
  request.batch = spec.batch_size > 0 ? spec.batch_size : 32;
  if (!input.shape.empty()) request.batch = input.shape.front();
  request.arrival = cluster_->simulator().now();
  request.function_name = spec.name;
  pending_[request.id.value()] = std::move(done);
  cluster_->engine().submit(std::move(request));
}

}  // namespace gfaas::cluster
