// Incrementally maintained cluster-state index for the scheduling engine.
//
// The paper's §VI scalability note requires the Scheduler to answer
// "which GPUs are idle" and "how loaded is this GPU" in time bounded by
// the answer, not by cluster size. This index keeps that promise by
// updating state at the three mutation points the engine already owns —
// dispatch, completion, and local-queue push/pop — instead of rebuilding
// views per policy invocation:
//
//   * idle GPUs, ordered by dispatch frequency (most-dispatched first,
//     ties by id): Algorithm 1's "sorted by frequency" input, O(#idle) to
//     enumerate, O(log #gpus) to maintain;
//   * idle GPUs with pending local-queue work, in the same order: the
//     serve-local head of Algorithm 1 (lines 2-5) as an O(1) lookup
//     instead of an idle-set scan per dispatch;
//   * busy GPUs in id order: O(#busy) to enumerate;
//   * per-GPU committed finish time + local-queue work aggregate: the two
//     integer terms of estimated_finish_time(), O(1) to read. SimTime is
//     integer microseconds, so the running local-work sum is exact (no
//     float drift against a per-invocation re-sum).
//
// Membership is dynamic (elastic fleets, src/autoscale): GPUs join with
// add_gpu, leave through fence -> remove_gpu. A fenced GPU keeps its
// physical idle/busy state but is excluded from both ordered sets, so the
// policies never see it as a dispatch target while it drains; remove_gpu
// retires the id permanently (ids are never reused).
#pragma once

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "common/id.h"
#include "common/time.h"

namespace gfaas::cluster {

class ClusterStateIndex {
 public:
  // Registers a GPU (initially idle, unfenced, zero dispatches). Ids must
  // be dense from 0, matching the engine's GPU numbering; retired ids
  // stay reserved, so new GPUs always get fresh ids.
  void add_gpu(GpuId gpu);

  // Total ids ever registered (including retired ones).
  std::size_t gpu_count() const { return gpus_.size(); }
  // Registered and not fenced: the GPUs the policies may target.
  std::size_t schedulable_count() const { return schedulable_count_; }
  std::size_t idle_count() const { return idle_.size(); }

  // --- membership transitions (elastic fleet) ---
  // Fences the GPU: it leaves the idle/serviceable sets and stops being a
  // dispatch target; physical state keeps updating while it drains.
  void fence(GpuId gpu);
  // Reverses fence (an aborted scale-down): the GPU rejoins the sets.
  void unfence(GpuId gpu);
  // Retires a drained GPU (must be fenced, idle, with no local work).
  void remove_gpu(GpuId gpu);
  bool is_fenced(GpuId gpu) const { return state(gpu).fenced; }
  bool is_registered(GpuId gpu) const {
    const auto index = static_cast<std::size_t>(gpu.value());
    return gpu.valid() && index < gpus_.size() && gpus_[index].registered;
  }

  // --- transitions (engine mutation points) ---
  void mark_busy(GpuId gpu);
  void mark_idle(GpuId gpu);
  // Counts a dispatch for the frequency ordering; reorders the ordered-set
  // entries if the GPU currently appears in them.
  void record_dispatch(GpuId gpu);
  void set_committed_finish(GpuId gpu, SimTime finish);
  // Adjusts the local-queue work aggregate (positive on push, negative on
  // pop of the corresponding request's inference time).
  void add_local_work(GpuId gpu, SimTime delta);
  // Tracks the local-queue request count behind first_idle_with_local_work.
  void add_local_request(GpuId gpu);
  void pop_local_request(GpuId gpu);

  // --- O(1) lookups ---
  bool is_idle(GpuId gpu) const { return state(gpu).idle; }
  std::int64_t dispatch_count(GpuId gpu) const { return state(gpu).dispatches; }
  SimTime committed_finish(GpuId gpu) const { return state(gpu).committed_finish; }
  SimTime local_work(GpuId gpu) const { return state(gpu).local_work; }
  std::int64_t local_pending(GpuId gpu) const { return state(gpu).local_pending; }

  // First GPU in idle order that is unfenced and has local-queue work
  // (invalid id if none): the serve-local target of Algorithm 1.
  GpuId first_idle_with_local_work() const;

  // --- enumerations ---
  // Schedulable idle GPUs, most-dispatched first, ties broken by ascending
  // id; O(#idle) off the incrementally ordered set.
  std::vector<GpuId> idle_gpus() const;
  // Registered busy GPUs in ascending id order. Derived from the per-GPU
  // flags in O(#gpus): since Algorithm 2 moved onto the cache location
  // index this is a cold diagnostic path, not worth an ordered set
  // maintained on every dispatch/completion transition.
  std::vector<GpuId> busy_gpus() const;

 private:
  struct PerGpu {
    bool registered = false;
    bool idle = true;
    bool fenced = false;
    std::int64_t dispatches = 0;
    SimTime committed_finish = 0;
    SimTime local_work = 0;
    std::int64_t local_pending = 0;
  };
  // (dispatches, id) ordered most-dispatched first, then id ascending.
  struct IdleOrder {
    bool operator()(const std::pair<std::int64_t, std::int64_t>& a,
                    const std::pair<std::int64_t, std::int64_t>& b) const {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    }
  };
  using OrderedSet = std::set<std::pair<std::int64_t, std::int64_t>, IdleOrder>;

  const PerGpu& state(GpuId gpu) const;
  PerGpu& state(GpuId gpu);
  // Inserts/erases the GPU in the ordered sets according to its flags.
  void enter_sets(const PerGpu& s, GpuId gpu);
  void leave_sets(const PerGpu& s, GpuId gpu);

  std::vector<PerGpu> gpus_;  // indexed by GpuId value
  // Idle, unfenced GPUs in dispatch-frequency order.
  OrderedSet idle_;
  // Subset of idle_ with local_pending > 0, same order.
  OrderedSet serviceable_;
  std::size_t schedulable_count_ = 0;
};

}  // namespace gfaas::cluster
