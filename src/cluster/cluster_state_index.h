// Incrementally maintained cluster-state index for the scheduling engine.
//
// The paper's §VI scalability note requires the Scheduler to answer
// "which GPUs are idle" and "how loaded is this GPU" in time bounded by
// the answer, not by cluster size. This index keeps that promise by
// updating state at the three mutation points the engine already owns —
// dispatch, completion, and local-queue push/pop — instead of rebuilding
// views per policy invocation:
//
//   * idle GPUs, ordered by dispatch frequency (most-dispatched first,
//     ties by id): Algorithm 1's "sorted by frequency" input, O(#idle) to
//     enumerate, O(log #gpus) to maintain;
//   * busy GPUs in id order: O(#busy) to enumerate;
//   * per-GPU committed finish time + local-queue work aggregate: the two
//     integer terms of estimated_finish_time(), O(1) to read. SimTime is
//     integer microseconds, so the running local-work sum is exact (no
//     float drift against a per-invocation re-sum).
#pragma once

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "common/id.h"
#include "common/time.h"

namespace gfaas::cluster {

class ClusterStateIndex {
 public:
  // Registers a GPU (initially idle, zero dispatches). Ids must be dense
  // from 0, matching the engine's GPU numbering.
  void add_gpu(GpuId gpu);

  std::size_t gpu_count() const { return gpus_.size(); }
  std::size_t idle_count() const { return idle_.size(); }

  // --- transitions (engine mutation points) ---
  void mark_busy(GpuId gpu);
  void mark_idle(GpuId gpu);
  // Counts a dispatch for the frequency ordering; reorders the idle set
  // entry if the GPU is currently idle.
  void record_dispatch(GpuId gpu);
  void set_committed_finish(GpuId gpu, SimTime finish);
  // Adjusts the local-queue work aggregate (positive on push, negative on
  // pop of the corresponding request's inference time).
  void add_local_work(GpuId gpu, SimTime delta);

  // --- O(1) lookups ---
  bool is_idle(GpuId gpu) const { return state(gpu).idle; }
  std::int64_t dispatch_count(GpuId gpu) const { return state(gpu).dispatches; }
  SimTime committed_finish(GpuId gpu) const { return state(gpu).committed_finish; }
  SimTime local_work(GpuId gpu) const { return state(gpu).local_work; }

  // --- enumerations ---
  // Idle GPUs, most-dispatched first, ties broken by ascending id;
  // O(#idle) off the incrementally ordered set.
  std::vector<GpuId> idle_gpus() const;
  // Busy GPUs in ascending id order. Derived from the per-GPU flags in
  // O(#gpus): since Algorithm 2 moved onto the cache location index this
  // is a cold diagnostic path, not worth an ordered set maintained on
  // every dispatch/completion transition.
  std::vector<GpuId> busy_gpus() const;

 private:
  struct PerGpu {
    bool idle = true;
    std::int64_t dispatches = 0;
    SimTime committed_finish = 0;
    SimTime local_work = 0;
  };
  // (dispatches, id) ordered most-dispatched first, then id ascending.
  struct IdleOrder {
    bool operator()(const std::pair<std::int64_t, std::int64_t>& a,
                    const std::pair<std::int64_t, std::int64_t>& b) const {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    }
  };

  const PerGpu& state(GpuId gpu) const;
  PerGpu& state(GpuId gpu);

  std::vector<PerGpu> gpus_;  // indexed by GpuId value
  std::set<std::pair<std::int64_t, std::int64_t>, IdleOrder> idle_;
};

}  // namespace gfaas::cluster
