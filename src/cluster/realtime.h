// Wall-clock executor: the same sim::Executor interface backed by a real
// timer thread, so the Scheduler / Cache Manager / GPU Manager stack runs
// unmodified against real time (the deployment mode; the discrete-event
// simulator is the evaluation mode).
//
// Threading model: all callbacks execute on the single internal worker
// thread, which is exactly the isolation the (single-threaded) engine
// expects. External threads hand work in via post() and synchronize with
// drain().
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>

#include "sim/simulator.h"

namespace gfaas::cluster {

class RealTimeExecutor final : public sim::Executor {
 public:
  // `time_scale` compresses time: a schedule_after(d) fires after
  // d / time_scale of wall time (e.g. 1000 = milliseconds become
  // microseconds). The reported now() stays in *simulated* units so
  // latency math matches the profiles.
  explicit RealTimeExecutor(double time_scale = 1.0);
  ~RealTimeExecutor() override;

  RealTimeExecutor(const RealTimeExecutor&) = delete;
  RealTimeExecutor& operator=(const RealTimeExecutor&) = delete;

  // Elapsed time since construction, in (scaled) microseconds.
  SimTime now() const override;

  std::uint64_t schedule_after(SimTime delay, std::function<void()> fn) override;
  bool cancel(std::uint64_t event_id) override;

  // Runs fn on the worker thread as soon as possible.
  std::uint64_t post(std::function<void()> fn) {
    return schedule_after(0, std::move(fn));
  }

  // Blocks until no events remain pending (due or future).
  void drain();

  std::size_t pending() const;

  // Lifetime counters (regression guards: fired + cancelled must account
  // for every schedule_after, and firing is O(log n) — the worker erases
  // the id index by key, never by scanning it).
  std::uint64_t fired_count() const;
  std::uint64_t cancelled_count() const;

 private:
  // Callback plus the schedule_after id it was registered under, so the
  // worker can erase the by_id_ entry with an O(log n) keyed lookup when
  // the event fires (erasing by value would be an O(n) scan per fire —
  // quadratic over a run).
  struct Scheduled {
    std::uint64_t id;
    std::function<void()> fn;
  };

  void worker_loop();
  std::chrono::steady_clock::time_point deadline_for(SimTime when) const;

  double time_scale_;
  std::chrono::steady_clock::time_point start_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable drained_cv_;
  // (fire time in scaled µs, sequence) -> scheduled callback.
  std::map<std::pair<SimTime, std::uint64_t>, Scheduled> events_;
  std::map<std::uint64_t, std::pair<SimTime, std::uint64_t>> by_id_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  std::uint64_t cancelled_ = 0;
  bool running_ = false;  // a callback is executing
  bool stop_ = false;
  std::thread worker_;
};

}  // namespace gfaas::cluster
