// Wall-clock executor: the same sim::Executor interface backed by a real
// timer thread, so the Scheduler / Cache Manager / GPU Manager stack runs
// unmodified against real time (the deployment mode; the discrete-event
// simulator is the evaluation mode).
//
// Threading model: all callbacks execute on the single internal worker
// thread, which is exactly the isolation the (single-threaded) engine
// expects. External threads hand work in via post() and synchronize with
// drain().
//
// post() is the ingestion fast path: immediate work skips the timed
// event map (two ordered-map inserts plus a keyed erase per fire) and
// goes onto a plain ready deque — one push, one hash-set insert — while
// keeping the global (when, seq) firing order against timed events and
// exact fired/cancelled accounting.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <thread>
#include <unordered_set>

#include "common/thread_annotations.h"
#include "sim/simulator.h"

namespace gfaas::cluster {

class RealTimeExecutor final : public sim::Executor {
 public:
  // `time_scale` compresses time: a schedule_after(d) fires after
  // d / time_scale of wall time (e.g. 1000 = milliseconds become
  // microseconds). The reported now() stays in *simulated* units so
  // latency math matches the profiles.
  explicit RealTimeExecutor(double time_scale = 1.0);
  ~RealTimeExecutor() override;

  RealTimeExecutor(const RealTimeExecutor&) = delete;
  RealTimeExecutor& operator=(const RealTimeExecutor&) = delete;

  // Elapsed time since construction, in (scaled) microseconds.
  SimTime now() const override;

  std::uint64_t schedule_after(SimTime delay, std::function<void()> fn) override;
  bool cancel(std::uint64_t event_id) override;

  // Runs fn on the worker thread as soon as possible, FIFO with respect
  // to other post() calls and ordered by (when, seq) against timed
  // events. Cancellable like any scheduled event until it runs.
  std::uint64_t post(std::function<void()> fn) override;

  // Blocks until no events remain pending (due or future).
  void drain();

  std::size_t pending() const;

  // Lifetime counters (regression guards: fired + cancelled must account
  // for every schedule_after AND post, and firing is O(log n) on the
  // timed path — the worker erases the id index by key, never by
  // scanning it — and O(1) amortized on the ready path).
  std::uint64_t fired_count() const;
  std::uint64_t cancelled_count() const;

 private:
  // Seam for tests/negative_compile: the probe reads guarded members
  // WITHOUT holding mu_ and must fail thread-safety analysis — which
  // proves the GUARDED_BY annotations below are actually present.
  friend class ThreadSafetyProbe;

  // Callback plus the schedule_after id it was registered under, so the
  // worker can erase the by_id_ entry with an O(log n) keyed lookup when
  // the event fires (erasing by value would be an O(n) scan per fire —
  // quadratic over a run).
  struct Scheduled {
    std::uint64_t id;
    std::function<void()> fn;
  };

  // A post()ed item: `when` is the now() observed at post time so the
  // worker can merge ready work with timed events in (when, seq) order
  // — post() keeps exactly the firing position schedule_after(0) had.
  struct Ready {
    std::uint64_t id;
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
  };

  void worker_loop();
  std::chrono::steady_clock::time_point deadline_for(SimTime when) const;

  double time_scale_;
  std::chrono::steady_clock::time_point start_;
  mutable common::Mutex mu_;
  common::CondVar cv_;
  common::CondVar drained_cv_;
  // (fire time in scaled µs, sequence) -> scheduled callback.
  std::map<std::pair<SimTime, std::uint64_t>, Scheduled> events_ GUARDED_BY(mu_);
  std::map<std::uint64_t, std::pair<SimTime, std::uint64_t>> by_id_
      GUARDED_BY(mu_);
  // post() fast path: FIFO deque of ready work plus the live-id set that
  // makes cancel O(1) (a cancelled entry stays in the deque as a
  // tombstone the worker scrubs; ready_live_.size() is the true count).
  std::deque<Ready> ready_ GUARDED_BY(mu_);
  std::unordered_set<std::uint64_t> ready_live_ GUARDED_BY(mu_);
  std::uint64_t next_id_ GUARDED_BY(mu_) = 1;
  std::uint64_t next_seq_ GUARDED_BY(mu_) = 0;
  std::uint64_t fired_ GUARDED_BY(mu_) = 0;
  std::uint64_t cancelled_ GUARDED_BY(mu_) = 0;
  bool running_ GUARDED_BY(mu_) = false;  // a callback is executing
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread worker_;
};

}  // namespace gfaas::cluster
