#include "cluster/realtime_cluster.h"

namespace gfaas::cluster {

RealTimeCluster::RealTimeCluster(const ClusterConfig& config,
                                 const models::ModelRegistry& registry,
                                 double time_scale)
    : executor_(std::make_unique<RealTimeExecutor>(time_scale)),
      assembly_(std::make_unique<ClusterAssembly>(executor_.get(), config, registry)) {}

RealTimeCluster::~RealTimeCluster() {
  // Stop the worker thread (drops still-pending events, joins) before the
  // assembly its callbacks point into is destroyed.
  executor_.reset();
}

}  // namespace gfaas::cluster
