#include "cluster/assembly.h"

#include "common/log.h"

namespace gfaas::cluster {

ClusterAssembly::ClusterAssembly(sim::Executor* executor, const ClusterConfig& config,
                                 const models::ModelRegistry& registry)
    : config_(config), executor_(executor) {
  GFAAS_CHECK(executor_ != nullptr);
  GFAAS_CHECK(config.nodes >= 1 && config.gpus_per_node >= 1);
  GFAAS_CHECK(config.node_specs.size() == 1 ||
              config.node_specs.size() == static_cast<std::size_t>(config.nodes))
      << "node_specs must have 1 entry or one per node";

  store_ = std::make_unique<datastore::KvStore>(executor_);
  cache_ = std::make_unique<cache::CacheManager>(config.cache_policy, store_.get());
  registry_ = std::make_unique<models::ModelRegistry>(registry);
  oracle_ = std::make_unique<models::LatencyOracle>(*registry_, config.latency_alpha);

  std::vector<gpu::VirtualGpu*> gpu_ptrs;
  std::vector<GpuManager*> manager_ptrs;
  std::int64_t next_gpu = 0;
  for (int node = 0; node < config.nodes; ++node) {
    const gpu::GpuSpec& spec = config.spec_for_node(node);
    gpu::PcieLink* shared_link = nullptr;
    if (config.shared_pcie_per_node) {
      links_.push_back(
          std::make_unique<gpu::PcieLink>(spec.pcie_gbps, spec.pcie_latency));
      shared_link = links_.back().get();
    }
    std::vector<gpu::VirtualGpu*> node_gpus;
    std::vector<GpuId> domain_members;
    for (int g = 0; g < config.gpus_per_node; ++g) {
      gpu::PcieLink* link = shared_link;
      if (link == nullptr) {
        links_.push_back(
            std::make_unique<gpu::PcieLink>(spec.pcie_gbps, spec.pcie_latency));
        link = links_.back().get();
      }
      const GpuId id(next_gpu++);
      gpus_.push_back(std::make_unique<gpu::VirtualGpu>(id, spec, link));
      cache_->add_gpu(id, gpus_.back()->memory_capacity());
      node_gpus.push_back(gpus_.back().get());
      gpu_ptrs.push_back(gpus_.back().get());
      domain_members.push_back(id);
    }
    domain_gpus_.push_back(std::move(domain_members));
    managers_.push_back(std::make_unique<GpuManager>(
        NodeId(node), executor_, store_.get(), cache_.get(), registry_.get(),
        oracle_.get(), node_gpus, config.execute_real_inference));
    manager_ptrs.push_back(managers_.back().get());
  }

  engine_ = std::make_unique<SchedulerEngine>(
      executor_, cache_.get(), oracle_.get(), gpu_ptrs, manager_ptrs,
      core::make_scheduler(config.policy, config.o3_limit));
}

ClusterAssembly::~ClusterAssembly() = default;

GpuId ClusterAssembly::add_gpu(const gpu::GpuSpec& spec) {
  const GpuId id(static_cast<std::int64_t>(gpus_.size()));
  links_.push_back(std::make_unique<gpu::PcieLink>(spec.pcie_gbps, spec.pcie_latency));
  gpus_.push_back(std::make_unique<gpu::VirtualGpu>(id, spec, links_.back().get()));
  cache_->add_gpu(id, gpus_.back()->memory_capacity());
  managers_.push_back(std::make_unique<GpuManager>(
      NodeId(static_cast<std::int64_t>(managers_.size())), executor_, store_.get(),
      cache_.get(), registry_.get(), oracle_.get(),
      std::vector<gpu::VirtualGpu*>{gpus_.back().get()},
      config_.execute_real_inference));
  engine_->add_gpu(gpus_.back().get(), managers_.back().get());
  domain_gpus_.push_back({id});
  return id;
}

const std::vector<GpuId>& ClusterAssembly::domain_gpus(std::size_t domain) const {
  GFAAS_CHECK(domain < domain_gpus_.size()) << "unknown domain " << domain;
  return domain_gpus_[domain];
}

void ClusterAssembly::kill_domain(std::size_t domain) {
  for (const GpuId gpu : domain_gpus(domain)) {
    if (engine_->is_registered(gpu)) engine_->kill_gpu(gpu);
  }
}

void ClusterAssembly::degrade_domain(std::size_t domain, double factor) {
  for (const GpuId gpu : domain_gpus(domain)) {
    if (engine_->is_registered(gpu)) engine_->degrade_gpu(gpu, factor);
  }
}

}  // namespace gfaas::cluster
