// GPU Manager (paper §III-C): per-node component that executes function
// requests on its GPUs on behalf of the FaaS functions.
//
// For each dispatched request the manager consults the global Cache
// Manager: on a hit it forwards the input to the existing GPU process; on
// a miss it asks for a victim list, kills the victims' processes, starts
// a new process and uploads the model, then runs the inference. It
// enforces one request per GPU at a time, publishes busy/idle status and
// estimated finish times to the Datastore, and reports per-request
// latency on completion — exactly the responsibilities Fig. 2 assigns it.
#pragma once

#include <functional>
#include <vector>

#include "cache/cache_manager.h"
#include "cluster/config.h"
#include "common/id.h"
#include "core/request.h"
#include "datastore/kv_store.h"
#include "gpu/virtual_gpu.h"
#include "models/latency_model.h"
#include "models/zoo.h"
#include "sim/simulator.h"
#include "tensor/model_builder.h"

namespace gfaas::cluster {

// Completion callback: the finished record flows back to the scheduling
// engine (and, through it, to the Gateway / metrics).
using CompletionCallback = std::function<void(const core::CompletionRecord&)>;

class GpuManager {
 public:
  GpuManager(NodeId node, sim::Executor* executor, datastore::KvStore* store,
             cache::CacheManager* cache, const models::ModelRegistry* registry,
             const models::LatencyOracle* oracle,
             std::vector<gpu::VirtualGpu*> gpus,
             bool execute_real_inference = false);

  NodeId node() const { return node_; }
  bool manages(GpuId gpu) const;

  // Starts `request` on `gpu` (must be one of this manager's idle GPUs).
  // `cache_hit` / `false_miss` / `via_local_queue` are the scheduler's
  // decision attributes recorded into the completion. Returns the
  // expected absolute finish time (used for finish-time estimation).
  StatusOr<SimTime> execute(const core::Request& request, GpuId gpu, bool false_miss,
                            bool via_local_queue, CompletionCallback done);

  // Aborts the request currently executing on `gpu` (the GPU died, or a
  // hedge loser is being cancelled): cancels the pending load/completion
  // event, forces the device idle, drops the execution pin, evicts a
  // half-loaded process (an interrupted upload must not linger as a
  // phantom cache entry), and returns the completion record marked failed
  // with `completed` stopped at the abort instant. The registered
  // CompletionCallback never fires for an aborted request — the caller
  // (SchedulerEngine kill_gpu / cancel_request) owns the notification.
  // Must be invoked strictly before the request's completion instant.
  StatusOr<core::CompletionRecord> abort(GpuId gpu);

  // Gray degradation (chaos): the GPU silently runs `factor`x slower —
  // loads and inferences stretch, but execute() still *returns* the
  // healthy profile-based finish estimate, so every scheduler estimate
  // built on it (committed finish, parking decisions) goes stale exactly
  // the way a real straggler's would. factor >= 1; 1 restores health.
  void set_slowdown(GpuId gpu, double factor);
  double slowdown(GpuId gpu) const;

  gpu::VirtualGpu& gpu_ref(GpuId gpu);
  const gpu::VirtualGpu& gpu_ref(GpuId gpu) const;

 private:
  // One executing request: what abort() needs to unwind the lambdas
  // execute() chains through the executor.
  struct InFlightExecution {
    core::Request request;
    core::CompletionRecord record;  // completed still unset
    std::uint64_t pending_event = 0;  // load-finish or completion event
  };

  void publish_status(GpuId gpu, bool busy, SimTime finish_time);
  void report_latency(const core::Request& request, SimTime latency);
  // Runs the scaled-down model for real when configured.
  void maybe_execute_real(const core::Request& request);

  NodeId node_;
  sim::Executor* executor_;
  datastore::KvStore* store_;
  cache::CacheManager* cache_;
  const models::ModelRegistry* registry_;
  const models::LatencyOracle* oracle_;
  std::vector<gpu::VirtualGpu*> gpus_;
  bool execute_real_;
  // Lazily built runtime models for real execution, by model id.
  std::unordered_map<std::int64_t, tensor::ModulePtr> runtime_models_;
  // In-flight executions by GPU id (one request per GPU at a time).
  std::unordered_map<std::int64_t, InFlightExecution> in_flight_;
  // Active gray-degradation factors by GPU id (absent = healthy).
  std::unordered_map<std::int64_t, double> slowdown_;
};

}  // namespace gfaas::cluster
