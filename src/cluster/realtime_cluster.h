// Deployment-mode cluster: the exact component stack SimCluster assembles
// (Datastore, Cache Manager, GPU Managers, Scheduler engine), wired to the
// wall-clock RealTimeExecutor instead of the discrete-event simulator.
//
// Threading contract (inherited from RealTimeExecutor): every component is
// single-threaded and runs exclusively on the executor's worker thread.
// External threads interact only through executor() — schedule_after() /
// post() are thread-safe — and synchronize with run_to_completion().
// Mutating the engine / cache / membership directly from an external
// thread while events are in flight is a data race; route such work
// through executor().post(). Construction happens before any event exists,
// so the constructor may run on any thread.
//
// `time_scale` compresses time: a delay of d simulated microseconds fires
// after d / time_scale wall microseconds, while now() (and therefore every
// latency/metric) stays in simulated units. time_scale = 1 is real-time
// deployment; large values replay hours of trace in seconds for
// integration testing (see autoscale::replay_with_autoscaler).
#pragma once

#include <memory>

#include "cluster/assembly.h"
#include "cluster/config.h"
#include "cluster/elastic_cluster.h"
#include "cluster/realtime.h"

namespace gfaas::cluster {

class RealTimeCluster final : public ElasticCluster {
 public:
  RealTimeCluster(const ClusterConfig& config, const models::ModelRegistry& registry,
                  double time_scale = 1.0);
  ~RealTimeCluster() override;

  RealTimeExecutor& realtime() { return *executor_; }
  datastore::KvStore& datastore() { return assembly_->datastore(); }
  cache::CacheManager& cache() { return assembly_->cache(); }
  const models::LatencyOracle& oracle() const { return assembly_->oracle(); }
  gpu::VirtualGpu& gpu(std::size_t index) { return assembly_->gpu(index); }
  std::size_t gpu_count() const { return assembly_->gpu_count(); }
  const ClusterConfig& config() const { return assembly_->config(); }

  // --- ElasticCluster ---
  sim::Executor& executor() override { return *executor_; }
  SchedulerEngine& engine() override { return assembly_->engine(); }
  const SchedulerEngine& engine() const override { return assembly_->engine(); }
  const cache::CacheManager& cache() const override { return assembly_->cache(); }
  GpuId add_gpu(const gpu::GpuSpec& spec) override { return assembly_->add_gpu(spec); }
  void fence_gpu(GpuId gpu) override { assembly_->engine().fence_gpu(gpu); }
  void unfence_gpu(GpuId gpu) override { assembly_->engine().unfence_gpu(gpu); }
  void remove_gpu(GpuId gpu) override { assembly_->engine().remove_gpu(gpu); }
  bool gpu_drained(GpuId gpu) const override { return assembly_->engine().drained(gpu); }
  void kill_gpu(GpuId gpu) override { assembly_->engine().kill_gpu(gpu); }
  std::size_t domain_count() const override { return assembly_->domain_count(); }
  const std::vector<GpuId>& domain_gpus(std::size_t domain) const override {
    return assembly_->domain_gpus(domain);
  }
  void kill_domain(std::size_t domain) override { assembly_->kill_domain(domain); }
  void degrade_domain(std::size_t domain, double factor) override {
    assembly_->degrade_domain(domain, factor);
  }
  // Blocks the calling thread until no events remain pending.
  void run_to_completion() override { executor_->drain(); }

 private:
  std::unique_ptr<RealTimeExecutor> executor_;
  std::unique_ptr<ClusterAssembly> assembly_;
};

}  // namespace gfaas::cluster
