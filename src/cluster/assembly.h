// Executor-agnostic assembly of the full component stack from Fig. 2:
// Datastore, Cache Manager, per-node GPU Managers and the Scheduler
// engine, wired to whatever sim::Executor the caller provides.
//
// SimCluster (evaluation mode, discrete-event simulator) and
// RealTimeCluster (deployment mode, wall-clock executor) both delegate
// their construction and dynamic-membership verbs here, so the two modes
// assemble identical stacks and can never drift apart structurally.
#pragma once

#include <memory>
#include <vector>

#include "cache/cache_manager.h"
#include "cluster/config.h"
#include "cluster/engine.h"
#include "datastore/kv_store.h"
#include "gpu/pcie.h"
#include "gpu/virtual_gpu.h"
#include "models/latency_model.h"
#include "models/zoo.h"

namespace gfaas::cluster {

class ClusterAssembly {
 public:
  ClusterAssembly(sim::Executor* executor, const ClusterConfig& config,
                  const models::ModelRegistry& registry);
  ~ClusterAssembly();

  datastore::KvStore& datastore() { return *store_; }
  cache::CacheManager& cache() { return *cache_; }
  const cache::CacheManager& cache() const { return *cache_; }
  SchedulerEngine& engine() { return *engine_; }
  const SchedulerEngine& engine() const { return *engine_; }
  const models::LatencyOracle& oracle() const { return *oracle_; }
  gpu::VirtualGpu& gpu(std::size_t index) { return *gpus_[index]; }
  std::size_t gpu_count() const { return gpus_.size(); }
  const ClusterConfig& config() const { return config_; }

  // Provisions one GPU as its own node (dedicated PCIe link and GPU
  // Manager) and joins it to the cache/engine. Ids are dense and never
  // reused; the VirtualGpu object stays owned (and addressable through
  // gpu()) after removal so post-run accounting can still read it.
  GpuId add_gpu(const gpu::GpuSpec& spec);

  // --- failure domains (src/chaos) ---
  // A domain is one node: its GPUs share the host PCIe link and the GPU
  // Manager, so correlated hardware faults (PSU, PCIe switch, host
  // kernel panic) take out the whole group at once. Autoscaler-added
  // GPUs are single-GPU nodes, i.e. each is its own domain. Domains are
  // never renumbered; a fully-killed domain simply has no registered
  // members left.
  std::size_t domain_count() const { return domain_gpus_.size(); }
  const std::vector<GpuId>& domain_gpus(std::size_t domain) const;
  // Chaos verb: kills every still-registered GPU of the domain in one
  // step (see SchedulerEngine::kill_gpu for per-GPU semantics). Members
  // already removed or killed are skipped.
  void kill_domain(std::size_t domain);
  // Chaos verb: gray-degrades (factor > 1) or heals (factor = 1) every
  // still-registered GPU of the domain — a correlated straggler (thermal
  // event, oversubscribed host) rather than a crash.
  void degrade_domain(std::size_t domain, double factor);

 private:
  ClusterConfig config_;
  sim::Executor* executor_;
  std::unique_ptr<datastore::KvStore> store_;
  std::unique_ptr<cache::CacheManager> cache_;
  std::unique_ptr<models::ModelRegistry> registry_;
  std::unique_ptr<models::LatencyOracle> oracle_;
  std::vector<std::unique_ptr<gpu::PcieLink>> links_;
  std::vector<std::unique_ptr<gpu::VirtualGpu>> gpus_;
  std::vector<std::unique_ptr<GpuManager>> managers_;
  std::vector<std::vector<GpuId>> domain_gpus_;  // domain ordinal -> members
  std::unique_ptr<SchedulerEngine> engine_;
};

}  // namespace gfaas::cluster
