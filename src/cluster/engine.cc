#include "cluster/engine.h"

#include <algorithm>
#include <chrono>

#include "common/log.h"
#include "telemetry/telemetry.h"

namespace gfaas::cluster {

// Instrument pointers resolved once at set_telemetry(); every hot-path
// record is then one null check plus wait-free atomic bumps.
struct SchedulerEngine::TelemetryHandles {
  telemetry::SpanRecorder* spans = nullptr;
  telemetry::Counter* dispatches = nullptr;
  telemetry::Counter* completions = nullptr;
  telemetry::Counter* failures = nullptr;
  telemetry::Counter* cancellations = nullptr;
  telemetry::Counter* execution_time_us = nullptr;
  telemetry::Counter* cancelled_execution_time_us = nullptr;
};

SchedulerEngine::SchedulerEngine(sim::Executor* executor, cache::CacheManager* cache,
                                 const models::LatencyOracle* oracle,
                                 std::vector<gpu::VirtualGpu*> gpus,
                                 std::vector<GpuManager*> managers,
                                 std::unique_ptr<core::SchedulingPolicy> policy)
    : executor_(executor),
      cache_(cache),
      oracle_(oracle),
      gpus_(std::move(gpus)),
      managers_(std::move(managers)),
      policy_(std::move(policy)),
      local_queues_(gpus_.size()) {
  GFAAS_CHECK(executor_ && cache_ && oracle_ && policy_);
  GFAAS_CHECK(!gpus_.empty() && !managers_.empty());
  for (const gpu::VirtualGpu* g : gpus_) index_.add_gpu(g->id());
}

SchedulerEngine::~SchedulerEngine() = default;

void SchedulerEngine::set_telemetry(telemetry::Telemetry* telemetry) {
  if (telemetry == nullptr) {
    tel_.reset();
    return;
  }
  auto handles = std::make_unique<TelemetryHandles>();
  telemetry::MetricRegistry& m = telemetry->metrics();
  handles->spans = &telemetry->spans();
  // Instrument names resolve through qualified(): on a sharded stack
  // every engine.* / cache.* series carries the owning shard's
  // `{shard=i}` label; on a single-engine stack qualified() is the
  // identity and the names below are the registry keys verbatim.
  handles->dispatches = m.counter(telemetry->qualified("engine.dispatches"));
  handles->completions = m.counter(telemetry->qualified("engine.completions"));
  handles->failures = m.counter(telemetry->qualified("engine.failures"));
  handles->cancellations =
      m.counter(telemetry->qualified("engine.cancellations"));
  handles->execution_time_us =
      m.counter(telemetry->qualified("engine.execution_time_us"));
  handles->cancelled_execution_time_us =
      m.counter(telemetry->qualified("engine.cancelled_execution_time_us"));
  tel_ = std::move(handles);
  // Point-in-time scheduler state the exporter samples each tick. The
  // gauge names are pre-qualified once; the probe itself allocates
  // nothing new per tick beyond the registry lookups it always did.
  struct ProbeNames {
    std::string queue_global, queue_local, in_flight, gpus_idle,
        gpus_schedulable, cache_hits, cache_misses, cache_evictions,
        cache_hit_ratio;
  };
  ProbeNames names{telemetry->qualified("engine.queue.global"),
                   telemetry->qualified("engine.queue.local"),
                   telemetry->qualified("engine.in_flight"),
                   telemetry->qualified("engine.gpus.idle"),
                   telemetry->qualified("engine.gpus.schedulable"),
                   telemetry->qualified("cache.hits"),
                   telemetry->qualified("cache.misses"),
                   telemetry->qualified("cache.evictions"),
                   telemetry->qualified("cache.hit_ratio")};
  telemetry->add_probe([this, names = std::move(names)](
                           telemetry::MetricRegistry& reg) {
    serial_.AssertHeld();  // probes run on the executor worker thread
    reg.gauge(names.queue_global)
        ->set(static_cast<double>(global_queue_.size()));
    reg.gauge(names.queue_local)
        ->set(static_cast<double>(local_queues_.total_pending()));
    reg.gauge(names.in_flight)->set(static_cast<double>(in_flight_));
    reg.gauge(names.gpus_idle)->set(static_cast<double>(idle_gpu_count()));
    reg.gauge(names.gpus_schedulable)
        ->set(static_cast<double>(schedulable_gpu_count()));
    const cache::CacheStats& cs = cache_->stats();
    reg.gauge(names.cache_hits)->set(static_cast<double>(cs.hits));
    reg.gauge(names.cache_misses)->set(static_cast<double>(cs.misses));
    reg.gauge(names.cache_evictions)->set(static_cast<double>(cs.evictions));
    reg.gauge(names.cache_hit_ratio)->set(1.0 - cs.miss_ratio());
  });
}

GpuManager& SchedulerEngine::manager_for(GpuId gpu) {
  for (GpuManager* m : managers_) {
    if (m->manages(gpu)) return *m;
  }
  GFAAS_CHECK(false) << "no manager for gpu " << gpu.value();
  __builtin_unreachable();
}

void SchedulerEngine::detach_hook(core::Request& request) {
  // Detach the per-request hook before the request is copied through the
  // queues and GPU Manager lambdas; it is re-attached to the completion
  // (or failure) by id in notify_request_hook().
  if (request.on_complete) {
    const bool inserted =
        request_hooks_.emplace(request.id.value(), std::move(request.on_complete))
            .second;
    GFAAS_CHECK(inserted) << "duplicate in-flight request id " << request.id.value();
    request.on_complete = nullptr;
  }
}

void SchedulerEngine::submit(core::Request request) {
  serial_.AssertHeld();
  detach_hook(request);
  global_queue_.push(std::move(request));
  run_policy();
}

void SchedulerEngine::add_gpu(gpu::VirtualGpu* gpu, GpuManager* manager) {
  serial_.AssertHeld();
  GFAAS_CHECK(gpu != nullptr && manager != nullptr && manager->manages(gpu->id()));
  gpus_.push_back(gpu);
  if (std::find(managers_.begin(), managers_.end(), manager) == managers_.end()) {
    managers_.push_back(manager);
  }
  index_.add_gpu(gpu->id());
  local_queues_.ensure_gpu_count(static_cast<std::size_t>(gpu->id().value()) + 1);
  // A scale-up during a backed-up queue must take effect immediately.
  run_policy();
}

void SchedulerEngine::fence_gpu(GpuId gpu) {
  serial_.AssertHeld();
  index_.fence(gpu);
  cache_->fence_gpu(gpu);
  // If the GPU is sitting idle over a non-empty local queue (fenced
  // between policy invocations), start the drain now; completions chain
  // the rest in on_completion().
  if (index_.is_idle(gpu) && index_.local_pending(gpu) > 0) {
    dispatch_from_local(gpu);
  }
}

void SchedulerEngine::unfence_gpu(GpuId gpu) {
  serial_.AssertHeld();
  cache_->unfence_gpu(gpu);
  index_.unfence(gpu);
  run_policy();
}

void SchedulerEngine::remove_gpu(GpuId gpu) {
  serial_.AssertHeld();
  GFAAS_CHECK(drained(gpu)) << "gpu " << gpu.value() << " removed before draining";
  index_.remove_gpu(gpu);
  cache_->remove_gpu(gpu);
}

SimTime SchedulerEngine::now() const { return executor_->now(); }

std::vector<GpuId> SchedulerEngine::idle_gpus() const {
  serial_.AssertHeld();
  // "Sorted by frequency": most-dispatched first (hot GPUs hold hot
  // models); ties by id for determinism. LB picks from the back, i.e. the
  // least-used idle GPU, which is classic load balancing. The index keeps
  // this ordering incrementally, so enumerating costs O(#idle).
  return index_.idle_gpus();
}

std::vector<GpuId> SchedulerEngine::busy_gpus() const {
  serial_.AssertHeld();
  return index_.busy_gpus();
}

SimTime SchedulerEngine::estimated_finish_time(GpuId gpu) const {
  serial_.AssertHeld();
  // In-flight work (committed at dispatch: load + inference), plus every
  // request already waiting in the local queue (§IV-A "and requests
  // already queued in its local queue"). Local-queue requests are cache
  // hits by construction, so only inference time accrues; the index keeps
  // that sum as a running aggregate, making this an O(1) lookup.
  return std::max(now(), index_.committed_finish(gpu)) + index_.local_work(gpu);
}

SimTime SchedulerEngine::load_time(ModelId model) const {
  auto t = oracle_->load_time(model);
  GFAAS_CHECK(t.ok()) << t.status().to_string();
  return *t;
}

SimTime SchedulerEngine::infer_time(ModelId model, std::int64_t batch) const {
  auto t = oracle_->infer_time(model, batch);
  GFAAS_CHECK(t.ok()) << t.status().to_string();
  return *t;
}

void SchedulerEngine::dispatch_from_global(RequestId request, GpuId gpu,
                                           bool false_miss) {
  serial_.AssertHeld();
  auto req = global_queue_.take(request);
  GFAAS_CHECK(req.ok()) << req.status().to_string();
  if (false_miss) ++false_misses_;
  start_execution(std::move(req).value(), gpu, false_miss, /*via_local_queue=*/false);
}

void SchedulerEngine::dispatch_from_local(GpuId gpu) {
  serial_.AssertHeld();
  auto req = local_queues_.pop_head(gpu);
  GFAAS_CHECK(req.has_value()) << "local queue of gpu " << gpu.value() << " empty";
  index_.add_local_work(gpu, -infer_time(req->model, req->batch));
  index_.pop_local_request(gpu);
  // Drop the pin taken at move time; execution re-pins for its duration.
  GFAAS_CHECK(cache_->unpin(gpu, req->model).ok());
  start_execution(std::move(*req), gpu, /*false_miss=*/false, /*via_local_queue=*/true);
}

void SchedulerEngine::move_to_local(RequestId request, GpuId gpu) {
  serial_.AssertHeld();
  auto req = global_queue_.take(request);
  GFAAS_CHECK(req.ok()) << req.status().to_string();
  // Pin so the model cannot be evicted while the request waits; the local
  // queue would otherwise lose its guaranteed hit.
  GFAAS_CHECK(cache_->pin(gpu, req->model).ok()) << "move to gpu without cached model";
  index_.add_local_work(gpu, infer_time(req->model, req->batch));
  index_.add_local_request(gpu);
  local_queues_.push(gpu, std::move(req).value());
}

void SchedulerEngine::start_execution(core::Request request, GpuId gpu, bool false_miss,
                                      bool via_local_queue) {
  // Transition the index before execute(): under the wall-clock executor
  // the completion callback can fire as soon as execute() schedules it,
  // and mark_idle() must never observe a GPU the index still thinks is
  // idle. Nothing reads the index between here and execute() returning,
  // so simulated runs are unaffected by the ordering.
  index_.record_dispatch(gpu);
  index_.mark_busy(gpu);
  ++in_flight_;
  executing_[request.id.value()] = gpu;
  if (tel_) {
    tel_->dispatches->add();
    tel_->spans->record(
        request.id.value(), telemetry::SpanEvent::kDispatch, now(),
        static_cast<std::int32_t>(gpu.value()),
        (via_local_queue ? 1 : 0) | (false_miss ? 2 : 0));
  }
  auto finish = manager_for(gpu).execute(
      request, gpu, false_miss, via_local_queue,
      [this](const core::CompletionRecord& record) {
        // Completions fire on the worker thread (directly under the
        // simulated executor, via the callback pool's re-post otherwise).
        serial_.AssertHeld();
        on_completion(record);
      });
  GFAAS_CHECK(finish.ok()) << "execute failed: " << finish.status().to_string();
  index_.set_committed_finish(gpu, *finish);
  update_duplicates_meter();
}

void SchedulerEngine::on_completion(const core::CompletionRecord& record) {
  GFAAS_CHECK(in_flight_ > 0);
  --in_flight_;
  executing_.erase(record.id.value());
  // The GPU Manager retired the inference before invoking us, so the GPU
  // is idle again as of this event.
  index_.mark_idle(record.gpu);
  completions_.push_back(record);
  latency_series_.add(record.completed, sim_to_seconds(record.latency()));
  if (!record.cache_hit) miss_series_.count(record.completed);
  if (tel_) {
    tel_->completions->add();
    tel_->execution_time_us->add(record.completed - record.dispatched);
    const std::int32_t gpu = static_cast<std::int32_t>(record.gpu.value());
    if (!record.cache_hit) {
      // The cold-load share of the execution, stamped at dispatch time
      // so the span sequence reads submit..dispatch -> load -> execute.
      tel_->spans->record(record.id.value(), telemetry::SpanEvent::kModelLoad,
                          record.dispatched, gpu, load_time(record.model));
    }
    tel_->spans->record(record.id.value(), telemetry::SpanEvent::kExecute,
                        record.completed, gpu, record.cache_hit ? 1 : 0);
  }
  if (completion_hook_) completion_hook_(record);
  notify_request_hook(record);
  update_duplicates_meter();
  // A draining GPU is invisible to the policy, so the engine serves out
  // its local queue directly — those requests pinned its cached models and
  // must finish here.
  if (index_.is_fenced(record.gpu) && index_.local_pending(record.gpu) > 0) {
    dispatch_from_local(record.gpu);
  }
  run_policy();
}

void SchedulerEngine::notify_request_hook(const core::CompletionRecord& record) {
  auto it = request_hooks_.find(record.id.value());
  if (it == request_hooks_.end()) return;
  // Detach before invoking: the hook may submit a follow-up request (the
  // Gateway admitting from its pending queue) and must never re-fire.
  core::CompletionHook hook = std::move(it->second);
  request_hooks_.erase(it);
  hook(record);
}

void SchedulerEngine::kill_gpu(GpuId gpu) {
  serial_.AssertHeld();
  GFAAS_CHECK(index_.is_registered(gpu)) << "kill of unknown gpu " << gpu.value();
  // Fence first: the dead GPU leaves the idle/location indexes, so the
  // policy re-runs below cannot target it. Unlike fence_gpu() this never
  // starts a local-queue drain — there is no GPU left to drain into.
  if (!index_.is_fenced(gpu)) {
    index_.fence(gpu);
    cache_->fence_gpu(gpu);
  }
  // Fail the in-flight request, if any: the GPU Manager unwinds the
  // execution and the hooks receive a failed record instead of silence.
  if (!index_.is_idle(gpu)) {
    auto aborted = manager_for(gpu).abort(gpu);
    GFAAS_CHECK(aborted.ok()) << aborted.status().to_string();
    GFAAS_CHECK(in_flight_ > 0);
    --in_flight_;
    executing_.erase(aborted->id.value());
    index_.mark_idle(gpu);
    failures_.push_back(*aborted);
    if (tel_) tel_->failures->add();
    if (completion_hook_) completion_hook_(*aborted);
    notify_request_hook(*aborted);
  }
  // Local-queue requests pinned this GPU's cached models; give the pins
  // back and let them rejoin the global queue (ids, deadlines and hooks
  // intact) so the policy re-places them on surviving GPUs.
  while (auto req = local_queues_.pop_head(gpu)) {
    index_.add_local_work(gpu, -infer_time(req->model, req->batch));
    index_.pop_local_request(gpu);
    GFAAS_CHECK(cache_->unpin(gpu, req->model).ok());
    global_queue_.push(std::move(*req));
  }
  GFAAS_CHECK(drained(gpu));
  index_.remove_gpu(gpu);
  cache_->remove_gpu(gpu);
  update_duplicates_meter();
  run_policy();
}

bool SchedulerEngine::cancel_request(RequestId id) {
  serial_.AssertHeld();
  GFAAS_CHECK(id.valid());
  // (1) Waiting in the global queue: drop it before any GPU commits.
  if (global_queue_.find(id) != nullptr) {
    GFAAS_CHECK(global_queue_.take(id).ok());
    request_hooks_.erase(id.value());
    return true;
  }
  // (2) Parked in a local queue: undo move_to_local — give back the pin
  // and the work/pending aggregates the move charged to the GPU.
  for (std::size_t i = 0; i < index_.gpu_count(); ++i) {
    const GpuId gpu(static_cast<std::int64_t>(i));
    if (!index_.is_registered(gpu) || local_queues_.empty(gpu)) continue;
    if (auto req = local_queues_.remove(gpu, id)) {
      index_.add_local_work(gpu, -infer_time(req->model, req->batch));
      index_.pop_local_request(gpu);
      GFAAS_CHECK(cache_->unpin(gpu, req->model).ok());
      request_hooks_.erase(id.value());
      return true;
    }
  }
  // (3) Executing: abort through the GPU Manager. Unlike kill_gpu the GPU
  // survives — it goes back to the idle set and can take waiting work
  // immediately. The aborted record is discarded (the winner's completion
  // is the result); only the wasted GPU-time is kept for the hedging
  // overhead metric.
  auto it = executing_.find(id.value());
  if (it == executing_.end()) return false;
  const GpuId gpu = it->second;
  auto aborted = manager_for(gpu).abort(gpu);
  GFAAS_CHECK(aborted.ok()) << aborted.status().to_string();
  GFAAS_CHECK(in_flight_ > 0);
  --in_flight_;
  executing_.erase(it);
  index_.mark_idle(gpu);
  cancelled_execution_time_ += aborted->completed - aborted->dispatched;
  ++cancellations_;
  if (tel_) {
    tel_->cancellations->add();
    tel_->cancelled_execution_time_us->add(aborted->completed -
                                           aborted->dispatched);
  }
  request_hooks_.erase(id.value());
  update_duplicates_meter();
  // Same serve-next chain as a completion: a draining GPU works through
  // its local queue, everyone else goes back to the policy.
  if (index_.is_fenced(gpu) && index_.local_pending(gpu) > 0) {
    dispatch_from_local(gpu);
  }
  run_policy();
  return true;
}

std::vector<core::Request> SchedulerEngine::steal_from_global(
    std::size_t max_count,
    const std::function<bool(const core::Request&)>& eligible) {
  serial_.AssertHeld();
  std::vector<core::Request> stolen;
  if (max_count == 0 || global_queue_.empty()) return stolen;
  // Walk backward from the tail to pick the victims (newest arrivals
  // first, skipping any the filter rejects), then extract in arrival
  // order so the returned batch replays into the thief's queue in the
  // order the requests arrived.
  std::vector<RequestId> victims;
  victims.reserve(std::min(max_count, global_queue_.size()));
  auto it = global_queue_.end();
  while (victims.size() < max_count && it != global_queue_.begin()) {
    --it;
    if (eligible != nullptr && !eligible(*it)) continue;
    victims.push_back(it->id);
  }
  stolen.reserve(victims.size());
  for (auto v = victims.rbegin(); v != victims.rend(); ++v) {
    auto req = global_queue_.take(*v);
    GFAAS_CHECK(req.ok()) << req.status().to_string();
    core::Request request = std::move(req).value();
    // The hook rides with the request: from this engine's point of view
    // the request was never here, so exactly-once delivery is now the
    // thief's obligation (killing THIS shard later cannot touch it).
    auto hook = request_hooks_.find(request.id.value());
    if (hook != request_hooks_.end()) {
      request.on_complete = std::move(hook->second);
      request_hooks_.erase(hook);
    }
    stolen.push_back(std::move(request));
  }
  return stolen;
}

bool SchedulerEngine::request_waiting(RequestId id) const {
  serial_.AssertHeld();
  if (global_queue_.find(id) != nullptr) return true;
  for (std::size_t i = 0; i < index_.gpu_count(); ++i) {
    const GpuId gpu(static_cast<std::int64_t>(i));
    if (!index_.is_registered(gpu)) continue;
    for (const core::Request& req : local_queues_.queued(gpu)) {
      if (req.id == id) return true;
    }
  }
  return false;
}

GpuId SchedulerEngine::hedge_dispatch(core::Request request, RequestId primary) {
  serial_.AssertHeld();
  GpuId target;
  bool target_cached = false;
  for (const GpuId gpu : cache_->locations(request.model)) {
    if (is_idle(gpu)) {
      target = gpu;
      target_cached = true;
      break;
    }
  }
  if (!target.valid()) {
    const auto idle = index_.idle_gpus();
    if (idle.empty()) return GpuId();
    target = idle.back();
  }
  // Only duplicate when the copy is expected to win. The scheduler's own
  // placement judged the primary's spot cheapest at the time, so an
  // unconditional hedge loses almost every race and just burns the idle
  // GPU. Re-run the comparison against the fleet as it stands NOW, with
  // one extra signal the placement never had: overdueness. A GPU whose
  // committed finish is already in the past while it is still busy is a
  // straggler — every believed number about it is a lie, and the amount
  // it is overdue is a *lower bound* on the extra delay (it is that late
  // and still running). So the primary's effective cost is the believed
  // queue-ahead work plus the overdueness of the GPU it sits on (an
  // executing primary has no queue ahead — only overdueness can justify
  // duplicating it). A primary still in the global queue has no committed
  // placement at all: always worth duplicating onto an idle GPU.
  const SimTime infer = infer_time(request.model, request.batch);
  const SimTime hedge_eta =
      (target_cached ? 0 : load_time(request.model)) + infer;
  SimTime effective = kSimTimeMax;
  const auto overdue_by = [this](GpuId gpu) {
    return std::max<SimTime>(0, now() - index_.committed_finish(gpu));
  };
  const auto ex = executing_.find(primary.value());
  if (ex != executing_.end()) {
    effective = overdue_by(ex->second);
  } else if (global_queue_.find(primary) == nullptr) {
    for (std::size_t i = 0; i < index_.gpu_count() && effective == kSimTimeMax;
         ++i) {
      const GpuId gpu(static_cast<std::int64_t>(i));
      if (!index_.is_registered(gpu) || local_queues_.empty(gpu)) continue;
      SimTime work = 0;
      for (const core::Request& req : local_queues_.queued(gpu)) {
        if (req.id == primary) {
          effective = work + overdue_by(gpu);
          break;
        }
        work += infer_time(req.model, req.batch);
      }
    }
    // Not executing, not global, not parked: the caller raced a terminal
    // transition; decline and let it re-check.
    if (effective == kSimTimeMax) return GpuId();
  }
  if (effective <= hedge_eta) return GpuId();
  detach_hook(request);
  start_execution(std::move(request), target, /*false_miss=*/false,
                  /*via_local_queue=*/false);
  return target;
}

void SchedulerEngine::update_duplicates_meter() {
  if (!tracked_model_.valid()) return;
  duplicates_meter_.set(now(),
                        static_cast<double>(cache_->duplicate_count(tracked_model_)));
}

void SchedulerEngine::run_policy() {
  if (policy_running_) return;
  policy_running_ = true;
  // Invoke when any idle GPU could take work (global or local queue).
  const bool has_work = !global_queue_.empty() || local_queues_.total_pending() > 0;
  if (has_work && index_.idle_count() > 0) {
    const std::size_t queue_len = global_queue_.size();
    ++policy_invocations_;
    policy_queue_len_sum_ += queue_len;
    policy_queue_len_max_ = std::max(policy_queue_len_max_, queue_len);
    const auto start = std::chrono::steady_clock::now();
    policy_->schedule(*this);
    policy_wall_ns_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  }
  policy_running_ = false;
}

}  // namespace gfaas::cluster
