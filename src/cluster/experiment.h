// Experiment runner: assembles a full simulated cluster (Fig. 2), replays
// a workload through it, and aggregates the evaluation metrics the paper
// reports — average latency (+variance/percentiles), cache miss ratio,
// GPU SM utilization, false miss ratio, and the average duplicate count
// of the most popular model.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/config.h"
#include "cluster/engine.h"
#include "trace/workload.h"

namespace gfaas::cluster {

struct ExperimentResult {
  std::string policy;
  std::size_t working_set = 0;
  std::size_t requests = 0;

  double avg_latency_s = 0;
  double latency_variance_s2 = 0;
  double p50_latency_s = 0;
  double p95_latency_s = 0;
  double p99_latency_s = 0;

  double miss_ratio = 0;        // misses / requests (per-dispatch)
  double false_miss_ratio = 0;  // false misses / requests
  double sm_utilization = 0;    // mean over GPUs of time-weighted SM use
  double avg_top_duplicates = 0;

  std::int64_t evictions = 0;
  std::int64_t model_loads = 0;
  double makespan_s = 0;
};

// Runs one experiment (deterministic for a given config + workload).
// `completions`, when non-null, receives the full completion-record
// stream (bench_seed_digest hashes it without a second simulation).
ExperimentResult run_experiment(const ClusterConfig& config,
                                const trace::Workload& workload,
                                std::vector<core::CompletionRecord>* completions = nullptr);

// A fully-assembled simulated cluster, for callers that need to drive the
// simulation themselves (examples, integration tests, the Gateway
// backend). Owns every component.
class SimCluster {
 public:
  SimCluster(const ClusterConfig& config, const models::ModelRegistry& registry);
  ~SimCluster();

  sim::Simulator& simulator() { return *simulator_; }
  datastore::KvStore& datastore() { return *store_; }
  cache::CacheManager& cache() { return *cache_; }
  SchedulerEngine& engine() { return *engine_; }
  const models::LatencyOracle& oracle() const { return *oracle_; }
  gpu::VirtualGpu& gpu(std::size_t index) { return *gpus_[index]; }
  std::size_t gpu_count() const { return gpus_.size(); }
  const ClusterConfig& config() const { return config_; }

  // Schedules all requests at their arrival times and runs to completion.
  // Returns the makespan (time of last completion).
  SimTime replay(const std::vector<core::Request>& requests);

  // --- elastic fleet membership (driven by autoscale::Autoscaler) ---
  // Provisions one GPU as its own node (dedicated PCIe link and GPU
  // Manager) and joins it to the cache/engine. Ids are dense and never
  // reused; the VirtualGpu object stays owned (and addressable through
  // gpu()) after removal so post-run accounting can still read it.
  GpuId add_gpu(const gpu::GpuSpec& spec);
  void fence_gpu(GpuId gpu) { engine_->fence_gpu(gpu); }
  void unfence_gpu(GpuId gpu) { engine_->unfence_gpu(gpu); }
  void remove_gpu(GpuId gpu) { engine_->remove_gpu(gpu); }
  bool gpu_drained(GpuId gpu) const { return engine_->drained(gpu); }

 private:
  ClusterConfig config_;
  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<datastore::KvStore> store_;
  std::unique_ptr<cache::CacheManager> cache_;
  std::unique_ptr<models::ModelRegistry> registry_;
  std::unique_ptr<models::LatencyOracle> oracle_;
  std::vector<std::unique_ptr<gpu::PcieLink>> links_;
  std::vector<std::unique_ptr<gpu::VirtualGpu>> gpus_;
  std::vector<std::unique_ptr<GpuManager>> managers_;
  std::unique_ptr<SchedulerEngine> engine_;
};

}  // namespace gfaas::cluster
