// Experiment runner: assembles a full simulated cluster (Fig. 2), replays
// a workload through it, and aggregates the evaluation metrics the paper
// reports — average latency (+variance/percentiles), cache miss ratio,
// GPU SM utilization, false miss ratio, and the average duplicate count
// of the most popular model.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/assembly.h"
#include "cluster/config.h"
#include "cluster/elastic_cluster.h"
#include "cluster/engine.h"
#include "trace/workload.h"

namespace gfaas::cluster {

struct ExperimentResult {
  std::string policy;
  std::size_t working_set = 0;
  std::size_t requests = 0;

  double avg_latency_s = 0;
  double latency_variance_s2 = 0;
  double p50_latency_s = 0;
  double p95_latency_s = 0;
  double p99_latency_s = 0;

  double miss_ratio = 0;        // misses / requests (per-dispatch)
  double false_miss_ratio = 0;  // false misses / requests
  double sm_utilization = 0;    // mean over GPUs of time-weighted SM use
  double avg_top_duplicates = 0;

  std::int64_t evictions = 0;
  std::int64_t model_loads = 0;
  double makespan_s = 0;
};

// Ingestion seam: how requests enter the engine during a replayed run.
// The factory receives the assembled cluster and returns the per-request
// submission function. The default (null) submits straight into the
// engine; bench_seed_digest --via-gateway interposes gateway::Gateway
// here to prove the serving layer is behavior-preserving, and callers
// may interpose any other front end the same way.
using IngestFactory =
    std::function<std::function<void(core::Request)>(ElasticCluster&)>;

// Bulk twin of IngestFactory: the returned function receives a whole
// same-arrival burst at once, the shape the concurrent ingestion path
// delivers (ConcurrentIngress drains a backlog into one
// Gateway::submit_batch). bench_seed_digest --via-gateway --batch uses
// this to prove bulk admission is decision-identical to per-request
// admission.
using BatchIngestFactory = std::function<std::function<void(
    std::vector<core::Request>)>(ElasticCluster&)>;

// Runs one experiment (deterministic for a given config + workload).
// `completions`, when non-null, receives the full completion-record
// stream (bench_seed_digest hashes it without a second simulation).
ExperimentResult run_experiment(
    const ClusterConfig& config, const trace::Workload& workload,
    std::vector<core::CompletionRecord>* completions = nullptr,
    const IngestFactory& ingest = nullptr);

// run_experiment with bulk ingestion: consecutive same-arrival requests
// enter as one burst through `ingest` (required). Metrics are aggregated
// identically to run_experiment.
ExperimentResult run_experiment_batched(
    const ClusterConfig& config, const trace::Workload& workload,
    std::vector<core::CompletionRecord>* completions,
    const BatchIngestFactory& ingest);

// A fully-assembled simulated cluster, for callers that need to drive the
// simulation themselves (examples, integration tests, the Gateway
// backend). Owns every component. This is the evaluation-mode
// ElasticCluster; cluster::RealTimeCluster is the deployment-mode twin.
class SimCluster final : public ElasticCluster {
 public:
  SimCluster(const ClusterConfig& config, const models::ModelRegistry& registry);
  ~SimCluster() override;

  sim::Simulator& simulator() { return *simulator_; }
  datastore::KvStore& datastore() { return assembly_->datastore(); }
  cache::CacheManager& cache() { return assembly_->cache(); }
  const models::LatencyOracle& oracle() const { return assembly_->oracle(); }
  gpu::VirtualGpu& gpu(std::size_t index) { return assembly_->gpu(index); }
  std::size_t gpu_count() const { return assembly_->gpu_count(); }
  const ClusterConfig& config() const { return assembly_->config(); }

  // Schedules all requests at their arrival times and runs to completion.
  // Returns the makespan (time of last completion). `submit`, when given,
  // replaces direct engine submission (the ingestion seam above).
  SimTime replay(const std::vector<core::Request>& requests);
  SimTime replay(const std::vector<core::Request>& requests,
                 const std::function<void(core::Request)>& submit);

  // Bulk replay: consecutive requests sharing an arrival time are handed
  // to `submit` as one burst in a single simulator event. Because every
  // submission event is scheduled upfront (lowest sequence numbers),
  // same-time submissions already fire back-to-back before any same-time
  // completion — so grouping them preserves engine behavior exactly;
  // only the ingestion call shape changes.
  SimTime replay_batched(
      const std::vector<core::Request>& requests,
      const std::function<void(std::vector<core::Request>)>& submit);

  // --- ElasticCluster (elastic membership driven by autoscale::Autoscaler) ---
  sim::Executor& executor() override { return *simulator_; }
  SchedulerEngine& engine() override { return assembly_->engine(); }
  const SchedulerEngine& engine() const override { return assembly_->engine(); }
  const cache::CacheManager& cache() const override { return assembly_->cache(); }
  GpuId add_gpu(const gpu::GpuSpec& spec) override { return assembly_->add_gpu(spec); }
  void fence_gpu(GpuId gpu) override { assembly_->engine().fence_gpu(gpu); }
  void unfence_gpu(GpuId gpu) override { assembly_->engine().unfence_gpu(gpu); }
  void remove_gpu(GpuId gpu) override { assembly_->engine().remove_gpu(gpu); }
  bool gpu_drained(GpuId gpu) const override { return assembly_->engine().drained(gpu); }
  void kill_gpu(GpuId gpu) override { assembly_->engine().kill_gpu(gpu); }
  std::size_t domain_count() const override { return assembly_->domain_count(); }
  const std::vector<GpuId>& domain_gpus(std::size_t domain) const override {
    return assembly_->domain_gpus(domain);
  }
  void kill_domain(std::size_t domain) override { assembly_->kill_domain(domain); }
  void degrade_domain(std::size_t domain, double factor) override {
    assembly_->degrade_domain(domain, factor);
  }
  void run_to_completion() override { simulator_->run(); }

 private:
  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<ClusterAssembly> assembly_;
};

}  // namespace gfaas::cluster
