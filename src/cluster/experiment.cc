#include "cluster/experiment.h"

#include <algorithm>
#include <utility>

#include "common/log.h"
#include "metrics/stats.h"

namespace gfaas::cluster {
namespace {

// Shared metric aggregation for both ingestion shapes: the numbers are
// functions of the completion stream and the assembled cluster only, not
// of how requests entered.
ExperimentResult aggregate_result(
    SimCluster& cluster, const trace::Workload& workload, SimTime makespan,
    std::vector<core::CompletionRecord>* completions_out) {
  const auto& completions = cluster.engine().completions();
  GFAAS_CHECK(completions.size() == workload.requests.size());

  metrics::StreamingStats latency;
  metrics::Histogram latency_hist(/*min=*/100.0, /*max=*/1e10);
  std::int64_t misses = 0;
  for (const auto& record : completions) {
    latency.add(sim_to_seconds(record.latency()));
    latency_hist.add(static_cast<double>(record.latency()));
    if (!record.cache_hit) ++misses;
  }

  ExperimentResult result;
  result.policy = cluster.engine().policy().name();
  result.working_set = workload.registry.size();
  result.requests = completions.size();
  result.avg_latency_s = latency.mean();
  result.latency_variance_s2 = latency.sample_variance();
  result.p50_latency_s = latency_hist.p50() / 1e6;
  result.p95_latency_s = latency_hist.p95() / 1e6;
  result.p99_latency_s = latency_hist.p99() / 1e6;
  result.miss_ratio =
      static_cast<double>(misses) / static_cast<double>(completions.size());
  result.false_miss_ratio = static_cast<double>(cluster.engine().false_misses()) /
                            static_cast<double>(completions.size());

  double util = 0;
  std::int64_t evictions = 0, loads = 0;
  for (std::size_t g = 0; g < cluster.gpu_count(); ++g) {
    util += cluster.gpu(g).sm_utilization(makespan);
    evictions += cluster.gpu(g).counters().evictions;
    loads += cluster.gpu(g).counters().loads;
  }
  result.sm_utilization = util / static_cast<double>(cluster.gpu_count());
  result.evictions = evictions;
  result.model_loads = loads;
  result.avg_top_duplicates = cluster.engine().average_top_duplicates(makespan);
  result.makespan_s = sim_to_seconds(makespan);
  if (completions_out != nullptr) *completions_out = completions;
  return result;
}

}  // namespace

SimCluster::SimCluster(const ClusterConfig& config,
                       const models::ModelRegistry& registry)
    : simulator_(std::make_unique<sim::Simulator>()),
      assembly_(std::make_unique<ClusterAssembly>(simulator_.get(), config, registry)) {}

SimCluster::~SimCluster() = default;

SimTime SimCluster::replay(const std::vector<core::Request>& requests) {
  return replay(requests,
                [this](core::Request req) { engine().submit(std::move(req)); });
}

SimTime SimCluster::replay(const std::vector<core::Request>& requests,
                           const std::function<void(core::Request)>& submit) {
  for (const core::Request& req : requests) {
    simulator_->schedule_at(req.arrival, [&submit, req]() { submit(req); });
  }
  simulator_->run();
  GFAAS_CHECK(engine().pending() == 0)
      << engine().pending() << " requests stranded after replay";
  SimTime makespan = 0;
  for (const auto& record : engine().completions()) {
    makespan = std::max(makespan, record.completed);
  }
  return makespan;
}

SimTime SimCluster::replay_batched(
    const std::vector<core::Request>& requests,
    const std::function<void(std::vector<core::Request>)>& submit) {
  std::size_t i = 0;
  while (i < requests.size()) {
    std::size_t j = i + 1;
    while (j < requests.size() && requests[j].arrival == requests[i].arrival) {
      ++j;
    }
    std::vector<core::Request> burst(requests.begin() + i, requests.begin() + j);
    simulator_->schedule_at(
        requests[i].arrival,
        [&submit, burst = std::move(burst)]() mutable { submit(std::move(burst)); });
    i = j;
  }
  simulator_->run();
  GFAAS_CHECK(engine().pending() == 0)
      << engine().pending() << " requests stranded after replay";
  SimTime makespan = 0;
  for (const auto& record : engine().completions()) {
    makespan = std::max(makespan, record.completed);
  }
  return makespan;
}

ExperimentResult run_experiment(const ClusterConfig& config,
                                const trace::Workload& workload,
                                std::vector<core::CompletionRecord>* completions_out,
                                const IngestFactory& ingest) {
  SimCluster cluster(config, workload.registry);
  cluster.engine().track_duplicates_of(workload.top_model);

  const SimTime makespan =
      ingest ? cluster.replay(workload.requests, ingest(cluster))
             : cluster.replay(workload.requests);
  return aggregate_result(cluster, workload, makespan, completions_out);
}

ExperimentResult run_experiment_batched(
    const ClusterConfig& config, const trace::Workload& workload,
    std::vector<core::CompletionRecord>* completions_out,
    const BatchIngestFactory& ingest) {
  GFAAS_CHECK(ingest != nullptr);
  SimCluster cluster(config, workload.registry);
  cluster.engine().track_duplicates_of(workload.top_model);

  const SimTime makespan =
      cluster.replay_batched(workload.requests, ingest(cluster));
  return aggregate_result(cluster, workload, makespan, completions_out);
}

}  // namespace gfaas::cluster
