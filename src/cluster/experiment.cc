#include "cluster/experiment.h"

#include <algorithm>

#include "common/log.h"
#include "metrics/stats.h"

namespace gfaas::cluster {

SimCluster::SimCluster(const ClusterConfig& config,
                       const models::ModelRegistry& registry)
    : config_(config) {
  GFAAS_CHECK(config.nodes >= 1 && config.gpus_per_node >= 1);
  GFAAS_CHECK(config.node_specs.size() == 1 ||
              config.node_specs.size() == static_cast<std::size_t>(config.nodes))
      << "node_specs must have 1 entry or one per node";

  simulator_ = std::make_unique<sim::Simulator>();
  store_ = std::make_unique<datastore::KvStore>(simulator_.get());
  cache_ = std::make_unique<cache::CacheManager>(config.cache_policy, store_.get());
  registry_ = std::make_unique<models::ModelRegistry>(registry);
  oracle_ = std::make_unique<models::LatencyOracle>(*registry_, config.latency_alpha);

  std::vector<gpu::VirtualGpu*> gpu_ptrs;
  std::vector<GpuManager*> manager_ptrs;
  std::int64_t next_gpu = 0;
  for (int node = 0; node < config.nodes; ++node) {
    const gpu::GpuSpec& spec = config.spec_for_node(node);
    gpu::PcieLink* shared_link = nullptr;
    if (config.shared_pcie_per_node) {
      links_.push_back(
          std::make_unique<gpu::PcieLink>(spec.pcie_gbps, spec.pcie_latency));
      shared_link = links_.back().get();
    }
    std::vector<gpu::VirtualGpu*> node_gpus;
    for (int g = 0; g < config.gpus_per_node; ++g) {
      gpu::PcieLink* link = shared_link;
      if (link == nullptr) {
        links_.push_back(
            std::make_unique<gpu::PcieLink>(spec.pcie_gbps, spec.pcie_latency));
        link = links_.back().get();
      }
      const GpuId id(next_gpu++);
      gpus_.push_back(std::make_unique<gpu::VirtualGpu>(id, spec, link));
      cache_->add_gpu(id, gpus_.back()->memory_capacity());
      node_gpus.push_back(gpus_.back().get());
      gpu_ptrs.push_back(gpus_.back().get());
    }
    managers_.push_back(std::make_unique<GpuManager>(
        NodeId(node), simulator_.get(), store_.get(), cache_.get(), registry_.get(),
        oracle_.get(), node_gpus, config.execute_real_inference));
    manager_ptrs.push_back(managers_.back().get());
  }

  engine_ = std::make_unique<SchedulerEngine>(
      simulator_.get(), cache_.get(), oracle_.get(), gpu_ptrs, manager_ptrs,
      core::make_scheduler(config.policy, config.o3_limit));
}

SimCluster::~SimCluster() = default;

GpuId SimCluster::add_gpu(const gpu::GpuSpec& spec) {
  const GpuId id(static_cast<std::int64_t>(gpus_.size()));
  links_.push_back(std::make_unique<gpu::PcieLink>(spec.pcie_gbps, spec.pcie_latency));
  gpus_.push_back(std::make_unique<gpu::VirtualGpu>(id, spec, links_.back().get()));
  cache_->add_gpu(id, gpus_.back()->memory_capacity());
  managers_.push_back(std::make_unique<GpuManager>(
      NodeId(static_cast<std::int64_t>(managers_.size())), simulator_.get(),
      store_.get(), cache_.get(), registry_.get(), oracle_.get(),
      std::vector<gpu::VirtualGpu*>{gpus_.back().get()},
      config_.execute_real_inference));
  engine_->add_gpu(gpus_.back().get(), managers_.back().get());
  return id;
}

SimTime SimCluster::replay(const std::vector<core::Request>& requests) {
  for (const core::Request& req : requests) {
    simulator_->schedule_at(req.arrival,
                            [this, req]() { engine_->submit(req); });
  }
  simulator_->run();
  GFAAS_CHECK(engine_->pending() == 0)
      << engine_->pending() << " requests stranded after replay";
  SimTime makespan = 0;
  for (const auto& record : engine_->completions()) {
    makespan = std::max(makespan, record.completed);
  }
  return makespan;
}

ExperimentResult run_experiment(const ClusterConfig& config,
                                const trace::Workload& workload,
                                std::vector<core::CompletionRecord>* completions_out) {
  SimCluster cluster(config, workload.registry);
  cluster.engine().track_duplicates_of(workload.top_model);

  const SimTime makespan = cluster.replay(workload.requests);

  const auto& completions = cluster.engine().completions();
  GFAAS_CHECK(completions.size() == workload.requests.size());

  metrics::StreamingStats latency;
  metrics::Histogram latency_hist(/*min=*/100.0, /*max=*/1e10);
  std::int64_t misses = 0;
  for (const auto& record : completions) {
    latency.add(sim_to_seconds(record.latency()));
    latency_hist.add(static_cast<double>(record.latency()));
    if (!record.cache_hit) ++misses;
  }

  ExperimentResult result;
  result.policy = cluster.engine().policy().name();
  result.working_set = workload.registry.size();
  result.requests = completions.size();
  result.avg_latency_s = latency.mean();
  result.latency_variance_s2 = latency.sample_variance();
  result.p50_latency_s = latency_hist.p50() / 1e6;
  result.p95_latency_s = latency_hist.p95() / 1e6;
  result.p99_latency_s = latency_hist.p99() / 1e6;
  result.miss_ratio =
      static_cast<double>(misses) / static_cast<double>(completions.size());
  result.false_miss_ratio = static_cast<double>(cluster.engine().false_misses()) /
                            static_cast<double>(completions.size());

  double util = 0;
  std::int64_t evictions = 0, loads = 0;
  for (std::size_t g = 0; g < cluster.gpu_count(); ++g) {
    util += cluster.gpu(g).sm_utilization(makespan);
    evictions += cluster.gpu(g).counters().evictions;
    loads += cluster.gpu(g).counters().loads;
  }
  result.sm_utilization = util / static_cast<double>(cluster.gpu_count());
  result.evictions = evictions;
  result.model_loads = loads;
  result.avg_top_duplicates = cluster.engine().average_top_duplicates(makespan);
  result.makespan_s = sim_to_seconds(makespan);
  if (completions_out != nullptr) *completions_out = completions;
  return result;
}

}  // namespace gfaas::cluster
