// The engine-level seam between the elastic fleet controller and a
// running cluster.
//
// The Autoscaler (src/autoscale) programs exclusively against this
// interface: it observes the SchedulerEngine and CacheManager, schedules
// its evaluation ticks on the cluster's Executor, and mutates GPU
// membership through the add/fence/remove verbs. Nothing in it names an
// executor implementation, so the same controller + ScalingPolicy code
// drives both execution modes:
//
//   * evaluation mode  — SimCluster on the discrete-event sim::Simulator
//     (bit-reproducible; what every paper figure runs on);
//   * deployment mode  — RealTimeCluster on cluster::RealTimeExecutor
//     (wall clock, optionally compressed via time_scale).
#pragma once

#include <cstddef>
#include <vector>

#include "cache/cache_manager.h"
#include "cluster/engine.h"
#include "gpu/gpu_spec.h"
#include "sim/simulator.h"

namespace gfaas::cluster {

class ElasticCluster {
 public:
  virtual ~ElasticCluster() = default;

  // Time source and deferred-execution engine everything runs on.
  virtual sim::Executor& executor() = 0;
  virtual SchedulerEngine& engine() = 0;
  virtual const SchedulerEngine& engine() const = 0;
  virtual const cache::CacheManager& cache() const = 0;

  // --- dynamic GPU membership ---
  // Provisions one GPU as its own node (dedicated link and GPU Manager)
  // and joins it to the cache/engine. Ids are dense and never reused.
  virtual GpuId add_gpu(const gpu::GpuSpec& spec) = 0;
  virtual void fence_gpu(GpuId gpu) = 0;
  virtual void unfence_gpu(GpuId gpu) = 0;
  virtual void remove_gpu(GpuId gpu) = 0;
  virtual bool gpu_drained(GpuId gpu) const = 0;
  // Chaos verb (fault-injection harness): the GPU dies mid-run — the
  // in-flight request fails through its completion hooks, local-queue
  // requests rejoin the global queue, and the GPU is retired.
  virtual void kill_gpu(GpuId gpu) = 0;

  // --- failure domains (correlated chaos, src/chaos) ---
  // A domain groups GPUs that fail together — one node's worth (shared
  // host PCIe link + GPU Manager). Domain ordinals are stable for a run;
  // a fully-killed domain keeps its ordinal with no registered members.
  virtual std::size_t domain_count() const = 0;
  virtual const std::vector<GpuId>& domain_gpus(std::size_t domain) const = 0;
  // Kills every still-registered member of the domain in one step.
  virtual void kill_domain(std::size_t domain) = 0;
  // Gray-degrades (factor > 1) or heals (factor = 1) every
  // still-registered member: executions stretch by `factor` while the
  // scheduler keeps seeing healthy estimates.
  virtual void degrade_domain(std::size_t domain, double factor) = 0;

  // Runs (simulated) or waits (wall clock) until every scheduled event has
  // fired and no further work is outstanding.
  virtual void run_to_completion() = 0;
};

}  // namespace gfaas::cluster
