#include "cluster/cluster_state_index.h"

#include "common/log.h"

namespace gfaas::cluster {

const ClusterStateIndex::PerGpu& ClusterStateIndex::state(GpuId gpu) const {
  const auto index = static_cast<std::size_t>(gpu.value());
  GFAAS_CHECK(gpu.valid() && index < gpus_.size()) << "unknown gpu " << gpu.value();
  GFAAS_CHECK(gpus_[index].registered) << "gpu " << gpu.value() << " was removed";
  return gpus_[index];
}

ClusterStateIndex::PerGpu& ClusterStateIndex::state(GpuId gpu) {
  return const_cast<PerGpu&>(static_cast<const ClusterStateIndex*>(this)->state(gpu));
}

void ClusterStateIndex::enter_sets(const PerGpu& s, GpuId gpu) {
  if (!s.idle || s.fenced) return;
  GFAAS_CHECK(idle_.emplace(s.dispatches, gpu.value()).second);
  if (s.local_pending > 0) {
    GFAAS_CHECK(serviceable_.emplace(s.dispatches, gpu.value()).second);
  }
}

void ClusterStateIndex::leave_sets(const PerGpu& s, GpuId gpu) {
  if (!s.idle || s.fenced) return;
  GFAAS_CHECK(idle_.erase({s.dispatches, gpu.value()}) == 1);
  if (s.local_pending > 0) {
    GFAAS_CHECK(serviceable_.erase({s.dispatches, gpu.value()}) == 1);
  }
}

void ClusterStateIndex::add_gpu(GpuId gpu) {
  GFAAS_CHECK(gpu.valid());
  GFAAS_CHECK(static_cast<std::size_t>(gpu.value()) == gpus_.size())
      << "gpu ids must be registered densely from 0 (ids are never reused)";
  gpus_.emplace_back();
  gpus_.back().registered = true;
  ++schedulable_count_;
  enter_sets(gpus_.back(), gpu);
}

void ClusterStateIndex::fence(GpuId gpu) {
  PerGpu& s = state(gpu);
  GFAAS_CHECK(!s.fenced) << "gpu " << gpu.value() << " already fenced";
  leave_sets(s, gpu);
  s.fenced = true;
  --schedulable_count_;
}

void ClusterStateIndex::unfence(GpuId gpu) {
  PerGpu& s = state(gpu);
  GFAAS_CHECK(s.fenced) << "gpu " << gpu.value() << " is not fenced";
  s.fenced = false;
  ++schedulable_count_;
  enter_sets(s, gpu);
}

void ClusterStateIndex::remove_gpu(GpuId gpu) {
  PerGpu& s = state(gpu);
  GFAAS_CHECK(s.fenced) << "gpu " << gpu.value() << " must be fenced before removal";
  GFAAS_CHECK(s.idle && s.local_pending == 0 && s.local_work == 0)
      << "gpu " << gpu.value() << " removed before draining";
  s.registered = false;
}

void ClusterStateIndex::mark_busy(GpuId gpu) {
  PerGpu& s = state(gpu);
  GFAAS_CHECK(s.idle) << "gpu " << gpu.value() << " already busy";
  leave_sets(s, gpu);
  s.idle = false;
}

void ClusterStateIndex::mark_idle(GpuId gpu) {
  PerGpu& s = state(gpu);
  GFAAS_CHECK(!s.idle) << "gpu " << gpu.value() << " already idle";
  s.idle = true;
  enter_sets(s, gpu);
}

void ClusterStateIndex::record_dispatch(GpuId gpu) {
  PerGpu& s = state(gpu);
  leave_sets(s, gpu);
  ++s.dispatches;
  enter_sets(s, gpu);
}

void ClusterStateIndex::set_committed_finish(GpuId gpu, SimTime finish) {
  state(gpu).committed_finish = finish;
}

void ClusterStateIndex::add_local_work(GpuId gpu, SimTime delta) {
  PerGpu& s = state(gpu);
  s.local_work += delta;
  GFAAS_CHECK(s.local_work >= 0)
      << "negative local-queue work aggregate on gpu " << gpu.value();
}

void ClusterStateIndex::add_local_request(GpuId gpu) {
  PerGpu& s = state(gpu);
  if (++s.local_pending == 1 && s.idle && !s.fenced) {
    GFAAS_CHECK(serviceable_.emplace(s.dispatches, gpu.value()).second);
  }
}

void ClusterStateIndex::pop_local_request(GpuId gpu) {
  PerGpu& s = state(gpu);
  GFAAS_CHECK(s.local_pending > 0)
      << "local-queue count underflow on gpu " << gpu.value();
  if (--s.local_pending == 0 && s.idle && !s.fenced) {
    GFAAS_CHECK(serviceable_.erase({s.dispatches, gpu.value()}) == 1);
  }
}

GpuId ClusterStateIndex::first_idle_with_local_work() const {
  if (serviceable_.empty()) return GpuId();
  return GpuId(serviceable_.begin()->second);
}

std::vector<GpuId> ClusterStateIndex::idle_gpus() const {
  std::vector<GpuId> out;
  out.reserve(idle_.size());
  for (const auto& [dispatches, id] : idle_) out.push_back(GpuId(id));
  return out;
}

std::vector<GpuId> ClusterStateIndex::busy_gpus() const {
  std::vector<GpuId> out;
  for (std::size_t id = 0; id < gpus_.size(); ++id) {
    if (gpus_[id].registered && !gpus_[id].idle) {
      out.push_back(GpuId(static_cast<std::int64_t>(id)));
    }
  }
  return out;
}

}  // namespace gfaas::cluster
