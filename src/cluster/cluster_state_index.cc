#include "cluster/cluster_state_index.h"

#include "common/log.h"

namespace gfaas::cluster {

const ClusterStateIndex::PerGpu& ClusterStateIndex::state(GpuId gpu) const {
  const auto index = static_cast<std::size_t>(gpu.value());
  GFAAS_CHECK(gpu.valid() && index < gpus_.size()) << "unknown gpu " << gpu.value();
  return gpus_[index];
}

ClusterStateIndex::PerGpu& ClusterStateIndex::state(GpuId gpu) {
  return const_cast<PerGpu&>(static_cast<const ClusterStateIndex*>(this)->state(gpu));
}

void ClusterStateIndex::add_gpu(GpuId gpu) {
  GFAAS_CHECK(gpu.valid());
  GFAAS_CHECK(static_cast<std::size_t>(gpu.value()) == gpus_.size())
      << "gpu ids must be registered densely from 0";
  gpus_.emplace_back();
  idle_.emplace(0, gpu.value());
}

void ClusterStateIndex::mark_busy(GpuId gpu) {
  PerGpu& s = state(gpu);
  GFAAS_CHECK(s.idle) << "gpu " << gpu.value() << " already busy";
  s.idle = false;
  GFAAS_CHECK(idle_.erase({s.dispatches, gpu.value()}) == 1);
}

void ClusterStateIndex::mark_idle(GpuId gpu) {
  PerGpu& s = state(gpu);
  GFAAS_CHECK(!s.idle) << "gpu " << gpu.value() << " already idle";
  s.idle = true;
  idle_.emplace(s.dispatches, gpu.value());
}

void ClusterStateIndex::record_dispatch(GpuId gpu) {
  PerGpu& s = state(gpu);
  if (s.idle) {
    GFAAS_CHECK(idle_.erase({s.dispatches, gpu.value()}) == 1);
  }
  ++s.dispatches;
  if (s.idle) idle_.emplace(s.dispatches, gpu.value());
}

void ClusterStateIndex::set_committed_finish(GpuId gpu, SimTime finish) {
  state(gpu).committed_finish = finish;
}

void ClusterStateIndex::add_local_work(GpuId gpu, SimTime delta) {
  PerGpu& s = state(gpu);
  s.local_work += delta;
  GFAAS_CHECK(s.local_work >= 0)
      << "negative local-queue work aggregate on gpu " << gpu.value();
}

std::vector<GpuId> ClusterStateIndex::idle_gpus() const {
  std::vector<GpuId> out;
  out.reserve(idle_.size());
  for (const auto& [dispatches, id] : idle_) out.push_back(GpuId(id));
  return out;
}

std::vector<GpuId> ClusterStateIndex::busy_gpus() const {
  std::vector<GpuId> out;
  for (std::size_t id = 0; id < gpus_.size(); ++id) {
    if (!gpus_[id].idle) out.push_back(GpuId(static_cast<std::int64_t>(id)));
  }
  return out;
}

}  // namespace gfaas::cluster
