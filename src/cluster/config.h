// Cluster and experiment configuration.
//
// Defaults reproduce the paper's testbed (§V-A3): 3 nodes × 4 GeForce RTX
// 2080, GPU Managers per node, a global Scheduler and Cache Manager, and
// per-node shared PCIe host links.
#pragma once

#include <vector>

#include "cache/policy.h"
#include "core/scheduler.h"
#include "gpu/gpu_spec.h"

namespace gfaas::cluster {

struct ClusterConfig {
  int nodes = 3;
  int gpus_per_node = 4;
  // One spec per node; a single entry applies to every node. Defaults to
  // the paper's RTX 2080.
  std::vector<gpu::GpuSpec> node_specs = {gpu::rtx2080()};
  // Whether the GPUs of a node share one host PCIe link (contention) or
  // have dedicated links.
  bool shared_pcie_per_node = true;

  core::PolicyName policy = core::PolicyName::kLalbO3;
  int o3_limit = 25;  // paper default (§IV-B)
  cache::PolicyKind cache_policy = cache::PolicyKind::kLru;

  // Base-cost fraction of the batch-latency model (models::BatchLatencyModel).
  double latency_alpha = 0.6;

  // When true, every inference really executes the scaled-down CPU model
  // (result ignored for timing; simulated time still follows profiles).
  bool execute_real_inference = false;

  int total_gpus() const { return nodes * gpus_per_node; }
  const gpu::GpuSpec& spec_for_node(int node) const {
    return node_specs.size() == 1 ? node_specs[0]
                                  : node_specs[static_cast<std::size_t>(node)];
  }
};

}  // namespace gfaas::cluster
