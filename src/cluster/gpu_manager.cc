#include "cluster/gpu_manager.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "datastore/keys.h"
#include "tensor/dataset.h"

namespace gfaas::cluster {

GpuManager::GpuManager(NodeId node, sim::Executor* executor, datastore::KvStore* store,
                       cache::CacheManager* cache, const models::ModelRegistry* registry,
                       const models::LatencyOracle* oracle,
                       std::vector<gpu::VirtualGpu*> gpus, bool execute_real_inference)
    : node_(node),
      executor_(executor),
      store_(store),
      cache_(cache),
      registry_(registry),
      oracle_(oracle),
      gpus_(std::move(gpus)),
      execute_real_(execute_real_inference) {
  GFAAS_CHECK(executor_ && cache_ && registry_ && oracle_);
  GFAAS_CHECK(!gpus_.empty());
}

namespace {

// Stretches a duration by the gray-degradation factor. Exact for the
// healthy factor 1.0 (SimTime microseconds are well inside the double
// mantissa), so degradation-free runs are bit-identical.
SimTime stretched(SimTime t, double factor) {
  return static_cast<SimTime>(std::llround(static_cast<double>(t) * factor));
}

}  // namespace

void GpuManager::set_slowdown(GpuId gpu, double factor) {
  GFAAS_CHECK(manages(gpu)) << "slowdown on unmanaged gpu " << gpu.value();
  GFAAS_CHECK(factor >= 1.0) << "slowdown factor must be >= 1";
  if (factor == 1.0) {
    slowdown_.erase(gpu.value());
  } else {
    slowdown_[gpu.value()] = factor;
  }
}

double GpuManager::slowdown(GpuId gpu) const {
  const auto it = slowdown_.find(gpu.value());
  return it == slowdown_.end() ? 1.0 : it->second;
}

bool GpuManager::manages(GpuId gpu) const {
  return std::any_of(gpus_.begin(), gpus_.end(),
                     [&](const gpu::VirtualGpu* g) { return g->id() == gpu; });
}

gpu::VirtualGpu& GpuManager::gpu_ref(GpuId gpu) {
  for (auto* g : gpus_) {
    if (g->id() == gpu) return *g;
  }
  GFAAS_CHECK(false) << "gpu " << gpu.value() << " not managed by node " << node_.value();
  __builtin_unreachable();
}

const gpu::VirtualGpu& GpuManager::gpu_ref(GpuId gpu) const {
  return const_cast<GpuManager*>(this)->gpu_ref(gpu);
}

void GpuManager::publish_status(GpuId gpu, bool busy, SimTime finish_time) {
  if (store_ == nullptr) return;
  store_->put(datastore::keys::gpu_status(gpu), busy ? "busy" : "idle");
  store_->put(datastore::keys::gpu_finish_time(gpu), std::to_string(finish_time));
  store_->put(datastore::keys::gpu_free_mem(gpu),
              std::to_string(gpu_ref(gpu).free_memory()));
}

void GpuManager::report_latency(const core::Request& request, SimTime latency) {
  if (store_ == nullptr) return;
  store_->put(datastore::keys::fn_latency(request.function_name),
              std::to_string(latency));
}

void GpuManager::maybe_execute_real(const core::Request& request) {
  if (!execute_real_) return;
  auto it = runtime_models_.find(request.model.value());
  if (it == runtime_models_.end()) {
    const auto profile = registry_->get(request.model);
    GFAAS_CHECK(profile.ok());
    it = runtime_models_
             .emplace(request.model.value(), tensor::build_cnn(profile->runtime_config))
             .first;
  }
  // Run a genuinely-sized forward pass (small batch keeps CPU time sane;
  // simulated timing still follows the Table I profiles).
  tensor::SyntheticImageDataset dataset(
      tensor::DatasetKind::kCifar10Like,
      static_cast<std::uint64_t>(request.id.value()) + 1);
  const tensor::Batch batch =
      dataset.make_batch(std::min<std::int64_t>(2, request.batch));
  const tensor::Tensor out = it->second->forward(batch.images);
  GFAAS_CHECK(out.numel() > 0);
}

StatusOr<SimTime> GpuManager::execute(const core::Request& request, GpuId gpu,
                                      bool false_miss, bool via_local_queue,
                                      CompletionCallback done) {
  GFAAS_CHECK(done != nullptr);
  gpu::VirtualGpu& device = gpu_ref(gpu);
  if (device.is_busy()) {
    return Status::FailedPrecondition("gpu " + std::to_string(gpu.value()) +
                                      " is busy; one request at a time");
  }
  const SimTime now = executor_->now();
  const ModelId model = request.model;
  auto infer_time = oracle_->infer_time(model, request.batch);
  if (!infer_time.ok()) return infer_time.status();
  // A degraded GPU runs at the stretched timings but execute() returns
  // (and publishes) the healthy estimate — the scheduler must not know,
  // that is what makes the degradation gray.
  const double slow = slowdown(gpu);
  const SimTime real_infer = stretched(*infer_time, slow);

  const bool hit = cache_->is_cached(gpu, model);

  core::CompletionRecord record;
  record.id = request.id;
  record.model = model;
  record.gpu = gpu;
  record.arrival = request.arrival;
  record.dispatched = now;
  record.cache_hit = hit;
  record.false_miss = false_miss;
  record.via_local_queue = via_local_queue;
  record.deadline = request.deadline;
  record.steal_hops = request.steal_hops;

  auto complete = [this, request, gpu, record, done](SimTime finish) mutable {
    // Under the wall-clock executor now() keeps moving, so the remaining
    // delay can come out marginally negative; clamp to "immediately".
    const SimTime delay = std::max<SimTime>(0, finish - executor_->now());
    const std::uint64_t event =
        executor_->schedule_after(delay, [this, request, gpu, record,
                                          done, finish]() mutable {
          gpu::VirtualGpu& dev = gpu_ref(gpu);
          const auto proc = dev.find_process(request.model);
          GFAAS_CHECK(proc.has_value());
          GFAAS_CHECK(dev.finish_inference(finish, proc->id).ok());
          maybe_execute_real(request);
          GFAAS_CHECK(cache_->unpin(gpu, request.model).ok());
          record.completed = finish;
          publish_status(gpu, /*busy=*/false, finish);
          report_latency(request, record.latency());
          // Retire the in-flight entry before the callback: the engine's
          // completion handling may immediately start the next request on
          // this GPU.
          in_flight_.erase(gpu.value());
          done(record);
        });
    // Runs on the executor's worker (or inside the simulator's event
    // loop), so the event cannot fire before the id is recorded.
    auto it = in_flight_.find(gpu.value());
    GFAAS_CHECK(it != in_flight_.end());
    it->second.pending_event = event;
  };

  if (hit) {
    // Cache hit: "the GPU process that uses the requested model is
    // already running; GPU Manager forwards the input" (§III-C).
    GFAAS_CHECK(cache_->record_access(gpu, model).ok());
    GFAAS_CHECK(cache_->pin(gpu, model).ok());
    const auto proc = device.find_process(model);
    if (proc.has_value()) {
      GFAAS_CHECK(proc->loaded) << "mid-load process on a dispatchable gpu";
      auto end = device.begin_inference(now, proc->id, real_infer, request.batch);
      if (!end.ok()) return end.status();
      const SimTime believed_end = *end - (real_infer - *infer_time);
      publish_status(gpu, /*busy=*/true, believed_end);
      in_flight_[gpu.value()] = InFlightExecution{request, record, 0};
      complete(*end);
      return believed_end;
    }
    // Resident model without a backing process: a mid-load abort killed
    // the upload while queued requests kept the entry pinned (see
    // abort()). Residency was never surrendered, so this stays a hit for
    // the cache index — but the weights must be re-uploaded, so fall
    // through to the load chain below (skipping eviction/insertion).
  }

  // Start (or restart) a process, upload the model, then run.
  const auto profile = registry_->get(model);
  if (!profile.ok()) return profile.status();
  if (!hit) {
    auto victims = cache_->plan_eviction(gpu, profile->occupation);
    if (!victims.ok()) return victims.status();
    for (ModelId victim : *victims) {
      const auto victim_proc = device.find_process(victim);
      // A victim can lack a process if a mid-load abort kept its entry
      // alive for waiters that were later cancelled.
      if (victim_proc.has_value()) {
        GFAAS_CHECK(device.kill_process(victim_proc->id).ok());
      }
      GFAAS_CHECK(cache_->record_eviction(gpu, victim).ok());
    }
  }
  auto pid = device.create_process(model, profile->occupation);
  if (!pid.ok()) return pid.status();
  if (!hit) {
    GFAAS_CHECK(cache_->record_insertion(gpu, model, profile->occupation).ok());
    GFAAS_CHECK(cache_->pin(gpu, model).ok());
  }

  auto load_time = oracle_->load_time(model);
  if (!load_time.ok()) return load_time.status();
  const SimTime real_load = stretched(*load_time, slow);
  auto load_end = device.begin_load(now, *pid, real_load);
  if (!load_end.ok()) return load_end.status();

  // Published/returned estimate backs out the gray stretch; link-queueing
  // delays (visible to everyone) stay in.
  const SimTime expected_finish =
      *load_end - (real_load - *load_time) + *infer_time;
  publish_status(gpu, /*busy=*/true, expected_finish);

  const ProcessId process = *pid;
  const SimTime load_finish = *load_end;
  const SimTime infer_duration = real_infer;
  const std::uint64_t load_event = executor_->schedule_after(
      std::max<SimTime>(0, load_finish - executor_->now()),
      [this, gpu, process, request, load_finish, infer_duration, complete]() mutable {
        gpu::VirtualGpu& dev = gpu_ref(gpu);
        GFAAS_CHECK(dev.finish_load(load_finish, process).ok());
        auto end = dev.begin_inference(load_finish, process, infer_duration,
                                       request.batch);
        GFAAS_CHECK(end.ok()) << end.status().to_string();
        complete(*end);
      });
  in_flight_[gpu.value()] = InFlightExecution{request, record, load_event};
  return expected_finish;
}

StatusOr<core::CompletionRecord> GpuManager::abort(GpuId gpu) {
  auto it = in_flight_.find(gpu.value());
  if (it == in_flight_.end()) {
    return Status::NotFound("gpu " + std::to_string(gpu.value()) +
                            " has no in-flight request");
  }
  InFlightExecution state = std::move(it->second);
  in_flight_.erase(it);
  // The pending event is the load-finish or the completion event; either
  // way it has not fired yet (abort must precede the completion instant),
  // so the cancel is authoritative and the chained lambdas never run.
  GFAAS_CHECK(executor_->cancel(state.pending_event))
      << "abort raced the completion of request " << state.request.id.value();
  gpu::VirtualGpu& device = gpu_ref(gpu);
  GFAAS_CHECK(device.abort_execution(executor_->now()).ok());
  // Drop the execution pin taken at dispatch; residency bookkeeping for
  // loaded models stays until a killed GPU is retired through
  // CacheManager::remove_gpu.
  GFAAS_CHECK(cache_->unpin(gpu, state.request.model).ok());
  // If the abort interrupted the model upload, the process never became
  // servable: evict it, or the cache index would advertise a "cached"
  // model whose next hit finds it unloaded. This matters both for
  // kill-during-load (the cache must not mirror a phantom location while
  // the GPU is torn down) and for a cancelled hedge loser, where the GPU
  // lives on and must stay dispatchable.
  const auto proc = device.find_process(state.request.model);
  if (proc.has_value() && !proc->loaded) {
    GFAAS_CHECK(device.kill_process(proc->id).ok());
    if (cache_->state(gpu).pinned(state.request.model)) {
      // Queued requests for this model still hold pins: keep the entry
      // resident (they enqueued against it) and let the next dispatch
      // re-upload via the hit-without-process path in execute().
    } else {
      GFAAS_CHECK(cache_->record_eviction(gpu, state.request.model).ok());
    }
  }
  core::CompletionRecord record = state.record;
  record.completed = executor_->now();
  record.failed = true;
  publish_status(gpu, /*busy=*/false, record.completed);
  return record;
}

}  // namespace gfaas::cluster
