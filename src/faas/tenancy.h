// Multi-tenancy isolation (paper §VI "Multi-tenancy and Security").
//
// The paper's two isolation mechanisms, implemented:
//   * "limiting the number of GPU processes that each tenant can use" —
//     a bad actor flooding inference requests is capped at a concurrent
//     GPU-process budget;
//   * "limiting the GPU time share and memory space share that a tenant
//     can use" — a bad actor gaming locality to monopolize GPUs is capped
//     by a GPU-time share enforced over a sliding accounting window, and
//     by a resident-memory budget.
// A token-bucket request rate limit guards the Gateway itself.
#pragma once

#include <string>
#include <unordered_map>

#include "common/bytes.h"
#include "common/status.h"
#include "common/time.h"

namespace gfaas::faas {

// Classic token bucket: capacity tokens, refilled at rate/second.
class TokenBucket {
 public:
  TokenBucket(double capacity, double refill_per_sec);

  // Attempts to take one token at time `now`; false = rate limited.
  bool try_acquire(SimTime now);
  double available(SimTime now) const;

 private:
  void refill(SimTime now);

  double capacity_;
  double refill_per_sec_;
  double tokens_;
  SimTime last_refill_ = 0;
};

struct TenantQuota {
  // Concurrent GPU processes (in-flight inference executions).
  int max_concurrent_executions = 4;
  // Request admission rate.
  double requests_per_sec = 50.0;
  double burst = 100.0;
  // Fraction of total GPU time the tenant may consume over the
  // accounting window (1.0 = unlimited).
  double gpu_time_share = 1.0;
  // Resident model memory budget across the cluster (0 = unlimited).
  Bytes memory_budget = 0;
};

struct TenantUsage {
  int concurrent_executions = 0;
  std::int64_t admitted = 0;
  std::int64_t rejected = 0;
  // GPU time consumed in the current accounting window.
  SimTime gpu_time_in_window = 0;
  Bytes resident_memory = 0;
};

class TenantManager {
 public:
  // `total_gpus` scales the GPU-time share: a share of s over a window W
  // allows s * total_gpus * W of GPU time. `window` is the sliding
  // accounting window for time shares.
  TenantManager(int total_gpus, SimTime window = minutes(1));

  Status register_tenant(const std::string& tenant, TenantQuota quota);
  bool known(const std::string& tenant) const;

  // Admission check at the Gateway: rate limit + concurrency cap +
  // GPU-time share. Returns kResourceExhausted with a reason when denied.
  Status admit(const std::string& tenant, SimTime now);

  // Execution accounting (called by the scheduling engine / GPU manager).
  void on_dispatch(const std::string& tenant);
  void on_complete(const std::string& tenant, SimTime now, SimTime gpu_time);

  // Memory accounting (model resident / evicted attribution).
  Status charge_memory(const std::string& tenant, Bytes bytes);
  void release_memory(const std::string& tenant, Bytes bytes);

  const TenantUsage& usage(const std::string& tenant) const;

 private:
  struct Entry {
    TenantQuota quota;
    TenantUsage usage;
    TokenBucket bucket;
    SimTime window_start = 0;
  };
  Entry& entry(const std::string& tenant);
  const Entry& entry(const std::string& tenant) const;
  void roll_window(Entry& e, SimTime now);

  int total_gpus_;
  SimTime window_;
  std::unordered_map<std::string, Entry> tenants_;
};

}  // namespace gfaas::faas
