// Function model: specs, deployment metadata, and the Dockerfile-style
// GPU-enable flag (paper §III-A: "The end-user can include a GPU-enable
// flag in the Dockerfile of the function when registering the function
// using the Gateway").
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/id.h"
#include "common/status.h"
#include "common/time.h"

namespace gfaas::faas {

// Payload passed to / returned from a function invocation. For ML
// inference functions the payload is an image batch (see tensor::Batch
// marshaling in the cluster layer); for plain functions it is opaque.
struct Payload {
  std::string content_type = "application/octet-stream";
  std::vector<float> data;
  std::vector<std::int64_t> shape;
};

struct InvocationResult {
  Payload output;
  SimTime latency = 0;
  std::string executed_on;  // container / GPU identifier
};

// A plain (CPU) function handler: runs inside the container.
using Handler = std::function<StatusOr<Payload>(const Payload&)>;

struct FunctionSpec {
  std::string name;
  // Raw Dockerfile text supplied at registration; the Gateway parses the
  // GPU-enable flag out of it.
  std::string dockerfile;
  // Populated by the Gateway from the Dockerfile.
  bool gpu_enabled = false;
  // For GPU inference functions: which model the function serves.
  std::string model_name;
  std::int64_t batch_size = 32;
  // For plain functions.
  Handler handler;
  // Cold-start cost of the function's container.
  SimTime cold_start = msec(400);
};

// Parses a Dockerfile for the GPU-enable flag and model name. Recognized
// directives (any one enables GPU):
//   ENV GPU_ENABLED=1
//   LABEL gpu.enabled=true
//   ENV GFAAS_MODEL=<model-name>   (selects the inference model)
struct DockerfileInfo {
  bool gpu_enabled = false;
  std::string model_name;
};
DockerfileInfo parse_dockerfile(const std::string& dockerfile);

}  // namespace gfaas::faas
