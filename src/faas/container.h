// Container lifecycle + Watchdog (paper Fig. 1).
//
// A Container hosts one function; the Watchdog "runs in the background
// along with the function code on its container to start and monitor the
// function": it executes the handler, measures latency, and records
// status and metrics to the Datastore. The ContainerPool provides warm
// reuse and demand-driven scale-up (cold starts cost the spec's
// cold_start time), modeling the scaling loop the Datastore can trigger
// through the Gateway.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/id.h"
#include "common/status.h"
#include "datastore/kv_store.h"
#include "faas/function.h"
#include "sim/simulator.h"

namespace gfaas::faas {

enum class ContainerState { kCold, kWarm, kBusy };

class Container {
 public:
  Container(std::string id, FunctionSpec spec)
      : id_(std::move(id)), spec_(std::move(spec)) {}

  const std::string& id() const { return id_; }
  const FunctionSpec& spec() const { return spec_; }
  ContainerState state() const { return state_; }

  // First use pays the cold-start cost; returns the startup delay.
  SimTime warm_up();
  void mark_busy() { state_ = ContainerState::kBusy; }
  void mark_warm() { state_ = ContainerState::kWarm; }

  std::int64_t invocations() const { return invocations_; }
  void count_invocation() { ++invocations_; }

 private:
  std::string id_;
  FunctionSpec spec_;
  ContainerState state_ = ContainerState::kCold;
  std::int64_t invocations_ = 0;
};

// The Watchdog executes a (CPU) function inside a container and records
// metrics to the Datastore.
class Watchdog {
 public:
  // `store` may be null (metrics dropped); `clock` supplies timestamps.
  Watchdog(datastore::KvStore* store, const sim::Clock* clock)
      : store_(store), clock_(clock) {}

  // Runs the handler with the input, measures latency (wall time of the
  // handler in real mode; callers add simulated costs in sim mode), and
  // reports to the Datastore.
  StatusOr<InvocationResult> execute(Container& container, const Payload& input);

 private:
  void record(const std::string& fn_name, SimTime latency, bool ok);

  datastore::KvStore* store_;
  const sim::Clock* clock_;
};

// Warm-container pool per function, with max-size cap.
class ContainerPool {
 public:
  explicit ContainerPool(std::size_t max_per_function = 8)
      : max_per_function_(max_per_function) {}

  // Acquires a warm container (or creates a cold one) for the function.
  // Fails with kResourceExhausted when the function is at its cap and all
  // containers are busy.
  StatusOr<Container*> acquire(const FunctionSpec& spec);
  void release(Container* container);

  std::size_t total_containers() const;
  std::size_t warm_count(const std::string& fn_name) const;
  // Removes idle containers beyond `keep` for the function (scale-down).
  std::size_t scale_down(const std::string& fn_name, std::size_t keep);

 private:
  std::size_t max_per_function_;
  std::vector<std::unique_ptr<Container>> containers_;
  std::int64_t next_id_ = 0;
};

}  // namespace gfaas::faas
