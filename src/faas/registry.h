// Function registry: the CRUD surface behind the Gateway (paper Fig. 1,
// "the Gateway provides interfaces to users to deploy and invoke
// functions" — Create, Read, Update, Delete of registered functions).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "faas/function.h"

namespace gfaas::faas {

class FunctionRegistry {
 public:
  // Create. The spec's dockerfile is parsed for the GPU flag/model.
  Status create(FunctionSpec spec);
  // Read.
  StatusOr<FunctionSpec> get(const std::string& name) const;
  // Update (replaces the spec; re-parses the Dockerfile).
  Status update(FunctionSpec spec);
  // Delete.
  Status remove(const std::string& name);

  std::vector<std::string> list() const;
  std::size_t size() const { return functions_.size(); }
  bool contains(const std::string& name) const { return functions_.count(name) > 0; }

 private:
  static void apply_dockerfile(FunctionSpec& spec);
  std::map<std::string, FunctionSpec> functions_;
};

}  // namespace gfaas::faas
