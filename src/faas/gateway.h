// Gateway: the public entry point of the FaaS framework (paper Fig. 1/2).
//
// Registration parses the function's Dockerfile for the GPU-enable flag;
// for GPU-enabled functions the Gateway "replaces the interface that the
// function uses for loading and running a model with a customized
// interface that redirects those requests to the GPU Manager" (§III-A) —
// here, the GpuBackend interface implemented by the cluster's scheduling
// engine. Plain functions run in containers under the Watchdog.
#pragma once

#include <functional>
#include <string>

#include "common/status.h"
#include "datastore/kv_store.h"
#include "faas/container.h"
#include "faas/registry.h"
#include "faas/tenancy.h"

namespace gfaas::faas {

// The customized model-serving interface GPU-enabled functions are
// rewired to. Implemented by cluster::FaasCluster (simulated or real).
class GpuBackend {
 public:
  virtual ~GpuBackend() = default;
  // Submits an inference invocation; the callback fires on completion
  // with the result or an error.
  virtual void submit(const FunctionSpec& spec, const Payload& input,
                      std::function<void(StatusOr<InvocationResult>)> done) = 0;
};

class Gateway {
 public:
  Gateway(datastore::KvStore* store, const sim::Clock* clock, GpuBackend* gpu_backend)
      : store_(store), watchdog_(store, clock), gpu_backend_(gpu_backend),
        clock_(clock) {}

  // --- CRUD (delegates to the registry after Dockerfile parsing) ---
  Status register_function(FunctionSpec spec) {
    return registry_.create(std::move(spec));
  }
  Status update_function(FunctionSpec spec) { return registry_.update(std::move(spec)); }
  Status deregister_function(const std::string& name) { return registry_.remove(name); }
  StatusOr<FunctionSpec> describe(const std::string& name) const {
    return registry_.get(name);
  }
  std::vector<std::string> list_functions() const { return registry_.list(); }

  // --- multi-tenancy (§VI) ---
  // When a TenantManager is attached, invocations must carry a known
  // tenant and pass its admission checks (rate limit, concurrency cap,
  // GPU-time share). Not owned.
  void set_tenant_manager(TenantManager* manager) { tenants_ = manager; }

  // --- invocation ---
  // Asynchronous invoke: GPU-enabled functions go to the GpuBackend;
  // plain functions execute synchronously in a pooled container and the
  // callback fires before return. `tenant` is required when a
  // TenantManager is attached (empty = anonymous, only without one).
  void invoke(const std::string& name, const Payload& input,
              std::function<void(StatusOr<InvocationResult>)> done,
              const std::string& tenant = "");

  // Synchronous convenience for plain (CPU) functions.
  StatusOr<InvocationResult> invoke_sync(const std::string& name, const Payload& input,
                                         const std::string& tenant = "");

  const FunctionRegistry& registry() const { return registry_; }
  ContainerPool& containers() { return pool_; }

 private:
  datastore::KvStore* store_;
  FunctionRegistry registry_;
  ContainerPool pool_;
  Watchdog watchdog_;
  GpuBackend* gpu_backend_;
  TenantManager* tenants_ = nullptr;
  const sim::Clock* clock_ = nullptr;
};

}  // namespace gfaas::faas
