#include "faas/registry.h"

namespace gfaas::faas {

void FunctionRegistry::apply_dockerfile(FunctionSpec& spec) {
  const DockerfileInfo info = parse_dockerfile(spec.dockerfile);
  spec.gpu_enabled = info.gpu_enabled;
  if (!info.model_name.empty()) spec.model_name = info.model_name;
}

Status FunctionRegistry::create(FunctionSpec spec) {
  if (spec.name.empty()) return Status::InvalidArgument("function name required");
  if (functions_.count(spec.name) > 0) {
    return Status::AlreadyExists("function " + spec.name + " already registered");
  }
  apply_dockerfile(spec);
  if (spec.gpu_enabled && spec.model_name.empty()) {
    return Status::InvalidArgument("GPU-enabled function " + spec.name +
                                   " must name a model (ENV GFAAS_MODEL=...)");
  }
  functions_.emplace(spec.name, std::move(spec));
  return Status::Ok();
}

StatusOr<FunctionSpec> FunctionRegistry::get(const std::string& name) const {
  auto it = functions_.find(name);
  if (it == functions_.end()) return Status::NotFound("no function " + name);
  return it->second;
}

Status FunctionRegistry::update(FunctionSpec spec) {
  auto it = functions_.find(spec.name);
  if (it == functions_.end()) return Status::NotFound("no function " + spec.name);
  apply_dockerfile(spec);
  it->second = std::move(spec);
  return Status::Ok();
}

Status FunctionRegistry::remove(const std::string& name) {
  if (functions_.erase(name) == 0) return Status::NotFound("no function " + name);
  return Status::Ok();
}

std::vector<std::string> FunctionRegistry::list() const {
  std::vector<std::string> out;
  out.reserve(functions_.size());
  for (const auto& [name, spec] : functions_) out.push_back(name);
  return out;
}

}  // namespace gfaas::faas
