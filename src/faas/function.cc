#include "faas/function.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace gfaas::faas {

namespace {

std::string trim(const std::string& s) {
  std::size_t begin = 0, end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

DockerfileInfo parse_dockerfile(const std::string& dockerfile) {
  DockerfileInfo info;
  std::istringstream in(dockerfile);
  std::string line;
  while (std::getline(in, line)) {
    const std::string trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const std::string lowered = lower(trimmed);
    if (lowered.rfind("env ", 0) == 0 || lowered.rfind("label ", 0) == 0) {
      const std::string body = trimmed.substr(trimmed.find(' ') + 1);
      const std::string lowered_body = lower(body);
      if (lowered_body.find("gpu_enabled=1") != std::string::npos ||
          lowered_body.find("gpu.enabled=true") != std::string::npos) {
        info.gpu_enabled = true;
      }
      const std::string model_key = "gfaas_model=";
      const std::size_t pos = lowered_body.find(model_key);
      if (pos != std::string::npos) {
        info.model_name = trim(body.substr(pos + model_key.size()));
      }
    }
  }
  return info;
}

}  // namespace gfaas::faas
