#include "faas/gateway.h"

#include "common/log.h"

namespace gfaas::faas {

void Gateway::invoke(const std::string& name, const Payload& input,
                     std::function<void(StatusOr<InvocationResult>)> done,
                     const std::string& tenant) {
  GFAAS_CHECK(done != nullptr);
  auto spec = registry_.get(name);
  if (!spec.ok()) {
    done(spec.status());
    return;
  }
  if (tenants_ != nullptr) {
    const SimTime now = clock_ ? clock_->now() : 0;
    Status admitted = tenants_->admit(tenant, now);
    if (!admitted.ok()) {
      done(std::move(admitted));
      return;
    }
    // Execution accounting brackets the invocation; GPU time is the
    // portion spent past admission (queue + load + inference for GPU
    // functions, handler time for CPU functions).
    tenants_->on_dispatch(tenant);
    auto inner = std::move(done);
    done = [this, tenant, now, inner = std::move(inner)](
               StatusOr<InvocationResult> result) {
      const SimTime end = clock_ ? clock_->now() : now;
      const SimTime used = result.ok() ? result->latency : end - now;
      tenants_->on_complete(tenant, end, used);
      inner(std::move(result));
    };
  }
  if (spec->gpu_enabled) {
    if (gpu_backend_ == nullptr) {
      done(Status::Unavailable("no GPU backend attached for function " + name));
      return;
    }
    gpu_backend_->submit(*spec, input, std::move(done));
    return;
  }
  // Plain function: container + watchdog, synchronous.
  auto container = pool_.acquire(*spec);
  if (!container.ok()) {
    done(container.status());
    return;
  }
  const SimTime cold_delay = (*container)->warm_up();
  auto result = watchdog_.execute(**container, input);
  if (result.ok()) result->latency += cold_delay;
  pool_.release(*container);
  done(std::move(result));
}

StatusOr<InvocationResult> Gateway::invoke_sync(const std::string& name,
                                                const Payload& input,
                                                const std::string& tenant) {
  StatusOr<InvocationResult> out = Status::Internal("callback never fired");
  invoke(
      name, input, [&out](StatusOr<InvocationResult> r) { out = std::move(r); },
      tenant);
  return out;
}

}  // namespace gfaas::faas
