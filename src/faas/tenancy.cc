#include "faas/tenancy.h"

#include <algorithm>

#include "common/log.h"

namespace gfaas::faas {

TokenBucket::TokenBucket(double capacity, double refill_per_sec)
    : capacity_(capacity), refill_per_sec_(refill_per_sec), tokens_(capacity) {
  GFAAS_CHECK(capacity > 0 && refill_per_sec > 0);
}

void TokenBucket::refill(SimTime now) {
  if (now <= last_refill_) return;
  const double elapsed_sec = sim_to_seconds(now - last_refill_);
  tokens_ = std::min(capacity_, tokens_ + elapsed_sec * refill_per_sec_);
  last_refill_ = now;
}

bool TokenBucket::try_acquire(SimTime now) {
  refill(now);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

double TokenBucket::available(SimTime now) const {
  TokenBucket copy = *this;
  copy.refill(now);
  return copy.tokens_;
}

TenantManager::TenantManager(int total_gpus, SimTime window)
    : total_gpus_(total_gpus), window_(window) {
  GFAAS_CHECK(total_gpus > 0 && window > 0);
}

Status TenantManager::register_tenant(const std::string& tenant, TenantQuota quota) {
  if (tenant.empty()) return Status::InvalidArgument("tenant name required");
  if (tenants_.count(tenant) > 0) {
    return Status::AlreadyExists("tenant " + tenant + " already registered");
  }
  if (quota.gpu_time_share <= 0 || quota.gpu_time_share > 1.0) {
    return Status::InvalidArgument("gpu_time_share must be in (0, 1]");
  }
  tenants_.emplace(tenant,
                   Entry{quota, TenantUsage{}, TokenBucket(quota.burst,
                                                           quota.requests_per_sec),
                         /*window_start=*/0});
  return Status::Ok();
}

bool TenantManager::known(const std::string& tenant) const {
  return tenants_.count(tenant) > 0;
}

TenantManager::Entry& TenantManager::entry(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  GFAAS_CHECK(it != tenants_.end()) << "unknown tenant " << tenant;
  return it->second;
}

const TenantManager::Entry& TenantManager::entry(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  GFAAS_CHECK(it != tenants_.end()) << "unknown tenant " << tenant;
  return it->second;
}

void TenantManager::roll_window(Entry& e, SimTime now) {
  if (now - e.window_start >= window_) {
    e.window_start = now;
    e.usage.gpu_time_in_window = 0;
  }
}

Status TenantManager::admit(const std::string& tenant, SimTime now) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return Status::NotFound("unknown tenant " + tenant);
  }
  Entry& e = it->second;
  roll_window(e, now);
  if (!e.bucket.try_acquire(now)) {
    ++e.usage.rejected;
    return Status::ResourceExhausted("tenant " + tenant + " rate limited");
  }
  if (e.usage.concurrent_executions >= e.quota.max_concurrent_executions) {
    ++e.usage.rejected;
    return Status::ResourceExhausted("tenant " + tenant +
                                     " at concurrent execution cap");
  }
  const SimTime allowed = static_cast<SimTime>(
      e.quota.gpu_time_share * static_cast<double>(total_gpus_) *
      static_cast<double>(window_));
  if (e.usage.gpu_time_in_window >= allowed) {
    ++e.usage.rejected;
    return Status::ResourceExhausted("tenant " + tenant +
                                     " exceeded GPU time share");
  }
  ++e.usage.admitted;
  return Status::Ok();
}

void TenantManager::on_dispatch(const std::string& tenant) {
  ++entry(tenant).usage.concurrent_executions;
}

void TenantManager::on_complete(const std::string& tenant, SimTime now,
                                SimTime gpu_time) {
  Entry& e = entry(tenant);
  GFAAS_CHECK(e.usage.concurrent_executions > 0);
  --e.usage.concurrent_executions;
  roll_window(e, now);
  e.usage.gpu_time_in_window += gpu_time;
}

Status TenantManager::charge_memory(const std::string& tenant, Bytes bytes) {
  Entry& e = entry(tenant);
  if (e.quota.memory_budget > 0 &&
      e.usage.resident_memory + bytes > e.quota.memory_budget) {
    return Status::ResourceExhausted("tenant " + tenant + " memory budget exceeded");
  }
  e.usage.resident_memory += bytes;
  return Status::Ok();
}

void TenantManager::release_memory(const std::string& tenant, Bytes bytes) {
  Entry& e = entry(tenant);
  e.usage.resident_memory = std::max<Bytes>(0, e.usage.resident_memory - bytes);
}

const TenantUsage& TenantManager::usage(const std::string& tenant) const {
  return entry(tenant).usage;
}

}  // namespace gfaas::faas
