#include "faas/container.h"

#include <algorithm>
#include <chrono>

#include "common/log.h"
#include "datastore/keys.h"

namespace gfaas::faas {

SimTime Container::warm_up() {
  if (state_ != ContainerState::kCold) return 0;
  state_ = ContainerState::kWarm;
  return spec_.cold_start;
}

StatusOr<InvocationResult> Watchdog::execute(Container& container, const Payload& input) {
  const FunctionSpec& spec = container.spec();
  if (!spec.handler) {
    return Status::FailedPrecondition("function " + spec.name + " has no handler");
  }
  container.mark_busy();
  const auto start = std::chrono::steady_clock::now();
  StatusOr<Payload> output = spec.handler(input);
  const auto end = std::chrono::steady_clock::now();
  container.mark_warm();
  container.count_invocation();

  const SimTime latency =
      std::chrono::duration_cast<std::chrono::microseconds>(end - start).count();
  record(spec.name, latency, output.ok());
  if (!output.ok()) return output.status();

  InvocationResult result;
  result.output = std::move(output).value();
  result.latency = latency;
  result.executed_on = container.id();
  return result;
}

void Watchdog::record(const std::string& fn_name, SimTime latency, bool ok) {
  if (store_ == nullptr) return;
  store_->put(datastore::keys::fn_latency(fn_name), std::to_string(latency));
  const std::string count_key = datastore::keys::fn_invocations(fn_name);
  auto current = store_->get(count_key);
  const std::int64_t count =
      current.ok() ? std::strtoll(current->value.c_str(), nullptr, 10) : 0;
  store_->put(count_key, std::to_string(count + 1));
  if (!ok) {
    store_->put("fn/" + fn_name + "/last_error",
                std::to_string(clock_ ? clock_->now() : 0));
  }
}

StatusOr<Container*> ContainerPool::acquire(const FunctionSpec& spec) {
  // Prefer a warm idle container for this function.
  Container* cold = nullptr;
  std::size_t count = 0;
  for (auto& c : containers_) {
    if (c->spec().name != spec.name) continue;
    ++count;
    if (c->state() == ContainerState::kWarm) return c.get();
    if (c->state() == ContainerState::kCold && cold == nullptr) cold = c.get();
  }
  if (cold != nullptr) return cold;
  if (count >= max_per_function_) {
    return Status::ResourceExhausted("function " + spec.name +
                                     " at container cap with all busy");
  }
  containers_.push_back(std::make_unique<Container>(
      spec.name + "-c" + std::to_string(next_id_++), spec));
  return containers_.back().get();
}

void ContainerPool::release(Container* container) {
  GFAAS_CHECK(container != nullptr);
  container->mark_warm();
}

std::size_t ContainerPool::total_containers() const { return containers_.size(); }

std::size_t ContainerPool::warm_count(const std::string& fn_name) const {
  std::size_t n = 0;
  for (const auto& c : containers_) {
    if (c->spec().name == fn_name && c->state() == ContainerState::kWarm) ++n;
  }
  return n;
}

std::size_t ContainerPool::scale_down(const std::string& fn_name, std::size_t keep) {
  std::size_t kept = 0, removed = 0;
  auto it = containers_.begin();
  while (it != containers_.end()) {
    Container& c = **it;
    if (c.spec().name == fn_name && c.state() != ContainerState::kBusy) {
      if (kept < keep) {
        ++kept;
        ++it;
      } else {
        it = containers_.erase(it);
        ++removed;
      }
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace gfaas::faas
