#include "trace/clients.h"

#include <string>
#include <utility>

#include "common/log.h"

namespace gfaas::trace {

namespace {

core::Request make_client_request(std::int64_t id, std::size_t model,
                                  const ClientConfig& config) {
  core::Request request;
  request.id = RequestId(id);
  request.function = FunctionId(static_cast<std::int64_t>(model));
  request.model = ModelId(static_cast<std::int64_t>(model));
  request.batch = config.batch_size;
  request.function_name = "fn" + std::to_string(model);
  // arrival and deadline are stamped by the serving layer at submission.
  return request;
}

}  // namespace

OpenLoopClient::OpenLoopClient(sim::Executor* executor, ClientSink sink,
                               ClientConfig config, std::vector<std::int64_t> rates)
    : executor_(executor),
      sink_(std::move(sink)),
      config_(config),
      rates_(std::move(rates)),
      popularity_(config.model_count, config.zipf_s),
      rng_(config.seed),
      next_id_(config.first_request_id) {
  GFAAS_CHECK(executor_ != nullptr && sink_ != nullptr);
  GFAAS_CHECK(config_.model_count >= 1 && config_.batch_size >= 1);
  for (const std::int64_t rate : rates_) GFAAS_CHECK(rate >= 0);
}

void OpenLoopClient::start() {
  start_time_ = executor_->now();
  if (!rates_.empty()) {
    executor_->schedule_after(0, [this] { generate_minute(0); });
  }
}

SimTime OpenLoopClient::horizon() const {
  GFAAS_CHECK(start_time_ >= 0) << "horizon() before start(): the schedule is "
                                   "anchored to the clock at start";
  return start_time_ + minutes(static_cast<std::int64_t>(rates_.size()));
}

void OpenLoopClient::generate_minute(std::size_t minute) {
  // Draw this minute's arrivals now, schedule them as offsets from the
  // minute boundary, and chain the next minute — nothing about later
  // minutes exists yet (open loop, lazily generated).
  const std::int64_t count = rates_[minute];
  for (std::int64_t i = 0; i < count; ++i) {
    const SimTime offset = static_cast<SimTime>(
        rng_.next_below(static_cast<std::uint64_t>(minutes(1))));
    core::Request request =
        make_client_request(next_id_++, popularity_.sample(rng_), config_);
    executor_->schedule_after(offset, [this, request]() mutable {
      ++submitted_;
      sink_(std::move(request), [this] { ++completed_; });
    });
  }
  if (minute + 1 < rates_.size()) {
    executor_->schedule_after(minutes(1),
                              [this, minute] { generate_minute(minute + 1); });
  }
}

ClosedLoopClient::ClosedLoopClient(sim::Executor* executor, ClientSink sink,
                                   ClientConfig config, std::size_t users,
                                   SimTime think_time, SimTime duration)
    : executor_(executor),
      sink_(std::move(sink)),
      config_(config),
      users_(users),
      think_time_(think_time),
      duration_(duration),
      popularity_(config.model_count, config.zipf_s),
      rng_(config.seed),
      next_id_(config.first_request_id) {
  GFAAS_CHECK(executor_ != nullptr && sink_ != nullptr);
  GFAAS_CHECK(users_ >= 1 && think_time_ >= 0 && duration_ > 0);
  GFAAS_CHECK(config_.model_count >= 1 && config_.batch_size >= 1);
}

void ClosedLoopClient::start() {
  start_time_ = executor_->now();
  for (std::size_t user = 0; user < users_; ++user) {
    executor_->schedule_after(0, [this] { user_submit(); });
  }
}

void ClosedLoopClient::user_submit() {
  // The user retires once the run window has elapsed; in-flight work
  // still completes through on_done().
  if (executor_->now() - start_time_ >= duration_) return;
  core::Request request =
      make_client_request(next_id_++, popularity_.sample(rng_), config_);
  ++submitted_;
  ++in_flight_;
  sink_(std::move(request), [this] { on_done(); });
}

void ClosedLoopClient::on_done() {
  GFAAS_CHECK(in_flight_ > 0);
  --in_flight_;
  ++completed_;
  executor_->schedule_after(think_time_, [this] { user_submit(); });
}

}  // namespace gfaas::trace
