#include "trace/workload.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/log.h"

namespace gfaas::trace {

namespace {

// Orders catalog indices so that consecutive working-set functions get
// well-spread model sizes: sort by occupation, then interleave
// small/large halves (paper: "ensure models with different sizes are
// distributed evenly in the workload").
std::vector<std::size_t> size_interleaved_catalog_order() {
  const auto& catalog = models::table1_catalog();
  std::vector<std::size_t> by_size(catalog.size());
  std::iota(by_size.begin(), by_size.end(), 0);
  std::sort(by_size.begin(), by_size.end(), [&](std::size_t a, std::size_t b) {
    return catalog[a].occupation < catalog[b].occupation;
  });
  std::vector<std::size_t> interleaved;
  interleaved.reserve(by_size.size());
  std::size_t lo = 0, hi = by_size.size();
  while (lo < hi) {
    interleaved.push_back(by_size[lo++]);
    if (lo < hi) interleaved.push_back(by_size[--hi]);
  }
  return interleaved;
}

// Draws `count` arrival offsets within one minute according to the
// configured process; offsets are unsorted (the builder sorts globally).
// `burst_starts` is the minute's shared burst schedule (bursty only) so
// all functions pile into the same windows.
std::vector<SimTime> draw_offsets(ArrivalProcess process, std::int64_t count,
                                  Rng& rng,
                                  const std::vector<SimTime>& burst_starts) {
  std::vector<SimTime> offsets;
  offsets.reserve(static_cast<std::size_t>(count));
  switch (process) {
    case ArrivalProcess::kUniform:
      for (std::int64_t i = 0; i < count; ++i) {
        offsets.push_back(rng.uniform_int(0, minutes(1) - 1));
      }
      break;
    case ArrivalProcess::kPoisson: {
      // Exponential gaps, rescaled so the batch spans the minute.
      std::vector<double> cumulative;
      double t = 0;
      for (std::int64_t i = 0; i < count; ++i) {
        t += rng.exponential(1.0);
        cumulative.push_back(t);
      }
      const double span = cumulative.empty() ? 1.0 : cumulative.back();
      for (double c : cumulative) {
        offsets.push_back(static_cast<SimTime>(c / span * (minutes(1) - 1)));
      }
      break;
    }
    case ArrivalProcess::kBursty: {
      for (std::int64_t i = 0; i < count; ++i) {
        const SimTime start = burst_starts[static_cast<std::size_t>(
            rng.next_below(burst_starts.size()))];
        offsets.push_back(start + rng.uniform_int(0, sec(2) - 1));
      }
      break;
    }
  }
  return offsets;
}

}  // namespace

std::string arrival_process_name(ArrivalProcess process) {
  switch (process) {
    case ArrivalProcess::kUniform: return "uniform";
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kBursty: return "bursty";
  }
  return "unknown";
}

StatusOr<Workload> build_workload(const AzureTrace& trace, const WorkloadConfig& config) {
  if (config.window_minutes <= 0) {
    return Status::InvalidArgument("window must cover at least one minute");
  }
  return build_rate_workload(
      trace, config,
      std::vector<std::int64_t>(static_cast<std::size_t>(config.window_minutes),
                                config.requests_per_minute));
}

StatusOr<Workload> build_rate_workload(const AzureTrace& trace,
                                       const WorkloadConfig& config,
                                       const std::vector<std::int64_t>& rates) {
  const auto window_minutes = static_cast<std::int64_t>(rates.size());
  if (config.working_set_size == 0) {
    return Status::InvalidArgument("working set must be non-empty");
  }
  if (rates.empty()) {
    return Status::InvalidArgument("rate envelope must cover at least one minute");
  }
  if (trace.rows.size() < config.working_set_size) {
    return Status::InvalidArgument("trace has fewer functions than working set");
  }
  if (trace.minutes < window_minutes) {
    return Status::InvalidArgument("trace shorter than requested window");
  }

  Rng rng(config.seed);
  const auto ranking = trace.rank_by_popularity(window_minutes);
  const auto catalog_order = size_interleaved_catalog_order();
  const auto& catalog = models::table1_catalog();

  Workload workload;
  // Each working-set function is a distinct cache item ("the workload's
  // working set (the total number of unique models)", §IV-B): model id =
  // function rank, profile drawn round-robin from the size-interleaved
  // catalog.
  std::vector<std::size_t> selected_rows;
  for (std::size_t rank = 0; rank < config.working_set_size; ++rank) {
    const std::size_t row = ranking[rank];
    selected_rows.push_back(row);
    const auto& base = catalog[catalog_order[rank % catalog_order.size()]];
    models::ModelProfile profile = base;
    profile.id = ModelId(static_cast<std::int64_t>(rank));
    if (rank >= catalog_order.size()) {
      profile.name = base.name + "#" + std::to_string(rank);
    }
    GFAAS_CHECK(workload.registry.register_model(profile).ok());
  }

  // Per-minute normalization to requests_per_minute over the working set.
  std::int64_t next_request_id = 0;
  std::int64_t top_count = 0;
  std::vector<std::int64_t> per_model_total(config.working_set_size, 0);
  for (std::int64_t minute = 0; minute < window_minutes; ++minute) {
    const std::int64_t minute_requests = rates[static_cast<std::size_t>(minute)];
    std::int64_t minute_total = 0;
    for (std::size_t row : selected_rows) {
      minute_total += trace.rows[row].per_minute[static_cast<std::size_t>(minute)];
    }
    if (minute_total == 0 || minute_requests <= 0) continue;

    // Largest-remainder apportionment of the minute's request budget
    // across the working set, proportional to the trace counts.
    std::vector<std::int64_t> quota(config.working_set_size, 0);
    std::vector<std::pair<double, std::size_t>> remainders;
    std::int64_t assigned = 0;
    for (std::size_t k = 0; k < config.working_set_size; ++k) {
      const double exact =
          static_cast<double>(
              trace.rows[selected_rows[k]].per_minute[static_cast<std::size_t>(minute)]) *
          static_cast<double>(minute_requests) / static_cast<double>(minute_total);
      quota[k] = static_cast<std::int64_t>(exact);
      assigned += quota[k];
      remainders.emplace_back(exact - static_cast<double>(quota[k]), k);
    }
    std::sort(remainders.rbegin(), remainders.rend());
    for (std::size_t i = 0; assigned < minute_requests; ++i, ++assigned) {
      ++quota[remainders[i % remainders.size()].second];
    }

    // Arrival offsets within the minute, per the configured process. The
    // minute's burst schedule (4 bursts of 2s) is shared by all functions
    // so bursty traffic genuinely concentrates.
    std::vector<SimTime> burst_starts;
    if (config.arrivals == ArrivalProcess::kBursty) {
      for (int b = 0; b < 4; ++b) {
        burst_starts.push_back(rng.uniform_int(0, minutes(1) - sec(2) - 1));
      }
    }
    for (std::size_t k = 0; k < config.working_set_size; ++k) {
      per_model_total[k] += quota[k];
      const std::vector<SimTime> offsets =
          draw_offsets(config.arrivals, quota[k], rng, burst_starts);
      for (std::int64_t i = 0; i < quota[k]; ++i) {
        core::Request req;
        req.id = RequestId(next_request_id++);
        req.function = FunctionId(static_cast<std::int64_t>(k));
        req.model = ModelId(static_cast<std::int64_t>(k));
        req.batch = config.batch_size;
        req.arrival = minutes(minute) + offsets[static_cast<std::size_t>(i)];
        req.function_name =
            workload.registry.get(req.model).value().name + "-fn" + std::to_string(k);
        workload.requests.push_back(std::move(req));
      }
    }
  }

  std::stable_sort(workload.requests.begin(), workload.requests.end(),
                   [](const core::Request& a, const core::Request& b) {
                     return a.arrival < b.arrival;
                   });
  // Reassign ids in arrival order so id order == arrival order.
  for (std::size_t i = 0; i < workload.requests.size(); ++i) {
    workload.requests[i].id = RequestId(static_cast<std::int64_t>(i));
  }

  for (std::size_t k = 0; k < config.working_set_size; ++k) {
    if (per_model_total[k] > top_count) {
      top_count = per_model_total[k];
      workload.top_model = ModelId(static_cast<std::int64_t>(k));
    }
  }
  workload.invocations_of_top_model = top_count;
  return workload;
}

StatusOr<Workload> build_standard_workload(const WorkloadConfig& config,
                                           std::uint64_t trace_seed) {
  SynthesizerConfig synth;
  synth.seed = trace_seed;
  synth.minutes = config.window_minutes;
  const AzureTrace trace = synthesize_azure_trace(synth);
  return build_workload(trace, config);
}

std::vector<std::int64_t> diurnal_rates(const DiurnalConfig& config) {
  GFAAS_CHECK(config.window_minutes > 0 && config.period_minutes > 0);
  GFAAS_CHECK(config.trough_rpm >= 0 && config.peak_rpm >= config.trough_rpm);
  Rng rng(config.seed);
  std::vector<std::int64_t> rates;
  rates.reserve(static_cast<std::size_t>(config.window_minutes));
  constexpr double kTwoPi = 6.283185307179586;
  for (std::int64_t m = 0; m < config.window_minutes; ++m) {
    const double phase =
        kTwoPi * static_cast<double>(m) / static_cast<double>(config.period_minutes);
    // Raised cosine: trough at minute 0, peak half a period later.
    double rate = static_cast<double>(config.trough_rpm) +
                  static_cast<double>(config.peak_rpm - config.trough_rpm) * 0.5 *
                      (1.0 - std::cos(phase));
    if (config.burst_probability > 0 &&
        rng.uniform() < config.burst_probability) {
      rate *= config.burst_multiplier;
    }
    rates.push_back(static_cast<std::int64_t>(rate + 0.5));
  }
  return rates;
}

StatusOr<Workload> build_diurnal_workload(const WorkloadConfig& config,
                                          const DiurnalConfig& diurnal,
                                          std::uint64_t trace_seed) {
  SynthesizerConfig synth;
  synth.seed = trace_seed;
  synth.minutes = diurnal.window_minutes;
  const AzureTrace trace = synthesize_azure_trace(synth);
  return build_rate_workload(trace, config, diurnal_rates(diurnal));
}

}  // namespace gfaas::trace
