// Client generators: live traffic sources that drive a serving layer
// (gateway::Gateway) instead of replaying a pre-materialized
// trace::Workload.
//
// Both clients schedule their submissions on the cluster's Executor, so
// the same generator code produces deterministic arrivals on the
// discrete-event simulator and real traffic on the wall-clock executor
// (where every submission lands on the executor's worker thread — the
// Gateway's threading contract).
//
// The sink is a callback rather than a Gateway reference so trace/ stays
// below the serving layer in the target graph: the caller binds
// gateway::Gateway::submit (adapting its ResultCallback into the plain
// `done` signal), a bare engine, or a test double.
//
//   * OpenLoopClient — offered-load client: minute m of the run carries
//     rates[m] arrivals (uniform offsets within the minute, seeded),
//     regardless of completions — the serving system cannot slow it
//     down, which is what exposes SLO violations under overload. Each
//     minute's arrivals are generated lazily at the minute boundary, so
//     nothing is pre-materialized.
//   * ClosedLoopClient — `users` concurrent callers, each submitting,
//     waiting for its completion signal, thinking, then submitting
//     again: throughput self-limits to the fleet's capacity, the classic
//     interactive-client model.
//
// Models are drawn Zipf-skewed over a dense working set [0, model_count)
// — the serving-time analogue of the trace popularity skew.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "core/request.h"
#include "sim/simulator.h"

namespace gfaas::trace {

// Hands one request to the serving layer; `done` must fire exactly once
// when the request reaches any final disposition (completed, shed,
// expired, failed).
using ClientSink = std::function<void(core::Request, std::function<void()> done)>;

struct ClientConfig {
  // Models are drawn from the dense id range [0, model_count).
  std::size_t model_count = 1;
  // Zipf popularity skew across the working set; 0 = uniform.
  double zipf_s = 0.9;
  std::int64_t batch_size = 32;
  std::uint64_t seed = 7;
  // Request ids are dense from here (keep streams disjoint when several
  // clients share a gateway).
  std::int64_t first_request_id = 0;
};

class OpenLoopClient {
 public:
  // Minute m of the run offers rates[m] arrivals. `executor` and the
  // sink's target must outlive the run.
  OpenLoopClient(sim::Executor* executor, ClientSink sink, ClientConfig config,
                 std::vector<std::int64_t> rates);

  // Schedules the first minute's generation; subsequent minutes chain
  // lazily. Call once, before (or while) the executor runs.
  void start();

  std::size_t submitted() const { return submitted_; }
  std::size_t completed() const { return completed_; }
  // End of the offered-load schedule (start + one slot per rate entry).
  // Only valid after start(): on a wall-clock executor the schedule is
  // anchored to the clock reading at start, not at construction.
  SimTime horizon() const;

 private:
  void generate_minute(std::size_t minute);

  sim::Executor* executor_;
  ClientSink sink_;
  ClientConfig config_;
  std::vector<std::int64_t> rates_;
  ZipfDistribution popularity_;
  Rng rng_;
  SimTime start_time_ = -1;  // set by start(); horizon() CHECKs it
  std::int64_t next_id_;
  std::size_t submitted_ = 0;
  std::size_t completed_ = 0;
};

class ClosedLoopClient {
 public:
  // `users` concurrent callers; each waits for its previous request's
  // disposition, thinks for think_time, and submits again until
  // `duration` has elapsed from start().
  ClosedLoopClient(sim::Executor* executor, ClientSink sink, ClientConfig config,
                   std::size_t users, SimTime think_time, SimTime duration);

  void start();

  std::size_t submitted() const { return submitted_; }
  std::size_t completed() const { return completed_; }
  std::size_t in_flight() const { return in_flight_; }

 private:
  void user_submit();
  void on_done();

  sim::Executor* executor_;
  ClientSink sink_;
  ClientConfig config_;
  std::size_t users_;
  SimTime think_time_;
  SimTime duration_;
  ZipfDistribution popularity_;
  Rng rng_;
  SimTime start_time_ = 0;
  std::int64_t next_id_;
  std::size_t submitted_ = 0;
  std::size_t completed_ = 0;
  std::size_t in_flight_ = 0;
};

}  // namespace gfaas::trace
