// Azure Functions trace schema, reader/writer, and calibrated synthesizer.
//
// The paper evaluates with the Microsoft Azure Functions trace [Shahrad
// et al., ATC'20]: "Each file provides a column representing each minute,
// a row representing each unique function, and a value indicating the
// total invocations of the unique function per minute" (§V-A1). The
// reader/writer speak a CSV of exactly that shape, so the real trace can
// be dropped in. Because the trace files are not redistributable, the
// synthesizer generates a trace calibrated to the two statistics the
// paper reports about the workload: the top 15 functions carry ~56% of
// per-minute invocations, and every function below the top 15 carries
// < 0.01% each (i.e. a heavy-skew head plus a long thin tail).
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace gfaas::trace {

struct TraceRow {
  std::string function_hash;           // opaque function identity
  std::vector<std::int64_t> per_minute;  // invocations per minute
};

struct AzureTrace {
  std::int64_t minutes = 0;
  std::vector<TraceRow> rows;

  // Total invocations in a minute across all functions.
  std::int64_t total_in_minute(std::int64_t minute) const;
  // Row indices sorted by total invocations over [0, window_minutes),
  // most popular first (ties broken by row order).
  std::vector<std::size_t> rank_by_popularity(std::int64_t window_minutes) const;
  // Fraction of invocations carried by the top-k functions in the window.
  double head_share(std::size_t k, std::int64_t window_minutes) const;
};

// CSV: header "function,m0,m1,..."; one row per function.
Status write_trace_csv(const AzureTrace& trace, std::ostream& out);
StatusOr<AzureTrace> read_trace_csv(std::istream& in);

struct SynthesizerConfig {
  // Number of unique functions. The real trace has 46,413; the default is
  // large enough that each tail function stays below 0.01% of traffic.
  std::int64_t num_functions = 8000;
  std::int64_t minutes = 6;
  // Nominal invocations per minute before the workload builder's
  // normalization (large, like the real trace).
  std::int64_t invocations_per_minute = 200000;
  // Calibration target (paper §V-A1): fraction of per-minute invocations
  // carried by the top `head_size` functions. The Zipf exponent is solved
  // numerically from these two numbers.
  double head_share = 0.56;
  std::size_t head_size = 15;
  std::uint64_t seed = 42;
};

// Generates a trace matching the configured skew. Per-minute counts get
// multiplicative noise so minutes differ (as in the real trace) while the
// calibration holds in aggregate.
AzureTrace synthesize_azure_trace(const SynthesizerConfig& config);

}  // namespace gfaas::trace
