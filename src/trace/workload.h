// Workload builder: trace -> schedulable request stream (paper §V-A1).
//
// Pipeline, following the paper exactly:
//   1. take the first `window_minutes` (6) of the trace;
//   2. restrict to the top `working_set_size` functions by popularity
//      (15 / 25 / 35) — "we consider only the most frequently used
//      functions as the working set";
//   3. normalize each minute's invocations to `requests_per_minute`
//      (325) "to match the size of our much smaller testbed of 12 GPUs";
//   4. map each function to a model: each working-set function becomes a
//      distinct cache item whose cost profile is drawn from Table I,
//      striding the size-ordered catalog so "models with different sizes
//      are distributed evenly in the workload";
//   5. "randomly distribute the invocations of different functions"
//      within each minute (uniform arrival offsets, seeded).
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/request.h"
#include "models/zoo.h"
#include "trace/azure_trace.h"

namespace gfaas::trace {

// Intra-minute arrival process. The paper randomly distributes arrivals
// within each minute (kUniform); the alternatives stress the schedulers
// with realistic burstiness while preserving per-minute totals.
enum class ArrivalProcess {
  kUniform,  // paper default: independent uniform offsets
  kPoisson,  // exponential inter-arrival gaps, rescaled into the minute
  kBursty,   // arrivals clustered into a few short bursts per minute
};

std::string arrival_process_name(ArrivalProcess process);

struct WorkloadConfig {
  std::size_t working_set_size = 15;
  std::int64_t window_minutes = 6;
  std::int64_t requests_per_minute = 325;
  std::int64_t batch_size = 32;
  ArrivalProcess arrivals = ArrivalProcess::kUniform;
  std::uint64_t seed = 7;
};

struct Workload {
  // One registered model per working-set function; model ids are dense
  // [0, working_set_size). Profiles are Table I entries (name suffixed
  // with the function rank when the catalog is reused for K > 22).
  models::ModelRegistry registry;
  std::vector<core::Request> requests;  // sorted by arrival time
  // Most invoked model (Fig. 6 tracks its duplicates).
  ModelId top_model;
  std::int64_t invocations_of_top_model = 0;
};

StatusOr<Workload> build_workload(const AzureTrace& trace, const WorkloadConfig& config);

// Convenience: synthesize a calibrated trace and build the workload from
// it (what every figure bench uses).
StatusOr<Workload> build_standard_workload(const WorkloadConfig& config,
                                           std::uint64_t trace_seed = 42);

// --- elastic-fleet workloads (src/autoscale) ---
//
// Serverless traffic breathes: the per-minute request rate follows a
// day/night cycle with optional bursts on top. The envelope below drives
// the autoscaling experiments (bench_autoscale) the same way the constant
// requests_per_minute drives the paper grid.

// Per-minute request-rate envelope: a raised cosine between trough_rpm
// (minute 0) and peak_rpm (minute period_minutes / 2), repeated across
// the window, with each minute independently surged to
// burst_multiplier x rate with probability burst_probability.
struct DiurnalConfig {
  std::int64_t window_minutes = 60;
  std::int64_t period_minutes = 60;  // one full trough -> peak -> trough cycle
  std::int64_t trough_rpm = 40;
  std::int64_t peak_rpm = 400;
  double burst_probability = 0.0;  // per-minute surge chance
  double burst_multiplier = 2.0;
  std::uint64_t seed = 11;  // burst placement only; the shape is exact
};

std::vector<std::int64_t> diurnal_rates(const DiurnalConfig& config);

// Builds a workload whose minute m carries rates[m] requests instead of
// the constant requests_per_minute; rates.size() overrides
// config.window_minutes. Everything else (working set, apportionment,
// arrival process, seeding) follows build_workload.
StatusOr<Workload> build_rate_workload(const AzureTrace& trace,
                                       const WorkloadConfig& config,
                                       const std::vector<std::int64_t>& rates);

// Convenience: synthesized calibrated trace + diurnal envelope.
StatusOr<Workload> build_diurnal_workload(const WorkloadConfig& config,
                                          const DiurnalConfig& diurnal,
                                          std::uint64_t trace_seed = 42);

}  // namespace gfaas::trace
