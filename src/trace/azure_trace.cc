#include "trace/azure_trace.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/log.h"

namespace gfaas::trace {

std::int64_t AzureTrace::total_in_minute(std::int64_t minute) const {
  GFAAS_CHECK(minute >= 0 && minute < minutes);
  std::int64_t total = 0;
  for (const auto& row : rows) total += row.per_minute[static_cast<std::size_t>(minute)];
  return total;
}

std::vector<std::size_t> AzureTrace::rank_by_popularity(
    std::int64_t window_minutes) const {
  const std::int64_t window = std::min(window_minutes, minutes);
  std::vector<std::int64_t> totals(rows.size(), 0);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::int64_t m = 0; m < window; ++m) {
      totals[r] += rows[r].per_minute[static_cast<std::size_t>(m)];
    }
  }
  std::vector<std::size_t> order(rows.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return totals[a] > totals[b]; });
  return order;
}

double AzureTrace::head_share(std::size_t k, std::int64_t window_minutes) const {
  const auto order = rank_by_popularity(window_minutes);
  const std::int64_t window = std::min(window_minutes, minutes);
  std::int64_t head = 0, total = 0;
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    std::int64_t row_total = 0;
    for (std::int64_t m = 0; m < window; ++m) {
      row_total += rows[order[rank]].per_minute[static_cast<std::size_t>(m)];
    }
    total += row_total;
    if (rank < k) head += row_total;
  }
  return total > 0 ? static_cast<double>(head) / static_cast<double>(total) : 0.0;
}

Status write_trace_csv(const AzureTrace& trace, std::ostream& out) {
  out << "function";
  for (std::int64_t m = 0; m < trace.minutes; ++m) out << ",m" << m;
  out << '\n';
  for (const auto& row : trace.rows) {
    if (static_cast<std::int64_t>(row.per_minute.size()) != trace.minutes) {
      return Status::InvalidArgument("row " + row.function_hash +
                                     " has wrong minute count");
    }
    out << row.function_hash;
    for (std::int64_t v : row.per_minute) out << ',' << v;
    out << '\n';
  }
  return out.good() ? Status::Ok() : Status::Internal("stream write failed");
}

StatusOr<AzureTrace> read_trace_csv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty trace file");
  }
  // Header: function,m0,m1,...
  std::int64_t minutes = -1;  // count commas
  minutes = static_cast<std::int64_t>(std::count(line.begin(), line.end(), ','));
  if (minutes <= 0) return Status::InvalidArgument("trace header has no minutes");

  AzureTrace trace;
  trace.minutes = minutes;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    TraceRow row;
    std::stringstream ss(line);
    std::string cell;
    if (!std::getline(ss, cell, ',')) {
      return Status::InvalidArgument("malformed trace row: " + line);
    }
    row.function_hash = cell;
    while (std::getline(ss, cell, ',')) {
      row.per_minute.push_back(std::strtoll(cell.c_str(), nullptr, 10));
    }
    if (static_cast<std::int64_t>(row.per_minute.size()) != minutes) {
      return Status::InvalidArgument("row " + row.function_hash + " has " +
                                     std::to_string(row.per_minute.size()) +
                                     " minutes, expected " + std::to_string(minutes));
    }
    trace.rows.push_back(std::move(row));
  }
  return trace;
}

AzureTrace synthesize_azure_trace(const SynthesizerConfig& config) {
  GFAAS_CHECK(config.num_functions > static_cast<std::int64_t>(config.head_size));
  GFAAS_CHECK(config.minutes > 0 && config.invocations_per_minute > 0);
  GFAAS_CHECK(config.head_share > 0 && config.head_share < 1);

  Rng rng(config.seed);

  // Popularity weights: a single Zipf(s) over ALL functions, with the
  // exponent calibrated (binary search) so that the top `head_size`
  // functions carry exactly `head_share` of the traffic — the statistic
  // the paper reports (top-15 ≈ 56%). A pure power law keeps the ranks
  // just past the head meaningful (as in the real trace, where working
  // sets of 25 and 35 still receive traffic) while the deep tail fades
  // below 0.01% each.
  const std::size_t n = static_cast<std::size_t>(config.num_functions);
  auto head_share_for = [&](double s) {
    double head = 0, total = 0;
    for (std::size_t k = 0; k < n; ++k) {
      const double w = 1.0 / std::pow(static_cast<double>(k + 1), s);
      total += w;
      if (k < config.head_size) head += w;
    }
    return head / total;
  };
  double lo = 0.3, hi = 3.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (head_share_for(mid) < config.head_share) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double s = 0.5 * (lo + hi);
  std::vector<double> weights(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    weights[k] = 1.0 / std::pow(static_cast<double>(k + 1), s);
  }

  AzureTrace trace;
  trace.minutes = config.minutes;
  trace.rows.resize(n);
  for (std::size_t f = 0; f < n; ++f) {
    trace.rows[f].function_hash = "fn" + std::to_string(f);
    trace.rows[f].per_minute.assign(static_cast<std::size_t>(config.minutes), 0);
  }
  for (std::int64_t m = 0; m < config.minutes; ++m) {
    for (std::size_t f = 0; f < n; ++f) {
      const double expected =
          weights[f] * static_cast<double>(config.invocations_per_minute);
      // Multiplicative noise per minute, truncated at zero.
      const double noisy = expected * rng.uniform(0.8, 1.2);
      trace.rows[f].per_minute[static_cast<std::size_t>(m)] =
          static_cast<std::int64_t>(noisy + 0.5);
    }
  }
  return trace;
}

}  // namespace gfaas::trace
