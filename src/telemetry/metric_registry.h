// Lock-free metrics registry: named counters, gauges, and log-bucketed
// histograms whose hot-path record is wait-free.
//
// Every instrument is sharded: each recording thread hashes to one of
// kMetricShards cache-line-isolated cells and bumps a relaxed atomic, so
// producer threads, the scheduler loop, and the CallbackExecutor can all
// record without contending on a shared line (and without ever taking a
// lock or allocating). Reads aggregate across shards at snapshot time —
// they are linearizable per-cell but not across cells, which is exactly
// the consistency a periodic exporter needs and no more.
//
// Registration (counter()/gauge()/histogram()) takes a mutex and may
// allocate; callers are expected to resolve instruments once at wiring
// time and hold raw pointers. Instrument pointers stay valid for the
// lifetime of the registry (deque storage, no reallocation).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "common/time.h"

namespace gfaas::telemetry {

// Number of independent per-thread cells per instrument. Threads are
// assigned round-robin at first record; collisions are correct (relaxed
// fetch_add), just slightly contended.
inline constexpr std::size_t kMetricShards = 16;

// Round-robin shard slot for the calling thread (stable per thread).
std::size_t thread_shard();

// Monotonic event count. add() is wait-free and allocation-free.
class Counter {
 public:
  void add(std::int64_t n = 1) {
    shards_[thread_shard()].value.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    std::int64_t total = 0;
    for (const auto& s : shards_) total += s.value.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::int64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

// Last-write-wins double. Typically set from exporter probes, not hot
// paths, but set() is still wait-free (atomic bit store).
class Gauge {
 public:
  void set(double v) { bits_.store(pack(v), std::memory_order_relaxed); }
  double value() const { return unpack(bits_.load(std::memory_order_relaxed)); }

 private:
  static std::uint64_t pack(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
  }
  static double unpack(std::uint64_t bits) {
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  // Bit pattern of 0.0 is 0, so default-init reads as 0.0.
  std::atomic<std::uint64_t> bits_{0};
};

struct HistogramOptions {
  // Log-bucketed range; values below/above clamp to the edge buckets.
  double min_value = 1e-6;
  double max_value = 1e6;
  int bins_per_decade = 50;
};

// Fixed-size log-bucketed histogram (same binning scheme as
// metrics::Histogram, ~2% relative quantile error at 50 bins/decade) with
// per-thread shards of relaxed atomic buckets. record() is wait-free and
// allocation-free; quantile()/count() aggregate across shards.
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});

  void record(double x) {
    const std::size_t b = static_cast<std::size_t>(bucket_for(x));
    cells_[thread_shard() * buckets_ + b].fetch_add(1, std::memory_order_relaxed);
  }

  std::int64_t count() const;
  // Nearest-rank with linear interpolation inside the bucket. q in [0,1].
  // Returns 0 when empty.
  double quantile(double q) const;

  int bucket_count() const { return static_cast<int>(buckets_); }
  const HistogramOptions& options() const { return options_; }

 private:
  int bucket_for(double x) const;
  double bucket_lower(int b) const;
  double bucket_upper(int b) const;
  // Sums shards into a per-bucket vector.
  std::vector<std::int64_t> aggregate() const;

  HistogramOptions options_;
  double log_min_;
  std::size_t buckets_;
  // kMetricShards contiguous regions of `buckets_` cells each.
  std::vector<std::atomic<std::int64_t>> cells_;
};

// One flattened (name, value) view of every instrument, taken at a tick.
// Histograms expand to <name>.count/.p50/.p95/.p99.
struct MetricsSnapshot {
  SimTime at = 0;
  std::string label;
  // Name-sorted.
  std::vector<std::pair<std::string, double>> values;

  // Value by exact name; `fallback` when absent.
  double value(std::string_view name, double fallback = 0.0) const;
  bool has(std::string_view name) const;
};

// Writes a snapshot as "name=value" lines (used by bench failure dumps).
void dump_snapshot(const MetricsSnapshot& snapshot, std::FILE* out);

// Named instrument registry. Lookup-or-create is mutex-guarded; returned
// pointers are stable for the registry's lifetime.
class MetricRegistry {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name, HistogramOptions options = {});

  MetricsSnapshot snapshot() const;

 private:
  mutable common::Mutex mu_;
  // The deques guard *registration* (growth) only: the instruments
  // themselves are internally wait-free and recorded through the stable
  // pointers handed out at lookup, never through the registry.
  std::deque<Counter> counters_ GUARDED_BY(mu_);
  std::deque<Gauge> gauges_ GUARDED_BY(mu_);
  std::deque<Histogram> histograms_ GUARDED_BY(mu_);
  std::map<std::string, Counter*> counter_names_ GUARDED_BY(mu_);
  std::map<std::string, Gauge*> gauge_names_ GUARDED_BY(mu_);
  std::map<std::string, Histogram*> histogram_names_ GUARDED_BY(mu_);
};

}  // namespace gfaas::telemetry
