// One CSV dialect for every emitter in the tree.
//
// metrics::StepTimeline, metrics::Table, and the TelemetryExporter all
// used to hand-roll their own comma joins (with diverging quoting and
// header conventions); they now all funnel through CsvWriter so
// downstream tooling parses a single format: a header row always
// present, RFC-4180 quoting (fields containing comma/quote/newline are
// quoted, embedded quotes doubled), and doubles rendered with %.10g.
#pragma once

#include <string>
#include <vector>

namespace gfaas::telemetry {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> columns);

  // Cell count must match the header (checked).
  void add_row(std::vector<std::string> cells);

  const std::vector<std::string>& columns() const { return columns_; }
  std::size_t row_count() const { return rows_.size(); }

  // Header + rows, each field escaped.
  std::string str() const;

  // Canonical double rendering for CSV cells (%.10g: round-trips every
  // value the exporters emit without trailing-zero noise).
  static std::string field(double value);
  // RFC-4180 escaping: quotes the field when it contains a comma, quote,
  // or newline; embedded quotes are doubled.
  static std::string escape(const std::string& field);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gfaas::telemetry
