// Umbrella handle the serving layers instrument against.
//
// One Telemetry object per run bundles the metric registry, the span
// recorder, and the probe list. Layers accept a nullable `Telemetry*`
// via set_telemetry(); when it is null (the default) they record
// nothing and the hot paths stay byte-identical to the uninstrumented
// build — the digest guard in bench_telemetry_overhead and
// telemetry_test proves the enabled path is also behavior-preserving
// (telemetry only observes, never consumes RNG or schedules ahead of
// workload events).
//
// Probes are pull-style gauges: callbacks registered at wiring time and
// run by the exporter at each tick (on the executor worker thread), so
// point-in-time state — queue depths, fleet size, cache hit ratio, SLO
// attainment — is sampled without any hot-path cost. A probe must not
// outlive the layer whose state it reads: benches call
// TelemetryExporter::finish() before tearing down the stack.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"
#include "telemetry/metric_registry.h"
#include "telemetry/trace_span.h"

namespace gfaas::telemetry {

struct TelemetryConfig {
  SpanRecorderConfig spans;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config = {});

  MetricRegistry& metrics() { return metrics_; }
  const MetricRegistry& metrics() const { return metrics_; }
  SpanRecorder& spans() { return spans_; }
  const SpanRecorder& spans() const { return spans_; }

  // Shard-id label dimension (src/shard): set_shard(i) makes every
  // instrument name resolved through qualified() carry a `{shard=i}`
  // suffix — one Telemetry per shard, same instrument code in the
  // engine, distinct time series per shard in the registry/exporter —
  // and stamps the shard onto every span record. Unset (-1, the
  // default), qualified() is the identity, so single-engine wiring and
  // its metric names are untouched. Wiring time, before set_telemetry()
  // resolves handles.
  void set_shard(std::int32_t shard) {
    shard_ = shard;
    spans_.set_shard(shard);
  }
  std::int32_t shard() const { return shard_; }
  std::string qualified(std::string_view name) const;

  // Registers a pull-style gauge probe (wiring time, mutex-guarded).
  void add_probe(std::function<void(MetricRegistry&)> probe);

  // Runs every probe (exporter tick / final snapshot; worker thread).
  void run_probes();

  // run_probes() + registry snapshot, in one call.
  MetricsSnapshot snapshot_now(SimTime at);

 private:
  MetricRegistry metrics_;
  SpanRecorder spans_;
  std::int32_t shard_ = -1;
  common::Mutex mu_;
  std::vector<std::function<void(MetricRegistry&)>> probes_ GUARDED_BY(mu_);
};

}  // namespace gfaas::telemetry
