// Per-request lifecycle spans: sampled, bounded, allocation-free.
//
// Every instrumented layer reports lifecycle events (submit -> admit/shed
// -> queue -> dispatch -> model-load -> execute -> retry/hedge ->
// complete) keyed by request id. A deterministic hash of the id decides
// once, identically at every layer, whether a request is sampled — no RNG
// stream is consumed, so enabling spans cannot perturb a seeded
// experiment, and the same ids are sampled on every run with the same
// seed. Sampled events land in a preallocated ring that overwrites the
// oldest record when full; an optional sink observes every sampled event
// as it is recorded.
//
// Threading: record() must be called from the executor worker thread (the
// same single-threaded discipline as the Gateway and engine state it
// instruments); snapshot() is for post-run or on-worker inspection.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.h"

namespace gfaas::telemetry {

enum class SpanEvent : std::uint8_t {
  kSubmit,     // request entered the gateway
  kAdmit,      // admission window granted, forwarded to the engine
  kQueue,      // parked in the gateway pending queue
  kShed,       // rejected by admission control
  kExpired,    // dropped from the pending queue past its deadline
  kDispatch,   // engine placed it on a GPU (detail: via-local-queue bit)
  kModelLoad,  // dispatch required a cold model load (detail: load time, µs)
  kExecute,    // execution finished on the GPU (detail: cache-hit bit)
  kRetry,      // gateway re-submitted after a GPU failure
  kHedge,      // gateway launched a duplicate against the straggler
  kComplete,   // resolved back to the client successfully
  kFail,       // resolved back to the client as failed
  kSteal,      // work-steal moved it to another shard (detail: target shard)
};

const char* span_event_name(SpanEvent event);

struct SpanRecord {
  std::int64_t request = 0;
  SimTime at = 0;
  SpanEvent event = SpanEvent::kSubmit;
  std::int32_t gpu = -1;     // -1 when no GPU is involved
  std::int32_t shard = -1;   // owning shard (the recorder's; -1 unsharded)
  std::int64_t detail = 0;   // event-specific payload (see SpanEvent)
};

struct SpanRecorderConfig {
  std::size_t capacity = 4096;     // ring size, preallocated
  double sample_rate = 1.0 / 64;   // fraction of request ids sampled
  std::uint64_t seed = 0x5DEECE66DULL;  // perturbs which ids are sampled
};

class SpanRecorder {
 public:
  explicit SpanRecorder(SpanRecorderConfig config = {});

  // Deterministic per-id sampling decision (pure function of id + seed).
  bool sampled(std::int64_t request_id) const;

  // Records one event if the id is sampled. Wait-free, allocation-free.
  void record(std::int64_t request_id, SpanEvent event, SimTime at,
              std::int32_t gpu = -1, std::int64_t detail = 0);

  // Shard-id label: every record stamped from here on carries `shard` as
  // its owning shard (a stolen request's trail therefore reads kSteal on
  // the donor shard, then kDispatch/kExecute on the thief's). Set at
  // wiring time, before any record().
  void set_shard(std::int32_t shard) { shard_ = shard; }
  std::int32_t shard() const { return shard_; }

  // Observes every sampled event at record time (e.g. streaming to a
  // log). The sink runs on the recording thread; keep it cheap.
  void set_sink(std::function<void(const SpanRecord&)> sink) {
    sink_ = std::move(sink);
  }

  // Ring contents, oldest first.
  std::vector<SpanRecord> snapshot() const;

  std::int64_t recorded() const { return recorded_; }
  std::int64_t overwritten() const { return overwritten_; }
  const SpanRecorderConfig& config() const { return config_; }

 private:
  SpanRecorderConfig config_;
  std::int32_t shard_ = -1;
  std::uint64_t sample_threshold_;  // ids hashing below this are sampled
  std::vector<SpanRecord> ring_;
  std::size_t head_ = 0;  // next write position
  std::size_t size_ = 0;
  std::int64_t recorded_ = 0;
  std::int64_t overwritten_ = 0;
  std::function<void(const SpanRecord&)> sink_;
};

}  // namespace gfaas::telemetry
