#include "telemetry/telemetry.h"

namespace gfaas::telemetry {

Telemetry::Telemetry(TelemetryConfig config) : spans_(config.spans) {}

std::string Telemetry::qualified(std::string_view name) const {
  if (shard_ < 0) return std::string(name);
  return std::string(name) + "{shard=" + std::to_string(shard_) + "}";
}

void Telemetry::add_probe(std::function<void(MetricRegistry&)> probe) {
  common::MutexLock lock(&mu_);
  probes_.push_back(std::move(probe));
}

void Telemetry::run_probes() {
  common::MutexLock lock(&mu_);
  for (auto& probe : probes_) probe(metrics_);
}

MetricsSnapshot Telemetry::snapshot_now(SimTime at) {
  run_probes();
  MetricsSnapshot snap = metrics_.snapshot();
  snap.at = at;
  return snap;
}

}  // namespace gfaas::telemetry
