#include "telemetry/exporter.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/log.h"
#include "telemetry/csv.h"

namespace gfaas::telemetry {

namespace {

// Minimal JSON string escaping for labels (metric names never need it).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

TelemetryExporter::TelemetryExporter(sim::Executor* executor,
                                     Telemetry* telemetry,
                                     TelemetryExporterConfig config)
    : executor_(executor), telemetry_(telemetry), config_(std::move(config)) {
  GFAAS_CHECK(executor_ != nullptr && telemetry_ != nullptr);
  GFAAS_CHECK(config_.interval > 0);
}

TelemetryExporter::~TelemetryExporter() {
  if (tick_armed_) executor_->cancel(pending_tick_);
}

void TelemetryExporter::start(SimTime horizon) {
  GFAAS_CHECK(!started_) << "TelemetryExporter::start called twice";
  started_ = true;
  horizon_ = horizon;
  // Anchor the nominal grid at an interval multiple, not the raw now():
  // a wall-clock executor is already a few microseconds past zero by the
  // time start() runs, and without the snap every row would inherit that
  // jitter — breaking the sim/realtime byte-comparability contract.
  const SimTime at = (executor_->now() / config_.interval) * config_.interval;
  emit_row(at);
  next_ = at + config_.interval;
  arm();
}

void TelemetryExporter::finish() {
  if (!started_ || finished_) return;
  finished_ = true;
  if (tick_armed_) {
    executor_->cancel(pending_tick_);
    tick_armed_ = false;
  }
  // Final row lands on the next nominal boundary so sim and realtime
  // runs emit identical timestamps regardless of when the workload
  // actually drained.
  emit_row(next_);
  if (config_.export_spans && config_.jsonl != nullptr) write_spans_jsonl();
  if (config_.jsonl != nullptr) config_.jsonl->flush();
}

const MetricsSnapshot& TelemetryExporter::last() const {
  GFAAS_CHECK(!series_.empty()) << "no telemetry rows emitted yet";
  return series_.back();
}

void TelemetryExporter::arm() {
  if (next_ > horizon_) return;
  const SimTime delay = std::max<SimTime>(0, next_ - executor_->now());
  pending_tick_ = executor_->schedule_after(delay, [this] { tick(); });
  tick_armed_ = true;
}

void TelemetryExporter::tick() {
  tick_armed_ = false;
  if (finished_) return;
  emit_row(next_);
  next_ += config_.interval;
  arm();
}

void TelemetryExporter::emit_row(SimTime nominal) {
  MetricsSnapshot snap = telemetry_->snapshot_now(nominal);
  snap.label = config_.label;
  if (config_.jsonl != nullptr) write_jsonl(snap);
  series_.push_back(std::move(snap));
}

void TelemetryExporter::write_jsonl(const MetricsSnapshot& snapshot) {
  std::ostream& out = *config_.jsonl;
  char buf[64];
  out << "{\"run\":\"" << json_escape(snapshot.label) << "\",\"t_s\":";
  std::snprintf(buf, sizeof(buf), "%.6f", sim_to_seconds(snapshot.at));
  out << buf;
  for (const auto& [name, value] : snapshot.values) {
    std::snprintf(buf, sizeof(buf), "%.10g", value);
    out << ",\"" << name << "\":" << buf;
  }
  out << "}\n";
}

void TelemetryExporter::write_spans_jsonl() {
  std::ostream& out = *config_.jsonl;
  char buf[64];
  for (const SpanRecord& span : telemetry_->spans().snapshot()) {
    out << "{\"run\":\"" << json_escape(config_.label) << "\",\"span\":\""
        << span_event_name(span.event) << "\",\"request\":" << span.request
        << ",\"t_s\":";
    std::snprintf(buf, sizeof(buf), "%.6f", sim_to_seconds(span.at));
    out << buf << ",\"gpu\":" << span.gpu << ",\"detail\":" << span.detail
        << "}\n";
  }
}

std::string TelemetryExporter::to_csv() const {
  // Union of metric names across all rows (runs can register metrics
  // lazily, e.g. per-model gauges appearing mid-run).
  std::set<std::string> names;
  for (const MetricsSnapshot& snap : series_) {
    for (const auto& [name, value] : snap.values) names.insert(name);
  }
  std::vector<std::string> columns;
  columns.reserve(names.size() + 2);
  columns.push_back("time_s");
  columns.push_back("run");
  columns.insert(columns.end(), names.begin(), names.end());
  CsvWriter csv(columns);
  for (const MetricsSnapshot& snap : series_) {
    std::vector<std::string> row;
    row.reserve(columns.size());
    row.push_back(CsvWriter::field(sim_to_seconds(snap.at)));
    row.push_back(snap.label);
    for (const std::string& name : names) {
      row.push_back(snap.has(name) ? CsvWriter::field(snap.value(name))
                                   : std::string());
    }
    csv.add_row(std::move(row));
  }
  return csv.str();
}

void TelemetryExporter::dump(std::FILE* out) const {
  if (series_.empty()) {
    std::fprintf(out, "telemetry: no rows emitted\n");
    return;
  }
  dump_snapshot(series_.back(), out);
}

}  // namespace gfaas::telemetry
