#include "telemetry/trace_span.h"

#include <cmath>

#include "common/log.h"
#include "common/rng.h"

namespace gfaas::telemetry {

const char* span_event_name(SpanEvent event) {
  switch (event) {
    case SpanEvent::kSubmit:
      return "submit";
    case SpanEvent::kAdmit:
      return "admit";
    case SpanEvent::kQueue:
      return "queue";
    case SpanEvent::kShed:
      return "shed";
    case SpanEvent::kExpired:
      return "expired";
    case SpanEvent::kDispatch:
      return "dispatch";
    case SpanEvent::kModelLoad:
      return "model_load";
    case SpanEvent::kExecute:
      return "execute";
    case SpanEvent::kRetry:
      return "retry";
    case SpanEvent::kHedge:
      return "hedge";
    case SpanEvent::kComplete:
      return "complete";
    case SpanEvent::kFail:
      return "fail";
    case SpanEvent::kSteal:
      return "steal";
  }
  return "unknown";
}

namespace {

std::uint64_t sample_threshold_for(double rate) {
  if (rate >= 1.0) return ~0ULL;
  if (rate <= 0.0) return 0;
  // rate * 2^64, computed in long double to stay inside uint64 range.
  return static_cast<std::uint64_t>(
      std::ldexp(static_cast<long double>(rate), 64));
}

}  // namespace

SpanRecorder::SpanRecorder(SpanRecorderConfig config)
    : config_(config), sample_threshold_(sample_threshold_for(config.sample_rate)) {
  GFAAS_CHECK(config.capacity > 0);
  ring_.resize(config.capacity);
}

bool SpanRecorder::sampled(std::int64_t request_id) const {
  if (sample_threshold_ == ~0ULL) return true;
  SplitMix64 hash(static_cast<std::uint64_t>(request_id) ^ config_.seed);
  return hash.next() < sample_threshold_;
}

void SpanRecorder::record(std::int64_t request_id, SpanEvent event, SimTime at,
                          std::int32_t gpu, std::int64_t detail) {
  if (!sampled(request_id)) return;
  SpanRecord& slot = ring_[head_];
  if (size_ == ring_.size()) {
    ++overwritten_;
  } else {
    ++size_;
  }
  slot.request = request_id;
  slot.at = at;
  slot.event = event;
  slot.gpu = gpu;
  slot.shard = shard_;
  slot.detail = detail;
  head_ = (head_ + 1) % ring_.size();
  ++recorded_;
  if (sink_) sink_(slot);
}

std::vector<SpanRecord> SpanRecorder::snapshot() const {
  std::vector<SpanRecord> out;
  out.reserve(size_);
  const std::size_t start = (head_ + ring_.size() - size_) % ring_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

}  // namespace gfaas::telemetry
