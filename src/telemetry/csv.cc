#include "telemetry/csv.h"

#include <cstdio>

#include "common/log.h"

namespace gfaas::telemetry {

CsvWriter::CsvWriter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  GFAAS_CHECK(!columns_.empty());
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  GFAAS_CHECK(cells.size() == columns_.size())
      << "csv row has " << cells.size() << " cells, header has "
      << columns_.size();
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::str() const {
  std::string out;
  auto emit = [&out](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += escape(row[c]);
    }
    out += '\n';
  };
  emit(columns_);
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string CsvWriter::field(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace gfaas::telemetry
