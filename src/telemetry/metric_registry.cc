#include "telemetry/metric_registry.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace gfaas::telemetry {

std::size_t thread_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return slot;
}

Histogram::Histogram(HistogramOptions options)
    : options_(options), log_min_(std::log10(options.min_value)) {
  GFAAS_CHECK(options.min_value > 0 && options.max_value > options.min_value &&
              options.bins_per_decade > 0);
  const double decades = std::log10(options.max_value) - log_min_;
  buckets_ = static_cast<std::size_t>(
      std::ceil(decades * options.bins_per_decade) + 1);
  cells_ = std::vector<std::atomic<std::int64_t>>(kMetricShards * buckets_);
}

int Histogram::bucket_for(double x) const {
  if (!(x > options_.min_value)) return 0;  // also catches NaN
  const double b = (std::log10(x) - log_min_) * options_.bins_per_decade;
  const int bi = static_cast<int>(b);
  return std::min(bi, static_cast<int>(buckets_) - 1);
}

double Histogram::bucket_lower(int b) const {
  return std::pow(10.0, log_min_ + static_cast<double>(b) / options_.bins_per_decade);
}

double Histogram::bucket_upper(int b) const {
  return std::pow(10.0,
                  log_min_ + static_cast<double>(b + 1) / options_.bins_per_decade);
}

std::vector<std::int64_t> Histogram::aggregate() const {
  std::vector<std::int64_t> buckets(buckets_, 0);
  for (std::size_t shard = 0; shard < kMetricShards; ++shard) {
    const std::size_t base = shard * buckets_;
    for (std::size_t b = 0; b < buckets_; ++b) {
      buckets[b] += cells_[base + b].load(std::memory_order_relaxed);
    }
  }
  return buckets;
}

std::int64_t Histogram::count() const {
  std::int64_t total = 0;
  for (const auto& cell : cells_) total += cell.load(std::memory_order_relaxed);
  return total;
}

double Histogram::quantile(double q) const {
  GFAAS_CHECK(q >= 0.0 && q <= 1.0);
  const std::vector<std::int64_t> buckets = aggregate();
  std::int64_t total = 0;
  for (std::int64_t c : buckets) total += c;
  if (total == 0) return 0.0;
  const std::int64_t rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(q * static_cast<double>(total))));
  std::int64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    if (seen + buckets[b] >= rank) {
      const double within = static_cast<double>(rank - seen) /
                            static_cast<double>(buckets[b]);
      const int bi = static_cast<int>(b);
      const double lo = bucket_lower(bi);
      const double hi = std::min(bucket_upper(bi), options_.max_value);
      return lo + within * (hi - lo);
    }
    seen += buckets[b];
  }
  return options_.max_value;
}

double MetricsSnapshot::value(std::string_view name, double fallback) const {
  const auto it = std::lower_bound(
      values.begin(), values.end(), name,
      [](const std::pair<std::string, double>& v, std::string_view n) {
        return v.first < n;
      });
  if (it != values.end() && it->first == name) return it->second;
  return fallback;
}

bool MetricsSnapshot::has(std::string_view name) const {
  const auto it = std::lower_bound(
      values.begin(), values.end(), name,
      [](const std::pair<std::string, double>& v, std::string_view n) {
        return v.first < n;
      });
  return it != values.end() && it->first == name;
}

void dump_snapshot(const MetricsSnapshot& snapshot, std::FILE* out) {
  std::fprintf(out, "telemetry snapshot%s%s at t=%.3fs (%zu metrics)\n",
               snapshot.label.empty() ? "" : " ", snapshot.label.c_str(),
               sim_to_seconds(snapshot.at), snapshot.values.size());
  for (const auto& [name, value] : snapshot.values) {
    std::fprintf(out, "  %s=%.6g\n", name.c_str(), value);
  }
}

Counter* MetricRegistry::counter(const std::string& name) {
  common::MutexLock lock(&mu_);
  auto it = counter_names_.find(name);
  if (it != counter_names_.end()) return it->second;
  counters_.emplace_back();
  return counter_names_.emplace(name, &counters_.back()).first->second;
}

Gauge* MetricRegistry::gauge(const std::string& name) {
  common::MutexLock lock(&mu_);
  auto it = gauge_names_.find(name);
  if (it != gauge_names_.end()) return it->second;
  gauges_.emplace_back();
  return gauge_names_.emplace(name, &gauges_.back()).first->second;
}

Histogram* MetricRegistry::histogram(const std::string& name,
                                     HistogramOptions options) {
  common::MutexLock lock(&mu_);
  auto it = histogram_names_.find(name);
  if (it != histogram_names_.end()) return it->second;
  histograms_.emplace_back(options);
  return histogram_names_.emplace(name, &histograms_.back()).first->second;
}

MetricsSnapshot MetricRegistry::snapshot() const {
  common::MutexLock lock(&mu_);
  MetricsSnapshot snap;
  snap.values.reserve(counter_names_.size() + gauge_names_.size() +
                      4 * histogram_names_.size());
  // std::map iteration is name-ordered; the three instrument families are
  // merged afterwards with one sort to keep `values` globally name-sorted.
  for (const auto& [name, counter] : counter_names_) {
    snap.values.emplace_back(name, static_cast<double>(counter->value()));
  }
  for (const auto& [name, gauge] : gauge_names_) {
    snap.values.emplace_back(name, gauge->value());
  }
  for (const auto& [name, histogram] : histogram_names_) {
    snap.values.emplace_back(name + ".count",
                             static_cast<double>(histogram->count()));
    snap.values.emplace_back(name + ".p50", histogram->quantile(0.50));
    snap.values.emplace_back(name + ".p95", histogram->quantile(0.95));
    snap.values.emplace_back(name + ".p99", histogram->quantile(0.99));
  }
  std::sort(snap.values.begin(), snap.values.end());
  return snap;
}

}  // namespace gfaas::telemetry
