// Streaming time-series exporter.
//
// Ticks on either executor (the simulator or the wall-clock
// RealTimeExecutor — the same dual-mode discipline as the Autoscaler):
// each tick runs the registered probes, snapshots the registry, appends
// the row to an in-memory series, and optionally streams it as one JSONL
// line. Rows are stamped at NOMINAL tick times (the start row snapped
// down to an interval multiple, then + k*interval, and the finish() row
// at the next nominal tick) rather than the executor's actual now(), so
// a simulated run and a time-compressed realtime run of the same
// workload produce byte-comparable timestamps and row counts.
//
// Like the Autoscaler, the exporter keeps re-arming only while the
// nominal clock is inside the horizon, so a drained simulator run
// terminates. finish() emits one final row (and, when configured, the
// sampled span ring) after the workload completes; call it before
// tearing down the instrumented layers — probes read their state.
#pragma once

#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "common/time.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"

namespace gfaas::telemetry {

struct TelemetryExporterConfig {
  SimTime interval = sec(5);
  // Stamped into every row/JSONL line (e.g. the bench run name).
  std::string label;
  // Live JSONL sink; null = in-memory series only.
  std::ostream* jsonl = nullptr;
  // Also write the sampled span ring to the JSONL sink at finish().
  bool export_spans = false;
};

class TelemetryExporter {
 public:
  TelemetryExporter(sim::Executor* executor, Telemetry* telemetry,
                    TelemetryExporterConfig config = {});
  ~TelemetryExporter();

  // Emits the t=now row and arms periodic ticks up to `horizon`
  // (inclusive). Must be called from the worker thread (or before the
  // realtime executor starts processing).
  void start(SimTime horizon);

  // Emits the final row at the next nominal tick boundary; stops
  // ticking. Idempotent. Worker thread only.
  void finish();

  const std::vector<MetricsSnapshot>& series() const { return series_; }
  const MetricsSnapshot& last() const;

  // Full series as CSV: time_s + run + the union of metric columns
  // (name-sorted); rows missing a metric leave the cell empty.
  std::string to_csv() const;

  // Final snapshot as "name=value" lines (bench failure diagnostics).
  void dump(std::FILE* out) const;

 private:
  void arm();
  void tick();
  void emit_row(SimTime nominal);
  void write_jsonl(const MetricsSnapshot& snapshot);
  void write_spans_jsonl();

  sim::Executor* executor_;
  Telemetry* telemetry_;
  TelemetryExporterConfig config_;
  SimTime horizon_ = 0;
  SimTime next_ = 0;  // next nominal tick time
  bool started_ = false;
  bool finished_ = false;
  std::uint64_t pending_tick_ = 0;
  bool tick_armed_ = false;
  std::vector<MetricsSnapshot> series_;
};

}  // namespace gfaas::telemetry
