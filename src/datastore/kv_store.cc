#include "datastore/kv_store.h"

#include <algorithm>

#include "common/log.h"

namespace gfaas::datastore {

namespace {
bool has_prefix(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}
}  // namespace

Revision KvStore::apply_put_locked(const std::string& key, const std::string& value,
                                   LeaseId lease) {
  ++revision_;
  auto [it, inserted] = data_.try_emplace(key);
  KeyValue& kv = it->second;
  kv.key = key;
  kv.value = value;
  kv.mod_revision = revision_;
  if (inserted) {
    kv.create_revision = revision_;
    kv.version = 1;
  } else {
    ++kv.version;
  }
  kv.lease = lease;
  notify_locked(WatchEvent{EventType::kPut, kv, revision_});
  return revision_;
}

bool KvStore::apply_erase_locked(const std::string& key) {
  auto it = data_.find(key);
  if (it == data_.end()) return false;
  ++revision_;
  WatchEvent event{EventType::kDelete, it->second, revision_};
  data_.erase(it);
  notify_locked(event);
  return true;
}

void KvStore::notify_locked(const WatchEvent& event) {
  // Copy the watcher list so callbacks may add/remove watchers.
  std::vector<Watcher> snapshot = watchers_;
  for (const auto& w : snapshot) {
    if (has_prefix(event.kv.key, w.prefix)) w.cb(event);
  }
}

Revision KvStore::put(const std::string& key, const std::string& value, LeaseId lease) {
  common::MutexLock lock(&mu_);
  if (lease != 0) {
    GFAAS_CHECK(leases_.count(lease) > 0) << "put with unknown lease " << lease;
  }
  return apply_put_locked(key, value, lease);
}

StatusOr<KeyValue> KvStore::get(const std::string& key) const {
  common::MutexLock lock(&mu_);
  auto it = data_.find(key);
  if (it == data_.end()) return Status::NotFound("no such key: " + key);
  return it->second;
}

std::vector<KeyValue> KvStore::range(const std::string& prefix) const {
  common::MutexLock lock(&mu_);
  std::vector<KeyValue> out;
  for (auto it = data_.lower_bound(prefix); it != data_.end(); ++it) {
    if (!has_prefix(it->first, prefix)) break;
    out.push_back(it->second);
  }
  return out;
}

bool KvStore::erase(const std::string& key) {
  common::MutexLock lock(&mu_);
  return apply_erase_locked(key);
}

std::size_t KvStore::erase_prefix(const std::string& prefix) {
  common::MutexLock lock(&mu_);
  std::vector<std::string> keys;
  for (auto it = data_.lower_bound(prefix); it != data_.end(); ++it) {
    if (!has_prefix(it->first, prefix)) break;
    keys.push_back(it->first);
  }
  for (const auto& k : keys) apply_erase_locked(k);
  return keys.size();
}

std::size_t KvStore::size() const {
  common::MutexLock lock(&mu_);
  return data_.size();
}

Revision KvStore::revision() const {
  common::MutexLock lock(&mu_);
  return revision_;
}

bool KvStore::compare_holds_locked(const Compare& c) const {
  auto it = data_.find(c.key);
  const bool exists = it != data_.end();
  switch (c.target) {
    case Compare::Target::kExists:
      return exists == c.exists;
    case Compare::Target::kVersion:
      return exists && it->second.version == c.number;
    case Compare::Target::kModRevision:
      return exists && it->second.mod_revision == c.number;
    case Compare::Target::kValue:
      return exists && it->second.value == c.value;
  }
  return false;
}

TxnResult KvStore::txn(const std::vector<Compare>& compares,
                       const std::vector<TxnOp>& then_ops,
                       const std::vector<TxnOp>& else_ops) {
  common::MutexLock lock(&mu_);
  TxnResult result;
  result.succeeded =
      std::all_of(compares.begin(), compares.end(),
                  [&](const Compare& c) { return compare_holds_locked(c); });
  const auto& ops = result.succeeded ? then_ops : else_ops;
  for (const auto& op : ops) {
    if (op.kind == TxnOp::Kind::kPut) {
      apply_put_locked(op.key, op.value, /*lease=*/0);
    } else {
      apply_erase_locked(op.key);
    }
  }
  result.revision = revision_;
  return result;
}

bool KvStore::compare_and_swap(const std::string& key, const std::string& expected,
                               const std::string& desired) {
  Compare cmp;
  cmp.key = key;
  if (expected.empty()) {
    cmp.target = Compare::Target::kExists;
    cmp.exists = false;
  } else {
    cmp.target = Compare::Target::kValue;
    cmp.value = expected;
  }
  return txn({cmp}, {{TxnOp::Kind::kPut, key, desired}}).succeeded;
}

WatchId KvStore::watch(const std::string& prefix, WatchCallback cb) {
  common::MutexLock lock(&mu_);
  const WatchId id = next_watch_++;
  watchers_.push_back(Watcher{id, prefix, std::move(cb)});
  return id;
}

bool KvStore::unwatch(WatchId id) {
  common::MutexLock lock(&mu_);
  auto it = std::find_if(watchers_.begin(), watchers_.end(),
                         [&](const Watcher& w) { return w.id == id; });
  if (it == watchers_.end()) return false;
  watchers_.erase(it);
  return true;
}

LeaseId KvStore::grant_lease(SimTime ttl) {
  common::MutexLock lock(&mu_);
  GFAAS_CHECK(ttl > 0) << "lease ttl must be positive";
  const LeaseId id = next_lease_++;
  leases_[id] = LeaseInfo{ttl, now() + ttl};
  return id;
}

bool KvStore::keepalive(LeaseId lease) {
  common::MutexLock lock(&mu_);
  auto it = leases_.find(lease);
  if (it == leases_.end()) return false;
  it->second.expires_at = now() + it->second.ttl;
  return true;
}

bool KvStore::revoke_lease(LeaseId lease) {
  common::MutexLock lock(&mu_);
  auto it = leases_.find(lease);
  if (it == leases_.end()) return false;
  leases_.erase(it);
  std::vector<std::string> victims;
  for (const auto& [key, kv] : data_) {
    if (kv.lease == lease) victims.push_back(key);
  }
  for (const auto& k : victims) apply_erase_locked(k);
  return true;
}

std::size_t KvStore::expire_leases() {
  common::MutexLock lock(&mu_);
  const SimTime t = now();
  std::vector<LeaseId> due;
  for (const auto& [id, info] : leases_) {
    if (info.expires_at <= t) due.push_back(id);
  }
  std::size_t deleted = 0;
  for (LeaseId id : due) {
    leases_.erase(id);
    std::vector<std::string> victims;
    for (const auto& [key, kv] : data_) {
      if (kv.lease == id) victims.push_back(key);
    }
    for (const auto& k : victims) {
      apply_erase_locked(k);
      ++deleted;
    }
  }
  return deleted;
}

}  // namespace gfaas::datastore
