#include "datastore/keys.h"

#include <cstdlib>

namespace gfaas::datastore::keys {

std::string gpu_status(GpuId gpu) {
  return "gpu/" + std::to_string(gpu.value()) + "/status";
}
std::string gpu_finish_time(GpuId gpu) {
  return "gpu/" + std::to_string(gpu.value()) + "/finish_time";
}
std::string gpu_lru(GpuId gpu) {
  return "gpu/" + std::to_string(gpu.value()) + "/lru";
}
std::string gpu_free_mem(GpuId gpu) {
  return "gpu/" + std::to_string(gpu.value()) + "/free_mem";
}
std::string model_locations(ModelId model) {
  return "model/" + std::to_string(model.value()) + "/locations";
}
std::string fn_latency(const std::string& fn_name) {
  return "fn/" + fn_name + "/latency";
}
std::string fn_invocations(const std::string& fn_name) {
  return "fn/" + fn_name + "/invocations";
}

std::string encode_id_list(const std::vector<std::int64_t>& ids) {
  std::string out;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(ids[i]);
  }
  return out;
}

std::vector<std::int64_t> decode_id_list(const std::string& encoded) {
  std::vector<std::int64_t> out;
  std::size_t pos = 0;
  while (pos < encoded.size()) {
    std::size_t comma = encoded.find(',', pos);
    if (comma == std::string::npos) comma = encoded.size();
    out.push_back(std::strtoll(encoded.substr(pos, comma - pos).c_str(), nullptr, 10));
    pos = comma + 1;
  }
  return out;
}

}  // namespace gfaas::datastore::keys
