// Etcd-substitute key-value store (the paper's Datastore, §III-E).
//
// The paper uses etcd to exchange GPU status, per-GPU LRU lists, and
// estimated latencies between the Scheduler, Cache Manager, and GPU
// Managers. This in-process store reproduces the etcd features those
// components rely on:
//
//   * revisioned puts — every mutation bumps a store-wide revision; each
//     key tracks create/mod revision and a per-key version counter;
//   * range (prefix) reads — e.g. get all keys under "gpu/<id>/";
//   * compare-and-swap transactions — optimistic concurrency for the
//     scheduler's read-modify-write of GPU status;
//   * watches — prefix-scoped callbacks on PUT/DELETE, used by the
//     Scheduler to learn about status changes without polling;
//   * leases — TTL-scoped keys (GPU Manager heartbeats) expired against a
//     Clock, so liveness works in both simulated and real time.
//
// Thread-safety: all public methods take an internal mutex, so the store
// can be shared by the real-time executor's worker threads as well as the
// single-threaded simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/time.h"
#include "sim/simulator.h"

namespace gfaas::datastore {

using Revision = std::int64_t;
using LeaseId = std::int64_t;
using WatchId = std::int64_t;

struct KeyValue {
  std::string key;
  std::string value;
  Revision create_revision = 0;
  Revision mod_revision = 0;
  std::int64_t version = 0;  // per-key mutation count since creation
  LeaseId lease = 0;         // 0 = no lease
};

enum class EventType { kPut, kDelete };

struct WatchEvent {
  EventType type;
  KeyValue kv;           // for kDelete, carries the last value
  Revision revision = 0;  // store revision at which the event happened
};

using WatchCallback = std::function<void(const WatchEvent&)>;

// One comparison clause of a transaction (etcd-style "compare").
struct Compare {
  enum class Target { kVersion, kModRevision, kValue, kExists };
  std::string key;
  Target target = Target::kExists;
  // For kVersion / kModRevision.
  std::int64_t number = 0;
  // For kValue.
  std::string value;
  // For kExists: expected existence.
  bool exists = true;
};

struct TxnOp {
  enum class Kind { kPut, kDelete };
  Kind kind = Kind::kPut;
  std::string key;
  std::string value;  // for kPut
};

struct TxnResult {
  bool succeeded = false;  // whether the compare clauses all held
  Revision revision = 0;
};

class KvStore {
 public:
  // `clock` drives lease expiry; may be null if leases are unused.
  explicit KvStore(const sim::Clock* clock = nullptr) : clock_(clock) {}

  // --- basic KV ---
  Revision put(const std::string& key, const std::string& value, LeaseId lease = 0);
  StatusOr<KeyValue> get(const std::string& key) const;
  // All keys with the given prefix, in lexicographic order.
  std::vector<KeyValue> range(const std::string& prefix) const;
  // Returns true if the key existed.
  bool erase(const std::string& key);
  // Deletes all keys under a prefix; returns count deleted.
  std::size_t erase_prefix(const std::string& prefix);

  std::size_t size() const;
  Revision revision() const;

  // --- optimistic concurrency ---
  // If all compares hold, applies `then_ops`, else applies `else_ops`.
  TxnResult txn(const std::vector<Compare>& compares,
                const std::vector<TxnOp>& then_ops,
                const std::vector<TxnOp>& else_ops = {});

  // Convenience: put only if the key's current value matches `expected`
  // (empty `expected` = key must not exist). Returns true on success.
  bool compare_and_swap(const std::string& key, const std::string& expected,
                        const std::string& desired);

  // --- watches ---
  // Calls `cb` for every subsequent PUT/DELETE under `prefix`.
  WatchId watch(const std::string& prefix, WatchCallback cb);
  bool unwatch(WatchId id);

  // --- leases ---
  // Grants a lease with the given TTL; keys attached to it are deleted by
  // expire_leases() once the clock passes grant-time + ttl.
  LeaseId grant_lease(SimTime ttl);
  // Refreshes the TTL from the current clock time. False if unknown lease.
  bool keepalive(LeaseId lease);
  // Revokes a lease and deletes its keys. False if unknown.
  bool revoke_lease(LeaseId lease);
  // Expires due leases against the clock; returns number of keys deleted.
  // Called by owners periodically (the simulator has no background threads).
  std::size_t expire_leases();

 private:
  struct LeaseInfo {
    SimTime ttl = 0;
    SimTime expires_at = 0;
  };

  Revision apply_put_locked(const std::string& key, const std::string& value,
                            LeaseId lease) REQUIRES(mu_);
  bool apply_erase_locked(const std::string& key) REQUIRES(mu_);
  bool compare_holds_locked(const Compare& c) const REQUIRES(mu_);
  void notify_locked(const WatchEvent& event) REQUIRES(mu_);
  SimTime now() const { return clock_ ? clock_->now() : 0; }

  mutable common::Mutex mu_;
  const sim::Clock* clock_;
  Revision revision_ GUARDED_BY(mu_) = 0;
  std::map<std::string, KeyValue> data_ GUARDED_BY(mu_);
  std::unordered_map<LeaseId, LeaseInfo> leases_ GUARDED_BY(mu_);
  LeaseId next_lease_ GUARDED_BY(mu_) = 1;
  WatchId next_watch_ GUARDED_BY(mu_) = 1;
  struct Watcher {
    WatchId id;
    std::string prefix;
    WatchCallback cb;
  };
  std::vector<Watcher> watchers_ GUARDED_BY(mu_);
};

}  // namespace gfaas::datastore
