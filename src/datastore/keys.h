// Canonical key-space layout for the gFaaS datastore, mirroring how the
// paper's components exchange state through etcd (§III-E):
//
//   gpu/<id>/status          "busy" | "idle"
//   gpu/<id>/finish_time     estimated finish time of queued work (µs)
//   gpu/<id>/lru             comma-separated model ids, LRU -> MRU
//   gpu/<id>/free_mem        free GPU memory (bytes)
//   model/<id>/locations     comma-separated GPU ids caching the model
//   fn/<name>/latency        last reported invocation latency (µs)
//   fn/<name>/invocations    cumulative invocation count
#pragma once

#include <string>
#include <vector>

#include "common/id.h"

namespace gfaas::datastore::keys {

std::string gpu_status(GpuId gpu);
std::string gpu_finish_time(GpuId gpu);
std::string gpu_lru(GpuId gpu);
std::string gpu_free_mem(GpuId gpu);
std::string model_locations(ModelId model);
std::string fn_latency(const std::string& fn_name);
std::string fn_invocations(const std::string& fn_name);

// Encoding helpers for the list-valued keys.
std::string encode_id_list(const std::vector<std::int64_t>& ids);
std::vector<std::int64_t> decode_id_list(const std::string& encoded);

}  // namespace gfaas::datastore::keys
