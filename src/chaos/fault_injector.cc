#include "chaos/fault_injector.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "common/rng.h"
#include "telemetry/telemetry.h"

namespace gfaas::chaos {

// Instrument pointers resolved once at set_telemetry().
struct ChaosInjector::TelemetryHandles {
  telemetry::Counter* domain_kills = nullptr;
  telemetry::Counter* kills_skipped = nullptr;
  telemetry::Counter* gpus_killed = nullptr;
  telemetry::Counter* stalls_injected = nullptr;
  telemetry::Counter* stall_time_us = nullptr;
  telemetry::Counter* degrades = nullptr;
  telemetry::Counter* degrades_skipped = nullptr;
};

std::vector<FaultEvent> make_fault_schedule(const FaultScheduleConfig& config) {
  GFAAS_CHECK(config.horizon > 0);
  GFAAS_CHECK(config.domain_kills_per_hour >= 0 &&
              config.cold_start_stalls_per_hour >= 0);
  GFAAS_CHECK(config.stall_index_bound > 0 && config.max_stall >= 0);
  const double hours = sim_to_seconds(config.horizon) / 3600.0;
  Rng rng(config.seed);

  std::vector<FaultEvent> schedule;
  const auto kills =
      static_cast<std::size_t>(std::llround(config.domain_kills_per_hour * hours));
  for (std::size_t i = 0; i < kills; ++i) {
    FaultEvent event;
    event.kind = FaultKind::kKillDomain;
    // Uniform in (0, horizon): never at t=0 (the fleet must exist) and
    // never exactly at the horizon (nothing left to disrupt).
    event.at = 1 + static_cast<SimTime>(
                       rng.next_below(static_cast<std::uint64_t>(config.horizon - 1)));
    event.domain_ordinal = static_cast<std::size_t>(rng.next_below(1ULL << 30));
    schedule.push_back(event);
  }
  const auto stalls = static_cast<std::size_t>(
      std::llround(config.cold_start_stalls_per_hour * hours));
  for (std::size_t i = 0; i < stalls; ++i) {
    FaultEvent event;
    event.kind = FaultKind::kStallColdStart;
    event.cold_start_index = rng.uniform_int(0, config.stall_index_bound - 1);
    event.stall = config.max_stall > 0
                      ? 1 + static_cast<SimTime>(rng.next_below(
                                static_cast<std::uint64_t>(config.max_stall)))
                      : 0;
    schedule.push_back(event);
  }
  const auto degrades =
      static_cast<std::size_t>(std::llround(config.degrades_per_hour * hours));
  GFAAS_CHECK(degrades == 0 ||
              (config.degrade_factor >= 1.0 && config.max_degrade > 0));
  for (std::size_t i = 0; i < degrades; ++i) {
    FaultEvent event;
    event.kind = FaultKind::kDegradeDomain;
    event.at = 1 + static_cast<SimTime>(
                       rng.next_below(static_cast<std::uint64_t>(config.horizon - 1)));
    event.domain_ordinal = static_cast<std::size_t>(rng.next_below(1ULL << 30));
    event.degrade_factor = config.degrade_factor;
    event.degrade_duration =
        1 + static_cast<SimTime>(
                rng.next_below(static_cast<std::uint64_t>(config.max_degrade)));
    schedule.push_back(event);
  }
  // Stable order: by time, kills before stalls, then by ordinal — so the
  // schedule (and everything downstream) is a pure function of config.
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return schedule;
}

ChaosInjector::ChaosInjector(cluster::ElasticCluster* cluster,
                             std::vector<FaultEvent> schedule,
                             std::size_t min_alive_domains)
    : cluster_(cluster),
      schedule_(std::move(schedule)),
      min_alive_domains_(min_alive_domains) {
  GFAAS_CHECK(cluster_ != nullptr);
  for (const FaultEvent& event : schedule_) {
    if (event.kind == FaultKind::kStallColdStart) {
      GFAAS_CHECK(event.cold_start_index >= 0 && event.stall >= 0);
      stalls_[event.cold_start_index] += event.stall;
    }
  }
}

void ChaosInjector::set_telemetry(telemetry::Telemetry* telemetry) {
  if (telemetry == nullptr) {
    tel_.reset();
    return;
  }
  auto handles = std::make_shared<TelemetryHandles>();
  telemetry::MetricRegistry& m = telemetry->metrics();
  handles->domain_kills = m.counter("chaos.domain_kills");
  handles->kills_skipped = m.counter("chaos.kills_skipped");
  handles->gpus_killed = m.counter("chaos.gpus_killed");
  handles->stalls_injected = m.counter("chaos.stalls_injected");
  handles->stall_time_us = m.counter("chaos.stall_time_us");
  handles->degrades = m.counter("chaos.degrades");
  handles->degrades_skipped = m.counter("chaos.degrades_skipped");
  tel_ = std::move(handles);
}

void ChaosInjector::arm() {
  GFAAS_CHECK(!armed_) << "injector armed twice";
  armed_ = true;
  const SimTime now = cluster_->executor().now();
  for (const FaultEvent& event : schedule_) {
    if (event.kind == FaultKind::kStallColdStart) continue;  // hook-driven
    FaultEvent copy = event;
    cluster_->executor().schedule_after(
        std::max<SimTime>(0, event.at - now), [this, copy] {
          serial_.AssertHeld();  // fault events fire on the worker thread
          if (copy.kind == FaultKind::kKillDomain) {
            fire_kill(copy);
          } else {
            fire_degrade(copy);
          }
        });
  }
}

std::size_t ChaosInjector::resolve_victim(std::size_t ordinal,
                                          std::size_t min_alive) const {
  // Resolve the ordinal against the domains alive *now*: the autoscaler
  // may have added single-GPU domains or earlier kills may have emptied
  // some. Alive = at least one registered member.
  const cluster::SchedulerEngine& engine = cluster_->engine();
  std::vector<std::size_t> alive;
  for (std::size_t d = 0; d < cluster_->domain_count(); ++d) {
    for (const GpuId gpu : cluster_->domain_gpus(d)) {
      if (engine.is_registered(gpu)) {
        alive.push_back(d);
        break;
      }
    }
  }
  if (alive.size() <= min_alive) return cluster_->domain_count();
  return alive[ordinal % alive.size()];
}

void ChaosInjector::fire_kill(const FaultEvent& event) {
  const std::size_t victim =
      resolve_victim(event.domain_ordinal, min_alive_domains_);
  if (victim == cluster_->domain_count()) {
    ++counters_.kills_skipped;
    if (tel_) tel_->kills_skipped->add();
    return;
  }
  const cluster::SchedulerEngine& engine = cluster_->engine();
  std::int64_t members = 0;
  for (const GpuId gpu : cluster_->domain_gpus(victim)) {
    if (engine.is_registered(gpu)) ++members;
  }
  cluster_->kill_domain(victim);
  ++counters_.domain_kills;
  counters_.gpus_killed += members;
  if (tel_) {
    tel_->domain_kills->add();
    tel_->gpus_killed->add(members);
  }
}

void ChaosInjector::fire_degrade(const FaultEvent& event) {
  // Degrades do not reduce capacity, so they ignore min_alive_domains_
  // (any alive domain qualifies) and heal on a timer. A member killed
  // mid-window just disappears; healing only touches survivors.
  const std::size_t victim = resolve_victim(event.domain_ordinal, 0);
  if (victim == cluster_->domain_count()) {
    ++counters_.degrades_skipped;
    if (tel_) tel_->degrades_skipped->add();
    return;
  }
  cluster_->degrade_domain(victim, event.degrade_factor);
  ++counters_.degrades;
  if (tel_) tel_->degrades->add();
  cluster_->executor().schedule_after(event.degrade_duration, [this, victim] {
    cluster_->degrade_domain(victim, 1.0);
  });
}

std::function<SimTime(std::int64_t)> ChaosInjector::cold_start_delay_hook() {
  return [this](std::int64_t index) {
    // Invoked from Autoscaler::begin_cold_start on the worker thread.
    serial_.AssertHeld();
    auto it = stalls_.find(index);
    if (it == stalls_.end()) return SimTime{0};
    ++counters_.stalls_injected;
    counters_.stall_time += it->second;
    if (tel_) {
      tel_->stalls_injected->add();
      tel_->stall_time_us->add(it->second);
    }
    return it->second;
  };
}

}  // namespace gfaas::chaos
