// Deterministic fault-injection harness (failure-domain chaos).
//
// A fault schedule is a seeded, pre-materialized list of events — domain
// kills and cold-start stalls — generated once from a (seed, config)
// pair, so the same schedule replays bit-identically on the simulator
// and approximately on the wall-clock executor (the replayability the
// chaos determinism tests assert). Events address failure domains by
// *ordinal*, resolved against the domains alive at fire time: the
// schedule never names GPU ids, so it stays valid while the autoscaler
// grows and shrinks the fleet underneath it.
//
// The injector is deliberately dumb: it arms executor events and calls
// ElasticCluster::kill_domain. Everything interesting — requeue, retry,
// hedging, re-provisioning — happens in the layers under test.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "cluster/elastic_cluster.h"
#include "common/thread_annotations.h"
#include "common/time.h"

namespace gfaas::telemetry {
class Telemetry;
}  // namespace gfaas::telemetry

namespace gfaas::chaos {

enum class FaultKind {
  // Kills every registered GPU of one failure domain at once (correlated
  // failure: PSU, PCIe switch, host kernel panic).
  kKillDomain,
  // Stalls one autoscaler cold start (slow container pull / late
  // instance), addressed by cold-start ordinal.
  kStallColdStart,
  // Gray-degrades one domain for a window: executions run `factor`x
  // slower while the scheduler keeps seeing healthy estimates (thermal
  // throttle, noisy neighbor). The straggler fault hedging exists for.
  kDegradeDomain,
};

struct FaultEvent {
  SimTime at = 0;
  FaultKind kind = FaultKind::kKillDomain;
  // kKillDomain: resolved at fire time as `ordinal % alive_domains` so
  // the schedule is fleet-size independent.
  std::size_t domain_ordinal = 0;
  // kStallColdStart: which cold start (0-based, in begin order) and how
  // long to stall it.
  std::int64_t cold_start_index = -1;
  SimTime stall = 0;
  // kDegradeDomain: slowdown factor and how long before the domain heals.
  double degrade_factor = 1.0;
  SimTime degrade_duration = 0;
};

struct FaultScheduleConfig {
  std::uint64_t seed = 1;
  // Events are drawn uniformly over (0, horizon).
  SimTime horizon = minutes(60);
  // Expected domain kills per hour (the bench's "k%/hour fleet kills" is
  // kill_fraction_per_hour * domain_count). The realized count is the
  // rounded expectation — deterministic, not Poisson — so two configs
  // differing only in seed kill the same number of domains.
  double domain_kills_per_hour = 0.0;
  // Expected cold-start stalls per hour, each hitting a cold-start
  // ordinal in [0, stall_index_bound) for up to max_stall.
  double cold_start_stalls_per_hour = 0.0;
  std::int64_t stall_index_bound = 32;
  SimTime max_stall = sec(30);
  // Expected gray degradations per hour: one domain runs degrade_factor x
  // slower for a window of up to max_degrade, then heals.
  double degrades_per_hour = 0.0;
  double degrade_factor = 8.0;
  SimTime max_degrade = minutes(3);
};

// Builds the schedule: kill times sorted ascending, ordinals/stalls drawn
// from a private Rng stream. Pure function of the config.
std::vector<FaultEvent> make_fault_schedule(const FaultScheduleConfig& config);

struct ChaosCounters {
  std::int64_t domain_kills = 0;   // kill events that found a victim
  std::int64_t kills_skipped = 0;  // fired with no (spare-able) domain alive
  std::int64_t gpus_killed = 0;    // registered members removed by kills
  std::int64_t stalls_injected = 0;
  SimTime stall_time = 0;
  std::int64_t degrades = 0;          // degrade events that found a victim
  std::int64_t degrades_skipped = 0;  // fired with no domain alive
};

class ChaosInjector {
 public:
  // `cluster` must outlive the injector. `min_alive_domains` guards the
  // blast radius: a kill that would leave fewer than this many domains
  // with registered GPUs is skipped (counted in kills_skipped) — total
  // extinction tests set it to 0.
  ChaosInjector(cluster::ElasticCluster* cluster, std::vector<FaultEvent> schedule,
                std::size_t min_alive_domains = 1);

  // Schedules every event on the cluster's executor (relative to now).
  // Call once, before the run starts.
  void arm();

  // Attaches the live-telemetry seam: kill / stall / degrade counters
  // mirrored into the registry as faults fire. Nullable; wire before
  // arm().
  void set_telemetry(telemetry::Telemetry* telemetry);

  // Adapter for autoscale::AutoscalerConfig::cold_start_delay_hook:
  // returns the scheduled stall for the index-th cold start (0 if none).
  std::function<SimTime(std::int64_t)> cold_start_delay_hook();

  const std::vector<FaultEvent>& schedule() const { return schedule_; }
  const ChaosCounters& counters() const {
    serial_.AssertHeld();
    return counters_;
  }

 private:
  void fire_kill(const FaultEvent& event) REQUIRES(serial_);
  void fire_degrade(const FaultEvent& event) REQUIRES(serial_);
  // Victim selection shared by kills and degrades: the event ordinal
  // resolved against the domains with >= 1 registered member right now.
  // Returns domain_count() when none qualify.
  std::size_t resolve_victim(std::size_t ordinal, std::size_t min_alive) const;

  cluster::ElasticCluster* cluster_;
  std::vector<FaultEvent> schedule_;
  std::size_t min_alive_domains_;
  // Thread-affinity capability: fault events and the cold-start hook all
  // fire on the executor worker thread; counters are read post-run.
  common::ExecutorAffinity serial_;
  bool armed_ = false;
  // Telemetry instrument handles; null when detached.
  struct TelemetryHandles;
  std::shared_ptr<TelemetryHandles> tel_;
  // cold-start ordinal -> injected stall (collisions accumulate).
  std::unordered_map<std::int64_t, SimTime> stalls_;
  ChaosCounters counters_ GUARDED_BY(serial_);
};

}  // namespace gfaas::chaos
