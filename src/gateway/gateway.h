// Gateway serving layer: the async front end of the cluster (paper
// Fig. 3: "the Gateway submits requests" — this is that Gateway).
//
// The trace-replay drivers feed the engine a pre-materialized request
// stream; the Gateway instead serves live submissions with per-request
// SLO metadata and admission control, turning the ElasticCluster seam
// into something that can serve real RPCs in both execution modes
// (SimCluster, evaluation; RealTimeCluster, deployment):
//
//   * submit(request, done) stamps arrival and deadline (arrival + SLO),
//     and resolves `done` exactly once with the request's disposition —
//     completed, shed, expired, or failed (GPU died mid-request);
//   * submit_batch(cells) is the bulk form the concurrent ingestion path
//     drains into: one burst of submissions shares a single fleet-scan
//     finish-time estimate (memoized between admissions, invalidated by
//     each one), producing exactly the same shed-vs-queue decisions as
//     submitting the cells one at a time (bench_seed_digest-guarded);
//   * admission is a bounded in-flight window: at most max_in_flight
//     requests live inside the engine at once. A submission over the
//     window faces the shed-vs-queue decision: the Gateway estimates the
//     request's completion from the engine's own finish-time estimates
//     (§IV-A) plus the backlog ahead of it, sheds immediately when the
//     estimate already busts the deadline (the client can retry
//     elsewhere now instead of timing out later), and otherwise holds
//     the request in a bounded pending queue that drains on completions;
//   * per-model serving stats (completions, SLO attainment, latency
//     moments) and a trailing-window outcome record (latency quantiles,
//     shed and deep-wait fractions) feed the SLO-aware scaling policy:
//     the caller wires autoscale::SloAwarePolicy's probe callback to
//     windowed_outcomes() (autoscale and gateway never link each other);
//   * resilience, off by default (GatewayConfig::max_retries / hedging):
//     a failed request is transparently resubmitted on surviving
//     capacity while its SLO budget allows, and a deep-waiting request
//     is hedged — duplicated onto an idle GPU, first completion wins,
//     the loser is cancelled through the engine's abort path — with the
//     caller's callback still firing exactly once.
//
// Threading: the Gateway's own state is not internally synchronized —
// submit()/submit_batch() and engine completions all run on the
// executor's worker thread. Client threads do not schedule submissions
// themselves anymore: they push {request, callback} cells into a
// ConcurrentIngress (gateway/ingress.h), whose lock-free MPSC queue the
// worker drains into submit_batch() in one pass. Completion-callback
// fan-out can be moved off the worker thread with
// set_callback_executor(): every resolution is then posted, in
// resolution order, to a dedicated concurrent::CallbackExecutor thread,
// so a slow client callback can never stall dispatch. Callbacks remain
// exactly-once per request either way.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/elastic_cluster.h"
#include "common/thread_annotations.h"
#include "core/request.h"
#include "metrics/stats.h"

namespace gfaas::concurrent {
class CallbackExecutor;
}  // namespace gfaas::concurrent

namespace gfaas::telemetry {
class Telemetry;
}  // namespace gfaas::telemetry

namespace gfaas::gateway {

// Final disposition of one submitted request.
enum class Disposition {
  kCompleted,  // served; slo_met tells whether within deadline
  kShed,       // rejected at admission (load shedding)
  kExpired,    // deadline passed before the engine could take it
  kFailed,     // GPU died mid-request (chaos path)
};

const char* disposition_name(Disposition disposition);

struct GatewayResult {
  Disposition disposition = Disposition::kCompleted;
  // Valid for kCompleted and kFailed; default-initialized otherwise.
  core::CompletionRecord record;
  // Completed within its deadline.
  bool slo_met = false;
};

using ResultCallback = std::function<void(const GatewayResult&)>;

// One unit of ingestion: what a producer thread enqueues and what
// submit_batch consumes. Default-constructible so it can live in the
// MPSC ring's cells.
struct Submission {
  core::Request request;
  ResultCallback done;
};

struct GatewayConfig {
  // Admission window: requests concurrently inside the engine (global
  // queue + local queues + executing). 0 sheds every submission — a
  // drained gateway held in reserve.
  std::size_t max_in_flight = 256;
  // Bounded pending queue for submissions over the window; overflow
  // sheds the newcomer.
  std::size_t max_pending = 4096;
  // Latency SLO stamped onto requests that arrive without a deadline:
  // deadline = arrival + default_slo.
  SimTime default_slo = sec(30);
  // Trailing window for the outcome record the scaling probe reads.
  SimTime stats_window = minutes(2);
  // A completion whose pre-dispatch wait exceeded this fraction of its
  // SLO budget (deadline - arrival) counts as a deep wait.
  double wait_budget_fraction = 0.25;

  // --- failure resilience (chaos path). Both knobs default OFF so the
  // serving path is byte-identical to the plain engine when unused (the
  // bench_seed_digest guard).
  //
  // Transparent retry: a request whose completion hook fires failed=true
  // (its GPU died) is resubmitted onto surviving capacity up to this many
  // times before the caller sees kFailed. A retry is only spent when the
  // engine's own finish-time estimate says it can still make the
  // deadline; otherwise the failure is reported at once with the
  // original cause.
  int max_retries = 0;
  // Tail-latency hedging: a request still waiting (not dispatched) after
  // this fraction of its SLO budget (deadline - arrival) is duplicated
  // onto an idle schedulable GPU — warm holder preferred, else the
  // least-loaded. First completion wins; the loser is cancelled through
  // the engine's abort path, and the caller's callback fires exactly
  // once either way. 0 disables. Requests without a finite deadline are
  // never hedged (no budget to race against).
  double hedge_budget_fraction = 0.0;
  // When the hedge trigger finds no idle GPU (fleet saturated), re-check
  // after this long, until the deadline passes.
  SimTime hedge_retry_interval = msec(50);
};

// Serving counters, whole-run.
struct GatewayCounters {
  std::int64_t submitted = 0;
  std::int64_t admitted = 0;
  std::int64_t completed = 0;
  std::int64_t slo_met = 0;
  std::int64_t shed = 0;
  std::int64_t expired = 0;
  std::int64_t failed = 0;
  // --- resilience (see GatewayConfig::max_retries / hedging) ---
  std::int64_t retries = 0;         // failed requests resubmitted
  std::int64_t retries_denied = 0;  // retry budget left, but SLO budget gone
  std::int64_t hedges = 0;          // duplicates launched
  std::int64_t hedge_wins = 0;      // duplicate finished first
  std::int64_t hedges_cancelled = 0;  // duplicates cancelled (primary won)
};

// Per-model serving stats (the serving twin of the per-policy grids).
struct ModelServingStats {
  std::int64_t completed = 0;
  std::int64_t slo_met = 0;
  std::int64_t shed = 0;
  std::int64_t expired = 0;
  std::int64_t failed = 0;
  std::int64_t retried = 0;  // transparent resubmissions after a GPU death
  metrics::StreamingStats latency_s;  // completed requests only

  double slo_attainment() const {
    return completed > 0
               ? static_cast<double>(slo_met) / static_cast<double>(completed)
               : 0.0;
  }
};

// What the scaling probe sees: the trailing stats_window of outcomes.
// Wait (dispatch - arrival) is reported separately from end-to-end
// latency: waits are the part of latency capacity can fix, while the
// end-to-end tail also carries the intrinsic model-load time that no
// fleet size removes (autoscale::SloAwarePolicy steers on the former).
// Because the LALB policy queues a tail of requests on busy GPUs by
// design (cache affinity), a wait *percentile* never reads zero; the
// robust congestion aggregate is deep_wait_fraction — how many requests
// burned more than wait_budget_fraction of their SLO budget waiting.
struct WindowedOutcomes {
  std::size_t completions = 0;
  std::size_t sheds = 0;
  std::size_t deep_waits = 0;
  SimTime p50_latency = 0;
  SimTime p99_latency = 0;

  double shed_fraction() const {
    const std::size_t total = completions + sheds;
    return total > 0 ? static_cast<double>(sheds) / static_cast<double>(total) : 0.0;
  }
  double deep_wait_fraction() const {
    return completions > 0
               ? static_cast<double>(deep_waits) / static_cast<double>(completions)
               : 0.0;
  }
};

class Gateway {
 public:
  // `cluster` must outlive the gateway. The gateway takes over the
  // engine's per-request completion routing for everything it submits;
  // other submitters may still feed the engine directly.
  Gateway(cluster::ElasticCluster* cluster, GatewayConfig config = {});
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  // Attaches the live-telemetry seam: serving counters, latency / wait /
  // admission-estimate-error histograms, per-request lifecycle spans,
  // and a pull probe for queue depths and per-model SLO attainment.
  // Nullable — the default (detached) serving path records nothing and
  // stays byte-identical to the uninstrumented build. Wire before the
  // first submission; `telemetry` must outlive the gateway's last
  // resolution and the exporter's last tick.
  void set_telemetry(telemetry::Telemetry* telemetry);

  // Submits one request for serving. Stamps request.arrival = now and,
  // when the request carries no deadline, deadline = now + default_slo.
  // `done` fires exactly once — possibly synchronously (shed / expired /
  // zero window), otherwise at completion or failure. (With a callback
  // executor attached, "synchronously" becomes "posted immediately".)
  void submit(core::Request request, ResultCallback done);

  // Bulk admission for a drained ingestion burst: submits every cell in
  // order, amortizing the window check and the fleet-scan half of the
  // finish-time estimate over the batch. Decisions are identical to
  // calling submit() per cell — the memoized scan is invalidated by
  // every admission, and only engine-invariant stretches reuse it.
  void submit_batch(std::vector<Submission> batch);

  // Routes every future result callback (and the synchronous shed /
  // expired answers) through `callbacks` instead of invoking them on the
  // executor's worker thread. Pass nullptr to restore inline delivery.
  // Must be set before the first submission; `callbacks` must outlive
  // the gateway's last resolution.
  void set_callback_executor(concurrent::CallbackExecutor* callbacks) {
    callbacks_ = callbacks;
  }

  // Estimated completion time of `request` were it admitted now: the
  // earliest schedulable-GPU availability by the engine's finish-time
  // estimates, plus the request's own service time, scaled by the
  // backlog ahead of it. kSimTimeMax when no GPU is schedulable.
  SimTime estimated_completion(const core::Request& request) const;

  // --- observability ---
  // Like every other Gateway method, these run on the executor's worker
  // thread (or after it has quiesced — drain() is the happens-before
  // edge that lets the driving thread read results when a run ends).
  std::size_t in_flight() const {
    serial_.AssertHeld();
    return in_flight_;
  }
  std::size_t pending() const {
    serial_.AssertHeld();
    return pending_.size();
  }
  const GatewayCounters& counters() const {
    serial_.AssertHeld();
    return counters_;
  }
  // Whole-run SLO attainment over completed requests.
  double slo_attainment() const;
  // Per-model stats, keyed by model id (ordered for stable reports).
  const std::map<std::int64_t, ModelServingStats>& model_stats() const {
    serial_.AssertHeld();
    return model_stats_;
  }
  // Trailing-window outcome record (the SLO-aware scaling signal).
  WindowedOutcomes windowed_outcomes() const;

 private:
  // Seam for tests/negative_compile: the probe reads guarded members
  // WITHOUT the capability and must fail thread-safety analysis — which
  // proves the GUARDED_BY annotations below are actually present.
  friend class ThreadSafetyProbe;

  struct PendingRequest {
    core::Request request;
    ResultCallback done;
    // Completion estimate from the shed-vs-queue decision (0 when the
    // request was admitted without one); telemetry scores the admission
    // estimator against it at resolution.
    SimTime estimate = 0;
  };

  // One admitted request until its callback resolves. The gateway may
  // have up to two engine-side copies racing for it (the primary —
  // possibly a retry reincarnation under the same id — and one hedge
  // under a fresh id); `route_` maps engine-side ids back here. When
  // resilience is off (resilient_ == false) the flight keeps only the
  // request's scalar header — no string / visit-history / hook copies —
  // and routing is the identity, skipping route_ entirely.
  struct Flight {
    core::Request request;  // pristine copy for retries and hedges
    ResultCallback done;
    int retries = 0;
    bool primary_live = true;
    std::int64_t hedge_id = -1;      // engine id of the live hedge, -1 none
    std::uint64_t hedge_event = 0;   // pending hedge-timer event, 0 none
    // First failure seen, reported as the cause if every copy and retry
    // dies (the caller learns what originally went wrong, not what the
    // last doomed duplicate hit).
    core::CompletionRecord first_failure;
    bool failed_before = false;
    // See PendingRequest::estimate.
    SimTime estimate = 0;
  };
  using FlightMap = std::unordered_map<std::int64_t, Flight>;

  // Batch-scoped cache of the fleet scan inside estimated_completion.
  // Valid only while the engine is untouched: every admission (the only
  // engine mutation a submission can cause) invalidates it. Everything
  // request-specific (service time, cache warmth) and everything the
  // batch itself mutates (pending_.size()) is always read live.
  struct BatchMemo {
    bool valid = false;
    SimTime now = 0;
    double mean_finish = 0.0;
    std::size_t counted = 0;
    std::size_t fleet = 0;
    std::size_t global_queue = 0;
  };

  void submit_one(core::Request request, ResultCallback done, BatchMemo* memo)
      REQUIRES(serial_);
  SimTime estimated_completion_impl(const core::Request& request,
                                    BatchMemo* memo) const REQUIRES(serial_);
  void admit(core::Request request, ResultCallback done, SimTime estimate = 0)
      REQUIRES(serial_);
  void resolve_locally(const core::Request& request, Disposition disposition,
                       ResultCallback& done) REQUIRES(serial_);
  // Invokes `done` with `result` — inline, or posted to the callback
  // executor when one is attached. Consumes `done`.
  void deliver(ResultCallback&& done, const GatewayResult& result)
      REQUIRES(serial_);
  void on_engine_result(const core::CompletionRecord& record)
      REQUIRES(serial_);
  // Resolves the flight's callback with `record` (id already normalized
  // to the caller's), retiring the flight and its pending hedge timer.
  void resolve_flight(FlightMap::iterator it, const core::CompletionRecord& record)
      REQUIRES(serial_);
  // Schedules the flight's hedge trigger at hedge_budget_fraction of its
  // SLO budget (no-op when hedging is off or the deadline is infinite).
  void arm_hedge_timer(Flight& flight, SimTime fire_at) REQUIRES(serial_);
  void on_hedge_timer(std::int64_t id) REQUIRES(serial_);
  // Admits from the pending queue while the window has room, expiring
  // requests whose deadline passed while they waited.
  void drain_pending() REQUIRES(serial_);
  void trim_window(SimTime now) const REQUIRES(serial_);

  struct OutcomeSample {
    SimTime completed;
    SimTime latency;
    bool deep_wait;  // wait exceeded wait_budget_fraction of the SLO budget
  };

  cluster::ElasticCluster* cluster_;
  GatewayConfig config_;
  // Retries or hedging enabled: flights keep full pristine request
  // copies and engine-side ids go through route_. Off (the common
  // serving path), both per-submission costs are skipped.
  bool resilient_ = false;
  concurrent::CallbackExecutor* callbacks_ = nullptr;
  // Telemetry instrument handles, resolved once at set_telemetry();
  // null when detached (the hot paths then skip every record).
  struct TelemetryHandles;
  std::unique_ptr<TelemetryHandles> tel_;

  // Thread-affinity capability: all mutable serving state below is
  // worker-thread-only by contract (see the header comment), checked
  // statically via GUARDED_BY under Clang and, when a worker binds the
  // capability, dynamically via the asserts at each entry point.
  common::ExecutorAffinity serial_;

  std::size_t in_flight_ GUARDED_BY(serial_) = 0;
  std::deque<PendingRequest> pending_ GUARDED_BY(serial_);

  // Admitted-but-unresolved requests by their original (caller) id, and
  // the engine-side id -> original id routing for completions. Hedge
  // duplicates get ids from a disjoint namespace so they can never
  // collide with client ids. route_ is only populated when resilient_.
  FlightMap flights_ GUARDED_BY(serial_);
  std::unordered_map<std::int64_t, std::int64_t> route_ GUARDED_BY(serial_);
  std::int64_t next_hedge_id_ GUARDED_BY(serial_) = std::int64_t{1} << 40;

  GatewayCounters counters_ GUARDED_BY(serial_);
  std::map<std::int64_t, ModelServingStats> model_stats_ GUARDED_BY(serial_);
  // Trailing-window outcome samples, trimmed lazily against stats_window.
  mutable std::deque<OutcomeSample> window_latencies_ GUARDED_BY(serial_);
  mutable std::deque<SimTime> window_sheds_ GUARDED_BY(serial_);
};

}  // namespace gfaas::gateway
