// Gateway serving layer: the async front end of the cluster (paper
// Fig. 3: "the Gateway submits requests" — this is that Gateway).
//
// The trace-replay drivers feed the engine a pre-materialized request
// stream; the Gateway instead serves live submissions with per-request
// SLO metadata and admission control, turning the ElasticCluster seam
// into something that can serve real RPCs in both execution modes
// (SimCluster, evaluation; RealTimeCluster, deployment):
//
//   * submit(request, done) stamps arrival and deadline (arrival + SLO),
//     and resolves `done` exactly once with the request's disposition —
//     completed, shed, expired, or failed (GPU died mid-request);
//   * admission is a bounded in-flight window: at most max_in_flight
//     requests live inside the engine at once. A submission over the
//     window faces the shed-vs-queue decision: the Gateway estimates the
//     request's completion from the engine's own finish-time estimates
//     (§IV-A) plus the backlog ahead of it, sheds immediately when the
//     estimate already busts the deadline (the client can retry
//     elsewhere now instead of timing out later), and otherwise holds
//     the request in a bounded pending queue that drains on completions;
//   * per-model serving stats (completions, SLO attainment, latency
//     moments) and a trailing-window outcome record (latency quantiles,
//     shed and deep-wait fractions) feed the SLO-aware scaling policy:
//     the caller wires autoscale::SloAwarePolicy's probe callback to
//     windowed_outcomes() (autoscale and gateway never link each other).
//
// Threading: the Gateway is not internally synchronized. On a
// RealTimeCluster every submit() must run on the executor's worker
// thread (schedule the submission, as the trace/ client generators do);
// completions already arrive there.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cluster/elastic_cluster.h"
#include "core/request.h"
#include "metrics/stats.h"

namespace gfaas::gateway {

// Final disposition of one submitted request.
enum class Disposition {
  kCompleted,  // served; slo_met tells whether within deadline
  kShed,       // rejected at admission (load shedding)
  kExpired,    // deadline passed before the engine could take it
  kFailed,     // GPU died mid-request (chaos path)
};

const char* disposition_name(Disposition disposition);

struct GatewayResult {
  Disposition disposition = Disposition::kCompleted;
  // Valid for kCompleted and kFailed; default-initialized otherwise.
  core::CompletionRecord record;
  // Completed within its deadline.
  bool slo_met = false;
};

using ResultCallback = std::function<void(const GatewayResult&)>;

struct GatewayConfig {
  // Admission window: requests concurrently inside the engine (global
  // queue + local queues + executing). 0 sheds every submission — a
  // drained gateway held in reserve.
  std::size_t max_in_flight = 256;
  // Bounded pending queue for submissions over the window; overflow
  // sheds the newcomer.
  std::size_t max_pending = 4096;
  // Latency SLO stamped onto requests that arrive without a deadline:
  // deadline = arrival + default_slo.
  SimTime default_slo = sec(30);
  // Trailing window for the outcome record the scaling probe reads.
  SimTime stats_window = minutes(2);
  // A completion whose pre-dispatch wait exceeded this fraction of its
  // SLO budget (deadline - arrival) counts as a deep wait.
  double wait_budget_fraction = 0.25;
};

// Serving counters, whole-run.
struct GatewayCounters {
  std::int64_t submitted = 0;
  std::int64_t admitted = 0;
  std::int64_t completed = 0;
  std::int64_t slo_met = 0;
  std::int64_t shed = 0;
  std::int64_t expired = 0;
  std::int64_t failed = 0;
};

// Per-model serving stats (the serving twin of the per-policy grids).
struct ModelServingStats {
  std::int64_t completed = 0;
  std::int64_t slo_met = 0;
  std::int64_t shed = 0;
  std::int64_t expired = 0;
  std::int64_t failed = 0;
  metrics::StreamingStats latency_s;  // completed requests only

  double slo_attainment() const {
    return completed > 0
               ? static_cast<double>(slo_met) / static_cast<double>(completed)
               : 0.0;
  }
};

// What the scaling probe sees: the trailing stats_window of outcomes.
// Wait (dispatch - arrival) is reported separately from end-to-end
// latency: waits are the part of latency capacity can fix, while the
// end-to-end tail also carries the intrinsic model-load time that no
// fleet size removes (autoscale::SloAwarePolicy steers on the former).
// Because the LALB policy queues a tail of requests on busy GPUs by
// design (cache affinity), a wait *percentile* never reads zero; the
// robust congestion aggregate is deep_wait_fraction — how many requests
// burned more than wait_budget_fraction of their SLO budget waiting.
struct WindowedOutcomes {
  std::size_t completions = 0;
  std::size_t sheds = 0;
  std::size_t deep_waits = 0;
  SimTime p50_latency = 0;
  SimTime p99_latency = 0;

  double shed_fraction() const {
    const std::size_t total = completions + sheds;
    return total > 0 ? static_cast<double>(sheds) / static_cast<double>(total) : 0.0;
  }
  double deep_wait_fraction() const {
    return completions > 0
               ? static_cast<double>(deep_waits) / static_cast<double>(completions)
               : 0.0;
  }
};

class Gateway {
 public:
  // `cluster` must outlive the gateway. The gateway takes over the
  // engine's per-request completion routing for everything it submits;
  // other submitters may still feed the engine directly.
  Gateway(cluster::ElasticCluster* cluster, GatewayConfig config = {});

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  // Submits one request for serving. Stamps request.arrival = now and,
  // when the request carries no deadline, deadline = now + default_slo.
  // `done` fires exactly once — possibly synchronously (shed / expired /
  // zero window), otherwise at completion or failure.
  void submit(core::Request request, ResultCallback done);

  // Estimated completion time of `request` were it admitted now: the
  // earliest schedulable-GPU availability by the engine's finish-time
  // estimates, plus the request's own service time, scaled by the
  // backlog ahead of it. kSimTimeMax when no GPU is schedulable.
  SimTime estimated_completion(const core::Request& request) const;

  // --- observability ---
  std::size_t in_flight() const { return in_flight_; }
  std::size_t pending() const { return pending_.size(); }
  const GatewayCounters& counters() const { return counters_; }
  // Whole-run SLO attainment over completed requests.
  double slo_attainment() const;
  // Per-model stats, keyed by model id (ordered for stable reports).
  const std::map<std::int64_t, ModelServingStats>& model_stats() const {
    return model_stats_;
  }
  // Trailing-window outcome record (the SLO-aware scaling signal).
  WindowedOutcomes windowed_outcomes() const;

 private:
  struct PendingRequest {
    core::Request request;
    ResultCallback done;
  };

  void admit(core::Request request, ResultCallback done);
  void resolve_locally(const core::Request& request, Disposition disposition,
                       ResultCallback& done);
  void on_engine_result(const core::CompletionRecord& record, ResultCallback& done);
  // Admits from the pending queue while the window has room, expiring
  // requests whose deadline passed while they waited.
  void drain_pending();
  void trim_window(SimTime now) const;

  struct OutcomeSample {
    SimTime completed;
    SimTime latency;
    bool deep_wait;  // wait exceeded wait_budget_fraction of the SLO budget
  };

  cluster::ElasticCluster* cluster_;
  GatewayConfig config_;

  std::size_t in_flight_ = 0;
  std::deque<PendingRequest> pending_;

  GatewayCounters counters_;
  std::map<std::int64_t, ModelServingStats> model_stats_;
  // Trailing-window outcome samples, trimmed lazily against stats_window.
  mutable std::deque<OutcomeSample> window_latencies_;
  mutable std::deque<SimTime> window_sheds_;
};

}  // namespace gfaas::gateway
