#include "gateway/ingress.h"

#include <utility>
#include <vector>

#include "common/log.h"
#include "telemetry/telemetry.h"

namespace gfaas::gateway {

ConcurrentIngress::ConcurrentIngress(Gateway* gateway, sim::Executor* executor,
                                     std::size_t capacity)
    : gateway_(gateway), executor_(executor), queue_(capacity) {
  GFAAS_CHECK(gateway_ != nullptr && executor_ != nullptr);
}

void ConcurrentIngress::set_telemetry(telemetry::Telemetry* telemetry) {
  if (telemetry == nullptr) return;
  telemetry->add_probe([this](telemetry::MetricRegistry& reg) {
    reg.gauge("ingress.accepted")->set(static_cast<double>(accepted()));
    reg.gauge("ingress.rejected")->set(static_cast<double>(rejected()));
    reg.gauge("ingress.drained")->set(static_cast<double>(drained()));
    reg.gauge("ingress.drains")->set(static_cast<double>(drains()));
    reg.gauge("ingress.max_batch")->set(static_cast<double>(max_batch()));
    reg.gauge("ingress.backlog")->set(static_cast<double>(backlog()));
  });
}

bool ConcurrentIngress::try_submit(Submission& cell) {
  GFAAS_CHECK(cell.done != nullptr);
  if (!queue_.try_push(cell)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  // Publish-then-arm. The seq_cst exchange orders this producer's
  // publish against the drainer's disarm: whoever flips the flag
  // false->true owns posting the (single) wakeup for the burst.
  if (!drain_armed_.exchange(true)) {
    executor_->post([this] {
      consumer_serial_.AssertHeld();  // posted work runs on the worker
      drain();
    });
  }
  return true;
}

void ConcurrentIngress::drain() {
  // Disarm BEFORE draining: a cell published after this store re-arms
  // and posts its own pass, so nothing published concurrently with the
  // sweep below can be stranded.
  drain_armed_.store(false);
  std::vector<Submission> batch;
  batch.reserve(queue_.approx_size() + 1);
  queue_.drain(batch);
  if (batch.empty()) return;  // raced with a later pass; nothing stranded
  drains_.fetch_add(1, std::memory_order_relaxed);
  drained_.fetch_add(batch.size(), std::memory_order_relaxed);
  std::uint64_t prev = max_batch_.load(std::memory_order_relaxed);
  while (prev < batch.size() &&
         !max_batch_.compare_exchange_weak(prev, batch.size(),
                                           std::memory_order_relaxed)) {
  }
  gateway_->submit_batch(std::move(batch));
}

}  // namespace gfaas::gateway
