#include "gateway/gateway.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/log.h"
#include "concurrent/callback_executor.h"
#include "telemetry/telemetry.h"

namespace gfaas::gateway {

// Instrument pointers resolved once at set_telemetry(); every hot-path
// record is then one null check plus wait-free atomic bumps.
struct Gateway::TelemetryHandles {
  telemetry::SpanRecorder* spans = nullptr;
  telemetry::Counter* submitted = nullptr;
  telemetry::Counter* admitted = nullptr;
  telemetry::Counter* queued = nullptr;
  telemetry::Counter* shed = nullptr;
  telemetry::Counter* expired = nullptr;
  telemetry::Counter* completed = nullptr;
  telemetry::Counter* slo_met = nullptr;
  telemetry::Counter* failed = nullptr;
  telemetry::Counter* retries = nullptr;
  telemetry::Counter* hedges = nullptr;
  telemetry::Counter* hedge_wins = nullptr;
  telemetry::Histogram* latency_s = nullptr;
  telemetry::Histogram* wait_s = nullptr;
  telemetry::Histogram* exec_s = nullptr;
  telemetry::Histogram* estimate_error_s = nullptr;
};

const char* disposition_name(Disposition disposition) {
  switch (disposition) {
    case Disposition::kCompleted:
      return "completed";
    case Disposition::kShed:
      return "shed";
    case Disposition::kExpired:
      return "expired";
    case Disposition::kFailed:
      return "failed";
  }
  return "unknown";
}

Gateway::Gateway(cluster::ElasticCluster* cluster, GatewayConfig config)
    : cluster_(cluster), config_(config) {
  GFAAS_CHECK(cluster_ != nullptr);
  GFAAS_CHECK(config_.default_slo >= 0 && config_.stats_window > 0);
  GFAAS_CHECK(config_.wait_budget_fraction > 0.0);
  GFAAS_CHECK(config_.max_retries >= 0);
  GFAAS_CHECK(config_.hedge_budget_fraction >= 0.0 &&
              config_.hedge_budget_fraction < 1.0);
  GFAAS_CHECK(config_.hedge_retry_interval > 0);
  resilient_ = config_.max_retries > 0 || config_.hedge_budget_fraction > 0;
}

Gateway::~Gateway() = default;

void Gateway::set_telemetry(telemetry::Telemetry* telemetry) {
  if (telemetry == nullptr) {
    tel_.reset();
    return;
  }
  auto handles = std::make_unique<TelemetryHandles>();
  telemetry::MetricRegistry& m = telemetry->metrics();
  handles->spans = &telemetry->spans();
  handles->submitted = m.counter("gateway.submitted");
  handles->admitted = m.counter("gateway.admitted");
  handles->queued = m.counter("gateway.queued");
  handles->shed = m.counter("gateway.shed");
  handles->expired = m.counter("gateway.expired");
  handles->completed = m.counter("gateway.completed");
  handles->slo_met = m.counter("gateway.slo_met");
  handles->failed = m.counter("gateway.failed");
  handles->retries = m.counter("gateway.retries");
  handles->hedges = m.counter("gateway.hedges");
  handles->hedge_wins = m.counter("gateway.hedge_wins");
  handles->latency_s = m.histogram("gateway.latency_s");
  handles->wait_s = m.histogram("gateway.wait_s");
  handles->exec_s = m.histogram("gateway.exec_s");
  handles->estimate_error_s = m.histogram("gateway.estimate_error_s");
  tel_ = std::move(handles);
  // Point-in-time state the exporter samples each tick: window
  // occupancy and per-model SLO attainment (model gauges register
  // lazily as models first complete).
  telemetry->add_probe([this](telemetry::MetricRegistry& reg) {
    serial_.AssertHeld();  // probes run on the executor worker thread
    reg.gauge("gateway.in_flight")->set(static_cast<double>(in_flight_));
    reg.gauge("gateway.pending")->set(static_cast<double>(pending_.size()));
    for (const auto& [model, stats] : model_stats_) {
      reg.gauge("gateway.model." + std::to_string(model) + ".slo_attainment")
          ->set(stats.slo_attainment());
    }
  });
}

void Gateway::submit(core::Request request, ResultCallback done) {
  serial_.AssertHeld();
  submit_one(std::move(request), std::move(done), nullptr);
}

void Gateway::submit_batch(std::vector<Submission> batch) {
  serial_.AssertHeld();
  BatchMemo memo;
  for (Submission& cell : batch) {
    submit_one(std::move(cell.request), std::move(cell.done), &memo);
  }
}

void Gateway::submit_one(core::Request request, ResultCallback done,
                         BatchMemo* memo) {
  GFAAS_CHECK(done != nullptr);
  const SimTime now = cluster_->executor().now();
  request.arrival = now;
  if (request.deadline == kSimTimeMax && config_.default_slo > 0) {
    request.deadline = now + config_.default_slo;
  }
  ++counters_.submitted;
  if (tel_) {
    tel_->submitted->add();
    tel_->spans->record(request.id.value(), telemetry::SpanEvent::kSubmit, now);
  }

  // Already stale at the door (a client retransmitted an expired call):
  // answer now rather than spending GPU time on a dead request.
  if (request.deadline <= now) {
    resolve_locally(request, Disposition::kExpired, done);
    return;
  }
  // A zero-capacity window can never admit, and nothing ever drains the
  // pending queue: shed synchronously instead of stranding callbacks.
  if (config_.max_in_flight == 0) {
    resolve_locally(request, Disposition::kShed, done);
    return;
  }
  if (in_flight_ < config_.max_in_flight) {
    // Admission mutates the engine (global queue, dispatch state): any
    // memoized fleet scan from earlier in the batch is stale now.
    if (memo != nullptr) memo->valid = false;
    admit(std::move(request), std::move(done));
    return;
  }
  // Window full: shed vs queue. Queue only when the engine's own
  // estimates say the request can still make its deadline from the back
  // of the backlog; otherwise shedding now is strictly kinder than an
  // expiry later.
  if (pending_.size() >= config_.max_pending) {
    resolve_locally(request, Disposition::kShed, done);
    return;
  }
  const SimTime estimate = estimated_completion_impl(request, memo);
  if (estimate > request.deadline) {
    resolve_locally(request, Disposition::kShed, done);
    return;
  }
  if (tel_) {
    tel_->queued->add();
    tel_->spans->record(request.id.value(), telemetry::SpanEvent::kQueue, now,
                        -1, estimate);
  }
  pending_.push_back(
      PendingRequest{std::move(request), std::move(done), estimate});
}

SimTime Gateway::estimated_completion(const core::Request& request) const {
  serial_.AssertHeld();
  return estimated_completion_impl(request, nullptr);
}

SimTime Gateway::estimated_completion_impl(const core::Request& request,
                                           BatchMemo* memo) const {
  const cluster::SchedulerEngine& engine = cluster_->engine();
  BatchMemo local;
  BatchMemo* scan = memo != nullptr ? memo : &local;
  if (!scan->valid) {
    scan->now = cluster_->executor().now();
    scan->fleet = engine.schedulable_gpu_count();
    scan->counted = 0;
    scan->mean_finish = 0.0;
    scan->global_queue = 0;
    if (scan->fleet > 0) {
      // When the engine's committed work (in-flight inference plus the
      // local queues, per the engine's own §IV-A finish-time estimates)
      // drains, on average across the schedulable fleet. The mean — not
      // the min — is what a request at the back of the backlog actually
      // experiences: the scheduler spreads the backlog over every GPU,
      // not just the soonest. Idle GPUs contribute `now` each; no need
      // to enumerate them (this runs per submission under overload,
      // exactly when it matters — and once per *batch* on the bulk
      // path: admissions are the only engine mutations a submission can
      // cause, so between admissions this scan is invariant).
      scan->counted = engine.idle_gpu_count();
      scan->mean_finish =
          static_cast<double>(scan->now) * static_cast<double>(scan->counted);
      for (const GpuId gpu : engine.busy_gpus()) {
        if (engine.is_fenced(gpu)) continue;  // draining: takes no new work
        scan->mean_finish += static_cast<double>(
            std::max(scan->now, engine.estimated_finish_time(gpu)));
        ++scan->counted;
      }
      if (scan->counted > 0) {
        scan->mean_finish /= static_cast<double>(scan->counted);
      }
      scan->global_queue = engine.global_queue().size();
    }
    scan->valid = true;
  }
  if (scan->fleet == 0) return kSimTimeMax;
  if (scan->counted == 0) return kSimTimeMax;  // whole fleet draining

  // The request's own demand: a cold load unless the model is warm
  // somewhere the scheduler can route to. Always read live — it is
  // request-specific, and so is pending_.size() below, which the batch
  // itself grows.
  const SimTime service =
      (engine.cache().cached_anywhere(request.model)
           ? 0
           : engine.load_time(request.model)) +
      engine.infer_time(request.model, request.batch);
  // Backlog ahead of this request that the committed-finish estimates do
  // not cover yet — the engine's global queue plus our own pending queue
  // — spread across the fleet, each round costing about one service time.
  const std::size_t ahead = scan->global_queue + pending_.size();
  const auto rounds = static_cast<SimTime>(ahead / scan->fleet);
  return static_cast<SimTime>(scan->mean_finish) + service * (1 + rounds);
}

void Gateway::admit(core::Request request, ResultCallback done,
                    SimTime estimate) {
  ++counters_.admitted;
  ++in_flight_;
  const std::int64_t id = request.id.value();
  if (tel_) {
    tel_->admitted->add();
    tel_->spans->record(id, telemetry::SpanEvent::kAdmit,
                        cluster_->executor().now());
  }
  // The hook routes back through route_ so retries (same id) and hedges
  // (fresh id) all land in on_engine_result; the flight keeps a pristine
  // request copy — hook included — to resubmit from. Without resilience
  // there is nothing to resubmit: keep only the scalar header (no
  // string, no visit history, no hook copy — the admitted fast path
  // then allocates nothing per flight beyond the map node).
  request.on_complete = [this](const core::CompletionRecord& record) {
    serial_.AssertHeld();  // engine completions fire on the worker thread
    on_engine_result(record);
  };
  Flight flight;
  if (resilient_) {
    flight.request = request;
  } else {
    flight.request.id = request.id;
    flight.request.function = request.function;
    flight.request.model = request.model;
    flight.request.batch = request.batch;
    flight.request.arrival = request.arrival;
    flight.request.deadline = request.deadline;
  }
  flight.done = std::move(done);
  flight.estimate = estimate;
  auto [it, inserted] = flights_.emplace(id, std::move(flight));
  GFAAS_CHECK(inserted) << "duplicate in-flight gateway request id " << id;
  if (resilient_) route_[id] = id;
  cluster_->engine().submit(std::move(request));
  if (config_.hedge_budget_fraction > 0 &&
      it->second.request.deadline != kSimTimeMax) {
    const core::Request& req = it->second.request;
    const auto budget = static_cast<double>(req.deadline - req.arrival);
    arm_hedge_timer(it->second,
                    req.arrival + static_cast<SimTime>(
                                      config_.hedge_budget_fraction * budget));
  }
}

void Gateway::arm_hedge_timer(Flight& flight, SimTime fire_at) {
  const std::int64_t id = flight.request.id.value();
  const SimTime delay =
      std::max<SimTime>(0, fire_at - cluster_->executor().now());
  flight.hedge_event = cluster_->executor().schedule_after(delay, [this, id] {
    serial_.AssertHeld();  // timer callbacks fire on the worker thread
    on_hedge_timer(id);
  });
}

void Gateway::on_hedge_timer(std::int64_t id) {
  auto it = flights_.find(id);
  if (it == flights_.end()) return;  // resolved; stale timer
  Flight& flight = it->second;
  flight.hedge_event = 0;
  if (flight.hedge_id >= 0) return;  // already hedged
  const core::Request& req = flight.request;
  const SimTime now = cluster_->executor().now();
  if (now >= req.deadline) return;  // no budget left to race against
  cluster::SchedulerEngine& engine = cluster_->engine();
  // Only waiting requests are hedged. Duplicating an *executing* request
  // was tried and hurts: every won race re-idles the straggling GPU,
  // which immediately grabs (and slow-walks) the next request — the
  // degradation spreads instead of being contained by its own
  // backpressure. A parked primary, by contrast, cancels for free.
  if (engine.request_executing(req.id)) return;  // dispatched: nothing to win
  if (!engine.request_waiting(req.id)) return;   // failure being handled
  core::Request hedge = flight.request;  // carries the routing hook
  hedge.id = RequestId(next_hedge_id_++);
  const std::int64_t hedge_id = hedge.id.value();
  const GpuId gpu = engine.hedge_dispatch(std::move(hedge), req.id);
  if (!gpu.valid()) {
    // No idle GPU to duplicate onto, or the engine judged the duplicate
    // a guaranteed loser against the primary's queue position. Re-check
    // shortly; the timer retires itself once the deadline passes or the
    // primary dispatches.
    next_hedge_id_ = hedge_id;  // id unused; reclaim for determinism
    arm_hedge_timer(flight, now + config_.hedge_retry_interval);
    return;
  }
  flight.hedge_id = hedge_id;
  route_[hedge_id] = id;
  ++counters_.hedges;
  if (tel_) {
    tel_->hedges->add();
    tel_->spans->record(id, telemetry::SpanEvent::kHedge, now,
                        static_cast<std::int32_t>(gpu.value()));
  }
}

void Gateway::resolve_locally(const core::Request& request, Disposition disposition,
                              ResultCallback& done) {
  ModelServingStats& stats = model_stats_[request.model.value()];
  GatewayResult result;
  result.disposition = disposition;
  if (disposition == Disposition::kShed) {
    ++counters_.shed;
    ++stats.shed;
    const SimTime now = cluster_->executor().now();
    window_sheds_.push_back(now);
    trim_window(now);
    if (tel_) {
      tel_->shed->add();
      tel_->spans->record(request.id.value(), telemetry::SpanEvent::kShed, now);
    }
  } else {
    GFAAS_CHECK(disposition == Disposition::kExpired);
    ++counters_.expired;
    ++stats.expired;
    if (tel_) {
      tel_->expired->add();
      tel_->spans->record(request.id.value(), telemetry::SpanEvent::kExpired,
                          cluster_->executor().now());
    }
  }
  deliver(std::move(done), result);
}

void Gateway::deliver(ResultCallback&& done, const GatewayResult& result) {
  if (callbacks_ == nullptr) {
    done(result);
    return;
  }
  callbacks_->post([done = std::move(done), result] { done(result); });
}

void Gateway::on_engine_result(const core::CompletionRecord& record) {
  std::int64_t id;
  if (resilient_) {
    auto route = route_.find(record.id.value());
    GFAAS_CHECK(route != route_.end())
        << "engine result for unrouted id " << record.id.value();
    id = route->second;
    route_.erase(route);
  } else {
    // No retries, no hedges: the engine-side id IS the flight id.
    id = record.id.value();
  }
  auto it = flights_.find(id);
  GFAAS_CHECK(it != flights_.end()) << "engine result for retired flight " << id;
  Flight& flight = it->second;
  const bool is_hedge = record.id.value() != id;

  if (!record.failed) {
    // A winner. Cancel the losing copy (it may be queued or executing;
    // the engine drops its hook silently either way) before resolving.
    if (is_hedge) {
      ++counters_.hedge_wins;
      if (tel_) tel_->hedge_wins->add();
    }
    const std::int64_t loser = is_hedge ? id : flight.hedge_id;
    const bool loser_live = is_hedge ? flight.primary_live : flight.hedge_id >= 0;
    if (loser_live) {
      GFAAS_CHECK(cluster_->engine().cancel_request(RequestId(loser)))
          << "hedge loser " << loser << " neither queued nor executing";
      route_.erase(loser);
      if (!is_hedge) ++counters_.hedges_cancelled;
    }
    core::CompletionRecord normalized = record;
    normalized.id = flight.request.id;
    resolve_flight(it, normalized);
    return;
  }

  // One copy died with its GPU. Remember the first cause — that is what
  // the caller should see if everything else fails too.
  if (is_hedge) {
    flight.hedge_id = -1;
  } else {
    flight.primary_live = false;
  }
  if (!flight.failed_before) {
    flight.first_failure = record;
    flight.failed_before = true;
  }
  // While the other copy is still racing, swallow the failure: the flight
  // can still complete normally (a domain kill that takes out both copies
  // lands here twice; only the second fall-through decides).
  if (flight.primary_live || flight.hedge_id >= 0) return;

  // Every copy is dead: retry on surviving capacity, budget permitting.
  const bool budget_left = flight.retries < config_.max_retries;
  if (budget_left &&
      estimated_completion(flight.request) <= flight.request.deadline) {
    ++flight.retries;
    ++counters_.retries;
    ++model_stats_[flight.request.model.value()].retried;
    if (tel_) {
      tel_->retries->add();
      tel_->spans->record(id, telemetry::SpanEvent::kRetry,
                          cluster_->executor().now());
    }
    flight.primary_live = true;
    route_[id] = id;
    cluster_->engine().submit(flight.request);
    // The hedge timer (if hedging is on and none is pending) keeps
    // covering the retry: re-arm against the remaining budget.
    if (config_.hedge_budget_fraction > 0 && flight.hedge_event == 0 &&
        flight.request.deadline != kSimTimeMax) {
      arm_hedge_timer(flight, cluster_->executor().now() +
                                  config_.hedge_retry_interval);
    }
    return;
  }
  if (budget_left) ++counters_.retries_denied;
  core::CompletionRecord failure = flight.first_failure;
  failure.id = flight.request.id;
  resolve_flight(it, failure);
}

void Gateway::resolve_flight(FlightMap::iterator it,
                             const core::CompletionRecord& record) {
  Flight flight = std::move(it->second);
  flights_.erase(it);
  if (flight.hedge_event != 0) cluster_->executor().cancel(flight.hedge_event);
  GFAAS_CHECK(in_flight_ > 0);
  --in_flight_;
  ModelServingStats& stats = model_stats_[record.model.value()];
  GatewayResult result;
  result.record = record;
  if (record.failed) {
    result.disposition = Disposition::kFailed;
    ++counters_.failed;
    ++stats.failed;
    if (tel_) {
      tel_->failed->add();
      tel_->spans->record(record.id.value(), telemetry::SpanEvent::kFail,
                          record.completed,
                          static_cast<std::int32_t>(record.gpu.value()));
    }
  } else {
    result.disposition = Disposition::kCompleted;
    result.slo_met = record.slo_met();
    ++counters_.completed;
    ++stats.completed;
    if (result.slo_met) {
      ++counters_.slo_met;
      ++stats.slo_met;
    }
    stats.latency_s.add(sim_to_seconds(record.latency()));
    const SimTime wait = record.dispatched - record.arrival;
    const bool deep_wait =
        record.deadline != kSimTimeMax &&
        static_cast<double>(wait) >
            config_.wait_budget_fraction *
                static_cast<double>(record.deadline - record.arrival);
    window_latencies_.push_back(
        OutcomeSample{record.completed, record.latency(), deep_wait});
    trim_window(record.completed);
    if (tel_) {
      tel_->completed->add();
      if (result.slo_met) tel_->slo_met->add();
      tel_->latency_s->record(sim_to_seconds(record.latency()));
      tel_->wait_s->record(sim_to_seconds(wait));
      tel_->exec_s->record(sim_to_seconds(record.completed - record.dispatched));
      if (flight.estimate > 0) {
        const SimTime error = record.completed > flight.estimate
                                  ? record.completed - flight.estimate
                                  : flight.estimate - record.completed;
        tel_->estimate_error_s->record(sim_to_seconds(error));
      }
      tel_->spans->record(record.id.value(), telemetry::SpanEvent::kComplete,
                          record.completed,
                          static_cast<std::int32_t>(record.gpu.value()),
                          record.latency());
    }
  }
  // Admit from the pending queue before resolving the callback: a client
  // that synchronously resubmits from its callback must line up behind
  // the requests already waiting, not steal the slot this completion
  // just freed.
  drain_pending();
  deliver(std::move(flight.done), result);
}

void Gateway::drain_pending() {
  while (in_flight_ < config_.max_in_flight && !pending_.empty()) {
    PendingRequest next = std::move(pending_.front());
    pending_.pop_front();
    if (next.request.deadline <= cluster_->executor().now()) {
      resolve_locally(next.request, Disposition::kExpired, next.done);
      continue;
    }
    admit(std::move(next.request), std::move(next.done), next.estimate);
  }
}

void Gateway::trim_window(SimTime now) const {
  const SimTime cutoff = now - config_.stats_window;
  while (!window_latencies_.empty() && window_latencies_.front().completed < cutoff) {
    window_latencies_.pop_front();
  }
  while (!window_sheds_.empty() && window_sheds_.front() < cutoff) {
    window_sheds_.pop_front();
  }
}

double Gateway::slo_attainment() const {
  serial_.AssertHeld();
  return counters_.completed > 0 ? static_cast<double>(counters_.slo_met) /
                                       static_cast<double>(counters_.completed)
                                 : 0.0;
}

WindowedOutcomes Gateway::windowed_outcomes() const {
  serial_.AssertHeld();
  trim_window(cluster_->executor().now());
  WindowedOutcomes out;
  out.completions = window_latencies_.size();
  out.sheds = window_sheds_.size();
  if (!window_latencies_.empty()) {
    std::vector<SimTime> latencies;
    latencies.reserve(window_latencies_.size());
    for (const OutcomeSample& sample : window_latencies_) {
      latencies.push_back(sample.latency);
      if (sample.deep_wait) ++out.deep_waits;
    }
    std::sort(latencies.begin(), latencies.end());
    out.p50_latency = latencies[metrics::nearest_rank(latencies.size(), 0.50)];
    out.p99_latency = latencies[metrics::nearest_rank(latencies.size(), 0.99)];
  }
  return out;
}

}  // namespace gfaas::gateway
