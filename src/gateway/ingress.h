// Concurrent ingestion front door: any number of client threads push
// {request, callback} cells into a lock-free bounded MPSC ring; the
// executor's worker thread drains the whole backlog in one pass into
// Gateway::submit_batch.
//
// Wakeup protocol (lost-wakeup-free, one executor post per burst): a
// producer publishes its cell, then atomically arms the drain flag; only
// the producer that flips it false->true posts a drain task. The drainer
// disarms FIRST, then drains — any cell published after the disarm
// re-arms and posts a fresh pass, so every published cell is covered by
// a drain that starts after its publish.
//
// Backpressure: a full ring fails try_submit() immediately (the cell
// stays with the caller — retry, park, or report upstream). Nothing on
// the producer path blocks or allocates.
//
// Threading: try_submit() from any thread; everything else (the drain,
// the Gateway) stays on the executor worker thread. Counters are
// relaxed atomics, readable anywhere.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/thread_annotations.h"
#include "concurrent/mpsc_queue.h"
#include "gateway/gateway.h"
#include "sim/simulator.h"

namespace gfaas::gateway {

class ConcurrentIngress {
 public:
  // `gateway` and `executor` must outlive the ingress and belong to the
  // same cluster; `capacity` (ring size, a power of two) bounds the
  // burst producers can run ahead of the drain.
  ConcurrentIngress(Gateway* gateway, sim::Executor* executor,
                    std::size_t capacity = 1024);

  ConcurrentIngress(const ConcurrentIngress&) = delete;
  ConcurrentIngress& operator=(const ConcurrentIngress&) = delete;

  // Producer-side enqueue, thread-safe and lock-free. Moves from `cell`
  // only on success; false means the ring is full and the caller keeps
  // the cell.
  bool try_submit(Submission& cell);

  // Registers a pull probe mirroring the ingress counters and backlog
  // into gauges each exporter tick. The producer path already keeps its
  // own relaxed atomics, so instrumentation costs it nothing — the
  // probe reads them from the exporter's thread.
  void set_telemetry(telemetry::Telemetry* telemetry);

  // --- counters (relaxed; exact once producers are quiescent) ---
  std::uint64_t accepted() const { return accepted_.load(std::memory_order_relaxed); }
  std::uint64_t rejected() const { return rejected_.load(std::memory_order_relaxed); }
  // Cells handed to submit_batch so far (== accepted once drained).
  std::uint64_t drained() const { return drained_.load(std::memory_order_relaxed); }
  // Drain passes that found work — accepted/drains is the realized
  // batching factor the amortized admission path benefits from.
  std::uint64_t drains() const { return drains_.load(std::memory_order_relaxed); }
  std::uint64_t max_batch() const { return max_batch_.load(std::memory_order_relaxed); }
  std::size_t backlog() const { return queue_.approx_size(); }

 private:
  // Runs on the executor worker thread only: the ring's consumer side is
  // single-consumer by contract, and that contract is the capability.
  void drain() REQUIRES(consumer_serial_);

  Gateway* gateway_;
  sim::Executor* executor_;
  // Consumer-side affinity: try_pop()/drain() of the MPSC ring must all
  // happen on the one drainer thread (the producers' try_push side is
  // genuinely concurrent and stays annotation-free).
  common::ExecutorAffinity consumer_serial_;
  concurrent::BoundedMpscQueue<Submission> queue_;
  // True while a drain task is posted-but-not-yet-disarmed; gates the
  // one-post-per-burst wakeup.
  std::atomic<bool> drain_armed_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> drained_{0};
  std::atomic<std::uint64_t> drains_{0};
  std::atomic<std::uint64_t> max_batch_{0};
};

}  // namespace gfaas::gateway
