#include "core/queues.h"

#include <algorithm>

#include "common/log.h"

namespace gfaas::core {

void GlobalQueue::push(Request request) {
  GFAAS_CHECK(request.id.valid());
  GFAAS_CHECK(by_id_.count(request.id.value()) == 0)
      << "request " << request.id.value() << " already queued";
  // Arrival order is push order; the engine pushes in event-time order.
  queue_.push_back(std::move(request));
  auto it = std::prev(queue_.end());
  by_id_[it->id.value()] = it;
  by_model_[it->model.value()].push_back(it->id.value());
  ++visits_histogram_[it->visits];
}

const Request* GlobalQueue::head() const {
  return queue_.empty() ? nullptr : &queue_.front();
}

const Request* GlobalQueue::find(RequestId id) const {
  auto it = by_id_.find(id.value());
  return it == by_id_.end() ? nullptr : &*it->second;
}

int GlobalQueue::bump_visits(RequestId id) {
  auto it = by_id_.find(id.value());
  GFAAS_CHECK(it != by_id_.end()) << "bump_visits on unqueued request " << id.value();
  Request& req = *it->second;
  auto bucket = visits_histogram_.find(req.visits);
  GFAAS_CHECK(bucket != visits_histogram_.end() && bucket->second > 0);
  if (--bucket->second == 0) visits_histogram_.erase(bucket);
  ++req.visits;
  ++visits_histogram_[req.visits];
  return req.visits;
}

StatusOr<Request> GlobalQueue::take(RequestId id) {
  auto it = by_id_.find(id.value());
  if (it == by_id_.end()) {
    return Status::NotFound("request " + std::to_string(id.value()) + " not queued");
  }
  Request out = std::move(*it->second);
  auto& model_deque = by_model_[out.model.value()];
  auto pos = std::find(model_deque.begin(), model_deque.end(), id.value());
  GFAAS_CHECK(pos != model_deque.end());
  model_deque.erase(pos);
  if (model_deque.empty()) by_model_.erase(out.model.value());
  auto bucket = visits_histogram_.find(out.visits);
  GFAAS_CHECK(bucket != visits_histogram_.end() && bucket->second > 0);
  if (--bucket->second == 0) visits_histogram_.erase(bucket);
  queue_.erase(it->second);
  by_id_.erase(it);
  return out;
}

const Request* GlobalQueue::first_for_model(ModelId model) const {
  auto it = by_model_.find(model.value());
  if (it == by_model_.end() || it->second.empty()) return nullptr;
  return find(RequestId(it->second.front()));
}

std::vector<ModelId> GlobalQueue::pending_models() const {
  std::vector<ModelId> out;
  out.reserve(by_model_.size());
  for (const auto& [model, ids] : by_model_) out.push_back(ModelId(model));
  return out;
}

std::vector<RequestId> GlobalQueue::in_arrival_order() const {
  std::vector<RequestId> out;
  out.reserve(queue_.size());
  for (const auto& r : queue_) out.push_back(r.id);
  return out;
}

int GlobalQueue::max_visits() const {
  return visits_histogram_.empty() ? 0 : visits_histogram_.rbegin()->first;
}

void LocalQueues::push(GpuId gpu, Request request) {
  const auto index = static_cast<std::size_t>(gpu.value());
  GFAAS_CHECK(index < queues_.size()) << "unknown gpu " << gpu.value();
  queues_[index].push_back(std::move(request));
}

std::optional<Request> LocalQueues::pop_head(GpuId gpu) {
  const auto index = static_cast<std::size_t>(gpu.value());
  GFAAS_CHECK(index < queues_.size());
  if (queues_[index].empty()) return std::nullopt;
  Request out = std::move(queues_[index].front());
  queues_[index].pop_front();
  return out;
}

std::optional<Request> LocalQueues::remove(GpuId gpu, RequestId id) {
  const auto index = static_cast<std::size_t>(gpu.value());
  GFAAS_CHECK(index < queues_.size());
  auto& queue = queues_[index];
  for (auto it = queue.begin(); it != queue.end(); ++it) {
    if (it->id == id) {
      Request out = std::move(*it);
      queue.erase(it);
      return out;
    }
  }
  return std::nullopt;
}

const Request* LocalQueues::head(GpuId gpu) const {
  const auto index = static_cast<std::size_t>(gpu.value());
  GFAAS_CHECK(index < queues_.size());
  return queues_[index].empty() ? nullptr : &queues_[index].front();
}

std::size_t LocalQueues::size(GpuId gpu) const {
  const auto index = static_cast<std::size_t>(gpu.value());
  GFAAS_CHECK(index < queues_.size());
  return queues_[index].size();
}

std::size_t LocalQueues::total_pending() const {
  std::size_t total = 0;
  for (const auto& q : queues_) total += q.size();
  return total;
}

const std::deque<Request>& LocalQueues::queued(GpuId gpu) const {
  const auto index = static_cast<std::size_t>(gpu.value());
  GFAAS_CHECK(index < queues_.size());
  return queues_[index];
}

}  // namespace gfaas::core
