// Scheduling policies (paper §IV).
//
// A policy is invoked by the scheduling engine whenever the situation of
// §IV-A holds: "at least one request is waiting in the global queue and at
// least one GPU is idle" (or a local queue has work for an idle GPU). The
// policy inspects cluster state through SchedulingContext and emits
// actions through the same interface; the engine applies each action
// immediately, so within one invocation the policy always sees consistent
// state (a GPU it just dispatched to is no longer idle).
//
// Policies:
//   * LbScheduler       — the baseline: "dispatches the request at the
//                         head of the global queue whenever a GPU becomes
//                         idle" (§V-A).
//   * LalbScheduler     — Locality-Aware Load-Balancing, Algorithms 1 & 2,
//                         with the O3 limit parameter. limit == 0 disables
//                         out-of-order dispatch (plain LALB); the paper's
//                         default for LALBO3 is 25.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cache/cache_manager.h"
#include "common/id.h"
#include "common/time.h"
#include "core/queues.h"
#include "core/request.h"

namespace gfaas::core {

// What a policy can see and do. Implemented by the scheduling engine
// (cluster::SchedulerEngine for both simulated and real-time modes).
class SchedulingContext {
 public:
  virtual ~SchedulingContext() = default;

  virtual SimTime now() const = 0;

  // Idle GPUs, "sorted by frequency" (Algorithm 1 input). We interpret
  // frequency as dispatch count, most-used first: hot GPUs hold hot
  // models, so scanning them first maximizes hit chances.
  virtual std::vector<GpuId> idle_gpus() const = 0;
  virtual std::vector<GpuId> busy_gpus() const = 0;
  // O(1) lookups against the engine's cluster-state index, so policies can
  // probe individual GPUs (e.g. the holders from cache().locations())
  // without materializing the idle/busy vectors.
  virtual bool is_idle(GpuId gpu) const = 0;
  // Dispatch count backing the idle-GPU frequency ordering: among a set of
  // candidates, the "first in idle order" is the one maximizing
  // (dispatch_count, lowest id).
  virtual std::int64_t dispatch_count(GpuId gpu) const = 0;
  // First GPU in idle order with pending local-queue work (invalid id if
  // none): the serve-local head of Algorithm 1 as an O(1) index lookup, so
  // policies never enumerate the idle set just to find queued local work.
  virtual GpuId first_idle_with_local_work() const = 0;

  virtual const GlobalQueue& global_queue() const = 0;
  virtual GlobalQueue& mutable_global_queue() = 0;
  virtual const LocalQueues& local_queues() const = 0;

  virtual const cache::CacheManager& cache() const = 0;

  // Absolute estimated finish time of ALL work assigned to the GPU:
  // in-flight operation + local queue contents (§IV-A).
  virtual SimTime estimated_finish_time(GpuId gpu) const = 0;

  // Profiled latencies (§IV-A, Table I).
  virtual SimTime load_time(ModelId model) const = 0;
  virtual SimTime infer_time(ModelId model, std::int64_t batch) const = 0;

  // --- actions (applied immediately by the engine) ---
  // Starts `request` (currently in the global queue) on `gpu` (idle).
  virtual void dispatch_from_global(RequestId request, GpuId gpu, bool false_miss) = 0;
  // Starts the head of `gpu`'s local queue on it.
  virtual void dispatch_from_local(GpuId gpu) = 0;
  // Moves `request` from the global queue to `gpu`'s local queue.
  virtual void move_to_local(RequestId request, GpuId gpu) = 0;
};

class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;
  virtual std::string name() const = 0;
  // Performs zero or more actions. Called on request arrival and on every
  // GPU idle transition.
  virtual void schedule(SchedulingContext& ctx) = 0;
};

// Baseline load-balancing scheduler.
class LbScheduler final : public SchedulingPolicy {
 public:
  std::string name() const override { return "LB"; }
  void schedule(SchedulingContext& ctx) override;
};

// Locality-aware load-balancing, with optional out-of-order dispatch.
class LalbScheduler final : public SchedulingPolicy {
 public:
  // o3_limit == 0: in-order LALB. o3_limit > 0: Algorithm 1 with the
  // given starvation limit (paper default 25).
  explicit LalbScheduler(int o3_limit = 0);

  std::string name() const override;
  void schedule(SchedulingContext& ctx) override;

  int o3_limit() const { return o3_limit_; }

 private:
  // Algorithm 2. Returns true iff the request was dispatched to gpu_i.
  bool locality_load_balance(SchedulingContext& ctx, GpuId gpu_i, RequestId request);

  void schedule_in_order(SchedulingContext& ctx);
  void schedule_out_of_order(SchedulingContext& ctx);

  int o3_limit_;
};

// Factory used by experiment configs.
enum class PolicyName { kLb, kLalb, kLalbO3 };
std::string policy_display_name(PolicyName name);
std::unique_ptr<SchedulingPolicy> make_scheduler(PolicyName name, int o3_limit = 25);

}  // namespace gfaas::core
