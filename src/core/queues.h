// The Scheduler's queues (paper Fig. 3).
//
// GlobalQueue holds every pending request in arrival order and maintains
// the auxiliary model -> requests index described in §VI ("the Scheduler
// maintains an auxiliary data structure that links the queued requests to
// their corresponding models — the requests linked to the same model are
// still sorted by their arriving order"), which bounds the
// find-a-cached-request search by the number of models cached on a GPU
// instead of the queue length.
//
// LocalQueues holds the per-GPU queues of requests the policy moved to a
// busy GPU (Algorithm 2 line 12). "When this GPU becomes idle, it always
// executes the requests already in its local queue before considering any
// request in the global queue."
#pragma once

#include <deque>
#include <list>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/request.h"

namespace gfaas::core {

class GlobalQueue {
 public:
  // Const iteration in arrival order, without the O(n) snapshot copy of
  // in_arrival_order(). Policies may dispatch/take requests while
  // iterating: taking a request invalidates only iterators to THAT
  // request (std::list semantics), so callers advance before acting.
  using const_iterator = std::list<Request>::const_iterator;
  const_iterator begin() const { return queue_.begin(); }
  const_iterator end() const { return queue_.end(); }

  void push(Request request);

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

  // Earliest-arrival pending request (nullptr if empty).
  const Request* head() const;
  const Request* find(RequestId id) const;

  // Increments the request's O3 skip counter (Algorithm 1 lines 14-16)
  // and keeps the visits histogram consistent; returns the new value.
  // This is the only sanctioned way to mutate a queued request.
  int bump_visits(RequestId id);

  // Removes and returns the request.
  StatusOr<Request> take(RequestId id);

  // Earliest-arrival request whose model is `model` (nullptr if none) —
  // served by the §VI per-model index.
  const Request* first_for_model(ModelId model) const;

  // Distinct models with at least one pending request.
  std::vector<ModelId> pending_models() const;

  // Request ids in arrival order (snapshot; O(n)). Kept for tests that
  // cross-check the iterator path; hot paths use begin()/end().
  std::vector<RequestId> in_arrival_order() const;

  // Highest `visits` value among pending requests (0 if empty).
  // O(1) lookup against the incrementally maintained histogram.
  int max_visits() const;

 private:
  std::list<Request> queue_;  // arrival order (push_back)
  std::unordered_map<std::int64_t, std::list<Request>::iterator> by_id_;
  // model id -> request ids in arrival order.
  std::map<std::int64_t, std::deque<std::int64_t>> by_model_;
  // visits value -> number of pending requests with that value, updated on
  // push/take/bump_visits so max_visits() never rescans the queue.
  std::map<int, std::size_t> visits_histogram_;
};

class LocalQueues {
 public:
  explicit LocalQueues(std::size_t gpu_count) : queues_(gpu_count) {}

  // Grows the per-GPU queue vector to cover ids < `gpu_count` (elastic
  // scale-up; never shrinks — retired GPU ids keep an empty slot).
  void ensure_gpu_count(std::size_t gpu_count) {
    if (queues_.size() < gpu_count) queues_.resize(gpu_count);
  }

  void push(GpuId gpu, Request request);
  std::optional<Request> pop_head(GpuId gpu);
  // Removes the request from the GPU's queue wherever it sits (hedging
  // cancels a parked loser mid-queue; the head is the common case but a
  // deep-waiting duplicate can win first). Nullopt if not queued there.
  std::optional<Request> remove(GpuId gpu, RequestId id);
  const Request* head(GpuId gpu) const;
  std::size_t size(GpuId gpu) const;
  bool empty(GpuId gpu) const { return size(gpu) == 0; }
  std::size_t total_pending() const;

  // Requests queued on the GPU, head first (for finish-time estimation).
  const std::deque<Request>& queued(GpuId gpu) const;

 private:
  std::vector<std::deque<Request>> queues_;
};

}  // namespace gfaas::core
