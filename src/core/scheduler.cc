#include "core/scheduler.h"

#include <iterator>

#include "common/log.h"

namespace gfaas::core {

namespace {

// A dispatch is a false miss when the target GPU does not hold the model
// but some other GPU does (§V-D).
bool is_false_miss(const SchedulingContext& ctx, ModelId model, GpuId gpu) {
  if (ctx.cache().is_cached(gpu, model)) return false;
  return ctx.cache().cached_anywhere(model);
}

// Earliest idle holder of `model` in the frequency ordering of
// idle_gpus(): the idle holder maximizing (dispatch_count, lowest id).
// Scans the O(#locations) holder list instead of the idle set, so the
// cost is bounded by the model's duplicate count (§VI), not cluster size.
GpuId best_idle_holder(const SchedulingContext& ctx, ModelId model, GpuId exclude) {
  GpuId best;
  std::int64_t best_count = -1;
  for (GpuId gpu : ctx.cache().locations(model)) {
    if (gpu == exclude || !ctx.is_idle(gpu)) continue;
    // locations() is id-ascending, so strict > keeps the lowest id on ties.
    const std::int64_t count = ctx.dispatch_count(gpu);
    if (count > best_count) {
      best_count = count;
      best = gpu;
    }
  }
  return best;
}

}  // namespace

std::string policy_display_name(PolicyName name) {
  switch (name) {
    case PolicyName::kLb: return "LB";
    case PolicyName::kLalb: return "LALB";
    case PolicyName::kLalbO3: return "LALBO3";
  }
  return "unknown";
}

std::unique_ptr<SchedulingPolicy> make_scheduler(PolicyName name, int o3_limit) {
  switch (name) {
    case PolicyName::kLb: return std::make_unique<LbScheduler>();
    case PolicyName::kLalb: return std::make_unique<LalbScheduler>(0);
    case PolicyName::kLalbO3: return std::make_unique<LalbScheduler>(o3_limit);
  }
  GFAAS_CHECK(false) << "unknown policy";
  return nullptr;
}

void LbScheduler::schedule(SchedulingContext& ctx) {
  // "Simply dispatches the request at the head of the global queue
  // whenever a GPU becomes idle." No locality awareness, no local queues.
  while (true) {
    const Request* head = ctx.global_queue().head();
    if (head == nullptr) return;
    const auto idle = ctx.idle_gpus();
    if (idle.empty()) return;
    // Least-frequently-dispatched idle GPU = plain load balancing.
    const GpuId target = idle.back();
    ctx.dispatch_from_global(head->id, target,
                             is_false_miss(ctx, head->model, target));
  }
}

LalbScheduler::LalbScheduler(int o3_limit) : o3_limit_(o3_limit) {
  GFAAS_CHECK(o3_limit >= 0);
}

std::string LalbScheduler::name() const {
  return o3_limit_ == 0 ? "LALB" : "LALBO3";
}

void LalbScheduler::schedule(SchedulingContext& ctx) {
  if (o3_limit_ == 0) {
    schedule_in_order(ctx);
  } else {
    schedule_out_of_order(ctx);
  }
}

bool LalbScheduler::locality_load_balance(SchedulingContext& ctx, GpuId gpu_i,
                                          RequestId request) {
  // Algorithm 2: place `request` considering locality and load balance.
  const Request* req = ctx.global_queue().find(request);
  GFAAS_CHECK(req != nullptr);
  const ModelId model = req->model;
  const std::int64_t batch = req->batch;
  (void)batch;

  // Every branch below probes only the model's holder list (the cache's
  // model -> GPU location index), never the full idle/busy enumerations:
  // Algorithm 2's cost is O(#locations of the model), per §VI.
  const std::vector<GpuId> locations = ctx.cache().locations(model);
  if (locations.empty()) {
    // Line 1-3: not cached anywhere -> plain cache miss on gpu_i.
    ctx.dispatch_from_global(request, gpu_i, /*false_miss=*/false);
    return true;
  }

  // Line 4-6: cached on another idle GPU -> hit there; gpu_i stays idle.
  const GpuId idle_holder = best_idle_holder(ctx, model, /*exclude=*/gpu_i);
  if (idle_holder.valid()) {
    ctx.dispatch_from_global(request, idle_holder, /*false_miss=*/false);
    return false;
  }

  // Line 8-15: cached only on busy GPUs. Move to the local queue of the
  // best busy holder if waiting beats re-uploading the model.
  const SimTime load = ctx.load_time(model);
  GpuId best_gpu;
  SimTime best_wait = kSimTimeMax;
  for (GpuId gpu_j : locations) {
    if (ctx.is_idle(gpu_j)) continue;
    // Strict < keeps the lowest-id holder on ties (locations() ascends).
    const SimTime wait = ctx.estimated_finish_time(gpu_j) - ctx.now();
    if (wait < best_wait) {
      best_wait = wait;
      best_gpu = gpu_j;
    }
  }
  if (best_gpu.valid() && best_wait < load) {
    ctx.move_to_local(request, best_gpu);
    return false;
  }

  // Line 17-18: allow the (false) miss on gpu_i.
  ctx.dispatch_from_global(request, gpu_i, /*false_miss=*/true);
  return true;
}

void LalbScheduler::schedule_in_order(SchedulingContext& ctx) {
  // Plain LALB (§IV-A prose): requests leave the global queue strictly in
  // arrival order; each is placed with locality awareness.
  while (true) {
    // Local queues have absolute priority on idle GPUs (Algorithm 1 l.2-5).
    // The engine's index tracks idle GPUs with pending local work in the
    // same frequency order the old idle-set scan used, so the serve-local
    // head costs O(1) per dispatch instead of O(#idle).
    const GpuId local_gpu = ctx.first_idle_with_local_work();
    if (local_gpu.valid()) {
      ctx.dispatch_from_local(local_gpu);
      continue;
    }

    const Request* head = ctx.global_queue().head();
    if (head == nullptr) return;
    const auto idle = ctx.idle_gpus();
    if (idle.empty()) return;

    // Hit on an idle GPU if possible — resolved against the model's
    // holder list (O(#locations)), not a scan of the idle set.
    const GpuId hit_gpu = best_idle_holder(ctx, head->model, GpuId());
    if (hit_gpu.valid()) {
      ctx.dispatch_from_global(head->id, hit_gpu, /*false_miss=*/false);
      continue;
    }
    // Otherwise Algorithm 2 decides; either way the head leaves the queue.
    locality_load_balance(ctx, idle.front(), head->id);
  }
}

void LalbScheduler::schedule_out_of_order(SchedulingContext& ctx) {
  // Algorithm 1 with the O3 skip counter, driven by live arrival-order
  // iterators instead of per-GPU O(n) snapshots. Within one invocation
  // the only queue mutations are our own actions, and Algorithm 2 only
  // ever removes the request passed to it, so advancing the iterator
  // before acting keeps iteration valid (std::list erase semantics).
  //
  // The scan over the uncached prefix is bounded by the O3 limit in the
  // amortized sense: every touch of a request either dispatches it, ages
  // it (at most o3_limit_ + 1 times over its lifetime), or force-places
  // it, so total scan work per request is O(o3_limit_), independent of
  // queue length.
  const std::vector<GpuId> idle_snapshot = ctx.idle_gpus();
  const GlobalQueue& queue = ctx.global_queue();
  for (GpuId gpu_i : idle_snapshot) {
    if (!ctx.is_idle(gpu_i)) continue;  // used by an earlier iteration

    // Lines 2-5: local queue first.
    if (!ctx.local_queues().empty(gpu_i)) {
      ctx.dispatch_from_local(gpu_i);
      continue;
    }

    // Lines 6-16: find the earliest request with its model cached on
    // gpu_i, skipping (and aging) non-cached requests up to the limit.
    bool dispatched = false;
    for (auto it = queue.begin(); it != queue.end();) {
      const auto next = std::next(it);
      if (ctx.cache().is_cached(gpu_i, it->model)) {
        ctx.dispatch_from_global(it->id, gpu_i, /*false_miss=*/false);
        dispatched = true;
        break;
      }
      if (it->visits > o3_limit_) {
        // Starvation limit reached: place unconditionally (lines 11-13).
        if (locality_load_balance(ctx, gpu_i, it->id)) {
          dispatched = true;
          break;
        }
        if (!ctx.is_idle(gpu_i)) {
          dispatched = true;  // gpu_i consumed by a re-entrant action
          break;
        }
        it = next;
        continue;
      }
      ctx.mutable_global_queue().bump_visits(it->id);  // lines 14-16
      it = next;
    }
    if (dispatched) continue;

    // For-else (lines 17-21): nothing cached on gpu_i; fall back to
    // locality-aware load balancing in arrival order until gpu_i is used.
    for (auto it = queue.begin(); it != queue.end();) {
      const auto next = std::next(it);
      if (locality_load_balance(ctx, gpu_i, it->id)) break;
      if (!ctx.is_idle(gpu_i)) break;
      it = next;
    }
  }
}

}  // namespace gfaas::core
