// A scheduled unit of work: one model-inference function invocation.
//
// Requests are what flow through the paper's Fig. 3 pipeline: Gateway ->
// global queue -> (policy) -> GPU local queue / direct dispatch -> GPU.
// `visits` is the out-of-order dispatch skip counter of Algorithm 1
// (lines 11-16): each time the scheduler passes over a request to promote
// a later cache-hit request, visits increments; once it exceeds the O3
// limit the request is placed unconditionally.
#pragma once

#include <cstdint>
#include <string>

#include "common/id.h"
#include "common/time.h"

namespace gfaas::core {

struct Request {
  RequestId id;
  FunctionId function;
  ModelId model;
  std::int64_t batch = 32;
  SimTime arrival = 0;
  // O3 skip counter (Algorithm 1).
  int visits = 0;
  // Function name, for datastore metric keys and logs.
  std::string function_name;
};

// The final record of one completed invocation, used for every
// latency/miss metric in the evaluation.
struct CompletionRecord {
  RequestId id;
  ModelId model;
  GpuId gpu;
  SimTime arrival = 0;
  SimTime dispatched = 0;
  SimTime completed = 0;
  bool cache_hit = false;
  // Scheduler forwarded it as a miss although the model was cached on
  // some other GPU at decision time (Fig. 5's metric).
  bool false_miss = false;
  // Whether it waited in a busy GPU's local queue.
  bool via_local_queue = false;

  SimTime latency() const { return completed - arrival; }
};

}  // namespace gfaas::core
