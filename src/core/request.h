// A scheduled unit of work: one model-inference function invocation.
//
// Requests are what flow through the paper's Fig. 3 pipeline: Gateway ->
// global queue -> (policy) -> GPU local queue / direct dispatch -> GPU.
// `visits` is the out-of-order dispatch skip counter of Algorithm 1
// (lines 11-16): each time the scheduler passes over a request to promote
// a later cache-hit request, visits increments; once it exceeds the O3
// limit the request is placed unconditionally.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/id.h"
#include "common/time.h"

namespace gfaas::core {

struct CompletionRecord;

// Per-request completion notification (the Gateway resolving a serving
// callback). Fires exactly once, on success or on failure.
using CompletionHook = std::function<void(const CompletionRecord&)>;

struct Request {
  RequestId id;
  FunctionId function;
  ModelId model;
  std::int64_t batch = 32;
  SimTime arrival = 0;
  // O3 skip counter (Algorithm 1).
  int visits = 0;
  // Function name, for datastore metric keys and logs.
  std::string function_name;
  // --- serving-layer metadata (src/gateway) ---
  // Absolute completion deadline; kSimTimeMax = no SLO. The Gateway
  // stamps arrival + the request's latency SLO here at admission. The
  // scheduling policies never read it, so deadline-carrying replays stay
  // bit-identical to the seed engine.
  SimTime deadline = kSimTimeMax;
  // --- sharded-serving metadata (src/shard) ---
  // Cross-shard steal hops taken so far: 0 = the request runs on the
  // shard its model hashed to; each work-steal rebalance that moves it
  // to another shard's engine increments it. Single-engine runs never
  // touch it, so steal-marker-carrying replays stay bit-identical to
  // the seed engine (the digest folds it into the flags byte, where a
  // zero adds nothing).
  std::int32_t steal_hops = 0;
  // Per-request completion hook. The engine detaches it at submit() and
  // invokes it after the global completion hook, so it survives the
  // request's trip through the global/local queues by id, not by copy.
  CompletionHook on_complete;
};

// The final record of one completed invocation, used for every
// latency/miss metric in the evaluation.
struct CompletionRecord {
  RequestId id;
  ModelId model;
  GpuId gpu;
  SimTime arrival = 0;
  SimTime dispatched = 0;
  SimTime completed = 0;
  bool cache_hit = false;
  // Scheduler forwarded it as a miss although the model was cached on
  // some other GPU at decision time (Fig. 5's metric).
  bool false_miss = false;
  // Whether it waited in a busy GPU's local queue.
  bool via_local_queue = false;
  // The GPU died while this request ran (SchedulerEngine::kill_gpu): the
  // record is the failure notification; `completed` stops at the kill
  // instant and the timing fields must not feed latency metrics.
  bool failed = false;
  // Deadline carried over from the request (kSimTimeMax = none).
  SimTime deadline = kSimTimeMax;
  // Steal marker carried over from the request: how many cross-shard
  // hops it took before completing (0 outside sharded mode).
  std::int32_t steal_hops = 0;

  SimTime latency() const { return completed - arrival; }
  // Whether the invocation finished within its deadline (vacuously true
  // without one; never true for failed requests).
  bool slo_met() const { return !failed && completed <= deadline; }
};

}  // namespace gfaas::core
