#include "sim/simulator.h"

#include <algorithm>

namespace gfaas::sim {

std::uint64_t Simulator::schedule_on_lane(SimTime when, std::uint8_t lane,
                                          std::function<void()> fn) {
  GFAAS_CHECK(when >= now_) << "scheduling into the past: " << when << " < " << now_;
  GFAAS_CHECK(fn != nullptr);
  const std::uint64_t id = next_id_++;
  queue_.push(Event{when, lane, next_seq_++, id, std::move(fn)});
  live_.insert(id);
  return id;
}

std::uint64_t Simulator::schedule_at(SimTime when, std::function<void()> fn) {
  return schedule_on_lane(when, kDefaultLane, std::move(fn));
}

std::uint64_t Simulator::schedule_arrival_at(SimTime when, std::function<void()> fn) {
  return schedule_on_lane(when, kArrivalLane, std::move(fn));
}

bool Simulator::cancel(std::uint64_t event_id) {
  // Only events still pending (scheduled, not yet run or cancelled) can be
  // cancelled. The heap entry stays behind as a tombstone and is dropped
  // lazily by settle_head(); amortized O(1).
  return live_.erase(event_id) > 0;
}

void Simulator::settle_head() {
  while (!queue_.empty() && live_.count(queue_.top().id) == 0) queue_.pop();
}

bool Simulator::pop_and_run() {
  settle_head();
  if (queue_.empty()) return false;
  Event ev = queue_.top();
  queue_.pop();
  live_.erase(ev.id);
  now_ = ev.time;
  ++executed_;
  ev.fn();
  return true;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (pop_and_run()) ++n;
  return n;
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t n = 0;
  // Settle before testing the head so a cancelled tombstone inside the
  // deadline can never pull a live event from beyond it.
  for (settle_head(); !queue_.empty() && queue_.top().time <= deadline;
       settle_head()) {
    if (pop_and_run()) ++n;
  }
  now_ = std::max(now_, deadline);
  return n;
}

bool Simulator::step() { return pop_and_run(); }

}  // namespace gfaas::sim
