#include "sim/simulator.h"

#include <algorithm>

namespace gfaas::sim {

std::uint64_t Simulator::schedule_at(SimTime when, std::function<void()> fn) {
  GFAAS_CHECK(when >= now_) << "scheduling into the past: " << when << " < " << now_;
  GFAAS_CHECK(fn != nullptr);
  const std::uint64_t id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  pending_ids_.push_back(id);
  return id;
}

bool Simulator::cancel(std::uint64_t event_id) {
  // Only events still pending (scheduled, not yet run or cancelled) can
  // be cancelled.
  auto pending = std::find(pending_ids_.begin(), pending_ids_.end(), event_id);
  if (pending == pending_ids_.end()) return false;
  pending_ids_.erase(pending);
  cancelled_.push_back(event_id);
  ++cancelled_count_;
  return true;
}

bool Simulator::pop_and_run() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    auto it = std::find(cancelled_.begin(), cancelled_.end(), ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      --cancelled_count_;
      continue;  // tombstoned
    }
    auto pending = std::find(pending_ids_.begin(), pending_ids_.end(), ev.id);
    if (pending != pending_ids_.end()) pending_ids_.erase(pending);
    now_ = ev.time;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (pop_and_run()) ++n;
  return n;
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().time <= deadline) {
    if (pop_and_run()) ++n;
  }
  now_ = std::max(now_, deadline);
  return n;
}

bool Simulator::step() { return pop_and_run(); }

}  // namespace gfaas::sim
