// Deterministic discrete-event simulation engine.
//
// All gFaaS experiments run on this engine: components schedule callbacks
// at absolute or relative simulated times, and the engine executes them in
// (time, insertion-sequence) order. Sequence-number tie-breaking makes
// runs bit-reproducible regardless of container/heap implementation
// details.
//
// The same scheduler/cache/GPU-manager code also runs against wall-clock
// time through cluster::RealTimeExecutor; nothing in those components
// depends on this engine directly — they receive `now` and completion
// callbacks through the Clock/Executor interfaces below.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/log.h"
#include "common/time.h"

namespace gfaas::sim {

// Read-only clock interface; components observe time through this so they
// are agnostic to simulated vs wall-clock execution.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual SimTime now() const = 0;
};

// Deferred-execution interface: "call fn after delay".
class Executor : public Clock {
 public:
  // Schedules fn at now() + delay (delay >= 0). Returns an id usable with
  // cancel().
  virtual std::uint64_t schedule_after(SimTime delay, std::function<void()> fn) = 0;
  virtual bool cancel(std::uint64_t event_id) = 0;

  // Runs fn as soon as possible, keeping FIFO order with the events
  // already due. Semantically schedule_after(0, fn); wall-clock
  // implementations override it with a cheaper immediate-work path
  // (cluster::RealTimeExecutor's ready deque).
  virtual std::uint64_t post(std::function<void()> fn) {
    return schedule_after(0, std::move(fn));
  }
};

class Simulator final : public Executor {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const override { return now_; }

  // Schedules fn at the absolute simulated time `when` (>= now()).
  std::uint64_t schedule_at(SimTime when, std::function<void()> fn);

  // Schedules fn at `when` on the ARRIVAL lane: among events sharing a
  // time, arrival-lane events run before every normally scheduled event,
  // regardless of insertion order (FIFO among themselves). This exists
  // for epoch-chunked replays (shard::ShardedCluster): the seed replay
  // schedules every submission upfront, so its submissions hold the
  // lowest sequence numbers and win every same-time tie against
  // completion events scheduled during the run. A replay that injects
  // arrivals mid-run cannot win those ties by sequence number — the lane
  // restores the seed ordering exactly. Runs that never use this method
  // are unaffected: all-default-lane ordering degenerates to (time, seq).
  std::uint64_t schedule_arrival_at(SimTime when, std::function<void()> fn);

  std::uint64_t schedule_after(SimTime delay, std::function<void()> fn) override {
    GFAAS_CHECK(delay >= 0) << "negative delay " << delay;
    return schedule_at(now_ + delay, std::move(fn));
  }

  // Cancels a pending event; returns false if it already ran or never
  // existed. Cancellation is O(1) (lazy: the event is tombstoned).
  bool cancel(std::uint64_t event_id) override;

  // Runs until the event queue is empty. Returns the number of events run.
  std::size_t run();

  // Runs events with time <= deadline; the clock ends at
  // max(now, deadline) even if the queue drains early.
  std::size_t run_until(SimTime deadline);

  // Executes the single next event, if any. Returns false if queue empty.
  bool step();

  std::size_t pending_events() const { return live_.size(); }
  std::uint64_t events_executed() const { return executed_; }

 private:
  // Same-time ordering is (lane, seq): the arrival lane first, then
  // insertion order. Everything scheduled through the Executor interface
  // uses kDefaultLane, so the lane only matters to callers that opt into
  // schedule_arrival_at().
  static constexpr std::uint8_t kArrivalLane = 0;
  static constexpr std::uint8_t kDefaultLane = 1;

  std::uint64_t schedule_on_lane(SimTime when, std::uint8_t lane,
                                 std::function<void()> fn);

  struct Event {
    SimTime time;
    std::uint8_t lane;  // first tie-breaker: arrivals beat scheduled work
    std::uint64_t seq;  // second tie-breaker: FIFO among same-lane events
    std::uint64_t id;
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.lane != b.lane) return a.lane > b.lane;
      return a.seq > b.seq;
    }
  };

  // Pops cancelled tombstones off the queue head so queue_.top(), when it
  // exists, is always a live event.
  void settle_head();
  bool pop_and_run();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  // Ids of events scheduled but not yet run or cancelled. An event popped
  // off the heap whose id is absent here was cancelled (lazy tombstone).
  std::unordered_set<std::uint64_t> live_;
};

}  // namespace gfaas::sim
