#include "metrics/fleet.h"

#include <algorithm>
#include <sstream>

#include "common/log.h"
#include "telemetry/csv.h"

namespace gfaas::metrics {

void StepTimeline::set(SimTime t, double value) {
  GFAAS_CHECK(steps_.empty() || t >= steps_.back().first)
      << "timeline steps must be non-decreasing in time";
  if (!steps_.empty() && steps_.back().first == t) {
    steps_.back().second = value;
    return;
  }
  if (!steps_.empty() && steps_.back().second == value) return;
  steps_.emplace_back(t, value);
}

double StepTimeline::value_at(SimTime t) const {
  double value = 0.0;
  for (const auto& [start, v] : steps_) {
    if (start > t) break;
    value = v;
  }
  return value;
}

double StepTimeline::min_value() const {
  double out = steps_.empty() ? 0.0 : steps_.front().second;
  for (const auto& [start, v] : steps_) out = std::min(out, v);
  return out;
}

double StepTimeline::max_value() const {
  double out = 0.0;
  for (const auto& [start, v] : steps_) out = std::max(out, v);
  return out;
}

double StepTimeline::integral(SimTime until) const {
  double area = 0.0;
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    const SimTime start = steps_[i].first;
    if (start >= until) break;
    const SimTime end = (i + 1 < steps_.size()) ? std::min(steps_[i + 1].first, until)
                                                : until;
    area += steps_[i].second * static_cast<double>(end - start);
  }
  return area;
}

double StepTimeline::time_weighted_mean(SimTime until) const {
  return until > 0 ? integral(until) / static_cast<double>(until) : 0.0;
}

std::string StepTimeline::to_csv() const {
  // Shared CSV dialect (telemetry::CsvWriter): same header convention,
  // escaping, and double rendering as the telemetry exporter's series.
  telemetry::CsvWriter csv({"time_s", "value"});
  for (const auto& [start, v] : steps_) {
    csv.add_row({telemetry::CsvWriter::field(sim_to_seconds(start)),
                 telemetry::CsvWriter::field(v)});
  }
  return csv.str();
}

}  // namespace gfaas::metrics
