// Fleet-size accounting for elastic clusters (src/autoscale).
//
// StepTimeline records a piecewise-constant integer-ish signal (the number
// of powered / schedulable GPUs) as explicit steps over simulated time, so
// the autoscaling benches can print the fleet-size evolution, integrate
// GPU-seconds exactly, and compare policies. TimeWeightedAverage already
// integrates such signals but keeps only the running mean; the benches
// additionally need the step history (timeline printouts, CSV) and
// min/max, hence a dedicated type.
//
// GpuCostModel converts integrated GPU-seconds into dollars at a flat
// $/GPU-hour rate — the serverless provider's cost side of the
// cost/latency trade-off bench_autoscale sweeps.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/time.h"

namespace gfaas::metrics {

class StepTimeline {
 public:
  // Records the signal value from time `t` on (t must be non-decreasing;
  // a second set() at the same t overwrites the step). Before the first
  // step the signal is 0.
  void set(SimTime t, double value);

  bool empty() const { return steps_.empty(); }
  double current() const { return steps_.empty() ? 0.0 : steps_.back().second; }
  // Value of the signal at time t (0 before the first step).
  double value_at(SimTime t) const;
  // Extremes over the recorded steps (0 if empty).
  double min_value() const;
  double max_value() const;

  // Exact integral of the signal over [0, until] in value x simulated
  // microseconds; value_seconds() converts to value x seconds (e.g.
  // GPU-seconds when the signal counts powered GPUs).
  double integral(SimTime until) const;
  double value_seconds(SimTime until) const { return integral(until) / 1e6; }
  double time_weighted_mean(SimTime until) const;

  const std::vector<std::pair<SimTime, double>>& steps() const { return steps_; }

  // CSV: "time_s,value" per step.
  std::string to_csv() const;

 private:
  std::vector<std::pair<SimTime, double>> steps_;  // (start time, value)
};

struct GpuCostModel {
  double dollars_per_gpu_hour = 1.10;  // on-demand cloud GPU list price

  double cost(double gpu_seconds) const {
    return gpu_seconds / 3600.0 * dollars_per_gpu_hour;
  }
};

}  // namespace gfaas::metrics
