#include "metrics/reporter.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/log.h"
#include "telemetry/csv.h"

namespace gfaas::metrics {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  GFAAS_CHECK(cells.size() == headers_.size())
      << "row has " << cells.size() << " cells, expected " << headers_.size();
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_percent(double ratio, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, ratio * 100.0);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "  " << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += "  " + std::string(widths[c], '-');
  }
  out << rule << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  // Shared CSV dialect (telemetry::CsvWriter): cells containing commas,
  // quotes, or newlines are now properly quoted instead of corrupting
  // the row, and the column-count check rides on the writer.
  telemetry::CsvWriter csv(headers_);
  for (const auto& row : rows_) csv.add_row(row);
  return csv.str();
}

}  // namespace gfaas::metrics
