// Result-table rendering: aligned console tables and CSV output. Every
// bench harness prints through these so the figure outputs share one format.
#pragma once

#include <string>
#include <vector>

namespace gfaas::metrics {

// A simple column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  // Formats helpers for numeric cells.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_percent(double ratio, int precision = 1);

  std::string to_string() const;
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gfaas::metrics
