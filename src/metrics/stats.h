// Streaming statistics: Welford mean/variance, min/max, and a log-binned
// histogram for percentile estimation. These back every metric the paper
// reports (average latency, latency variance, miss ratios, utilization).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/time.h"

namespace gfaas::metrics {

// Nearest-rank quantile index over `count` ascending samples: the
// smallest index with at least fraction q of the distribution at or
// below it (0 when count == 0 or q == 0). Shared so the Gateway's
// windowed quantiles and the scaling policies' demand percentiles can
// never drift apart on rank arithmetic.
inline std::size_t nearest_rank(std::size_t count, double q) {
  if (count == 0) return 0;
  const double raw = std::ceil(q * static_cast<double>(count)) - 1.0;
  const std::size_t rank = raw > 0.0 ? static_cast<std::size_t>(raw) : 0;
  return std::min(rank, count - 1);
}

// Numerically-stable single-pass mean/variance (Welford's algorithm).
class StreamingStats {
 public:
  void add(double x);
  void merge(const StreamingStats& other);
  void reset();

  std::int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Population variance; sample_variance() divides by n-1.
  double variance() const { return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0; }
  double sample_variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Log-binned histogram over positive values; ~2% relative error per bin.
// Percentiles are linear-interpolated within the matched bin.
class Histogram {
 public:
  // Covers [min_value, max_value] with `bins_per_decade` log-spaced bins
  // per factor of 10. Values outside the range clamp to the edge bins.
  Histogram(double min_value = 1.0, double max_value = 1e9,
            int bins_per_decade = 50);

  void add(double x);
  void merge(const Histogram& other);
  void reset();

  std::int64_t count() const { return count_; }
  // q in [0, 1]; quantile(0.5) is the median.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

 private:
  int bucket_for(double x) const;
  double bucket_lower(int b) const;
  double bucket_upper(int b) const;

  double min_value_;
  double log_min_;
  double bins_per_decade_;
  std::vector<std::int64_t> buckets_;
  std::int64_t count_ = 0;
};

// Integrates a piecewise-constant signal over simulated time; reports the
// time-weighted average. Used for SM utilization and cache occupancy.
class TimeWeightedAverage {
 public:
  // The signal starts at `initial` at t=0.
  explicit TimeWeightedAverage(double initial = 0.0) : value_(initial) {}

  // Records that the signal changed to `value` at time `now` (>= last).
  void set(SimTime now, double value);

  // Average over [0, now]. If now == 0 returns the current value.
  double average(SimTime now) const;

  double current() const { return value_; }

 private:
  double value_;
  SimTime last_time_ = 0;
  double integral_ = 0.0;
};

}  // namespace gfaas::metrics
