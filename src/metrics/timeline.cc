#include "metrics/timeline.h"

#include <sstream>

#include "common/log.h"

namespace gfaas::metrics {

TimeSeries::TimeSeries(SimTime bucket_width) : bucket_width_(bucket_width) {
  GFAAS_CHECK(bucket_width > 0);
}

StreamingStats& TimeSeries::bucket_for(SimTime t) {
  GFAAS_CHECK(t >= 0) << "negative sample time";
  const auto index = static_cast<std::size_t>(t / bucket_width_);
  if (buckets_.size() <= index) buckets_.resize(index + 1);
  return buckets_[index];
}

void TimeSeries::add(SimTime t, double value) { bucket_for(t).add(value); }

void TimeSeries::count(SimTime t, double increment) { bucket_for(t).add(increment); }

double TimeSeries::bucket_mean(std::size_t bucket) const {
  return bucket < buckets_.size() ? buckets_[bucket].mean() : 0.0;
}

double TimeSeries::bucket_sum(std::size_t bucket) const {
  return bucket < buckets_.size() ? buckets_[bucket].sum() : 0.0;
}

std::int64_t TimeSeries::bucket_samples(std::size_t bucket) const {
  return bucket < buckets_.size() ? buckets_[bucket].count() : 0;
}

std::string TimeSeries::to_csv() const {
  std::ostringstream out;
  out << "bucket,start_s,samples,sum,mean\n";
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    out << b << ',' << sim_to_seconds(static_cast<SimTime>(b) * bucket_width_) << ','
        << buckets_[b].count() << ',' << buckets_[b].sum() << ','
        << buckets_[b].mean() << '\n';
  }
  return out.str();
}

}  // namespace gfaas::metrics
