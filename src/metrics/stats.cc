#include "metrics/stats.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace gfaas::metrics {

void StreamingStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void StreamingStats::reset() { *this = StreamingStats(); }

double StreamingStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double min_value, double max_value, int bins_per_decade)
    : min_value_(min_value),
      log_min_(std::log10(min_value)),
      bins_per_decade_(bins_per_decade) {
  GFAAS_CHECK(min_value > 0 && max_value > min_value && bins_per_decade > 0);
  const double decades = std::log10(max_value) - log_min_;
  const int n = static_cast<int>(std::ceil(decades * bins_per_decade)) + 1;
  buckets_.assign(static_cast<std::size_t>(n), 0);
}

int Histogram::bucket_for(double x) const {
  if (x <= min_value_) return 0;
  const double b = (std::log10(x) - log_min_) * bins_per_decade_;
  const int bi = static_cast<int>(b);
  return std::min(bi, static_cast<int>(buckets_.size()) - 1);
}

double Histogram::bucket_lower(int b) const {
  return std::pow(10.0, log_min_ + static_cast<double>(b) / bins_per_decade_);
}

double Histogram::bucket_upper(int b) const {
  return std::pow(10.0, log_min_ + static_cast<double>(b + 1) / bins_per_decade_);
}

void Histogram::add(double x) {
  ++buckets_[static_cast<std::size_t>(bucket_for(x))];
  ++count_;
}

void Histogram::merge(const Histogram& other) {
  GFAAS_CHECK(buckets_.size() == other.buckets_.size())
      << "merging histograms with different shapes";
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double cum = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const double next = cum + static_cast<double>(buckets_[b]);
    if (next >= target && buckets_[b] > 0) {
      // Linear interpolation within the bucket.
      const double frac =
          buckets_[b] > 0 ? (target - cum) / static_cast<double>(buckets_[b]) : 0.0;
      const int bi = static_cast<int>(b);
      return bucket_lower(bi) + frac * (bucket_upper(bi) - bucket_lower(bi));
    }
    cum = next;
  }
  return bucket_upper(static_cast<int>(buckets_.size()) - 1);
}

void TimeWeightedAverage::set(SimTime now, double value) {
  GFAAS_CHECK(now >= last_time_) << "time went backwards";
  integral_ += value_ * static_cast<double>(now - last_time_);
  last_time_ = now;
  value_ = value;
}

double TimeWeightedAverage::average(SimTime now) const {
  GFAAS_CHECK(now >= last_time_);
  if (now == 0) return value_;
  const double total =
      integral_ + value_ * static_cast<double>(now - last_time_);
  return total / static_cast<double>(now);
}

}  // namespace gfaas::metrics
