// Time-bucketed metric series: aggregates samples into fixed-width time
// buckets (e.g. per-minute average latency / miss counts), the form in
// which the paper's evaluation plots evolve over the 6-minute window.
#pragma once

#include <string>
#include <vector>

#include "common/time.h"
#include "metrics/stats.h"

namespace gfaas::metrics {

class TimeSeries {
 public:
  // `bucket_width` in simulated time (default: one minute).
  explicit TimeSeries(SimTime bucket_width = minutes(1));

  // Records a sample at time `t` (buckets grow on demand).
  void add(SimTime t, double value);
  // Increments a count at time `t` (value defaults to 1).
  void count(SimTime t, double increment = 1.0);

  std::size_t bucket_count() const { return buckets_.size(); }
  SimTime bucket_width() const { return bucket_width_; }

  // Per-bucket aggregates (empty buckets report 0).
  double bucket_mean(std::size_t bucket) const;
  double bucket_sum(std::size_t bucket) const;
  std::int64_t bucket_samples(std::size_t bucket) const;

  // CSV: "bucket,start_s,samples,sum,mean".
  std::string to_csv() const;

 private:
  SimTime bucket_width_;
  std::vector<StreamingStats> buckets_;
  StreamingStats& bucket_for(SimTime t);
};

}  // namespace gfaas::metrics
