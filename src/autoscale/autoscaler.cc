#include "autoscale/autoscaler.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/log.h"
#include "telemetry/telemetry.h"

namespace gfaas::autoscale {

// Instrument pointers resolved once at set_telemetry().
struct Autoscaler::TelemetryHandles {
  telemetry::Counter* ticks = nullptr;
  telemetry::Counter* scale_ups = nullptr;
  telemetry::Counter* scale_downs = nullptr;
  telemetry::Counter* gpus_added = nullptr;
  telemetry::Counter* gpus_retired = nullptr;
  telemetry::Counter* gpus_replaced = nullptr;
};

std::vector<GpuId> select_drain_victims(const std::vector<GpuId>& idle_hot_first,
                                        const cache::CacheManager& cache,
                                        std::size_t count) {
  // Rank each idle candidate by the number of resident models it is the
  // sole unfenced holder of (fencing such a GPU evicts the fleet's only
  // warm copy and forces a cold reload on the next request). Among
  // equals, prefer the coldest — the least-frequently-dispatched GPU,
  // i.e. the furthest back in the engine's hot-first idle ordering.
  //
  // Selection is greedy one victim at a time against *remaining* holder
  // counts: once a victim is chosen its copies no longer count, so two
  // GPUs that are each other's only duplicate for a model cannot both be
  // drained in one batch while an equally cheap victim exists.
  struct Candidate {
    std::size_t coldness;  // 0 = coldest
    GpuId gpu;
    std::vector<ModelId> models;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(idle_hot_first.size());
  std::unordered_map<std::int64_t, std::size_t> holders;  // model -> unfenced copies
  for (std::size_t pos = 0; pos < idle_hot_first.size(); ++pos) {
    const GpuId gpu = idle_hot_first[pos];
    candidates.push_back(
        {idle_hot_first.size() - 1 - pos, gpu, cache.state(gpu).models()});
    for (ModelId model : candidates.back().models) {
      holders.emplace(model.value(), cache.duplicate_count(model));
    }
  }

  std::vector<GpuId> victims;
  count = std::min(count, candidates.size());
  victims.reserve(count);
  while (victims.size() < count) {
    std::size_t best = candidates.size();
    std::size_t best_sole = 0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (!candidates[i].gpu.valid()) continue;  // already picked
      std::size_t sole = 0;
      for (ModelId model : candidates[i].models) {
        if (holders[model.value()] <= 1) ++sole;
      }
      if (best == candidates.size() || sole < best_sole ||
          (sole == best_sole && candidates[i].coldness < candidates[best].coldness)) {
        best = i;
        best_sole = sole;
      }
    }
    Candidate& victim = candidates[best];
    victims.push_back(victim.gpu);
    victim.gpu = GpuId();
    for (ModelId model : victim.models) --holders[model.value()];
  }
  return victims;
}

Autoscaler::Autoscaler(cluster::ElasticCluster* cluster,
                       std::unique_ptr<ScalingPolicy> policy, AutoscalerConfig config)
    : cluster_(cluster), policy_(std::move(policy)), config_(config) {
  GFAAS_CHECK(cluster_ != nullptr && policy_ != nullptr);
  GFAAS_CHECK(config_.min_gpus >= 1 && config_.max_gpus >= config_.min_gpus);
  GFAAS_CHECK(config_.evaluation_interval > 0 && config_.cold_start >= 0);
  policy_->bind(config_.evaluation_interval);
}

Autoscaler::~Autoscaler() = default;

void Autoscaler::set_telemetry(telemetry::Telemetry* telemetry) {
  if (telemetry == nullptr) {
    tel_.reset();
    return;
  }
  auto handles = std::make_unique<TelemetryHandles>();
  telemetry::MetricRegistry& m = telemetry->metrics();
  handles->ticks = m.counter("autoscale.ticks");
  handles->scale_ups = m.counter("autoscale.scale_up_decisions");
  handles->scale_downs = m.counter("autoscale.scale_down_decisions");
  handles->gpus_added = m.counter("autoscale.gpus_added");
  handles->gpus_retired = m.counter("autoscale.gpus_retired");
  handles->gpus_replaced = m.counter("autoscale.gpus_replaced");
  tel_ = std::move(handles);
  // Billed-capacity breakdown, sampled each exporter tick.
  telemetry->add_probe([this](telemetry::MetricRegistry& reg) {
    serial_.AssertHeld();  // probes run on the executor worker thread
    const double schedulable =
        static_cast<double>(cluster_->engine().schedulable_gpu_count());
    reg.gauge("autoscale.fleet.schedulable")->set(schedulable);
    reg.gauge("autoscale.fleet.provisioning")
        ->set(static_cast<double>(provisioning_));
    reg.gauge("autoscale.fleet.draining")
        ->set(static_cast<double>(draining_.size()));
    reg.gauge("autoscale.fleet.powered")
        ->set(schedulable + static_cast<double>(provisioning_) +
              static_cast<double>(draining_.size()));
  });
}

void Autoscaler::start(SimTime horizon) {
  serial_.AssertHeld();
  GFAAS_CHECK(!started_) << "autoscaler already started";
  started_ = true;
  horizon_ = horizon;
  record_fleet();
  if (!config_.enabled) return;
  schedule_tick();
}

void Autoscaler::finalize() {
  serial_.AssertHeld();
  reap_drained();
  record_fleet();
  GFAAS_CHECK(provisioning_ == 0 && draining_.empty())
      << "finalize with in-flight membership changes";
}

void Autoscaler::schedule_tick() {
  cluster_->executor().schedule_after(config_.evaluation_interval, [this] {
    serial_.AssertHeld();  // timer callbacks fire on the worker thread
    tick();
  });
}

void Autoscaler::tick() {
  ++counters_.ticks;
  if (tel_) tel_->ticks->add();
  reap_drained();

  // Dead capacity is re-provisioned, not drained: a chaos kill removes
  // GPUs without any scale-down decision, and no policy is guaranteed to
  // notice (a mostly-idle fleet can sit below min_gpus indefinitely).
  // Backfill the floor before consulting the policy so the configured
  // minimum is an invariant, not a suggestion.
  const std::size_t committed_floor =
      cluster_->engine().schedulable_gpu_count() + provisioning_;
  if (committed_floor < config_.min_gpus) {
    const std::size_t deficit = config_.min_gpus - committed_floor;
    for (std::size_t i = 0; i < deficit; ++i) begin_cold_start();
    counters_.gpus_replaced += static_cast<std::int64_t>(deficit);
    if (tel_) tel_->gpus_replaced->add(static_cast<std::int64_t>(deficit));
    record_fleet();
  }

  const FleetView view = snapshot();
  const ScalingDecision decision = policy_->evaluate(view);
  apply(decision);

  // Re-arm while the trace is still arriving or the fleet has committed
  // work / membership changes outstanding; otherwise let the executor's
  // event queue drain so the run terminates.
  const bool keep_ticking = cluster_->executor().now() < horizon_ ||
                            cluster_->engine().pending() > 0 || provisioning_ > 0 ||
                            !draining_.empty();
  if (keep_ticking) schedule_tick();
}

FleetView Autoscaler::snapshot() const {
  const cluster::SchedulerEngine& engine = cluster_->engine();
  FleetView view;
  view.now = cluster_->executor().now();
  view.schedulable_gpus = engine.schedulable_gpu_count();
  view.provisioning_gpus = provisioning_;
  view.draining_gpus = draining_.size();
  view.idle_gpus = engine.idle_gpu_count();
  view.queue_len = engine.global_queue().size();
  view.in_flight = engine.in_flight();
  view.local_pending = engine.local_queues().total_pending();
  view.min_gpus = config_.min_gpus;
  view.max_gpus = config_.max_gpus;
  return view;
}

void Autoscaler::apply(const ScalingDecision& decision) {
  // The min/max clamps live here, not in the policies (policy.h contract):
  // a decision can never push committed capacity above max_gpus...
  const std::size_t committed =
      cluster_->engine().schedulable_gpu_count() + provisioning_;
  const std::size_t add =
      std::min(decision.add, config_.max_gpus > committed
                                 ? config_.max_gpus - committed
                                 : 0);
  if (add > 0) {
    ++counters_.scale_up_decisions;
    if (tel_) tel_->scale_ups->add();
    for (std::size_t i = 0; i < add; ++i) begin_cold_start();
    record_fleet();
  }
  if (decision.remove > 0) {
    ++counters_.scale_down_decisions;
    if (tel_) tel_->scale_downs->add();
    begin_drain(decision.remove);
    reap_drained();  // idle victims with no local work retire immediately
  }
}

void Autoscaler::begin_cold_start() {
  ++provisioning_;
  SimTime delay = config_.cold_start;
  if (config_.cold_start_delay_hook) {
    const SimTime extra = config_.cold_start_delay_hook(cold_starts_begun_);
    GFAAS_CHECK(extra >= 0) << "negative cold-start delay injection";
    delay += extra;
  }
  ++cold_starts_begun_;
  cluster_->executor().schedule_after(delay, [this] {
    serial_.AssertHeld();  // timer callbacks fire on the worker thread
    GFAAS_CHECK(provisioning_ > 0);
    --provisioning_;
    cluster_->add_gpu(config_.spec);
    ++counters_.gpus_added;
    if (tel_) tel_->gpus_added->add();
    record_fleet();
  });
}

void Autoscaler::begin_drain(std::size_t count) {
  // ...and never drain the serving fleet below min_gpus — provisioning
  // GPUs do not count toward the floor, they cannot serve yet.
  const std::size_t schedulable = cluster_->engine().schedulable_gpu_count();
  count = std::min(count, schedulable > config_.min_gpus
                              ? schedulable - config_.min_gpus
                              : 0);
  const std::vector<GpuId> victims =
      select_drain_victims(cluster_->engine().idle_gpus(), cluster_->cache(), count);
  for (const GpuId victim : victims) {
    cluster_->fence_gpu(victim);
    draining_.push_back(victim);
  }
  record_fleet();
}

void Autoscaler::reap_drained() {
  bool changed = false;
  for (auto it = draining_.begin(); it != draining_.end();) {
    if (!cluster_->engine().is_registered(*it)) {
      // The GPU died (chaos kill) while draining: the engine already
      // retired it from every index, so just drop it from the drain
      // list — it was never cleanly drained, so it does not count as a
      // retirement.
      it = draining_.erase(it);
      changed = true;
    } else if (cluster_->gpu_drained(*it)) {
      cluster_->remove_gpu(*it);
      ++counters_.gpus_retired;
      if (tel_) tel_->gpus_retired->add();
      it = draining_.erase(it);
      changed = true;
    } else {
      ++it;
    }
  }
  if (changed) record_fleet();
}

void Autoscaler::record_fleet() {
  const SimTime now = cluster_->executor().now();
  const double schedulable =
      static_cast<double>(cluster_->engine().schedulable_gpu_count());
  powered_.set(now, schedulable + static_cast<double>(provisioning_) +
                        static_cast<double>(draining_.size()));
  schedulable_.set(now, schedulable);
  if (config_.membership_hook) config_.membership_hook();
}

}  // namespace gfaas::autoscale
