#include "autoscale/autoscaler.h"

#include <algorithm>

#include "common/log.h"

namespace gfaas::autoscale {

Autoscaler::Autoscaler(cluster::SimCluster* cluster,
                       std::unique_ptr<ScalingPolicy> policy, AutoscalerConfig config)
    : cluster_(cluster), policy_(std::move(policy)), config_(config) {
  GFAAS_CHECK(cluster_ != nullptr && policy_ != nullptr);
  GFAAS_CHECK(config_.min_gpus >= 1 && config_.max_gpus >= config_.min_gpus);
  GFAAS_CHECK(config_.evaluation_interval > 0 && config_.cold_start >= 0);
}

void Autoscaler::start(SimTime horizon) {
  GFAAS_CHECK(!started_) << "autoscaler already started";
  started_ = true;
  horizon_ = horizon;
  record_fleet();
  if (!config_.enabled) return;
  schedule_tick();
}

void Autoscaler::finalize() {
  reap_drained();
  record_fleet();
  GFAAS_CHECK(provisioning_ == 0 && draining_.empty())
      << "finalize with in-flight membership changes";
}

void Autoscaler::schedule_tick() {
  cluster_->simulator().schedule_after(config_.evaluation_interval,
                                       [this] { tick(); });
}

void Autoscaler::tick() {
  ++counters_.ticks;
  reap_drained();

  const FleetView view = snapshot();
  const ScalingDecision decision = policy_->evaluate(view);
  apply(decision);

  // Re-arm while the trace is still arriving or the fleet has committed
  // work / membership changes outstanding; otherwise let the simulator's
  // event queue drain so the run terminates.
  const bool keep_ticking = cluster_->simulator().now() < horizon_ ||
                            cluster_->engine().pending() > 0 || provisioning_ > 0 ||
                            !draining_.empty();
  if (keep_ticking) schedule_tick();
}

FleetView Autoscaler::snapshot() const {
  const cluster::SchedulerEngine& engine = cluster_->engine();
  FleetView view;
  view.now = cluster_->simulator().now();
  view.schedulable_gpus = engine.schedulable_gpu_count();
  view.provisioning_gpus = provisioning_;
  view.draining_gpus = draining_.size();
  view.idle_gpus = engine.idle_gpu_count();
  view.queue_len = engine.global_queue().size();
  view.in_flight = engine.in_flight();
  view.local_pending = engine.local_queues().total_pending();
  view.min_gpus = config_.min_gpus;
  view.max_gpus = config_.max_gpus;
  return view;
}

void Autoscaler::apply(const ScalingDecision& decision) {
  // The min/max clamps live here, not in the policies (policy.h contract):
  // a decision can never push committed capacity above max_gpus...
  const std::size_t committed =
      cluster_->engine().schedulable_gpu_count() + provisioning_;
  const std::size_t add =
      std::min(decision.add, config_.max_gpus > committed
                                 ? config_.max_gpus - committed
                                 : 0);
  if (add > 0) {
    ++counters_.scale_up_decisions;
    for (std::size_t i = 0; i < add; ++i) begin_cold_start();
    record_fleet();
  }
  if (decision.remove > 0) {
    ++counters_.scale_down_decisions;
    begin_drain(decision.remove);
    reap_drained();  // idle victims with no local work retire immediately
  }
}

void Autoscaler::begin_cold_start() {
  ++provisioning_;
  cluster_->simulator().schedule_after(config_.cold_start, [this] {
    GFAAS_CHECK(provisioning_ > 0);
    --provisioning_;
    cluster_->add_gpu(config_.spec);
    ++counters_.gpus_added;
    record_fleet();
  });
}

void Autoscaler::begin_drain(std::size_t count) {
  // ...and never drain the serving fleet below min_gpus — provisioning
  // GPUs do not count toward the floor, they cannot serve yet.
  const std::size_t schedulable = cluster_->engine().schedulable_gpu_count();
  count = std::min(count, schedulable > config_.min_gpus
                              ? schedulable - config_.min_gpus
                              : 0);
  // Reclaim from the back of the frequency-ordered idle set: the
  // least-frequently-dispatched idle GPUs hold the coldest models, so
  // draining them forfeits the least locality.
  const std::vector<GpuId> idle = cluster_->engine().idle_gpus();
  count = std::min(count, idle.size());
  for (std::size_t i = 0; i < count; ++i) {
    const GpuId victim = idle[idle.size() - 1 - i];
    cluster_->fence_gpu(victim);
    draining_.push_back(victim);
  }
  record_fleet();
}

void Autoscaler::reap_drained() {
  bool changed = false;
  for (auto it = draining_.begin(); it != draining_.end();) {
    if (cluster_->gpu_drained(*it)) {
      cluster_->remove_gpu(*it);
      ++counters_.gpus_retired;
      it = draining_.erase(it);
      changed = true;
    } else {
      ++it;
    }
  }
  if (changed) record_fleet();
}

void Autoscaler::record_fleet() {
  const SimTime now = cluster_->simulator().now();
  const double schedulable =
      static_cast<double>(cluster_->engine().schedulable_gpu_count());
  powered_.set(now, schedulable + static_cast<double>(provisioning_) +
                        static_cast<double>(draining_.size()));
  schedulable_.set(now, schedulable);
}

}  // namespace gfaas::autoscale
