#include "autoscale/deployment.h"

#include <algorithm>
#include <chrono>

#include "common/log.h"

namespace gfaas::autoscale {

ReplayResult replay_with_autoscaler(cluster::ElasticCluster& cluster,
                                    const std::vector<core::Request>& requests,
                                    Autoscaler& scaler) {
  GFAAS_CHECK(!requests.empty()) << "nothing to replay";
  sim::Executor& executor = cluster.executor();
  const SimTime horizon = requests.back().arrival;

  // Start the scaler from the executor, not this thread: on a wall-clock
  // cluster the worker may already be firing arrivals while we are still
  // posting later ones, and routing start() through an event keeps all
  // controller state on the worker thread. Posted first so the initial
  // fleet is recorded at (almost) time zero in both modes.
  executor.schedule_after(0, [&scaler, horizon] { scaler.start(horizon); });
  for (const core::Request& req : requests) {
    // On a live wall-clock executor now() advances while we post, so early
    // arrivals may already be due (or firing); clamp instead of asserting.
    const SimTime delay = std::max<SimTime>(0, req.arrival - executor.now());
    executor.schedule_after(delay, [&cluster, req] { cluster.engine().submit(req); });
  }

  const auto wall_start = std::chrono::steady_clock::now();
  cluster.run_to_completion();
  const auto wall_elapsed = std::chrono::steady_clock::now() - wall_start;

  scaler.finalize();
  GFAAS_CHECK(cluster.engine().pending() == 0)
      << cluster.engine().pending() << " requests stranded after replay";

  ReplayResult result;
  result.completed = cluster.engine().completions().size();
  for (const auto& record : cluster.engine().completions()) {
    result.makespan = std::max(result.makespan, record.completed);
  }
  result.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(wall_elapsed).count();
  return result;
}

}  // namespace gfaas::autoscale
