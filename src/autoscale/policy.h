// Scaling policies for the elastic fleet controller (src/autoscale).
//
// The Autoscaler periodically snapshots the cluster into a FleetView and
// asks the configured ScalingPolicy how many GPUs to add or reclaim.
// Policies are pure decision logic: provisioning delays, drain mechanics
// and min/max clamping all live in the Autoscaler, so policies stay
// trivially unit-testable.
//
// Policies:
//   * ReactivePolicy   — scales up on global-queue pressure (queued
//                        requests per powered GPU) and down on sustained
//                        idle fraction, with independent cooldowns. The
//                        classic threshold autoscaler.
//   * KeepAlivePolicy  — Azure-Functions-style windowed keep-alive: the
//                        fleet tracks the peak concurrency demand observed
//                        over a trailing window, so capacity persists for
//                        `keep_alive` after a burst instead of collapsing
//                        the moment traffic dips.
//   * PredictivePolicy — histogram/forecast autoscaler in the Azure
//                        keep-alive lineage ("Serverless in the Wild"):
//                        provisions for a high percentile of the demand
//                        distribution over a trailing history window, and
//                        projects the recent demand trend one cold-start
//                        lead time ahead so ramps are met by GPUs that
//                        finish provisioning as the demand arrives.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>

#include "common/time.h"

namespace gfaas::autoscale {

// What a policy sees at each evaluation tick.
struct FleetView {
  SimTime now = 0;
  std::size_t schedulable_gpus = 0;  // joined and not fenced
  std::size_t provisioning_gpus = 0; // cold-starting, not yet joined
  std::size_t draining_gpus = 0;     // fenced, finishing committed work
  std::size_t idle_gpus = 0;         // idle among schedulable
  std::size_t queue_len = 0;         // global queue
  std::size_t in_flight = 0;         // running on a GPU
  std::size_t local_pending = 0;     // waiting in local queues
  std::size_t min_gpus = 0;          // autoscaler floor/ceiling
  std::size_t max_gpus = 0;

  // Powered capacity the provider is paying for or has committed to.
  std::size_t powered() const {
    return schedulable_gpus + provisioning_gpus + draining_gpus;
  }
  // Instantaneous concurrency demand.
  std::size_t demand() const { return in_flight + queue_len + local_pending; }
};

struct ScalingDecision {
  std::size_t add = 0;
  std::size_t remove = 0;
};

class ScalingPolicy {
 public:
  virtual ~ScalingPolicy() = default;
  virtual std::string name() const = 0;
  // Called once by the Autoscaler before the first tick with its
  // evaluation interval, so window-based policies can validate that their
  // configured windows actually span multiple samples.
  virtual void bind(SimTime evaluation_interval) { (void)evaluation_interval; }
  virtual ScalingDecision evaluate(const FleetView& view) = 0;
};

struct ReactivePolicyConfig {
  // Scale up when queued requests per (schedulable + provisioning) GPU
  // exceed this; the step sizes the fleet toward queue_len / this.
  double queue_per_gpu_up = 1.0;
  // Scale down when idle_gpus / schedulable_gpus stays at or above this...
  double idle_fraction_down = 0.5;
  // ...continuously for this long (resets whenever pressure returns, and
  // after every scale-down so each further shrink re-establishes
  // stability against the new, smaller fleet).
  SimTime down_stability = sec(45);
  SimTime up_cooldown = sec(15);
  SimTime down_cooldown = sec(60);
  std::size_t max_step_up = 8;
  std::size_t max_step_down = 2;
};

class ReactivePolicy final : public ScalingPolicy {
 public:
  explicit ReactivePolicy(ReactivePolicyConfig config = {}) : config_(config) {}

  std::string name() const override { return "reactive"; }
  ScalingDecision evaluate(const FleetView& view) override;

 private:
  ReactivePolicyConfig config_;
  // "Long ago" without risking overflow in now() - last_*_ deltas.
  SimTime last_up_ = -(kSimTimeMax / 2);
  SimTime last_down_ = -(kSimTimeMax / 2);
  // Start of the current uninterrupted high-idle stretch (-1: none).
  SimTime high_idle_since_ = -1;
};

struct KeepAlivePolicyConfig {
  // How long observed peak demand keeps capacity alive. A sample expires
  // the instant it is exactly keep_alive old. Must exceed the
  // autoscaler's evaluation interval, or the "window" holds a single
  // sample and the policy degenerates to instantaneous tracking (bind()
  // enforces this strictly).
  SimTime keep_alive = minutes(2);
  // Provision slightly above the windowed peak to absorb ramps.
  double headroom = 1.15;
};

class KeepAlivePolicy final : public ScalingPolicy {
 public:
  explicit KeepAlivePolicy(KeepAlivePolicyConfig config = {}) : config_(config) {}

  std::string name() const override { return "keepalive"; }
  void bind(SimTime evaluation_interval) override;
  ScalingDecision evaluate(const FleetView& view) override;

 private:
  KeepAlivePolicyConfig config_;
  // (time, demand) samples inside the trailing keep-alive window.
  std::deque<std::pair<SimTime, std::size_t>> window_;
};

struct PredictivePolicyConfig {
  // Trailing window feeding the demand histogram. Must exceed the
  // autoscaler's evaluation interval (bind() enforces this strictly).
  SimTime history = minutes(10);
  // Provision for this percentile of the windowed demand distribution —
  // the histogram side: robust to one-off spikes, remembers recurring load.
  double target_percentile = 0.90;
  // Project the average demand slope over the most recent samples this
  // far ahead — the forecast side: a rising ramp is met by capacity
  // ordered one cold start early. Set to the autoscaler's cold_start.
  SimTime lead_time = sec(20);
  // How many trailing samples the slope is fitted over (>= 2).
  std::size_t trend_samples = 6;
  // Provision slightly above the predicted demand.
  double headroom = 1.10;
  // Each tick's predicted target persists as a capacity floor for this
  // long (keep-alive applied to the prediction rather than the raw
  // demand). The forecast term is noisy tick-to-tick; without the hold
  // the policy flaps capacity out and cold-starts it right back (>5x the
  // cold starts of keep-alive on the diurnal bench). 0 disables.
  SimTime target_hold = minutes(2);
};

class PredictivePolicy final : public ScalingPolicy {
 public:
  explicit PredictivePolicy(PredictivePolicyConfig config = {});

  std::string name() const override { return "predictive"; }
  void bind(SimTime evaluation_interval) override;
  ScalingDecision evaluate(const FleetView& view) override;

 private:
  PredictivePolicyConfig config_;
  // (time, demand) samples inside the trailing history window.
  std::deque<std::pair<SimTime, std::size_t>> window_;
  // (time, raw target) predictions inside the trailing hold window
  // (min/max clamping happens after the hold; the bounds are constant, so
  // clamp-of-max equals max-of-clamps).
  std::deque<std::pair<SimTime, std::size_t>> held_targets_;
};

}  // namespace gfaas::autoscale
