// SLO-aware scaling: close the loop on what the provider actually
// promises — a latency SLO — instead of proxies like queue depth.
//
// The queue/demand policies (policy.h) watch the engine's backlog; by
// the time a queue builds, the p99 is often already blown, and an empty
// queue says nothing about how close to the SLO the fleet is running.
// SloAwarePolicy reads the Gateway's trailing-window serving outcomes
// through a probe callback and composes three terms:
//
//   * forecast side — an owned PredictivePolicy produces the baseline
//     decision every tick, fed the SERVED concurrency (in_flight) rather
//     than raw demand: backlog is what the fleet's own inadequacy
//     produces, and feeding it back pegs the histogram at max for a
//     whole history window after every transient (a positive feedback
//     loop the latency guard exists to replace);
//   * envelope floor — committed capacity never drops below
//     burst_headroom x the median served concurrency: with cold starts
//     longer than a burst's onset, absorbing bursts takes capacity that
//     already stands, and the standing floor is what lets the policy
//     reclaim aggressively everywhere else;
//   * deep-wait bands — the share of recent completions that burned a
//     deep slice of their SLO budget queueing (plus any shedding, plus
//     an end-to-end p99 backstop) triggers proportional scale-up boosts
//     and vetoes scale-downs; only a cleanly-dispatching window lets the
//     forecast reclaim capacity.
//
// The probe is a callback (autoscale never links against gateway/): the
// bench/demo adapt gateway::Gateway::windowed_outcomes() into SloSignal.
// bench_gateway_slo shows the composition holding a p99 SLO the reactive
// policy misses, at lower GPU-seconds than reactive and ~24% below
// standalone predictive.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>

#include "autoscale/policy.h"

namespace gfaas::autoscale {

// Windowed serving outcomes the policy steers by (the Gateway side is
// gateway::WindowedOutcomes; the bench adapts one into the other).
struct SloSignal {
  std::size_t samples = 0;   // completions inside the trailing window
  SimTime p99_latency = 0;   // windowed p99 completion latency
  // Fraction of windowed completions that burned a deep share of their
  // SLO budget waiting for dispatch (gateway::WindowedOutcomes).
  double deep_wait_fraction = 0;
  double shed_fraction = 0;  // sheds / (sheds + completions), windowed
};

using SloProbe = std::function<SloSignal()>;

struct SloAwarePolicyConfig {
  // The end-to-end p99 latency target the fleet must hold.
  SimTime slo = sec(5);
  // The policy's bands are on the DEEP-WAIT FRACTION — the share of
  // recent completions that burned a deep slice of their SLO budget
  // queueing. Waits are the part of latency capacity can actually fix
  // (the end-to-end tail also carries intrinsic model-load time no fleet
  // size removes), and a fraction is robust where a wait percentile is
  // not: the LALB scheduler queues a tail of requests on busy GPUs by
  // design, so p99 wait never reads zero even on a healthy fleet.
  //
  // Deep waits above this fraction trigger the proactive scale-up and
  // veto any scale-down.
  double deep_wait_danger = 0.20;
  // Deep waits above this fraction veto scale-downs without adding
  // capacity; below it (nearly everything dispatches well inside its
  // budget) the forecast decision passes through untouched.
  double deep_wait_safe = 0.10;
  // End-to-end backstop: p99 latency beyond the SLO itself is always
  // danger, whatever the waits say (e.g. cache thrashing on a too-small
  // fleet inflates service time, not waits).
  double danger_fraction = 1.0;
  // Ignore the latency signal until the window holds this many samples
  // (startup, deep troughs): the forecast side governs alone.
  std::size_t min_samples = 8;
  std::size_t max_step_up = 6;
  SimTime up_cooldown = sec(20);
  // Standing burst headroom: committed capacity never drops below
  // burst_headroom x the median served concurrency (in_flight) over the
  // trailing envelope_history. This is the SLO insurance the latency
  // guard cannot provide retroactively — with a cold start longer than a
  // burst's onset, capacity ordered at detection arrives after the tail
  // damage, so absorbing bursts takes capacity that already stands. The
  // median (not a high percentile) keeps burst minutes themselves from
  // inflating the floor, and in_flight (not demand) keeps backlog out of
  // it; the floor is what lets the policy reclaim aggressively
  // everywhere else without gambling the SLO.
  double burst_headroom = 2.0;
  // Short enough that the floor tracks the diurnal ramp instead of
  // lagging it by half a window; a percentile above 0.5 would lean the
  // floor into burst minutes and double-count them against headroom.
  SimTime envelope_history = minutes(4);
  double envelope_percentile = 0.50;
  // Scale-down rate limit: reclaiming capacity is cheap to undo slowly
  // and expensive to undo quickly (a cold start, plus the warm cache the
  // drain forfeits), so removes trickle.
  std::size_t max_step_down = 2;
  SimTime down_cooldown = sec(30);
  // The composed demand forecast (see PredictivePolicyConfig). Leaner
  // defaults than standalone PredictivePolicy: the latency guard above
  // catches what a thrifty forecast under-provisions.
  PredictivePolicyConfig forecast;
};

class SloAwarePolicy final : public ScalingPolicy {
 public:
  explicit SloAwarePolicy(SloProbe probe, SloAwarePolicyConfig config = {});

  std::string name() const override { return "slo-aware"; }
  void bind(SimTime evaluation_interval) override;
  ScalingDecision evaluate(const FleetView& view) override;

 private:
  // Committed-capacity floor from the standing burst headroom (see
  // SloAwarePolicyConfig::burst_headroom).
  std::size_t envelope_floor(const FleetView& view);

  SloProbe probe_;
  SloAwarePolicyConfig config_;
  PredictivePolicy forecast_;
  SimTime last_up_ = -(kSimTimeMax / 2);
  SimTime last_down_ = -(kSimTimeMax / 2);
  // (time, in_flight) samples inside the trailing envelope window.
  std::deque<std::pair<SimTime, std::size_t>> inflight_window_;
};

}  // namespace gfaas::autoscale
