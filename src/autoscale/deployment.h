// Trace-replay deployment driver: runs SchedulerEngine + Autoscaler
// end-to-end on whatever executor the cluster carries.
//
// The driver is mode-agnostic — it only talks to cluster::ElasticCluster —
// so the identical call drives:
//   * evaluation mode  — SimCluster: arrivals become simulator events and
//     run_to_completion() executes the deterministic event loop;
//   * deployment mode  — RealTimeCluster: arrivals are posted onto the
//     live wall-clock executor (compressed by its time_scale) and
//     run_to_completion() blocks until the fleet has served everything.
//
// The autoscaler is started from an executor callback, not from the
// calling thread: on a RealTimeCluster the worker thread may already be
// firing arrivals while this function is still posting later ones, and
// routing start() through the executor keeps every touch of controller
// and engine state on the single worker thread (see realtime_cluster.h).
#pragma once

#include <vector>

#include "autoscale/autoscaler.h"
#include "cluster/elastic_cluster.h"
#include "core/request.h"

namespace gfaas::autoscale {

struct ReplayResult {
  std::size_t completed = 0;
  SimTime makespan = 0;      // last completion, in simulated units
  double wall_seconds = 0;   // real time run_to_completion() took
};

// Schedules every request at its arrival time, starts `scaler` with the
// last arrival as horizon, runs the cluster to completion and finalizes
// the scaler. `requests` must be sorted by arrival and non-empty. CHECKs
// that nothing is left pending. Detailed results stay readable on the
// cluster (engine().completions()) and scaler (timelines, counters).
ReplayResult replay_with_autoscaler(cluster::ElasticCluster& cluster,
                                    const std::vector<core::Request>& requests,
                                    Autoscaler& scaler);

}  // namespace gfaas::autoscale
