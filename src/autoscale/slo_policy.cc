#include "autoscale/slo_policy.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/log.h"
#include "metrics/stats.h"

namespace gfaas::autoscale {

SloAwarePolicy::SloAwarePolicy(SloProbe probe, SloAwarePolicyConfig config)
    : probe_(std::move(probe)), config_(config), forecast_(config.forecast) {
  GFAAS_CHECK(probe_ != nullptr);
  GFAAS_CHECK(config_.slo > 0);
  GFAAS_CHECK(config_.deep_wait_safe > 0.0 &&
              config_.deep_wait_safe <= config_.deep_wait_danger &&
              config_.deep_wait_danger <= 1.0);
  GFAAS_CHECK(config_.danger_fraction > 0.0);
  GFAAS_CHECK(config_.max_step_up >= 1);
  GFAAS_CHECK(config_.burst_headroom >= 1.0);
  GFAAS_CHECK(config_.envelope_history > 0);
}

std::size_t SloAwarePolicy::envelope_floor(const FleetView& view) {
  inflight_window_.emplace_back(view.now, view.in_flight);
  while (!inflight_window_.empty() &&
         inflight_window_.front().first + config_.envelope_history <= view.now) {
    inflight_window_.pop_front();
  }
  std::vector<std::size_t> samples;
  samples.reserve(inflight_window_.size());
  for (const auto& [when, in_flight] : inflight_window_) {
    samples.push_back(in_flight);
  }
  const std::size_t rank =
      metrics::nearest_rank(samples.size(), config_.envelope_percentile);
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(rank), samples.end());
  const std::size_t envelope = samples[rank];
  return static_cast<std::size_t>(
      std::ceil(static_cast<double>(envelope) * config_.burst_headroom));
}

void SloAwarePolicy::bind(SimTime evaluation_interval) {
  forecast_.bind(evaluation_interval);
}

ScalingDecision SloAwarePolicy::evaluate(const FleetView& view) {
  // Forecast side first: PredictivePolicy keeps its demand window warm
  // every tick regardless of what the latency signal says. The forecast
  // sees served concurrency only (in_flight), not the queued backlog: a
  // queue/local-queue explosion during an SLO breach would otherwise
  // poison the demand histogram for a whole history window and peg the
  // fleet at max long after the breach cleared (backlog is also what the
  // fleet's own inadequacy produces — feeding it back is a positive
  // feedback loop). Division of labor: the forecast tracks the clean
  // concurrency envelope, the latency guard below owns backlog response.
  FleetView damped = view;
  damped.queue_len = 0;
  damped.local_pending = 0;
  ScalingDecision decision = forecast_.evaluate(damped);

  // Standing burst headroom: never let the plan fall below the envelope
  // floor. The floor trims removes first, then orders what is missing.
  const std::size_t floor =
      std::min(std::max(envelope_floor(view), view.min_gpus), view.max_gpus);
  const std::size_t committed = view.schedulable_gpus + view.provisioning_gpus;
  const std::size_t planned = committed + decision.add -
                              std::min(decision.remove, committed);
  if (planned < floor) {
    const std::size_t deficit = floor - planned;
    const std::size_t spare_removes = std::min(decision.remove, deficit);
    decision.remove -= spare_removes;
    decision.add += deficit - spare_removes;
  }
  decision.remove = std::min(decision.remove, config_.max_step_down);
  if (decision.remove > 0 && view.now - last_down_ < config_.down_cooldown) {
    decision.remove = 0;
  }

  const SloSignal signal = probe_();
  if (signal.samples < config_.min_samples) {
    if (decision.remove > 0) last_down_ = view.now;
    return decision;
  }

  const auto latency_danger = static_cast<SimTime>(
      static_cast<double>(config_.slo) * config_.danger_fraction);

  const bool danger = signal.deep_wait_fraction > config_.deep_wait_danger ||
                      signal.p99_latency > latency_danger ||
                      signal.shed_fraction > 0.0;
  if (danger) {
    // SLO in danger: never shrink, and order extra capacity sized by how
    // far past the danger band the deep-wait fraction runs (every
    // danger-band-width of excess asks for one more GPU).
    decision.remove = 0;
    if (committed < view.max_gpus && view.now - last_up_ >= config_.up_cooldown) {
      // Clamped at zero: danger can also be entered via sheds or the
      // end-to-end backstop with no deep-wait excess, and a negative
      // value must not reach the unsigned cast.
      const double overload =
          std::max(0.0, (signal.deep_wait_fraction - config_.deep_wait_danger) /
                            config_.deep_wait_danger);
      auto boost = static_cast<std::size_t>(std::ceil(overload));
      if (signal.shed_fraction > 0.0 || signal.p99_latency > latency_danger) {
        boost = std::max<std::size_t>(boost, 2);
      }
      boost = std::max<std::size_t>(boost, 1);
      boost = std::min(boost, config_.max_step_up);
      boost = std::min(boost, view.max_gpus - committed);
      if (boost > decision.add) {
        decision.add = boost;
        last_up_ = view.now;
      }
    }
  } else if (signal.deep_wait_fraction > config_.deep_wait_safe) {
    // Deep waits are showing but not alarming: hold what we have; only a
    // cleanly-dispatching window lets the forecast reclaim capacity.
    decision.remove = 0;
  }
  if (decision.remove > 0) last_down_ = view.now;
  return decision;
}

}  // namespace gfaas::autoscale
