// Elastic fleet controller: periodic policy evaluation, cold-start
// provisioning, and drain-based decommissioning over an ElasticCluster.
//
// The paper's scheduler assumes a fixed fleet; in the serverless setting
// it targets, the provider adds and reclaims GPUs as traffic breathes.
// The Autoscaler closes that loop against the engine seam
// (cluster::ElasticCluster), so the identical controller + policy code
// drives the discrete-event simulator (SimCluster, evaluation mode) and
// the wall-clock RealTimeExecutor (RealTimeCluster, deployment mode):
//
//   * every evaluation_interval it snapshots the cluster (queue depth,
//     idle fraction, in-flight work) into a FleetView and asks the
//     ScalingPolicy for a decision;
//   * scale-up models cold start: the GPU is "provisioning" (billed, not
//     schedulable) for cold_start, then joins the engine's idle set, the
//     cache, and the cluster-state index via ElasticCluster::add_gpu — an
//     immediately backed-up queue starts using it that instant;
//   * scale-down drains: victims are picked from the idle set warm-pool
//     aware — prefer GPUs whose resident models are all duplicated on
//     other unfenced GPUs (CacheManager::duplicate_count), so reclaiming
//     them forfeits no sole warm copy; ties go to the
//     least-frequently-dispatched (coldest) GPU. Victims are fenced (no
//     new dispatches, cached models leave the location index), finish any
//     committed work, and are removed once drained. Ids are never reused.
//
// Accounting: a powered-GPU StepTimeline (schedulable + provisioning +
// draining — what the provider pays for) and a schedulable timeline, from
// which bench_autoscale integrates GPU-seconds and cost.
//
// Threading: the Autoscaler is not internally synchronized. On a
// RealTimeCluster, call start() from an executor callback (see
// autoscale::replay_with_autoscaler) so every tick — and all controller
// state — stays on the executor's worker thread; call finalize() only
// after run_to_completion() returned.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "autoscale/policy.h"
#include "cluster/elastic_cluster.h"
#include "common/thread_annotations.h"
#include "gpu/gpu_spec.h"
#include "metrics/fleet.h"

namespace gfaas::telemetry {
class Telemetry;
}  // namespace gfaas::telemetry

namespace gfaas::autoscale {

struct AutoscalerConfig {
  // When false, start() records the initial fleet and never ticks: the
  // cluster behaves exactly as a fixed fleet (determinism guard).
  bool enabled = true;
  SimTime evaluation_interval = sec(5);
  // Provisioning delay between a scale-up decision and the GPU joining
  // the idle set (container pull + process start + runtime init).
  SimTime cold_start = sec(20);
  std::size_t min_gpus = 2;
  std::size_t max_gpus = 64;
  // Spec of dynamically provisioned GPUs (one per node, dedicated link).
  gpu::GpuSpec spec = gpu::rtx2080();
  // Chaos hook (fault-injection tests): extra provisioning delay for the
  // i-th cold start of the run (0-based), on top of `cold_start`. Lets a
  // test model a container pull stalling or an instance arriving late,
  // and assert the controller's accounting survives it. Null = none.
  std::function<SimTime(std::int64_t cold_start_index)> cold_start_delay_hook;
  // Membership-rebalancing hook, fired after every fleet-membership
  // change this controller observes (cold start completed, drain begun,
  // GPU retired or found dead). The sharded tier wires
  // shard::ShardedCluster::membership_hook here so the shard router's
  // ring weight tracks this partition's schedulable capacity. Null =
  // none. Runs on the controller's executor thread.
  std::function<void()> membership_hook;
};

struct AutoscalerCounters {
  std::int64_t ticks = 0;
  std::int64_t scale_up_decisions = 0;
  std::int64_t scale_down_decisions = 0;
  std::int64_t gpus_added = 0;    // cold starts completed
  std::int64_t gpus_retired = 0;  // drains completed
  // Cold starts begun to replace killed capacity (chaos): the fleet fell
  // below min_gpus without any drain decision, so the controller
  // re-provisions the deficit rather than serving degraded forever.
  std::int64_t gpus_replaced = 0;
};

// Warm-pool-aware drain-victim selection: greedily picks `count` victims,
// each round taking the candidate that loses the fewest sole warm copies
// (ties to the coldest), with holder counts updated after every pick so a
// batch cannot drain both copies of a model while a cheaper victim
// exists. `idle_hot_first` is the engine's frequency-ordered idle
// enumeration (most-dispatched first). Exposed for unit tests.
std::vector<GpuId> select_drain_victims(const std::vector<GpuId>& idle_hot_first,
                                        const cache::CacheManager& cache,
                                        std::size_t count);

class Autoscaler {
 public:
  // `cluster` must outlive the autoscaler and already hold the initial
  // fleet (its size should match config.min_gpus for a clean ramp).
  Autoscaler(cluster::ElasticCluster* cluster, std::unique_ptr<ScalingPolicy> policy,
             AutoscalerConfig config);
  ~Autoscaler();

  // Attaches the live-telemetry seam: tick/decision/membership counters
  // and a pull probe for the powered / schedulable / provisioning /
  // draining fleet breakdown. Nullable; wire before start().
  void set_telemetry(telemetry::Telemetry* telemetry);

  // Schedules evaluation ticks. Ticks re-arm while time is before
  // `horizon` (the last trace arrival) or work/cold-starts/drains are
  // still pending, so the executor's event queue drains naturally once
  // the run is over.
  void start(SimTime horizon);

  // After the executor drains: retires any still-fenced GPUs whose work
  // completed after the final tick, closing the accounting.
  void finalize();

  const ScalingPolicy& policy() const { return *policy_; }
  const AutoscalerConfig& config() const { return config_; }
  const AutoscalerCounters& counters() const {
    serial_.AssertHeld();
    return counters_;
  }

  // Powered = schedulable + provisioning + draining (billed capacity).
  const metrics::StepTimeline& powered_timeline() const {
    serial_.AssertHeld();
    return powered_;
  }
  const metrics::StepTimeline& schedulable_timeline() const {
    serial_.AssertHeld();
    return schedulable_;
  }
  double gpu_seconds(SimTime end) const {
    serial_.AssertHeld();
    return powered_.value_seconds(end);
  }

  std::size_t provisioning_count() const {
    serial_.AssertHeld();
    return provisioning_;
  }
  std::size_t draining_count() const {
    serial_.AssertHeld();
    return draining_.size();
  }

 private:
  void schedule_tick() REQUIRES(serial_);
  void tick() REQUIRES(serial_);
  FleetView snapshot() const REQUIRES(serial_);
  void apply(const ScalingDecision& decision) REQUIRES(serial_);
  void begin_cold_start() REQUIRES(serial_);
  void begin_drain(std::size_t count) REQUIRES(serial_);
  // Removes fenced GPUs whose committed work has finished.
  void reap_drained() REQUIRES(serial_);
  void record_fleet() REQUIRES(serial_);

  cluster::ElasticCluster* cluster_;
  std::unique_ptr<ScalingPolicy> policy_;
  AutoscalerConfig config_;
  // Telemetry instrument handles, resolved once at set_telemetry();
  // null when detached.
  struct TelemetryHandles;
  std::unique_ptr<TelemetryHandles> tel_;

  // Thread-affinity capability: the controller is single-threaded by
  // contract (see "Threading" above) — ticks, cold-start completions and
  // drain reaps all run on the executor worker thread, and post-run reads
  // happen after run_to_completion()'s join.
  common::ExecutorAffinity serial_;

  bool started_ GUARDED_BY(serial_) = false;
  SimTime horizon_ GUARDED_BY(serial_) = 0;
  std::size_t provisioning_ GUARDED_BY(serial_) = 0;
  // Feeds cold_start_delay_hook.
  std::int64_t cold_starts_begun_ GUARDED_BY(serial_) = 0;
  std::vector<GpuId> draining_ GUARDED_BY(serial_);

  metrics::StepTimeline powered_ GUARDED_BY(serial_);
  metrics::StepTimeline schedulable_ GUARDED_BY(serial_);
  AutoscalerCounters counters_ GUARDED_BY(serial_);
};

}  // namespace gfaas::autoscale
