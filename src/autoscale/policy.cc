#include "autoscale/policy.h"

#include <algorithm>
#include <cmath>

namespace gfaas::autoscale {

ScalingDecision ReactivePolicy::evaluate(const FleetView& view) {
  ScalingDecision decision;
  const std::size_t committed = view.schedulable_gpus + view.provisioning_gpus;

  // --- scale up: queued work per committed GPU above threshold ---
  const double queue_per_gpu = static_cast<double>(view.queue_len) /
                               static_cast<double>(std::max<std::size_t>(1, committed));
  if (queue_per_gpu > config_.queue_per_gpu_up) {
    high_idle_since_ = -1;  // pressure interrupts any idle stretch
    if (committed < view.max_gpus && view.now - last_up_ >= config_.up_cooldown) {
      // Size the fleet so the queue spreads back down to the threshold;
      // the pressure test above guarantees want > committed.
      const auto want = static_cast<std::size_t>(std::ceil(
          static_cast<double>(view.queue_len) / config_.queue_per_gpu_up));
      std::size_t add = want - committed;
      add = std::min(add, config_.max_step_up);
      add = std::min(add, view.max_gpus - committed);
      decision.add = add;
      last_up_ = view.now;
    }
    return decision;
  }

  // --- scale down: sustained high idle fraction with an empty queue ---
  const double idle_fraction =
      view.schedulable_gpus > 0
          ? static_cast<double>(view.idle_gpus) /
                static_cast<double>(view.schedulable_gpus)
          : 0.0;
  const bool surplus = view.queue_len == 0 && view.provisioning_gpus == 0 &&
                       idle_fraction >= config_.idle_fraction_down;
  if (!surplus) {
    high_idle_since_ = -1;
    return decision;
  }
  if (high_idle_since_ < 0) high_idle_since_ = view.now;
  if (view.now - high_idle_since_ < config_.down_stability) return decision;
  if (view.now - last_down_ < config_.down_cooldown) return decision;
  if (view.schedulable_gpus <= view.min_gpus) return decision;

  // Reclaim at most half the idle set per decision so a single quiet tick
  // cannot gut the fleet.
  std::size_t remove = std::max<std::size_t>(1, view.idle_gpus / 2);
  remove = std::min(remove, config_.max_step_down);
  remove = std::min(remove, view.schedulable_gpus - view.min_gpus);
  if (remove > 0) {
    decision.remove = remove;
    last_down_ = view.now;
  }
  return decision;
}

ScalingDecision KeepAlivePolicy::evaluate(const FleetView& view) {
  window_.emplace_back(view.now, view.demand());
  while (!window_.empty() && window_.front().first + config_.keep_alive < view.now) {
    window_.pop_front();
  }
  std::size_t peak = 0;
  for (const auto& [when, demand] : window_) peak = std::max(peak, demand);

  auto target = static_cast<std::size_t>(
      std::ceil(static_cast<double>(peak) * config_.headroom));
  target = std::max(target, view.min_gpus);
  target = std::min(target, view.max_gpus);

  ScalingDecision decision;
  const std::size_t committed = view.schedulable_gpus + view.provisioning_gpus;
  if (target > committed) {
    decision.add = target - committed;
  } else if (committed > target) {
    // Only idle GPUs are reclaimable; busy surplus waits for a later tick.
    decision.remove = std::min(committed - target, view.idle_gpus);
  }
  return decision;
}

}  // namespace gfaas::autoscale
