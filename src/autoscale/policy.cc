#include "autoscale/policy.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/log.h"
#include "metrics/stats.h"

namespace gfaas::autoscale {

namespace {

// Shared trailing-window maintenance: append the tick's sample, expire
// samples the moment they are exactly `span` old (a sample at t covers
// [t, t + span), so the boundary sample must NOT survive — retaining it
// would stretch every window by one evaluation interval).
void push_and_expire(std::deque<std::pair<SimTime, std::size_t>>* window,
                     SimTime now, std::size_t sample, SimTime span) {
  window->emplace_back(now, sample);
  while (!window->empty() && window->front().first + span <= now) {
    window->pop_front();
  }
}

// Shared tail of the windowed (target-tracking) policies: clamp the
// capacity target into the fleet's band and diff it against committed
// capacity.
ScalingDecision decide(std::size_t target, const FleetView& view) {
  target = std::max(target, view.min_gpus);
  target = std::min(target, view.max_gpus);
  ScalingDecision decision;
  const std::size_t committed = view.schedulable_gpus + view.provisioning_gpus;
  if (target > committed) {
    decision.add = target - committed;
  } else if (committed > target) {
    // Only idle GPUs are reclaimable; busy surplus waits for a later tick.
    decision.remove = std::min(committed - target, view.idle_gpus);
  }
  return decision;
}

}  // namespace

ScalingDecision ReactivePolicy::evaluate(const FleetView& view) {
  ScalingDecision decision;
  const std::size_t committed = view.schedulable_gpus + view.provisioning_gpus;

  // --- scale up: queued work per committed GPU above threshold ---
  const double queue_per_gpu = static_cast<double>(view.queue_len) /
                               static_cast<double>(std::max<std::size_t>(1, committed));
  if (queue_per_gpu > config_.queue_per_gpu_up) {
    high_idle_since_ = -1;  // pressure interrupts any idle stretch
    if (committed < view.max_gpus && view.now - last_up_ >= config_.up_cooldown) {
      // Size the fleet so the queue spreads back down to the threshold;
      // the pressure test above guarantees want > committed.
      const auto want = static_cast<std::size_t>(std::ceil(
          static_cast<double>(view.queue_len) / config_.queue_per_gpu_up));
      std::size_t add = want - committed;
      add = std::min(add, config_.max_step_up);
      add = std::min(add, view.max_gpus - committed);
      decision.add = add;
      last_up_ = view.now;
    }
    return decision;
  }

  // --- scale down: sustained high idle fraction with an empty queue ---
  const double idle_fraction =
      view.schedulable_gpus > 0
          ? static_cast<double>(view.idle_gpus) /
                static_cast<double>(view.schedulable_gpus)
          : 0.0;
  const bool surplus = view.queue_len == 0 && view.provisioning_gpus == 0 &&
                       idle_fraction >= config_.idle_fraction_down;
  if (!surplus) {
    high_idle_since_ = -1;
    return decision;
  }
  if (high_idle_since_ < 0) high_idle_since_ = view.now;
  if (view.now - high_idle_since_ < config_.down_stability) return decision;
  if (view.now - last_down_ < config_.down_cooldown) return decision;
  if (view.schedulable_gpus <= view.min_gpus) return decision;

  // Reclaim at most half the idle set per decision so a single quiet tick
  // cannot gut the fleet.
  std::size_t remove = std::max<std::size_t>(1, view.idle_gpus / 2);
  remove = std::min(remove, config_.max_step_down);
  remove = std::min(remove, view.schedulable_gpus - view.min_gpus);
  if (remove > 0) {
    decision.remove = remove;
    last_down_ = view.now;
    // Restart the stability window: the next shrink must re-establish
    // down_stability of sustained idleness against the smaller fleet,
    // not ride the same stretch down every down_cooldown.
    high_idle_since_ = view.now;
  }
  return decision;
}

void KeepAlivePolicy::bind(SimTime evaluation_interval) {
  // Strict: with the half-open expiry a window of exactly one interval
  // still drops the previous sample on every tick.
  GFAAS_CHECK(config_.keep_alive > evaluation_interval)
      << "keep_alive (" << config_.keep_alive
      << ") must exceed the evaluation interval (" << evaluation_interval
      << "), or the trailing window degenerates to a single sample";
}

ScalingDecision KeepAlivePolicy::evaluate(const FleetView& view) {
  push_and_expire(&window_, view.now, view.demand(), config_.keep_alive);
  std::size_t peak = 0;
  for (const auto& [when, demand] : window_) peak = std::max(peak, demand);

  return decide(static_cast<std::size_t>(
                    std::ceil(static_cast<double>(peak) * config_.headroom)),
                view);
}

PredictivePolicy::PredictivePolicy(PredictivePolicyConfig config) : config_(config) {
  GFAAS_CHECK(config_.history > 0);
  GFAAS_CHECK(config_.target_percentile >= 0.0 && config_.target_percentile <= 1.0);
  GFAAS_CHECK(config_.lead_time >= 0);
  GFAAS_CHECK(config_.trend_samples >= 2);
  GFAAS_CHECK(config_.headroom > 0.0);
  GFAAS_CHECK(config_.target_hold >= 0);
}

void PredictivePolicy::bind(SimTime evaluation_interval) {
  // Strict, as in KeepAlivePolicy::bind: an exactly-one-interval window
  // holds only the current sample under the half-open expiry.
  GFAAS_CHECK(config_.history > evaluation_interval)
      << "history (" << config_.history
      << ") must exceed the evaluation interval (" << evaluation_interval
      << "), or the demand histogram degenerates to a single sample";
}

ScalingDecision PredictivePolicy::evaluate(const FleetView& view) {
  push_and_expire(&window_, view.now, view.demand(), config_.history);

  // Histogram side: the target percentile of the windowed demand
  // distribution. A short burst contributes a few high samples that the
  // percentile ignores; a recurring plateau dominates it.
  std::vector<std::size_t> demands;
  demands.reserve(window_.size());
  for (const auto& [when, demand] : window_) demands.push_back(demand);
  std::sort(demands.begin(), demands.end());
  // Nearest-rank percentile: the smallest sample with at least
  // target_percentile of the distribution at or below it.
  const double percentile_demand = static_cast<double>(
      demands[metrics::nearest_rank(demands.size(), config_.target_percentile)]);

  // Forecast side: average slope over the most recent trend_samples,
  // projected lead_time ahead. On a rising ramp this orders capacity one
  // cold start before the demand materializes; on a falling edge it never
  // drags the target below zero.
  double projected = static_cast<double>(window_.back().second);
  if (window_.size() >= 2) {
    const std::size_t tail = std::min(config_.trend_samples, window_.size());
    const auto& oldest = window_[window_.size() - tail];
    const auto& newest = window_.back();
    if (newest.first > oldest.first) {
      const double slope =
          (static_cast<double>(newest.second) - static_cast<double>(oldest.second)) /
          static_cast<double>(newest.first - oldest.first);
      projected = std::max(
          0.0, static_cast<double>(newest.second) +
                   slope * static_cast<double>(config_.lead_time));
    }
  }

  auto target = static_cast<std::size_t>(std::ceil(
      std::max(percentile_demand, projected) * config_.headroom));

  // Hold: past predictions keep acting as a capacity floor for
  // target_hold, so one quiet tick between bursts cannot flap GPUs out
  // only to cold-start them straight back.
  if (config_.target_hold > 0) {
    push_and_expire(&held_targets_, view.now, target, config_.target_hold);
    for (const auto& [when, held] : held_targets_) target = std::max(target, held);
  }

  return decide(target, view);
}

}  // namespace gfaas::autoscale
