// Ablation F: batch-size sensitivity. The paper fixes batch 32 (Table I
// profiles); the schedulers consume the batch-latency regression of
// §IV-A, so other batch sizes work unchanged. This bench sweeps the
// request batch size under LALBO3 and reports latency and effective
// throughput (images/second), exposing the batch-amortization curve the
// paper's §II-C GPU-parallelism argument predicts.
#include <cstdio>

#include "cluster/experiment.h"
#include "metrics/reporter.h"
#include "trace/workload.h"

using namespace gfaas;

int main() {
  std::printf("=== Ablation: batch size (LALBO3, working set 25) ===\n");
  metrics::Table table({"Batch", "AvgLatency(s)", "MissRatio", "Images/s",
                        "SM-Util"});
  for (std::int64_t batch : {1, 4, 8, 16, 32, 64}) {
    trace::WorkloadConfig wconfig;
    wconfig.working_set_size = 25;
    wconfig.batch_size = batch;
    auto workload = trace::build_standard_workload(wconfig);
    if (!workload.ok()) return 1;
    cluster::ClusterConfig config;
    config.policy = core::PolicyName::kLalbO3;
    const auto r = cluster::run_experiment(config, *workload);
    const double images =
        static_cast<double>(r.requests) * static_cast<double>(batch);
    table.add_row({std::to_string(batch), metrics::Table::fmt(r.avg_latency_s),
                   metrics::Table::fmt_percent(r.miss_ratio),
                   metrics::Table::fmt(images / r.makespan_s),
                   metrics::Table::fmt_percent(r.sm_utilization)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expectation: per-request latency grows sub-linearly with batch size "
      "(batch-independent launch cost amortizes), so images/s rises steeply "
      "with the batch — the paper's motivation for batching on GPUs.\n");
  return 0;
}
