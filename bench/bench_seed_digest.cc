// Bit-identity digest of the seed experiment grid.
//
// Runs the paper's standard grid (working set 15/25/35 x LB/LALB/LALBO3)
// and prints every ExperimentResult metric in hexfloat (exact) plus an
// FNV-1a hash over the full completion-record stream of each cell.
// Scheduler-hot-path refactors must leave this output byte-identical:
//
//   ./build/bench_seed_digest > before.txt
//   <refactor, rebuild>
//   ./build/bench_seed_digest | diff before.txt -
//
// --via-gateway routes every grid request through the serving layer
// (gateway::Gateway with an unbounded admission window and no SLO
// stamping) instead of submitting straight into the engine. The output
// must STILL be byte-identical to the direct run — the proof that the
// Gateway refactor of the ingestion path is behavior-preserving:
//
//   ./build/bench_seed_digest > direct.txt
//   ./build/bench_seed_digest --via-gateway | diff direct.txt -
//
// --via-gateway --batch additionally funnels every same-arrival burst
// through Gateway::submit_batch (the shape the concurrent ingestion
// path produces), proving bulk admission makes exactly the same
// decisions as per-request admission:
//
//   ./build/bench_seed_digest --via-gateway --batch | diff direct.txt -
//
// --telemetry (requires --via-gateway) attaches a live telemetry::
// Telemetry to every per-cell gateway. The output must STILL be
// byte-identical — the proof that the instrumentation seam only
// observes (no RNG consumption, no event reordering):
//
//   ./build/bench_seed_digest --via-gateway --telemetry | diff direct.txt -
//
// --sharded=N runs every grid cell through the sharded serving tier
// (shard::run_sharded_experiment: model-affinity routing, epoch-barrier
// replay, cross-shard work stealing) instead of the direct runner. With
// N=1 the output must STILL be byte-identical to the direct run — the
// proof that the sharding machinery (arrival-lane injection, epoch
// barriers, the steal balancer wiring) adds nothing and reorders
// nothing when there is only one shard:
//
//   ./build/bench_seed_digest --sharded=1 | diff direct.txt -
//
// Stolen requests surface in the digest via the steal_hops bits of the
// flags word, so any cross-shard move is digest-visible (and N=1, which
// never steals, contributes zero).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "common/log.h"
#include "gateway/gateway.h"
#include "shard/experiment.h"
#include "telemetry/telemetry.h"

namespace gfaas::bench {
namespace {

class Fnv1a {
 public:
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xff;
      hash_ *= 0x100000001b3ull;
    }
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

std::uint64_t completion_digest(const std::vector<core::CompletionRecord>& records) {
  Fnv1a fnv;
  for (const auto& r : records) {
    fnv.add(static_cast<std::uint64_t>(r.id.value()));
    fnv.add(static_cast<std::uint64_t>(r.gpu.value()));
    fnv.add(static_cast<std::uint64_t>(r.arrival));
    fnv.add(static_cast<std::uint64_t>(r.dispatched));
    fnv.add(static_cast<std::uint64_t>(r.completed));
    fnv.add((r.cache_hit ? 1u : 0u) | (r.false_miss ? 2u : 0u) |
            (r.via_local_queue ? 4u : 0u) |
            (static_cast<std::uint64_t>(r.steal_hops) << 3));
  }
  return fnv.value();
}

// Ingestion seam for --via-gateway: every request enters through a
// Gateway whose admission can never interfere (unbounded window, no SLO
// stamping), so any digest drift would be a real behavior change in the
// serving path.
cluster::IngestFactory gateway_ingest(bool with_telemetry) {
  return [with_telemetry](cluster::ElasticCluster& cluster) {
    gateway::GatewayConfig config;
    config.max_in_flight = std::numeric_limits<std::size_t>::max();
    config.default_slo = 0;  // no deadline stamping
    auto gw = std::make_shared<gateway::Gateway>(&cluster, config);
    // The telemetry handle's lifetime is tied to the ingest closure
    // (which outlives the run); the digest must not notice it exists.
    std::shared_ptr<telemetry::Telemetry> tel;
    if (with_telemetry) {
      tel = std::make_shared<telemetry::Telemetry>();
      gw->set_telemetry(tel.get());
    }
    return [gw, tel](core::Request request) {
      gw->submit(std::move(request), [](const gateway::GatewayResult& result) {
        GFAAS_CHECK(result.disposition == gateway::Disposition::kCompleted);
      });
    };
  };
}

// Bulk twin: same gateway, but each same-arrival burst enters through
// one submit_batch call (the memoized-admission path under test).
cluster::BatchIngestFactory gateway_batch_ingest(bool with_telemetry) {
  return [with_telemetry](cluster::ElasticCluster& cluster) {
    gateway::GatewayConfig config;
    config.max_in_flight = std::numeric_limits<std::size_t>::max();
    config.default_slo = 0;  // no deadline stamping
    auto gw = std::make_shared<gateway::Gateway>(&cluster, config);
    std::shared_ptr<telemetry::Telemetry> tel;
    if (with_telemetry) {
      tel = std::make_shared<telemetry::Telemetry>();
      gw->set_telemetry(tel.get());
    }
    return [gw, tel](std::vector<core::Request> burst) {
      std::vector<gateway::Submission> cells;
      cells.reserve(burst.size());
      for (core::Request& request : burst) {
        cells.push_back(gateway::Submission{
            std::move(request), [](const gateway::GatewayResult& result) {
              GFAAS_CHECK(result.disposition == gateway::Disposition::kCompleted);
            }});
      }
      gw->submit_batch(std::move(cells));
    };
  };
}

int run(bool via_gateway, bool batch, bool with_telemetry, int sharded) {
  GridOptions options;
  for (std::size_t ws : options.working_sets) {
    trace::WorkloadConfig wconfig;
    wconfig.working_set_size = ws;
    wconfig.seed = options.workload_seed;
    auto workload = trace::build_standard_workload(wconfig, options.trace_seed);
    GFAAS_CHECK(workload.ok()) << workload.status().to_string();
    for (core::PolicyName policy : options.policies) {
      cluster::ClusterConfig config;
      config.policy = policy;
      config.o3_limit = options.o3_limit;
      config.cache_policy = options.cache_policy;
      std::vector<core::CompletionRecord> records;
      const auto r =
          sharded > 0
              ? shard::run_sharded_experiment(config,
                                              static_cast<std::size_t>(sharded),
                                              *workload, shard::ShardedOptions{},
                                              &records)
                    .result
          : batch ? cluster::run_experiment_batched(config, *workload, &records,
                                                  gateway_batch_ingest(with_telemetry))
                : cluster::run_experiment(config, *workload, &records,
                                          via_gateway ? gateway_ingest(with_telemetry)
                                                      : cluster::IngestFactory());
      std::printf("ws=%zu policy=%s requests=%zu\n", ws, r.policy.c_str(), r.requests);
      std::printf("  avg_latency_s=%a variance=%a p50=%a p95=%a p99=%a\n",
                  r.avg_latency_s, r.latency_variance_s2, r.p50_latency_s,
                  r.p95_latency_s, r.p99_latency_s);
      std::printf("  miss=%a false_miss=%a sm_util=%a dup=%a\n", r.miss_ratio,
                  r.false_miss_ratio, r.sm_utilization, r.avg_top_duplicates);
      std::printf("  evictions=%lld loads=%lld makespan_s=%a\n",
                  static_cast<long long>(r.evictions),
                  static_cast<long long>(r.model_loads), r.makespan_s);
      std::printf("  completion_digest=%016llx\n",
                  static_cast<unsigned long long>(completion_digest(records)));
    }
  }
  return 0;
}

}  // namespace
}  // namespace gfaas::bench

int main(int argc, char** argv) {
  bool via_gateway = false;
  bool batch = false;
  bool with_telemetry = false;
  int sharded = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--via-gateway") == 0) {
      via_gateway = true;
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      batch = true;
    } else if (std::strcmp(argv[i], "--telemetry") == 0) {
      with_telemetry = true;
    } else if (std::strncmp(argv[i], "--sharded=", 10) == 0) {
      sharded = std::atoi(argv[i] + 10);
      if (sharded < 1) {
        std::fprintf(stderr, "--sharded needs a positive shard count\n");
        return 1;
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  if (batch && !via_gateway) {
    std::fprintf(stderr, "--batch requires --via-gateway\n");
    return 1;
  }
  if (with_telemetry && !via_gateway) {
    std::fprintf(stderr, "--telemetry requires --via-gateway\n");
    return 1;
  }
  if (sharded > 0 && (via_gateway || batch || with_telemetry)) {
    std::fprintf(stderr, "--sharded is exclusive with the gateway legs\n");
    return 1;
  }
  return gfaas::bench::run(via_gateway, batch, with_telemetry, sharded);
}
