// Figure 4a reproduction: average function latency of LB / LALB / LALBO3
// across working set sizes 15 / 25 / 35 (12 GPUs, 6 min x 325 req/min).
//
// Paper reference points: LALB reduces LB's average latency by 97.74%
// (WS 15), 93.33% (WS 25), 79.43% (WS 35); LALBO3 by ~96.93% at WS 35.
#include <cstdio>

#include "bench_common.h"
#include "metrics/reporter.h"

using namespace gfaas;

int main() {
  const auto grid = bench::run_grid();

  std::printf("=== Fig 4a: Average Function Latency (s) ===\n");
  metrics::Table table({"WS", "LB", "LALB", "LALBO3", "LALB vs LB", "LALBO3 vs LB"});
  for (std::size_t ws : {15u, 25u, 35u}) {
    table.add_row(
        {std::to_string(ws),
         metrics::Table::fmt(bench::cell(grid, ws, core::PolicyName::kLb).avg_latency_s),
         metrics::Table::fmt(
             bench::cell(grid, ws, core::PolicyName::kLalb).avg_latency_s),
         metrics::Table::fmt(
             bench::cell(grid, ws, core::PolicyName::kLalbO3).avg_latency_s),
         "-" + metrics::Table::fmt_percent(bench::reduction_vs_lb(
                   grid, ws, core::PolicyName::kLalb, bench::metric_latency)),
         "-" + metrics::Table::fmt_percent(bench::reduction_vs_lb(
                   grid, ws, core::PolicyName::kLalbO3, bench::metric_latency))});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper: LALB -97.74%% (WS15), -93.33%% (WS25), -79.43%% (WS35); "
      "LALBO3 -96.93%% (WS35).\n");
  return 0;
}
