// Figure 7 reproduction: sensitivity of the LALBO3 scheduler to the O3
// starvation limit. Working set 35; limit swept 0..45 (limit 0 == LALB).
// Metrics: average function latency, cache miss ratio, and the latency
// variance the paper highlights (the O3 limit of 45 reduces the variance
// of limit 0 by 95.93%).
#include <cstdio>

#include "cluster/experiment.h"
#include "metrics/reporter.h"
#include "trace/workload.h"

using namespace gfaas;

int main() {
  trace::WorkloadConfig wconfig;
  wconfig.working_set_size = 35;
  auto workload = trace::build_standard_workload(wconfig);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n", workload.status().to_string().c_str());
    return 1;
  }

  std::printf("=== Fig 7: O3 limit sensitivity (working set 35) ===\n");
  metrics::Table table(
      {"O3 limit", "AvgLatency(s)", "MissRatio", "LatencyVariance(s^2)"});
  double latency_at_0 = 0, miss_at_0 = 0, var_at_0 = 0;
  double latency_at_45 = 0, miss_at_45 = 0, var_at_45 = 0;
  for (int limit = 0; limit <= 45; limit += 5) {
    cluster::ClusterConfig config;
    config.policy =
        limit == 0 ? core::PolicyName::kLalb : core::PolicyName::kLalbO3;
    config.o3_limit = limit;
    const auto r = cluster::run_experiment(config, *workload);
    table.add_row({std::to_string(limit), metrics::Table::fmt(r.avg_latency_s),
                   metrics::Table::fmt_percent(r.miss_ratio),
                   metrics::Table::fmt(r.latency_variance_s2, 3)});
    if (limit == 0) {
      latency_at_0 = r.avg_latency_s;
      miss_at_0 = r.miss_ratio;
      var_at_0 = r.latency_variance_s2;
    }
    if (limit == 45) {
      latency_at_45 = r.avg_latency_s;
      miss_at_45 = r.miss_ratio;
      var_at_45 = r.latency_variance_s2;
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  auto reduction = [](double base, double v) {
    return base > 0 ? (base - v) / base * 100.0 : 0.0;
  };
  std::printf(
      "Measured: limit 45 vs 0 -> latency -%.1f%%, miss ratio -%.1f%%, "
      "variance -%.1f%%\n",
      reduction(latency_at_0, latency_at_45), reduction(miss_at_0, miss_at_45),
      reduction(var_at_0, var_at_45));
  std::printf(
      "Paper:    limit 45 vs 0 -> latency -85.1%%, miss ratio -45.83%%, "
      "variance -95.93%%\n");
  return 0;
}
