// Figure 6 reproduction: time-averaged number of duplicates of the most
// popular model across the 12 GPUs, per scheduler and working set.
//
// Paper reference points: LALB reduces LB's duplicates by 48.96% (WS 15)
// and 35.32% (WS 35); LALBO3 by 49.48% (WS 15) and 33.47% (WS 35); the
// count can never exceed the GPU count (12).
#include <cstdio>

#include "bench_common.h"
#include "metrics/reporter.h"

using namespace gfaas;

int main() {
  const auto grid = bench::run_grid();

  std::printf("=== Fig 6: Average Duplicates of the Top-1 Model ===\n");
  metrics::Table table({"WS", "LB", "LALB", "LALBO3", "LALB vs LB", "LALBO3 vs LB"});
  for (std::size_t ws : {15u, 25u, 35u}) {
    table.add_row(
        {std::to_string(ws),
         metrics::Table::fmt(
             bench::cell(grid, ws, core::PolicyName::kLb).avg_top_duplicates),
         metrics::Table::fmt(
             bench::cell(grid, ws, core::PolicyName::kLalb).avg_top_duplicates),
         metrics::Table::fmt(
             bench::cell(grid, ws, core::PolicyName::kLalbO3).avg_top_duplicates),
         "-" + metrics::Table::fmt_percent(bench::reduction_vs_lb(
                   grid, ws, core::PolicyName::kLalb, bench::metric_duplicates)),
         "-" + metrics::Table::fmt_percent(bench::reduction_vs_lb(
                   grid, ws, core::PolicyName::kLalbO3, bench::metric_duplicates))});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper: LALB -48.96%% (WS15), -35.32%% (WS35); LALBO3 -49.48%% (WS15), "
      "-33.47%% (WS35); bounded by 12 GPUs.\n");
  return 0;
}
