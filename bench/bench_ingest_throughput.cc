// Concurrent ingestion throughput bench (the ISSUE 7 acceptance gate).
//
// Drives a RealTimeCluster with 1/2/4/8 producer threads in two modes:
//
//   baseline  one executor.schedule_after(0, ...) per submission — the
//             serialized ingestion path exactly as it existed before this
//             change (post() was an alias for schedule_after(0)): every
//             producer fights for the executor mutex, pays two ordered-map
//             inserts plus a heap-allocated closure per request, and the
//             worker pays a lock cycle and a keyed erase per fire;
//   mpsc      ConcurrentIngress — lock-free ring enqueue, one armed drain
//             per burst, bulk admission through Gateway::submit_batch.
//
// Reported per run: sustained requests/s (wall time from the moment the
// producers start until a FIFO sentinel confirms the worker admitted the
// whole load), p50/p99 producer-side enqueue latency, and heap
// allocations per request (global operator new counter).
//
// Acceptance (non-zero exit on miss):
//   * with 8 producers, mpsc sustains >= --floor (default 3.0) x the
//     baseline req/s at equal shed rates (both zero here: unbounded
//     admission window, no SLO stamping);
//   * mpsc allocations/request <= 1.10 x baseline (the fast path must
//     not regress the allocation diet).
//
// The warmup parks multi-second model loads on every GPU (time_scale 1)
// and fills the admission window exactly, so the measured window
// exercises the saturated-ingestion regime: every submission pays the
// window check plus the shed-vs-queue finish-time estimate — a fleet
// scan the batched path memoizes once per burst — and parks in the
// pending queue. Engine state is frozen for the whole window, so the
// measured cost is the ingestion path itself, not scheduling work.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <limits>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "cluster/realtime_cluster.h"
#include "common/log.h"
#include "concurrent/callback_executor.h"
#include "gateway/ingress.h"
#include "models/zoo.h"
#include "shard/ingress_router.h"
#include "shard/router.h"
#include "telemetry/telemetry.h"

// ---------------------------------------------------------------------------
// Global allocation counter (the satellite "counting guard"): every heap
// allocation in the process bumps one relaxed atomic.
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

// The replacement operators below back global new with malloc, so free()
// in the matching deletes is correct — but GCC's -O2 call-site analysis
// models `new` as its builtin allocator and flags the inlined free() as
// mismatched. False positive; scoped off for this TU.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace gfaas::bench {
namespace {

using Clock = std::chrono::steady_clock;

struct RunResult {
  double rps = 0;
  double enq_p50_us = 0;
  double enq_p99_us = 0;
  double allocs_per_req = 0;
  std::int64_t shed = 0;
  std::int64_t submitted = 0;
  // Per-shard routed counts (sharded row only).
  std::vector<std::uint64_t> routed;
  // Final telemetry state, dumped to stderr on acceptance failure.
  gfaas::telemetry::MetricsSnapshot snapshot;
};

struct Options {
  std::int64_t requests = 40000;
  std::vector<int> producer_counts = {1, 2, 4, 8};
  int gpus = 8;
  std::size_t capacity = 4096;
  double floor = 3.0;
  int models = 3;
  // Sharded-ingestion row: shard count and the JSON result sink.
  int shards = 4;
  std::string json = "BENCH_shard.json";
};

core::Request make_request(std::int64_t id, std::int64_t model) {
  core::Request request;
  request.id = RequestId(id);
  request.function = FunctionId(id);
  request.model = ModelId(model);
  request.batch = 32;
  request.function_name = "f";
  return request;
}

double percentile_us(std::vector<std::int64_t>& ns, double q) {
  if (ns.empty()) return 0;
  std::sort(ns.begin(), ns.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(ns.size() - 1) + 0.5);
  return static_cast<double>(ns[rank]) / 1000.0;
}

// One measured run. The cluster is fresh per run so neither mode inherits
// the other's warmed state. Teardown intentionally drops unfinished
// engine work: the bench measures ingestion, not completion.
RunResult run_once(const Options& options, int producers, bool mpsc) {
  const std::int64_t total = options.requests;
  cluster::ClusterConfig config;
  config.nodes = 2;
  config.gpus_per_node = (options.gpus + 1) / 2;
  config.policy = core::PolicyName::kLb;
  models::ModelRegistry registry;
  const auto& catalog = models::table1_catalog();
  GFAAS_CHECK(options.models <= static_cast<int>(catalog.size()));
  for (int m = 0; m < options.models; ++m) {
    GFAAS_CHECK(registry.register_model(catalog[static_cast<std::size_t>(m)]).ok());
  }

  auto cluster = std::make_unique<cluster::RealTimeCluster>(
      config, registry, /*time_scale=*/1.0);
  // Saturated admission window: the warmup fills max_in_flight exactly,
  // so every measured submission faces the shed-vs-queue decision — the
  // regime the batched path amortizes (one window check + one fleet-scan
  // finish-time estimate per burst instead of per request). With no
  // deadline stamped (default_slo = 0) the decision is always "queue",
  // so shed rates are identically zero in both modes and engine state
  // stays frozen across the measure window.
  const int warm_count = 2 * options.gpus;
  gateway::GatewayConfig gconfig;
  gconfig.max_in_flight = static_cast<std::size_t>(warm_count);
  gconfig.max_pending = std::numeric_limits<std::size_t>::max();
  gconfig.default_slo = 0;  // no deadlines: nothing sheds or expires
  auto gateway = std::make_unique<gateway::Gateway>(cluster.get(), gconfig);
  auto callbacks = std::make_unique<concurrent::CallbackExecutor>();
  // Telemetry rides along in BOTH modes (symmetric cost), so the bench
  // measures the instrumented ingestion path — the configuration the
  // overhead bench certifies — and the failure dump has live counters.
  auto telemetry = std::make_unique<telemetry::Telemetry>();
  gateway->set_telemetry(telemetry.get());
  std::unique_ptr<gateway::ConcurrentIngress> ingress;
  if (mpsc) {
    gateway->set_callback_executor(callbacks.get());
    ingress = std::make_unique<gateway::ConcurrentIngress>(
        gateway.get(), &cluster->executor(), options.capacity);
    ingress->set_telemetry(telemetry.get());
  }
  sim::Executor& executor = cluster->executor();
  gateway::ResultCallback on_done = [](const gateway::GatewayResult& result) {
    GFAAS_CHECK(result.disposition == gateway::Disposition::kCompleted);
  };

  // Runs fn on the worker AFTER everything posted before it (FIFO), and
  // returns its result to this thread.
  auto on_worker = [&executor](auto fn) {
    using R = decltype(fn());
    std::promise<R> promise;
    auto future = promise.get_future();
    executor.post([&promise, &fn] { promise.set_value(fn()); });
    return future.get();
  };

  // Warmup: park multi-second model loads on every GPU (2x over-subscribed
  // so no GPU slips through idle) and fill the admission window.
  for (int g = 0; g < warm_count; ++g) {
    core::Request warm = make_request(total + g, g % options.models);
    executor.post([&gateway, warm = std::move(warm), on_done]() mutable {
      gateway->submit(std::move(warm), on_done);
    });
  }
  const std::size_t idle = on_worker(
      [&cluster] { return cluster->engine().idle_gpu_count(); });
  GFAAS_CHECK(idle == 0) << idle << " GPUs still idle after warmup";
  const std::int64_t admitted = on_worker(
      [&gateway] { return gateway->counters().admitted; });
  GFAAS_CHECK(admitted == warm_count)
      << "admission window not saturated: " << admitted << "/" << warm_count;

  // ---- measured window ----
  const std::int64_t per_producer = total / producers;
  const std::int64_t measured = per_producer * producers;
  std::vector<std::vector<std::int64_t>> enqueue_ns(
      static_cast<std::size_t>(producers));
  std::atomic<bool> start{false};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(producers));
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      auto& samples = enqueue_ns[static_cast<std::size_t>(p)];
      samples.reserve(static_cast<std::size_t>(per_producer));
      while (!start.load()) std::this_thread::yield();
      for (std::int64_t i = 0; i < per_producer; ++i) {
        const std::int64_t id = static_cast<std::int64_t>(p) * per_producer + i;
        core::Request request = make_request(id, id % options.models);
        const auto t0 = Clock::now();
        if (mpsc) {
          gateway::Submission cell{std::move(request), on_done};
          while (!ingress->try_submit(cell)) std::this_thread::yield();
        } else {
          // The pre-change serialized path: post() used to be exactly
          // schedule_after(0), so this is what every submission paid
          // before the MPSC ingress (and before the post() fast path).
          executor.schedule_after(
              0, [&gateway, request = std::move(request), on_done]() mutable {
                gateway->submit(std::move(request), on_done);
              });
        }
        samples.push_back(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              Clock::now() - t0)
                              .count());
      }
    });
  }
  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  const auto wall_start = Clock::now();
  start.store(true);
  for (auto& t : threads) t.join();
  // FIFO sentinel: lands behind every pending submission (baseline) or
  // behind the armed drain covering the last published cell (mpsc), so
  // its resolution marks "backlog fully admitted".
  std::int64_t submitted = on_worker(
      [&gateway] { return gateway->counters().submitted; });
  while (submitted < measured + warm_count) {
    submitted = on_worker(
        [&gateway] { return gateway->counters().submitted; });
  }
  const auto wall_end = Clock::now();
  const std::uint64_t allocs_after = g_allocs.load(std::memory_order_relaxed);

  RunResult result;
  result.submitted = submitted - warm_count;  // exclude warmup
  const double elapsed_s =
      std::chrono::duration<double>(wall_end - wall_start).count();
  result.rps = static_cast<double>(measured) / elapsed_s;
  std::vector<std::int64_t> all_ns;
  all_ns.reserve(static_cast<std::size_t>(measured));
  for (auto& v : enqueue_ns) {
    all_ns.insert(all_ns.end(), v.begin(), v.end());
  }
  result.enq_p50_us = percentile_us(all_ns, 0.50);
  result.enq_p99_us = percentile_us(all_ns, 0.99);
  result.allocs_per_req = static_cast<double>(allocs_after - allocs_before) /
                          static_cast<double>(measured);
  result.shed = on_worker([&gateway] { return gateway->counters().shed; });
  // Snapshot on the worker: the gateway/ingress probes read
  // worker-thread state.
  result.snapshot =
      on_worker([&telemetry] { return telemetry->snapshot_now(0); });
  result.snapshot.label = mpsc ? "mpsc" : "baseline";
  if (mpsc) {
    GFAAS_CHECK(ingress->drained() ==
                static_cast<std::uint64_t>(measured))
        << "ingress drained " << ingress->drained() << " of " << measured;
  }

  // Teardown: stop the event loop first (drops unfinished engine work —
  // deliberate), then the ingress/gateway, then flush the callback
  // thread. RealTimeExecutor's destructor joins its worker.
  cluster.reset();
  ingress.reset();
  gateway.reset();
  callbacks.reset();
  return result;
}

// The multi-shard ingestion row: `shards` independent RealTimeCluster +
// Gateway + ConcurrentIngress stacks behind one ShardedIngress front
// door. Producers route by model affinity, so each shard's ring, drain
// wakeup and bulk admission run with zero cross-shard coupling — the
// aggregate ingest rate is the sum of per-shard rates.
RunResult run_once_sharded(const Options& options, int producers, int shards) {
  const std::int64_t total = options.requests;
  const auto& catalog = models::table1_catalog();
  // Spread models across shards: affinity hashing with too few models
  // would leave shards idle, which measures routing, not ingestion.
  const int model_count = std::min(static_cast<int>(catalog.size()),
                                   std::max(options.models, 2 * shards));
  models::ModelRegistry registry;
  for (int m = 0; m < model_count; ++m) {
    GFAAS_CHECK(registry.register_model(catalog[static_cast<std::size_t>(m)]).ok());
  }

  struct Stack {
    std::unique_ptr<cluster::RealTimeCluster> cluster;
    std::unique_ptr<gateway::Gateway> gateway;
    std::unique_ptr<concurrent::CallbackExecutor> callbacks;
    std::unique_ptr<telemetry::Telemetry> telemetry;
    std::unique_ptr<gateway::ConcurrentIngress> ingress;
    int warm = 0;
  };
  gateway::ResultCallback on_done = [](const gateway::GatewayResult& result) {
    GFAAS_CHECK(result.disposition == gateway::Disposition::kCompleted);
  };
  const int gpus_per_shard = std::max(2, options.gpus / shards);
  std::vector<Stack> stacks(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) {
    Stack& stack = stacks[static_cast<std::size_t>(s)];
    cluster::ClusterConfig config;
    config.nodes = 2;
    config.gpus_per_node = (gpus_per_shard + 1) / 2;
    config.policy = core::PolicyName::kLb;
    stack.cluster = std::make_unique<cluster::RealTimeCluster>(
        config, registry, /*time_scale=*/1.0);
    stack.warm = 2 * gpus_per_shard;
    gateway::GatewayConfig gconfig;
    gconfig.max_in_flight = static_cast<std::size_t>(stack.warm);
    gconfig.max_pending = std::numeric_limits<std::size_t>::max();
    gconfig.default_slo = 0;  // no deadlines: nothing sheds or expires
    stack.gateway =
        std::make_unique<gateway::Gateway>(stack.cluster.get(), gconfig);
    stack.callbacks = std::make_unique<concurrent::CallbackExecutor>();
    stack.telemetry = std::make_unique<telemetry::Telemetry>();
    stack.telemetry->set_shard(s);
    stack.gateway->set_telemetry(stack.telemetry.get());
    stack.gateway->set_callback_executor(stack.callbacks.get());
    stack.ingress = std::make_unique<gateway::ConcurrentIngress>(
        stack.gateway.get(), &stack.cluster->executor(), options.capacity);
    stack.ingress->set_telemetry(stack.telemetry.get());
  }
  shard::ShardRouter router(static_cast<std::size_t>(shards));
  std::vector<gateway::ConcurrentIngress*> fronts;
  for (Stack& stack : stacks) fronts.push_back(stack.ingress.get());
  shard::ShardedIngress sharded(std::move(fronts), &router);

  auto on_worker = [](sim::Executor& executor, auto fn) {
    using R = decltype(fn());
    std::promise<R> promise;
    auto future = promise.get_future();
    executor.post([&promise, &fn] { promise.set_value(fn()); });
    return future.get();
  };

  // Warmup each shard exactly as the single-stack runs do: park loads on
  // every GPU and fill the admission window, so every measured
  // submission pays the saturated shed-vs-queue decision.
  for (Stack& stack : stacks) {
    sim::Executor& executor = stack.cluster->executor();
    for (int g = 0; g < stack.warm; ++g) {
      core::Request warm = make_request(total + g, g % model_count);
      executor.post([&stack, warm = std::move(warm), on_done]() mutable {
        stack.gateway->submit(std::move(warm), on_done);
      });
    }
    const std::size_t idle = on_worker(executor, [&stack] {
      return stack.cluster->engine().idle_gpu_count();
    });
    GFAAS_CHECK(idle == 0) << idle << " GPUs still idle after warmup";
    const std::int64_t admitted = on_worker(executor, [&stack] {
      return stack.gateway->counters().admitted;
    });
    GFAAS_CHECK(admitted == stack.warm)
        << "admission window not saturated: " << admitted << "/" << stack.warm;
  }

  // ---- measured window ----
  const std::int64_t per_producer = total / producers;
  const std::int64_t measured = per_producer * producers;
  std::vector<std::vector<std::int64_t>> enqueue_ns(
      static_cast<std::size_t>(producers));
  std::atomic<bool> start{false};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(producers));
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      auto& samples = enqueue_ns[static_cast<std::size_t>(p)];
      samples.reserve(static_cast<std::size_t>(per_producer));
      while (!start.load()) std::this_thread::yield();
      for (std::int64_t i = 0; i < per_producer; ++i) {
        const std::int64_t id = static_cast<std::int64_t>(p) * per_producer + i;
        core::Request request = make_request(id, id % model_count);
        const auto t0 = Clock::now();
        gateway::Submission cell{std::move(request), on_done};
        while (!sharded.try_submit(cell)) std::this_thread::yield();
        samples.push_back(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              Clock::now() - t0)
                              .count());
      }
    });
  }
  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  const auto wall_start = Clock::now();
  start.store(true);
  for (auto& t : threads) t.join();
  // Per-shard FIFO sentinel: every shard must have admitted everything
  // routed to it (plus its warmup).
  for (std::size_t s = 0; s < stacks.size(); ++s) {
    Stack& stack = stacks[s];
    const std::int64_t target =
        static_cast<std::int64_t>(sharded.routed(s)) + stack.warm;
    std::int64_t submitted = 0;
    do {
      submitted = on_worker(stack.cluster->executor(), [&stack] {
        return stack.gateway->counters().submitted;
      });
    } while (submitted < target);
  }
  const auto wall_end = Clock::now();
  const std::uint64_t allocs_after = g_allocs.load(std::memory_order_relaxed);

  RunResult result;
  const double elapsed_s =
      std::chrono::duration<double>(wall_end - wall_start).count();
  result.rps = static_cast<double>(measured) / elapsed_s;
  std::vector<std::int64_t> all_ns;
  all_ns.reserve(static_cast<std::size_t>(measured));
  for (auto& v : enqueue_ns) all_ns.insert(all_ns.end(), v.begin(), v.end());
  result.enq_p50_us = percentile_us(all_ns, 0.50);
  result.enq_p99_us = percentile_us(all_ns, 0.99);
  result.allocs_per_req = static_cast<double>(allocs_after - allocs_before) /
                          static_cast<double>(measured);
  std::uint64_t drained = 0;
  for (std::size_t s = 0; s < stacks.size(); ++s) {
    Stack& stack = stacks[s];
    result.routed.push_back(sharded.routed(s));
    result.submitted += on_worker(stack.cluster->executor(), [&stack] {
                          return stack.gateway->counters().submitted;
                        }) -
                        stack.warm;
    result.shed += on_worker(stack.cluster->executor(), [&stack] {
      return stack.gateway->counters().shed;
    });
    drained += stack.ingress->drained();
  }
  GFAAS_CHECK(drained == static_cast<std::uint64_t>(measured))
      << "sharded ingress drained " << drained << " of " << measured;
  result.snapshot = on_worker(stacks[0].cluster->executor(), [&stacks] {
    return stacks[0].telemetry->snapshot_now(0);
  });
  result.snapshot.label = "sharded";

  for (Stack& stack : stacks) {
    stack.cluster.reset();
    stack.ingress.reset();
    stack.gateway.reset();
    stack.callbacks.reset();
  }
  return result;
}

void print_run(int producers, const char* mode, const RunResult& r) {
  std::printf(
      "producers=%d mode=%s submitted=%lld rps=%.0f enq_p50_us=%.2f "
      "enq_p99_us=%.2f allocs_per_req=%.2f shed=%lld\n",
      producers, mode, static_cast<long long>(r.submitted), r.rps,
      r.enq_p50_us, r.enq_p99_us, r.allocs_per_req,
      static_cast<long long>(r.shed));
}

int run(const Options& options) {
  int failures = 0;
  double speedup_at_max = 0;
  int max_producers = 0;
  RunResult last_baseline;
  RunResult last_mpsc;
  for (int producers : options.producer_counts) {
    const RunResult baseline = run_once(options, producers, /*mpsc=*/false);
    const RunResult mpsc = run_once(options, producers, /*mpsc=*/true);
    print_run(producers, "baseline", baseline);
    print_run(producers, "mpsc", mpsc);
    const double speedup = mpsc.rps / baseline.rps;
    std::printf("producers=%d speedup=%.2fx\n", producers, speedup);
    if (baseline.shed != mpsc.shed) {
      std::printf("FAIL producers=%d unequal shed rates (baseline=%lld mpsc=%lld)\n",
                  producers, static_cast<long long>(baseline.shed),
                  static_cast<long long>(mpsc.shed));
      ++failures;
    }
    if (mpsc.allocs_per_req > baseline.allocs_per_req * 1.10) {
      std::printf(
          "FAIL producers=%d allocation regression (baseline=%.2f mpsc=%.2f)\n",
          producers, baseline.allocs_per_req, mpsc.allocs_per_req);
      ++failures;
    }
    if (producers >= max_producers) {
      max_producers = producers;
      speedup_at_max = speedup;
      last_baseline = baseline;
      last_mpsc = mpsc;
    }
  }
  const bool floor_met = speedup_at_max >= options.floor;
  std::printf("ACCEPT producers=%d speedup=%.2fx floor=%.2fx -> %s\n",
              max_producers, speedup_at_max, options.floor,
              floor_met ? "PASS" : "FAIL");
  if (!floor_met) ++failures;

  // Multi-shard row: max producers over `shards` independent stacks.
  const RunResult sharded =
      run_once_sharded(options, max_producers, options.shards);
  char mode[32];
  std::snprintf(mode, sizeof(mode), "sharded%d", options.shards);
  print_run(max_producers, mode, sharded);
  std::printf("  routed=[");
  for (std::size_t s = 0; s < sharded.routed.size(); ++s) {
    std::printf("%s%llu", s == 0 ? "" : ",",
                static_cast<unsigned long long>(sharded.routed[s]));
  }
  std::printf("]\n");
  if (sharded.shed != last_mpsc.shed) {
    std::printf("FAIL sharded row unequal shed rate (mpsc=%lld sharded=%lld)\n",
                static_cast<long long>(last_mpsc.shed),
                static_cast<long long>(sharded.shed));
    ++failures;
  }
  if (!options.json.empty()) {
    FILE* out = std::fopen(options.json.c_str(), "w");
    GFAAS_CHECK(out != nullptr) << "cannot write " << options.json;
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"ingest_throughput_sharded\",\n"
                 "  \"producers\": %d,\n"
                 "  \"shards\": %d,\n"
                 "  \"requests\": %lld,\n"
                 "  \"single_shard\": {\"rps\": %.1f, \"enq_p50_us\": %.3f, "
                 "\"enq_p99_us\": %.3f, \"allocs_per_req\": %.3f, \"shed\": %lld},\n"
                 "  \"sharded\": {\"rps\": %.1f, \"enq_p50_us\": %.3f, "
                 "\"enq_p99_us\": %.3f, \"allocs_per_req\": %.3f, \"shed\": %lld,\n"
                 "              \"routed\": [",
                 max_producers, options.shards,
                 static_cast<long long>(options.requests), last_mpsc.rps,
                 last_mpsc.enq_p50_us, last_mpsc.enq_p99_us,
                 last_mpsc.allocs_per_req, static_cast<long long>(last_mpsc.shed),
                 sharded.rps, sharded.enq_p50_us, sharded.enq_p99_us,
                 sharded.allocs_per_req, static_cast<long long>(sharded.shed));
    for (std::size_t s = 0; s < sharded.routed.size(); ++s) {
      std::fprintf(out, "%s%llu", s == 0 ? "" : ", ",
                   static_cast<unsigned long long>(sharded.routed[s]));
    }
    std::fprintf(out,
                 "]},\n"
                 "  \"sharded_vs_single_rps\": %.3f\n"
                 "}\n",
                 sharded.rps / last_mpsc.rps);
    std::fclose(out);
  }
  if (failures != 0) {
    std::fprintf(stderr, "acceptance failed; final telemetry snapshots "
                         "(producers=%d):\n", max_producers);
    telemetry::dump_snapshot(last_baseline.snapshot, stderr);
    telemetry::dump_snapshot(last_mpsc.snapshot, stderr);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace gfaas::bench

int main(int argc, char** argv) {
  gfaas::bench::Options options;
  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) != 0) return nullptr;
      GFAAS_CHECK(i + 1 < argc) << flag << " needs a value";
      return argv[++i];
    };
    if (const char* v = value("--requests")) {
      options.requests = std::atoll(v);
    } else if (const char* v = value("--producers")) {
      options.producer_counts.clear();
      std::string list(v);
      std::size_t pos = 0;
      while (pos < list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        options.producer_counts.push_back(
            std::atoi(list.substr(pos, comma - pos).c_str()));
        pos = comma + 1;
      }
    } else if (const char* v = value("--gpus")) {
      options.gpus = std::atoi(v);
    } else if (const char* v = value("--capacity")) {
      options.capacity = static_cast<std::size_t>(std::atoll(v));
    } else if (const char* v = value("--floor")) {
      options.floor = std::atof(v);
    } else if (const char* v = value("--models")) {
      options.models = std::atoi(v);
    } else if (const char* v = value("--shards")) {
      options.shards = std::atoi(v);
    } else if (const char* v = value("--json")) {
      options.json = v;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  return gfaas::bench::run(options);
}
