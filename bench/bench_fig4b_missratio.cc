// Figure 4b reproduction: cache miss ratio of LB / LALB / LALBO3 across
// working set sizes 15 / 25 / 35.
//
// Paper reference points: LALB reduces LB's miss ratio by 94.11% (WS 15)
// and 65.21% (WS 35); LALBO3 by 81.15% (WS 35).
#include <cstdio>

#include "bench_common.h"
#include "metrics/reporter.h"

using namespace gfaas;

int main() {
  const auto grid = bench::run_grid();

  std::printf("=== Fig 4b: Cache Miss Ratio ===\n");
  metrics::Table table({"WS", "LB", "LALB", "LALBO3", "LALB vs LB", "LALBO3 vs LB"});
  for (std::size_t ws : {15u, 25u, 35u}) {
    table.add_row(
        {std::to_string(ws),
         metrics::Table::fmt_percent(
             bench::cell(grid, ws, core::PolicyName::kLb).miss_ratio),
         metrics::Table::fmt_percent(
             bench::cell(grid, ws, core::PolicyName::kLalb).miss_ratio),
         metrics::Table::fmt_percent(
             bench::cell(grid, ws, core::PolicyName::kLalbO3).miss_ratio),
         "-" + metrics::Table::fmt_percent(bench::reduction_vs_lb(
                   grid, ws, core::PolicyName::kLalb, bench::metric_miss_ratio)),
         "-" + metrics::Table::fmt_percent(bench::reduction_vs_lb(
                   grid, ws, core::PolicyName::kLalbO3, bench::metric_miss_ratio))});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Paper: LALB -94.11%% (WS15), -65.21%% (WS35); LALBO3 -81.15%% (WS35).\n");
  return 0;
}
