// Cluster-scale benchmark for the incremental scheduler indexes (§VI).
//
// Sweeps cluster size (default 8 -> 256 GPUs, 8 per node) under a fixed
// request volume (default 100k over a 6-minute arrival window) and
// reports, per point:
//   * simulator throughput (events/sec of wall time),
//   * the number of policy invocations and their mean wall-clock cost,
//   * the mean/max global-queue length observed at invocation time.
//
// Small clusters are massively oversubscribed (the queue grows to ~1e5)
// while large ones drain near-instantly, so one sweep spans three orders
// of magnitude of queue length. With the incrementally maintained indexes
// (ClusterStateIndex, the cache location index, the GlobalQueue iterators)
// the mean policy-invocation cost must grow sublinearly in the mean queue
// length: the O3 aging scan is amortized O(o3_limit) per request and every
// other policy probe is O(answer), not O(cluster) or O(queue).
//
// Usage:
//   bench_cluster_scale [--gpus 8,16,32,64,128,256] [--requests 100000]
//                       [--working-set 35] [--policy lb|lalb|lalbo3]
//                       [--o3-limit 25]
//
// The CI Release job smoke-runs `--gpus 8 --requests 5000` so the binary
// and the engine counters it depends on cannot rot.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/experiment.h"
#include "common/log.h"
#include "metrics/reporter.h"
#include "metrics/stats.h"
#include "trace/workload.h"

using namespace gfaas;

namespace {

struct Options {
  std::vector<int> gpu_counts = {8, 16, 32, 64, 128, 256};
  std::int64_t requests = 100000;
  std::size_t working_set = 35;
  core::PolicyName policy = core::PolicyName::kLalbO3;
  int o3_limit = 25;
};

// Parses "8,16,32"; returns an empty list (an error to the caller) on any
// malformed token rather than silently truncating the sweep.
std::vector<int> parse_int_list(const char* arg) {
  std::vector<int> out;
  for (const char* p = arg; *p != '\0';) {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end == p || v <= 0 || (*end != ',' && *end != '\0')) {
      std::fprintf(stderr, "malformed gpu list near '%s'\n", p);
      return {};
    }
    out.push_back(static_cast<int>(v));
    p = (*end == ',') ? end + 1 : end;
  }
  return out;
}

bool parse_args(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      GFAAS_CHECK(i + 1 < argc) << "missing value for " << flag;
      return argv[++i];
    };
    if (flag == "--gpus") {
      options->gpu_counts = parse_int_list(next());
    } else if (flag == "--requests") {
      options->requests = std::atoll(next());
    } else if (flag == "--working-set") {
      options->working_set = static_cast<std::size_t>(std::atoll(next()));
    } else if (flag == "--o3-limit") {
      options->o3_limit = std::atoi(next());
    } else if (flag == "--policy") {
      const std::string name = next();
      if (name == "lb") {
        options->policy = core::PolicyName::kLb;
      } else if (name == "lalb") {
        options->policy = core::PolicyName::kLalb;
      } else if (name == "lalbo3") {
        options->policy = core::PolicyName::kLalbO3;
      } else {
        std::fprintf(stderr, "unknown policy %s\n", name.c_str());
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  if (options->gpu_counts.empty() || options->requests <= 0) return false;
  for (int gpus : options->gpu_counts) {
    // Clusters are built as nodes x 8 GPUs (or one smaller node), so a
    // count that does not decompose exactly would silently simulate a
    // smaller cluster than the row label claims. Reject it instead.
    if (gpus > 8 && gpus % 8 != 0) {
      std::fprintf(stderr, "--gpus values above 8 must be multiples of 8 (got %d)\n",
                   gpus);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, &options)) return 1;

  trace::WorkloadConfig wconfig;
  wconfig.working_set_size = options.working_set;
  wconfig.requests_per_minute =
      (options.requests + wconfig.window_minutes - 1) / wconfig.window_minutes;
  auto workload = trace::build_standard_workload(wconfig);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n", workload.status().to_string().c_str());
    return 1;
  }

  std::printf("=== Cluster scale: %lld requests, working set %zu, policy %s ===\n",
              static_cast<long long>(workload->requests.size()), options.working_set,
              core::policy_display_name(options.policy).c_str());
  metrics::Table table({"GPUs", "Wall(s)", "Events/s", "PolicyCalls", "MeanCost(us)",
                        "MeanQLen", "MaxQLen", "AvgLatency(s)", "Makespan(s)"});
  for (int gpus : options.gpu_counts) {
    cluster::ClusterConfig config;
    config.gpus_per_node = gpus < 8 ? gpus : 8;
    config.nodes = gpus / config.gpus_per_node;
    config.policy = options.policy;
    config.o3_limit = options.o3_limit;

    cluster::SimCluster cluster(config, workload->registry);
    const auto wall_start = std::chrono::steady_clock::now();
    const SimTime makespan = cluster.replay(workload->requests);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
            .count();

    const auto& engine = cluster.engine();
    const double events = static_cast<double>(cluster.simulator().events_executed());
    const double calls = static_cast<double>(engine.policy_invocations());
    const double mean_cost_us =
        calls > 0 ? static_cast<double>(engine.policy_wall_ns()) / calls / 1e3 : 0.0;
    const double mean_qlen =
        calls > 0 ? static_cast<double>(engine.policy_queue_len_sum()) / calls : 0.0;

    metrics::StreamingStats latency;
    for (const auto& record : engine.completions()) {
      latency.add(sim_to_seconds(record.latency()));
    }
    table.add_row({std::to_string(gpus), metrics::Table::fmt(wall_s),
                   metrics::Table::fmt(events / wall_s, 0), metrics::Table::fmt(calls, 0),
                   metrics::Table::fmt(mean_cost_us), metrics::Table::fmt(mean_qlen, 1),
                   std::to_string(engine.policy_queue_len_max()),
                   metrics::Table::fmt(latency.mean()),
                   metrics::Table::fmt(sim_to_seconds(makespan))});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expectation: MeanCost(us) stays within a small constant band while "
      "MeanQLen varies by orders of magnitude across the sweep — policy cost "
      "is bounded by cache contents and the O3 limit, not queue or cluster "
      "size.\n");
  return 0;
}
