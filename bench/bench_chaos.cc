// Fleet-scale failure-domain chaos bench: retry + hedging under
// correlated GPU kills, with enforced survival floors.
//
// A diurnal open-loop trace is served through the Gateway while a
// deterministic fault schedule (src/chaos) kills whole failure domains —
// one node's worth of GPUs sharing a host PCIe link — at a configured
// fraction of the fleet per hour. The autoscaler re-provisions dead
// capacity (min-floor backfill) while the Gateway retries failed
// requests on surviving GPUs and hedges deep-waiting ones onto idle
// GPUs. Three runs share the same trace seed:
//
//   * no-chaos    — the same serving stack with the fault schedule off
//                   (reference for what survival costs);
//   * retry       — chaos + transparent retry, hedging off;
//   * retry+hedge — chaos + retry + tail-latency hedging.
//
// ACCEPTANCE (exit non-zero on a miss):
//   * retry+hedge goodput (completed / offered) >= goodput floor (0.99)
//     under the domain kills;
//   * retry+hedge p99 strictly beats the retry-only p99 (the hedging
//     win);
//   * duplicate-work overhead — GPU-time of cancelled hedge losers over
//     useful completed GPU-time — stays under the cap (5%).
//
// Usage:
//   bench_chaos [--minutes 360] [--period 90] [--trough-rpm 60]
//               [--peak-rpm 240] [--working-set 16] [--gpus-per-node 2]
//               [--min-gpus 12] [--max-gpus 24] [--cold-start-s 15]
//               [--interval-s 5] [--slo-s 10] [--window 256]
//               [--kill-frac 0.10] [--degrade-frac 0.8]
//               [--degrade-factor 8] [--degrade-minutes 8] [--seed 42]
//               [--max-retries 2] [--hedge-frac 0.2]
//               [--goodput-floor 0.99] [--overhead-cap 0.05]
//               [--telemetry-jsonl PATH]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "autoscale/autoscaler.h"
#include "chaos/fault_injector.h"
#include "cluster/experiment.h"
#include "common/log.h"
#include "gateway/gateway.h"
#include "metrics/reporter.h"
#include "telemetry/exporter.h"
#include "telemetry/telemetry.h"
#include "trace/clients.h"
#include "trace/workload.h"

using namespace gfaas;

namespace {

struct Options {
  std::int64_t minutes = 360;
  std::int64_t period = 90;
  std::int64_t trough_rpm = 60;
  std::int64_t peak_rpm = 240;
  std::size_t working_set = 16;
  int gpus_per_node = 2;
  std::size_t min_gpus = 12;
  std::size_t max_gpus = 24;
  SimTime cold_start = sec(15);
  SimTime interval = sec(5);
  SimTime slo = sec(10);
  std::size_t window = 256;
  double kill_frac = 0.10;  // domains killed per hour, as a fleet fraction
  double degrade_frac = 0.8;  // domains gray-degraded per hour, ditto
  double degrade_factor = 8.0;
  std::int64_t degrade_minutes = 8;
  std::uint64_t seed = 42;
  int max_retries = 2;
  double hedge_frac = 0.2;
  double goodput_floor = 0.99;
  double overhead_cap = 0.05;
  std::string telemetry_jsonl;
};

bool parse_args(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      GFAAS_CHECK(i + 1 < argc) << "missing value for " << flag;
      return argv[++i];
    };
    if (flag == "--minutes") {
      options->minutes = std::atoll(next());
    } else if (flag == "--period") {
      options->period = std::atoll(next());
    } else if (flag == "--trough-rpm") {
      options->trough_rpm = std::atoll(next());
    } else if (flag == "--peak-rpm") {
      options->peak_rpm = std::atoll(next());
    } else if (flag == "--working-set") {
      options->working_set = static_cast<std::size_t>(std::atoll(next()));
    } else if (flag == "--gpus-per-node") {
      options->gpus_per_node = std::atoi(next());
    } else if (flag == "--min-gpus") {
      options->min_gpus = static_cast<std::size_t>(std::atoll(next()));
    } else if (flag == "--max-gpus") {
      options->max_gpus = static_cast<std::size_t>(std::atoll(next()));
    } else if (flag == "--cold-start-s") {
      options->cold_start = sec(std::atoll(next()));
    } else if (flag == "--interval-s") {
      options->interval = sec(std::atoll(next()));
    } else if (flag == "--slo-s") {
      options->slo = sec(std::atoll(next()));
    } else if (flag == "--window") {
      options->window = static_cast<std::size_t>(std::atoll(next()));
    } else if (flag == "--kill-frac") {
      options->kill_frac = std::atof(next());
    } else if (flag == "--degrade-frac") {
      options->degrade_frac = std::atof(next());
    } else if (flag == "--degrade-factor") {
      options->degrade_factor = std::atof(next());
    } else if (flag == "--degrade-minutes") {
      options->degrade_minutes = std::atoll(next());
    } else if (flag == "--seed") {
      options->seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (flag == "--max-retries") {
      options->max_retries = std::atoi(next());
    } else if (flag == "--hedge-frac") {
      options->hedge_frac = std::atof(next());
    } else if (flag == "--goodput-floor") {
      options->goodput_floor = std::atof(next());
    } else if (flag == "--overhead-cap") {
      options->overhead_cap = std::atof(next());
    } else if (flag == "--telemetry-jsonl") {
      options->telemetry_jsonl = next();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return options->minutes > 0 && options->peak_rpm >= options->trough_rpm &&
         options->gpus_per_node >= 1 &&
         options->min_gpus >= static_cast<std::size_t>(options->gpus_per_node) &&
         options->min_gpus % static_cast<std::size_t>(options->gpus_per_node) == 0 &&
         options->max_gpus >= options->min_gpus && options->slo > 0 &&
         options->kill_frac >= 0 && options->degrade_frac >= 0 &&
         options->degrade_factor >= 1 && options->degrade_minutes > 0 &&
         options->max_retries >= 0 && options->hedge_frac >= 0 &&
         options->hedge_frac < 1;
}

struct RunResult {
  std::string name;
  std::size_t offered = 0;
  std::int64_t completed = 0;
  std::int64_t failed = 0;
  std::int64_t shed = 0;
  std::int64_t expired = 0;
  double goodput = 0;     // completed / offered
  double attainment = 0;  // slo_met / completed
  double p50_s = 0, p99_s = 0;
  std::int64_t retries = 0;
  std::int64_t hedges = 0;
  std::int64_t hedge_wins = 0;
  std::int64_t domain_kills = 0;
  std::int64_t gpus_killed = 0;
  std::int64_t gpus_replaced = 0;
  std::int64_t degrades = 0;
  double dup_overhead = 0;  // cancelled GPU-time / useful GPU-time
  // Final exporter row, kept for the acceptance-failure dump.
  telemetry::MetricsSnapshot snapshot;
};

RunResult run_one(const Options& options, const trace::Workload& registry_source,
                  const std::vector<std::int64_t>& rates, bool chaos, bool hedging,
                  const char* name, std::ostream* jsonl) {
  cluster::ClusterConfig cluster_config;
  cluster_config.nodes = static_cast<int>(options.min_gpus) / options.gpus_per_node;
  cluster_config.gpus_per_node = options.gpus_per_node;
  cluster_config.shared_pcie_per_node = true;  // a domain dies as one unit
  cluster::SimCluster cluster(cluster_config, registry_source.registry);

  gateway::GatewayConfig gw_config;
  gw_config.max_in_flight = options.window;
  gw_config.default_slo = options.slo;
  gw_config.max_retries = options.max_retries;
  gw_config.hedge_budget_fraction = hedging ? options.hedge_frac : 0.0;
  gateway::Gateway gateway(&cluster, gw_config);

  autoscale::AutoscalerConfig as_config;
  as_config.evaluation_interval = options.interval;
  as_config.cold_start = options.cold_start;
  as_config.min_gpus = options.min_gpus;
  as_config.max_gpus = options.max_gpus;
  autoscale::Autoscaler scaler(&cluster, std::make_unique<autoscale::ReactivePolicy>(),
                               as_config);

  chaos::FaultScheduleConfig fault_config;
  fault_config.seed = options.seed;
  fault_config.horizon = minutes(options.minutes);
  fault_config.domain_kills_per_hour =
      options.kill_frac * static_cast<double>(cluster.domain_count());
  fault_config.degrades_per_hour =
      options.degrade_frac * static_cast<double>(cluster.domain_count());
  fault_config.degrade_factor = options.degrade_factor;
  fault_config.max_degrade = minutes(options.degrade_minutes);
  chaos::ChaosInjector injector(
      &cluster, chaos ? chaos::make_fault_schedule(fault_config)
                      : std::vector<chaos::FaultEvent>{});

  // All four serving layers record into one Telemetry; the exporter
  // ticks on the autoscaler's cadence and is the single source for the
  // result table (the ad-hoc latency/GPU-time accounting is gone).
  telemetry::Telemetry telemetry;
  gateway.set_telemetry(&telemetry);
  cluster.engine().set_telemetry(&telemetry);
  scaler.set_telemetry(&telemetry);
  injector.set_telemetry(&telemetry);
  telemetry::TelemetryExporterConfig exporter_config;
  exporter_config.interval = options.interval;
  exporter_config.label = name;
  exporter_config.jsonl = jsonl;
  exporter_config.export_spans = jsonl != nullptr;
  telemetry::TelemetryExporter exporter(&cluster.executor(), &telemetry,
                                        exporter_config);

  trace::ClientConfig client_config;
  client_config.model_count = options.working_set;
  trace::ClientSink sink = [&gateway](core::Request request,
                                      std::function<void()> done) {
    gateway.submit(std::move(request),
                   [done = std::move(done)](const gateway::GatewayResult&) { done(); });
  };
  trace::OpenLoopClient client(&cluster.executor(), sink, client_config, rates);

  client.start();
  scaler.start(client.horizon());
  exporter.start(client.horizon());
  injector.arm();
  cluster.run_to_completion();
  scaler.finalize();
  exporter.finish();
  GFAAS_CHECK(cluster.engine().pending() == 0 && gateway.pending() == 0)
      << "requests stranded behind the gateway";
  GFAAS_CHECK(client.completed() == client.submitted())
      << "client callbacks missing: every submission must resolve exactly once";

  const telemetry::MetricsSnapshot& snap = exporter.last();
  auto count = [&snap](const char* metric) {
    return static_cast<std::int64_t>(snap.value(metric));
  };
  RunResult run;
  run.name = name;
  run.snapshot = snap;
  run.offered = client.submitted();
  run.completed = count("gateway.completed");
  run.failed = count("gateway.failed");
  run.shed = count("gateway.shed");
  run.expired = count("gateway.expired");
  run.goodput = run.offered > 0 ? static_cast<double>(run.completed) /
                                      static_cast<double>(run.offered)
                                : 0;
  run.attainment = run.completed > 0
                       ? snap.value("gateway.slo_met") /
                             static_cast<double>(run.completed)
                       : 0;
  run.p50_s = snap.value("gateway.latency_s.p50");
  run.p99_s = snap.value("gateway.latency_s.p99");
  run.retries = count("gateway.retries");
  run.hedges = count("gateway.hedges");
  run.hedge_wins = count("gateway.hedge_wins");
  run.domain_kills = count("chaos.domain_kills");
  run.gpus_killed = count("chaos.gpus_killed");
  run.gpus_replaced = count("autoscale.gpus_replaced");
  run.degrades = count("chaos.degrades");
  const double useful_us = snap.value("engine.execution_time_us");
  run.dup_overhead =
      useful_us > 0 ? snap.value("engine.cancelled_execution_time_us") / useful_us
                    : 0;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, &options)) return 1;

  trace::WorkloadConfig wconfig;
  wconfig.working_set_size = options.working_set;
  auto registry_source = trace::build_standard_workload(wconfig);
  if (!registry_source.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 registry_source.status().to_string().c_str());
    return 1;
  }

  trace::DiurnalConfig diurnal;
  diurnal.window_minutes = options.minutes;
  diurnal.period_minutes = options.period;
  diurnal.trough_rpm = options.trough_rpm;
  diurnal.peak_rpm = options.peak_rpm;
  const std::vector<std::int64_t> rates = trace::diurnal_rates(diurnal);

  std::printf(
      "=== Chaos bench: %lld min diurnal (trough %lld, peak %lld rpm), fleet "
      "%zu..%zu (%d GPUs/domain), %.0f%%/hour domain kills, %.0f%%/hour "
      "%.0fx gray degrades, SLO %.0fs, retries %d, hedge at %.0f%% of "
      "budget ===\n",
      static_cast<long long>(options.minutes),
      static_cast<long long>(options.trough_rpm),
      static_cast<long long>(options.peak_rpm), options.min_gpus, options.max_gpus,
      options.gpus_per_node, options.kill_frac * 100.0,
      options.degrade_frac * 100.0, options.degrade_factor,
      sim_to_seconds(options.slo), options.max_retries, options.hedge_frac * 100.0);

  std::ofstream jsonl_file;
  std::ostream* jsonl = nullptr;
  if (!options.telemetry_jsonl.empty()) {
    jsonl_file.open(options.telemetry_jsonl);
    if (!jsonl_file) {
      std::fprintf(stderr, "cannot open %s\n", options.telemetry_jsonl.c_str());
      return 1;
    }
    jsonl = &jsonl_file;
  }

  const RunResult no_chaos =
      run_one(options, *registry_source, rates,
              /*chaos=*/false, /*hedging=*/false, "no-chaos", jsonl);
  const RunResult retry_only =
      run_one(options, *registry_source, rates,
              /*chaos=*/true, /*hedging=*/false, "retry", jsonl);
  const RunResult hedged =
      run_one(options, *registry_source, rates,
              /*chaos=*/true, /*hedging=*/true, "retry+hedge", jsonl);

  metrics::Table table({"Run", "Offered", "Done", "Fail", "Shed", "Expired",
                        "Goodput", "Attain", "p50(s)", "p99(s)", "Retry", "Hedge",
                        "HWin", "Kills", "Degr", "GPUsKilled", "Replaced",
                        "DupOvh"});
  for (const RunResult* run : {&no_chaos, &retry_only, &hedged}) {
    table.add_row({run->name, std::to_string(run->offered),
                   std::to_string(run->completed), std::to_string(run->failed),
                   std::to_string(run->shed), std::to_string(run->expired),
                   metrics::Table::fmt(run->goodput, 4),
                   metrics::Table::fmt(run->attainment, 3),
                   metrics::Table::fmt(run->p50_s), metrics::Table::fmt(run->p99_s),
                   std::to_string(run->retries), std::to_string(run->hedges),
                   std::to_string(run->hedge_wins), std::to_string(run->domain_kills),
                   std::to_string(run->degrades), std::to_string(run->gpus_killed),
                   std::to_string(run->gpus_replaced),
                   metrics::Table::fmt(run->dup_overhead, 4)});
  }
  std::printf("%s\n", table.to_string().c_str());

  GFAAS_CHECK(retry_only.domain_kills > 0)
      << "chaos schedule produced no kills; raise --minutes or --kill-frac";

  const bool goodput_ok = hedged.goodput >= options.goodput_floor;
  const bool p99_ok = hedged.p99_s < retry_only.p99_s;
  const bool overhead_ok = hedged.dup_overhead < options.overhead_cap;
  std::printf("\nACCEPTANCE retry+hedge goodput >= %.2f under %lld domain kills "
              "(%.4f): %s\n",
              options.goodput_floor, static_cast<long long>(hedged.domain_kills),
              hedged.goodput, goodput_ok ? "PASS" : "FAIL");
  std::printf("ACCEPTANCE hedging beats no-hedging p99 (%.2fs < %.2fs): %s\n",
              hedged.p99_s, retry_only.p99_s, p99_ok ? "PASS" : "FAIL");
  std::printf("ACCEPTANCE duplicate-work overhead < %.0f%% (%.2f%%): %s\n",
              options.overhead_cap * 100.0, hedged.dup_overhead * 100.0,
              overhead_ok ? "PASS" : "FAIL");
  if (!(goodput_ok && p99_ok && overhead_ok)) {
    std::fprintf(stderr, "acceptance failed; final telemetry snapshots:\n");
    for (const RunResult* run : {&retry_only, &hedged}) {
      telemetry::dump_snapshot(run->snapshot, stderr);
    }
    return 1;
  }
  return 0;
}
