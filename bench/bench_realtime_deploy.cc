// Deployment-mode bench: the full SchedulerEngine + Autoscaler +
// PredictivePolicy stack, end-to-end on the wall-clock RealTimeExecutor,
// cross-checked against the identical run on the discrete-event simulator.
//
// Both runs replay the same diurnal trace through the same
// autoscale::replay_with_autoscaler driver against the same ElasticCluster
// seam; the only difference is the executor behind it (SimCluster vs
// RealTimeCluster with `--time-scale` compression). The simulator is
// bit-deterministic; the wall-clock run is subject to OS scheduling
// jitter, which perturbs arrival/completion interleavings and therefore
// the autoscaler's tick-by-tick view, so the comparison uses tolerances:
//
//   * completion count       — exact (every request must complete in both);
//   * mean powered fleet     — within MEAN_FLEET_TOLERANCE (35%) of sim;
//   * peak powered fleet     — within max(2 GPUs, 50%) of sim.
//
// The tolerances are deliberately loose: they catch wiring bugs (a policy
// that never scales, a drain that strands requests, an executor that
// misorders time) rather than asserting jitter-free equality. ACCEPTANCE
// lines print PASS/FAIL and the exit code reflects them (CI smoke-runs a
// small config).
//
// Usage:
//   bench_realtime_deploy [--minutes 12] [--period 12] [--trough-rpm 30]
//                         [--peak-rpm 180] [--working-set 10]
//                         [--min-gpus 2] [--max-gpus 10] [--cold-start-s 15]
//                         [--interval-s 5] [--time-scale 120]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "autoscale/deployment.h"
#include "bench_common.h"
#include "cluster/experiment.h"
#include "cluster/realtime_cluster.h"
#include "common/log.h"
#include "metrics/reporter.h"
#include "trace/workload.h"

using namespace gfaas;

namespace {

constexpr double kMeanFleetTolerance = 0.35;  // relative, vs the sim run
constexpr double kPeakFleetTolerance = 0.50;  // relative; floor of 2 GPUs

struct Options {
  std::int64_t minutes = 12;
  std::int64_t period = 12;
  std::int64_t trough_rpm = 30;
  std::int64_t peak_rpm = 180;
  std::size_t working_set = 10;
  std::size_t min_gpus = 2;
  std::size_t max_gpus = 10;
  SimTime cold_start = sec(15);
  SimTime interval = sec(5);
  double time_scale = 120.0;
};

bool parse_args(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      GFAAS_CHECK(i + 1 < argc) << "missing value for " << flag;
      return argv[++i];
    };
    if (flag == "--minutes") {
      options->minutes = std::atoll(next());
    } else if (flag == "--period") {
      options->period = std::atoll(next());
    } else if (flag == "--trough-rpm") {
      options->trough_rpm = std::atoll(next());
    } else if (flag == "--peak-rpm") {
      options->peak_rpm = std::atoll(next());
    } else if (flag == "--working-set") {
      options->working_set = static_cast<std::size_t>(std::atoll(next()));
    } else if (flag == "--min-gpus") {
      options->min_gpus = static_cast<std::size_t>(std::atoll(next()));
    } else if (flag == "--max-gpus") {
      options->max_gpus = static_cast<std::size_t>(std::atoll(next()));
    } else if (flag == "--cold-start-s") {
      options->cold_start = sec(std::atoll(next()));
    } else if (flag == "--interval-s") {
      options->interval = sec(std::atoll(next()));
    } else if (flag == "--time-scale") {
      options->time_scale = std::atof(next());
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return options->minutes > 0 && options->peak_rpm >= options->trough_rpm &&
         options->min_gpus >= 1 && options->max_gpus >= options->min_gpus &&
         options->time_scale > 0;
}

struct ModeResult {
  std::string mode;
  autoscale::ReplayResult replay;
  double p50_s = 0, p95_s = 0, p99_s = 0;
  double fleet_mean = 0, fleet_max = 0;
  std::int64_t cold_starts = 0, retired = 0;
  double gpu_seconds = 0;
};

std::unique_ptr<autoscale::ScalingPolicy> make_policy(const Options& options) {
  autoscale::PredictivePolicyConfig config;
  config.lead_time = options.cold_start;
  return std::make_unique<autoscale::PredictivePolicy>(config);
}

autoscale::AutoscalerConfig scaler_config(const Options& options) {
  autoscale::AutoscalerConfig config;
  config.evaluation_interval = options.interval;
  config.cold_start = options.cold_start;
  config.min_gpus = options.min_gpus;
  config.max_gpus = options.max_gpus;
  return config;
}

cluster::ClusterConfig initial_fleet(const Options& options) {
  // Single-GPU nodes with dedicated links, matching what the autoscaler
  // provisions, so the starting fleet and scale-ups are homogeneous.
  cluster::ClusterConfig config;
  config.nodes = static_cast<int>(options.min_gpus);
  config.gpus_per_node = 1;
  config.shared_pcie_per_node = false;
  return config;
}

ModeResult finish(std::string mode, const autoscale::ReplayResult& replay,
                  const cluster::SchedulerEngine& engine,
                  const autoscale::Autoscaler& scaler, SimTime end) {
  ModeResult result;
  result.mode = std::move(mode);
  result.replay = replay;
  const std::vector<double> latencies = bench::sorted_latencies_s(engine);
  result.p50_s = bench::percentile(latencies, 0.50);
  result.p95_s = bench::percentile(latencies, 0.95);
  result.p99_s = bench::percentile(latencies, 0.99);
  result.fleet_mean = scaler.powered_timeline().time_weighted_mean(end);
  result.fleet_max = scaler.powered_timeline().max_value();
  result.cold_starts = scaler.counters().gpus_added;
  result.retired = scaler.counters().gpus_retired;
  result.gpu_seconds = scaler.gpu_seconds(end);
  return result;
}

ModeResult run_sim(const Options& options, const trace::Workload& workload) {
  cluster::SimCluster cluster(initial_fleet(options), workload.registry);
  autoscale::Autoscaler scaler(&cluster, make_policy(options),
                               scaler_config(options));
  const auto replay =
      autoscale::replay_with_autoscaler(cluster, workload.requests, scaler);
  return finish("sim", replay, cluster.engine(), scaler,
                cluster.executor().now());
}

ModeResult run_realtime(const Options& options, const trace::Workload& workload) {
  cluster::RealTimeCluster cluster(initial_fleet(options), workload.registry,
                                   options.time_scale);
  autoscale::Autoscaler scaler(&cluster, make_policy(options),
                               scaler_config(options));
  const auto replay =
      autoscale::replay_with_autoscaler(cluster, workload.requests, scaler);
  return finish("realtime", replay, cluster.engine(), scaler,
                cluster.executor().now());
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, &options)) return 1;

  trace::WorkloadConfig wconfig;
  wconfig.working_set_size = options.working_set;
  trace::DiurnalConfig diurnal;
  diurnal.window_minutes = options.minutes;
  diurnal.period_minutes = options.period;
  diurnal.trough_rpm = options.trough_rpm;
  diurnal.peak_rpm = options.peak_rpm;
  auto workload = trace::build_diurnal_workload(wconfig, diurnal);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n", workload.status().to_string().c_str());
    return 1;
  }

  std::printf(
      "=== Deployment mode: %zu requests over %lld min (trough %lld rpm, peak "
      "%lld rpm), predictive policy, time_scale %.0fx ===\n",
      workload->requests.size(), static_cast<long long>(options.minutes),
      static_cast<long long>(options.trough_rpm),
      static_cast<long long>(options.peak_rpm), options.time_scale);

  std::vector<ModeResult> runs;
  runs.push_back(run_sim(options, *workload));
  runs.push_back(run_realtime(options, *workload));

  metrics::Table table({"Mode", "Done", "Makespan(s)", "Wall(s)", "Fleet(mean/max)",
                        "GPU-s", "p50(s)", "p95(s)", "p99(s)", "Cold", "Retired"});
  for (const ModeResult& run : runs) {
    table.add_row({run.mode, std::to_string(run.replay.completed),
                   metrics::Table::fmt(sim_to_seconds(run.replay.makespan), 1),
                   metrics::Table::fmt(run.replay.wall_seconds),
                   metrics::Table::fmt(run.fleet_mean, 1) + "/" +
                       metrics::Table::fmt(run.fleet_max, 0),
                   metrics::Table::fmt(run.gpu_seconds, 0),
                   metrics::Table::fmt(run.p50_s), metrics::Table::fmt(run.p95_s),
                   metrics::Table::fmt(run.p99_s), std::to_string(run.cold_starts),
                   std::to_string(run.retired)});
  }
  std::printf("%s\n", table.to_string().c_str());

  const ModeResult& sim = runs[0];
  const ModeResult& rt = runs[1];

  const bool count_ok = sim.replay.completed == rt.replay.completed &&
                        rt.replay.completed == workload->requests.size();
  const double mean_delta =
      sim.fleet_mean > 0
          ? std::abs(rt.fleet_mean - sim.fleet_mean) / sim.fleet_mean
          : 0.0;
  const bool mean_ok = mean_delta <= kMeanFleetTolerance;
  const double peak_allowance =
      std::max(2.0, kPeakFleetTolerance * sim.fleet_max);
  const bool peak_ok = std::abs(rt.fleet_max - sim.fleet_max) <= peak_allowance;

  std::printf("\nACCEPTANCE sim-vs-realtime: completions %zu vs %zu (exact): %s\n",
              sim.replay.completed, rt.replay.completed, count_ok ? "PASS" : "FAIL");
  std::printf(
      "ACCEPTANCE sim-vs-realtime: mean powered fleet %.1f vs %.1f, delta %.0f%% "
      "(tolerance %.0f%%): %s\n",
      sim.fleet_mean, rt.fleet_mean, mean_delta * 100.0, kMeanFleetTolerance * 100.0,
      mean_ok ? "PASS" : "FAIL");
  std::printf(
      "ACCEPTANCE sim-vs-realtime: peak powered fleet %.0f vs %.0f (tolerance "
      "+/-%.1f): %s\n",
      sim.fleet_max, rt.fleet_max, peak_allowance, peak_ok ? "PASS" : "FAIL");
  return (count_ok && mean_ok && peak_ok) ? 0 : 1;
}
