// Ablation E: PCIe host-link sharing. The paper's nodes put 4 GPUs behind
// one host; model uploads then contend for the host link (§II-B names
// PCIe the transfer bottleneck). This bench compares shared-per-node
// links against dedicated per-GPU links, under the upload-heavy LB
// scheduler (many misses) and the locality-preserving LALBO3 (few).
#include <cstdio>

#include "cluster/experiment.h"
#include "metrics/reporter.h"
#include "trace/workload.h"

using namespace gfaas;

int main() {
  trace::WorkloadConfig wconfig;
  wconfig.working_set_size = 35;
  auto workload = trace::build_standard_workload(wconfig);
  if (!workload.ok()) return 1;

  std::printf("=== Ablation: PCIe host-link sharing (working set 35) ===\n");
  metrics::Table table(
      {"PCIe", "Scheduler", "AvgLatency(s)", "MissRatio", "Makespan(s)"});
  for (bool shared : {true, false}) {
    for (core::PolicyName policy : {core::PolicyName::kLb, core::PolicyName::kLalbO3}) {
      cluster::ClusterConfig config;
      config.policy = policy;
      config.shared_pcie_per_node = shared;
      const auto r = cluster::run_experiment(config, *workload);
      table.add_row({shared ? "shared/node" : "dedicated", r.policy,
                     metrics::Table::fmt(r.avg_latency_s),
                     metrics::Table::fmt_percent(r.miss_ratio),
                     metrics::Table::fmt(r.makespan_s)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expectation: dedicated links help the miss-heavy LB scheduler far "
      "more than LALBO3, whose locality avoids uploads altogether.\n");
  return 0;
}
