// Table I reproduction: the 22-model catalog with occupation size in GPU
// memory, loading time, and inference latency at batch 32 — plus the
// regression fits the scheduler derives from them (§IV-A) and a live
// profiling run of the scaled-down CPU models demonstrating the paper's
// profiling procedure.
#include <cstdio>

#include "metrics/reporter.h"
#include "models/latency_model.h"
#include "models/profiler.h"
#include "models/zoo.h"

using namespace gfaas;

int main() {
  std::printf("=== Table I: models used in the evaluation ===\n");
  metrics::Table table(
      {"Model", "Size(MB)", "Loading time(s)", "Inference time(s, batch 32)"});
  for (const auto& profile : models::table1_catalog()) {
    table.add_row({profile.name, std::to_string(profile.occupation / MB(1)),
                   metrics::Table::fmt(sim_to_seconds(profile.load_time)),
                   metrics::Table::fmt(sim_to_seconds(profile.infer_time_b32))});
  }
  std::printf("%s\n", table.to_string().c_str());

  auto load_model = models::LoadTimeModel::fit(models::table1_catalog());
  if (load_model.ok()) {
    std::printf(
        "Load-time regression across the catalog (t = base + size/bandwidth):\n"
        "  base cost:          %.2f s (process start + context init)\n"
        "  implied bandwidth:  %.2f GB/s effective upload\n\n",
        sim_to_seconds(load_model->base_cost()), load_model->bandwidth_bps() / 1e9);
  }

  std::printf(
      "=== Profiling procedure demo (batch-size regression, scaled CPU models) "
      "===\n");
  metrics::Table prof({"Model", "b=1(ms)", "b=2(ms)", "b=4(ms)", "slope(ms/img)",
                       "R^2"});
  models::Profiler profiler({1, 2, 4});
  // Profile a representative model per family (full sweep is slow on CPU).
  for (const char* name : {"squeezenet1.1", "resnet18", "alexnet", "vgg11"}) {
    auto profile = models::find_model(name);
    auto result = profiler.profile(*profile, /*repeats=*/1);
    if (!result.ok()) continue;
    prof.add_row({name, metrics::Table::fmt(result->points[0].latency / 1e3),
                  metrics::Table::fmt(result->points[1].latency / 1e3),
                  metrics::Table::fmt(result->points[2].latency / 1e3),
                  metrics::Table::fmt(result->fit.slope / 1e3),
                  metrics::Table::fmt(result->fit.r_squared)});
  }
  std::printf("%s", prof.to_string().c_str());
  return 0;
}
