#include "bench_common.h"

#include <algorithm>

#include "common/log.h"

namespace gfaas::bench {

std::vector<GridCell> run_grid(const GridOptions& options) {
  std::vector<GridCell> grid;
  for (std::size_t ws : options.working_sets) {
    trace::WorkloadConfig wconfig;
    wconfig.working_set_size = ws;
    wconfig.seed = options.workload_seed;
    auto workload = trace::build_standard_workload(wconfig, options.trace_seed);
    GFAAS_CHECK(workload.ok()) << workload.status().to_string();
    for (core::PolicyName policy : options.policies) {
      cluster::ClusterConfig config;
      config.policy = policy;
      config.o3_limit = options.o3_limit;
      config.cache_policy = options.cache_policy;
      GridCell cell;
      cell.working_set = ws;
      cell.policy = policy;
      cell.result = cluster::run_experiment(config, *workload);
      grid.push_back(std::move(cell));
    }
  }
  return grid;
}

const cluster::ExperimentResult& cell(const std::vector<GridCell>& grid,
                                      std::size_t working_set,
                                      core::PolicyName policy) {
  for (const GridCell& c : grid) {
    if (c.working_set == working_set && c.policy == policy) return c.result;
  }
  GFAAS_CHECK(false) << "missing grid cell";
  __builtin_unreachable();
}

double reduction_vs_lb(const std::vector<GridCell>& grid, std::size_t working_set,
                       core::PolicyName policy,
                       double (*metric)(const cluster::ExperimentResult&)) {
  const double lb = metric(cell(grid, working_set, core::PolicyName::kLb));
  const double v = metric(cell(grid, working_set, policy));
  return lb > 0 ? (lb - v) / lb : 0.0;
}

double metric_latency(const cluster::ExperimentResult& r) { return r.avg_latency_s; }
double metric_miss_ratio(const cluster::ExperimentResult& r) { return r.miss_ratio; }
double metric_false_miss(const cluster::ExperimentResult& r) {
  return r.false_miss_ratio;
}
double metric_sm_util(const cluster::ExperimentResult& r) { return r.sm_utilization; }
double metric_duplicates(const cluster::ExperimentResult& r) {
  return r.avg_top_duplicates;
}

std::string policy_label(core::PolicyName policy) {
  return core::policy_display_name(policy);
}

std::vector<double> sorted_latencies_s(const cluster::SchedulerEngine& engine) {
  std::vector<double> latencies;
  latencies.reserve(engine.completions().size());
  for (const auto& record : engine.completions()) {
    latencies.push_back(sim_to_seconds(record.latency()));
  }
  std::sort(latencies.begin(), latencies.end());
  return latencies;
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto rank =
      static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

}  // namespace gfaas::bench
