// Micro-benchmarks (google-benchmark) for the hot components of the
// scheduling path: event queue throughput, LRU policy ops, datastore
// put/get, memory allocator churn, global-queue model-index lookups, and
// one LALBO3 scheduling decision on a loaded cluster.
#include <benchmark/benchmark.h>

#include "cache/policy.h"
#include "cluster/experiment.h"
#include "common/rng.h"
#include "datastore/kv_store.h"
#include "gpu/memory_allocator.h"
#include "sim/simulator.h"
#include "tensor/model_builder.h"
#include "trace/workload.h"

using namespace gfaas;

static void BM_SimulatorScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    int counter = 0;
    for (int i = 0; i < n; ++i) {
      sim.schedule_at((i * 7919) % 100000, [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1000)->Arg(10000);

static void BM_LruPolicyAccess(benchmark::State& state) {
  cache::LruPolicy lru;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) lru.on_insert(ModelId(i));
  Rng rng(1);
  for (auto _ : state) {
    lru.on_access(ModelId(static_cast<std::int64_t>(rng.next_below(n))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruPolicyAccess)->Arg(8)->Arg(64);

static void BM_KvStorePutGet(benchmark::State& state) {
  datastore::KvStore store;
  Rng rng(2);
  for (auto _ : state) {
    const std::string key = "gpu/" + std::to_string(rng.next_below(32)) + "/status";
    store.put(key, "busy");
    benchmark::DoNotOptimize(store.get(key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KvStorePutGet);

static void BM_AllocatorPagedChurn(benchmark::State& state) {
  gpu::MemoryAllocator alloc(GiB(8));
  Rng rng(3);
  std::vector<gpu::PagedAllocation> live;
  for (auto _ : state) {
    if (live.size() < 4 || rng.uniform() < 0.5) {
      auto paged = alloc.allocate_paged(MB(1000 + 100 * rng.next_below(30)));
      if (paged.ok()) live.push_back(*paged);
    }
    if (!live.empty() && (live.size() >= 4 || rng.uniform() < 0.5)) {
      const std::size_t idx = static_cast<std::size_t>(rng.next_below(live.size()));
      benchmark::DoNotOptimize(alloc.free_paged(live[idx]));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AllocatorPagedChurn);

static void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(4);
  tensor::Conv2d conv(3, 8, 3, 1, 1, rng);
  tensor::Tensor input = tensor::Tensor::randn({1, 3, 32, 32}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(input));
  }
}
BENCHMARK(BM_Conv2dForward);

static void BM_FullExperimentWS15(benchmark::State& state) {
  trace::WorkloadConfig wconfig;
  wconfig.working_set_size = 15;
  wconfig.window_minutes = 1;  // shortened window keeps iterations fast
  auto workload = trace::build_standard_workload(wconfig);
  for (auto _ : state) {
    cluster::ClusterConfig config;
    config.policy = core::PolicyName::kLalbO3;
    benchmark::DoNotOptimize(cluster::run_experiment(config, *workload));
  }
  state.SetItemsProcessed(state.iterations() * workload->requests.size());
}
BENCHMARK(BM_FullExperimentWS15)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
