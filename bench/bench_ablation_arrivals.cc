// Ablation D: arrival-process sensitivity. The paper distributes
// invocations uniformly within each minute; this bench stresses the
// schedulers with Poisson and bursty arrivals (same per-minute totals) to
// check that LALB/LALBO3's advantage over LB is not an artifact of smooth
// arrivals.
#include <cstdio>

#include "cluster/experiment.h"
#include "metrics/reporter.h"
#include "trace/workload.h"

using namespace gfaas;

int main() {
  std::printf("=== Ablation: arrival process (working set 25) ===\n");
  metrics::Table table(
      {"Arrivals", "Scheduler", "AvgLatency(s)", "P99(s)", "MissRatio"});
  for (trace::ArrivalProcess process :
       {trace::ArrivalProcess::kUniform, trace::ArrivalProcess::kPoisson,
        trace::ArrivalProcess::kBursty}) {
    trace::WorkloadConfig wconfig;
    wconfig.working_set_size = 25;
    wconfig.arrivals = process;
    auto workload = trace::build_standard_workload(wconfig);
    if (!workload.ok()) return 1;
    for (core::PolicyName policy : {core::PolicyName::kLb, core::PolicyName::kLalbO3}) {
      cluster::ClusterConfig config;
      config.policy = policy;
      const auto r = cluster::run_experiment(config, *workload);
      table.add_row({trace::arrival_process_name(process), r.policy,
                     metrics::Table::fmt(r.avg_latency_s),
                     metrics::Table::fmt(r.p99_latency_s),
                     metrics::Table::fmt_percent(r.miss_ratio)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expectation: LALBO3 keeps its large advantage under every arrival "
      "process; bursty arrivals raise tail latency for all schedulers.\n");
  return 0;
}
