// Cost/latency bench for the elastic fleet controller (src/autoscale).
//
// Replays a diurnal (day/night) trace against four fleets:
//   * fixed     — a peak-sized fixed fleet (the paper's setting, scaled up);
//   * reactive  — Autoscaler + ReactivePolicy (queue-pressure up, sustained
//                 idle down);
//   * keepalive — Autoscaler + KeepAlivePolicy (Azure-style windowed
//                 keep-alive capacity);
//   * predictive— Autoscaler + PredictivePolicy (demand-percentile
//                 histogram + trend forecast one cold start ahead).
// and reports, per fleet: GPU-seconds and dollar cost (powered-capacity
// integral), latency percentiles, fleet-size extremes, and cold-start /
// retirement counts, plus a sampled fleet-size timeline for every fleet.
//
// The headline trade-off this bench exists to show: on a diurnal trace an
// autoscaled fleet should save >= 30% GPU-seconds against the peak-sized
// fixed fleet while keeping p99 latency within 2x of the fixed fleet's.
// The final ACCEPTANCE lines check exactly that for the reactive policy.
//
// Usage:
//   bench_autoscale [--minutes 60] [--period 60] [--trough-rpm 40]
//                   [--peak-rpm 400] [--burst-prob 0.05] [--burst-mult 1.5]
//                   [--working-set 25] [--fixed-gpus 20] [--min-gpus 4]
//                   [--max-gpus 24] [--cold-start-s 20] [--interval-s 5]
//                   [--keep-alive-s 120]
//
// The CI Release job smoke-runs a small fleet / short trace configuration
// so the subsystem and this harness cannot rot.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "autoscale/autoscaler.h"
#include "bench_common.h"
#include "cluster/experiment.h"
#include "common/log.h"
#include "metrics/fleet.h"
#include "metrics/reporter.h"
#include "trace/workload.h"

using namespace gfaas;

namespace {

struct Options {
  std::int64_t minutes = 60;
  std::int64_t period = 60;
  std::int64_t trough_rpm = 40;
  std::int64_t peak_rpm = 400;
  double burst_prob = 0.05;
  double burst_mult = 1.5;
  std::size_t working_set = 25;
  std::size_t fixed_gpus = 20;
  std::size_t min_gpus = 4;
  std::size_t max_gpus = 24;
  SimTime cold_start = sec(20);
  SimTime interval = sec(5);
  SimTime keep_alive = sec(120);
};

bool parse_args(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      GFAAS_CHECK(i + 1 < argc) << "missing value for " << flag;
      return argv[++i];
    };
    if (flag == "--minutes") {
      options->minutes = std::atoll(next());
    } else if (flag == "--period") {
      options->period = std::atoll(next());
    } else if (flag == "--trough-rpm") {
      options->trough_rpm = std::atoll(next());
    } else if (flag == "--peak-rpm") {
      options->peak_rpm = std::atoll(next());
    } else if (flag == "--burst-prob") {
      options->burst_prob = std::atof(next());
    } else if (flag == "--burst-mult") {
      options->burst_mult = std::atof(next());
    } else if (flag == "--working-set") {
      options->working_set = static_cast<std::size_t>(std::atoll(next()));
    } else if (flag == "--fixed-gpus") {
      options->fixed_gpus = static_cast<std::size_t>(std::atoll(next()));
    } else if (flag == "--min-gpus") {
      options->min_gpus = static_cast<std::size_t>(std::atoll(next()));
    } else if (flag == "--max-gpus") {
      options->max_gpus = static_cast<std::size_t>(std::atoll(next()));
    } else if (flag == "--cold-start-s") {
      options->cold_start = sec(std::atoll(next()));
    } else if (flag == "--interval-s") {
      options->interval = sec(std::atoll(next()));
    } else if (flag == "--keep-alive-s") {
      options->keep_alive = sec(std::atoll(next()));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return options->minutes > 0 && options->trough_rpm >= 0 &&
         options->peak_rpm >= options->trough_rpm && options->fixed_gpus >= 1 &&
         options->min_gpus >= 1 && options->max_gpus >= options->min_gpus;
}

struct RunResult {
  std::string name;
  std::size_t completed = 0;
  double p50_s = 0, p95_s = 0, p99_s = 0, avg_s = 0;
  double gpu_seconds = 0;
  double cost = 0;
  double fleet_min = 0, fleet_mean = 0, fleet_max = 0;
  std::int64_t cold_starts = 0, retired = 0;
  metrics::StepTimeline powered;
};

void fill_latencies(const cluster::SchedulerEngine& engine, RunResult* run) {
  const std::vector<double> latencies = bench::sorted_latencies_s(engine);
  double sum = 0;
  for (double latency : latencies) sum += latency;
  run->completed = latencies.size();
  run->p50_s = bench::percentile(latencies, 0.50);
  run->p95_s = bench::percentile(latencies, 0.95);
  run->p99_s = bench::percentile(latencies, 0.99);
  run->avg_s = latencies.empty() ? 0 : sum / static_cast<double>(latencies.size());
}

cluster::ClusterConfig one_gpu_per_node(std::size_t gpus) {
  // Every fleet uses single-GPU nodes with dedicated PCIe links, matching
  // what the autoscaler provisions, so fixed vs elastic is apples to
  // apples on the transfer path.
  cluster::ClusterConfig config;
  config.nodes = static_cast<int>(gpus);
  config.gpus_per_node = 1;
  config.shared_pcie_per_node = false;
  return config;
}

RunResult run_fixed(const Options& options, const trace::Workload& workload,
                    const metrics::GpuCostModel& cost_model) {
  cluster::SimCluster cluster(one_gpu_per_node(options.fixed_gpus),
                              workload.registry);
  const SimTime makespan = cluster.replay(workload.requests);
  RunResult run;
  run.name = "fixed-" + std::to_string(options.fixed_gpus);
  fill_latencies(cluster.engine(), &run);
  run.powered.set(0, static_cast<double>(options.fixed_gpus));
  run.gpu_seconds = run.powered.value_seconds(makespan);
  run.cost = cost_model.cost(run.gpu_seconds);
  run.fleet_min = run.fleet_mean = run.fleet_max =
      static_cast<double>(options.fixed_gpus);
  return run;
}

RunResult run_autoscaled(const Options& options, const trace::Workload& workload,
                         const metrics::GpuCostModel& cost_model,
                         std::unique_ptr<autoscale::ScalingPolicy> policy) {
  autoscale::AutoscalerConfig config;
  config.evaluation_interval = options.interval;
  config.cold_start = options.cold_start;
  config.min_gpus = options.min_gpus;
  config.max_gpus = options.max_gpus;

  cluster::SimCluster cluster(one_gpu_per_node(options.min_gpus), workload.registry);
  RunResult run;
  run.name = policy->name();
  autoscale::Autoscaler scaler(&cluster, std::move(policy), config);

  for (const core::Request& req : workload.requests) {
    cluster.simulator().schedule_at(req.arrival,
                                    [&cluster, req] { cluster.engine().submit(req); });
  }
  scaler.start(workload.requests.empty() ? 0 : workload.requests.back().arrival);
  cluster.simulator().run();
  scaler.finalize();
  GFAAS_CHECK(cluster.engine().pending() == 0)
      << cluster.engine().pending() << " requests stranded";

  fill_latencies(cluster.engine(), &run);
  const SimTime end = cluster.simulator().now();
  run.powered = scaler.powered_timeline();
  run.gpu_seconds = scaler.gpu_seconds(end);
  run.cost = cost_model.cost(run.gpu_seconds);
  run.fleet_min = run.powered.min_value();
  run.fleet_mean = run.powered.time_weighted_mean(end);
  run.fleet_max = run.powered.max_value();
  run.cold_starts = scaler.counters().gpus_added;
  run.retired = scaler.counters().gpus_retired;
  return run;
}

void print_timelines(const std::vector<RunResult>& runs, SimTime window) {
  const SimTime step = std::max<SimTime>(minutes(1), window / 12);
  std::printf("Fleet-size timeline (powered GPUs, sampled every %lld min):\n",
              static_cast<long long>(step / minutes(1)));
  std::printf("  %-12s", "t(min)");
  for (SimTime t = 0; t <= window; t += step) {
    std::printf("%6lld", static_cast<long long>(t / minutes(1)));
  }
  std::printf("\n");
  for (const RunResult& run : runs) {
    std::printf("  %-12s", run.name.c_str());
    for (SimTime t = 0; t <= window; t += step) {
      std::printf("%6.0f", run.powered.value_at(t));
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, &options)) return 1;

  trace::WorkloadConfig wconfig;
  wconfig.working_set_size = options.working_set;
  trace::DiurnalConfig diurnal;
  diurnal.window_minutes = options.minutes;
  diurnal.period_minutes = options.period;
  diurnal.trough_rpm = options.trough_rpm;
  diurnal.peak_rpm = options.peak_rpm;
  diurnal.burst_probability = options.burst_prob;
  diurnal.burst_multiplier = options.burst_mult;
  auto workload = trace::build_diurnal_workload(wconfig, diurnal);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n", workload.status().to_string().c_str());
    return 1;
  }

  std::printf(
      "=== Autoscale: %lld min diurnal window (trough %lld rpm, peak %lld rpm), "
      "%zu requests, working set %zu ===\n",
      static_cast<long long>(options.minutes),
      static_cast<long long>(options.trough_rpm),
      static_cast<long long>(options.peak_rpm), workload->requests.size(),
      options.working_set);

  const metrics::GpuCostModel cost_model;
  std::vector<RunResult> runs;
  runs.push_back(run_fixed(options, *workload, cost_model));
  runs.push_back(run_autoscaled(options, *workload, cost_model,
                                std::make_unique<autoscale::ReactivePolicy>()));
  autoscale::KeepAlivePolicyConfig keep_alive;
  keep_alive.keep_alive = options.keep_alive;
  runs.push_back(
      run_autoscaled(options, *workload, cost_model,
                     std::make_unique<autoscale::KeepAlivePolicy>(keep_alive)));
  autoscale::PredictivePolicyConfig predictive;
  predictive.lead_time = options.cold_start;
  runs.push_back(
      run_autoscaled(options, *workload, cost_model,
                     std::make_unique<autoscale::PredictivePolicy>(predictive)));

  metrics::Table table({"Fleet", "Done", "GPUs(min/mean/max)", "GPU-s", "Cost($)",
                        "Avg(s)", "p50(s)", "p95(s)", "p99(s)", "Cold", "Retired"});
  for (const RunResult& run : runs) {
    table.add_row({run.name, std::to_string(run.completed),
                   metrics::Table::fmt(run.fleet_min, 0) + "/" +
                       metrics::Table::fmt(run.fleet_mean, 1) + "/" +
                       metrics::Table::fmt(run.fleet_max, 0),
                   metrics::Table::fmt(run.gpu_seconds, 0),
                   metrics::Table::fmt(run.cost), metrics::Table::fmt(run.avg_s),
                   metrics::Table::fmt(run.p50_s), metrics::Table::fmt(run.p95_s),
                   metrics::Table::fmt(run.p99_s), std::to_string(run.cold_starts),
                   std::to_string(run.retired)});
  }
  std::printf("%s\n", table.to_string().c_str());

  print_timelines(runs, minutes(options.minutes));

  const RunResult& fixed = runs[0];
  const RunResult& reactive = runs[1];
  const double saving = 1.0 - reactive.gpu_seconds / fixed.gpu_seconds;
  const double p99_ratio = fixed.p99_s > 0 ? reactive.p99_s / fixed.p99_s : 0;
  std::printf("\nACCEPTANCE reactive-vs-fixed: GPU-seconds saving %.1f%% (target >= "
              "30%%): %s\n",
              saving * 100.0, saving >= 0.30 ? "PASS" : "FAIL");
  std::printf("ACCEPTANCE reactive-vs-fixed: p99 ratio %.2fx (target <= 2x): %s\n",
              p99_ratio, p99_ratio <= 2.0 ? "PASS" : "FAIL");
  return (saving >= 0.30 && p99_ratio <= 2.0) ? 0 : 1;
}
