// Ablation C (paper §VI "Heterogeneity of GPUs"): the scheduler consumes
// per-GPU-type profiled load/inference times, so heterogeneous clusters
// work unchanged. Compares a homogeneous RTX 2080 cluster against mixed
// clusters where nodes carry faster / larger-memory GPU types.
#include <cstdio>

#include "cluster/experiment.h"
#include "gpu/gpu_spec.h"
#include "metrics/reporter.h"
#include "trace/workload.h"

using namespace gfaas;

int main() {
  trace::WorkloadConfig wconfig;
  wconfig.working_set_size = 25;
  auto workload = trace::build_standard_workload(wconfig);
  if (!workload.ok()) return 1;

  struct Setup {
    const char* name;
    std::vector<gpu::GpuSpec> specs;
  };
  const Setup setups[] = {
      {"3x rtx2080", {gpu::rtx2080()}},
      {"2x rtx2080 + 1x rtx2080ti", {gpu::rtx2080(), gpu::rtx2080(), gpu::rtx2080ti()}},
      {"2x rtx2080 + 1x a100-like", {gpu::rtx2080(), gpu::rtx2080(), gpu::a100_like()}},
      {"3x a100-like", {gpu::a100_like()}},
  };

  std::printf("=== Ablation: heterogeneous GPU types (LALBO3, working set 25) ===\n");
  metrics::Table table({"Cluster", "AvgLatency(s)", "MissRatio", "SM-Util"});
  for (const Setup& setup : setups) {
    cluster::ClusterConfig config;
    config.policy = core::PolicyName::kLalbO3;
    config.node_specs = setup.specs;
    const auto r = cluster::run_experiment(config, *workload);
    table.add_row({setup.name, metrics::Table::fmt(r.avg_latency_s),
                   metrics::Table::fmt_percent(r.miss_ratio),
                   metrics::Table::fmt_percent(r.sm_utilization)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expectation: adding faster / larger-memory GPU types lowers latency "
      "and miss ratio monotonically; scheduling needs no changes (§VI).\n");
  return 0;
}
