// Telemetry overhead gate: the live-telemetry seam must be close to
// free when attached and exactly free when detached.
//
// Three acceptance phases, non-zero exit on any miss:
//
//   1. Throughput — the bench_ingest_throughput 8-producer MPSC path
//      (saturated admission window, frozen engine) is run plain vs
//      instrumented (Gateway + ConcurrentIngress telemetry attached),
//      interleaved best-of-N. The instrumented path must sustain at
//      least (1 - --max-regression) of the plain req/s (default 3%;
//      CI smoke relaxes to 5% with --max-regression 0.05).
//
//   2. Allocations — a global operator-new counter over the same
//      measured windows: the record path (counter bumps + sampled span
//      ring writes) must add ZERO heap allocations per request; all
//      telemetry allocation happens at wiring time.
//
//   3. Digest — one in-process grid slice (working set 15 x
//      LB/LALB/LALBO3, batched gateway ingestion) rendered to the
//      bench_seed_digest hexfloat + FNV-1a format, plain vs
//      telemetry-attached. The two strings must be byte-identical:
//      telemetry only observes, it never consumes RNG or reorders
//      events.
//
// Usage:
//   bench_telemetry_overhead [--requests 40000] [--producers 8]
//                            [--iters 3] [--max-regression 0.03]
//                            [--gpus 8] [--capacity 4096] [--models 3]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <limits>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "cluster/experiment.h"
#include "cluster/realtime_cluster.h"
#include "common/log.h"
#include "concurrent/callback_executor.h"
#include "gateway/ingress.h"
#include "models/zoo.h"
#include "telemetry/telemetry.h"
#include "trace/workload.h"

// ---------------------------------------------------------------------------
// Global allocation counter: every heap allocation in the process bumps
// one relaxed atomic (same guard as bench_ingest_throughput).
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

// malloc-backed replacement new + free-backed delete is correct, but
// GCC's -O2 call-site analysis models `new` as its builtin allocator and
// flags the inlined free() as mismatched. False positive; scoped off for
// this TU (same suppression as bench_ingest_throughput).
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace gfaas::bench {
namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  std::int64_t requests = 40000;
  int producers = 8;
  int iters = 3;
  double max_regression = 0.03;
  int gpus = 8;
  std::size_t capacity = 4096;
  int models = 3;
};

struct RunResult {
  double rps = 0;
  double allocs_per_req = 0;
};

core::Request make_request(std::int64_t id, std::int64_t model) {
  core::Request request;
  request.id = RequestId(id);
  request.function = FunctionId(id);
  request.model = ModelId(model);
  request.batch = 32;
  request.function_name = "f";
  return request;
}

// One measured MPSC ingestion run — the bench_ingest_throughput
// saturated-window setup, with the telemetry seam optionally attached.
RunResult run_once(const Options& options, bool with_telemetry) {
  const std::int64_t total = options.requests;
  const int producers = options.producers;
  cluster::ClusterConfig config;
  config.nodes = 2;
  config.gpus_per_node = (options.gpus + 1) / 2;
  config.policy = core::PolicyName::kLb;
  models::ModelRegistry registry;
  const auto& catalog = models::table1_catalog();
  GFAAS_CHECK(options.models <= static_cast<int>(catalog.size()));
  for (int m = 0; m < options.models; ++m) {
    GFAAS_CHECK(registry.register_model(catalog[static_cast<std::size_t>(m)]).ok());
  }

  auto cluster = std::make_unique<cluster::RealTimeCluster>(
      config, registry, /*time_scale=*/1.0);
  const int warm_count = 2 * options.gpus;
  gateway::GatewayConfig gconfig;
  gconfig.max_in_flight = static_cast<std::size_t>(warm_count);
  gconfig.max_pending = std::numeric_limits<std::size_t>::max();
  gconfig.default_slo = 0;  // no deadlines: nothing sheds or expires
  auto gateway = std::make_unique<gateway::Gateway>(cluster.get(), gconfig);
  auto callbacks = std::make_unique<concurrent::CallbackExecutor>();
  gateway->set_callback_executor(callbacks.get());
  auto ingress = std::make_unique<gateway::ConcurrentIngress>(
      gateway.get(), &cluster->executor(), options.capacity);
  auto tel = std::make_unique<telemetry::Telemetry>();
  if (with_telemetry) {
    gateway->set_telemetry(tel.get());
    ingress->set_telemetry(tel.get());
  }
  sim::Executor& executor = cluster->executor();
  gateway::ResultCallback on_done = [](const gateway::GatewayResult& result) {
    GFAAS_CHECK(result.disposition == gateway::Disposition::kCompleted);
  };

  auto on_worker = [&executor](auto fn) {
    using R = decltype(fn());
    std::promise<R> promise;
    auto future = promise.get_future();
    executor.post([&promise, &fn] { promise.set_value(fn()); });
    return future.get();
  };

  // Warmup: park multi-second model loads on every GPU and fill the
  // admission window, so every measured submission pays the full
  // shed-vs-queue ingestion path with frozen engine state.
  for (int g = 0; g < warm_count; ++g) {
    core::Request warm = make_request(total + g, g % options.models);
    executor.post([&gateway, warm = std::move(warm), on_done]() mutable {
      gateway->submit(std::move(warm), on_done);
    });
  }
  const std::size_t idle =
      on_worker([&cluster] { return cluster->engine().idle_gpu_count(); });
  GFAAS_CHECK(idle == 0) << idle << " GPUs still idle after warmup";
  const std::int64_t admitted =
      on_worker([&gateway] { return gateway->counters().admitted; });
  GFAAS_CHECK(admitted == warm_count)
      << "admission window not saturated: " << admitted << "/" << warm_count;

  // ---- measured window ----
  const std::int64_t per_producer = total / producers;
  const std::int64_t measured = per_producer * producers;
  std::atomic<bool> start{false};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(producers));
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      while (!start.load()) std::this_thread::yield();
      for (std::int64_t i = 0; i < per_producer; ++i) {
        const std::int64_t id = static_cast<std::int64_t>(p) * per_producer + i;
        gateway::Submission cell{make_request(id, id % options.models), on_done};
        while (!ingress->try_submit(cell)) std::this_thread::yield();
      }
    });
  }
  const std::uint64_t allocs_before = g_allocs.load(std::memory_order_relaxed);
  const auto wall_start = Clock::now();
  start.store(true);
  for (auto& t : threads) t.join();
  std::int64_t submitted =
      on_worker([&gateway] { return gateway->counters().submitted; });
  while (submitted < measured + warm_count) {
    submitted = on_worker([&gateway] { return gateway->counters().submitted; });
  }
  const auto wall_end = Clock::now();
  const std::uint64_t allocs_after = g_allocs.load(std::memory_order_relaxed);

  RunResult result;
  const double elapsed_s =
      std::chrono::duration<double>(wall_end - wall_start).count();
  result.rps = static_cast<double>(measured) / elapsed_s;
  result.allocs_per_req = static_cast<double>(allocs_after - allocs_before) /
                          static_cast<double>(measured);
  if (with_telemetry) {
    GFAAS_CHECK(static_cast<std::int64_t>(
                    tel->metrics().snapshot().value("gateway.submitted")) ==
                measured + warm_count)
        << "telemetry lost submissions";
  }

  cluster.reset();
  ingress.reset();
  gateway.reset();
  callbacks.reset();
  return result;
}

// ---------------------------------------------------------------------------
// Digest phase: bench_seed_digest's per-cell rendering, in-process.
// ---------------------------------------------------------------------------

class Fnv1a {
 public:
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xff;
      hash_ *= 0x100000001b3ull;
    }
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

std::uint64_t completion_digest(const std::vector<core::CompletionRecord>& records) {
  Fnv1a fnv;
  for (const auto& r : records) {
    fnv.add(static_cast<std::uint64_t>(r.id.value()));
    fnv.add(static_cast<std::uint64_t>(r.gpu.value()));
    fnv.add(static_cast<std::uint64_t>(r.arrival));
    fnv.add(static_cast<std::uint64_t>(r.dispatched));
    fnv.add(static_cast<std::uint64_t>(r.completed));
    fnv.add((r.cache_hit ? 1u : 0u) | (r.false_miss ? 2u : 0u) |
            (r.via_local_queue ? 4u : 0u));
  }
  return fnv.value();
}

cluster::BatchIngestFactory gateway_batch_ingest(bool with_telemetry) {
  return [with_telemetry](cluster::ElasticCluster& cluster) {
    gateway::GatewayConfig config;
    config.max_in_flight = std::numeric_limits<std::size_t>::max();
    config.default_slo = 0;
    auto gw = std::make_shared<gateway::Gateway>(&cluster, config);
    std::shared_ptr<telemetry::Telemetry> tel;
    if (with_telemetry) {
      tel = std::make_shared<telemetry::Telemetry>();
      gw->set_telemetry(tel.get());
    }
    return [gw, tel](std::vector<core::Request> burst) {
      std::vector<gateway::Submission> cells;
      cells.reserve(burst.size());
      for (core::Request& request : burst) {
        cells.push_back(gateway::Submission{
            std::move(request), [](const gateway::GatewayResult& result) {
              GFAAS_CHECK(result.disposition == gateway::Disposition::kCompleted);
            }});
      }
      gw->submit_batch(std::move(cells));
    };
  };
}

// The seed grid's working-set-15 slice across all three schedulers,
// batched through the gateway, rendered exactly as bench_seed_digest
// prints it. Any byte of drift between the plain and instrumented
// renderings is a behavior change introduced by telemetry.
std::string digest_slice(bool with_telemetry) {
  std::string out;
  char line[256];
  trace::WorkloadConfig wconfig;
  wconfig.working_set_size = 15;
  wconfig.seed = 7;
  auto workload = trace::build_standard_workload(wconfig, /*trace_seed=*/42);
  GFAAS_CHECK(workload.ok()) << workload.status().to_string();
  for (core::PolicyName policy :
       {core::PolicyName::kLb, core::PolicyName::kLalb, core::PolicyName::kLalbO3}) {
    cluster::ClusterConfig config;
    config.policy = policy;
    config.o3_limit = 25;
    std::vector<core::CompletionRecord> records;
    const auto r = cluster::run_experiment_batched(
        config, *workload, &records, gateway_batch_ingest(with_telemetry));
    std::snprintf(line, sizeof(line), "policy=%s requests=%zu\n",
                  r.policy.c_str(), r.requests);
    out += line;
    std::snprintf(line, sizeof(line),
                  "  avg_latency_s=%a variance=%a p50=%a p95=%a p99=%a\n",
                  r.avg_latency_s, r.latency_variance_s2, r.p50_latency_s,
                  r.p95_latency_s, r.p99_latency_s);
    out += line;
    std::snprintf(line, sizeof(line), "  miss=%a false_miss=%a sm_util=%a dup=%a\n",
                  r.miss_ratio, r.false_miss_ratio, r.sm_utilization,
                  r.avg_top_duplicates);
    out += line;
    std::snprintf(line, sizeof(line), "  completion_digest=%016llx\n",
                  static_cast<unsigned long long>(completion_digest(records)));
    out += line;
  }
  return out;
}

int run(const Options& options) {
  int failures = 0;

  // Phase 1+2: interleaved best-of-N throughput + allocation guard.
  double best_plain_rps = 0, best_instr_rps = 0;
  double min_plain_allocs = std::numeric_limits<double>::max();
  double min_instr_allocs = std::numeric_limits<double>::max();
  for (int i = 0; i < options.iters; ++i) {
    const RunResult plain = run_once(options, /*with_telemetry=*/false);
    const RunResult instr = run_once(options, /*with_telemetry=*/true);
    std::printf("iter=%d plain_rps=%.0f instr_rps=%.0f plain_allocs=%.3f "
                "instr_allocs=%.3f\n",
                i, plain.rps, instr.rps, plain.allocs_per_req,
                instr.allocs_per_req);
    best_plain_rps = std::max(best_plain_rps, plain.rps);
    best_instr_rps = std::max(best_instr_rps, instr.rps);
    min_plain_allocs = std::min(min_plain_allocs, plain.allocs_per_req);
    min_instr_allocs = std::min(min_instr_allocs, instr.allocs_per_req);
  }
  const double regression =
      best_plain_rps > 0 ? 1.0 - best_instr_rps / best_plain_rps : 1.0;
  const bool throughput_ok = regression <= options.max_regression;
  std::printf("ACCEPTANCE telemetry throughput cost <= %.1f%% "
              "(best plain %.0f vs instrumented %.0f rps, %.2f%%): %s\n",
              options.max_regression * 100.0, best_plain_rps, best_instr_rps,
              regression * 100.0, throughput_ok ? "PASS" : "FAIL");
  if (!throughput_ok) ++failures;

  // The record path may not allocate: the instrumented run's minimum
  // allocations/request must not exceed the plain run's by a rounding
  // hair (wiring-time allocation happens before the measured window).
  const double alloc_delta = min_instr_allocs - min_plain_allocs;
  const bool allocs_ok = alloc_delta <= 0.01;
  std::printf("ACCEPTANCE record path allocation-free "
              "(plain %.3f vs instrumented %.3f allocs/request, delta %.3f): %s\n",
              min_plain_allocs, min_instr_allocs, alloc_delta,
              allocs_ok ? "PASS" : "FAIL");
  if (!allocs_ok) ++failures;

  // Phase 3: behavior-preservation digest.
  const std::string plain_digest = digest_slice(/*with_telemetry=*/false);
  const std::string instr_digest = digest_slice(/*with_telemetry=*/true);
  const bool digest_ok = plain_digest == instr_digest;
  std::printf("ACCEPTANCE digest byte-identical with telemetry attached: %s\n",
              digest_ok ? "PASS" : "FAIL");
  if (!digest_ok) {
    std::fprintf(stderr, "--- plain ---\n%s--- instrumented ---\n%s",
                 plain_digest.c_str(), instr_digest.c_str());
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace gfaas::bench

int main(int argc, char** argv) {
  gfaas::bench::Options options;
  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) != 0) return nullptr;
      GFAAS_CHECK(i + 1 < argc) << flag << " needs a value";
      return argv[++i];
    };
    if (const char* v = value("--requests")) {
      options.requests = std::atoll(v);
    } else if (const char* v = value("--producers")) {
      options.producers = std::atoi(v);
    } else if (const char* v = value("--iters")) {
      options.iters = std::atoi(v);
    } else if (const char* v = value("--max-regression")) {
      options.max_regression = std::atof(v);
    } else if (const char* v = value("--gpus")) {
      options.gpus = std::atoi(v);
    } else if (const char* v = value("--capacity")) {
      options.capacity = static_cast<std::size_t>(std::atoll(v));
    } else if (const char* v = value("--models")) {
      options.models = std::atoi(v);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  GFAAS_CHECK(options.producers >= 1 && options.iters >= 1 &&
              options.requests >= options.producers);
  return gfaas::bench::run(options);
}
