// Sharded-tier scaling bench (the ISSUE 10 acceptance gate).
//
// Sweeps shard counts (default 1 / 4 / 16) over one large fleet and one
// large workload (defaults: 1024 GPUs, 1.2M requests), replaying the
// IDENTICAL request stream through shard::run_sharded_experiment each
// time. Reported per row: aggregate throughput, the wall-clock
// decomposition behind it, latency percentiles, steal activity, and the
// shed rate (identically zero here — direct engine ingestion never
// sheds — so rows are compared at equal shed rates by construction).
//
// Throughput uses the critical-path model: an epoch costs its SLOWEST
// shard's measured wall time (what the epoch costs when every shard has
// its own core — shards share nothing mid-epoch, so they are perfectly
// parallel by construction), plus the orchestrator's serial routing /
// injection / steal work between barriers. That makes the metric a
// property of the partitioning, not of how many cores this host happens
// to have:
//
//   throughput(N) = requests / (critical_path_s(N) + serial_s(N))
//
// Sharding wins twice over: each shard sees ~1/N of the requests AND
// scans an ~1/N-size GPU partition per scheduling decision, so per-shard
// work shrinks superlinearly while the model-affinity router keeps each
// model's warm copies on one shard (cache behavior survives the split).
//
// Acceptance (non-zero exit on miss):
//   * throughput(4)  >= --floor4  (default 2.5) x throughput(1);
//   * throughput(16) >= --floor16 (default 6.0) x throughput(1);
//   * p99 holds at matched per-shard load: for every N > 1, p99 with the
//     steal balancer on <= --p99-slack (default 1.10) x p99 of the SAME
//     partitioning with stealing off (each partition as its own
//     single-shard cluster at the identical per-shard load — the tier
//     must not cost latency over independent shards; in practice
//     stealing improves it severalfold). p99 vs the monolithic 1-shard
//     pool is reported for reference but not gated: a 1/N partition has
//     1/N of the statistical multiplexing, which is the price already
//     accepted by partitioning, not a property of this tier.
//   * every row completes every request (zero shed at every N).
//
// Wall-clock rows take the min over --reps (default 3) repetitions —
// the sim results are bit-identical across reps; only the wall-clock
// measurement varies, and min is its low-noise estimator.
//
// --json (default BENCH_sharded_scale.json) gets the machine-readable
// rows; CI smoke-runs this bench on a reduced fleet (see ci.yml).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/log.h"
#include "shard/experiment.h"
#include "trace/workload.h"

namespace gfaas::bench {
namespace {

struct Options {
  std::vector<int> shard_counts = {1, 4, 16};
  int gpus = 1024;
  std::size_t working_set = 256;
  // ~75% fleet utilization at 1024 GPUs (Table I batch-32 inference
  // times average ~1.28s/request -> ~0.78 req/s per GPU), 32 minutes ->
  // 1.056M requests.
  std::int64_t rpm = 33000;
  std::int64_t minutes = 32;
  std::int64_t epoch_ms = 500;
  int threads = 1;
  int reps = 3;
  double spread = 2.0;
  int virtual_nodes = 64;
  double floor4 = 2.5;
  double floor16 = 6.0;
  double p99_slack = 1.10;
  std::string json = "BENCH_sharded_scale.json";
};

struct Row {
  int shards = 0;
  double throughput_rps = 0;
  double critical_path_s = 0;
  double serial_s = 0;
  double total_work_s = 0;
  double p99_s = 0;
  double p99_nosteal_s = 0;
  double avg_latency_s = 0;
  double miss_ratio = 0;
  std::int64_t steals = 0;
  std::int64_t evacuations = 0;
  std::int64_t max_steal_hops = 0;
  std::size_t epochs = 0;
  std::size_t requests = 0;
  std::int64_t shed = 0;
};

Row run_row(const Options& options, const trace::Workload& workload, int shards,
            bool steal) {
  cluster::ClusterConfig config;
  config.gpus_per_node = 4;
  config.nodes = (options.gpus + config.gpus_per_node - 1) / config.gpus_per_node;

  shard::ShardedOptions sopts;
  sopts.epoch = msec(options.epoch_ms);
  sopts.threads = options.threads;
  sopts.hot_model_spread = options.spread;
  sopts.router.virtual_nodes = options.virtual_nodes;
  sopts.steal.enabled = steal;

  std::vector<core::CompletionRecord> completions;
  const auto result = shard::run_sharded_experiment(
      config, static_cast<std::size_t>(shards), workload, sopts, &completions);

  Row row;
  row.shards = shards;
  row.requests = result.result.requests;
  row.miss_ratio = result.result.miss_ratio;
  for (const auto& record : completions) {
    row.max_steal_hops =
        std::max(row.max_steal_hops, static_cast<std::int64_t>(record.steal_hops));
  }
  // Direct engine ingestion queues everything; nothing sheds. The row
  // still reports it so the equal-shed-rate comparison is explicit.
  row.shed = static_cast<std::int64_t>(workload.requests.size()) -
             static_cast<std::int64_t>(result.result.requests);
  row.critical_path_s = static_cast<double>(result.stats.critical_path_ns) / 1e9;
  row.serial_s = static_cast<double>(result.stats.serial_ns) / 1e9;
  row.total_work_s = static_cast<double>(result.stats.total_work_ns) / 1e9;
  row.throughput_rps = static_cast<double>(row.requests) /
                       (row.critical_path_s + row.serial_s);
  row.p99_s = result.result.p99_latency_s;
  row.avg_latency_s = result.result.avg_latency_s;
  row.steals = result.stats.steals;
  row.evacuations = result.stats.evacuations;
  row.epochs = result.stats.epochs;
  return row;
}

void print_row(const Row& row) {
  std::printf(
      "shards=%d requests=%zu throughput_rps=%.0f critical_path_s=%.3f "
      "serial_s=%.3f total_work_s=%.3f p99_s=%.4f p99_nosteal_s=%.4f "
      "avg_s=%.4f miss=%.4f "
      "steals=%lld max_hops=%lld evacuations=%lld epochs=%zu shed=%lld\n",
      row.shards, row.requests, row.throughput_rps, row.critical_path_s,
      row.serial_s, row.total_work_s, row.p99_s, row.p99_nosteal_s,
      row.avg_latency_s,
      row.miss_ratio, static_cast<long long>(row.steals),
      static_cast<long long>(row.max_steal_hops),
      static_cast<long long>(row.evacuations), row.epochs,
      static_cast<long long>(row.shed));
}

int run(const Options& options) {
  trace::WorkloadConfig wconfig;
  wconfig.working_set_size = options.working_set;
  wconfig.window_minutes = options.minutes;
  wconfig.requests_per_minute = options.rpm;
  auto workload = trace::build_standard_workload(wconfig);
  GFAAS_CHECK(workload.ok()) << workload.status().to_string();
  std::printf("fleet=%d gpus, workload=%zu requests, working_set=%zu, "
              "epoch_ms=%lld, threads=%d\n",
              options.gpus, workload->requests.size(), options.working_set,
              static_cast<long long>(options.epoch_ms), options.threads);

  std::vector<Row> rows;
  for (int shards : options.shard_counts) {
    Row row = run_row(options, *workload, shards, true);
    for (int rep = 1; rep < options.reps; ++rep) {
      const Row again = run_row(options, *workload, shards, true);
      if (again.critical_path_s + again.serial_s <
          row.critical_path_s + row.serial_s) {
        row.critical_path_s = again.critical_path_s;
        row.serial_s = again.serial_s;
        row.total_work_s = again.total_work_s;
        row.throughput_rps = again.throughput_rps;
      }
    }
    if (shards > 1) {
      // Matched per-shard load comparator: identical partitioning and
      // routing, no balancer — each partition is its own single-shard
      // cluster at the same per-shard load.
      const Row off = run_row(options, *workload, shards, false);
      row.p99_nosteal_s = off.p99_s;
    }
    rows.push_back(row);
    print_row(rows.back());
  }

  const Row* base = nullptr;
  for (const Row& row : rows) {
    if (row.shards == 1) base = &row;
  }
  GFAAS_CHECK(base != nullptr) << "the sweep must include the 1-shard baseline";

  int failures = 0;
  for (const Row& row : rows) {
    if (row.shed != 0) {
      std::printf("FAIL shards=%d shed %lld requests (rows must compare at "
                  "equal shed rates)\n",
                  row.shards, static_cast<long long>(row.shed));
      ++failures;
    }
    if (row.shards != 1) {
      // The gated p99 comparison: the tier (balancer on) vs independent
      // partitions at matched per-shard load (balancer off).
      if (row.p99_s > row.p99_nosteal_s * options.p99_slack) {
        std::printf(
            "FAIL shards=%d p99 %.4fs exceeds %.2f x %.4fs (same partitions, "
            "steal off)\n",
            row.shards, row.p99_s, options.p99_slack, row.p99_nosteal_s);
        ++failures;
      }
      std::printf("shards=%d p99 vs monolithic 1-shard pool: %.4fs vs %.4fs "
                  "(informational)\n",
                  row.shards, row.p99_s, base->p99_s);
    }
    double floor = 0;
    if (row.shards == 4) floor = options.floor4;
    if (row.shards == 16) floor = options.floor16;
    const double speedup = row.throughput_rps / base->throughput_rps;
    if (row.shards != 1) {
      std::printf("shards=%d speedup=%.2fx%s\n", row.shards, speedup,
                  floor > 0 ? "" : " (informational)");
    }
    if (floor > 0 && speedup < floor) {
      std::printf("FAIL shards=%d speedup %.2fx below floor %.2fx\n",
                  row.shards, speedup, floor);
      ++failures;
    }
  }

  if (!options.json.empty()) {
    FILE* out = std::fopen(options.json.c_str(), "w");
    GFAAS_CHECK(out != nullptr) << "cannot write " << options.json;
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"sharded_scale\",\n"
                 "  \"gpus\": %d,\n"
                 "  \"requests\": %zu,\n"
                 "  \"working_set\": %zu,\n"
                 "  \"epoch_ms\": %lld,\n"
                 "  \"rows\": [\n",
                 options.gpus, workload->requests.size(), options.working_set,
                 static_cast<long long>(options.epoch_ms));
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(out,
                   "    {\"shards\": %d, \"throughput_rps\": %.1f, "
                   "\"speedup\": %.3f, \"critical_path_s\": %.4f, "
                   "\"serial_s\": %.4f, \"total_work_s\": %.4f, "
                   "\"p99_s\": %.5f, \"p99_nosteal_s\": %.5f, "
                   "\"avg_latency_s\": %.5f, "
                   "\"miss_ratio\": %.5f, \"steals\": %lld, "
                   "\"max_steal_hops\": %lld, \"evacuations\": %lld, "
                   "\"epochs\": %zu, \"shed\": %lld}%s\n",
                   row.shards, row.throughput_rps,
                   row.throughput_rps / base->throughput_rps,
                   row.critical_path_s, row.serial_s, row.total_work_s,
                   row.p99_s, row.p99_nosteal_s, row.avg_latency_s,
                   row.miss_ratio,
                   static_cast<long long>(row.steals),
                   static_cast<long long>(row.max_steal_hops),
                   static_cast<long long>(row.evacuations), row.epochs,
                   static_cast<long long>(row.shed),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"floor4\": %.2f,\n"
                 "  \"floor16\": %.2f,\n"
                 "  \"p99_slack\": %.2f,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 options.floor4, options.floor16, options.p99_slack,
                 failures == 0 ? "true" : "false");
    std::fclose(out);
  }

  std::printf("ACCEPT -> %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace gfaas::bench

int main(int argc, char** argv) {
  gfaas::bench::Options options;
  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) != 0) return nullptr;
      GFAAS_CHECK(i + 1 < argc) << flag << " needs a value";
      return argv[++i];
    };
    if (const char* v = value("--shards")) {
      options.shard_counts.clear();
      std::string list(v);
      std::size_t pos = 0;
      while (pos < list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        options.shard_counts.push_back(
            std::atoi(list.substr(pos, comma - pos).c_str()));
        pos = comma + 1;
      }
    } else if (const char* v = value("--gpus")) {
      options.gpus = std::atoi(v);
    } else if (const char* v = value("--working-set")) {
      options.working_set = static_cast<std::size_t>(std::atoll(v));
    } else if (const char* v = value("--rpm")) {
      options.rpm = std::atoll(v);
    } else if (const char* v = value("--minutes")) {
      options.minutes = std::atoll(v);
    } else if (const char* v = value("--epoch-ms")) {
      options.epoch_ms = std::atoll(v);
    } else if (const char* v = value("--threads")) {
      options.threads = std::atoi(v);
    } else if (const char* v = value("--reps")) {
      options.reps = std::atoi(v);
    } else if (const char* v = value("--spread")) {
      options.spread = std::atof(v);
    } else if (const char* v = value("--vnodes")) {
      options.virtual_nodes = std::atoi(v);
    } else if (const char* v = value("--floor4")) {
      options.floor4 = std::atof(v);
    } else if (const char* v = value("--floor16")) {
      options.floor16 = std::atof(v);
    } else if (const char* v = value("--p99-slack")) {
      options.p99_slack = std::atof(v);
    } else if (const char* v = value("--json")) {
      options.json = v;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  return gfaas::bench::run(options);
}
