// Ablation B (paper §VI "Overhead and Scalability"): cluster-size scaling.
// The GPU Managers are per node and the Cache Manager keeps per-GPU lists,
// so the system should scale with GPU count; this bench sweeps 4..24 GPUs
// (1..6 nodes x 4) at working set 25 under LALBO3 and reports how latency
// and miss ratio respond to added capacity.
#include <cstdio>

#include "cluster/experiment.h"
#include "metrics/reporter.h"
#include "trace/workload.h"

using namespace gfaas;

int main() {
  trace::WorkloadConfig wconfig;
  wconfig.working_set_size = 25;
  auto workload = trace::build_standard_workload(wconfig);
  if (!workload.ok()) return 1;

  std::printf("=== Ablation: GPU count scaling (LALBO3, working set 25) ===\n");
  metrics::Table table({"Nodes", "GPUs", "AvgLatency(s)", "MissRatio", "SM-Util",
                        "Makespan(s)"});
  for (int nodes = 1; nodes <= 6; ++nodes) {
    cluster::ClusterConfig config;
    config.nodes = nodes;
    config.policy = core::PolicyName::kLalbO3;
    const auto r = cluster::run_experiment(config, *workload);
    table.add_row({std::to_string(nodes), std::to_string(nodes * 4),
                   metrics::Table::fmt(r.avg_latency_s),
                   metrics::Table::fmt_percent(r.miss_ratio),
                   metrics::Table::fmt_percent(r.sm_utilization),
                   metrics::Table::fmt(r.makespan_s)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expectation: latency falls steeply until aggregate GPU memory covers "
      "the working set, then flattens; per-GPU utilization drops as the "
      "cluster overprovisions.\n");
  return 0;
}
