// Figure 4c reproduction: average GPU (SM) utilization of LB / LALB /
// LALBO3 across working set sizes 15 / 25 / 35.
//
// Paper observations to reproduce: utilization is roughly constant across
// working sets (request rate is fixed at 325/min); LALBO3 has the highest
// SM utilization because it has the lowest miss ratio (SMs idle while a
// model uploads); 100% is unreachable.
#include <cstdio>

#include "bench_common.h"
#include "metrics/reporter.h"

using namespace gfaas;

int main() {
  const auto grid = bench::run_grid();

  std::printf("=== Fig 4c: GPU (SM) Utilization ===\n");
  metrics::Table table({"WS", "LB", "LALB", "LALBO3"});
  for (std::size_t ws : {15u, 25u, 35u}) {
    table.add_row({std::to_string(ws),
                   metrics::Table::fmt_percent(
                       bench::cell(grid, ws, core::PolicyName::kLb).sm_utilization),
                   metrics::Table::fmt_percent(
                       bench::cell(grid, ws, core::PolicyName::kLalb).sm_utilization),
                   metrics::Table::fmt_percent(
                       bench::cell(grid, ws, core::PolicyName::kLalbO3).sm_utilization)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper: LALBO3 highest (lowest miss ratio keeps SMs busy); roughly flat "
      "across working sets; 100%% unreachable.\n");
  return 0;
}
