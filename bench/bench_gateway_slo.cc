// Serving-layer bench: offered load x latency SLO, served through the
// Gateway, for three scaling policies.
//
// Every request enters through gateway::Gateway (bounded admission
// window, deadline = arrival + SLO) driven by an open-loop client over a
// bursty diurnal rate envelope — the serving system cannot slow the
// client down, so under-provisioning shows up as p99 latency and shed
// rate instead of a silently stretched replay. Per (load, policy) run it
// reports goodput (completed within SLO / offered), shed rate, p99
// latency, SLO attainment, GPU-seconds and cold starts for:
//
//   * reactive   — queue-pressure up / sustained-idle down (the baseline
//                  threshold autoscaler);
//   * predictive — demand-percentile histogram + trend forecast;
//   * slo-aware  — autoscale::SloAwarePolicy: the predictive forecast on
//                  the served-concurrency envelope, a standing
//                  burst-headroom floor over that envelope, and
//                  deep-wait-fraction bands from the Gateway's windowed
//                  outcome record (scale up while the SLO still holds,
//                  shrink only when requests dispatch inside budget).
//
// The headline this bench exists to show (and CI enforces): at the
// headline cell (first load x first SLO) the SLO-aware policy holds a
// p99 SLO that the reactive policy misses, at equal or lower
// GPU-seconds. The final ACCEPTANCE lines check exactly that and the
// binary exits non-zero on a miss.
//
// Usage:
//   bench_gateway_slo [--minutes 24] [--period 24] [--trough-rpm 60]
//                     [--peak-rpm 420] [--burst-prob 0.15] [--burst-mult 2.0]
//                     [--working-set 20] [--min-gpus 4] [--max-gpus 32]
//                     [--cold-start-s 20] [--interval-s 5] [--slos 8,12]
//                     [--load-mults 1.4,1.0] [--window 128]
//                     [--telemetry-jsonl PATH]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "autoscale/autoscaler.h"
#include "autoscale/slo_policy.h"
#include "bench_common.h"
#include "cluster/experiment.h"
#include "common/log.h"
#include "gateway/gateway.h"
#include "metrics/fleet.h"
#include "metrics/reporter.h"
#include "telemetry/exporter.h"
#include "telemetry/telemetry.h"
#include "trace/clients.h"
#include "trace/workload.h"

using namespace gfaas;

namespace {

struct Options {
  std::int64_t minutes = 24;
  std::int64_t period = 24;
  std::int64_t trough_rpm = 60;
  std::int64_t peak_rpm = 420;
  double burst_prob = 0.15;
  double burst_mult = 2.0;
  std::size_t working_set = 20;
  std::size_t min_gpus = 4;
  std::size_t max_gpus = 32;
  SimTime cold_start = sec(20);
  SimTime interval = sec(5);
  std::vector<SimTime> slos = {sec(8), sec(12)};
  std::vector<double> load_mults = {1.4, 1.0};
  std::size_t window = 128;
  std::string telemetry_jsonl;
};

std::vector<double> parse_double_list(const char* text) {
  std::vector<double> values;
  std::string token;
  for (const char* p = text;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) values.push_back(std::atof(token.c_str()));
      token.clear();
      if (*p == '\0') break;
    } else {
      token.push_back(*p);
    }
  }
  return values;
}

bool parse_args(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      GFAAS_CHECK(i + 1 < argc) << "missing value for " << flag;
      return argv[++i];
    };
    if (flag == "--minutes") {
      options->minutes = std::atoll(next());
    } else if (flag == "--period") {
      options->period = std::atoll(next());
    } else if (flag == "--trough-rpm") {
      options->trough_rpm = std::atoll(next());
    } else if (flag == "--peak-rpm") {
      options->peak_rpm = std::atoll(next());
    } else if (flag == "--burst-prob") {
      options->burst_prob = std::atof(next());
    } else if (flag == "--burst-mult") {
      options->burst_mult = std::atof(next());
    } else if (flag == "--working-set") {
      options->working_set = static_cast<std::size_t>(std::atoll(next()));
    } else if (flag == "--min-gpus") {
      options->min_gpus = static_cast<std::size_t>(std::atoll(next()));
    } else if (flag == "--max-gpus") {
      options->max_gpus = static_cast<std::size_t>(std::atoll(next()));
    } else if (flag == "--cold-start-s") {
      options->cold_start = sec(std::atoll(next()));
    } else if (flag == "--interval-s") {
      options->interval = sec(std::atoll(next()));
    } else if (flag == "--slos") {
      options->slos.clear();
      for (const double slo_s : parse_double_list(next())) {
        options->slos.push_back(seconds_to_sim(slo_s));
      }
    } else if (flag == "--load-mults") {
      options->load_mults = parse_double_list(next());
    } else if (flag == "--window") {
      options->window = static_cast<std::size_t>(std::atoll(next()));
    } else if (flag == "--telemetry-jsonl") {
      options->telemetry_jsonl = next();
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  bool slos_ok = !options->slos.empty();
  for (const SimTime slo : options->slos) slos_ok = slos_ok && slo > 0;
  return options->minutes > 0 && options->peak_rpm >= options->trough_rpm &&
         options->trough_rpm >= 0 && options->min_gpus >= 1 &&
         options->max_gpus >= options->min_gpus && slos_ok &&
         !options->load_mults.empty();
}

cluster::ClusterConfig one_gpu_per_node(std::size_t gpus) {
  cluster::ClusterConfig config;
  config.nodes = static_cast<int>(gpus);
  config.gpus_per_node = 1;
  config.shared_pcie_per_node = false;
  return config;
}

enum class PolicyKind { kReactive, kPredictive, kSloAware };

const char* policy_kind_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kReactive:
      return "reactive";
    case PolicyKind::kPredictive:
      return "predictive";
    case PolicyKind::kSloAware:
      return "slo-aware";
  }
  return "unknown";
}

struct RunResult {
  std::string name;
  double load_mult = 1.0;
  std::size_t offered = 0;
  std::int64_t completed = 0;
  std::int64_t shed = 0;
  std::int64_t expired = 0;
  double goodput = 0;        // completed within SLO / offered
  double attainment = 0;     // completed within SLO / completed
  double shed_rate = 0;      // shed / offered
  double p50_s = 0, p99_s = 0;
  double gpu_seconds = 0;
  double cost = 0;
  std::int64_t cold_starts = 0;
  // Final exporter row, kept for the acceptance-failure dump.
  telemetry::MetricsSnapshot snapshot;
};

RunResult run_one(const Options& options, const trace::Workload& registry_source,
                  const std::vector<std::int64_t>& rates, double load_mult,
                  SimTime slo, PolicyKind kind, std::ostream* jsonl) {
  cluster::SimCluster cluster(one_gpu_per_node(options.min_gpus),
                              registry_source.registry);

  gateway::GatewayConfig gw_config;
  gw_config.max_in_flight = options.window;
  gw_config.default_slo = slo;
  // Short outcome window: the scaling probe must see a burst clear
  // within a couple of evaluation ticks, or the guard keeps ordering
  // capacity against stale congestion samples.
  gw_config.stats_window = sec(20);
  gateway::Gateway gateway(&cluster, gw_config);

  // The SLO probe adapts the Gateway's windowed outcomes into the
  // policy-side signal (autoscale never links against gateway/).
  autoscale::SloProbe probe = [&gateway] {
    const gateway::WindowedOutcomes window = gateway.windowed_outcomes();
    autoscale::SloSignal signal;
    signal.samples = window.completions;
    signal.p99_latency = window.p99_latency;
    signal.deep_wait_fraction = window.deep_wait_fraction();
    signal.shed_fraction = window.shed_fraction();
    return signal;
  };

  std::unique_ptr<autoscale::ScalingPolicy> policy;
  switch (kind) {
    case PolicyKind::kReactive:
      policy = std::make_unique<autoscale::ReactivePolicy>();
      break;
    case PolicyKind::kPredictive: {
      autoscale::PredictivePolicyConfig predictive;
      predictive.lead_time = options.cold_start;
      policy = std::make_unique<autoscale::PredictivePolicy>(predictive);
      break;
    }
    case PolicyKind::kSloAware: {
      autoscale::SloAwarePolicyConfig slo_config;
      slo_config.slo = slo;
      // The forecast runs leaner than standalone predictive (lower
      // percentile and headroom): the latency guard catches what the
      // thrifty forecast under-provisions, which is what lets the
      // composed policy undercut both reactive and predictive on
      // GPU-seconds.
      slo_config.forecast.lead_time = options.cold_start;
      slo_config.forecast.history = minutes(3);
      slo_config.forecast.target_percentile = 0.85;
      slo_config.forecast.headroom = 1.10;
      slo_config.forecast.target_hold = sec(60);
      policy = std::make_unique<autoscale::SloAwarePolicy>(probe, slo_config);
      break;
    }
  }

  autoscale::AutoscalerConfig as_config;
  as_config.evaluation_interval = options.interval;
  as_config.cold_start = options.cold_start;
  as_config.min_gpus = options.min_gpus;
  as_config.max_gpus = options.max_gpus;
  autoscale::Autoscaler scaler(&cluster, std::move(policy), as_config);

  // One Telemetry per run; the exporter's final row is the single source
  // for the result table (the ad-hoc latency accounting is gone).
  telemetry::Telemetry telemetry;
  gateway.set_telemetry(&telemetry);
  cluster.engine().set_telemetry(&telemetry);
  scaler.set_telemetry(&telemetry);
  char label[64];
  std::snprintf(label, sizeof(label), "%s-slo%.0fs-%.1fx", policy_kind_name(kind),
                sim_to_seconds(slo), load_mult);
  telemetry::TelemetryExporterConfig exporter_config;
  exporter_config.interval = options.interval;
  exporter_config.label = label;
  exporter_config.jsonl = jsonl;
  exporter_config.export_spans = jsonl != nullptr;
  telemetry::TelemetryExporter exporter(&cluster.executor(), &telemetry,
                                        exporter_config);

  trace::ClientConfig client_config;
  client_config.model_count = options.working_set;
  trace::ClientSink sink = [&gateway](core::Request request,
                                      std::function<void()> done) {
    gateway.submit(std::move(request),
                   [done = std::move(done)](const gateway::GatewayResult&) { done(); });
  };
  trace::OpenLoopClient client(&cluster.executor(), sink, client_config, rates);

  // Simulated time stands still until run_to_completion(), so starting
  // the client first (anchoring its schedule and horizon) is safe.
  client.start();
  scaler.start(client.horizon());
  exporter.start(client.horizon());
  cluster.run_to_completion();
  scaler.finalize();
  exporter.finish();
  GFAAS_CHECK(cluster.engine().pending() == 0 && gateway.pending() == 0)
      << "requests stranded behind the gateway";
  GFAAS_CHECK(client.completed() == client.submitted())
      << "client callbacks missing";

  const telemetry::MetricsSnapshot& snap = exporter.last();
  RunResult run;
  run.name = policy_kind_name(kind);
  run.load_mult = load_mult;
  run.snapshot = snap;
  run.offered = client.submitted();
  run.completed = static_cast<std::int64_t>(snap.value("gateway.completed"));
  run.shed = static_cast<std::int64_t>(snap.value("gateway.shed"));
  run.expired = static_cast<std::int64_t>(snap.value("gateway.expired"));
  run.goodput = run.offered > 0 ? snap.value("gateway.slo_met") /
                                      static_cast<double>(run.offered)
                                : 0;
  run.attainment = run.completed > 0
                       ? snap.value("gateway.slo_met") /
                             static_cast<double>(run.completed)
                       : 0;
  run.shed_rate = run.offered > 0 ? static_cast<double>(run.shed) /
                                        static_cast<double>(run.offered)
                                  : 0;
  run.p50_s = snap.value("gateway.latency_s.p50");
  run.p99_s = snap.value("gateway.latency_s.p99");
  const SimTime end = cluster.simulator().now();
  run.gpu_seconds = scaler.gpu_seconds(end);
  run.cost = metrics::GpuCostModel{}.cost(run.gpu_seconds);
  run.cold_starts = static_cast<std::int64_t>(snap.value("autoscale.gpus_added"));
  // GWSLO_DEBUG=1 dumps the per-minute p99/fleet trace — where a policy's
  // tail damage and capacity waste actually sit (how this bench was tuned).
  if (std::getenv("GWSLO_DEBUG") != nullptr) {
    std::vector<std::vector<double>> by_minute;
    for (const auto& record : cluster.engine().completions()) {
      const auto m = static_cast<std::size_t>(record.arrival / minutes(1));
      if (by_minute.size() <= m) by_minute.resize(m + 1);
      by_minute[m].push_back(sim_to_seconds(record.latency()));
    }
    std::printf("DEBUG %s minute: rate p99 fleet\n", run.name.c_str());
    for (std::size_t m = 0; m < by_minute.size(); ++m) {
      std::sort(by_minute[m].begin(), by_minute[m].end());
      const SimTime mid = minutes(static_cast<std::int64_t>(m)) + sec(30);
      std::printf("  m%02zu n=%4zu p99=%6.2f fleet=%4.1f\n", m, by_minute[m].size(),
                  bench::percentile(by_minute[m], 0.99),
                  scaler.powered_timeline().value_at(mid));
    }
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, &options)) return 1;

  // The workload is only the model registry source; arrivals come from
  // the open-loop client, not a pre-materialized request stream.
  trace::WorkloadConfig wconfig;
  wconfig.working_set_size = options.working_set;
  auto registry_source = trace::build_standard_workload(wconfig);
  if (!registry_source.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 registry_source.status().to_string().c_str());
    return 1;
  }

  trace::DiurnalConfig diurnal;
  diurnal.window_minutes = options.minutes;
  diurnal.period_minutes = options.period;
  diurnal.trough_rpm = options.trough_rpm;
  diurnal.peak_rpm = options.peak_rpm;
  diurnal.burst_probability = options.burst_prob;
  diurnal.burst_multiplier = options.burst_mult;
  const std::vector<std::int64_t> base_rates = trace::diurnal_rates(diurnal);

  std::printf(
      "=== Gateway SLO bench: %lld min diurnal (trough %lld, peak %lld rpm, "
      "burst p=%.2f x%.1f), window %zu, fleet %zu..%zu ===\n",
      static_cast<long long>(options.minutes),
      static_cast<long long>(options.trough_rpm),
      static_cast<long long>(options.peak_rpm), options.burst_prob,
      options.burst_mult, options.window, options.min_gpus, options.max_gpus);

  std::ofstream jsonl_file;
  std::ostream* jsonl = nullptr;
  if (!options.telemetry_jsonl.empty()) {
    jsonl_file.open(options.telemetry_jsonl);
    if (!jsonl_file) {
      std::fprintf(stderr, "cannot open %s\n", options.telemetry_jsonl.c_str());
      return 1;
    }
    jsonl = &jsonl_file;
  }

  metrics::Table table({"SLO(s)", "Load", "Policy", "Offered", "Done", "Shed",
                        "Goodput", "Attain", "p50(s)", "p99(s)", "GPU-s", "Cost($)",
                        "Cold"});
  std::vector<RunResult> headline;
  for (const SimTime slo : options.slos) {
    for (const double mult : options.load_mults) {
      std::vector<std::int64_t> rates = base_rates;
      for (std::int64_t& rate : rates) {
        rate = static_cast<std::int64_t>(static_cast<double>(rate) * mult);
      }
      for (const PolicyKind kind :
           {PolicyKind::kReactive, PolicyKind::kPredictive, PolicyKind::kSloAware}) {
        const RunResult run =
            run_one(options, *registry_source, rates, mult, slo, kind, jsonl);
        if (slo == options.slos.front() && mult == options.load_mults.front()) {
          headline.push_back(run);
        }
        table.add_row({metrics::Table::fmt(sim_to_seconds(slo), 0),
                       metrics::Table::fmt(run.load_mult, 1) + "x", run.name,
                       std::to_string(run.offered), std::to_string(run.completed),
                       std::to_string(run.shed), metrics::Table::fmt(run.goodput, 3),
                       metrics::Table::fmt(run.attainment, 3),
                       metrics::Table::fmt(run.p50_s), metrics::Table::fmt(run.p99_s),
                       metrics::Table::fmt(run.gpu_seconds, 0),
                       metrics::Table::fmt(run.cost),
                       std::to_string(run.cold_starts)});
      }
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  // Headline acceptance at the first (SLO, load) cell: the SLO-aware
  // policy meets the p99 SLO the reactive policy misses, at equal or
  // lower GPU-seconds.
  const RunResult& reactive = headline[0];
  const RunResult& slo_aware = headline[2];
  const double slo_s = sim_to_seconds(options.slos.front());
  const bool slo_aware_meets = slo_aware.p99_s <= slo_s;
  const bool reactive_misses = reactive.p99_s > slo_s;
  const bool cheaper = slo_aware.gpu_seconds <= reactive.gpu_seconds;
  std::printf("\nACCEPTANCE slo-aware meets p99 SLO (%.2fs <= %.1fs): %s\n",
              slo_aware.p99_s, slo_s, slo_aware_meets ? "PASS" : "FAIL");
  std::printf("ACCEPTANCE reactive misses p99 SLO (%.2fs > %.1fs): %s\n",
              reactive.p99_s, slo_s, reactive_misses ? "PASS" : "FAIL");
  std::printf("ACCEPTANCE slo-aware GPU-seconds <= reactive (%.0f <= %.0f): %s\n",
              slo_aware.gpu_seconds, reactive.gpu_seconds, cheaper ? "PASS" : "FAIL");
  if (!(slo_aware_meets && reactive_misses && cheaper)) {
    std::fprintf(stderr, "acceptance failed; final telemetry snapshots:\n");
    for (const RunResult* run : {&reactive, &slo_aware}) {
      telemetry::dump_snapshot(run->snapshot, stderr);
    }
    return 1;
  }
  return 0;
}
