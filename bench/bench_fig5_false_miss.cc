// Figure 5 reproduction: false miss ratio of LB / LALB / LALBO3 across
// working set sizes. A false miss is a dispatch executed as a miss while
// the model was cached on some other GPU at decision time.
//
// Paper reference points: LB worst (up to ~96%); LALB/LALBO3 reduce it by
// 34.38% / 35.41% at WS 15; at WS 35 only LALBO3 still improves (-3.65%).
#include <cstdio>

#include "bench_common.h"
#include "metrics/reporter.h"

using namespace gfaas;

int main() {
  const auto grid = bench::run_grid();

  std::printf("=== Fig 5: False Miss Ratio ===\n");
  metrics::Table table({"WS", "LB", "LALB", "LALBO3", "LALB vs LB", "LALBO3 vs LB"});
  for (std::size_t ws : {15u, 25u, 35u}) {
    table.add_row(
        {std::to_string(ws),
         metrics::Table::fmt_percent(
             bench::cell(grid, ws, core::PolicyName::kLb).false_miss_ratio),
         metrics::Table::fmt_percent(
             bench::cell(grid, ws, core::PolicyName::kLalb).false_miss_ratio),
         metrics::Table::fmt_percent(
             bench::cell(grid, ws, core::PolicyName::kLalbO3).false_miss_ratio),
         "-" + metrics::Table::fmt_percent(bench::reduction_vs_lb(
                   grid, ws, core::PolicyName::kLalb, bench::metric_false_miss)),
         "-" + metrics::Table::fmt_percent(bench::reduction_vs_lb(
                   grid, ws, core::PolicyName::kLalbO3, bench::metric_false_miss))});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper: LB worst (~96%%); LALB/LALBO3 -34.38%%/-35.41%% at WS15; at WS35 "
      "only LALBO3 improves (-3.65%%).\n");
  return 0;
}
