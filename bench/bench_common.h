// Shared harness for the figure-reproduction benches: runs the paper's
// standard experiment grid (scheduler x working set on the 12-GPU
// cluster) and provides paper-reference comparison helpers.
#pragma once

#include <string>
#include <vector>

#include "cluster/experiment.h"
#include "trace/workload.h"

namespace gfaas::bench {

struct GridCell {
  std::size_t working_set;
  core::PolicyName policy;
  cluster::ExperimentResult result;
};

struct GridOptions {
  std::vector<std::size_t> working_sets = {15, 25, 35};
  std::vector<core::PolicyName> policies = {
      core::PolicyName::kLb, core::PolicyName::kLalb, core::PolicyName::kLalbO3};
  int o3_limit = 25;
  cache::PolicyKind cache_policy = cache::PolicyKind::kLru;
  std::uint64_t workload_seed = 7;
  std::uint64_t trace_seed = 42;
};

// Runs every (working set, policy) combination of the paper's §V setup.
std::vector<GridCell> run_grid(const GridOptions& options = {});

// Percentage reduction of a metric relative to the LB baseline in the
// same working set ((lb - value) / lb).
double reduction_vs_lb(const std::vector<GridCell>& grid, std::size_t working_set,
                       core::PolicyName policy,
                       double (*metric)(const cluster::ExperimentResult&));

// Common metric extractors.
double metric_latency(const cluster::ExperimentResult& r);
double metric_miss_ratio(const cluster::ExperimentResult& r);
double metric_false_miss(const cluster::ExperimentResult& r);
double metric_sm_util(const cluster::ExperimentResult& r);
double metric_duplicates(const cluster::ExperimentResult& r);

const cluster::ExperimentResult& cell(const std::vector<GridCell>& grid,
                                      std::size_t working_set,
                                      core::PolicyName policy);

std::string policy_label(core::PolicyName policy);

// Completion latencies of an engine run in seconds, ascending (feed to
// percentile()).
std::vector<double> sorted_latencies_s(const cluster::SchedulerEngine& engine);

// Nearest-index percentile of an ascending sample vector (q in [0, 1];
// 0 on empty input). The elastic-fleet benches share this so their
// latency columns cannot drift apart.
double percentile(const std::vector<double>& sorted, double q);

}  // namespace gfaas::bench
