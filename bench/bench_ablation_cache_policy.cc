// Ablation A (paper §VI "Cache Replacement Policy"): the paper's design
// supports policies other than LRU by swapping the sorted list; this
// bench quantifies the claim that locality-aware scheduling improves
// performance regardless of the replacement policy, comparing LRU / LFU /
// FIFO / MRU under both LB and LALBO3 at working set 25.
#include <cstdio>

#include "bench_common.h"
#include "metrics/reporter.h"

using namespace gfaas;

int main() {
  std::printf("=== Ablation: cache replacement policy (working set 25) ===\n");
  metrics::Table table(
      {"CachePolicy", "Scheduler", "AvgLatency(s)", "MissRatio", "SM-Util"});
  for (cache::PolicyKind kind :
       {cache::PolicyKind::kLru, cache::PolicyKind::kLfu, cache::PolicyKind::kFifo,
        cache::PolicyKind::kMru}) {
    bench::GridOptions options;
    options.working_sets = {25};
    options.policies = {core::PolicyName::kLb, core::PolicyName::kLalbO3};
    options.cache_policy = kind;
    const auto grid = bench::run_grid(options);
    for (const auto& cell : grid) {
      table.add_row({cache::policy_kind_name(kind), cell.result.policy,
                     metrics::Table::fmt(cell.result.avg_latency_s),
                     metrics::Table::fmt_percent(cell.result.miss_ratio),
                     metrics::Table::fmt_percent(cell.result.sm_utilization)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Expectation (paper §VI): LALBO3 beats LB under every replacement "
      "policy; LRU ~ LFU > FIFO > MRU for this workload.\n");
  return 0;
}
