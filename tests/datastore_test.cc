// Unit tests for the etcd-substitute KvStore: revisions/versions, ranges,
// CAS transactions, watches, leases, and the canonical key layout.
#include <gtest/gtest.h>

#include <vector>

#include "datastore/keys.h"
#include "datastore/kv_store.h"
#include "sim/simulator.h"

namespace gfaas::datastore {
namespace {

TEST(KvStoreTest, PutGetRoundTrip) {
  KvStore store;
  store.put("a", "1");
  auto kv = store.get("a");
  ASSERT_TRUE(kv.ok());
  EXPECT_EQ(kv->value, "1");
  EXPECT_EQ(kv->version, 1);
}

TEST(KvStoreTest, GetMissingIsNotFound) {
  KvStore store;
  EXPECT_EQ(store.get("nope").status().code(), StatusCode::kNotFound);
}

TEST(KvStoreTest, RevisionsIncreaseMonotonically) {
  KvStore store;
  const Revision r1 = store.put("a", "1");
  const Revision r2 = store.put("b", "2");
  const Revision r3 = store.put("a", "3");
  EXPECT_LT(r1, r2);
  EXPECT_LT(r2, r3);
  auto kv = store.get("a");
  EXPECT_EQ(kv->create_revision, r1);
  EXPECT_EQ(kv->mod_revision, r3);
  EXPECT_EQ(kv->version, 2);
}

TEST(KvStoreTest, DeleteBumpsRevisionAndRemoves) {
  KvStore store;
  store.put("a", "1");
  const Revision before = store.revision();
  EXPECT_TRUE(store.erase("a"));
  EXPECT_GT(store.revision(), before);
  EXPECT_FALSE(store.erase("a"));
  EXPECT_FALSE(store.get("a").ok());
}

TEST(KvStoreTest, RecreatedKeyResetsVersion) {
  KvStore store;
  store.put("a", "1");
  store.put("a", "2");
  store.erase("a");
  store.put("a", "3");
  auto kv = store.get("a");
  EXPECT_EQ(kv->version, 1);
}

TEST(KvStoreTest, RangeReturnsPrefixInOrder) {
  KvStore store;
  store.put("gpu/2/status", "idle");
  store.put("gpu/10/status", "busy");
  store.put("gpu/1/status", "idle");
  store.put("model/1/locations", "0");
  const auto rows = store.range("gpu/");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].key, "gpu/1/status");   // lexicographic
  EXPECT_EQ(rows[1].key, "gpu/10/status");
  EXPECT_EQ(rows[2].key, "gpu/2/status");
}

TEST(KvStoreTest, RangeEmptyPrefixReturnsAll) {
  KvStore store;
  store.put("a", "1");
  store.put("b", "2");
  EXPECT_EQ(store.range("").size(), 2u);
}

TEST(KvStoreTest, ErasePrefixDeletesAllUnder) {
  KvStore store;
  store.put("gpu/1/a", "x");
  store.put("gpu/1/b", "y");
  store.put("gpu/2/a", "z");
  EXPECT_EQ(store.erase_prefix("gpu/1/"), 2u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(KvStoreTest, CompareAndSwapSucceedsOnMatch) {
  KvStore store;
  store.put("k", "old");
  EXPECT_TRUE(store.compare_and_swap("k", "old", "new"));
  EXPECT_EQ(store.get("k")->value, "new");
}

TEST(KvStoreTest, CompareAndSwapFailsOnMismatch) {
  KvStore store;
  store.put("k", "current");
  EXPECT_FALSE(store.compare_and_swap("k", "stale", "new"));
  EXPECT_EQ(store.get("k")->value, "current");
}

TEST(KvStoreTest, CompareAndSwapCreateOnlyIfAbsent) {
  KvStore store;
  EXPECT_TRUE(store.compare_and_swap("fresh", "", "v1"));
  EXPECT_FALSE(store.compare_and_swap("fresh", "", "v2"));
  EXPECT_EQ(store.get("fresh")->value, "v1");
}

TEST(KvStoreTest, TxnComparesVersionAndModRevision) {
  KvStore store;
  const Revision r = store.put("k", "v");
  Compare version_cmp;
  version_cmp.key = "k";
  version_cmp.target = Compare::Target::kVersion;
  version_cmp.number = 1;
  Compare rev_cmp;
  rev_cmp.key = "k";
  rev_cmp.target = Compare::Target::kModRevision;
  rev_cmp.number = r;
  auto result = store.txn({version_cmp, rev_cmp}, {{TxnOp::Kind::kPut, "k", "v2"}});
  EXPECT_TRUE(result.succeeded);
  EXPECT_EQ(store.get("k")->value, "v2");
}

TEST(KvStoreTest, TxnElseBranchApplies) {
  KvStore store;
  Compare must_exist;
  must_exist.key = "missing";
  must_exist.target = Compare::Target::kExists;
  must_exist.exists = true;
  auto result = store.txn({must_exist}, {{TxnOp::Kind::kPut, "then", "x"}},
                          {{TxnOp::Kind::kPut, "else", "y"}});
  EXPECT_FALSE(result.succeeded);
  EXPECT_FALSE(store.get("then").ok());
  EXPECT_EQ(store.get("else")->value, "y");
}

TEST(KvStoreTest, TxnDeleteOp) {
  KvStore store;
  store.put("k", "v");
  auto result = store.txn({}, {{TxnOp::Kind::kDelete, "k", ""}});
  EXPECT_TRUE(result.succeeded);
  EXPECT_FALSE(store.get("k").ok());
}

TEST(KvStoreTest, WatchReceivesPutAndDelete) {
  KvStore store;
  std::vector<WatchEvent> events;
  store.watch("gpu/", [&](const WatchEvent& e) { events.push_back(e); });
  store.put("gpu/0/status", "busy");
  store.put("other", "ignored");
  store.erase("gpu/0/status");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, EventType::kPut);
  EXPECT_EQ(events[0].kv.value, "busy");
  EXPECT_EQ(events[1].type, EventType::kDelete);
  EXPECT_EQ(events[1].kv.key, "gpu/0/status");
}

TEST(KvStoreTest, UnwatchStopsDelivery) {
  KvStore store;
  int count = 0;
  const WatchId id = store.watch("", [&](const WatchEvent&) { ++count; });
  store.put("a", "1");
  EXPECT_TRUE(store.unwatch(id));
  EXPECT_FALSE(store.unwatch(id));
  store.put("b", "2");
  EXPECT_EQ(count, 1);
}

TEST(KvStoreTest, MultipleWatchersSamePrefix) {
  KvStore store;
  int a = 0, b = 0;
  store.watch("k", [&](const WatchEvent&) { ++a; });
  store.watch("k", [&](const WatchEvent&) { ++b; });
  store.put("k1", "v");
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

TEST(KvStoreTest, LeaseExpiryDeletesAttachedKeys) {
  sim::Simulator sim;
  KvStore store(&sim);
  const LeaseId lease = store.grant_lease(sec(10));
  store.put("hb/gpu0", "alive", lease);
  store.put("unleased", "stays");
  sim.run_until(sec(5));
  EXPECT_EQ(store.expire_leases(), 0u);
  EXPECT_TRUE(store.get("hb/gpu0").ok());
  sim.run_until(sec(11));
  EXPECT_EQ(store.expire_leases(), 1u);
  EXPECT_FALSE(store.get("hb/gpu0").ok());
  EXPECT_TRUE(store.get("unleased").ok());
}

TEST(KvStoreTest, KeepaliveExtendsLease) {
  sim::Simulator sim;
  KvStore store(&sim);
  const LeaseId lease = store.grant_lease(sec(10));
  store.put("hb", "x", lease);
  sim.run_until(sec(8));
  EXPECT_TRUE(store.keepalive(lease));
  sim.run_until(sec(12));
  EXPECT_EQ(store.expire_leases(), 0u);  // extended to t=18
  sim.run_until(sec(19));
  EXPECT_EQ(store.expire_leases(), 1u);
}

TEST(KvStoreTest, RevokeLeaseDeletesKeysImmediately) {
  sim::Simulator sim;
  KvStore store(&sim);
  const LeaseId lease = store.grant_lease(sec(100));
  store.put("a", "1", lease);
  store.put("b", "2", lease);
  EXPECT_TRUE(store.revoke_lease(lease));
  EXPECT_FALSE(store.revoke_lease(lease));
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.keepalive(lease));
}

TEST(KeysTest, CanonicalLayout) {
  EXPECT_EQ(keys::gpu_status(GpuId(3)), "gpu/3/status");
  EXPECT_EQ(keys::gpu_lru(GpuId(0)), "gpu/0/lru");
  EXPECT_EQ(keys::gpu_finish_time(GpuId(7)), "gpu/7/finish_time");
  EXPECT_EQ(keys::gpu_free_mem(GpuId(1)), "gpu/1/free_mem");
  EXPECT_EQ(keys::model_locations(ModelId(9)), "model/9/locations");
  EXPECT_EQ(keys::fn_latency("resnet50-fn"), "fn/resnet50-fn/latency");
}

TEST(KeysTest, IdListCodecRoundTrips) {
  const std::vector<std::int64_t> ids = {5, 0, 12, 7};
  EXPECT_EQ(keys::encode_id_list(ids), "5,0,12,7");
  EXPECT_EQ(keys::decode_id_list("5,0,12,7"), ids);
  EXPECT_TRUE(keys::decode_id_list("").empty());
  EXPECT_EQ(keys::decode_id_list("42"), (std::vector<std::int64_t>{42}));
}

}  // namespace
}  // namespace gfaas::datastore
