// Serving-layer tests: Gateway admission edge cases (zero-capacity
// window, shed-under-burst, expired-at-submit), completion-callback
// ordering against the engine's completion log, per-model SLO stats and
// the windowed outcome record, the open/closed-loop client generators,
// the chaos path (GPU killed mid-request: failed callback, local-queue
// requeue, no stranded pins), the SLO-aware scaling policy's bands, and
// the digest guard proving the paper grid routed through the Gateway is
// bit-identical to direct engine submission.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <vector>

#include "autoscale/slo_policy.h"
#include "common/rng.h"
#include "gateway/gateway.h"
#include "testing/builders.h"
#include "trace/clients.h"
#include "trace/workload.h"

namespace gfaas::gateway {
namespace {

using testkit::make_request;

core::Request serving_request(std::int64_t id, std::int64_t model) {
  // Arrival/deadline are stamped by the Gateway at submit time.
  return make_request(id, model, /*arrival=*/0);
}

struct Outcome {
  std::int64_t id;
  Disposition disposition;
  bool slo_met;
};

// Collects every callback in firing order.
struct Collector {
  std::vector<Outcome> outcomes;

  ResultCallback callback(std::int64_t id) {
    return [this, id](const GatewayResult& result) {
      outcomes.push_back(Outcome{id, result.disposition, result.slo_met});
    };
  }
  std::size_t count(Disposition disposition) const {
    return static_cast<std::size_t>(
        std::count_if(outcomes.begin(), outcomes.end(), [&](const Outcome& o) {
          return o.disposition == disposition;
        }));
  }
};

// ---------------------------------------------------------------------------
// Admission edge cases
// ---------------------------------------------------------------------------

TEST(GatewayAdmissionTest, ServesAndTracksSlo) {
  auto cluster = testkit::ClusterBuilder().nodes(1).gpus_per_node(2).build();
  Gateway gateway(cluster.get());
  Collector collector;

  cluster->simulator().schedule_at(0, [&] {
    gateway.submit(serving_request(0, 0), collector.callback(0));
  });
  cluster->run_to_completion();

  ASSERT_EQ(collector.outcomes.size(), 1u);
  EXPECT_EQ(collector.outcomes[0].disposition, Disposition::kCompleted);
  EXPECT_TRUE(collector.outcomes[0].slo_met);
  EXPECT_EQ(gateway.counters().submitted, 1);
  EXPECT_EQ(gateway.counters().completed, 1);
  EXPECT_EQ(gateway.counters().slo_met, 1);
  EXPECT_EQ(gateway.in_flight(), 0u);
  EXPECT_DOUBLE_EQ(gateway.slo_attainment(), 1.0);
  const auto& stats = gateway.model_stats().at(0);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_DOUBLE_EQ(stats.slo_attainment(), 1.0);
  EXPECT_GT(stats.latency_s.mean(), 0.0);
}

TEST(GatewayAdmissionTest, ZeroCapacityWindowShedsEverything) {
  auto cluster = testkit::ClusterBuilder().nodes(1).gpus_per_node(2).build();
  GatewayConfig config;
  config.max_in_flight = 0;
  Gateway gateway(cluster.get(), config);
  Collector collector;

  cluster->simulator().schedule_at(0, [&] {
    for (std::int64_t i = 0; i < 5; ++i) {
      gateway.submit(serving_request(i, 0), collector.callback(i));
    }
  });
  cluster->run_to_completion();

  EXPECT_EQ(collector.outcomes.size(), 5u);
  EXPECT_EQ(collector.count(Disposition::kShed), 5u);
  EXPECT_EQ(gateway.counters().shed, 5);
  EXPECT_EQ(gateway.counters().admitted, 0);
  EXPECT_EQ(cluster->engine().completions().size(), 0u);
}

TEST(GatewayAdmissionTest, ExpiredAtSubmitResolvesImmediately) {
  auto cluster = testkit::ClusterBuilder().nodes(1).gpus_per_node(2).build();
  Gateway gateway(cluster.get());
  Collector collector;

  cluster->simulator().schedule_at(sec(5), [&] {
    core::Request stale = serving_request(0, 0);
    stale.deadline = sec(3);  // already in the past at submit
    gateway.submit(std::move(stale), collector.callback(0));
  });
  cluster->run_to_completion();

  ASSERT_EQ(collector.outcomes.size(), 1u);
  EXPECT_EQ(collector.outcomes[0].disposition, Disposition::kExpired);
  EXPECT_EQ(gateway.counters().expired, 1);
  EXPECT_EQ(gateway.counters().admitted, 0);
}

TEST(GatewayAdmissionTest, ShedsUnderBurstBeyondWindowAndPendingBounds) {
  auto cluster = testkit::ClusterBuilder().nodes(1).gpus_per_node(2).build();
  GatewayConfig config;
  config.max_in_flight = 2;
  config.max_pending = 2;
  config.default_slo = minutes(5);  // generous: pending-queue estimate passes
  Gateway gateway(cluster.get(), config);
  Collector collector;

  constexpr std::int64_t kBurst = 10;
  cluster->simulator().schedule_at(0, [&] {
    for (std::int64_t i = 0; i < kBurst; ++i) {
      gateway.submit(serving_request(i, 0), collector.callback(i));
    }
    // Window full, pending bounded: the overflow shed synchronously.
    EXPECT_EQ(gateway.in_flight(), 2u);
    EXPECT_EQ(gateway.pending(), 2u);
  });
  cluster->run_to_completion();

  EXPECT_EQ(collector.outcomes.size(), static_cast<std::size_t>(kBurst));
  EXPECT_EQ(collector.count(Disposition::kShed), 6u);
  EXPECT_EQ(collector.count(Disposition::kCompleted), 4u);
  EXPECT_EQ(gateway.counters().admitted, 4);
  EXPECT_EQ(cluster->engine().completions().size(), 4u);
  EXPECT_EQ(gateway.pending(), 0u);
}

TEST(GatewayAdmissionTest, TightDeadlineShedsInsteadOfQueueing) {
  auto cluster = testkit::ClusterBuilder().nodes(1).gpus_per_node(2).build();
  GatewayConfig config;
  config.max_in_flight = 1;
  // SLO far below any backlog estimate: over-window submissions must be
  // shed (queueing them would just deliver expiries later).
  config.default_slo = msec(1);
  Gateway gateway(cluster.get(), config);
  Collector collector;

  cluster->simulator().schedule_at(0, [&] {
    for (std::int64_t i = 0; i < 3; ++i) {
      gateway.submit(serving_request(i, 0), collector.callback(i));
    }
  });
  cluster->run_to_completion();

  // First admitted (window had room; admission never rejects on
  // estimate), the rest shed by the estimate-vs-deadline decision.
  EXPECT_EQ(collector.count(Disposition::kShed), 2u);
  EXPECT_EQ(gateway.pending(), 0u);
  ASSERT_EQ(cluster->engine().completions().size(), 1u);
  // The admitted request blew its (absurd) deadline: completed, SLO missed.
  EXPECT_EQ(collector.count(Disposition::kCompleted), 1u);
  EXPECT_EQ(gateway.counters().slo_met, 0);
}

// ---------------------------------------------------------------------------
// Completion-callback ordering and windowed outcomes
// ---------------------------------------------------------------------------

TEST(GatewayOrderingTest, CallbacksFollowEngineCompletionLogOrder) {
  auto cluster = testkit::ClusterBuilder().nodes(1).gpus_per_node(3).models(4).build();
  Gateway gateway(cluster.get());
  Collector collector;

  for (std::int64_t i = 0; i < 24; ++i) {
    cluster->simulator().schedule_at(msec(100) * i, [&, i] {
      gateway.submit(serving_request(i, i % 4), collector.callback(i));
    });
  }
  cluster->run_to_completion();

  const auto& log = cluster->engine().completions();
  ASSERT_EQ(collector.outcomes.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(collector.outcomes[i].id, log[i].id.value()) << "position " << i;
    EXPECT_EQ(collector.outcomes[i].disposition, Disposition::kCompleted);
  }
}

TEST(GatewayStatsTest, WindowedOutcomesTrimAndQuantiles) {
  auto cluster = testkit::ClusterBuilder().nodes(1).gpus_per_node(2).build();
  GatewayConfig config;
  config.stats_window = sec(30);
  Gateway gateway(cluster.get(), config);
  Collector collector;

  for (std::int64_t i = 0; i < 6; ++i) {
    cluster->simulator().schedule_at(sec(10) * i, [&, i] {
      gateway.submit(serving_request(i, 0), collector.callback(i));
    });
  }
  cluster->run_to_completion();

  // Only completions inside the trailing 30s survive in the window.
  const WindowedOutcomes window = gateway.windowed_outcomes();
  EXPECT_GT(window.completions, 0u);
  EXPECT_LT(window.completions, 6u);
  EXPECT_GT(window.p99_latency, 0);
  EXPECT_GE(window.p99_latency, window.p50_latency);
  EXPECT_DOUBLE_EQ(window.shed_fraction(), 0.0);
}

// ---------------------------------------------------------------------------
// Client generators
// ---------------------------------------------------------------------------

TEST(OpenLoopClientTest, GeneratesPerMinuteRatesLazily) {
  sim::Simulator simulator;
  std::vector<SimTime> arrivals;
  trace::ClientSink sink = [&](core::Request request, std::function<void()> done) {
    EXPECT_TRUE(request.id.valid());
    EXPECT_LT(request.model.value(), 3);
    arrivals.push_back(simulator.now());
    done();
  };
  trace::ClientConfig config;
  config.model_count = 3;
  trace::OpenLoopClient client(&simulator, sink, config, {5, 0, 3});

  client.start();
  simulator.run();

  EXPECT_EQ(client.submitted(), 8u);
  EXPECT_EQ(client.completed(), 8u);
  EXPECT_EQ(client.horizon(), minutes(3));
  ASSERT_EQ(arrivals.size(), 8u);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
  // Minute 1 carries zero arrivals.
  for (const SimTime t : arrivals) {
    EXPECT_TRUE(t < minutes(1) || t >= minutes(2));
  }
}

TEST(OpenLoopClientTest, DeterministicForAGivenSeed) {
  auto run_once = [] {
    sim::Simulator simulator;
    std::vector<std::int64_t> models;
    trace::ClientSink sink = [&](core::Request request, std::function<void()> done) {
      models.push_back(request.model.value());
      done();
    };
    trace::ClientConfig config;
    config.model_count = 5;
    config.seed = 99;
    trace::OpenLoopClient client(&simulator, sink, config, {20, 20});
    client.start();
    simulator.run();
    return models;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ClosedLoopClientTest, ConcurrencyNeverExceedsUsers) {
  auto cluster = testkit::ClusterBuilder().nodes(1).gpus_per_node(2).build();
  Gateway gateway(cluster.get());

  std::size_t max_in_flight = 0;
  trace::ClientSink sink = [&](core::Request request, std::function<void()> done) {
    gateway.submit(std::move(request),
                   [done = std::move(done)](const GatewayResult&) { done(); });
  };
  trace::ClientConfig config;
  config.model_count = 2;
  trace::ClosedLoopClient client(&cluster->simulator(), sink, config, /*users=*/3,
                                 /*think_time=*/msec(50), /*duration=*/sec(30));
  // Track peak concurrency from the client's own accounting every 100ms.
  for (SimTime t = 0; t < sec(30); t += msec(100)) {
    cluster->simulator().schedule_at(t, [&] {
      max_in_flight = std::max(max_in_flight, client.in_flight());
    });
  }
  client.start();
  cluster->run_to_completion();

  EXPECT_GT(client.submitted(), 3u);  // users cycled more than once
  EXPECT_EQ(client.completed(), client.submitted());
  EXPECT_EQ(client.in_flight(), 0u);
  EXPECT_LE(max_in_flight, 3u);
  EXPECT_EQ(cluster->engine().completions().size(), client.submitted());
}

// ---------------------------------------------------------------------------
// Chaos: GPU killed mid-request
// ---------------------------------------------------------------------------

TEST(GatewayChaosTest, KilledGpuFailsInFlightAndRequeuesLocalQueue) {
  auto cluster = testkit::ClusterBuilder().nodes(1).gpus_per_node(2).build();
  Gateway gateway(cluster.get());
  Collector collector;

  // A (model 0) takes a GPU with a cold load (~2.4s) and infers (~1.3s).
  // B and C (same model) arrive near A's finish: waiting the residual
  // fraction of a second beats a fresh 2.4s load, so LALB parks them in
  // that GPU's local queue for the guaranteed hit (each holding a pin on
  // the model).
  cluster->simulator().schedule_at(0, [&] {
    gateway.submit(serving_request(0, 0), collector.callback(0));
  });
  GpuId victim;
  cluster->simulator().schedule_at(msec(3300), [&] {
    const auto busy = cluster->engine().busy_gpus();
    ASSERT_EQ(busy.size(), 1u);
    victim = busy[0];
    gateway.submit(serving_request(1, 0), collector.callback(1));
    gateway.submit(serving_request(2, 0), collector.callback(2));
    ASSERT_GT(cluster->engine().local_queues().size(victim), 0u)
        << "expected LALB to park same-model requests in the local queue";
  });
  cluster->simulator().schedule_at(msec(3500), [&] {
    ASSERT_TRUE(victim.valid());
    ASSERT_FALSE(cluster->engine().is_idle(victim)) << "A already finished";
    cluster->kill_gpu(victim);
  });
  cluster->run_to_completion();

  // All three callbacks fired: the in-flight request failed (not
  // silence), the requeued ones completed on the surviving GPU.
  ASSERT_EQ(collector.outcomes.size(), 3u);
  EXPECT_EQ(collector.count(Disposition::kFailed), 1u);
  EXPECT_EQ(collector.count(Disposition::kCompleted), 2u);
  EXPECT_EQ(collector.outcomes.back().disposition != Disposition::kFailed, true);
  EXPECT_EQ(gateway.counters().failed, 1);
  EXPECT_EQ(gateway.counters().completed, 2);
  EXPECT_EQ(gateway.in_flight(), 0u);

  // The engine recorded the failure separately from the completion log.
  ASSERT_EQ(cluster->engine().failures().size(), 1u);
  EXPECT_TRUE(cluster->engine().failures()[0].failed);
  EXPECT_EQ(cluster->engine().failures()[0].gpu, victim);
  EXPECT_EQ(cluster->engine().completions().size(), 2u);
  EXPECT_EQ(cluster->engine().pending(), 0u);

  // No stranded pins anywhere, and the dead GPU left every index.
  EXPECT_FALSE(cluster->cache().is_registered(victim));
  EXPECT_EQ(cluster->engine().schedulable_gpu_count(), 1u);
  for (const GpuId gpu : cluster->engine().idle_gpus()) {
    EXPECT_FALSE(cluster->cache().state(gpu).any_pinned());
  }
}

TEST(GatewayChaosTest, KillIdleGpuRetiresWithoutCallbacks) {
  auto cluster = testkit::ClusterBuilder().nodes(1).gpus_per_node(2).build();
  Gateway gateway(cluster.get());

  cluster->simulator().schedule_at(0, [&] { cluster->kill_gpu(GpuId(1)); });
  cluster->run_to_completion();

  EXPECT_EQ(cluster->engine().schedulable_gpu_count(), 1u);
  EXPECT_EQ(cluster->engine().failures().size(), 0u);
  EXPECT_EQ(gateway.counters().failed, 0);
}

// ---------------------------------------------------------------------------
// SLO-aware scaling policy bands
// ---------------------------------------------------------------------------

autoscale::FleetView steady_view(SimTime now, std::size_t gpus, std::size_t busy) {
  autoscale::FleetView view;
  view.now = now;
  view.schedulable_gpus = gpus;
  view.idle_gpus = gpus - busy;
  view.in_flight = busy;
  view.min_gpus = 1;
  view.max_gpus = 64;
  return view;
}

TEST(SloAwarePolicyTest, DangerBandBoostsAndVetoesRemoves) {
  autoscale::SloSignal signal;
  signal.samples = 100;
  signal.deep_wait_fraction = 0.6;  // deep congestion
  autoscale::SloAwarePolicyConfig config;
  config.min_samples = 1;
  autoscale::SloAwarePolicy policy([&] { return signal; }, config);
  policy.bind(sec(5));

  const auto decision = policy.evaluate(steady_view(minutes(1), 8, 8));
  EXPECT_GT(decision.add, 0u);
  EXPECT_EQ(decision.remove, 0u);
}

TEST(SloAwarePolicyTest, HoldBandOnlyVetoesRemoves) {
  autoscale::SloSignal signal;
  signal.samples = 100;
  autoscale::SloAwarePolicyConfig config;
  config.min_samples = 1;
  autoscale::SloAwarePolicy policy([&] { return signal; }, config);
  policy.bind(sec(5));

  // Seed the envelope/forecast with a lightly-busy fleet (the 2x floor
  // stays below the fleet), then report deep waits between the safe and
  // danger fractions: the surplus the forecast would reclaim is vetoed,
  // and nothing is added either.
  for (int tick = 0; tick < 24; ++tick) {
    policy.evaluate(steady_view(sec(5) * tick, 8, 3));
  }
  signal.deep_wait_fraction =
      (config.deep_wait_safe + config.deep_wait_danger) / 2;
  const auto held = policy.evaluate(steady_view(minutes(3), 8, 3));
  EXPECT_EQ(held.add, 0u);
  EXPECT_EQ(held.remove, 0u);
}

TEST(SloAwarePolicyTest, EnvelopeFloorBacksCleanScaleDowns) {
  autoscale::SloSignal clean;
  clean.samples = 100;
  clean.deep_wait_fraction = 0.0;
  autoscale::SloAwarePolicyConfig config;
  config.min_samples = 1;
  config.burst_headroom = 2.0;
  autoscale::SloAwarePolicy policy([&] { return clean; }, config);
  policy.bind(sec(5));

  // Steady 6-busy fleet of 16: the envelope floor is 2 x 6 = 12, so the
  // forecast may reclaim down to 12 but never below.
  autoscale::ScalingDecision last;
  std::size_t gpus = 16;
  for (int tick = 0; tick < 120 && gpus > 0; ++tick) {
    last = policy.evaluate(steady_view(sec(30) * tick, gpus, 6));
    ASSERT_LE(last.remove, gpus);
    gpus += last.add;
    gpus -= last.remove;
  }
  EXPECT_EQ(gpus, 12u);
}

// ---------------------------------------------------------------------------
// Transparent retry: budget edge cases
// ---------------------------------------------------------------------------

TEST(GatewayRetryTest, TransparentRetryCompletesAfterGpuDeath) {
  auto cluster = testkit::ClusterBuilder().nodes(1).gpus_per_node(2).build();
  GatewayConfig config;
  config.max_retries = 2;
  config.default_slo = sec(30);
  Gateway gateway(cluster.get(), config);
  Collector collector;

  cluster->simulator().schedule_at(0, [&] {
    gateway.submit(serving_request(0, 0), collector.callback(0));
  });
  cluster->simulator().schedule_at(msec(2000), [&] {
    const auto busy = cluster->engine().busy_gpus();
    ASSERT_EQ(busy.size(), 1u);
    cluster->kill_gpu(busy[0]);  // mid-load; the budget covers a retry
  });
  cluster->run_to_completion();

  // The caller saw one clean completion; the death stayed internal.
  ASSERT_EQ(collector.outcomes.size(), 1u);
  EXPECT_EQ(collector.outcomes[0].disposition, Disposition::kCompleted);
  EXPECT_EQ(gateway.counters().retries, 1);
  EXPECT_EQ(gateway.counters().completed, 1);
  EXPECT_EQ(gateway.counters().failed, 0);
  EXPECT_EQ(gateway.model_stats().at(0).retried, 1);
  // The engine still logged the killed incarnation as a failure.
  EXPECT_EQ(cluster->engine().failures().size(), 1u);
  EXPECT_EQ(gateway.in_flight(), 0u);
}

TEST(GatewayRetryTest, RetryDeniedWhenSloBudgetAlreadySpent) {
  auto cluster = testkit::ClusterBuilder().nodes(1).gpus_per_node(2).build();
  GatewayConfig config;
  config.max_retries = 2;
  config.default_slo = sec(3);  // a fresh cold load (~3.7s) cannot make it
  Gateway gateway(cluster.get(), config);

  GatewayResult seen;
  std::size_t calls = 0;
  cluster->simulator().schedule_at(0, [&] {
    gateway.submit(serving_request(0, 0), [&](const GatewayResult& result) {
      seen = result;
      ++calls;
    });
  });
  GpuId victim;
  cluster->simulator().schedule_at(msec(2000), [&] {
    const auto busy = cluster->engine().busy_gpus();
    ASSERT_EQ(busy.size(), 1u);
    victim = busy[0];
    cluster->kill_gpu(victim);
  });
  cluster->run_to_completion();

  // Retry budget remained, but the SLO budget was gone: the failure is
  // reported at once instead of burning a GPU on a doomed resubmission.
  ASSERT_EQ(calls, 1u);
  EXPECT_EQ(seen.disposition, Disposition::kFailed);
  EXPECT_EQ(seen.record.gpu, victim);
  EXPECT_EQ(gateway.counters().retries, 0);
  EXPECT_EQ(gateway.counters().retries_denied, 1);
  EXPECT_EQ(gateway.counters().failed, 1);
}

TEST(GatewayRetryTest, ExhaustionReportsTheOriginalCause) {
  auto cluster = testkit::ClusterBuilder().nodes(1).gpus_per_node(2).build();
  GatewayConfig config;
  config.max_retries = 1;
  config.default_slo = sec(30);
  Gateway gateway(cluster.get(), config);

  GatewayResult seen;
  std::size_t calls = 0;
  cluster->simulator().schedule_at(0, [&] {
    gateway.submit(serving_request(0, 0), [&](const GatewayResult& result) {
      seen = result;
      ++calls;
    });
  });
  GpuId first_victim;
  cluster->simulator().schedule_at(msec(2000), [&] {
    const auto busy = cluster->engine().busy_gpus();
    ASSERT_EQ(busy.size(), 1u);
    first_victim = busy[0];
    cluster->kill_gpu(first_victim);  // retry moves to the survivor
  });
  cluster->simulator().schedule_at(msec(4500), [&] {
    const auto busy = cluster->engine().busy_gpus();
    ASSERT_EQ(busy.size(), 1u);
    ASSERT_NE(busy[0], first_victim);
    cluster->kill_gpu(busy[0]);  // and dies again, budget exhausted
  });
  cluster->run_to_completion();

  // The caller learns what originally went wrong — the first GPU's death
  // — not whatever the last doomed incarnation happened to hit.
  ASSERT_EQ(calls, 1u);
  EXPECT_EQ(seen.disposition, Disposition::kFailed);
  EXPECT_EQ(seen.record.gpu, first_victim);
  EXPECT_EQ(gateway.counters().retries, 1);
  EXPECT_EQ(gateway.counters().retries_denied, 0);
  EXPECT_EQ(gateway.counters().failed, 1);
  EXPECT_EQ(gateway.in_flight(), 0u);
}

TEST(GatewayRetryTest, RetryDuringBurstKeepsWindowInvariants) {
  auto cluster = testkit::ClusterBuilder().nodes(1).gpus_per_node(2).build();
  GatewayConfig config;
  config.max_in_flight = 2;
  config.max_pending = 8;
  config.max_retries = 2;
  config.default_slo = minutes(5);  // generous: nothing sheds on estimate
  Gateway gateway(cluster.get(), config);
  Collector collector;

  constexpr std::int64_t kBurst = 6;
  cluster->simulator().schedule_at(0, [&] {
    for (std::int64_t i = 0; i < kBurst; ++i) {
      gateway.submit(serving_request(i, i % 2), collector.callback(i));
    }
    EXPECT_EQ(gateway.in_flight(), 2u);
    EXPECT_EQ(gateway.pending(), 4u);
  });
  cluster->simulator().schedule_at(msec(2000), [&] {
    const auto busy = cluster->engine().busy_gpus();
    ASSERT_FALSE(busy.empty());
    cluster->kill_gpu(busy[0]);
  });
  cluster->run_to_completion();

  // The retry rides the same window slot as the original admission: the
  // pending queue keeps draining and every burst member resolves exactly
  // once, all as completions.
  ASSERT_EQ(collector.outcomes.size(), static_cast<std::size_t>(kBurst));
  for (std::int64_t i = 0; i < kBurst; ++i) {
    EXPECT_EQ(std::count_if(collector.outcomes.begin(), collector.outcomes.end(),
                            [&](const Outcome& o) { return o.id == i; }),
              1)
        << "request " << i;
  }
  EXPECT_EQ(collector.count(Disposition::kCompleted),
            static_cast<std::size_t>(kBurst));
  EXPECT_GE(gateway.counters().retries, 1);
  EXPECT_EQ(gateway.counters().shed, 0);
  EXPECT_EQ(gateway.in_flight(), 0u);
  EXPECT_EQ(gateway.pending(), 0u);
  EXPECT_EQ(cluster->engine().pending(), 0u);
}

// ---------------------------------------------------------------------------
// Hedging: exactly-once under every interleaving
// ---------------------------------------------------------------------------

// A gray-degraded GPU makes the parked primary overdue; the hedge fires,
// wins on a healthy GPU, and the parked primary is cancelled for free.
TEST(GatewayHedgeTest, HedgeWinsAndCancelsParkedPrimary) {
  auto cluster = testkit::ClusterBuilder().nodes(1).gpus_per_node(2).build();
  GatewayConfig config;
  config.default_slo = sec(12);
  config.hedge_budget_fraction = 0.1;
  Gateway gateway(cluster.get(), config);
  Collector collector;

  GpuId straggler;
  cluster->simulator().schedule_at(0, [&] {
    // Slowdown is sampled at dispatch, so degrade both GPUs before the
    // submit: whichever takes request 0 becomes the straggler (10x slower
    // while its believed ~3.7s finish stays published); the other is
    // healed right back and stays the healthy hedge target.
    for (std::int64_t i = 0; i < 2; ++i) {
      cluster->engine().degrade_gpu(GpuId(i), 10.0);
    }
    gateway.submit(serving_request(0, 0), collector.callback(0));
    const auto busy = cluster->engine().busy_gpus();
    ASSERT_EQ(busy.size(), 1u);
    straggler = busy[0];
    for (std::int64_t i = 0; i < 2; ++i) {
      if (GpuId(i) != straggler) cluster->engine().degrade_gpu(GpuId(i), 1.0);
    }
  });
  cluster->simulator().schedule_at(msec(2000), [&] {
    // Parks behind the straggler (believed residual ~1.7s < ~2.4s load).
    gateway.submit(serving_request(1, 0), collector.callback(1));
    ASSERT_EQ(cluster->engine().local_queues().size(straggler), 1u);
  });
  cluster->run_to_completion();

  // The hedge launched once the straggler's overdueness exceeded the
  // duplicate's cold ETA, won on the healthy GPU, and cancelled the
  // parked primary without wasting any GPU time on it.
  ASSERT_EQ(collector.outcomes.size(), 2u);
  EXPECT_EQ(collector.count(Disposition::kCompleted), 2u);
  EXPECT_EQ(gateway.counters().hedges, 1);
  EXPECT_EQ(gateway.counters().hedge_wins, 1);
  EXPECT_EQ(gateway.counters().hedges_cancelled, 0);
  // A parked loser is a queue removal, not an abort: no cancellation is
  // metered and no GPU-time is wasted.
  EXPECT_EQ(cluster->engine().cancellations(), 0);
  EXPECT_EQ(cluster->engine().cancelled_execution_time(), 0);
  EXPECT_EQ(cluster->engine().pending(), 0u);
  EXPECT_EQ(gateway.in_flight(), 0u);
  for (const GpuId gpu : cluster->engine().idle_gpus()) {
    EXPECT_FALSE(cluster->cache().state(gpu).any_pinned());
  }
}

TEST(GatewayHedgeTest, BothCopiesKilledStillResolvesExactlyOnce) {
  auto cluster = testkit::ClusterBuilder().nodes(1).gpus_per_node(4).build();
  GatewayConfig config;
  config.default_slo = sec(12);
  config.hedge_budget_fraction = 0.1;
  config.max_retries = 0;
  Gateway gateway(cluster.get(), config);

  std::size_t calls_a = 0, calls_b = 0;
  GatewayResult seen_b;
  GpuId straggler, hedge_gpu, primary_gpu;
  cluster->simulator().schedule_at(0, [&] {
    for (std::int64_t i = 0; i < 4; ++i) {
      cluster->engine().degrade_gpu(GpuId(i), 10.0);
    }
    gateway.submit(serving_request(0, 0),
                   [&](const GatewayResult&) { ++calls_a; });
    const auto busy = cluster->engine().busy_gpus();
    ASSERT_EQ(busy.size(), 1u);
    straggler = busy[0];
    for (std::int64_t i = 0; i < 4; ++i) {
      if (GpuId(i) != straggler) cluster->engine().degrade_gpu(GpuId(i), 1.0);
    }
  });
  cluster->simulator().schedule_at(msec(2000), [&] {
    gateway.submit(serving_request(1, 0), [&](const GatewayResult& result) {
      seen_b = result;
      ++calls_b;
    });
    ASSERT_EQ(cluster->engine().local_queues().size(straggler), 1u);
  });
  // By t=8s the hedge has launched (overdueness beat the cold ETA around
  // t~7.5s). Kill the straggler: request 0 fails, the parked primary
  // requeues and dispatches onto a second healthy GPU — both copies of
  // request 1 now execute. Then kill them both.
  cluster->simulator().schedule_at(sec(8), [&] {
    ASSERT_EQ(gateway.counters().hedges, 1);
    const auto busy = cluster->engine().busy_gpus();
    ASSERT_EQ(busy.size(), 2u);
    hedge_gpu = busy[0] == straggler ? busy[1] : busy[0];
    cluster->kill_gpu(straggler);
  });
  cluster->simulator().schedule_at(msec(8200), [&] {
    // The requeued primary landed on a second healthy GPU.
    const auto busy = cluster->engine().busy_gpus();
    ASSERT_EQ(busy.size(), 2u);
    primary_gpu = busy[0] == hedge_gpu ? busy[1] : busy[0];
    ASSERT_NE(primary_gpu, straggler);
  });
  cluster->simulator().schedule_at(msec(8500), [&] {
    cluster->kill_gpu(primary_gpu);  // first copy down; hedge still racing
  });
  cluster->simulator().schedule_at(sec(9), [&] {
    cluster->kill_gpu(hedge_gpu);  // second copy down; no retries left
  });
  cluster->run_to_completion();

  // Both the straggling request and the doubly-killed request resolved
  // exactly once, the latter with the first copy's death as the cause.
  EXPECT_EQ(calls_a, 1u);
  ASSERT_EQ(calls_b, 1u);
  EXPECT_EQ(seen_b.disposition, Disposition::kFailed);
  EXPECT_EQ(seen_b.record.gpu, primary_gpu);
  EXPECT_EQ(gateway.counters().failed, 2);
  EXPECT_EQ(gateway.counters().completed, 0);
  EXPECT_EQ(gateway.counters().hedges, 1);
  EXPECT_EQ(gateway.counters().hedge_wins, 0);
  EXPECT_EQ(gateway.in_flight(), 0u);
  EXPECT_EQ(cluster->engine().pending(), 0u);
  EXPECT_EQ(cluster->engine().schedulable_gpu_count(), 1u);
  for (const GpuId gpu : cluster->engine().idle_gpus()) {
    EXPECT_FALSE(cluster->cache().state(gpu).any_pinned());
  }
}

// Randomized interleavings: gray degradation plus random GPU kills over
// many seeds exercise hedge-vs-kill races the deterministic tests cannot
// enumerate (primary killed while hedged, hedge killed mid-load, kills
// landing between the trigger and the dispatch, ...). The invariant under
// every interleaving: each submission resolves exactly once, and nothing
// — window slots, engine queue entries, cache pins — leaks.
TEST(GatewayHedgeTest, ExactlyOnceUnderRandomizedChaosSweep) {
  std::int64_t total_hedges = 0;
  std::int64_t total_kills = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto cluster =
        testkit::ClusterBuilder().nodes(2).gpus_per_node(2).models(4).build();
    GatewayConfig config;
    config.max_in_flight = 32;
    config.default_slo = sec(20);
    config.max_retries = 2;
    config.hedge_budget_fraction = 0.1;
    Gateway gateway(cluster.get(), config);
    auto rng = std::make_shared<Rng>(seed);

    std::unordered_map<std::int64_t, int> calls;
    trace::ClientSink sink = [&](core::Request request,
                                 std::function<void()> done) {
      const std::int64_t id = request.id.value();
      gateway.submit(std::move(request),
                     [&calls, id, done = std::move(done)](const GatewayResult&) {
                       ++calls[id];
                       done();
                     });
    };
    trace::ClientConfig client_config;
    client_config.model_count = 4;
    client_config.seed = seed;
    trace::OpenLoopClient client(&cluster->simulator(), sink, client_config,
                                 {90, 90});

    const std::int64_t gpu_count =
        static_cast<std::int64_t>(cluster->gpu_count());
    cluster->simulator().schedule_at(0, [&, rng] {
      // One hidden straggler per run: the overdueness source hedges need.
      const GpuId gpu(static_cast<std::int64_t>(
          rng->next_below(static_cast<std::uint64_t>(gpu_count))));
      cluster->engine().degrade_gpu(gpu, 8.0);
    });
    std::int64_t kills = 0;
    for (int k = 0; k < 3; ++k) {
      const SimTime at =
          sec(5) + static_cast<SimTime>(rng->next_below(sec(110)));
      cluster->simulator().schedule_at(at, [&, rng] {
        std::vector<GpuId> registered;
        for (std::int64_t i = 0; i < gpu_count; ++i) {
          if (cluster->engine().is_registered(GpuId(i))) {
            registered.push_back(GpuId(i));
          }
        }
        if (registered.size() <= 1) return;  // never go extinct
        cluster->kill_gpu(registered[rng->next_below(registered.size())]);
        ++kills;
      });
    }

    client.start();
    cluster->run_to_completion();

    EXPECT_EQ(client.completed(), client.submitted()) << "seed " << seed;
    EXPECT_EQ(calls.size(), client.submitted()) << "seed " << seed;
    for (const auto& [id, count] : calls) {
      EXPECT_EQ(count, 1) << "seed " << seed << " request " << id;
    }
    const GatewayCounters& counters = gateway.counters();
    EXPECT_EQ(counters.completed + counters.shed + counters.expired +
                  counters.failed,
              counters.submitted)
        << "seed " << seed;
    EXPECT_EQ(gateway.in_flight(), 0u) << "seed " << seed;
    EXPECT_EQ(gateway.pending(), 0u) << "seed " << seed;
    EXPECT_EQ(cluster->engine().pending(), 0u) << "seed " << seed;
    for (std::int64_t i = 0; i < gpu_count; ++i) {
      if (!cluster->engine().is_registered(GpuId(i))) continue;
      EXPECT_FALSE(cluster->cache().state(GpuId(i)).any_pinned())
          << "seed " << seed << " gpu " << i;
    }
    total_hedges += counters.hedges;
    total_kills += kills;
  }
  // The sweep must actually have exercised the machinery.
  EXPECT_GT(total_hedges, 0);
  EXPECT_GT(total_kills, 0);
}

// ---------------------------------------------------------------------------
// Digest guard: the Gateway is a behavior-preserving ingestion path
// ---------------------------------------------------------------------------

std::uint64_t completion_digest(const std::vector<core::CompletionRecord>& records) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  auto mix = [&hash](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (8 * i)) & 0xff;
      hash *= 0x100000001b3ull;
    }
  };
  for (const auto& r : records) {
    mix(static_cast<std::uint64_t>(r.id.value()));
    mix(static_cast<std::uint64_t>(r.gpu.value()));
    mix(static_cast<std::uint64_t>(r.arrival));
    mix(static_cast<std::uint64_t>(r.dispatched));
    mix(static_cast<std::uint64_t>(r.completed));
    mix((r.cache_hit ? 1u : 0u) | (r.false_miss ? 2u : 0u) |
        (r.via_local_queue ? 4u : 0u));
  }
  return hash;
}

TEST(GatewayDeterminismTest, PaperGridBitIdenticalThroughGateway) {
  // Full paper window (6 min x 325 rpm), working set 15, all three
  // schedulers: routing every request through a Gateway with an
  // unbounded window and no SLO stamping must leave the completion
  // stream bit-identical to direct engine submission.
  const trace::Workload workload = testkit::make_workload(15, 7, 6);
  for (core::PolicyName policy :
       {core::PolicyName::kLb, core::PolicyName::kLalb, core::PolicyName::kLalbO3}) {
    cluster::ClusterConfig config;  // the paper's 3x4 testbed
    config.policy = policy;

    cluster::SimCluster direct(config, workload.registry);
    direct.replay(workload.requests);

    cluster::SimCluster served(config, workload.registry);
    GatewayConfig gw_config;
    gw_config.max_in_flight = workload.requests.size() + 1;
    gw_config.default_slo = 0;  // no deadline stamping
    Gateway gateway(&served, gw_config);
    std::size_t done = 0;
    served.replay(workload.requests, [&](core::Request request) {
      gateway.submit(std::move(request),
                     [&done](const GatewayResult& result) {
                       ASSERT_EQ(result.disposition, Disposition::kCompleted);
                       ++done;
                     });
    });

    EXPECT_EQ(done, workload.requests.size());
    EXPECT_EQ(completion_digest(direct.engine().completions()),
              completion_digest(served.engine().completions()))
        << core::policy_display_name(policy);
  }
}

}  // namespace
}  // namespace gfaas::gateway
