// Unit tests for the cache module: eviction policy orderings, per-GPU
// cache state (insert/remove/pin/eviction planning), and the global
// CacheManager with its datastore mirroring.
#include <gtest/gtest.h>

#include "cache/cache_manager.h"
#include "cache/policy.h"
#include "datastore/keys.h"
#include "datastore/kv_store.h"

namespace gfaas::cache {
namespace {

std::vector<std::int64_t> order_values(const EvictionPolicy& policy) {
  std::vector<std::int64_t> out;
  for (ModelId m : policy.eviction_order()) out.push_back(m.value());
  return out;
}

TEST(PolicyTest, LruEvictsLeastRecentlyUsed) {
  LruPolicy lru;
  lru.on_insert(ModelId(1));
  lru.on_insert(ModelId(2));
  lru.on_insert(ModelId(3));
  EXPECT_EQ(order_values(lru), (std::vector<std::int64_t>{1, 2, 3}));
  lru.on_access(ModelId(1));  // 1 becomes MRU
  EXPECT_EQ(order_values(lru), (std::vector<std::int64_t>{2, 3, 1}));
  lru.on_remove(ModelId(3));
  EXPECT_EQ(order_values(lru), (std::vector<std::int64_t>{2, 1}));
  EXPECT_EQ(lru.size(), 2u);
}

TEST(PolicyTest, MruEvictsMostRecentlyUsed) {
  MruPolicy mru;
  mru.on_insert(ModelId(1));
  mru.on_insert(ModelId(2));
  mru.on_access(ModelId(1));
  // Eviction order is most-recent first: 1 then 2.
  EXPECT_EQ(order_values(mru), (std::vector<std::int64_t>{1, 2}));
}

TEST(PolicyTest, FifoIgnoresAccesses) {
  FifoPolicy fifo;
  fifo.on_insert(ModelId(1));
  fifo.on_insert(ModelId(2));
  fifo.on_access(ModelId(1));
  fifo.on_access(ModelId(1));
  EXPECT_EQ(order_values(fifo), (std::vector<std::int64_t>{1, 2}));
}

TEST(PolicyTest, LfuEvictsLeastFrequent) {
  LfuPolicy lfu;
  lfu.on_insert(ModelId(1));
  lfu.on_insert(ModelId(2));
  lfu.on_insert(ModelId(3));
  lfu.on_access(ModelId(1));
  lfu.on_access(ModelId(1));
  lfu.on_access(ModelId(3));
  // Counts: 1 -> 3, 2 -> 1, 3 -> 2.
  EXPECT_EQ(order_values(lfu), (std::vector<std::int64_t>{2, 3, 1}));
}

TEST(PolicyTest, LfuTieBrokenByInsertionOrder) {
  LfuPolicy lfu;
  lfu.on_insert(ModelId(5));
  lfu.on_insert(ModelId(7));
  EXPECT_EQ(order_values(lfu), (std::vector<std::int64_t>{5, 7}));
}

TEST(PolicyTest, FactoryProducesAllKinds) {
  for (PolicyKind kind :
       {PolicyKind::kLru, PolicyKind::kMru, PolicyKind::kFifo, PolicyKind::kLfu}) {
    auto policy = make_policy(kind);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), policy_kind_name(kind));
  }
}

TEST(GpuCacheStateTest, InsertTracksBytes) {
  GpuCacheState state(GpuId(0), MB(1000), PolicyKind::kLru);
  EXPECT_TRUE(state.insert(ModelId(1), MB(300)).ok());
  EXPECT_EQ(state.used(), MB(300));
  EXPECT_EQ(state.free(), MB(700));
  EXPECT_TRUE(state.contains(ModelId(1)));
  EXPECT_EQ(state.size_of(ModelId(1)), MB(300));
}

TEST(GpuCacheStateTest, InsertRejectsOverflowDuplicateAndBadSize) {
  GpuCacheState state(GpuId(0), MB(1000), PolicyKind::kLru);
  ASSERT_TRUE(state.insert(ModelId(1), MB(800)).ok());
  EXPECT_EQ(state.insert(ModelId(2), MB(300)).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(state.insert(ModelId(1), MB(100)).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(state.insert(ModelId(3), 0).code(), StatusCode::kInvalidArgument);
}

TEST(GpuCacheStateTest, RemoveRespectsPins) {
  GpuCacheState state(GpuId(0), MB(1000), PolicyKind::kLru);
  ASSERT_TRUE(state.insert(ModelId(1), MB(100)).ok());
  state.pin(ModelId(1));
  EXPECT_EQ(state.remove(ModelId(1)).code(), StatusCode::kFailedPrecondition);
  state.unpin(ModelId(1));
  EXPECT_TRUE(state.remove(ModelId(1)).ok());
  EXPECT_EQ(state.remove(ModelId(1)).code(), StatusCode::kNotFound);
}

TEST(GpuCacheStateTest, NestedPinsCount) {
  GpuCacheState state(GpuId(0), MB(1000), PolicyKind::kLru);
  ASSERT_TRUE(state.insert(ModelId(1), MB(100)).ok());
  state.pin(ModelId(1));
  state.pin(ModelId(1));
  state.unpin(ModelId(1));
  EXPECT_TRUE(state.pinned(ModelId(1)));
  state.unpin(ModelId(1));
  EXPECT_FALSE(state.pinned(ModelId(1)));
}

TEST(GpuCacheStateTest, PlanEvictionFollowsLruOrder) {
  GpuCacheState state(GpuId(0), MB(1000), PolicyKind::kLru);
  ASSERT_TRUE(state.insert(ModelId(1), MB(400)).ok());
  ASSERT_TRUE(state.insert(ModelId(2), MB(400)).ok());
  ASSERT_TRUE(state.touch(ModelId(1)).ok());  // 2 is now LRU
  auto victims = state.plan_eviction(MB(500));
  ASSERT_TRUE(victims.ok());
  ASSERT_EQ(victims->size(), 1u);
  EXPECT_EQ((*victims)[0], ModelId(2));
}

TEST(GpuCacheStateTest, PlanEvictionEmptyWhenFits) {
  GpuCacheState state(GpuId(0), MB(1000), PolicyKind::kLru);
  ASSERT_TRUE(state.insert(ModelId(1), MB(100)).ok());
  auto victims = state.plan_eviction(MB(500));
  ASSERT_TRUE(victims.ok());
  EXPECT_TRUE(victims->empty());
}

TEST(GpuCacheStateTest, PlanEvictionSkipsPinned) {
  GpuCacheState state(GpuId(0), MB(1000), PolicyKind::kLru);
  ASSERT_TRUE(state.insert(ModelId(1), MB(400)).ok());
  ASSERT_TRUE(state.insert(ModelId(2), MB(400)).ok());
  state.pin(ModelId(1));
  auto victims = state.plan_eviction(MB(500));
  ASSERT_TRUE(victims.ok());
  ASSERT_EQ(victims->size(), 1u);
  EXPECT_EQ((*victims)[0], ModelId(2));  // pinned 1 skipped despite LRU
  state.pin(ModelId(2));
  EXPECT_EQ(state.plan_eviction(MB(500)).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(CacheManagerTest, HitMissEvictionStats) {
  CacheManager manager(PolicyKind::kLru);
  manager.add_gpu(GpuId(0), MB(1000));
  EXPECT_FALSE(manager.is_cached(GpuId(0), ModelId(1)));
  EXPECT_TRUE(manager.record_insertion(GpuId(0), ModelId(1), MB(400)).ok());
  EXPECT_TRUE(manager.is_cached(GpuId(0), ModelId(1)));
  EXPECT_TRUE(manager.record_access(GpuId(0), ModelId(1)).ok());
  EXPECT_TRUE(manager.record_eviction(GpuId(0), ModelId(1)).ok());
  EXPECT_EQ(manager.stats().hits, 1);
  EXPECT_EQ(manager.stats().misses, 1);
  EXPECT_EQ(manager.stats().evictions, 1);
  EXPECT_DOUBLE_EQ(manager.stats().miss_ratio(), 0.5);
}

TEST(CacheManagerTest, LocationsTrackMultipleGpus) {
  CacheManager manager(PolicyKind::kLru);
  manager.add_gpu(GpuId(0), MB(1000));
  manager.add_gpu(GpuId(1), MB(1000));
  manager.add_gpu(GpuId(2), MB(1000));
  ASSERT_TRUE(manager.record_insertion(GpuId(0), ModelId(7), MB(100)).ok());
  ASSERT_TRUE(manager.record_insertion(GpuId(2), ModelId(7), MB(100)).ok());
  const auto locations = manager.locations(ModelId(7));
  ASSERT_EQ(locations.size(), 2u);
  EXPECT_EQ(locations[0], GpuId(0));
  EXPECT_EQ(locations[1], GpuId(2));
  EXPECT_TRUE(manager.cached_anywhere(ModelId(7)));
  EXPECT_FALSE(manager.cached_anywhere(ModelId(8)));
  EXPECT_EQ(manager.duplicate_count(ModelId(7)), 2u);
}

TEST(CacheManagerTest, PinUnpinValidatesResidency) {
  CacheManager manager(PolicyKind::kLru);
  manager.add_gpu(GpuId(0), MB(1000));
  EXPECT_EQ(manager.pin(GpuId(0), ModelId(1)).code(), StatusCode::kNotFound);
  ASSERT_TRUE(manager.record_insertion(GpuId(0), ModelId(1), MB(100)).ok());
  EXPECT_TRUE(manager.pin(GpuId(0), ModelId(1)).ok());
  EXPECT_TRUE(manager.unpin(GpuId(0), ModelId(1)).ok());
  EXPECT_EQ(manager.unpin(GpuId(0), ModelId(2)).code(), StatusCode::kNotFound);
}

TEST(CacheManagerTest, MirrorsLruAndLocationsToDatastore) {
  datastore::KvStore store;
  CacheManager manager(PolicyKind::kLru, &store);
  manager.add_gpu(GpuId(0), MB(1000));
  ASSERT_TRUE(manager.record_insertion(GpuId(0), ModelId(3), MB(100)).ok());
  ASSERT_TRUE(manager.record_insertion(GpuId(0), ModelId(5), MB(100)).ok());
  ASSERT_TRUE(manager.record_access(GpuId(0), ModelId(3)).ok());

  auto lru = store.get(datastore::keys::gpu_lru(GpuId(0)));
  ASSERT_TRUE(lru.ok());
  EXPECT_EQ(lru->value, "5,3");  // LRU -> MRU after touching 3

  auto locations = store.get(datastore::keys::model_locations(ModelId(5)));
  ASSERT_TRUE(locations.ok());
  EXPECT_EQ(locations->value, "0");

  ASSERT_TRUE(manager.record_eviction(GpuId(0), ModelId(5)).ok());
  locations = store.get(datastore::keys::model_locations(ModelId(5)));
  ASSERT_TRUE(locations.ok());
  EXPECT_EQ(locations->value, "");
}

TEST(CacheManagerTest, SeparateListsPerGpu) {
  CacheManager manager(PolicyKind::kLru);
  manager.add_gpu(GpuId(0), MB(500));
  manager.add_gpu(GpuId(1), MB(500));
  ASSERT_TRUE(manager.record_insertion(GpuId(0), ModelId(1), MB(400)).ok());
  // GPU 1 unaffected: same model can be inserted there too.
  ASSERT_TRUE(manager.record_insertion(GpuId(1), ModelId(1), MB(400)).ok());
  auto victims0 = manager.plan_eviction(GpuId(0), MB(450));
  ASSERT_TRUE(victims0.ok());
  EXPECT_EQ(victims0->size(), 1u);
  EXPECT_EQ(manager.state(GpuId(1)).model_count(), 1u);
}

}  // namespace
}  // namespace gfaas::cache
