// Integration tests: the full Fig. 2 pipeline — Gateway -> Scheduler ->
// GPU Manager -> virtual GPU -> Cache Manager -> Datastore — on small
// simulated clusters, including the FaasCluster end-to-end path with real
// CPU inference enabled.
#include <gtest/gtest.h>

#include "cluster/faas_cluster.h"
#include "datastore/keys.h"
#include "testing/builders.h"
#include "trace/workload.h"

namespace gfaas::cluster {
namespace {

using testkit::head_registry;
using testkit::make_request;

TEST(SimClusterTest, BuildsPaperTopology) {
  ClusterConfig config;  // 3 nodes x 4 GPUs
  SimCluster cluster(config, head_registry(3));
  EXPECT_EQ(cluster.gpu_count(), 12u);
  EXPECT_EQ(cluster.cache().gpu_count(), 12u);
  EXPECT_EQ(cluster.gpu(0).spec().name, "rtx2080");
}

TEST(SimClusterTest, RejectsBadNodeSpecCount) {
  ClusterConfig config;
  config.nodes = 3;
  config.node_specs = {gpu::rtx2080(), gpu::rtx2080()};  // 2 specs, 3 nodes
  EXPECT_DEATH(SimCluster(config, head_registry(1)), "node_specs");
}

TEST(SimClusterTest, SingleRequestFullLifecycle) {
  ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 1;
  SimCluster cluster(config, head_registry(1));
  const SimTime makespan = cluster.replay({make_request(0, 0, sec(1))});
  // arrival 1s + load 2.41s + infer 1.28s.
  EXPECT_NEAR(sim_to_seconds(makespan), 1 + 2.41 + 1.28, 0.05);
  const auto& record = cluster.engine().completions().at(0);
  EXPECT_FALSE(record.cache_hit);
  EXPECT_NEAR(sim_to_seconds(record.latency()), 3.69, 0.05);
  // Model resident after completion; datastore mirrors status.
  EXPECT_TRUE(cluster.cache().is_cached(GpuId(0), ModelId(0)));
  EXPECT_EQ(cluster.datastore().get(datastore::keys::gpu_status(GpuId(0)))->value,
            "idle");
  EXPECT_TRUE(
      cluster.datastore().get(datastore::keys::fn_latency("fn0")).ok());
}

TEST(SimClusterTest, EvictionHappensWhenMemoryFull) {
  // One 8GB GPU; three ~3.9GB VGG models cannot co-reside: the LRU model
  // must be evicted (process killed) to make room.
  ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 1;
  models::ModelRegistry registry;
  // vgg13 (3887MB), vgg16 (3907MB), vgg19 (3947MB): catalog rows 18-21.
  models::ModelProfile a = *models::find_model("vgg13");
  models::ModelProfile b = *models::find_model("vgg16");
  models::ModelProfile c = *models::find_model("vgg19");
  a.id = ModelId(0);
  b.id = ModelId(1);
  c.id = ModelId(2);
  ASSERT_TRUE(registry.register_model(a).ok());
  ASSERT_TRUE(registry.register_model(b).ok());
  ASSERT_TRUE(registry.register_model(c).ok());
  SimCluster cluster(config, registry);
  cluster.replay({make_request(0, 0, 0), make_request(1, 1, sec(10)),
                  make_request(2, 2, sec(20))});
  // Two fit (7.8GB in ~7.75GiB capacity); the third evicts the LRU one.
  EXPECT_EQ(cluster.gpu(0).counters().evictions, 1);
  EXPECT_FALSE(cluster.cache().is_cached(GpuId(0), ModelId(0)));  // LRU victim
  EXPECT_TRUE(cluster.cache().is_cached(GpuId(0), ModelId(2)));
  EXPECT_EQ(cluster.cache().stats().evictions, 1);
}

TEST(SimClusterTest, ReplayIsDeterministic) {
  trace::WorkloadConfig wconfig;
  wconfig.working_set_size = 15;
  wconfig.window_minutes = 2;
  auto workload = trace::build_standard_workload(wconfig);
  ASSERT_TRUE(workload.ok());

  auto run_once = [&] {
    ClusterConfig config;
    config.policy = core::PolicyName::kLalbO3;
    return run_experiment(config, *workload);
  };
  const ExperimentResult a = run_once();
  const ExperimentResult b = run_once();
  EXPECT_DOUBLE_EQ(a.avg_latency_s, b.avg_latency_s);
  EXPECT_DOUBLE_EQ(a.miss_ratio, b.miss_ratio);
  EXPECT_DOUBLE_EQ(a.sm_utilization, b.sm_utilization);
  EXPECT_EQ(a.evictions, b.evictions);
}

TEST(SimClusterTest, AllRequestsCompleteUnderLoad) {
  trace::WorkloadConfig wconfig;
  wconfig.working_set_size = 25;
  wconfig.window_minutes = 2;
  auto workload = trace::build_standard_workload(wconfig);
  ASSERT_TRUE(workload.ok());
  for (core::PolicyName policy :
       {core::PolicyName::kLb, core::PolicyName::kLalb, core::PolicyName::kLalbO3}) {
    ClusterConfig config;
    config.policy = policy;
    const ExperimentResult result = run_experiment(config, *workload);
    EXPECT_EQ(result.requests, workload->requests.size());
    EXPECT_GT(result.avg_latency_s, 0);
    EXPECT_GE(result.miss_ratio, 0);
    EXPECT_LE(result.miss_ratio, 1);
    EXPECT_GT(result.sm_utilization, 0);
    EXPECT_LT(result.sm_utilization, 1);
  }
}

TEST(SimClusterTest, LalbBeatsLbOnSkewedWorkload) {
  trace::WorkloadConfig wconfig;
  wconfig.working_set_size = 15;
  wconfig.window_minutes = 3;
  auto workload = trace::build_standard_workload(wconfig);
  ASSERT_TRUE(workload.ok());

  ClusterConfig lb_config, lalb_config;
  lb_config.policy = core::PolicyName::kLb;
  lalb_config.policy = core::PolicyName::kLalb;
  const ExperimentResult lb = run_experiment(lb_config, *workload);
  const ExperimentResult lalb = run_experiment(lalb_config, *workload);
  EXPECT_LT(lalb.avg_latency_s, lb.avg_latency_s);
  EXPECT_LT(lalb.miss_ratio, lb.miss_ratio);
  EXPECT_GT(lalb.sm_utilization, lb.sm_utilization);
}

TEST(SimClusterTest, HeterogeneousSpecsApplyPerNode) {
  ClusterConfig config;
  config.nodes = 2;
  config.gpus_per_node = 1;
  config.node_specs = {gpu::rtx2080(), gpu::a100_like()};
  SimCluster cluster(config, head_registry(2));
  EXPECT_EQ(cluster.gpu(0).spec().name, "rtx2080");
  EXPECT_EQ(cluster.gpu(1).spec().name, "a100-like");
  EXPECT_GT(cluster.gpu(1).memory_capacity(), cluster.gpu(0).memory_capacity());
}

TEST(SimClusterTest, RealInferenceExecutionPath) {
  ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 1;
  config.execute_real_inference = true;  // forward passes really run
  SimCluster cluster(config, head_registry(1));
  cluster.replay({make_request(0, 0, 0), make_request(1, 0, sec(5))});
  EXPECT_EQ(cluster.engine().completions().size(), 2u);
  EXPECT_TRUE(cluster.engine().completions()[1].cache_hit);
}

TEST(GpuManagerTest, RejectsWorkOnBusyGpu) {
  ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 1;
  SimCluster cluster(config, head_registry(2));
  auto& engine = cluster.engine();
  // Occupy the GPU, then drive a second execute() directly against the
  // busy device: the one-request-per-GPU rule (§III-C) must hold.
  cluster.simulator().schedule_at(0, [&] { engine.submit(make_request(0, 0, 0)); });
  cluster.simulator().schedule_at(usec(10), [&] {
    EXPECT_TRUE(cluster.gpu(0).is_busy());
    EXPECT_EQ(cluster.gpu(0).phase(), gpu::GpuPhase::kLoading);
  });
  cluster.simulator().run();
  EXPECT_EQ(engine.completions().size(), 1u);
}

TEST(GpuManagerTest, MissEvictsExactlyPlannedVictims) {
  // 8GB GPU with two resident VGGs; a third large model must evict only
  // the LRU one, and the datastore LRU mirror must reflect every step.
  ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 1;
  models::ModelRegistry registry;
  const char* names[] = {"vgg13", "vgg16", "vgg19"};
  for (int i = 0; i < 3; ++i) {
    models::ModelProfile p = *models::find_model(names[i]);
    p.id = ModelId(i);
    ASSERT_TRUE(registry.register_model(p).ok());
  }
  SimCluster cluster(config, registry);
  cluster.replay({make_request(0, 0, 0), make_request(1, 1, sec(10))});
  auto lru = cluster.datastore().get(datastore::keys::gpu_lru(GpuId(0)));
  ASSERT_TRUE(lru.ok());
  EXPECT_EQ(lru->value, "0,1");  // model0 is LRU

  cluster.simulator().schedule_at(sec(20),
                                  [&] {
                                    cluster.engine().submit(make_request(2, 2, sec(20)));
                                  });
  cluster.simulator().run();
  EXPECT_EQ(cluster.gpu(0).counters().evictions, 1);
  lru = cluster.datastore().get(datastore::keys::gpu_lru(GpuId(0)));
  EXPECT_EQ(lru->value, "1,2");  // model0 evicted, model2 MRU
  EXPECT_EQ(cluster.gpu(0).process_count(), 2u);
}

TEST(SchedulerEngineTest, FinishTimeEstimateIncludesLocalQueueWork) {
  // Two GPUs, LALB, serving inception.v3 (load 4.42s, infer 1.63s — the
  // catalog's widest load/infer gap). Warm it on one GPU, then send three
  // back-to-back requests: the first runs (hit), the next two wait in
  // the holder's local queue (waits of 1.63s and 3.26s both beat the
  // 4.42s re-upload), and the finish-time estimate must cover the
  // in-flight hit plus both queued hits.
  ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 2;
  config.policy = core::PolicyName::kLalb;
  models::ModelRegistry registry;
  models::ModelProfile inception = *models::find_model("inception.v3");
  inception.id = ModelId(0);
  ASSERT_TRUE(registry.register_model(inception).ok());
  SimCluster cluster(config, registry);
  auto& engine = cluster.engine();

  cluster.simulator().schedule_at(0, [&] { engine.submit(make_request(0, 0, 0)); });
  cluster.simulator().run();
  const GpuId hot = engine.completions().at(0).gpu;

  cluster.simulator().schedule_at(sec(10), [&] {
    engine.submit(make_request(1, 0, sec(10)));
  });
  cluster.simulator().schedule_at(sec(10) + usec(1), [&] {
    engine.submit(make_request(2, 0, sec(10)));
    engine.submit(make_request(3, 0, sec(10)));
  });
  cluster.simulator().schedule_at(sec(10) + usec(2), [&, hot] {
    // In-flight hit (~1.63s remaining) + 2 queued hits (1.63s each).
    const SimTime wait =
        engine.estimated_finish_time(hot) - cluster.simulator().now();
    EXPECT_NEAR(sim_to_seconds(wait), 3 * 1.63, 0.05);
    EXPECT_EQ(engine.local_queues().size(hot), 2u);
  });
  cluster.simulator().run();
  ASSERT_EQ(engine.completions().size(), 4u);
  // All three follow-ups were hits on the same GPU; two via local queue.
  int via_local = 0;
  for (const auto& record : engine.completions()) {
    if (record.via_local_queue) ++via_local;
    if (record.id.value() > 0) {
      EXPECT_TRUE(record.cache_hit);
      EXPECT_EQ(record.gpu, hot);
    }
  }
  EXPECT_EQ(via_local, 2);
}

TEST(SchedulerEngineTest, IdleGpusSortedByDispatchFrequency) {
  ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 3;
  config.policy = core::PolicyName::kLalb;
  SimCluster cluster(config, head_registry(1));
  // Three sequential requests for the same model: all land on one GPU
  // (locality), making it the most frequently dispatched.
  cluster.replay({make_request(0, 0, 0), make_request(1, 0, sec(10)),
                  make_request(2, 0, sec(20))});
  const auto idle = cluster.engine().idle_gpus();
  ASSERT_EQ(idle.size(), 3u);
  const GpuId hot = cluster.engine().completions()[0].gpu;
  EXPECT_EQ(idle.front(), hot);  // most-used first
}

TEST(SchedulerEngineTest, PerMinuteSeriesTracksCompletions) {
  ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 2;
  SimCluster cluster(config, head_registry(2));
  cluster.replay({make_request(0, 0, 0), make_request(1, 1, sec(5)),
                  make_request(2, 0, minutes(1) + sec(5))});
  const auto& lat = cluster.engine().latency_series();
  const auto& miss = cluster.engine().miss_series();
  ASSERT_EQ(lat.bucket_count(), 2u);
  EXPECT_EQ(lat.bucket_samples(0), 2);  // two finish in minute 0
  EXPECT_EQ(lat.bucket_samples(1), 1);
  EXPECT_DOUBLE_EQ(miss.bucket_sum(0), 2.0);  // both cold
  EXPECT_DOUBLE_EQ(miss.bucket_sum(1), 0.0);  // warm hit
}

TEST(FaasClusterTest, GatewayEndToEnd) {
  // ClusterBuilder defaults: 1 node x 2 GPUs.
  auto built = testkit::ClusterBuilder().models(2).build_faas();
  FaasCluster& faas_cluster = *built;

  ASSERT_TRUE(faas_cluster.gateway()
                  .register_function(
                      testkit::gpu_function_spec("classify", "squeezenet1.1"))
                  .ok());

  int completions = 0;
  SimTime first_latency = 0, second_latency = 0;
  faas_cluster.gateway().invoke("classify", {}, [&](StatusOr<faas::InvocationResult> r) {
    ASSERT_TRUE(r.ok());
    first_latency = r->latency;
    ++completions;
  });
  faas_cluster.run_to_completion();
  // Second call: model now cached -> hit, far lower latency.
  faas_cluster.gateway().invoke("classify", {}, [&](StatusOr<faas::InvocationResult> r) {
    ASSERT_TRUE(r.ok());
    second_latency = r->latency;
    EXPECT_EQ(r->executed_on.rfind("gpu-", 0), 0u);
    ++completions;
  });
  faas_cluster.run_to_completion();

  EXPECT_EQ(completions, 2);
  EXPECT_LT(second_latency, first_latency / 2);
}

TEST(FaasClusterTest, UnknownModelRejectedAtSubmit) {
  ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 1;
  FaasCluster faas_cluster(config, head_registry(1));
  ASSERT_TRUE(faas_cluster.gateway()
                  .register_function(
                      testkit::gpu_function_spec("ghost", "not-a-model"))
                  .ok());
  bool called = false;
  faas_cluster.gateway().invoke("ghost", {}, [&](StatusOr<faas::InvocationResult> r) {
    EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
    called = true;
  });
  EXPECT_TRUE(called);
}

TEST(FaasClusterTest, CpuAndGpuFunctionsCoexist) {
  ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 1;
  FaasCluster faas_cluster(config, head_registry(1));

  faas::FunctionSpec cpu_spec = testkit::cpu_function_spec(
      "plain", [](const faas::Payload& p) -> StatusOr<faas::Payload> {
        return p;
      });
  ASSERT_TRUE(faas_cluster.gateway().register_function(cpu_spec).ok());
  auto result = faas_cluster.gateway().invoke_sync("plain", {});
  EXPECT_TRUE(result.ok());
}

}  // namespace
}  // namespace gfaas::cluster
