// Unit tests for the tensor/inference engine: tensor mechanics, layer
// forward passes against hand-computed references, architecture builders
// for every Table I family, and the synthetic datasets.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/dataset.h"
#include "tensor/model_builder.h"
#include "tensor/nn.h"
#include "tensor/tensor.h"

namespace gfaas::tensor {
namespace {

TEST(TensorTest, ShapeAndNumel) {
  Tensor t({2, 3, 4, 5});
  EXPECT_EQ(t.numel(), 120);
  EXPECT_EQ(t.ndim(), 4u);
  EXPECT_EQ(t.dim(2), 4);
  EXPECT_EQ(t.byte_size(), 480);
  EXPECT_EQ(shape_numel({}), 1);
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
}

TEST(TensorTest, FactoryFills) {
  EXPECT_FLOAT_EQ(Tensor::zeros({3})[0], 0.f);
  EXPECT_FLOAT_EQ(Tensor::ones({3})[2], 1.f);
  EXPECT_FLOAT_EQ(Tensor::full({2}, 7.5f)[1], 7.5f);
}

TEST(TensorTest, At4RowMajorLayout) {
  Tensor t({1, 2, 2, 2});
  for (std::int64_t i = 0; i < 8; ++i) t[i] = static_cast<float>(i);
  EXPECT_FLOAT_EQ(t.at4(0, 0, 0, 0), 0.f);
  EXPECT_FLOAT_EQ(t.at4(0, 0, 0, 1), 1.f);
  EXPECT_FLOAT_EQ(t.at4(0, 0, 1, 0), 2.f);
  EXPECT_FLOAT_EQ(t.at4(0, 1, 0, 0), 4.f);
  EXPECT_FLOAT_EQ(t.at4(0, 1, 1, 1), 7.f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshape({3, 2});
  EXPECT_FLOAT_EQ(r.at2(2, 1), 6.f);
  EXPECT_EQ(r.numel(), t.numel());
}

TEST(TensorTest, ElementwiseOpsAndReductions) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  a.add_(b);
  EXPECT_FLOAT_EQ(a[2], 33.f);
  a.mul_(2.f);
  EXPECT_FLOAT_EQ(a[0], 22.f);
  EXPECT_FLOAT_EQ(a.sum(), 22 + 44 + 66);
  EXPECT_FLOAT_EQ(a.max(), 66.f);
  EXPECT_EQ(a.argmax(), 2);
}

TEST(TensorTest, AllcloseDetectsDifferences) {
  Tensor a({2}, {1.0f, 2.0f});
  Tensor b({2}, {1.0f, 2.0f + 1e-7f});
  Tensor c({2}, {1.0f, 2.1f});
  EXPECT_TRUE(a.allclose(b));
  EXPECT_FALSE(a.allclose(c));
  EXPECT_FALSE(a.allclose(Tensor({1}, {1.0f})));
}

TEST(TensorTest, RandomInitsAreDeterministic) {
  Rng r1(5), r2(5);
  Tensor a = Tensor::kaiming_uniform({4, 4}, 4, r1);
  Tensor b = Tensor::kaiming_uniform({4, 4}, 4, r2);
  EXPECT_TRUE(a.allclose(b, 0.f));
}

// --- layer references ---

TEST(NnTest, Conv2dIdentityKernel) {
  // A 1x1 conv with weight 1 must reproduce its input.
  Rng rng(1);
  Conv2d conv(1, 1, 1, 1, 0, rng);
  // Rebuild with explicit weights via a 3x3 input trick: use kaiming conv
  // on a known input and compare against direct computation instead.
  Tensor input({1, 1, 2, 2}, {1, 2, 3, 4});
  const Tensor out = conv.forward(input);
  EXPECT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
}

TEST(NnTest, Conv2dManualReference) {
  // Single 2x2 kernel, stride 1, no padding over a 3x3 input: verify the
  // full convolution arithmetic with a weight extracted by probing.
  Rng rng(2);
  Conv2d conv(1, 1, 2, 1, 0, rng);
  // Probe kernel weights with unit impulses.
  float w[2][2];
  for (int ky = 0; ky < 2; ++ky) {
    for (int kx = 0; kx < 2; ++kx) {
      Tensor impulse({1, 1, 2, 2});
      impulse.at4(0, 0, ky, kx) = 1.f;
      w[ky][kx] = conv.forward(impulse).at4(0, 0, 0, 0);
    }
  }
  Tensor input({1, 1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  const Tensor out = conv.forward(input);
  ASSERT_EQ(out.shape(), (Shape{1, 1, 2, 2}));
  for (int oy = 0; oy < 2; ++oy) {
    for (int ox = 0; ox < 2; ++ox) {
      float expect = 0;
      for (int ky = 0; ky < 2; ++ky) {
        for (int kx = 0; kx < 2; ++kx) {
          expect += w[ky][kx] * input.at4(0, 0, oy + ky, ox + kx);
        }
      }
      EXPECT_NEAR(out.at4(0, 0, oy, ox), expect, 1e-4f);
    }
  }
}

TEST(NnTest, Conv2dStrideAndPaddingShapes) {
  Rng rng(3);
  Conv2d conv(3, 8, 3, 2, 1, rng);
  Tensor input({2, 3, 16, 16});
  const Tensor out = conv.forward(input);
  EXPECT_EQ(out.shape(), (Shape{2, 8, 8, 8}));
  EXPECT_EQ(conv.parameter_count(), 8 * 3 * 3 * 3 + 8);
}

TEST(NnTest, ReluClampsNegatives) {
  ReLU relu;
  Tensor x({4}, {-2, -0.5f, 0, 3});
  const Tensor y = relu.forward(x);
  EXPECT_FLOAT_EQ(y[0], 0.f);
  EXPECT_FLOAT_EQ(y[1], 0.f);
  EXPECT_FLOAT_EQ(y[2], 0.f);
  EXPECT_FLOAT_EQ(y[3], 3.f);
}

TEST(NnTest, MaxPoolPicksWindowMax) {
  MaxPool2d pool(2, 2);
  Tensor x({1, 1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  const Tensor y = pool.forward(x);
  ASSERT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 5.f);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 1), 7.f);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 0), 13.f);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 1), 15.f);
}

TEST(NnTest, AdaptiveAvgPoolGlobalMean) {
  AdaptiveAvgPool2d pool;
  Tensor x({1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
  const Tensor y = pool.forward(x);
  ASSERT_EQ(y.shape(), (Shape{1, 2, 1, 1}));
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 2.5f);
  EXPECT_FLOAT_EQ(y.at4(0, 1, 0, 0), 25.f);
}

TEST(NnTest, LinearManualReference) {
  Rng rng(4);
  Linear fc(3, 2, rng);
  // Probe weights and bias.
  Tensor zero({1, 3});
  const Tensor bias = fc.forward(zero);
  float w[2][3];
  for (int i = 0; i < 3; ++i) {
    Tensor e({1, 3});
    e.at2(0, i) = 1.f;
    const Tensor col = fc.forward(e);
    for (int o = 0; o < 2; ++o) w[o][i] = col.at2(0, o) - bias.at2(0, o);
  }
  Tensor x({1, 3}, {0.5f, -1.f, 2.f});
  const Tensor y = fc.forward(x);
  for (int o = 0; o < 2; ++o) {
    const float expect =
        bias.at2(0, o) + 0.5f * w[o][0] - 1.f * w[o][1] + 2.f * w[o][2];
    EXPECT_NEAR(y.at2(0, o), expect, 1e-4f);
  }
  EXPECT_EQ(fc.parameter_count(), 3 * 2 + 2);
}

TEST(NnTest, BatchNormNormalizesWithRunningStats) {
  Rng rng(6);
  BatchNorm2d bn(4, rng);
  Tensor x({2, 4, 3, 3});
  Rng data_rng(7);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(data_rng.normal());
  }
  const Tensor y = bn.forward(x);
  EXPECT_EQ(y.shape(), x.shape());
  // Affine transform: distinct inputs stay distinct.
  EXPECT_FALSE(y.allclose(x));
  EXPECT_EQ(bn.parameter_count(), 16);
}

TEST(NnTest, FlattenShape) {
  Flatten flatten;
  Tensor x({2, 3, 4, 4});
  EXPECT_EQ(flatten.forward(x).shape(), (Shape{2, 48}));
}

TEST(NnTest, SoftmaxRowsSumToOne) {
  Softmax softmax;
  Tensor x({2, 5}, {1, 2, 3, 4, 5, -1, 0, 1, 2, 3});
  const Tensor y = softmax.forward(x);
  for (int r = 0; r < 2; ++r) {
    float total = 0;
    for (int c = 0; c < 5; ++c) {
      EXPECT_GT(y.at2(r, c), 0.f);
      total += y.at2(r, c);
    }
    EXPECT_NEAR(total, 1.f, 1e-5f);
  }
  // Largest logit gets the largest probability.
  EXPECT_EQ(Tensor({1, 5}, {y.at2(0, 0), y.at2(0, 1), y.at2(0, 2), y.at2(0, 3),
                            y.at2(0, 4)})
                .argmax(),
            4);
}

TEST(NnTest, SoftmaxNumericallyStableForLargeLogits) {
  Softmax softmax;
  Tensor x({1, 3}, {1000.f, 1001.f, 1002.f});
  const Tensor y = softmax.forward(x);
  float total = 0;
  for (int c = 0; c < 3; ++c) total += y.at2(0, c);
  EXPECT_NEAR(total, 1.f, 1e-5f);
}

TEST(NnTest, SequentialComposes) {
  Rng rng(8);
  Sequential seq;
  seq.push_back(std::make_shared<Flatten>());
  seq.push_back(std::make_shared<Linear>(16, 4, rng));
  seq.push_back(std::make_shared<Softmax>());
  Tensor x({3, 1, 4, 4});
  const Tensor y = seq.forward(x);
  EXPECT_EQ(y.shape(), (Shape{3, 4}));
  EXPECT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq.parameter_count(), 16 * 4 + 4);
}

TEST(NnTest, ResidualBlockIdentityShapeAndDownsample) {
  Rng rng(9);
  ResidualBlock same(8, 8, 1, rng);
  Tensor x({1, 8, 8, 8});
  EXPECT_EQ(same.forward(x).shape(), (Shape{1, 8, 8, 8}));

  ResidualBlock down(8, 16, 2, rng);
  EXPECT_EQ(down.forward(x).shape(), (Shape{1, 16, 4, 4}));
  EXPECT_GT(down.parameter_count(), same.parameter_count());
}

TEST(NnTest, ResidualOutputNonNegative) {
  Rng rng(10);
  ResidualBlock block(4, 4, 1, rng);
  Tensor x = Tensor::randn({1, 4, 6, 6}, rng);
  const Tensor y = block.forward(x);
  for (std::int64_t i = 0; i < y.numel(); ++i) EXPECT_GE(y[i], 0.f);
}

// --- architecture builders ---

class BuilderTest : public ::testing::TestWithParam<CnnFamily> {};

TEST_P(BuilderTest, BuildsAndRunsForwardPass) {
  CnnConfig config;
  config.family = GetParam();
  config.depth = 2;
  config.width = 4;
  config.num_classes = 10;
  config.seed = 11;
  const ModulePtr net = build_cnn(config);
  ASSERT_NE(net, nullptr);
  Tensor x({2, 3, 32, 32});
  Rng rng(12);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.uniform());
  }
  const Tensor y = net->forward(x);
  ASSERT_EQ(y.shape(), (Shape{2, 10}));
  for (int r = 0; r < 2; ++r) {
    float total = 0;
    for (int c = 0; c < 10; ++c) total += y.at2(r, c);
    EXPECT_NEAR(total, 1.f, 1e-4f);
  }
  EXPECT_GT(net->parameter_count(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, BuilderTest,
    ::testing::Values(CnnFamily::kSqueezeNet, CnnFamily::kResNet, CnnFamily::kAlexNet,
                      CnnFamily::kResNeXt, CnnFamily::kDenseNet, CnnFamily::kInception,
                      CnnFamily::kVgg, CnnFamily::kWideResNet),
    [](const ::testing::TestParamInfo<CnnFamily>& info) {
      return family_name(info.param);
    });

TEST(BuilderTest, DeterministicFromSeed) {
  CnnConfig config;
  config.family = CnnFamily::kResNet;
  config.seed = 99;
  const ModulePtr a = build_cnn(config);
  const ModulePtr b = build_cnn(config);
  Tensor x = Tensor::ones({1, 3, 16, 16});
  EXPECT_TRUE(a->forward(x).allclose(b->forward(x), 0.f));
}

TEST(BuilderTest, WideResNetWiderThanResNet) {
  CnnConfig narrow, wide;
  narrow.family = CnnFamily::kResNet;
  wide.family = CnnFamily::kWideResNet;
  EXPECT_GT(build_cnn(wide)->parameter_count(), build_cnn(narrow)->parameter_count());
}

// --- datasets ---

TEST(DatasetTest, SpecsMatchPaperDatasets) {
  const DatasetSpec cifar = dataset_spec(DatasetKind::kCifar10Like);
  EXPECT_EQ(cifar.channels, 3);
  EXPECT_EQ(cifar.height, 32);
  EXPECT_EQ(cifar.num_classes, 10);
  const DatasetSpec mnist = dataset_spec(DatasetKind::kMnistLike);
  EXPECT_EQ(mnist.channels, 1);
  EXPECT_EQ(mnist.height, 28);
  const DatasetSpec hym = dataset_spec(DatasetKind::kHymenopteraLike);
  EXPECT_EQ(hym.num_classes, 2);
  EXPECT_EQ(dataset_name(DatasetKind::kCifar10Like), "cifar10-like");
}

TEST(DatasetTest, BatchShapeAndLabels) {
  SyntheticImageDataset data(DatasetKind::kCifar10Like, 3);
  const Batch batch = data.make_batch(8);
  EXPECT_EQ(batch.images.shape(), (Shape{8, 3, 32, 32}));
  ASSERT_EQ(batch.labels.size(), 8u);
  for (std::int64_t label : batch.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 10);
  }
}

TEST(DatasetTest, ClassesProduceDistinctPatterns) {
  SyntheticImageDataset data(DatasetKind::kCifar10Like, 4);
  const Tensor a = data.make_image(0);
  const Tensor b = data.make_image(5);
  EXPECT_FALSE(a.allclose(b, 0.2f));
}

TEST(DatasetTest, ResizeNearestNeighbour) {
  Tensor img({1, 1, 2, 2}, {1, 2, 3, 4});
  const Tensor up = SyntheticImageDataset::resize(img, 4, 4);
  EXPECT_EQ(up.shape(), (Shape{1, 1, 4, 4}));
  EXPECT_FLOAT_EQ(up.at4(0, 0, 0, 0), 1.f);
  EXPECT_FLOAT_EQ(up.at4(0, 0, 3, 3), 4.f);
  const Tensor down = SyntheticImageDataset::resize(up, 2, 2);
  EXPECT_TRUE(down.allclose(img));
}

}  // namespace
}  // namespace gfaas::tensor
