// Unit + property tests for the virtual GPU substrate: memory allocator
// (contiguous and paged, with invariant checks under churn), PCIe link
// timing/queueing, GPU specs, and the VirtualGpu state machine.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "gpu/gpu_spec.h"
#include "gpu/memory_allocator.h"
#include "gpu/pcie.h"
#include "gpu/virtual_gpu.h"

namespace gfaas::gpu {
namespace {

TEST(MemoryAllocatorTest, AllocateAndFree) {
  MemoryAllocator alloc(MiB(100));
  auto a = alloc.allocate(MiB(30));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(alloc.used(), MiB(30));
  EXPECT_EQ(alloc.free_total(), MiB(70));
  EXPECT_TRUE(alloc.free(*a).ok());
  EXPECT_EQ(alloc.used(), 0);
  EXPECT_TRUE(alloc.check_invariants());
}

TEST(MemoryAllocatorTest, RejectsBadSizes) {
  MemoryAllocator alloc(MiB(10));
  EXPECT_EQ(alloc.allocate(0).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(alloc.allocate(-5).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(alloc.allocate(MiB(11)).status().code(), StatusCode::kResourceExhausted);
}

TEST(MemoryAllocatorTest, DoubleFreeRejected) {
  MemoryAllocator alloc(MiB(10));
  auto a = alloc.allocate(MiB(1));
  ASSERT_TRUE(alloc.free(*a).ok());
  EXPECT_EQ(alloc.free(*a).code(), StatusCode::kInvalidArgument);
}

TEST(MemoryAllocatorTest, FirstFitReusesFreedBlock) {
  MemoryAllocator alloc(MiB(10));
  auto a = alloc.allocate(MiB(4));
  auto b = alloc.allocate(MiB(4));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(alloc.free(*a).ok());
  auto c = alloc.allocate(MiB(3));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->offset, a->offset);  // reused the hole
}

TEST(MemoryAllocatorTest, CoalescingMergesNeighbours) {
  MemoryAllocator alloc(MiB(12));
  auto a = alloc.allocate(MiB(4));
  auto b = alloc.allocate(MiB(4));
  auto c = alloc.allocate(MiB(4));
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(alloc.free(*a).ok());
  ASSERT_TRUE(alloc.free(*c).ok());
  EXPECT_EQ(alloc.largest_free_block(), MiB(4));  // two separate holes
  ASSERT_TRUE(alloc.free(*b).ok());
  EXPECT_EQ(alloc.largest_free_block(), MiB(12));  // fully coalesced
  EXPECT_DOUBLE_EQ(alloc.fragmentation(), 0.0);
  EXPECT_TRUE(alloc.check_invariants());
}

TEST(MemoryAllocatorTest, FragmentationObservable) {
  MemoryAllocator alloc(MiB(12));
  auto a = alloc.allocate(MiB(4));
  auto b = alloc.allocate(MiB(4));
  (void)b;
  auto c = alloc.allocate(MiB(4));
  ASSERT_TRUE(alloc.free(*a).ok());
  ASSERT_TRUE(alloc.free(*c).ok());
  // Contiguous allocation of 8MiB impossible despite 8MiB total free.
  EXPECT_FALSE(alloc.allocate(MiB(8)).ok());
  EXPECT_GT(alloc.fragmentation(), 0.0);
}

TEST(MemoryAllocatorTest, PagedAllocationSpansHoles) {
  MemoryAllocator alloc(MiB(12));
  auto a = alloc.allocate(MiB(4));
  auto b = alloc.allocate(MiB(4));
  (void)b;
  auto c = alloc.allocate(MiB(4));
  ASSERT_TRUE(alloc.free(*a).ok());
  ASSERT_TRUE(alloc.free(*c).ok());
  // Paged allocation succeeds where contiguous failed.
  auto paged = alloc.allocate_paged(MiB(8));
  ASSERT_TRUE(paged.ok());
  EXPECT_EQ(paged->total, MiB(8));
  EXPECT_EQ(paged->extents.size(), 2u);
  EXPECT_EQ(alloc.free_total(), 0);
  EXPECT_TRUE(alloc.free_paged(*paged).ok());
  EXPECT_EQ(alloc.free_total(), MiB(8));
  EXPECT_TRUE(alloc.check_invariants());
}

TEST(MemoryAllocatorTest, PagedRejectsOverCapacity) {
  MemoryAllocator alloc(MiB(4));
  EXPECT_EQ(alloc.allocate_paged(MiB(5)).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_FALSE(alloc.allocate_paged(0).ok());
}

// Property test: random alloc/free churn never violates invariants and
// never leaks, across seeds.
class AllocatorChurnTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocatorChurnTest, InvariantsHoldUnderChurn) {
  Rng rng(GetParam());
  MemoryAllocator alloc(MiB(64));
  std::vector<PagedAllocation> live;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.uniform() < 0.55) {
      const Bytes size = MiB(static_cast<std::int64_t>(rng.uniform_int(1, 12)));
      auto paged = alloc.allocate_paged(size);
      if (paged.ok()) {
        live.push_back(*paged);
      } else {
        EXPECT_GT(size, alloc.free_total());  // only legitimate failure
      }
    } else {
      const std::size_t idx =
          static_cast<std::size_t>(rng.next_below(live.size()));
      ASSERT_TRUE(alloc.free_paged(live[idx]).ok());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_TRUE(alloc.check_invariants()) << "step " << step;
  }
  for (const auto& paged : live) ASSERT_TRUE(alloc.free_paged(paged).ok());
  EXPECT_EQ(alloc.used(), 0);
  EXPECT_EQ(alloc.largest_free_block(), MiB(64));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorChurnTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));

TEST(PcieLinkTest, TransferDurationFromBandwidth) {
  PcieLink link(/*GB/s=*/10.0, /*latency=*/usec(20));
  // 10 GB/s = 10000 bytes/µs; 1 MB decimal = 100 µs + 20 latency.
  EXPECT_EQ(link.transfer_duration(1'000'000), 120);
  EXPECT_EQ(link.transfer_duration(0), 20);
}

TEST(PcieLinkTest, ReservationsQueueBackToBack) {
  PcieLink link(10.0, usec(0));
  const TransferTiming t1 = link.reserve(0, 1'000'000);    // [0, 100]
  const TransferTiming t2 = link.reserve(50, 1'000'000);   // queued: [100, 200]
  const TransferTiming t3 = link.reserve(500, 1'000'000);  // idle gap: [500, 600]
  EXPECT_EQ(t1.start, 0);
  EXPECT_EQ(t1.end, 100);
  EXPECT_EQ(t2.start, 100);
  EXPECT_EQ(t2.end, 200);
  EXPECT_EQ(t3.start, 500);
  EXPECT_EQ(link.transfers_completed(), 3);
  EXPECT_EQ(link.bytes_transferred(), 3'000'000);
}

TEST(GpuSpecTest, PresetsAreOrdered) {
  const GpuSpec base = rtx2080();
  const GpuSpec ti = rtx2080ti();
  const GpuSpec a100 = a100_like();
  EXPECT_LT(base.memory_capacity, ti.memory_capacity);
  EXPECT_LT(ti.memory_capacity, a100.memory_capacity);
  EXPECT_GT(base.infer_time_scale, ti.infer_time_scale);
  EXPECT_GT(ti.infer_time_scale, a100.infer_time_scale);
  EXPECT_EQ(base.sm_count, 46);
}

class VirtualGpuTest : public ::testing::Test {
 protected:
  VirtualGpuTest() : link_(12.6, usec(20)), gpu_(GpuId(0), rtx2080(), &link_) {}

  PcieLink link_;
  VirtualGpu gpu_;
};

TEST_F(VirtualGpuTest, CreateProcessAllocatesMemory) {
  auto pid = gpu_.create_process(ModelId(1), MB(1701));
  ASSERT_TRUE(pid.ok());
  EXPECT_TRUE(gpu_.has_model(ModelId(1)));
  EXPECT_EQ(gpu_.free_memory(), gpu_.memory_capacity() - MB(1701));
  EXPECT_EQ(gpu_.process_count(), 1u);
}

TEST_F(VirtualGpuTest, DuplicateModelProcessRejected) {
  ASSERT_TRUE(gpu_.create_process(ModelId(1), MB(100)).ok());
  EXPECT_EQ(gpu_.create_process(ModelId(1), MB(100)).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(VirtualGpuTest, OutOfMemoryRejected) {
  ASSERT_TRUE(gpu_.create_process(ModelId(1), GiB(7)).ok());
  EXPECT_EQ(gpu_.create_process(ModelId(2), GiB(4)).status().code(),
            StatusCode::kResourceExhausted);
}

TEST_F(VirtualGpuTest, KillProcessFreesMemory) {
  auto pid = gpu_.create_process(ModelId(1), MB(2000));
  ASSERT_TRUE(pid.ok());
  EXPECT_TRUE(gpu_.kill_process(*pid).ok());
  EXPECT_FALSE(gpu_.has_model(ModelId(1)));
  EXPECT_EQ(gpu_.free_memory(), gpu_.memory_capacity());
  EXPECT_EQ(gpu_.counters().evictions, 1);
  EXPECT_EQ(gpu_.kill_process(*pid).code(), StatusCode::kNotFound);
}

TEST_F(VirtualGpuTest, LoadTheInferLifecycle) {
  auto pid = gpu_.create_process(ModelId(5), MB(1701));
  ASSERT_TRUE(pid.ok());
  EXPECT_EQ(gpu_.phase(), GpuPhase::kIdle);

  auto load_end = gpu_.begin_load(0, *pid, seconds_to_sim(2.67));
  ASSERT_TRUE(load_end.ok());
  EXPECT_GE(*load_end, seconds_to_sim(2.67));  // profiled time dominates
  EXPECT_EQ(gpu_.phase(), GpuPhase::kLoading);
  EXPECT_TRUE(gpu_.is_busy());
  EXPECT_EQ(gpu_.busy_until(), *load_end);

  // Cannot run inference before the load finishes.
  EXPECT_EQ(gpu_.begin_inference(*load_end, *pid, sec(1), 32).status().code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE(gpu_.finish_load(*load_end, *pid).ok());
  EXPECT_EQ(gpu_.phase(), GpuPhase::kIdle);

  auto infer_end = gpu_.begin_inference(*load_end, *pid, seconds_to_sim(1.28), 32);
  ASSERT_TRUE(infer_end.ok());
  EXPECT_EQ(*infer_end, *load_end + seconds_to_sim(1.28));
  EXPECT_EQ(gpu_.phase(), GpuPhase::kInferring);
  ASSERT_TRUE(gpu_.finish_inference(*infer_end, *pid).ok());
  EXPECT_EQ(gpu_.phase(), GpuPhase::kIdle);
  EXPECT_EQ(gpu_.counters().loads, 1);
  EXPECT_EQ(gpu_.counters().inferences, 1);
}

TEST_F(VirtualGpuTest, BusyGpuRejectsConcurrentWork) {
  auto p1 = gpu_.create_process(ModelId(1), MB(100));
  auto p2 = gpu_.create_process(ModelId(2), MB(100));
  ASSERT_TRUE(p1.ok() && p2.ok());
  ASSERT_TRUE(gpu_.begin_load(0, *p1, sec(1)).ok());
  EXPECT_EQ(gpu_.begin_load(0, *p2, sec(1)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(VirtualGpuTest, MismatchedPhaseTransitionsRejected) {
  auto pid = gpu_.create_process(ModelId(1), MB(100));
  ASSERT_TRUE(pid.ok());
  EXPECT_EQ(gpu_.finish_load(0, *pid).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(gpu_.finish_inference(0, *pid).code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(gpu_.begin_load(0, ProcessId(999), sec(1)).ok());
}

TEST_F(VirtualGpuTest, SmUtilizationIntegratesOccupancy) {
  auto pid = gpu_.create_process(ModelId(1), MB(100));
  ASSERT_TRUE(pid.ok());
  auto load_end = gpu_.begin_load(0, *pid, sec(1));
  ASSERT_TRUE(load_end.ok());
  ASSERT_TRUE(gpu_.finish_load(*load_end, *pid).ok());
  auto infer_end = gpu_.begin_inference(*load_end, *pid, sec(1), 46);
  ASSERT_TRUE(infer_end.ok());
  ASSERT_TRUE(gpu_.finish_inference(*infer_end, *pid).ok());
  // Roughly: occupancy 1.0 for the inference second, 0 during the load.
  const double util = gpu_.sm_utilization(*infer_end);
  EXPECT_NEAR(util, 0.5, 0.05);
}

TEST_F(VirtualGpuTest, SharedLinkCreatesContention) {
  PcieLink shared(12.6, usec(0));
  VirtualGpu g0(GpuId(0), rtx2080(), &shared);
  VirtualGpu g1(GpuId(1), rtx2080(), &shared);
  auto p0 = g0.create_process(ModelId(1), MB(1000));
  auto p1 = g1.create_process(ModelId(2), MB(1000));
  ASSERT_TRUE(p0.ok() && p1.ok());
  auto end0 = g0.begin_load(0, *p0, msec(10));
  auto end1 = g1.begin_load(0, *p1, msec(10));
  ASSERT_TRUE(end0.ok() && end1.ok());
  // g1's transfer queues behind g0's on the shared link.
  EXPECT_GT(*end1, *end0);
}

TEST_F(VirtualGpuTest, ProcessesListedInCreationOrder) {
  ASSERT_TRUE(gpu_.create_process(ModelId(3), MB(100)).ok());
  ASSERT_TRUE(gpu_.create_process(ModelId(1), MB(100)).ok());
  const auto procs = gpu_.processes();
  ASSERT_EQ(procs.size(), 2u);
  EXPECT_EQ(procs[0].model, ModelId(3));
  EXPECT_EQ(procs[1].model, ModelId(1));
}

}  // namespace
}  // namespace gfaas::gpu
