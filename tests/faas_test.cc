// Tests for the FaaS framework substrate: Dockerfile flag parsing,
// function registry CRUD, container pool lifecycle, Watchdog execution
// with Datastore metrics, and Gateway invocation routing.
#include <gtest/gtest.h>

#include "datastore/keys.h"
#include "faas/container.h"
#include "faas/function.h"
#include "faas/gateway.h"
#include "faas/registry.h"
#include "sim/simulator.h"
#include "testing/builders.h"

namespace gfaas::faas {
namespace {

Payload double_payload(const Payload& input) {
  Payload out = input;
  for (float& v : out.data) v *= 2.f;
  return out;
}

FunctionSpec cpu_function(const std::string& name) {
  return testkit::cpu_function_spec(
      name, [](const Payload& input) -> StatusOr<Payload> {
        return double_payload(input);
      });
}

FunctionSpec gpu_function(const std::string& name, const std::string& model) {
  return testkit::gpu_function_spec(name, model);
}

TEST(DockerfileTest, DetectsGpuFlagVariants) {
  EXPECT_TRUE(parse_dockerfile("ENV GPU_ENABLED=1").gpu_enabled);
  EXPECT_TRUE(parse_dockerfile("LABEL gpu.enabled=true").gpu_enabled);
  EXPECT_TRUE(parse_dockerfile("env gpu_enabled=1").gpu_enabled);  // case-insensitive
  EXPECT_FALSE(parse_dockerfile("ENV GPU_ENABLED=0").gpu_enabled);
  EXPECT_FALSE(parse_dockerfile("# ENV GPU_ENABLED=1 (comment)").gpu_enabled);
  EXPECT_FALSE(parse_dockerfile("").gpu_enabled);
}

TEST(DockerfileTest, ExtractsModelName) {
  const DockerfileInfo info =
      parse_dockerfile("ENV GPU_ENABLED=1\nENV GFAAS_MODEL=resnet50\n");
  EXPECT_TRUE(info.gpu_enabled);
  EXPECT_EQ(info.model_name, "resnet50");
  EXPECT_EQ(parse_dockerfile("ENV GFAAS_MODEL=vgg16.bn").model_name, "vgg16.bn");
}

TEST(DockerfileTest, IgnoresUnrelatedDirectives) {
  const DockerfileInfo info = parse_dockerfile(
      "FROM python:3.10\nRUN pip install torch\nCOPY handler.py .\nCMD [\"run\"]\n");
  EXPECT_FALSE(info.gpu_enabled);
  EXPECT_TRUE(info.model_name.empty());
}

TEST(RegistryTest, CrudLifecycle) {
  FunctionRegistry registry;
  ASSERT_TRUE(registry.create(cpu_function("f1")).ok());
  EXPECT_TRUE(registry.contains("f1"));
  EXPECT_EQ(registry.create(cpu_function("f1")).code(), StatusCode::kAlreadyExists);

  auto spec = registry.get("f1");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(spec->gpu_enabled);

  FunctionSpec updated = gpu_function("f1", "alexnet");
  ASSERT_TRUE(registry.update(updated).ok());
  spec = registry.get("f1");
  EXPECT_TRUE(spec->gpu_enabled);
  EXPECT_EQ(spec->model_name, "alexnet");

  EXPECT_TRUE(registry.remove("f1").ok());
  EXPECT_EQ(registry.remove("f1").code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.get("f1").status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, GpuFunctionRequiresModel) {
  FunctionRegistry registry;
  FunctionSpec spec;
  spec.name = "gpu-no-model";
  spec.dockerfile = "ENV GPU_ENABLED=1\n";
  EXPECT_EQ(registry.create(spec).code(), StatusCode::kInvalidArgument);
}

TEST(RegistryTest, ListsRegisteredNames) {
  FunctionRegistry registry;
  ASSERT_TRUE(registry.create(cpu_function("b")).ok());
  ASSERT_TRUE(registry.create(cpu_function("a")).ok());
  EXPECT_EQ(registry.list(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(registry.size(), 2u);
}

TEST(ContainerTest, WarmUpPaysColdStartOnce) {
  Container c("c0", cpu_function("f"));
  EXPECT_EQ(c.state(), ContainerState::kCold);
  EXPECT_EQ(c.warm_up(), msec(400));
  EXPECT_EQ(c.state(), ContainerState::kWarm);
  EXPECT_EQ(c.warm_up(), 0);
}

TEST(ContainerPoolTest, ReusesWarmContainers) {
  ContainerPool pool;
  const FunctionSpec spec = cpu_function("f");
  auto c1 = pool.acquire(spec);
  ASSERT_TRUE(c1.ok());
  (*c1)->warm_up();
  pool.release(*c1);
  auto c2 = pool.acquire(spec);
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(*c1, *c2);  // same container reused
  EXPECT_EQ(pool.total_containers(), 1u);
}

TEST(ContainerPoolTest, ScalesUpWhenBusyAndCaps) {
  ContainerPool pool(/*max_per_function=*/2);
  const FunctionSpec spec = cpu_function("f");
  auto c1 = pool.acquire(spec);
  ASSERT_TRUE(c1.ok());
  (*c1)->warm_up();
  (*c1)->mark_busy();
  auto c2 = pool.acquire(spec);
  ASSERT_TRUE(c2.ok());
  EXPECT_NE(*c1, *c2);
  (*c2)->warm_up();
  (*c2)->mark_busy();
  EXPECT_EQ(pool.acquire(spec).status().code(), StatusCode::kResourceExhausted);
}

TEST(ContainerPoolTest, ScaleDownRemovesIdleContainers) {
  ContainerPool pool(8);
  const FunctionSpec spec = cpu_function("f");
  std::vector<Container*> held;
  for (int i = 0; i < 4; ++i) {
    auto c = pool.acquire(spec);
    ASSERT_TRUE(c.ok());
    (*c)->warm_up();
    (*c)->mark_busy();
    held.push_back(*c);
  }
  for (auto* c : held) pool.release(c);
  EXPECT_EQ(pool.warm_count("f"), 4u);
  EXPECT_EQ(pool.scale_down("f", 1), 3u);
  EXPECT_EQ(pool.total_containers(), 1u);
}

TEST(WatchdogTest, ExecutesAndRecordsMetrics) {
  sim::Simulator sim;
  datastore::KvStore store(&sim);
  Watchdog watchdog(&store, &sim);
  Container container("c0", cpu_function("doubler"));
  container.warm_up();

  Payload input;
  input.data = {1.f, 2.f};
  auto result = watchdog.execute(container, input);
  ASSERT_TRUE(result.ok());
  EXPECT_FLOAT_EQ(result->output.data[1], 4.f);
  EXPECT_EQ(result->executed_on, "c0");
  EXPECT_EQ(container.invocations(), 1);

  EXPECT_TRUE(store.get(datastore::keys::fn_latency("doubler")).ok());
  EXPECT_EQ(store.get(datastore::keys::fn_invocations("doubler"))->value, "1");
  ASSERT_TRUE(watchdog.execute(container, input).ok());
  EXPECT_EQ(store.get(datastore::keys::fn_invocations("doubler"))->value, "2");
}

TEST(WatchdogTest, PropagatesHandlerFailure) {
  sim::Simulator sim;
  datastore::KvStore store(&sim);
  Watchdog watchdog(&store, &sim);
  FunctionSpec failing = cpu_function("fails");
  failing.handler = [](const Payload&) -> StatusOr<Payload> {
    return Status::Internal("boom");
  };
  Container container("c1", failing);
  container.warm_up();
  EXPECT_EQ(watchdog.execute(container, {}).status().code(), StatusCode::kInternal);
  EXPECT_EQ(container.state(), ContainerState::kWarm);  // container survives
}

TEST(WatchdogTest, MissingHandlerIsPrecondition) {
  Watchdog watchdog(nullptr, nullptr);
  FunctionSpec spec;
  spec.name = "empty";
  Container container("c2", spec);
  EXPECT_EQ(watchdog.execute(container, {}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(GatewayTest, InvokesCpuFunctionSynchronously) {
  sim::Simulator sim;
  datastore::KvStore store(&sim);
  Gateway gateway(&store, &sim, /*gpu_backend=*/nullptr);
  ASSERT_TRUE(gateway.register_function(cpu_function("doubler")).ok());

  Payload input;
  input.data = {3.f};
  auto result = gateway.invoke_sync("doubler", input);
  ASSERT_TRUE(result.ok());
  EXPECT_FLOAT_EQ(result->output.data[0], 6.f);
  // Cold start charged on the first call.
  EXPECT_GE(result->latency, msec(400));
  auto again = gateway.invoke_sync("doubler", input);
  ASSERT_TRUE(again.ok());
  EXPECT_LT(again->latency, msec(400));
}

TEST(GatewayTest, UnknownFunctionFails) {
  Gateway gateway(nullptr, nullptr, nullptr);
  EXPECT_EQ(gateway.invoke_sync("ghost", {}).status().code(), StatusCode::kNotFound);
}

TEST(GatewayTest, GpuFunctionWithoutBackendUnavailable) {
  Gateway gateway(nullptr, nullptr, nullptr);
  ASSERT_TRUE(gateway.register_function(gpu_function("infer", "resnet18")).ok());
  EXPECT_EQ(gateway.invoke_sync("infer", {}).status().code(),
            StatusCode::kUnavailable);
}

TEST(GatewayTest, RoutesGpuFunctionToBackend) {
  struct RecordingBackend : GpuBackend {
    void submit(const FunctionSpec& spec, const Payload&,
                std::function<void(StatusOr<InvocationResult>)> done) override {
      ++submissions;
      last_model = spec.model_name;
      InvocationResult result;
      result.executed_on = "fake-gpu";
      done(result);
    }
    int submissions = 0;
    std::string last_model;
  };
  RecordingBackend backend;
  Gateway gateway(nullptr, nullptr, &backend);
  ASSERT_TRUE(gateway.register_function(gpu_function("infer", "vgg11")).ok());
  auto result = gateway.invoke_sync("infer", {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->executed_on, "fake-gpu");
  EXPECT_EQ(backend.submissions, 1);
  EXPECT_EQ(backend.last_model, "vgg11");
}

}  // namespace
}  // namespace gfaas::faas
