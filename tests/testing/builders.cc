#include "testing/builders.h"

#include <string>

#include "common/log.h"
#include "models/zoo.h"

namespace gfaas::testkit {

core::Request make_request(std::int64_t id, std::int64_t model, SimTime arrival,
                           int batch) {
  core::Request r;
  r.id = RequestId(id);
  r.function = FunctionId(id);
  r.model = ModelId(model);
  r.batch = batch;
  r.arrival = arrival;
  r.function_name = "fn" + std::to_string(id);
  return r;
}

std::vector<core::Request> make_request_sequence(std::int64_t count,
                                                 std::int64_t model_count,
                                                 SimTime start, SimTime gap,
                                                 int batch) {
  GFAAS_CHECK(model_count > 0) << "make_request_sequence needs >= 1 model";
  std::vector<core::Request> requests;
  requests.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    requests.push_back(make_request(i, i % model_count, start + gap * i, batch));
  }
  return requests;
}

models::ModelRegistry head_registry(int count) {
  const auto& catalog = models::table1_catalog();
  GFAAS_CHECK(count >= 0 && static_cast<std::size_t>(count) <= catalog.size())
      << "head_registry count out of catalog range: " << count;
  models::ModelRegistry registry;
  for (int i = 0; i < count; ++i) {
    const Status status =
        registry.register_model(catalog[static_cast<std::size_t>(i)]);
    GFAAS_CHECK(status.ok()) << "head_registry: " << status.to_string();
  }
  return registry;
}

faas::FunctionSpec gpu_function_spec(const std::string& name,
                                     const std::string& model) {
  faas::FunctionSpec spec;
  spec.name = name;
  spec.dockerfile =
      "FROM gfaas/base\nENV GPU_ENABLED=1\nENV GFAAS_MODEL=" + model + "\n";
  return spec;
}

faas::FunctionSpec cpu_function_spec(const std::string& name,
                                     faas::Handler handler) {
  faas::FunctionSpec spec;
  spec.name = name;
  spec.dockerfile = "FROM gfaas/base\n";
  spec.handler = std::move(handler);
  return spec;
}

trace::Workload make_workload(std::size_t working_set, std::uint64_t seed,
                              std::int64_t window_minutes) {
  trace::WorkloadConfig config;
  config.working_set_size = working_set;
  config.window_minutes = window_minutes;
  config.seed = seed;
  auto workload = trace::build_standard_workload(config, /*trace_seed=*/seed * 31 + 1);
  GFAAS_CHECK(workload.ok()) << "make_workload: " << workload.status().to_string();
  return *std::move(workload);
}

ClusterBuilder::ClusterBuilder() {
  config_.nodes = 1;
  config_.gpus_per_node = 2;
}

ClusterBuilder& ClusterBuilder::nodes(int n) {
  config_.nodes = n;
  return *this;
}

ClusterBuilder& ClusterBuilder::gpus_per_node(int n) {
  config_.gpus_per_node = n;
  return *this;
}

ClusterBuilder& ClusterBuilder::policy(core::PolicyName p) {
  config_.policy = p;
  return *this;
}

ClusterBuilder& ClusterBuilder::o3_limit(int limit) {
  config_.o3_limit = limit;
  return *this;
}

ClusterBuilder& ClusterBuilder::cache_policy(cache::PolicyKind kind) {
  config_.cache_policy = kind;
  return *this;
}

ClusterBuilder& ClusterBuilder::models(int count) {
  model_count_ = count;
  return *this;
}

ClusterBuilder& ClusterBuilder::real_inference(bool on) {
  config_.execute_real_inference = on;
  return *this;
}

std::unique_ptr<cluster::SimCluster> ClusterBuilder::build() const {
  return std::make_unique<cluster::SimCluster>(config_,
                                               head_registry(model_count_));
}

std::unique_ptr<cluster::FaasCluster> ClusterBuilder::build_faas() const {
  return std::make_unique<cluster::FaasCluster>(config_,
                                                head_registry(model_count_));
}

}  // namespace gfaas::testkit
