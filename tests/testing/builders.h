// Shared test support: deterministic builders for requests, model
// registries, workloads and clusters. Suites use these instead of each
// re-implementing `make_request` / registry helpers, so fixtures stay
// consistent across the scheduler, cache and cluster tests.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/experiment.h"
#include "cluster/faas_cluster.h"
#include "trace/workload.h"

namespace gfaas::testkit {

// Canonical test request: the function id mirrors the request id and
// function_name is "fn<id>".
core::Request make_request(std::int64_t id, std::int64_t model, SimTime arrival,
                           int batch = 32);

// A deterministic arrival sequence: `count` requests spaced `gap` apart
// starting at `start`, round-robining over `model_count` models. Request
// ids are dense [0, count).
std::vector<core::Request> make_request_sequence(std::int64_t count,
                                                 std::int64_t model_count,
                                                 SimTime start, SimTime gap,
                                                 int batch = 32);

// Registry holding the first `count` Table I models (squeezenet1.1,
// resnet18, resnet34, ...).
models::ModelRegistry head_registry(int count);

// GPU-enabled FunctionSpec whose Dockerfile routes inference to `model`.
faas::FunctionSpec gpu_function_spec(const std::string& name,
                                     const std::string& model);

// Plain CPU FunctionSpec running `handler` in its container.
faas::FunctionSpec cpu_function_spec(const std::string& name,
                                     faas::Handler handler = nullptr);

// Deterministic standard workload over a synthesized Azure trace.
// CHECK-fails on config errors so tests receive a value directly.
trace::Workload make_workload(std::size_t working_set, std::uint64_t seed,
                              std::int64_t window_minutes = 2);

// Fluent builder for cluster fixtures. Defaults to the smallest useful
// cluster (1 node x 2 GPUs, 3 registered models) rather than the paper's
// full 3x4 testbed, so unit tests stay fast; call nodes()/gpus_per_node()
// to scale up.
class ClusterBuilder {
 public:
  ClusterBuilder();

  ClusterBuilder& nodes(int n);
  ClusterBuilder& gpus_per_node(int n);
  ClusterBuilder& policy(core::PolicyName p);
  ClusterBuilder& o3_limit(int limit);
  ClusterBuilder& cache_policy(cache::PolicyKind kind);
  ClusterBuilder& models(int count);
  ClusterBuilder& real_inference(bool on);

  const cluster::ClusterConfig& config() const { return config_; }

  std::unique_ptr<cluster::SimCluster> build() const;
  std::unique_ptr<cluster::FaasCluster> build_faas() const;

 private:
  cluster::ClusterConfig config_;
  int model_count_ = 3;
};

}  // namespace gfaas::testkit
