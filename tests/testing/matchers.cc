#include "testing/matchers.h"

#include <cmath>
#include <vector>

namespace gfaas::testkit {

const core::CompletionRecord* find_completion(
    const cluster::SchedulerEngine& engine, std::int64_t request_id) {
  for (const auto& record : engine.completions()) {
    if (record.id == RequestId(request_id)) return &record;
  }
  return nullptr;
}

const core::CompletionRecord& completion_of(cluster::SimCluster& cluster,
                                            std::int64_t request_id) {
  if (const auto* record = find_completion(cluster.engine(), request_id)) {
    return *record;
  }
  ADD_FAILURE() << "no completion for request " << request_id;
  static const core::CompletionRecord dummy{};
  return dummy;
}

::testing::AssertionResult all_completed_once(
    const cluster::SchedulerEngine& engine, std::size_t expected) {
  const auto& completions = engine.completions();
  if (completions.size() != expected) {
    return ::testing::AssertionFailure()
           << "expected " << expected << " completions, got "
           << completions.size();
  }
  std::vector<bool> seen(expected, false);
  for (const auto& record : completions) {
    const auto idx = static_cast<std::size_t>(record.id.value());
    if (idx >= expected) {
      return ::testing::AssertionFailure()
             << "completion for unknown request id " << record.id.value();
    }
    if (seen[idx]) {
      return ::testing::AssertionFailure()
             << "request " << record.id.value() << " completed twice";
    }
    seen[idx] = true;
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult has_causal_timestamps(
    const core::CompletionRecord& record) {
  if (record.arrival > record.dispatched) {
    return ::testing::AssertionFailure()
           << "request " << record.id.value() << ": dispatched "
           << record.dispatched << " before arrival " << record.arrival;
  }
  if (record.dispatched >= record.completed) {
    return ::testing::AssertionFailure()
           << "request " << record.id.value() << ": completed "
           << record.completed << " not after dispatch " << record.dispatched;
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult latency_near(const core::CompletionRecord& record,
                                        double expected_s, double tolerance_s) {
  const double actual_s = sim_to_seconds(record.latency());
  if (std::abs(actual_s - expected_s) > tolerance_s) {
    return ::testing::AssertionFailure()
           << "request " << record.id.value() << ": latency " << actual_s
           << "s not within " << tolerance_s << "s of " << expected_s << "s";
  }
  return ::testing::AssertionSuccess();
}

}  // namespace gfaas::testkit
