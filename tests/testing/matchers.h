// Shared test support: lookups and gtest predicates over
// CompletionRecords, so suites assert on scheduler outcomes uniformly.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>

#include "cluster/experiment.h"

namespace gfaas::testkit {

// Completion record for `request_id`, or nullptr if it never completed.
const core::CompletionRecord* find_completion(
    const cluster::SchedulerEngine& engine, std::int64_t request_id);

// As above, but registers a test failure when the record is missing and
// returns a zeroed dummy so the calling test can continue.
const core::CompletionRecord& completion_of(cluster::SimCluster& cluster,
                                            std::int64_t request_id);

// Every submitted request completed exactly once (ids dense in
// [0, expected)).
::testing::AssertionResult all_completed_once(
    const cluster::SchedulerEngine& engine, std::size_t expected);

// arrival <= dispatched < completed.
::testing::AssertionResult has_causal_timestamps(
    const core::CompletionRecord& record);

// End-to-end latency within `tolerance_s` of `expected_s`.
::testing::AssertionResult latency_near(const core::CompletionRecord& record,
                                        double expected_s,
                                        double tolerance_s = 0.05);

}  // namespace gfaas::testkit
