// End-to-end smoke test: the quickstart scenario (register a GPU-enabled
// function, invoke it repeatedly on the paper's 3x4 cluster) plus one
// cluster::Experiment run over a standard workload. Guards the full
// Gateway -> Scheduler -> GPU Manager -> Cache Manager -> Datastore
// wiring that every example and bench binary depends on.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/experiment.h"
#include "cluster/faas_cluster.h"
#include "models/zoo.h"
#include "testing/builders.h"
#include "testing/matchers.h"

namespace gfaas::cluster {
namespace {

TEST(SmokeTest, QuickstartScenarioCompletes) {
  // The quickstart example, minus stdout: paper testbed (3 nodes x 4
  // GPUs), real scaled-down CPU inference, resnet50 behind a function.
  ClusterConfig config;
  config.execute_real_inference = true;
  FaasCluster faas(config, models::ModelRegistry::full_catalog());

  ASSERT_TRUE(
      faas.gateway()
          .register_function(testkit::gpu_function_spec("classify-image", "resnet50"))
          .ok());

  std::vector<SimTime> latencies;
  for (int i = 0; i < 3; ++i) {
    faas.gateway().invoke("classify-image", {},
                          [&](StatusOr<faas::InvocationResult> result) {
                            ASSERT_TRUE(result.ok()) << result.status().to_string();
                            EXPECT_FALSE(result->executed_on.empty());
                            latencies.push_back(result->latency);
                          });
    faas.run_to_completion();
  }

  ASSERT_EQ(latencies.size(), 3u);
  // First invocation pays the model upload; the rest hit the GPU cache.
  EXPECT_GT(latencies[0], latencies[1]);
  EXPECT_GT(latencies[0], latencies[2]);
  EXPECT_EQ(faas.sim_cluster().engine().completions().size(), 3u);
}

TEST(SmokeTest, BuilderClusterReplaysSequence) {
  // The testkit fixture path future PRs lean on: ClusterBuilder +
  // deterministic request sequence + completion-record matchers.
  auto cluster = testkit::ClusterBuilder()
                     .policy(core::PolicyName::kLalb)
                     .models(3)
                     .build();
  const auto requests =
      testkit::make_request_sequence(/*count=*/12, /*model_count=*/3,
                                     /*start=*/0, /*gap=*/sec(2));
  cluster->replay(requests);

  EXPECT_TRUE(testkit::all_completed_once(cluster->engine(), requests.size()));
  for (const auto& record : cluster->engine().completions()) {
    EXPECT_TRUE(testkit::has_causal_timestamps(record));
  }
  // Request 0 is always a cold miss; squeezenet1.1 loads 2.41s + infers
  // 1.28s from arrival 0.
  const auto& first = testkit::completion_of(*cluster, 0);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(testkit::latency_near(first, 2.41 + 1.28));
}

TEST(SmokeTest, ExperimentProducesCompletions) {
  const trace::Workload workload = testkit::make_workload(/*working_set=*/15,
                                                          /*seed=*/7);
  ClusterConfig config;
  const ExperimentResult result = run_experiment(config, workload);

  EXPECT_EQ(result.requests, workload.requests.size());
  EXPECT_GT(result.requests, 0u);
  EXPECT_GT(result.avg_latency_s, 0.0);
  EXPECT_GT(result.makespan_s, 0.0);
  EXPECT_GE(result.miss_ratio, 0.0);
  EXPECT_LE(result.miss_ratio, 1.0);
}

}  // namespace
}  // namespace gfaas::cluster
