// Tests for the scheduler core: queue data structures and the three
// scheduling policies (LB / LALB / LALB+O3) exercised on a real (small)
// simulated cluster so every decision path of Algorithms 1 & 2 is
// observable through completion records.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "cluster/experiment.h"
#include "common/rng.h"
#include "core/queues.h"
#include "core/scheduler.h"
#include "models/zoo.h"
#include "testing/builders.h"
#include "testing/matchers.h"

namespace gfaas::core {
namespace {

using testkit::make_request;

TEST(GlobalQueueTest, ArrivalOrderPreserved) {
  GlobalQueue q;
  q.push(make_request(1, 0, 10));
  q.push(make_request(2, 1, 20));
  q.push(make_request(3, 0, 30));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.head()->id, RequestId(1));
  const auto order = q.in_arrival_order();
  EXPECT_EQ(order, (std::vector<RequestId>{RequestId(1), RequestId(2), RequestId(3)}));
}

TEST(GlobalQueueTest, ModelIndexFindsEarliest) {
  GlobalQueue q;
  q.push(make_request(1, 5, 10));
  q.push(make_request(2, 7, 20));
  q.push(make_request(3, 5, 30));
  const Request* first = q.first_for_model(ModelId(5));
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->id, RequestId(1));
  EXPECT_EQ(q.first_for_model(ModelId(9)), nullptr);
  const auto models = q.pending_models();
  EXPECT_EQ(models.size(), 2u);
}

TEST(GlobalQueueTest, TakeRemovesAndMaintainsIndex) {
  GlobalQueue q;
  q.push(make_request(1, 5, 10));
  q.push(make_request(2, 5, 20));
  auto taken = q.take(RequestId(1));
  ASSERT_TRUE(taken.ok());
  EXPECT_EQ(taken->id, RequestId(1));
  EXPECT_EQ(q.first_for_model(ModelId(5))->id, RequestId(2));
  ASSERT_TRUE(q.take(RequestId(2)).ok());
  EXPECT_EQ(q.first_for_model(ModelId(5)), nullptr);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.take(RequestId(1)).status().code(), StatusCode::kNotFound);
}

TEST(GlobalQueueTest, VisitsTracking) {
  GlobalQueue q;
  q.push(make_request(1, 0, 10));
  EXPECT_EQ(q.max_visits(), 0);
  for (int i = 1; i <= 7; ++i) EXPECT_EQ(q.bump_visits(RequestId(1)), i);
  EXPECT_EQ(q.max_visits(), 7);
  EXPECT_EQ(q.find(RequestId(1))->visits, 7);
}

TEST(GlobalQueueTest, MaxVisitsFallsWhenHolderLeaves) {
  // The incremental histogram must track removals of the current maximum,
  // not just increments.
  GlobalQueue q;
  q.push(make_request(1, 0, 10));
  q.push(make_request(2, 1, 20));
  for (int i = 0; i < 5; ++i) q.bump_visits(RequestId(1));
  q.bump_visits(RequestId(2));
  EXPECT_EQ(q.max_visits(), 5);
  ASSERT_TRUE(q.take(RequestId(1)).ok());
  EXPECT_EQ(q.max_visits(), 1);
  ASSERT_TRUE(q.take(RequestId(2)).ok());
  EXPECT_EQ(q.max_visits(), 0);
}

TEST(GlobalQueueTest, IndexInvariantsThroughInterleavedPushTake) {
  GlobalQueue q;
  q.push(make_request(1, 5, 10));
  q.push(make_request(2, 7, 20));
  q.push(make_request(3, 5, 30));
  ASSERT_TRUE(q.take(RequestId(1)).ok());
  q.push(make_request(4, 9, 40));
  ASSERT_TRUE(q.take(RequestId(4)).ok());
  q.push(make_request(5, 5, 50));

  // first_for_model tracks the earliest survivor per model.
  EXPECT_EQ(q.first_for_model(ModelId(5))->id, RequestId(3));
  EXPECT_EQ(q.first_for_model(ModelId(7))->id, RequestId(2));
  EXPECT_EQ(q.first_for_model(ModelId(9)), nullptr);
  // pending_models reflects only models with survivors.
  const auto models = q.pending_models();
  EXPECT_EQ(models.size(), 2u);
  // Arrival order is preserved across the holes.
  EXPECT_EQ(q.in_arrival_order(),
            (std::vector<RequestId>{RequestId(2), RequestId(3), RequestId(5)}));
}

TEST(GlobalQueueTest, IteratorMatchesSnapshotUnderRandomOps) {
  // Property check: the snapshot-free const iteration, the per-model
  // index, and the incremental max_visits must agree with ground truth
  // recomputed from in_arrival_order() after every random operation.
  Rng rng(0xfeed5eed);
  GlobalQueue q;
  std::vector<std::int64_t> live;
  std::int64_t next_id = 1;
  for (int op = 0; op < 500; ++op) {
    const std::uint64_t dice = rng.next_below(10);
    if (dice < 5 || live.empty()) {
      const std::int64_t id = next_id++;
      q.push(make_request(id, rng.uniform_int(0, 6), op));
      live.push_back(id);
    } else if (dice < 8) {
      const std::size_t pick = rng.next_below(live.size());
      q.bump_visits(RequestId(live[pick]));
    } else {
      const std::size_t pick = rng.next_below(live.size());
      ASSERT_TRUE(q.take(RequestId(live[pick])).ok());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }

    // Iteration order == snapshot order.
    const std::vector<RequestId> snapshot = q.in_arrival_order();
    std::vector<RequestId> iterated;
    int scan_max = 0;
    std::map<std::int64_t, RequestId> first_by_model;
    for (const Request& r : q) {
      iterated.push_back(r.id);
      scan_max = std::max(scan_max, r.visits);
      first_by_model.emplace(r.model.value(), r.id);
    }
    ASSERT_EQ(iterated, snapshot);
    // Incremental max_visits == scan recomputation.
    ASSERT_EQ(q.max_visits(), scan_max);
    // Per-model index == scan recomputation, including absent models.
    ASSERT_EQ(q.pending_models().size(), first_by_model.size());
    for (std::int64_t model = 0; model <= 6; ++model) {
      const Request* first = q.first_for_model(ModelId(model));
      auto expect = first_by_model.find(model);
      if (expect == first_by_model.end()) {
        ASSERT_EQ(first, nullptr);
      } else {
        ASSERT_NE(first, nullptr);
        ASSERT_EQ(first->id, expect->second);
      }
    }
  }
  EXPECT_GT(q.size(), 0u);
}

TEST(LocalQueuesTest, FifoPerGpu) {
  LocalQueues lq(2);
  lq.push(GpuId(0), make_request(1, 0, 10));
  lq.push(GpuId(0), make_request(2, 0, 20));
  lq.push(GpuId(1), make_request(3, 1, 30));
  EXPECT_EQ(lq.size(GpuId(0)), 2u);
  EXPECT_EQ(lq.total_pending(), 3u);
  EXPECT_EQ(lq.head(GpuId(0))->id, RequestId(1));
  auto popped = lq.pop_head(GpuId(0));
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->id, RequestId(1));
  EXPECT_EQ(lq.queued(GpuId(0)).size(), 1u);
  EXPECT_FALSE(lq.pop_head(GpuId(1)).has_value() == false);
}

TEST(SchedulerFactoryTest, NamesAndKinds) {
  EXPECT_EQ(make_scheduler(PolicyName::kLb)->name(), "LB");
  EXPECT_EQ(make_scheduler(PolicyName::kLalb)->name(), "LALB");
  EXPECT_EQ(make_scheduler(PolicyName::kLalbO3, 25)->name(), "LALBO3");
  EXPECT_EQ(policy_display_name(PolicyName::kLalbO3), "LALBO3");
  auto lalb = make_scheduler(PolicyName::kLalb);
  EXPECT_EQ(static_cast<LalbScheduler*>(lalb.get())->o3_limit(), 0);
}

// --- policy behaviour on a live 2-GPU cluster ---

class PolicyBehaviourTest : public ::testing::Test {
 protected:
  // 1 node x 2 GPUs; models 0/1/2 from the catalog head (squeezenet1.1,
  // resnet18, resnet34): loads 2.41/2.52/2.60 s, infers 1.28/1.25/1.25 s.
  models::ModelRegistry small_registry() { return testkit::head_registry(3); }

  cluster::ClusterConfig config_for(PolicyName policy, int o3_limit = 25) {
    return testkit::ClusterBuilder()
        .policy(policy)
        .o3_limit(o3_limit)
        .config();
  }

  const CompletionRecord& completion_of(cluster::SimCluster& cluster,
                                        std::int64_t request_id) {
    return testkit::completion_of(cluster, request_id);
  }
};

TEST_F(PolicyBehaviourTest, FirstRequestIsAlwaysMiss) {
  for (PolicyName policy : {PolicyName::kLb, PolicyName::kLalb, PolicyName::kLalbO3}) {
    cluster::SimCluster cluster(config_for(policy), small_registry());
    cluster.replay({make_request(0, 0, 0)});
    const auto& record = completion_of(cluster, 0);
    EXPECT_FALSE(record.cache_hit);
    EXPECT_FALSE(record.false_miss);
    // Latency = load + inference (empty system).
    EXPECT_NEAR(sim_to_seconds(record.latency()), 2.41 + 1.28, 0.05);
  }
}

TEST_F(PolicyBehaviourTest, LalbReusesCachedModelOnIdleGpu) {
  cluster::SimCluster cluster(config_for(PolicyName::kLalb), small_registry());
  cluster.replay({make_request(0, 0, 0), make_request(1, 0, sec(10))});
  const auto& second = completion_of(cluster, 1);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.gpu, completion_of(cluster, 0).gpu);
  EXPECT_NEAR(sim_to_seconds(second.latency()), 1.28, 0.05);
}

TEST_F(PolicyBehaviourTest, LalbWaitsOnBusyHolderWhenCheaperThanLoad) {
  // Warm model0 on one GPU; then two back-to-back model0 requests. The
  // second arrives while the holder runs the first: waiting (~1.28s)
  // beats re-uploading (2.41s), so it must queue locally, not replicate.
  cluster::SimCluster cluster(config_for(PolicyName::kLalb), small_registry());
  cluster.replay({make_request(0, 0, 0), make_request(1, 0, sec(10)),
                  make_request(2, 0, sec(10) + msec(100))});
  const auto& third = completion_of(cluster, 2);
  EXPECT_TRUE(third.cache_hit);
  EXPECT_TRUE(third.via_local_queue);
  EXPECT_EQ(third.gpu, completion_of(cluster, 1).gpu);
}

TEST_F(PolicyBehaviourTest, LalbAllowsFalseMissWhenWaitExceedsLoad) {
  // Stack three model0 requests on the holder: the last one sees wait
  // ~2*1.28s + remaining > load 2.41s, so Algorithm 2 dispatches it to
  // the idle GPU as a (false) miss, replicating the model.
  cluster::SimCluster cluster(config_for(PolicyName::kLalb), small_registry());
  cluster.replay({make_request(0, 0, 0), make_request(1, 0, sec(10)),
                  make_request(2, 0, sec(10) + msec(50)),
                  make_request(3, 0, sec(10) + msec(100))});
  const auto& fourth = completion_of(cluster, 3);
  EXPECT_FALSE(fourth.cache_hit);
  EXPECT_TRUE(fourth.false_miss);
  EXPECT_NE(fourth.gpu, completion_of(cluster, 1).gpu);
}

TEST_F(PolicyBehaviourTest, LbNeverUsesLocalQueues) {
  cluster::SimCluster cluster(config_for(PolicyName::kLb), small_registry());
  std::vector<Request> requests;
  for (int i = 0; i < 8; ++i) {
    requests.push_back(make_request(i, i % 2, msec(100 * i)));
  }
  cluster.replay(requests);
  for (const auto& record : cluster.engine().completions()) {
    EXPECT_FALSE(record.via_local_queue);
  }
}

TEST_F(PolicyBehaviourTest, O3PromotesCachedRequestOverEarlierUncached) {
  // Single GPU holding model0. While it runs a blocker, two requests
  // queue: first reqC for the uncached model2, then reqD for the cached
  // model0. O3 promotes reqD past reqC (out-of-order hit); in-order LALB
  // serves reqC first and delays reqD behind model2's upload.
  cluster::ClusterConfig config = config_for(PolicyName::kLalbO3);
  config.gpus_per_node = 1;
  const SimTime burst = sec(30);
  std::vector<Request> requests = {
      make_request(0, 0, 0),              // warm model0
      make_request(1, 0, burst),          // blocker: hit, GPU busy ~1.28s
      make_request(2, 2, burst + usec(1)),  // reqC: uncached model2
      make_request(3, 0, burst + usec(2))};  // reqD: cached model0

  cluster::SimCluster o3(config, small_registry());
  o3.replay(requests);
  EXPECT_TRUE(completion_of(o3, 3).cache_hit);
  // The promotion: reqD dispatched before the earlier-arrived reqC.
  EXPECT_LT(completion_of(o3, 3).dispatched, completion_of(o3, 2).dispatched);

  cluster::ClusterConfig inorder_config = config;
  inorder_config.policy = PolicyName::kLalb;
  cluster::SimCluster inorder(inorder_config, small_registry());
  inorder.replay(requests);
  // In-order: reqC goes first, so reqD waits behind model2's load.
  EXPECT_GE(completion_of(inorder, 2).dispatched, completion_of(inorder, 3).arrival);
  EXPECT_LT(completion_of(inorder, 2).dispatched, completion_of(inorder, 3).dispatched);
  EXPECT_GT(completion_of(inorder, 3).latency(), completion_of(o3, 3).latency());
}

TEST_F(PolicyBehaviourTest, O3StarvationLimitForcesDispatch) {
  // Single GPU, limit 1. model1 request (uncached) is repeatedly bypassed
  // by model0 hits, but must be force-placed once skipped > limit times.
  cluster::ClusterConfig config = config_for(PolicyName::kLalbO3, /*o3_limit=*/1);
  config.gpus_per_node = 1;
  cluster::SimCluster cluster(config, small_registry());
  const SimTime burst = sec(30);
  std::vector<Request> requests = {
      make_request(0, 0, 0),       // warm model0
      make_request(9, 0, burst),   // blocker keeps the GPU busy
      // Queued while busy: [m1 (starving), m0, m0, m0].
      make_request(1, 1, burst + usec(1)), make_request(2, 0, burst + usec(2)),
      make_request(3, 0, burst + usec(3)), make_request(4, 0, burst + usec(4))};
  cluster.replay(requests);
  const auto& starving = completion_of(cluster, 1);
  const auto& last_hit = completion_of(cluster, 4);
  // The starving request is dispatched before the final model0 request:
  // it was bypassed at most (limit + 1) times.
  EXPECT_LT(starving.dispatched, last_hit.dispatched);
  EXPECT_FALSE(starving.cache_hit);
  // And at least one model0 request was promoted ahead of it.
  EXPECT_LT(completion_of(cluster, 2).dispatched, starving.dispatched);
}

TEST_F(PolicyBehaviourTest, LbDispatchesStrictlyInArrivalOrder) {
  cluster::SimCluster cluster(config_for(PolicyName::kLb), small_registry());
  const SimTime burst = sec(30);
  std::vector<Request> requests = {make_request(0, 0, 0),
                                   make_request(1, 1, burst),
                                   make_request(2, 0, burst + usec(1)),
                                   make_request(3, 2, burst + usec(2))};
  cluster.replay(requests);
  SimTime prev = -1;
  for (std::int64_t id = 1; id <= 3; ++id) {
    const SimTime d = completion_of(cluster, id).dispatched;
    EXPECT_GE(d, prev);
    prev = d;
  }
}

}  // namespace
}  // namespace gfaas::core
