// Sharded serving tier tests: arrival-lane tie ordering, the consistent-
// hash router's stability/commutativity properties, byte-identity of the
// 1-shard sharded replay against the direct seed engine, multi-shard
// determinism (repeat runs and sequential-vs-threaded runs bit-identical,
// steal decisions included), randomized steal-vs-no-steal disposition
// conservation across seeds, exactly-once completion when a stolen
// request's source shard is killed mid-flight, no stranded cache pins
// after steals, and the membership-rebalancing hooks (router re-weighting
// and the Autoscaler wiring).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "autoscale/autoscaler.h"
#include "autoscale/policy.h"
#include "cluster/experiment.h"
#include "shard/experiment.h"
#include "shard/router.h"
#include "shard/sharded_cluster.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"
#include "testing/builders.h"

namespace gfaas::shard {
namespace {

// ---------------------------------------------------------------------------
// Arrival lane: epoch-injected arrivals must win same-time ties exactly
// like the seed replay's upfront-scheduled submissions do.
// ---------------------------------------------------------------------------

TEST(ArrivalLaneTest, ArrivalBeatsEarlierScheduledDefaultEventAtSameTime) {
  sim::Simulator sim;
  std::vector<int> order;
  // The default-lane event is scheduled FIRST (lower sequence number);
  // the arrival still runs before it because the arrival lane sorts
  // ahead at equal times.
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_arrival_at(10, [&] { order.push_back(0); });
  sim.schedule_arrival_at(10, [&] { order.push_back(2); });
  sim.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);  // first arrival
  EXPECT_EQ(order[1], 2);  // second arrival (same lane: sequence order)
  EXPECT_EQ(order[2], 1);  // default-lane event last
}

// ---------------------------------------------------------------------------
// Router properties
// ---------------------------------------------------------------------------

TEST(ShardRouterTest, RoutesAreStableAndInRange) {
  ShardRouter router(4);
  for (std::int64_t m = 0; m < 500; ++m) {
    const std::size_t shard = router.route(ModelId(m));
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(shard, router.route(ModelId(m)));  // pure function
  }
  // All shards attract some models under equal weights.
  std::set<std::size_t> hit;
  for (std::int64_t m = 0; m < 500; ++m) hit.insert(router.route(ModelId(m)));
  EXPECT_EQ(hit.size(), 4u);
}

TEST(ShardRouterTest, WeightChangeMovesOnlyTheAffectedShardsModels) {
  ShardRouter router(4);
  std::map<std::int64_t, std::size_t> before;
  for (std::int64_t m = 0; m < 1000; ++m) before[m] = router.route(ModelId(m));

  // Removing shard 2 from the ring relocates ONLY shard 2's models.
  router.set_weight(2, 0.0);
  for (std::int64_t m = 0; m < 1000; ++m) {
    const std::size_t now = router.route(ModelId(m));
    EXPECT_NE(now, 2u);
    if (before[m] != 2) {
      EXPECT_EQ(now, before[m]) << "model " << m << " moved although its "
                                << "shard's membership did not change";
    }
  }
  // Restoring the weight restores the original mapping exactly (ring
  // points are a pure function of (shard, k, seed)).
  router.set_weight(2, 1.0);
  for (std::int64_t m = 0; m < 1000; ++m) {
    EXPECT_EQ(router.route(ModelId(m)), before[m]);
  }
}

TEST(ShardRouterTest, WeightUpdatesCommute) {
  ShardRouter a(3), b(3);
  a.set_weight(0, 2.0);
  a.set_weight(2, 0.5);
  b.set_weight(2, 0.5);
  b.set_weight(0, 2.0);
  EXPECT_EQ(a.ring_share(), b.ring_share());
  for (std::int64_t m = 0; m < 300; ++m) {
    EXPECT_EQ(a.route(ModelId(m)), b.route(ModelId(m)));
  }
}

// ---------------------------------------------------------------------------
// Completion-stream comparison helpers
// ---------------------------------------------------------------------------

void expect_identical(const std::vector<core::CompletionRecord>& a,
                      const std::vector<core::CompletionRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id.value(), b[i].id.value()) << i;
    EXPECT_EQ(a[i].model.value(), b[i].model.value()) << i;
    EXPECT_EQ(a[i].gpu.value(), b[i].gpu.value()) << i;
    EXPECT_EQ(a[i].arrival, b[i].arrival) << i;
    EXPECT_EQ(a[i].dispatched, b[i].dispatched) << i;
    EXPECT_EQ(a[i].completed, b[i].completed) << i;
    EXPECT_EQ(a[i].cache_hit, b[i].cache_hit) << i;
    EXPECT_EQ(a[i].false_miss, b[i].false_miss) << i;
    EXPECT_EQ(a[i].via_local_queue, b[i].via_local_queue) << i;
    EXPECT_EQ(a[i].failed, b[i].failed) << i;
    EXPECT_EQ(a[i].steal_hops, b[i].steal_hops) << i;
  }
}

// Every workload id resolves exactly once across completions + failures.
void expect_exactly_once(const ShardedCluster& sharded, std::size_t total) {
  std::set<std::int64_t> seen;
  std::size_t records = 0;
  for (const auto& record : sharded.completions()) {
    EXPECT_TRUE(seen.insert(record.id.value()).second)
        << "id " << record.id.value() << " resolved twice";
    ++records;
  }
  for (const auto& record : sharded.failures()) {
    EXPECT_TRUE(seen.insert(record.id.value()).second)
        << "id " << record.id.value() << " resolved twice";
    EXPECT_TRUE(record.failed);
    ++records;
  }
  EXPECT_EQ(records, total);
  EXPECT_EQ(seen.size(), total);
}

// ---------------------------------------------------------------------------
// 1-shard byte-identity against the direct seed engine
// ---------------------------------------------------------------------------

TEST(ShardedClusterTest, OneShardReplayIsIdenticalToDirectReplay) {
  const trace::Workload workload = testkit::make_workload(15, 7);
  cluster::ClusterConfig config;  // the paper's 3x4 testbed, LALB-O3

  cluster::SimCluster direct(config, workload.registry);
  direct.engine().track_duplicates_of(workload.top_model);
  direct.replay(workload.requests);

  ShardedCluster sharded(partition_config(config, 1), workload.registry);
  sharded.engine(0).track_duplicates_of(workload.top_model);
  const ShardedReplayStats stats = sharded.replay(workload.requests);

  expect_identical(direct.engine().completions(), sharded.completions());
  EXPECT_EQ(stats.steals, 0);  // one shard never steals
  for (const auto& record : sharded.completions()) {
    EXPECT_EQ(record.steal_hops, 0);
  }
  EXPECT_TRUE(sharded.failures().empty());
}

TEST(ShardedExperimentTest, OneShardMetricsMatchDirectRunner) {
  const trace::Workload workload = testkit::make_workload(15, 7);
  cluster::ClusterConfig config;
  std::vector<core::CompletionRecord> direct_records, sharded_records;
  const cluster::ExperimentResult direct =
      cluster::run_experiment(config, workload, &direct_records);
  const ShardedExperimentResult sharded = run_sharded_experiment(
      config, 1, workload, ShardedOptions{}, &sharded_records);
  expect_identical(direct_records, sharded_records);
  // Bitwise metric equality, not approximate: identical accumulation
  // order is part of the contract (bench_seed_digest prints hexfloat).
  EXPECT_EQ(direct.avg_latency_s, sharded.result.avg_latency_s);
  EXPECT_EQ(direct.latency_variance_s2, sharded.result.latency_variance_s2);
  EXPECT_EQ(direct.p99_latency_s, sharded.result.p99_latency_s);
  EXPECT_EQ(direct.miss_ratio, sharded.result.miss_ratio);
  EXPECT_EQ(direct.false_miss_ratio, sharded.result.false_miss_ratio);
  EXPECT_EQ(direct.sm_utilization, sharded.result.sm_utilization);
  EXPECT_EQ(direct.avg_top_duplicates, sharded.result.avg_top_duplicates);
  EXPECT_EQ(direct.evictions, sharded.result.evictions);
  EXPECT_EQ(direct.model_loads, sharded.result.model_loads);
  EXPECT_EQ(direct.makespan_s, sharded.result.makespan_s);
}

// ---------------------------------------------------------------------------
// Multi-shard determinism: repeat runs and sequential-vs-threaded runs
// ---------------------------------------------------------------------------

TEST(ShardedClusterTest, MultiShardReplayIsDeterministicAndThreadInvariant) {
  const trace::Workload workload = testkit::make_workload(20, 11);
  cluster::ClusterConfig config;
  config.nodes = 4;
  config.gpus_per_node = 2;
  ShardedOptions options;
  options.steal.min_queue = 2;
  options.steal.threshold = 1.0;
  options.steal.max_batch = 8;

  auto run = [&](int threads) {
    ShardedOptions o = options;
    o.threads = threads;
    ShardedCluster sharded(partition_config(config, 4), workload.registry, o);
    const ShardedReplayStats stats = sharded.replay(workload.requests);
    return std::make_pair(sharded.completions(), stats);
  };
  const auto [first, first_stats] = run(1);
  const auto [second, second_stats] = run(1);
  const auto [threaded, threaded_stats] = run(2);

  expect_identical(first, second);
  expect_identical(first, threaded);  // worker pool must not reorder anything
  EXPECT_EQ(first_stats.steals, second_stats.steals);
  EXPECT_EQ(first_stats.steals, threaded_stats.steals);
  EXPECT_EQ(first_stats.steal_batches, threaded_stats.steal_batches);
  EXPECT_EQ(first_stats.stolen_from, threaded_stats.stolen_from);
  EXPECT_EQ(first_stats.stolen_to, threaded_stats.stolen_to);
  EXPECT_EQ(first_stats.epochs, threaded_stats.epochs);
}

// ---------------------------------------------------------------------------
// Steal-vs-no-steal disposition conservation, randomized across seeds
// ---------------------------------------------------------------------------

TEST(ShardedClusterTest, StealDispositionConservationAcrossSeeds) {
  cluster::ClusterConfig config;
  config.nodes = 4;
  config.gpus_per_node = 2;
  std::int64_t total_steals = 0;
  for (std::uint64_t seed : {3u, 17u, 29u}) {
    const trace::Workload workload = testkit::make_workload(20, seed);
    auto ids_of = [&](bool steal_enabled) {
      ShardedOptions options;
      options.steal.enabled = steal_enabled;
      options.steal.min_queue = 1;
      options.steal.threshold = 0.5;
      options.steal.max_batch = 8;
      ShardedCluster sharded(partition_config(config, 4), workload.registry,
                             options);
      const ShardedReplayStats stats = sharded.replay(workload.requests);
      if (steal_enabled) total_steals += stats.steals;
      expect_exactly_once(sharded, workload.requests.size());
      std::set<std::int64_t> ids;
      for (const auto& r : sharded.completions()) ids.insert(r.id.value());
      for (const auto& r : sharded.failures()) ids.insert(r.id.value());
      return ids;
    };
    // Stealing relocates work; it must never create, drop, or duplicate
    // a disposition. Both runs resolve exactly the workload's id set.
    EXPECT_EQ(ids_of(true), ids_of(false)) << "seed " << seed;
  }
  // The aggressive thresholds must actually exercise the steal path
  // (deterministic: same seeds, same decisions, every run).
  EXPECT_GT(total_steals, 0);
}

// ---------------------------------------------------------------------------
// Kill the source shard mid-flight: exactly-once, evacuation, no pins
// ---------------------------------------------------------------------------

TEST(ShardedClusterTest, KillingSourceShardMidFlightPreservesExactlyOnce) {
  const trace::Workload workload = testkit::make_workload(16, 5);
  cluster::ClusterConfig config;
  config.nodes = 2;
  config.gpus_per_node = 2;
  ShardedOptions options;
  options.steal.min_queue = 1;
  options.steal.threshold = 0.5;
  options.steal.max_batch = 16;
  options.epoch = msec(200);
  ShardedCluster sharded(partition_config(config, 2), workload.registry,
                         options);

  // Count hook firings per id: completion hooks must fire exactly once
  // whether the request completed where it was routed, completed after a
  // steal, was evacuated off the dead shard, or died in flight.
  std::map<std::int64_t, int> fired;
  std::vector<core::Request> requests = workload.requests;
  for (core::Request& request : requests) {
    request.on_complete = [&fired, id = request.id.value()](
                              const core::CompletionRecord&) { ++fired[id]; };
  }

  // Kill every domain of shard 0 mid-run, from inside its own timeline
  // (exactly how the chaos injector does it).
  cluster::SimCluster& victim = sharded.shard(0);
  victim.simulator().schedule_at(sec(30), [&victim] {
    for (std::size_t d = 0; d < victim.domain_count(); ++d) {
      victim.kill_domain(d);
    }
  });

  const ShardedReplayStats stats = sharded.replay(requests);

  expect_exactly_once(sharded, requests.size());
  for (const auto& [id, count] : fired) {
    EXPECT_EQ(count, 1) << "hook for id " << id << " fired " << count
                        << " times";
  }
  EXPECT_EQ(fired.size(), requests.size());
  // The dead shard was evacuated (its queued work moved, not stranded)
  // and finished empty.
  EXPECT_GT(stats.evacuations, 0);
  EXPECT_EQ(sharded.engine(0).pending(), 0u);
  EXPECT_EQ(sharded.engine(1).pending(), 0u);
  // Stolen-and-completed requests carry the steal marker.
  std::int64_t marked = 0;
  for (const auto& record : sharded.completions()) {
    marked += record.steal_hops > 0 ? 1 : 0;
  }
  EXPECT_GT(marked, 0);

  // No stranded cache pins anywhere: a steal moves a request BEFORE its
  // dispatch pins the model, so every pin taken was released by the
  // completion/abort that followed it. (Killed GPUs are gone from the
  // cache manager entirely — their pins were torn down at the kill.)
  for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
    cluster::SimCluster& cell = sharded.shard(s);
    for (std::size_t g = 0; g < cell.gpu_count(); ++g) {
      const GpuId gpu = cell.gpu(g).id();
      if (!cell.engine().is_registered(gpu)) continue;
      EXPECT_FALSE(cell.cache().state(gpu).any_pinned())
          << "shard " << s << " gpu " << g << " left a pinned model";
    }
  }
}

TEST(ShardedClusterTest, NoStrandedPinsAfterHeavyStealing) {
  const trace::Workload workload = testkit::make_workload(24, 13);
  cluster::ClusterConfig config;
  config.nodes = 4;
  config.gpus_per_node = 2;
  ShardedOptions options;
  options.steal.min_queue = 1;
  options.steal.threshold = 0.25;
  options.steal.max_batch = 4;
  ShardedCluster sharded(partition_config(config, 4), workload.registry,
                         options);
  const ShardedReplayStats stats = sharded.replay(workload.requests);
  EXPECT_GT(stats.steals, 0);
  for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
    cluster::SimCluster& cell = sharded.shard(s);
    EXPECT_EQ(cell.engine().pending(), 0u);
    for (std::size_t g = 0; g < cell.gpu_count(); ++g) {
      EXPECT_FALSE(cell.cache().state(cell.gpu(g).id()).any_pinned())
          << "shard " << s << " gpu " << g << " left a pinned model";
    }
  }
}

// ---------------------------------------------------------------------------
// Per-shard telemetry labels and steal spans
// ---------------------------------------------------------------------------

TEST(ShardedClusterTest, TelemetryCarriesShardLabelsAndStealSpans) {
  const trace::Workload workload = testkit::make_workload(20, 11);
  cluster::ClusterConfig config;
  config.nodes = 4;
  config.gpus_per_node = 2;
  ShardedOptions options;
  options.steal.min_queue = 1;
  options.steal.threshold = 0.5;
  ShardedCluster sharded(partition_config(config, 4), workload.registry,
                         options);
  std::vector<std::unique_ptr<telemetry::Telemetry>> tels;
  for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
    auto tel = std::make_unique<telemetry::Telemetry>();
    // Sample every id so the steal-span assertion is deterministic.
    tel->spans().set_sink([](const telemetry::SpanRecord&) {});
    sharded.set_telemetry(s, tel.get());
    tels.push_back(std::move(tel));
  }
  const ShardedReplayStats stats = sharded.replay(workload.requests);
  ASSERT_GT(stats.steals, 0);

  std::int64_t steals_out = 0, steals_in = 0, steal_spans = 0;
  for (std::size_t s = 0; s < tels.size(); ++s) {
    // Instruments carry the {shard=N} label dimension.
    EXPECT_EQ(tels[s]->qualified("engine.dispatches"),
              "engine.dispatches{shard=" + std::to_string(s) + "}");
    steals_out += tels[s]
                      ->metrics()
                      .counter(tels[s]->qualified("engine.steals.out"))
                      ->value();
    steals_in += tels[s]
                     ->metrics()
                     .counter(tels[s]->qualified("engine.steals.in"))
                     ->value();
    for (const auto& span : tels[s]->spans().snapshot()) {
      EXPECT_EQ(span.shard, static_cast<std::int32_t>(s));
      if (span.event == telemetry::SpanEvent::kSteal) ++steal_spans;
    }
  }
  EXPECT_EQ(steals_out, stats.steals);
  EXPECT_EQ(steals_in, stats.steals);
  // Spans are sampled (1/64 of ids), so only assert the plumbing when a
  // sampled id was stolen — the counters above are the exact check.
  EXPECT_GE(steal_spans, 0);
}

// ---------------------------------------------------------------------------
// Membership rebalancing hooks
// ---------------------------------------------------------------------------

TEST(ShardedClusterTest, MembershipHookReweightsRouterToSchedulableCapacity) {
  const trace::Workload workload = testkit::make_workload(12, 9);
  cluster::ClusterConfig config;
  config.nodes = 2;
  config.gpus_per_node = 2;
  ShardedCluster sharded(partition_config(config, 2), workload.registry);

  // Initially both shards sit on the default weight-1 ring.
  EXPECT_EQ(sharded.router().weights(), (std::vector<double>{1.0, 1.0}));

  // The hooks re-weight each shard to its schedulable-GPU count.
  sharded.membership_hook(0)();
  sharded.membership_hook(1)();
  EXPECT_EQ(sharded.router().weights(), (std::vector<double>{2.0, 2.0}));

  // A dead partition drops off the ring entirely: every model routes to
  // the survivor, and shard 1's own models never moved (consistency).
  std::map<std::int64_t, std::size_t> before;
  for (std::int64_t m = 0; m < 200; ++m) {
    before[m] = sharded.router().route(ModelId(m));
  }
  for (std::size_t d = 0; d < sharded.shard(0).domain_count(); ++d) {
    sharded.shard(0).kill_domain(d);
  }
  sharded.membership_hook(0)();
  EXPECT_EQ(sharded.router().weights()[0], 0.0);
  for (std::int64_t m = 0; m < 200; ++m) {
    EXPECT_EQ(sharded.router().route(ModelId(m)), 1u);
  }
}

TEST(AutoscalerMembershipHookTest, FiresOnFleetMembershipChanges) {
  const trace::Workload workload = testkit::make_workload(8, 3);
  cluster::ClusterConfig config;
  config.nodes = 1;
  config.gpus_per_node = 2;
  cluster::SimCluster cluster(config, workload.registry);

  int fired = 0;
  autoscale::AutoscalerConfig aconfig;
  aconfig.min_gpus = 2;
  aconfig.max_gpus = 8;
  aconfig.membership_hook = [&fired] { ++fired; };
  autoscale::Autoscaler autoscaler(
      &cluster, std::make_unique<autoscale::ReactivePolicy>(), aconfig);
  cluster.simulator().schedule_at(0, [&] {
    autoscaler.start(/*horizon=*/sec(30));
  });
  cluster.replay(workload.requests);
  autoscaler.finalize();
  // start() records the initial fleet and every later membership change
  // re-records it; the hook must have observed at least that much.
  EXPECT_GT(fired, 0);
}

}  // namespace
}  // namespace gfaas::shard
