// Tests for multi-tenancy isolation (§VI): token-bucket rate limiting,
// concurrent execution caps, GPU-time share enforcement over the sliding
// window, and memory budgets.
#include <gtest/gtest.h>

#include "faas/gateway.h"
#include "faas/tenancy.h"
#include "sim/simulator.h"

namespace gfaas::faas {
namespace {

TEST(TokenBucketTest, StartsFullAndDrains) {
  TokenBucket bucket(3, 1.0);
  EXPECT_TRUE(bucket.try_acquire(0));
  EXPECT_TRUE(bucket.try_acquire(0));
  EXPECT_TRUE(bucket.try_acquire(0));
  EXPECT_FALSE(bucket.try_acquire(0));
}

TEST(TokenBucketTest, RefillsAtRate) {
  TokenBucket bucket(2, 1.0);  // 1 token/s
  ASSERT_TRUE(bucket.try_acquire(0));
  ASSERT_TRUE(bucket.try_acquire(0));
  EXPECT_FALSE(bucket.try_acquire(msec(500)));
  EXPECT_TRUE(bucket.try_acquire(sec(1)));
  EXPECT_FALSE(bucket.try_acquire(sec(1)));
}

TEST(TokenBucketTest, RefillCapsAtCapacity) {
  TokenBucket bucket(2, 10.0);
  ASSERT_TRUE(bucket.try_acquire(0));
  // After 100s the bucket holds at most 2 tokens, not 1000.
  EXPECT_NEAR(bucket.available(sec(100)), 2.0, 1e-9);
}

TEST(TenantManagerTest, RegistrationValidation) {
  TenantManager manager(12);
  EXPECT_TRUE(manager.register_tenant("acme", {}).ok());
  EXPECT_EQ(manager.register_tenant("acme", {}).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(manager.register_tenant("", {}).code(), StatusCode::kInvalidArgument);
  TenantQuota bad;
  bad.gpu_time_share = 1.5;
  EXPECT_EQ(manager.register_tenant("bad", bad).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(manager.known("acme"));
  EXPECT_FALSE(manager.known("ghost"));
}

TEST(TenantManagerTest, UnknownTenantRejected) {
  TenantManager manager(12);
  EXPECT_EQ(manager.admit("ghost", 0).code(), StatusCode::kNotFound);
}

TEST(TenantManagerTest, RateLimitRejectsBurstOverflow) {
  TenantManager manager(12);
  TenantQuota quota;
  quota.requests_per_sec = 1.0;
  quota.burst = 2.0;
  quota.max_concurrent_executions = 100;
  ASSERT_TRUE(manager.register_tenant("t", quota).ok());
  EXPECT_TRUE(manager.admit("t", 0).ok());
  EXPECT_TRUE(manager.admit("t", 0).ok());
  EXPECT_EQ(manager.admit("t", 0).code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(manager.admit("t", sec(2)).ok());  // refilled
  EXPECT_EQ(manager.usage("t").admitted, 3);
  EXPECT_EQ(manager.usage("t").rejected, 1);
}

TEST(TenantManagerTest, ConcurrencyCapEnforced) {
  // Paper: "limiting the number of GPU processes that each tenant can use".
  TenantManager manager(12);
  TenantQuota quota;
  quota.max_concurrent_executions = 2;
  quota.requests_per_sec = 1000;
  quota.burst = 1000;
  ASSERT_TRUE(manager.register_tenant("t", quota).ok());
  ASSERT_TRUE(manager.admit("t", 0).ok());
  manager.on_dispatch("t");
  ASSERT_TRUE(manager.admit("t", 0).ok());
  manager.on_dispatch("t");
  EXPECT_EQ(manager.admit("t", 0).code(), StatusCode::kResourceExhausted);
  manager.on_complete("t", sec(1), sec(1));
  EXPECT_TRUE(manager.admit("t", sec(1)).ok());
}

TEST(TenantManagerTest, GpuTimeShareEnforcedOverWindow) {
  // Paper: "limiting the GPU time share ... that a tenant can use".
  TenantManager manager(/*total_gpus=*/2, /*window=*/sec(10));
  TenantQuota quota;
  quota.gpu_time_share = 0.25;  // 0.25 * 2 GPUs * 10s = 5s per window
  quota.requests_per_sec = 1000;
  quota.burst = 1000;
  quota.max_concurrent_executions = 100;
  ASSERT_TRUE(manager.register_tenant("greedy", quota).ok());

  ASSERT_TRUE(manager.admit("greedy", sec(1)).ok());
  manager.on_dispatch("greedy");
  manager.on_complete("greedy", sec(2), sec(6));  // consumed 6s > 5s allowed
  EXPECT_EQ(manager.admit("greedy", sec(3)).code(), StatusCode::kResourceExhausted);
  // Window rolls: usage resets.
  EXPECT_TRUE(manager.admit("greedy", sec(12)).ok());
  EXPECT_EQ(manager.usage("greedy").gpu_time_in_window, 0);
}

TEST(TenantManagerTest, MemoryBudget) {
  TenantManager manager(12);
  TenantQuota quota;
  quota.memory_budget = MB(4000);
  ASSERT_TRUE(manager.register_tenant("t", quota).ok());
  EXPECT_TRUE(manager.charge_memory("t", MB(3000)).ok());
  EXPECT_EQ(manager.charge_memory("t", MB(2000)).code(),
            StatusCode::kResourceExhausted);
  manager.release_memory("t", MB(3000));
  EXPECT_TRUE(manager.charge_memory("t", MB(2000)).ok());
  EXPECT_EQ(manager.usage("t").resident_memory, MB(2000));
}

TEST(TenantManagerTest, UnlimitedMemoryWhenBudgetZero) {
  TenantManager manager(12);
  ASSERT_TRUE(manager.register_tenant("t", {}).ok());
  EXPECT_TRUE(manager.charge_memory("t", GiB(100)).ok());
}

TEST(GatewayTenancyTest, EnforcesAdmissionOnInvoke) {
  sim::Simulator sim;
  datastore::KvStore store(&sim);
  Gateway gateway(&store, &sim, /*gpu_backend=*/nullptr);
  TenantManager tenants(/*total_gpus=*/12);
  TenantQuota quota;
  quota.requests_per_sec = 1.0;
  quota.burst = 1.0;
  ASSERT_TRUE(tenants.register_tenant("acme", quota).ok());
  gateway.set_tenant_manager(&tenants);

  FunctionSpec spec;
  spec.name = "echo";
  spec.dockerfile = "FROM gfaas/base\n";
  spec.handler = [](const Payload& p) -> StatusOr<Payload> { return p; };
  ASSERT_TRUE(gateway.register_function(spec).ok());

  // First call admitted; second rate-limited; unknown tenant rejected.
  EXPECT_TRUE(gateway.invoke_sync("echo", {}, "acme").ok());
  EXPECT_EQ(gateway.invoke_sync("echo", {}, "acme").status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(gateway.invoke_sync("echo", {}, "ghost").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(tenants.usage("acme").admitted, 1);
  EXPECT_EQ(tenants.usage("acme").rejected, 1);
  // Execution accounting was bracketed: nothing left in flight.
  EXPECT_EQ(tenants.usage("acme").concurrent_executions, 0);
}

TEST(GatewayTenancyTest, NoManagerMeansOpenAccess) {
  sim::Simulator sim;
  datastore::KvStore store(&sim);
  Gateway gateway(&store, &sim, nullptr);
  FunctionSpec spec;
  spec.name = "echo";
  spec.dockerfile = "FROM gfaas/base\n";
  spec.handler = [](const Payload& p) -> StatusOr<Payload> { return p; };
  ASSERT_TRUE(gateway.register_function(spec).ok());
  EXPECT_TRUE(gateway.invoke_sync("echo", {}).ok());
  EXPECT_TRUE(gateway.invoke_sync("echo", {}, "anyone").ok());
}

TEST(TenantManagerTest, TenantsAreIsolated) {
  TenantManager manager(12);
  TenantQuota tight;
  tight.requests_per_sec = 1;
  tight.burst = 1;
  ASSERT_TRUE(manager.register_tenant("tight", tight).ok());
  ASSERT_TRUE(manager.register_tenant("roomy", {}).ok());
  ASSERT_TRUE(manager.admit("tight", 0).ok());
  EXPECT_FALSE(manager.admit("tight", 0).ok());
  // The other tenant is unaffected by tight's exhaustion.
  EXPECT_TRUE(manager.admit("roomy", 0).ok());
}

}  // namespace
}  // namespace gfaas::faas
