// Unit tests for the model zoo (Table I catalog), latency regression
// models, registry, and the runtime profiler.
#include <gtest/gtest.h>

#include "models/latency_model.h"
#include "models/profiler.h"
#include "models/zoo.h"

namespace gfaas::models {
namespace {

TEST(ZooTest, CatalogHasAll22PaperModels) {
  const auto& catalog = table1_catalog();
  ASSERT_EQ(catalog.size(), 22u);
  EXPECT_EQ(catalog.front().name, "squeezenet1.1");
  EXPECT_EQ(catalog.back().name, "vgg19");
}

TEST(ZooTest, Table1RowValuesMatchPaper) {
  auto resnet50 = find_model("resnet50");
  ASSERT_TRUE(resnet50.ok());
  EXPECT_EQ(resnet50->occupation, MB(1701));
  EXPECT_EQ(resnet50->load_time, seconds_to_sim(2.67));
  EXPECT_EQ(resnet50->infer_time_b32, seconds_to_sim(1.28));

  auto vgg19 = find_model("vgg19");
  ASSERT_TRUE(vgg19.ok());
  EXPECT_EQ(vgg19->occupation, MB(3947));
  EXPECT_EQ(vgg19->load_time, seconds_to_sim(4.07));
  EXPECT_EQ(vgg19->infer_time_b32, seconds_to_sim(1.33));

  auto inception = find_model("inception.v3");
  ASSERT_TRUE(inception.ok());
  EXPECT_EQ(inception->load_time, seconds_to_sim(4.42));
  EXPECT_EQ(inception->infer_time_b32, seconds_to_sim(1.63));
}

TEST(ZooTest, CatalogSortedBySizeAsInPaperTable) {
  const auto& catalog = table1_catalog();
  for (std::size_t i = 1; i < catalog.size(); ++i) {
    EXPECT_LE(catalog[i - 1].occupation, catalog[i].occupation)
        << catalog[i - 1].name << " vs " << catalog[i].name;
  }
}

TEST(ZooTest, CatalogIdsAreDenseRowOrder) {
  const auto& catalog = table1_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(catalog[i].id, ModelId(static_cast<std::int64_t>(i)));
  }
}

TEST(ZooTest, FindUnknownModelFails) {
  EXPECT_EQ(find_model("gpt4").status().code(), StatusCode::kNotFound);
}

TEST(ZooTest, NamesAreUnique) {
  const auto& catalog = table1_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    for (std::size_t j = i + 1; j < catalog.size(); ++j) {
      EXPECT_NE(catalog[i].name, catalog[j].name);
    }
  }
}

TEST(RegistryTest, RegisterAndLookup) {
  ModelRegistry registry;
  EXPECT_TRUE(registry.register_model(table1_catalog()[0]).ok());
  EXPECT_TRUE(registry.contains(ModelId(0)));
  EXPECT_FALSE(registry.contains(ModelId(1)));
  EXPECT_EQ(registry.get(ModelId(0))->name, "squeezenet1.1");
  EXPECT_EQ(registry.get_by_name("squeezenet1.1")->id, ModelId(0));
}

TEST(RegistryTest, DuplicateIdRejected) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.register_model(table1_catalog()[0]).ok());
  EXPECT_EQ(registry.register_model(table1_catalog()[0]).code(),
            StatusCode::kAlreadyExists);
}

TEST(RegistryTest, InvalidIdRejected) {
  ModelRegistry registry;
  ModelProfile bad;
  EXPECT_EQ(registry.register_model(bad).code(), StatusCode::kInvalidArgument);
}

TEST(RegistryTest, FullCatalogFactory) {
  const ModelRegistry registry = ModelRegistry::full_catalog();
  EXPECT_EQ(registry.size(), 22u);
  EXPECT_TRUE(registry.get(ModelId(21)).ok());
  EXPECT_EQ(registry.get(ModelId(22)).status().code(), StatusCode::kNotFound);
}

TEST(LinearFitTest, ExactLineRecovered) {
  auto fit = fit_linear({1, 2, 3, 4}, {5, 7, 9, 11});  // y = 3 + 2x
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit->slope, 2.0, 1e-9);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit->predict(10), 23.0, 1e-9);
}

TEST(LinearFitTest, NoisyFitHasReasonableR2) {
  std::vector<double> xs, ys;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i);
    ys.push_back(10 + 0.5 * i + rng.normal(0, 0.5));
  }
  auto fit = fit_linear(xs, ys);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 0.5, 0.05);
  EXPECT_GT(fit->r_squared, 0.95);
}

TEST(LinearFitTest, DegenerateInputsRejected) {
  EXPECT_FALSE(fit_linear({1}, {2}).ok());
  EXPECT_FALSE(fit_linear({1, 2}, {1}).ok());
  EXPECT_FALSE(fit_linear({3, 3, 3}, {1, 2, 3}).ok());
}

TEST(BatchLatencyModelTest, AnchoredAtBatch32) {
  const SimTime t32 = seconds_to_sim(1.28);
  BatchLatencyModel model(t32, /*alpha=*/0.6);
  EXPECT_NEAR(static_cast<double>(model.predict(32)), static_cast<double>(t32), 2.0);
}

TEST(BatchLatencyModelTest, MonotonicInBatchSize) {
  BatchLatencyModel model(seconds_to_sim(1.3));
  SimTime prev = 0;
  for (std::int64_t b : {1, 2, 4, 8, 16, 32, 64}) {
    const SimTime t = model.predict(b);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(BatchLatencyModelTest, BaseCostFractionRespected) {
  const SimTime t32 = sec(1);
  BatchLatencyModel model(t32, /*alpha=*/0.5);
  // Batch 1 should cost ~ alpha*T32 + (1-alpha)*T32/32.
  EXPECT_NEAR(static_cast<double>(model.predict(1)),
              0.5 * 1e6 + 0.5 * 1e6 / 32.0, 2.0);
}

TEST(BatchLatencyModelTest, FitFromProfiledPoints) {
  // Points on the line t = 100000 + 2000 * batch.
  auto model = BatchLatencyModel::fit({1, 2, 4, 8, 16, 32},
                                      {102000, 104000, 108000, 116000, 132000, 164000});
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(static_cast<double>(model->predict(64)), 228000.0, 10.0);
  EXPECT_NEAR(model->fit_params().r_squared, 1.0, 1e-9);
}

TEST(LoadTimeModelTest, FitAcrossCatalogMatchesTable1Scale) {
  auto model = LoadTimeModel::fit(table1_catalog());
  ASSERT_TRUE(model.ok());
  // The fitted line should land near the profiled load times.
  for (const char* name : {"squeezenet1.1", "resnet50", "vgg19"}) {
    const auto profile = find_model(name);
    const double predicted = static_cast<double>(model->predict(profile->occupation));
    const double actual = static_cast<double>(profile->load_time);
    EXPECT_NEAR(predicted / actual, 1.0, 0.35) << name;
  }
  // Base cost (process start + context init) is over a second on the
  // paper's testbed; implied bandwidth is around 1-3 GB/s.
  EXPECT_GT(model->base_cost(), sec(1));
  EXPECT_GT(model->bandwidth_bps(), 5e8);
  EXPECT_LT(model->bandwidth_bps(), 5e9);
}

TEST(LatencyOracleTest, ReturnsProfiledTimes) {
  const ModelRegistry registry = ModelRegistry::full_catalog();
  LatencyOracle oracle(registry);
  auto load = oracle.load_time(ModelId(0));
  ASSERT_TRUE(load.ok());
  EXPECT_EQ(*load, seconds_to_sim(2.41));
  auto infer = oracle.infer_time(ModelId(0), 32);
  ASSERT_TRUE(infer.ok());
  EXPECT_NEAR(static_cast<double>(*infer), 1.28e6, 2.0);
  EXPECT_FALSE(oracle.load_time(ModelId(99)).ok());
  EXPECT_FALSE(oracle.infer_time(ModelId(99), 32).ok());
}

TEST(ProfilerTest, ProfilesRealModelAndFitsRegression) {
  Profiler profiler({1, 2, 4});
  const ModelProfile& squeezenet = table1_catalog()[0];
  auto result = profiler.profile(squeezenet, /*repeats=*/1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->model, squeezenet.id);
  ASSERT_EQ(result->points.size(), 3u);
  // Larger batches must take longer on the real engine.
  EXPECT_GT(result->points[2].latency, result->points[0].latency);
  EXPECT_GT(result->fit.slope, 0.0);
}

TEST(ProfilerTest, RejectsBadArguments) {
  Profiler empty(std::vector<std::int64_t>{});
  EXPECT_FALSE(empty.profile(table1_catalog()[0]).ok());
  Profiler ok_batches({1});
  EXPECT_FALSE(ok_batches.profile(table1_catalog()[0], 0).ok());
}

}  // namespace
}  // namespace gfaas::models
