// Tests for the wall-clock executor: ordering, cancellation, drain
// semantics, time scaling — and an end-to-end scheduling run where the
// SAME engine/GPU-manager/cache stack executes against real time.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "cluster/engine.h"
#include "cluster/realtime.h"
#include "metrics/timeline.h"
#include "models/zoo.h"
#include "testing/builders.h"

namespace gfaas::cluster {
namespace {

TEST(RealTimeExecutorTest, RunsCallbacksInOrder) {
  RealTimeExecutor executor;
  std::mutex mu;
  std::vector<int> order;
  executor.schedule_after(msec(30), [&] {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(3);
  });
  executor.schedule_after(msec(10), [&] {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(1);
  });
  executor.schedule_after(msec(20), [&] {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(2);
  });
  executor.drain();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(RealTimeExecutorTest, NowAdvancesWithWallClock) {
  RealTimeExecutor executor;
  const SimTime t0 = executor.now();
  std::atomic<SimTime> fired{0};
  executor.schedule_after(msec(20), [&] { fired = executor.now(); });
  executor.drain();
  EXPECT_GE(fired.load() - t0, msec(18));  // allow scheduler jitter
}

TEST(RealTimeExecutorTest, CancelPreventsExecution) {
  RealTimeExecutor executor;
  std::atomic<bool> ran{false};
  const auto id = executor.schedule_after(msec(50), [&] { ran = true; });
  EXPECT_TRUE(executor.cancel(id));
  EXPECT_FALSE(executor.cancel(id));
  executor.drain();
  EXPECT_FALSE(ran.load());
}

TEST(RealTimeExecutorTest, NestedSchedulingFromCallback) {
  RealTimeExecutor executor;
  std::atomic<int> depth{0};
  std::function<void()> chain = [&] {
    if (++depth < 4) executor.schedule_after(msec(1), chain);
  };
  executor.post(chain);
  executor.drain();
  EXPECT_EQ(depth.load(), 4);
}

TEST(RealTimeExecutorTest, TimeScaleCompressesDelays) {
  // scale 1000: 1 simulated second fires after ~1 wall millisecond.
  RealTimeExecutor executor(/*time_scale=*/1000.0);
  const auto wall_start = std::chrono::steady_clock::now();
  std::atomic<bool> ran{false};
  executor.schedule_after(sec(1), [&] { ran = true; });
  executor.drain();
  const auto wall_elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                                std::chrono::steady_clock::now() - wall_start)
                                .count();
  EXPECT_TRUE(ran.load());
  EXPECT_LT(wall_elapsed, 500);  // far less than a real second
}

TEST(RealTimeExecutorTest, DrainOnEmptyReturnsImmediately) {
  RealTimeExecutor executor;
  executor.drain();
  EXPECT_EQ(executor.pending(), 0u);
}

TEST(RealTimeExecutorTest, FullSchedulingStackRunsOnWallClock) {
  // The exact same Scheduler/CacheManager/GpuManager stack the simulator
  // drives, now driven by real time (compressed 10000x: a 2.4s model
  // load takes ~0.24ms of wall time).
  RealTimeExecutor executor(/*time_scale=*/10000.0);
  datastore::KvStore store(&executor);
  cache::CacheManager cache(cache::PolicyKind::kLru, &store);
  models::ModelRegistry registry = testkit::head_registry(2);
  models::LatencyOracle oracle(registry);

  gpu::PcieLink link(12.6, usec(20));
  gpu::VirtualGpu gpu0(GpuId(0), gpu::rtx2080(), &link);
  gpu::VirtualGpu gpu1(GpuId(1), gpu::rtx2080(), &link);
  cache.add_gpu(GpuId(0), gpu0.memory_capacity());
  cache.add_gpu(GpuId(1), gpu1.memory_capacity());
  GpuManager manager(NodeId(0), &executor, &store, &cache, &registry, &oracle,
                     {&gpu0, &gpu1});
  SchedulerEngine engine(&executor, &cache, &oracle, {&gpu0, &gpu1}, {&manager},
                         core::make_scheduler(core::PolicyName::kLalbO3));

  // Submit from the executor thread (the engine is single-threaded).
  for (std::int64_t i = 0; i < 6; ++i) {
    executor.schedule_after(sec(i), [&engine, &executor, i] {
      core::Request req;
      req.id = RequestId(i);
      req.function = FunctionId(i);
      req.model = ModelId(i % 2);
      req.batch = 32;
      req.arrival = executor.now();
      req.function_name = "rt-fn";
      engine.submit(std::move(req));
    });
  }
  executor.drain();

  ASSERT_EQ(engine.completions().size(), 6u);
  int hits = 0;
  for (const auto& record : engine.completions()) {
    EXPECT_GT(record.completed, record.arrival);
    if (record.cache_hit) ++hits;
  }
  // First touch of each model is a miss, so at most 4 of the 6 requests
  // can hit; locality normally converts all 4. This is a wall-clock run:
  // under heavy slowdown (sanitizers, loaded CI) scheduling latency can
  // reorder an arrival past a completion and turn an expected hit into a
  // duplicate load, so tolerate one converted hit instead of asserting
  // the exact count.
  EXPECT_LE(hits, 4);
  EXPECT_GE(hits, 3);
  EXPECT_TRUE(cache.cached_anywhere(ModelId(0)));
  EXPECT_TRUE(cache.cached_anywhere(ModelId(1)));
}

TEST(TimeSeriesTest, BucketsByTime) {
  metrics::TimeSeries series(minutes(1));
  series.add(sec(10), 2.0);
  series.add(sec(50), 4.0);
  series.add(minutes(1) + sec(5), 10.0);
  EXPECT_EQ(series.bucket_count(), 2u);
  EXPECT_DOUBLE_EQ(series.bucket_mean(0), 3.0);
  EXPECT_DOUBLE_EQ(series.bucket_sum(1), 10.0);
  EXPECT_EQ(series.bucket_samples(0), 2);
  EXPECT_EQ(series.bucket_samples(5), 0);  // out of range -> empty
}

TEST(TimeSeriesTest, CountAccumulates) {
  metrics::TimeSeries series(sec(1));
  series.count(msec(100));
  series.count(msec(200));
  series.count(msec(900), 3.0);
  EXPECT_DOUBLE_EQ(series.bucket_sum(0), 5.0);
}

TEST(TimeSeriesTest, CsvHasHeaderAndRows) {
  metrics::TimeSeries series(sec(1));
  series.add(msec(500), 7.0);
  const std::string csv = series.to_csv();
  EXPECT_NE(csv.find("bucket,start_s,samples,sum,mean"), std::string::npos);
  EXPECT_NE(csv.find("0,0,1,7,7"), std::string::npos);
}

}  // namespace
}  // namespace gfaas::cluster
