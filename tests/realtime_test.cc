// Tests for the wall-clock executor: ordering, cancellation, drain
// semantics, time scaling — and an end-to-end scheduling run where the
// SAME engine/GPU-manager/cache stack executes against real time.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "cluster/engine.h"
#include "cluster/realtime.h"
#include "metrics/timeline.h"
#include "models/zoo.h"
#include "testing/builders.h"

namespace gfaas::cluster {
namespace {

TEST(RealTimeExecutorTest, RunsCallbacksInOrder) {
  RealTimeExecutor executor;
  std::mutex mu;
  std::vector<int> order;
  executor.schedule_after(msec(30), [&] {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(3);
  });
  executor.schedule_after(msec(10), [&] {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(1);
  });
  executor.schedule_after(msec(20), [&] {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(2);
  });
  executor.drain();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(RealTimeExecutorTest, NowAdvancesWithWallClock) {
  RealTimeExecutor executor;
  const SimTime t0 = executor.now();
  std::atomic<SimTime> fired{0};
  executor.schedule_after(msec(20), [&] { fired = executor.now(); });
  executor.drain();
  EXPECT_GE(fired.load() - t0, msec(18));  // allow scheduler jitter
}

TEST(RealTimeExecutorTest, CancelPreventsExecution) {
  RealTimeExecutor executor;
  std::atomic<bool> ran{false};
  const auto id = executor.schedule_after(msec(50), [&] { ran = true; });
  EXPECT_TRUE(executor.cancel(id));
  EXPECT_FALSE(executor.cancel(id));
  executor.drain();
  EXPECT_FALSE(ran.load());
  EXPECT_EQ(executor.cancelled_count(), 1u);
  EXPECT_EQ(executor.fired_count(), 0u);
}

TEST(RealTimeExecutorTest, CancelOfAlreadyFiredEventReturnsFalse) {
  RealTimeExecutor executor;
  std::atomic<bool> ran{false};
  const auto id = executor.schedule_after(msec(1), [&] { ran = true; });
  executor.drain();
  ASSERT_TRUE(ran.load());
  // The id is retired with the firing: a late cancel is a clean no-op,
  // not a hit on some unrelated future event.
  EXPECT_FALSE(executor.cancel(id));
  EXPECT_EQ(executor.fired_count(), 1u);
  EXPECT_EQ(executor.cancelled_count(), 0u);
}

TEST(RealTimeExecutorTest, CancelFromWithinCallback) {
  // The engine cancels timers from inside completion callbacks (e.g. a
  // speculative timeout raced by the real completion); the worker must
  // allow cancel() re-entry while it is mid-fire.
  RealTimeExecutor executor;
  std::atomic<bool> victim_ran{false};
  std::atomic<bool> cancelled_ok{false};
  const auto victim = executor.schedule_after(msec(60), [&] { victim_ran = true; });
  executor.schedule_after(msec(1), [&] { cancelled_ok = executor.cancel(victim); });
  executor.drain();
  EXPECT_TRUE(cancelled_ok.load());
  EXPECT_FALSE(victim_ran.load());
  EXPECT_EQ(executor.pending(), 0u);
}

TEST(RealTimeExecutorTest, CancelOfFarFutureEventWakesDrain) {
  // The worker sleeps until the head event's deadline; cancelling that
  // event must wake it so drain() observes the empty queue immediately
  // instead of blocking out the cancelled event's full original delay.
  RealTimeExecutor executor;  // time_scale 1: sec(60) really is a minute
  std::atomic<bool> ran{false};
  const auto id = executor.schedule_after(sec(60), [&] { ran = true; });
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(executor.cancel(id));
  });
  const auto wall_start = std::chrono::steady_clock::now();
  executor.drain();
  const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
  canceller.join();
  EXPECT_FALSE(ran.load());
  EXPECT_LT(wall_ms, 30000);  // generous; without the wake-up it is 60s
}

TEST(RealTimeExecutorTest, ConcurrentExternalPostVsDrain) {
  // External threads hand work in via post() while another thread sits in
  // drain(): the executor must neither lose events nor deadlock. (drain()
  // legitimately returns at any momentary empty point, so the test joins
  // the posters and drains once more before asserting totals.)
  RealTimeExecutor executor(/*time_scale=*/100.0);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::atomic<int> executed{0};
  std::vector<std::thread> posters;
  posters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    posters.emplace_back([&executor, &executed] {
      for (int i = 0; i < kPerThread; ++i) {
        executor.schedule_after(msec(i % 7), [&executed] { ++executed; });
      }
    });
  }
  executor.drain();  // races the posters on purpose
  for (std::thread& poster : posters) poster.join();
  executor.drain();
  EXPECT_EQ(executed.load(), kThreads * kPerThread);
  EXPECT_EQ(executor.fired_count(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(executor.pending(), 0u);
}

TEST(RealTimeExecutorTest, ReverseFireOrderStaysFast) {
  // Regression for the O(n)-per-fire id-index scan: events firing in
  // reverse id order are the worst case for a scan that starts at the
  // smallest id (the old code walked the whole index on every fire —
  // quadratic, well over the bound at this size). To actually produce
  // that order the deadlines must descend with the index *despite* now()
  // advancing while we post: each delay is computed against a fixed
  // absolute target (base + spacing * reverse-index) minus now() at post
  // time, so per-post drift cancels instead of accumulating into the
  // order — TSan's 10-20x post cost would otherwise invert a third of
  // the neighbors. The 2s-wall base keeps every target in the future
  // until posting finishes. The keyed erase makes the run O(n log n);
  // the wall bound is loose on purpose — it separates "a few seconds"
  // from "minutes", not jitter from no jitter.
  RealTimeExecutor executor(/*time_scale=*/1000.0);
  constexpr int kEvents = 60000;
  std::vector<int> order;
  order.reserve(kEvents);
  std::mutex order_mu;
  const auto wall_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kEvents; ++i) {
    const SimTime target = sec(2000) + msec(20) * (kEvents - i);
    executor.schedule_after(target - executor.now(), [&order, &order_mu, i] {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(i);
    });
  }
  executor.drain();
  const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kEvents));
  EXPECT_EQ(executor.fired_count(), static_cast<std::uint64_t>(kEvents));
  // Premise check: the run really was dominantly reverse-order (sanitizer
  // slowdown makes each post cost several sim-milliseconds of now() drift,
  // inverting a few percent of neighbors — 90% still leaves the old scan
  // hunting near the back of the id index on nearly every fire).
  int descending = 0;
  for (std::size_t k = 1; k < order.size(); ++k) {
    if (order[k] < order[k - 1]) ++descending;
  }
  EXPECT_GT(descending, static_cast<int>(0.90 * kEvents));
  EXPECT_LT(wall_ms, 20000);
}

TEST(RealTimeExecutorTest, NestedSchedulingFromCallback) {
  RealTimeExecutor executor;
  std::atomic<int> depth{0};
  std::function<void()> chain = [&] {
    if (++depth < 4) executor.schedule_after(msec(1), chain);
  };
  executor.post(chain);
  executor.drain();
  EXPECT_EQ(depth.load(), 4);
}

TEST(RealTimeExecutorTest, TimeScaleCompressesDelays) {
  // scale 1000: 30 simulated seconds fire after ~30 wall milliseconds.
  // The bound is 100x the compressed delay — generous enough for
  // sanitizer/CI slowdown — while still 10x under the uncompressed 30s,
  // so it proves compression without asserting tight timing.
  RealTimeExecutor executor(/*time_scale=*/1000.0);
  const auto wall_start = std::chrono::steady_clock::now();
  std::atomic<bool> ran{false};
  executor.schedule_after(sec(30), [&] { ran = true; });
  executor.drain();
  const auto wall_elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                                std::chrono::steady_clock::now() - wall_start)
                                .count();
  EXPECT_TRUE(ran.load());
  EXPECT_LT(wall_elapsed, 3000);
}

TEST(RealTimeExecutorTest, DrainOnEmptyReturnsImmediately) {
  RealTimeExecutor executor;
  executor.drain();
  EXPECT_EQ(executor.pending(), 0u);
}

TEST(RealTimeExecutorTest, PostedWorkRunsFifoWithExactAccounting) {
  // post() takes the ready-deque fast path, not the timed map; it must
  // still run in FIFO order and keep fired_count exact.
  RealTimeExecutor executor;
  std::mutex mu;
  std::vector<int> order;
  constexpr int kPosts = 500;
  for (int i = 0; i < kPosts; ++i) {
    executor.post([&mu, &order, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    });
  }
  executor.drain();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kPosts));
  for (int i = 0; i < kPosts; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(executor.fired_count(), static_cast<std::uint64_t>(kPosts));
  EXPECT_EQ(executor.cancelled_count(), 0u);
  EXPECT_EQ(executor.pending(), 0u);
}

TEST(RealTimeExecutorTest, CancelPostedWorkFromWithinCallback) {
  // Deterministic cancel of a ready-deque item: the first posted
  // callback cancels the second while the worker is mid-pass, so the
  // victim is already in the ready deque (a tombstone, not a map erase).
  RealTimeExecutor executor;
  std::atomic<bool> victim_ran{false};
  std::atomic<bool> cancel_ok{false};
  std::atomic<std::uint64_t> victim_id{0};
  std::mutex gate;  // holds the first callback until the victim is posted
  gate.lock();
  executor.post([&] {
    std::lock_guard<std::mutex> lock(gate);
    cancel_ok = executor.cancel(victim_id.load());
  });
  victim_id = executor.post([&] { victim_ran = true; });
  gate.unlock();
  executor.drain();
  EXPECT_TRUE(cancel_ok.load());
  EXPECT_FALSE(victim_ran.load());
  EXPECT_EQ(executor.fired_count(), 1u);
  EXPECT_EQ(executor.cancelled_count(), 1u);
  EXPECT_EQ(executor.pending(), 0u);
  // The id is retired: a second cancel is a clean no-op.
  EXPECT_FALSE(executor.cancel(victim_id.load()));
}

TEST(RealTimeExecutorTest, PostedAndTimedWorkInterleaveByFireOrder) {
  // A due timed event scheduled before a post() must fire before it, and
  // one scheduled after must fire after: the ready deque merges with the
  // timed map by (when, seq), it does not jump the queue.
  RealTimeExecutor executor;
  std::mutex mu;
  std::vector<int> order;
  auto mark = [&mu, &order](int tag) {
    return [&mu, &order, tag] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(tag);
    };
  };
  executor.schedule_after(msec(500), mark(3));  // future: fires last
  executor.schedule_after(0, mark(1));         // due now, seq before the post
  executor.post(mark(2));
  executor.drain();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(executor.fired_count(), 3u);
}

TEST(RealTimeExecutorTest, FullSchedulingStackRunsOnWallClock) {
  // The exact same Scheduler/CacheManager/GpuManager stack the simulator
  // drives, now driven by real time (compressed 10000x: a 2.4s model
  // load takes ~0.24ms of wall time).
  RealTimeExecutor executor(/*time_scale=*/10000.0);
  datastore::KvStore store(&executor);
  cache::CacheManager cache(cache::PolicyKind::kLru, &store);
  models::ModelRegistry registry = testkit::head_registry(2);
  models::LatencyOracle oracle(registry);

  gpu::PcieLink link(12.6, usec(20));
  gpu::VirtualGpu gpu0(GpuId(0), gpu::rtx2080(), &link);
  gpu::VirtualGpu gpu1(GpuId(1), gpu::rtx2080(), &link);
  cache.add_gpu(GpuId(0), gpu0.memory_capacity());
  cache.add_gpu(GpuId(1), gpu1.memory_capacity());
  GpuManager manager(NodeId(0), &executor, &store, &cache, &registry, &oracle,
                     {&gpu0, &gpu1});
  SchedulerEngine engine(&executor, &cache, &oracle, {&gpu0, &gpu1}, {&manager},
                         core::make_scheduler(core::PolicyName::kLalbO3));

  // Submit from the executor thread (the engine is single-threaded).
  for (std::int64_t i = 0; i < 6; ++i) {
    executor.schedule_after(sec(i), [&engine, &executor, i] {
      core::Request req;
      req.id = RequestId(i);
      req.function = FunctionId(i);
      req.model = ModelId(i % 2);
      req.batch = 32;
      req.arrival = executor.now();
      req.function_name = "rt-fn";
      engine.submit(std::move(req));
    });
  }
  executor.drain();

  ASSERT_EQ(engine.completions().size(), 6u);
  int hits = 0;
  for (const auto& record : engine.completions()) {
    EXPECT_GT(record.completed, record.arrival);
    if (record.cache_hit) ++hits;
  }
  // First touch of each model is a miss, so at most 4 of the 6 requests
  // can hit; locality normally converts all 4. This is a wall-clock run:
  // under heavy slowdown (sanitizers, loaded CI) scheduling latency can
  // reorder arrivals past completions and turn expected hits into
  // duplicate loads, so tolerate up to two converted hits instead of
  // asserting the exact count.
  EXPECT_LE(hits, 4);
  EXPECT_GE(hits, 2);
  EXPECT_TRUE(cache.cached_anywhere(ModelId(0)));
  EXPECT_TRUE(cache.cached_anywhere(ModelId(1)));
}

TEST(TimeSeriesTest, BucketsByTime) {
  metrics::TimeSeries series(minutes(1));
  series.add(sec(10), 2.0);
  series.add(sec(50), 4.0);
  series.add(minutes(1) + sec(5), 10.0);
  EXPECT_EQ(series.bucket_count(), 2u);
  EXPECT_DOUBLE_EQ(series.bucket_mean(0), 3.0);
  EXPECT_DOUBLE_EQ(series.bucket_sum(1), 10.0);
  EXPECT_EQ(series.bucket_samples(0), 2);
  EXPECT_EQ(series.bucket_samples(5), 0);  // out of range -> empty
}

TEST(TimeSeriesTest, CountAccumulates) {
  metrics::TimeSeries series(sec(1));
  series.count(msec(100));
  series.count(msec(200));
  series.count(msec(900), 3.0);
  EXPECT_DOUBLE_EQ(series.bucket_sum(0), 5.0);
}

TEST(TimeSeriesTest, CsvHasHeaderAndRows) {
  metrics::TimeSeries series(sec(1));
  series.add(msec(500), 7.0);
  const std::string csv = series.to_csv();
  EXPECT_NE(csv.find("bucket,start_s,samples,sum,mean"), std::string::npos);
  EXPECT_NE(csv.find("0,0,1,7,7"), std::string::npos);
}

}  // namespace
}  // namespace gfaas::cluster
