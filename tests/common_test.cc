// Unit tests for src/common: time units, Status/StatusOr, RNG
// determinism and distribution sanity, Zipf sampling, byte formatting,
// typed identifiers, and the annotated synchronization vocabulary
// (Mutex/MutexLock/CondVar/ExecutorAffinity runtime contracts — the
// static half lives in tests/negative_compile/).
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>
#include <unordered_map>

#include "common/bytes.h"
#include "common/id.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/time.h"

namespace gfaas {
namespace {

TEST(TimeTest, UnitFactories) {
  EXPECT_EQ(usec(5), 5);
  EXPECT_EQ(msec(5), 5'000);
  EXPECT_EQ(sec(5), 5'000'000);
  EXPECT_EQ(minutes(2), 120'000'000);
}

TEST(TimeTest, SecondsConversionRoundTrips) {
  EXPECT_EQ(seconds_to_sim(2.41), 2'410'000);
  EXPECT_EQ(seconds_to_sim(0.0), 0);
  EXPECT_DOUBLE_EQ(sim_to_seconds(sec(3)), 3.0);
  EXPECT_DOUBLE_EQ(sim_to_millis(msec(7)), 7.0);
}

TEST(TimeTest, SecondsConversionRoundsToNearestMicrosecond) {
  EXPECT_EQ(seconds_to_sim(1e-6), 1);
  EXPECT_EQ(seconds_to_sim(1.4999e-6), 1);
  EXPECT_EQ(seconds_to_sim(1.5001e-6), 2);
}

TEST(TimeTest, FormatPicksUnits) {
  EXPECT_EQ(format_sim_time(usec(12)), "12us");
  EXPECT_EQ(format_sim_time(msec(12)), "12.000ms");
  EXPECT_EQ(format_sim_time(sec(2)), "2.000s");
}

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.to_string(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kNotFound, StatusCode::kAlreadyExists,
        StatusCode::kInvalidArgument, StatusCode::kFailedPrecondition,
        StatusCode::kResourceExhausted, StatusCode::kUnavailable,
        StatusCode::kInternal}) {
    EXPECT_STRNE(status_code_name(code), "UNKNOWN");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::InvalidArgument("bad");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(5);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 5);
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, SplitMix64ReferenceVector) {
  // Reference output of SplitMix64 with seed 1234567 (from the published
  // reference implementation).
  SplitMix64 sm(1234567);
  EXPECT_EQ(sm.next(), 6457827717110365317ULL);
  EXPECT_EQ(sm.next(), 3203168211198807973ULL);
}

TEST(RngTest, UniformWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(5.0, 6.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 6.0);
  }
}

TEST(RngTest, NextBelowNeverReachesBound) {
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.next_below(13), 13u);
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, WeightedIndexProportions) {
  Rng rng(21);
  std::vector<double> weights = {1.0, 3.0};
  int count1 = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    if (rng.weighted_index(weights) == 1) ++count1;
  }
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.02);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(31);
  Rng forked = a.fork();
  EXPECT_NE(a.next(), forked.next());
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution zipf(100, 1.1);
  double total = 0;
  for (std::size_t k = 0; k < 100; ++k) total += zipf.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, RankZeroMostLikely) {
  ZipfDistribution zipf(50, 1.0);
  EXPECT_GT(zipf.pmf(0), zipf.pmf(1));
  EXPECT_GT(zipf.pmf(1), zipf.pmf(10));
}

TEST(ZipfTest, SampleFrequenciesFollowPmf) {
  ZipfDistribution zipf(20, 1.2);
  Rng rng(37);
  std::unordered_map<std::size_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, zipf.pmf(0), 0.01);
  EXPECT_NEAR(static_cast<double>(counts[5]) / n, zipf.pmf(5), 0.01);
}

TEST(BytesTest, Units) {
  EXPECT_EQ(KiB(1), 1024);
  EXPECT_EQ(MiB(1), 1024 * 1024);
  EXPECT_EQ(GiB(1), 1024LL * 1024 * 1024);
  EXPECT_EQ(MB(1), 1'000'000);
}

TEST(BytesTest, Formatting) {
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(KiB(2)), "2.00KiB");
  EXPECT_EQ(format_bytes(MiB(3)), "3.00MiB");
  EXPECT_EQ(format_bytes(GiB(1)), "1.00GiB");
}

TEST(TypedIdTest, DefaultIsInvalid) {
  GpuId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.value(), -1);
}

TEST(TypedIdTest, ComparisonAndHash) {
  GpuId a(1), b(1), c(2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  std::unordered_map<GpuId, int> map;
  map[a] = 10;
  EXPECT_EQ(map[b], 10);
}

TEST(TypedIdTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<GpuId, ModelId>);
  static_assert(!std::is_same_v<RequestId, FunctionId>);
}

// --- edge cases ---

StatusOr<int> parse_positive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

StatusOr<int> doubled(int v) {
  auto parsed = parse_positive(v);
  if (!parsed.ok()) return parsed.status();
  return *parsed * 2;
}

TEST(StatusTest, ErrorsPropagateThroughCallChains) {
  auto good = doubled(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);

  auto bad = doubled(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.status().message(), "not positive");
  EXPECT_EQ(bad.status().to_string(), "INVALID_ARGUMENT: not positive");
  EXPECT_EQ(bad.value_or(7), 7);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
  EXPECT_EQ(Status::Ok(), Status());
}

TEST(StatusTest, ToStringOmitsEmptyMessage) {
  EXPECT_EQ(Status::Unavailable("").to_string(), "UNAVAILABLE");
  EXPECT_EQ(Status().to_string(), "OK");
}

TEST(RngTest, ReseedingReproducesTheStream) {
  Rng a(0xDEADBEEFULL);
  // Burn part of the stream, including the cached spare normal.
  for (int i = 0; i < 100; ++i) a.next();
  a.normal();

  // A freshly-seeded generator replays the identical stream from the
  // start, regardless of what any earlier instance consumed.
  Rng b(0xDEADBEEFULL);
  Rng c(0xDEADBEEFULL);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(b.next(), c.next());
  }
  EXPECT_DOUBLE_EQ(b.normal(), c.normal());
  EXPECT_DOUBLE_EQ(b.uniform(), c.uniform());
  EXPECT_EQ(b.next_below(1000), c.next_below(1000));
}

TEST(RngTest, ForkedStreamsAreReproducible) {
  Rng a(42);
  Rng b(42);
  Rng fork_a = a.fork();
  Rng fork_b = b.fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(fork_a.next(), fork_b.next());
  }
  // Forking leaves the parents in identical states too.
  EXPECT_EQ(a.next(), b.next());
}

TEST(BytesTest, FormattingBoundaries) {
  EXPECT_EQ(format_bytes(0), "0B");
  EXPECT_EQ(format_bytes(KiB(1) - 1), "1023B");
  EXPECT_EQ(format_bytes(MiB(1) - 1), "1024.00KiB");
  EXPECT_EQ(format_bytes(GiB(1) - 1), "1024.00MiB");
  EXPECT_EQ(format_bytes(-512), "-512B");
}

TEST(BytesTest, PaperSizesStayDecimal) {
  // Table I quotes decimal MB; 44MB must not round through MiB.
  EXPECT_EQ(MB(44), 44'000'000);
  EXPECT_EQ(format_bytes(MB(44)), "41.96MiB");
}

TEST(TimeTest, FormatBoundariesAndNegatives) {
  EXPECT_EQ(format_sim_time(0), "0us");
  EXPECT_EQ(format_sim_time(999), "999us");
  EXPECT_EQ(format_sim_time(1000), "1.000ms");
  EXPECT_EQ(format_sim_time(msec(1000)), "1.000s");
  EXPECT_EQ(format_sim_time(-msec(5)), "-5.000ms");
  EXPECT_EQ(format_sim_time(-sec(2)), "-2.000s");
}

TEST(TimeTest, NegativeSecondsConversionRoundTrips) {
  EXPECT_EQ(seconds_to_sim(-2.41), -2'410'000);
  EXPECT_EQ(seconds_to_sim(-1.5001e-6), -2);
  EXPECT_DOUBLE_EQ(sim_to_seconds(seconds_to_sim(-3.25)), -3.25);
  // Every whole-microsecond value survives the double round-trip.
  for (SimTime t : {msec(1), sec(7), minutes(3), usec(1)}) {
    EXPECT_EQ(seconds_to_sim(sim_to_seconds(t)), t);
  }
}

TEST(MutexTest, AssertHeldPassesUnderLock) {
  common::Mutex mu;
  common::MutexLock lock(&mu);
  mu.AssertHeld();  // must not die
  EXPECT_TRUE(mu.held_by_current_thread());
}

TEST(MutexTest, OwnerShadowTracksLockCycle) {
  common::Mutex mu;
  EXPECT_FALSE(mu.held_by_current_thread());
  mu.lock();
  EXPECT_TRUE(mu.held_by_current_thread());
  mu.unlock();
  EXPECT_FALSE(mu.held_by_current_thread());
  EXPECT_TRUE(mu.try_lock());
  EXPECT_TRUE(mu.held_by_current_thread());
  mu.unlock();
}

TEST(MutexTest, HeldByCurrentThreadIsPerThread) {
  common::Mutex mu;
  common::MutexLock lock(&mu);
  bool other_thread_sees_held = true;
  std::thread([&] { other_thread_sees_held = mu.held_by_current_thread(); })
      .join();
  EXPECT_FALSE(other_thread_sees_held);
}

TEST(MutexDeathTest, AssertHeldDiesWhenUnlocked) {
  common::Mutex mu;
  EXPECT_DEATH(mu.AssertHeld(), "does not hold");
}

TEST(MutexDeathTest, AssertHeldDiesOnForeignThread) {
  common::Mutex mu;
  common::MutexLock lock(&mu);
  EXPECT_DEATH(std::thread([&] { mu.AssertHeld(); }).join(), "does not hold");
}

TEST(MutexLockTest, MidScopeUnlockReleasesAndLockReacquires) {
  common::Mutex mu;
  common::MutexLock lock(&mu);
  lock.Unlock();
  EXPECT_FALSE(mu.held_by_current_thread());
  lock.Lock();
  EXPECT_TRUE(mu.held_by_current_thread());
}

TEST(CondVarTest, WaitReleasesLockWhileBlockedAndRestoresOwner) {
  common::Mutex mu;
  common::CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    common::MutexLock lock(&mu);
    while (!ready) {
      cv.wait(lock);
    }
    // Wakeup re-established the owner shadow for this thread.
    mu.AssertHeld();
  });
  {
    common::MutexLock lock(&mu);  // acquirable: the waiter released it
    ready = true;
  }
  cv.notify_one();
  waiter.join();
}

TEST(CondVarTest, WaitUntilTimesOut) {
  common::Mutex mu;
  common::CondVar cv;
  common::MutexLock lock(&mu);
  EXPECT_FALSE(cv.wait_until(
      lock, std::chrono::steady_clock::now() + std::chrono::milliseconds(1)));
  mu.AssertHeld();  // lock reacquired after the timeout
}

TEST(ExecutorAffinityTest, UnboundAssertsPassAnywhere) {
  common::ExecutorAffinity affinity;
  EXPECT_FALSE(affinity.bound());
  affinity.AssertHeld();  // must not die
  std::thread([&] { affinity.AssertHeld(); }).join();
}

TEST(ExecutorAffinityTest, BoundThreadPassesAndRebindIsIdempotent) {
  common::ExecutorAffinity affinity;
  affinity.bind_current_thread();
  EXPECT_TRUE(affinity.bound());
  affinity.AssertHeld();
  affinity.bind_current_thread();  // same thread: allowed
}

TEST(ExecutorAffinityDeathTest, BoundAssertDiesOnForeignThread) {
  common::ExecutorAffinity affinity;
  affinity.bind_current_thread();
  EXPECT_DEATH(std::thread([&] { affinity.AssertHeld(); }).join(),
               "bound worker");
}

TEST(ExecutorAffinityDeathTest, RebindDiesOnForeignThread) {
  common::ExecutorAffinity affinity;
  affinity.bind_current_thread();
  EXPECT_DEATH(std::thread([&] { affinity.bind_current_thread(); }).join(),
               "foreign thread");
}

}  // namespace
}  // namespace gfaas
